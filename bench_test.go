package safesense

// Benchmark harness: one benchmark per reproduced table/figure (see the
// experiment index in DESIGN.md) plus microbenchmarks of the hot kernels.
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// The figure, kernel, and campaign benchmarks drive the shared scenario
// registry in internal/perf/suite — the same workloads `safesense-perf
// run` captures into BENCH_*.json — so testing.B numbers and the perf
// trajectory always measure identical code paths with identical seeds.

import (
	"fmt"
	"testing"

	"safesense/internal/attack"
	"safesense/internal/estimate"
	"safesense/internal/lateral"
	"safesense/internal/noise"
	"safesense/internal/perf"
	"safesense/internal/perf/suite"
	"safesense/internal/radar"
	"safesense/internal/report"
	"safesense/internal/sim"
)

// perfSuite is the shared scenario registry the registry-backed
// benchmarks below resolve against.
var perfSuite = suite.Default()

// benchSuiteScenario runs one registered perf scenario under testing.B:
// fresh Setup outside the timer, the scenario body inside it, per-op
// scaling via the scenario's own Ops count.
func benchSuiteScenario(b *testing.B, name string) {
	b.Helper()
	s, ok := perfSuite.Lookup(name)
	if !ok {
		b.Fatalf("no registered perf scenario %q", name)
	}
	body, err := s.Setup()
	if err != nil {
		b.Fatal(err)
	}
	rep := perf.NewRep()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := body(rep); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if s.Ops > 1 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*s.Ops), "ns/logical-op")
	}
}

// --- Figures 2a/2b/3a/3b: one full closed-loop defended run each -------

func BenchmarkFig2aDoSConstantDecel(b *testing.B)   { benchSuiteScenario(b, "fig2a_dos") }
func BenchmarkFig2bDelayConstantDecel(b *testing.B) { benchSuiteScenario(b, "fig2b_delay") }
func BenchmarkFig3aDoSDecelAccel(b *testing.B)      { benchSuiteScenario(b, "fig3a_dos") }
func BenchmarkFig3bDelayDecelAccel(b *testing.B)    { benchSuiteScenario(b, "fig3b_delay") }

// --- T1: the Section 6.2 results — RLS cost over the attack window -----
//
// The paper reports 1.2e7 ns (DoS) and 1.3e7 ns (delay) for estimating the
// k = 182..300 window in MATLAB. These benchmarks measure the same work in
// this implementation: training the two-channel recovery estimator on the
// pre-attack stream and free-running it across the 119-step window.

func benchRLSAttackWindow(b *testing.B, s sim.Scenario) {
	b.Helper()
	// Pre-generate the training stream once (not measured).
	base, err := sim.Run(sim.Baseline(s))
	if err != nil {
		b.Fatal(err)
	}
	dMeas := base.Distance.Series(sim.SeriesMeasured)
	vMeas := base.Velocity.Series(sim.SeriesMeasured)
	vF := base.Speeds.Series(sim.SeriesFollower)
	sched := s.Schedule
	onset := s.Attack.Window.Start
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := estimate.NewRecoveryEstimator(estimate.DefaultPredictorConfig())
		if err != nil {
			b.Fatal(err)
		}
		for k := 0; k < onset; k++ {
			if sched.Challenge(k) {
				rec.SkipStep()
				continue
			}
			d, _ := dMeas.At(k)
			v, _ := vMeas.At(k)
			f, _ := vF.At(k)
			if err := rec.Observe(d, v, f); err != nil {
				b.Fatal(err)
			}
		}
		for k := onset; k < s.Steps; k++ {
			f, _ := vF.At(k)
			rec.Predict(f)
		}
	}
}

func BenchmarkT1RLSAttackWindowDoS(b *testing.B)   { benchRLSAttackWindow(b, sim.Fig2aDoS()) }
func BenchmarkT1RLSAttackWindowDelay(b *testing.B) { benchRLSAttackWindow(b, sim.Fig2bDelay()) }

// --- E1: the Eqn 11 jamming power-ratio sweep ---------------------------

func BenchmarkE1JammerSweep(b *testing.B) {
	p := radar.BoschLRR2()
	j := attack.PaperJammer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := report.JammerSweep(p, j, 21)
		if len(rows) != 21 {
			b.Fatal("sweep size")
		}
	}
}

// --- A1/A2/A3: the DESIGN.md ablations ----------------------------------

func BenchmarkA1EstimatorAblation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := report.EstimatorAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA2DetectorAblation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := report.DetectorAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA3BeatExtraction(b *testing.B) {
	p := radar.BoschLRR2()
	for _, ext := range []radar.BeatExtractor{radar.FFTExtractor{}, radar.MUSICExtractor{}} {
		b.Run(ext.Name(), func(b *testing.B) {
			src := noise.NewSource(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := p.MeasureSweep(100, -1.5, 256, ext, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkA4ChallengeRateSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := report.ChallengeRateSweep([]int64{1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA5LimitationDemo(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := report.LimitationDemo()
		if err != nil {
			b.Fatal(err)
		}
		if rows[1].DetectedAt != -1 {
			b.Fatal("limitation did not hold")
		}
	}
}

// --- S1: the Fig 2a scenario through the signal-level pipeline ----------

func BenchmarkS1SignalPipeline(b *testing.B) {
	s := sim.Fig2aDoS()
	s.SignalLevel = true
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		if res.DetectedAt != 182 {
			b.Fatalf("DetectedAt = %d", res.DetectedAt)
		}
	}
}

// --- Extension benchmarks ------------------------------------------------

func BenchmarkLaneKeepingRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := lateral.Run(lateral.DefaultScenario())
		if err != nil {
			b.Fatal(err)
		}
		if res.DetectedAt < 0 {
			b.Fatal("lane spoof not detected")
		}
	}
}

// --- Campaign engine: Monte Carlo sweep throughput -----------------------
//
// One iteration executes a 64-job sweep over the Figure 2a/2b grid (DoS +
// delay × 2 onsets × 16 seeds). The workers sub-benchmarks establish the
// worker-pool scaling curve; runs/s is the service-level throughput metric
// safesensed reports per campaign. On a single-CPU host the curve is flat
// (the pool cannot beat GOMAXPROCS=1); on n cores the speedup tracks
// min(workers, n) until the jobs run out.

func BenchmarkCampaignThroughput(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchSuiteScenario(b, fmt.Sprintf("campaign_w%d", workers))
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(suite.CampaignJobs*b.N)/sec, "runs/s")
			}
		})
	}
}

// --- Kernel microbenchmarks ---------------------------------------------
//
// Each resolves the registered suite scenario of the same workload; the
// RLS benchmark's reported ns/op covers a full 256-regressor cycle (see
// the scenario's Ops and the ns/logical-op metric for per-update cost).

func BenchmarkRLSUpdateOrder8(b *testing.B) { benchSuiteScenario(b, "kernel_rls_update_order8") }
func BenchmarkDetectorStep(b *testing.B)    { benchSuiteScenario(b, "kernel_cra_check") }
func BenchmarkRootMUSIC256(b *testing.B)    { benchSuiteScenario(b, "kernel_root_music_256") }
func BenchmarkFFT1024(b *testing.B)         { benchSuiteScenario(b, "kernel_fft_1024") }
func BenchmarkSynthesizeSweep(b *testing.B) { benchSuiteScenario(b, "kernel_synthesize_sweep") }
func BenchmarkSimStep(b *testing.B)         { benchSuiteScenario(b, "kernel_sim_step") }
