package safesense

// Benchmark harness: one benchmark per reproduced table/figure (see the
// experiment index in DESIGN.md) plus microbenchmarks of the hot kernels.
// Regenerate everything with:
//
//	go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"testing"

	"safesense/internal/attack"
	"safesense/internal/campaign"
	"safesense/internal/cra"
	"safesense/internal/dsp/fft"
	"safesense/internal/dsp/music"
	"safesense/internal/estimate"
	"safesense/internal/lateral"
	"safesense/internal/noise"
	"safesense/internal/prbs"
	"safesense/internal/radar"
	"safesense/internal/report"
	"safesense/internal/sim"
)

// --- Figures 2a/2b/3a/3b: one full closed-loop defended run each -------

func benchScenario(b *testing.B, s sim.Scenario) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		if res.DetectedAt != 182 {
			b.Fatalf("DetectedAt = %d", res.DetectedAt)
		}
	}
}

func BenchmarkFig2aDoSConstantDecel(b *testing.B)   { benchScenario(b, sim.Fig2aDoS()) }
func BenchmarkFig2bDelayConstantDecel(b *testing.B) { benchScenario(b, sim.Fig2bDelay()) }
func BenchmarkFig3aDoSDecelAccel(b *testing.B)      { benchScenario(b, sim.Fig3aDoS()) }
func BenchmarkFig3bDelayDecelAccel(b *testing.B)    { benchScenario(b, sim.Fig3bDelay()) }

// --- T1: the Section 6.2 results — RLS cost over the attack window -----
//
// The paper reports 1.2e7 ns (DoS) and 1.3e7 ns (delay) for estimating the
// k = 182..300 window in MATLAB. These benchmarks measure the same work in
// this implementation: training the two-channel recovery estimator on the
// pre-attack stream and free-running it across the 119-step window.

func benchRLSAttackWindow(b *testing.B, s sim.Scenario) {
	b.Helper()
	// Pre-generate the training stream once (not measured).
	base, err := sim.Run(sim.Baseline(s))
	if err != nil {
		b.Fatal(err)
	}
	dMeas := base.Distance.Series(sim.SeriesMeasured)
	vMeas := base.Velocity.Series(sim.SeriesMeasured)
	vF := base.Speeds.Series(sim.SeriesFollower)
	sched := s.Schedule
	onset := s.Attack.Window.Start
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := estimate.NewRecoveryEstimator(estimate.DefaultPredictorConfig())
		if err != nil {
			b.Fatal(err)
		}
		for k := 0; k < onset; k++ {
			if sched.Challenge(k) {
				rec.SkipStep()
				continue
			}
			d, _ := dMeas.At(k)
			v, _ := vMeas.At(k)
			f, _ := vF.At(k)
			if err := rec.Observe(d, v, f); err != nil {
				b.Fatal(err)
			}
		}
		for k := onset; k < s.Steps; k++ {
			f, _ := vF.At(k)
			rec.Predict(f)
		}
	}
}

func BenchmarkT1RLSAttackWindowDoS(b *testing.B)   { benchRLSAttackWindow(b, sim.Fig2aDoS()) }
func BenchmarkT1RLSAttackWindowDelay(b *testing.B) { benchRLSAttackWindow(b, sim.Fig2bDelay()) }

// --- E1: the Eqn 11 jamming power-ratio sweep ---------------------------

func BenchmarkE1JammerSweep(b *testing.B) {
	p := radar.BoschLRR2()
	j := attack.PaperJammer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := report.JammerSweep(p, j, 21)
		if len(rows) != 21 {
			b.Fatal("sweep size")
		}
	}
}

// --- A1/A2/A3: the DESIGN.md ablations ----------------------------------

func BenchmarkA1EstimatorAblation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := report.EstimatorAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA2DetectorAblation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := report.DetectorAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA3BeatExtraction(b *testing.B) {
	p := radar.BoschLRR2()
	for _, ext := range []radar.BeatExtractor{radar.FFTExtractor{}, radar.MUSICExtractor{}} {
		b.Run(ext.Name(), func(b *testing.B) {
			src := noise.NewSource(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := p.MeasureSweep(100, -1.5, 256, ext, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkA4ChallengeRateSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := report.ChallengeRateSweep([]int64{1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA5LimitationDemo(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := report.LimitationDemo()
		if err != nil {
			b.Fatal(err)
		}
		if rows[1].DetectedAt != -1 {
			b.Fatal("limitation did not hold")
		}
	}
}

// --- S1: the Fig 2a scenario through the signal-level pipeline ----------

func BenchmarkS1SignalPipeline(b *testing.B) {
	s := sim.Fig2aDoS()
	s.SignalLevel = true
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		if res.DetectedAt != 182 {
			b.Fatalf("DetectedAt = %d", res.DetectedAt)
		}
	}
}

// --- Extension benchmarks ------------------------------------------------

func BenchmarkLaneKeepingRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := lateral.Run(lateral.DefaultScenario())
		if err != nil {
			b.Fatal(err)
		}
		if res.DetectedAt < 0 {
			b.Fatal("lane spoof not detected")
		}
	}
}

// --- Campaign engine: Monte Carlo sweep throughput -----------------------
//
// One iteration executes a 64-job sweep over the Figure 2a/2b grid (DoS +
// delay × 2 onsets × 16 seeds). The workers sub-benchmarks establish the
// worker-pool scaling curve; runs/s is the service-level throughput metric
// safesensed reports per campaign. On a single-CPU host the curve is flat
// (the pool cannot beat GOMAXPROCS=1); on n cores the speedup tracks
// min(workers, n) until the jobs run out.

func BenchmarkCampaignThroughput(b *testing.B) {
	spec := campaign.Spec{
		Name:       "bench-fig2-grid",
		Steps:      301,
		BaseSeed:   42,
		Replicates: 16,
		Attacks:    []string{campaign.AttackDoS, campaign.AttackDelay},
		Onsets:     []int{175, 182},
	}
	jobs, err := spec.NumJobs()
	if err != nil {
		b.Fatal(err)
	}
	if jobs != 64 {
		b.Fatalf("grid size = %d, want 64", jobs)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sum, err := campaign.Run(context.Background(), spec,
					campaign.Options{Workers: workers, DiscardOutcomes: true})
				if err != nil {
					b.Fatal(err)
				}
				if agg := sum.Aggregate; agg.Detected != 64 || agg.FalsePositives != 0 {
					b.Fatalf("aggregate drifted: %+v", agg)
				}
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(jobs*b.N)/sec, "runs/s")
			}
		})
	}
}

// --- Kernel microbenchmarks ---------------------------------------------

func BenchmarkRLSUpdateOrder8(b *testing.B) {
	r, err := estimate.NewRLS(8, 0.98, 1)
	if err != nil {
		b.Fatal(err)
	}
	// Cycle pre-generated regressors: repeating a single regressor forever
	// leaves the orthogonal subspace unexcited and the forgetting factor
	// blows its covariance up (wind-up), which is not the usage pattern
	// being measured.
	src := noise.NewSource(1)
	hs := make([][]float64, 256)
	for i := range hs {
		hs[i] = src.GaussianVec(8, 0, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Update(hs[i%len(hs)], 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectorStep(b *testing.B) {
	sched := prbs.PaperFigureSchedule()
	det, err := cra.NewDetector(sched, 1e-13)
	if err != nil {
		b.Fatal(err)
	}
	m := radar.Measurement{K: 20, Power: 1e-11}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		det.Step(m)
	}
}

func BenchmarkRootMUSIC256(b *testing.B) {
	est, err := music.New(music.Config{Order: 12, NumSignals: 1})
	if err != nil {
		b.Fatal(err)
	}
	p := radar.BoschLRR2()
	src := noise.NewSource(2)
	sweep, err := p.SynthesizeSweep(100, -1.5, 256, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Frequencies(sweep.Up); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFT1024(b *testing.B) {
	src := noise.NewSource(3)
	x := src.ComplexNoiseVec(1024, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fft.Forward(x)
	}
}

func BenchmarkSynthesizeSweep(b *testing.B) {
	p := radar.BoschLRR2()
	src := noise.NewSource(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.SynthesizeSweep(100, -1.5, 256, src); err != nil {
			b.Fatal(err)
		}
	}
}
