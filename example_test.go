package safesense_test

import (
	"fmt"

	"safesense"
)

// ExampleRun reproduces the paper's headline result: the Figure 2a DoS
// attack is detected at its onset with no false positives or negatives,
// and the RLS estimator carries the vehicle safely through the attack.
func ExampleRun() {
	res, err := safesense.Run(safesense.Fig2aDoS())
	if err != nil {
		panic(err)
	}
	fmt.Println("detected at:", res.DetectedAt)
	fmt.Println("false positives:", res.Accuracy.FalsePositives)
	fmt.Println("false negatives:", res.Accuracy.FalseNegatives)
	fmt.Println("estimates delivered:", res.EstimateSteps)
	fmt.Println("collision:", res.CollisionAt >= 0)
	// Output:
	// detected at: 182
	// false positives: 0
	// false negatives: 0
	// estimates delivered: 119
	// collision: false
}

// ExampleJammer_Succeeds evaluates the Eqn 11 jamming success condition at
// the case-study range.
func ExampleJammer_Succeeds() {
	p := safesense.BoschLRR2()
	j := safesense.PaperJammer()
	fmt.Printf("ratio at 100 m: %.1e\n", j.PowerRatio(p, 100))
	fmt.Println("attack succeeds:", j.Succeeds(p, 100))
	// Output:
	// ratio at 100 m: 5.2e-04
	// attack succeeds: true
}

// ExampleRadarParams_BeatFrequencies shows the FMCW beat-frequency mapping
// of Eqns 5–8 and its inversion.
func ExampleRadarParams_BeatFrequencies() {
	p := safesense.BoschLRR2()
	fbUp, fbDown := p.BeatFrequencies(100, -1.5)
	d, v := p.FromBeats(fbUp, fbDown)
	fmt.Printf("d = %.1f m, dv = %.2f m/s\n", d, v)
	// Output:
	// d = 100.0 m, dv = -1.50 m/s
}

// ExampleNewRLS runs Algorithm 1 directly on a static linear model.
func ExampleNewRLS() {
	r, err := safesense.NewRLS(2, 1.0, 1e6)
	if err != nil {
		panic(err)
	}
	// y = 3*h0 - 2*h1.
	inputs := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}, {1, 3}}
	for _, h := range inputs {
		r.Update(h, 3*h[0]-2*h[1])
	}
	w := r.Weights()
	fmt.Printf("w = [%.3f %.3f]\n", w[0], w[1])
	// Output:
	// w = [3.000 -2.000]
}
