module safesense

go 1.22
