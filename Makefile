GO ?= go

# Minimum total statement coverage `make cover` enforces. Measured 83%
# at the time the gate was added; the floor leaves headroom for noise
# without letting coverage rot.
COVER_MIN ?= 78

.PHONY: all build test race race-hot vet fmt-check lint lint-self lint-json fuzz-smoke dist-smoke stream-smoke forensic-smoke profile-smoke bench bench-smoke bench-check bench-capture perf-baseline cover check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# lint runs the repo's own stdlib-only analyzers (cmd/safesense-lint)
# plus go vet and the gofmt check — the full static gate.
lint: vet fmt-check
	$(GO) run ./cmd/safesense-lint ./...

# lint-self dogfoods the analyzers on the lint tree itself: path
# scoping off, so every analyzer (determinism, hotpathalloc, ctxflow,
# goroleak, ...) judges the analysis framework and call-graph builder.
lint-self:
	$(GO) run ./cmd/safesense-lint -ignore-paths internal/lint/...

# lint-json writes the machine-readable report (with timing breakdown)
# that CI uploads as an artifact.
lint-json:
	$(GO) run ./cmd/safesense-lint -json -timing ./... > lint-report.json

# race-hot focuses the race detector on the concurrent subsystems
# (worker pool, lock-free metrics, flight recorder, HTTP service) for a
# fast signal; `make race` still covers the whole module.
race-hot:
	$(GO) test -race ./internal/sim ./internal/campaign ./internal/dist ./internal/obs/... ./cmd/safesensed

# fuzz-smoke runs each fuzz target briefly so the corpora and oracles
# can't bit-rot; CI runs this on every push. Longer local sessions:
#   go test -fuzz=FuzzReadCSV -fuzztime=5m ./internal/trace
FUZZ_TIME ?= 10s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadCSV -fuzztime=$(FUZZ_TIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzDecodeSpec -fuzztime=$(FUZZ_TIME) ./internal/campaign
	$(GO) test -run='^$$' -fuzz=FuzzDecodeLease -fuzztime=$(FUZZ_TIME) ./internal/dist
	$(GO) test -run='^$$' -fuzz=FuzzSSEFrame -fuzztime=$(FUZZ_TIME) ./internal/obs/stream
	$(GO) test -run='^$$' -fuzz=FuzzDecodeCapture -fuzztime=$(FUZZ_TIME) ./internal/obs/forensic
	$(GO) test -run='^$$' -fuzz=FuzzDecodeProfile -fuzztime=$(FUZZ_TIME) ./internal/obs/profile

# dist-smoke is the distributed-execution gate: an in-process
# coordinator plus two pull workers shard a 64-job campaign over the
# HTTP API and the merged aggregate must be byte-identical to the
# single-node oracle. Runs under -race so the lease table's lock
# discipline is exercised against concurrent workers.
dist-smoke:
	$(GO) test -race -run='^TestDistSmoke$$' -count=1 -v ./internal/dist

# stream-smoke is the live-observability gate: a coordinator plus two
# mid-lease-reporting workers run a 64-job campaign while an SSE client
# follows the stream endpoint; progress must be monotone, partials must
# validate, and the terminal frame's aggregate must be byte-identical to
# the single-node oracle. Runs under -race so the hub's lock-free
# publish path is exercised against live subscribers.
stream-smoke:
	$(GO) test -race -run='^TestStreamSmoke$$' -count=1 -v ./internal/dist

# forensic-smoke is the anomaly-forensics gate: two workers run a
# collision-bearing sweep, the coordinator must end up with the
# anomaly captured in its forensic store (deduped across shard
# retries), replaying the capture must reproduce the stored flight
# timeline byte-for-byte, and the merged aggregate must stay
# byte-identical to the single-node oracle.
forensic-smoke:
	$(GO) test -race -run='^TestForensicSmoke$$' -count=1 -v ./internal/dist

# profile-smoke is the continuous-profiling gate: a signal-level
# root-MUSIC figure scenario runs under the CPU profiler with phase
# labels enabled, the capture is decoded by the repo's own pprof
# reader, and beat_extraction must come out as the largest labeled
# phase with shares summing to one. The decoded summary lands in
# profile-summary.json for the CI artifact.
profile-smoke:
	PROFILE_SMOKE_OUT=$(CURDIR)/profile-summary.json \
		$(GO) test -run='^TestProfileSmoke$$' -count=1 -v ./internal/sim

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke compiles and runs every benchmark exactly once so they
# can't bit-rot; CI runs this on every push. The figure/kernel/campaign
# benchmarks resolve against the fixed-seed scenario registry in
# internal/perf/suite, so the smoke run is deterministic at the domain
# level (timings vary, results never do).
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# bench-check is the statistical regression gate: it measures the
# registered perf suite fresh and compares it against the committed
# baseline (perf/baseline.json) with a Mann-Whitney significance test,
# failing on any unwaived scenario whose median worsened significantly
# beyond PERF_THRESHOLD percent. Exempt a scenario with a
# `safesense:perf-waiver <scenario> <reason>` line in perf/waivers.txt.
# The threshold is deliberately wide: shared CI boxes produce 10-20%
# swings on their own; a real regression (2x, 3x) clears it easily.
PERF_THRESHOLD ?= 30
bench-check:
	$(GO) run ./cmd/safesense-perf check -threshold $(PERF_THRESHOLD) -save perf/BENCH_ci.json

# bench-capture appends the next BENCH_<n>.json trajectory document.
bench-capture:
	$(GO) run ./cmd/safesense-perf run -dir perf

# perf-baseline re-captures the committed baseline (run on a quiet
# machine after an intentional perf change, then commit the file).
perf-baseline:
	$(GO) run ./cmd/safesense-perf run -out perf/baseline.json

# cover runs the suite with atomic coverage and fails when total
# statement coverage drops below COVER_MIN percent.
cover:
	$(GO) test ./... -coverprofile=coverage.out -covermode=atomic
	@total="$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}')"; \
	echo "total coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t+0 >= min+0) ? 0 : 1 }' \
		|| { echo "coverage $$total% is below the $(COVER_MIN)% floor"; exit 1; }

check: build lint test race cover
