GO ?= go

.PHONY: all build test race vet fmt-check bench bench-smoke check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke compiles and runs every benchmark exactly once so they
# can't bit-rot; CI runs this on every push.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

check: build vet fmt-check test race
