GO ?= go

# Minimum total statement coverage `make cover` enforces. Measured 83%
# at the time the gate was added; the floor leaves headroom for noise
# without letting coverage rot.
COVER_MIN ?= 78

.PHONY: all build test race vet fmt-check bench bench-smoke cover check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke compiles and runs every benchmark exactly once so they
# can't bit-rot; CI runs this on every push.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# cover runs the suite with atomic coverage and fails when total
# statement coverage drops below COVER_MIN percent.
cover:
	$(GO) test ./... -coverprofile=coverage.out -covermode=atomic
	@total="$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}')"; \
	echo "total coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t+0 >= min+0) ? 0 : 1 }' \
		|| { echo "coverage $$total% is below the $(COVER_MIN)% floor"; exit 1; }

check: build vet fmt-check test race cover
