// Package trace records named time series from simulation runs and renders
// them as CSV (for external plotting) or as ASCII line charts (for the
// terminal experiment harness that regenerates the paper's figures).
package trace

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named time series sampled at integer steps.
type Series struct {
	Name string
	T    []int
	Y    []float64
}

// Append adds a sample.
func (s *Series) Append(t int, y float64) {
	s.T = append(s.T, t)
	s.Y = append(s.Y, y)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.T) }

// At returns the value recorded at step t, or (0, false).
func (s *Series) At(t int) (float64, bool) {
	i := sort.SearchInts(s.T, t)
	if i < len(s.T) && s.T[i] == t {
		return s.Y[i], true
	}
	return 0, false
}

// MinMax returns the value range of the series, ignoring NaNs. It returns
// (0, 0) for an empty series.
func (s *Series) MinMax() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	any := false
	for _, v := range s.Y {
		if math.IsNaN(v) {
			continue
		}
		any = true
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if !any {
		return 0, 0
	}
	return lo, hi
}

// Set is an ordered collection of series sharing a time axis.
type Set struct {
	Title  string
	XLabel string
	YLabel string
	series []*Series
	index  map[string]*Series
}

// NewSet creates an empty set.
func NewSet(title, xlabel, ylabel string) *Set {
	return &Set{Title: title, XLabel: xlabel, YLabel: ylabel, index: make(map[string]*Series)}
}

// Add creates (or returns the existing) series with the given name.
func (st *Set) Add(name string) *Series {
	if s, ok := st.index[name]; ok {
		return s
	}
	s := &Series{Name: name}
	st.series = append(st.series, s)
	st.index[name] = s
	return s
}

// Series returns the named series, or nil.
func (st *Set) Series(name string) *Series { return st.index[name] }

// Names returns the series names in insertion order.
func (st *Set) Names() []string {
	out := make([]string, len(st.series))
	for i, s := range st.series {
		out[i] = s.Name
	}
	return out
}

// WriteCSV emits "t,series1,series2,..." rows over the union of all time
// stamps; missing samples are empty cells.
func (st *Set) WriteCSV(w io.Writer) error {
	if len(st.series) == 0 {
		return errors.New("trace: empty set")
	}
	// Union of time stamps.
	tset := map[int]bool{}
	for _, s := range st.series {
		for _, t := range s.T {
			tset[t] = true
		}
	}
	ts := make([]int, 0, len(tset))
	for t := range tset {
		ts = append(ts, t)
	}
	sort.Ints(ts)
	// Header.
	cols := make([]string, 0, len(st.series)+1)
	cols = append(cols, "t")
	for _, s := range st.series {
		cols = append(cols, csvEscape(s.Name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, t := range ts {
		row := make([]string, 0, len(st.series)+1)
		row = append(row, fmt.Sprintf("%d", t))
		for _, s := range st.series {
			if v, ok := s.At(t); ok && !math.IsNaN(v) {
				row = append(row, fmt.Sprintf("%g", v))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
