// Package trace records named time series from simulation runs and renders
// them as CSV (for external plotting) or as ASCII line charts (for the
// terminal experiment harness that regenerates the paper's figures).
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Series is one named time series sampled at integer steps.
type Series struct {
	Name string
	T    []int
	Y    []float64
}

// Append adds a sample.
func (s *Series) Append(t int, y float64) {
	s.T = append(s.T, t)
	s.Y = append(s.Y, y)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.T) }

// At returns the value recorded at step t, or (0, false).
func (s *Series) At(t int) (float64, bool) {
	i := sort.SearchInts(s.T, t)
	if i < len(s.T) && s.T[i] == t {
		return s.Y[i], true
	}
	return 0, false
}

// MinMax returns the value range of the series, ignoring NaNs. It returns
// (0, 0) for an empty series.
func (s *Series) MinMax() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	any := false
	for _, v := range s.Y {
		if math.IsNaN(v) {
			continue
		}
		any = true
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if !any {
		return 0, 0
	}
	return lo, hi
}

// Set is an ordered collection of series sharing a time axis.
type Set struct {
	Title  string
	XLabel string
	YLabel string
	series []*Series
	index  map[string]*Series
}

// NewSet creates an empty set.
func NewSet(title, xlabel, ylabel string) *Set {
	return &Set{Title: title, XLabel: xlabel, YLabel: ylabel, index: make(map[string]*Series)}
}

// Add creates (or returns the existing) series with the given name.
func (st *Set) Add(name string) *Series {
	if s, ok := st.index[name]; ok {
		return s
	}
	s := &Series{Name: name}
	st.series = append(st.series, s)
	st.index[name] = s
	return s
}

// Series returns the named series, or nil.
func (st *Set) Series(name string) *Series { return st.index[name] }

// Names returns the series names in insertion order.
func (st *Set) Names() []string {
	out := make([]string, len(st.series))
	for i, s := range st.series {
		out[i] = s.Name
	}
	return out
}

// WriteCSV emits "t,series1,series2,..." rows over the union of all time
// stamps; missing samples are empty cells.
func (st *Set) WriteCSV(w io.Writer) error {
	if len(st.series) == 0 {
		return errors.New("trace: empty set")
	}
	// Union of time stamps.
	tset := map[int]bool{}
	for _, s := range st.series {
		for _, t := range s.T {
			tset[t] = true
		}
	}
	ts := make([]int, 0, len(tset))
	for t := range tset {
		ts = append(ts, t)
	}
	sort.Ints(ts)
	// Header.
	cols := make([]string, 0, len(st.series)+1)
	cols = append(cols, "t")
	for _, s := range st.series {
		cols = append(cols, csvEscape(s.Name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, t := range ts {
		row := make([]string, 0, len(st.series)+1)
		row = append(row, fmt.Sprintf("%d", t))
		for _, s := range st.series {
			if v, ok := s.At(t); ok && !math.IsNaN(v) {
				row = append(row, fmt.Sprintf("%g", v))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	// A bare \r must be quoted too: unquoted it merges with the line
	// terminator and the name comes back different on re-read.
	if strings.ContainsAny(s, ",\"\n\r") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// SeriesDump is the JSON-serializable form of one series.
type SeriesDump struct {
	Name string    `json:"name"`
	T    []int     `json:"t"`
	Y    []float64 `json:"y"`
}

// SetDump is the JSON-serializable form of a Set, used by the safesensed
// HTTP service to ship traces to clients.
type SetDump struct {
	Title  string       `json:"title,omitempty"`
	XLabel string       `json:"x_label,omitempty"`
	YLabel string       `json:"y_label,omitempty"`
	Series []SeriesDump `json:"series"`
}

// Dump converts the set for JSON encoding. NaN samples are skipped — like
// WriteCSV's empty cells — because JSON has no NaN literal.
func (st *Set) Dump() SetDump {
	d := SetDump{Title: st.Title, XLabel: st.XLabel, YLabel: st.YLabel,
		Series: make([]SeriesDump, 0, len(st.series))}
	for _, s := range st.series {
		sd := SeriesDump{Name: s.Name, T: make([]int, 0, len(s.T)), Y: make([]float64, 0, len(s.Y))}
		for i, v := range s.Y {
			if math.IsNaN(v) {
				continue
			}
			sd.T = append(sd.T, s.T[i])
			sd.Y = append(sd.Y, v)
		}
		d.Series = append(d.Series, sd)
	}
	return d
}

// ReadCSV parses a Set previously written with WriteCSV: a "t,name,..."
// header followed by one row per time stamp, empty cells meaning "no
// sample". Title and axis labels are not stored in the CSV format, so they
// come back empty. Series order follows the header.
func ReadCSV(r io.Reader) (*Set, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for a better error
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	if len(header) < 2 || header[0] != "t" {
		return nil, fmt.Errorf("trace: malformed CSV header %q", header)
	}
	st := NewSet("", "", "")
	series := make([]*Series, len(header)-1)
	for i, name := range header[1:] {
		if st.Series(name) != nil {
			return nil, fmt.Errorf("trace: duplicate series %q in CSV header", name)
		}
		series[i] = st.Add(name)
	}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading CSV line %d: %w", line, err)
		}
		if len(row) != len(header) {
			return nil, fmt.Errorf("trace: CSV line %d has %d cells, header has %d", line, len(row), len(header))
		}
		tstamp, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d: bad time stamp %q", line, row[0])
		}
		for i, cell := range row[1:] {
			if cell == "" {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: CSV line %d, series %q: bad value %q", line, series[i].Name, cell)
			}
			series[i].Append(tstamp, v)
		}
	}
	return st, nil
}
