package trace

import (
	"math"
	"strings"
	"testing"
)

func TestSeriesAppendAt(t *testing.T) {
	var s Series
	s.Append(0, 1.5)
	s.Append(5, -2)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if v, ok := s.At(5); !ok || v != -2 {
		t.Fatalf("At(5) = %v, %v", v, ok)
	}
	if _, ok := s.At(3); ok {
		t.Fatal("At(3) should miss")
	}
}

func TestSeriesMinMax(t *testing.T) {
	var s Series
	s.Append(0, 3)
	s.Append(1, math.NaN())
	s.Append(2, -1)
	lo, hi := s.MinMax()
	if lo != -1 || hi != 3 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
	var empty Series
	lo, hi = empty.MinMax()
	if lo != 0 || hi != 0 {
		t.Fatalf("empty MinMax = %v, %v", lo, hi)
	}
}

func TestSetAddIdempotent(t *testing.T) {
	st := NewSet("t", "x", "y")
	a := st.Add("a")
	b := st.Add("a")
	if a != b {
		t.Fatal("Add must return the existing series")
	}
	if st.Series("a") != a {
		t.Fatal("Series lookup failed")
	}
	if st.Series("missing") != nil {
		t.Fatal("missing series should be nil")
	}
	names := st.Names()
	if len(names) != 1 || names[0] != "a" {
		t.Fatalf("Names = %v", names)
	}
}

func TestWriteCSV(t *testing.T) {
	st := NewSet("demo", "t", "v")
	a := st.Add("alpha")
	b := st.Add("beta,quoted")
	a.Append(0, 1)
	a.Append(1, 2)
	b.Append(1, 5)
	var sb strings.Builder
	if err := st.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), got)
	}
	if lines[0] != `t,alpha,"beta,quoted"` {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "0,1," {
		t.Fatalf("row 0 = %q", lines[1])
	}
	if lines[2] != "1,2,5" {
		t.Fatalf("row 1 = %q", lines[2])
	}
}

func TestWriteCSVEmpty(t *testing.T) {
	st := NewSet("demo", "t", "v")
	var sb strings.Builder
	if err := st.WriteCSV(&sb); err == nil {
		t.Fatal("empty set should fail")
	}
}

func TestRenderASCII(t *testing.T) {
	st := NewSet("ramp", "time (s)", "value")
	s := st.Add("line")
	for k := 0; k <= 50; k++ {
		s.Append(k, float64(k))
	}
	var sb strings.Builder
	if err := st.RenderASCII(&sb, PlotOptions{Width: 40, Height: 10}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "ramp") || !strings.Contains(out, "legend: * line") {
		t.Fatalf("missing header/legend:\n%s", out)
	}
	// The max label and min label must appear.
	if !strings.Contains(out, "50") || !strings.Contains(out, "0") {
		t.Fatalf("missing axis labels:\n%s", out)
	}
	// Rendering must contain the glyph.
	if !strings.Contains(out, "*") {
		t.Fatalf("no data glyphs:\n%s", out)
	}
}

func TestRenderASCIIMultiSeries(t *testing.T) {
	st := NewSet("two", "t", "v")
	a := st.Add("up")
	b := st.Add("down")
	for k := 0; k <= 20; k++ {
		a.Append(k, float64(k))
		b.Append(k, float64(20-k))
	}
	var sb strings.Builder
	if err := st.RenderASCII(&sb, PlotOptions{Width: 30, Height: 8}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("expected two glyph kinds:\n%s", out)
	}
}

func TestRenderASCIIErrors(t *testing.T) {
	st := NewSet("x", "t", "v")
	var sb strings.Builder
	if err := st.RenderASCII(&sb, PlotOptions{}); err == nil {
		t.Fatal("empty set should fail")
	}
	s := st.Add("nan-only")
	s.Append(0, math.NaN())
	if err := st.RenderASCII(&sb, PlotOptions{}); err == nil {
		t.Fatal("NaN-only series should fail")
	}
}

func TestRenderASCIIConstantSeries(t *testing.T) {
	// A flat series must not divide by zero.
	st := NewSet("flat", "t", "v")
	s := st.Add("c")
	for k := 0; k < 10; k++ {
		s.Append(k, 5)
	}
	var sb strings.Builder
	if err := st.RenderASCII(&sb, PlotOptions{Width: 20, Height: 5}); err != nil {
		t.Fatal(err)
	}
}
