package trace

import (
	"math"
	"strings"
	"testing"
)

func TestSeriesAppendAt(t *testing.T) {
	var s Series
	s.Append(0, 1.5)
	s.Append(5, -2)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if v, ok := s.At(5); !ok || v != -2 {
		t.Fatalf("At(5) = %v, %v", v, ok)
	}
	if _, ok := s.At(3); ok {
		t.Fatal("At(3) should miss")
	}
}

func TestSeriesMinMax(t *testing.T) {
	var s Series
	s.Append(0, 3)
	s.Append(1, math.NaN())
	s.Append(2, -1)
	lo, hi := s.MinMax()
	if lo != -1 || hi != 3 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
	var empty Series
	lo, hi = empty.MinMax()
	if lo != 0 || hi != 0 {
		t.Fatalf("empty MinMax = %v, %v", lo, hi)
	}
}

func TestSetAddIdempotent(t *testing.T) {
	st := NewSet("t", "x", "y")
	a := st.Add("a")
	b := st.Add("a")
	if a != b {
		t.Fatal("Add must return the existing series")
	}
	if st.Series("a") != a {
		t.Fatal("Series lookup failed")
	}
	if st.Series("missing") != nil {
		t.Fatal("missing series should be nil")
	}
	names := st.Names()
	if len(names) != 1 || names[0] != "a" {
		t.Fatalf("Names = %v", names)
	}
}

func TestWriteCSV(t *testing.T) {
	st := NewSet("demo", "t", "v")
	a := st.Add("alpha")
	b := st.Add("beta,quoted")
	a.Append(0, 1)
	a.Append(1, 2)
	b.Append(1, 5)
	var sb strings.Builder
	if err := st.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), got)
	}
	if lines[0] != `t,alpha,"beta,quoted"` {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "0,1," {
		t.Fatalf("row 0 = %q", lines[1])
	}
	if lines[2] != "1,2,5" {
		t.Fatalf("row 1 = %q", lines[2])
	}
}

func TestWriteCSVEmpty(t *testing.T) {
	st := NewSet("demo", "t", "v")
	var sb strings.Builder
	if err := st.WriteCSV(&sb); err == nil {
		t.Fatal("empty set should fail")
	}
}

func TestRenderASCII(t *testing.T) {
	st := NewSet("ramp", "time (s)", "value")
	s := st.Add("line")
	for k := 0; k <= 50; k++ {
		s.Append(k, float64(k))
	}
	var sb strings.Builder
	if err := st.RenderASCII(&sb, PlotOptions{Width: 40, Height: 10}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "ramp") || !strings.Contains(out, "legend: * line") {
		t.Fatalf("missing header/legend:\n%s", out)
	}
	// The max label and min label must appear.
	if !strings.Contains(out, "50") || !strings.Contains(out, "0") {
		t.Fatalf("missing axis labels:\n%s", out)
	}
	// Rendering must contain the glyph.
	if !strings.Contains(out, "*") {
		t.Fatalf("no data glyphs:\n%s", out)
	}
}

func TestRenderASCIIMultiSeries(t *testing.T) {
	st := NewSet("two", "t", "v")
	a := st.Add("up")
	b := st.Add("down")
	for k := 0; k <= 20; k++ {
		a.Append(k, float64(k))
		b.Append(k, float64(20-k))
	}
	var sb strings.Builder
	if err := st.RenderASCII(&sb, PlotOptions{Width: 30, Height: 8}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("expected two glyph kinds:\n%s", out)
	}
}

func TestRenderASCIIErrors(t *testing.T) {
	st := NewSet("x", "t", "v")
	var sb strings.Builder
	if err := st.RenderASCII(&sb, PlotOptions{}); err == nil {
		t.Fatal("empty set should fail")
	}
	s := st.Add("nan-only")
	s.Append(0, math.NaN())
	if err := st.RenderASCII(&sb, PlotOptions{}); err == nil {
		t.Fatal("NaN-only series should fail")
	}
}

func TestRenderASCIIConstantSeries(t *testing.T) {
	// A flat series must not divide by zero.
	st := NewSet("flat", "t", "v")
	s := st.Add("c")
	for k := 0; k < 10; k++ {
		s.Append(k, 5)
	}
	var sb strings.Builder
	if err := st.RenderASCII(&sb, PlotOptions{Width: 20, Height: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVRoundTrip(t *testing.T) {
	st := NewSet("round-trip", "t", "v")
	a := st.Add("alpha")
	b := st.Add("beta,quoted")
	c := st.Add("gamma")
	for k := 0; k < 20; k++ {
		a.Append(k, float64(k)*0.25)
		if k%3 == 0 {
			b.Append(k, -float64(k)) // sparse series → empty cells
		}
	}
	c.Append(5, 1e-7)
	c.Append(7, 123456.789)

	var sb strings.Builder
	if err := st.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	wantNames := st.Names()
	gotNames := got.Names()
	if len(gotNames) != len(wantNames) {
		t.Fatalf("series count = %d, want %d", len(gotNames), len(wantNames))
	}
	for i := range wantNames {
		if gotNames[i] != wantNames[i] {
			t.Fatalf("series %d = %q, want %q", i, gotNames[i], wantNames[i])
		}
		ws, gs := st.Series(wantNames[i]), got.Series(wantNames[i])
		if gs.Len() != ws.Len() {
			t.Fatalf("series %q length = %d, want %d", wantNames[i], gs.Len(), ws.Len())
		}
		for j := range ws.T {
			if gs.T[j] != ws.T[j] || gs.Y[j] != ws.Y[j] {
				t.Fatalf("series %q sample %d = (%d, %g), want (%d, %g)",
					wantNames[i], j, gs.T[j], gs.Y[j], ws.T[j], ws.Y[j])
			}
		}
	}
}

func TestReadCSVNaNSkipped(t *testing.T) {
	// WriteCSV renders NaN as an empty cell; ReadCSV must simply omit the
	// sample rather than fail.
	st := NewSet("nan", "t", "v")
	s := st.Add("x")
	s.Append(0, 1)
	s.Append(1, math.NaN())
	s.Append(2, 3)
	var sb strings.Builder
	if err := st.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	gs := got.Series("x")
	if gs.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (NaN dropped)", gs.Len())
	}
	if _, ok := gs.At(1); ok {
		t.Fatal("NaN sample should be absent")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty input":   "",
		"bad header":    "x,alpha\n0,1\n",
		"no series":     "t\n0\n",
		"dup series":    "t,a,a\n0,1,2\n",
		"bad timestamp": "t,a\nzero,1\n",
		"bad value":     "t,a\n0,one\n",
		"short row":     "t,a,b\n0,1\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestSetDump(t *testing.T) {
	st := NewSet("d", "t", "v")
	a := st.Add("a")
	a.Append(0, 1)
	a.Append(1, math.NaN())
	a.Append(2, 2)
	st.Add("empty")
	d := st.Dump()
	if d.Title != "d" || len(d.Series) != 2 {
		t.Fatalf("Dump = %+v", d)
	}
	if len(d.Series[0].T) != 2 || d.Series[0].Y[1] != 2 {
		t.Fatalf("NaN not skipped: %+v", d.Series[0])
	}
	if d.Series[1].Name != "empty" || len(d.Series[1].T) != 0 {
		t.Fatalf("empty series dump = %+v", d.Series[1])
	}
}
