package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// PlotOptions controls ASCII rendering.
type PlotOptions struct {
	// Width and Height of the plotting area in characters (default 96x24).
	Width, Height int
	// YMin/YMax fix the vertical range; both zero means auto-scale.
	YMin, YMax float64
}

// seriesGlyphs assigns one glyph per series, in insertion order.
var seriesGlyphs = []rune{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// RenderASCII draws every series of the set into an ASCII chart — the
// terminal stand-in for the paper's MATLAB figures. Later series overdraw
// earlier ones where they collide.
func (st *Set) RenderASCII(w io.Writer, opt PlotOptions) error {
	width, height := opt.Width, opt.Height
	if width <= 0 {
		width = 96
	}
	if height <= 0 {
		height = 24
	}
	if len(st.series) == 0 {
		return fmt.Errorf("trace: nothing to plot")
	}
	// Time and value ranges.
	tmin, tmax := math.MaxInt64, math.MinInt64
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range st.series {
		for i, t := range s.T {
			if math.IsNaN(s.Y[i]) {
				continue
			}
			if t < tmin {
				tmin = t
			}
			if t > tmax {
				tmax = t
			}
			if s.Y[i] < ymin {
				ymin = s.Y[i]
			}
			if s.Y[i] > ymax {
				ymax = s.Y[i]
			}
		}
	}
	if tmin > tmax {
		return fmt.Errorf("trace: no plottable samples")
	}
	if opt.YMin != 0 || opt.YMax != 0 {
		ymin, ymax = opt.YMin, opt.YMax
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	xPos := func(t int) int {
		if tmax == tmin {
			return 0
		}
		return int(float64(t-tmin) / float64(tmax-tmin) * float64(width-1))
	}
	yPos := func(v float64) int {
		frac := (v - ymin) / (ymax - ymin)
		row := height - 1 - int(frac*float64(height-1)+0.5)
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		return row
	}
	for si, s := range st.series {
		g := seriesGlyphs[si%len(seriesGlyphs)]
		prevX, prevY := -1, -1
		for i, t := range s.T {
			if math.IsNaN(s.Y[i]) {
				prevX = -1
				continue
			}
			x, y := xPos(t), yPos(s.Y[i])
			grid[y][x] = g
			// Simple vertical interpolation to keep lines connected.
			if prevX >= 0 && x-prevX <= 1 && prevY != y {
				step := 1
				if prevY > y {
					step = -1
				}
				for yy := prevY + step; yy != y; yy += step {
					if grid[yy][x] == ' ' {
						grid[yy][x] = g
					}
				}
			}
			prevX, prevY = x, y
		}
	}
	// Header and legend.
	if st.Title != "" {
		fmt.Fprintf(w, "%s\n", st.Title)
	}
	legend := make([]string, 0, len(st.series))
	for si, s := range st.series {
		legend = append(legend, fmt.Sprintf("%c %s", seriesGlyphs[si%len(seriesGlyphs)], s.Name))
	}
	fmt.Fprintf(w, "legend: %s\n", strings.Join(legend, " | "))
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.6g", ymax)
		case height - 1:
			label = fmt.Sprintf("%8.6g", ymin)
		case (height - 1) / 2:
			label = fmt.Sprintf("%8.6g", (ymin+ymax)/2)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s  %-10d%s%10d  (%s)\n", strings.Repeat(" ", 8), tmin,
		strings.Repeat(" ", max(0, width-22)), tmax, st.XLabel)
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
