package trace

import (
	"bytes"
	"math"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes through the CSV trace parser. The
// parser must never panic, and any set it accepts must survive a
// WriteCSV → ReadCSV round trip unchanged — provided the set is in the
// canonical form WriteCSV itself produces (strictly increasing time
// stamps per series, no NaN samples). Non-canonical but parseable
// input (duplicate or out-of-order rows) is legal to read; it just has
// no round-trip guarantee, because Series.At binary-searches T.
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("t,a,b\n0,1,2\n1,,3.5\n"))
	f.Add([]byte("t,\"name,with\"\"quote\"\n-5,1e-3\n7,\n"))
	f.Add([]byte("t,gap_m,vel_mps\n0,112.5,31.3\n1,112.1,31.2\n2,111.8,31.1\n"))
	f.Add([]byte("t\n"))
	f.Add([]byte("x,a\n0,1\n"))
	f.Add([]byte("t,a\n0,nope\n"))
	f.Add([]byte("t,a,a\n0,1,2\n"))
	f.Add([]byte("t,a\n0,1\n0,2\n"))
	f.Add([]byte("t,a\n5,1\n3,2\n"))
	f.Add([]byte("t,a\n0,NaN\n1,+Inf\n"))
	f.Add([]byte("t,a\n0,1,9\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		if !canonicalSet(st) {
			return
		}
		var buf bytes.Buffer
		if err := st.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV of a parsed set failed: %v", err)
		}
		back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written CSV failed: %v\ncsv:\n%s", err, buf.String())
		}
		equalSets(t, st, back, buf.String())
	})
}

// canonicalSet reports whether every series has strictly increasing
// time stamps and no NaN values — the form WriteCSV emits and the only
// form it can reproduce (NaNs become empty cells; At assumes sorted T).
func canonicalSet(st *Set) bool {
	for _, name := range st.Names() {
		s := st.Series(name)
		for i := range s.T {
			if i > 0 && s.T[i] <= s.T[i-1] {
				return false
			}
			if math.IsNaN(s.Y[i]) {
				return false
			}
		}
	}
	return true
}

func equalSets(t *testing.T, want, got *Set, csv string) {
	t.Helper()
	wn, gn := want.Names(), got.Names()
	if len(wn) != len(gn) {
		t.Fatalf("round trip changed series count: %v -> %v\ncsv:\n%s", wn, gn, csv)
	}
	for i := range wn {
		if wn[i] != gn[i] {
			t.Fatalf("round trip changed series names: %v -> %v\ncsv:\n%s", wn, gn, csv)
		}
		ws, gs := want.Series(wn[i]), got.Series(gn[i])
		if len(ws.T) != len(gs.T) {
			t.Fatalf("series %q: %d samples -> %d\ncsv:\n%s", wn[i], len(ws.T), len(gs.T), csv)
		}
		for j := range ws.T {
			if ws.T[j] != gs.T[j] || ws.Y[j] != gs.Y[j] {
				t.Fatalf("series %q sample %d: (%d, %v) -> (%d, %v)\ncsv:\n%s",
					wn[i], j, ws.T[j], ws.Y[j], gs.T[j], gs.Y[j], csv)
			}
		}
	}
}
