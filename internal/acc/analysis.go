package acc

import (
	"math"

	"safesense/internal/lti"
	"safesense/internal/mat"
)

// LinearizedClosedLoop expresses the spacing-mode car-following loop as the
// discrete-time LTI system of the paper's Section 3,
//
//	x_{k+1} = A x_k + B u_k,   y_k = C x_k + v_k,
//
// with state x = [d, vF, aF] (gap, follower speed, realized acceleration),
// input u = vL (leader speed), and output y = d (the radar's distance
// channel). The affine offset d0 is dropped by linearizing about the
// equilibrium gap d* = d0 + tau_h vL.
//
// Dynamics, with T the sample period, phi = exp(-T/Ti) the lower-level lag
// pole, and c = T/(tau_h K1) the CTH gain:
//
//	a_des = (c/T) (d - d0 + vL - (1 + tau_h) vF)
//	aF'   = phi aF + (1 - phi) K1 a_des
//	vF'   = vF + T aF'
//	d'    = d + T (vL - vF)
//
// The returned system carries the radar's measurement noise standard
// deviation on the output when measStd > 0.
func LinearizedClosedLoop(cfg Config, measStd float64) (*lti.System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tSamp := cfg.SamplePeriod
	phi := math.Exp(-tSamp / cfg.TimeConstant)
	// a_des = g (d + vL - (1+tau_h) vF) with g = 1/(tau_h K1) per second.
	g := 1 / (cfg.HeadwayTime * cfg.Gain)
	k1 := cfg.Gain
	// Shorthand for the lower-level injection of a_des into aF'.
	inj := (1 - phi) * k1 * g

	// The gap integrates the *updated* follower speed (matching the
	// simulation's ordering: command, actuate, then move):
	//
	//	d' = d + T (vL - vF')
	a := mat.NewDenseData(3, 3, []float64{
		// d' = (1 - T^2 inj) d - T (1 - T inj (1+tau_h)) vF - T^2 phi aF
		1 - tSamp*tSamp*inj, -tSamp * (1 - tSamp*inj*(1+cfg.HeadwayTime)), -tSamp * tSamp * phi,
		// vF' = vF + T aF' = T*inj*d + (1 - T*inj*(1+tau_h)) vF + T*phi aF
		tSamp * inj, 1 - tSamp*inj*(1+cfg.HeadwayTime), tSamp * phi,
		// aF' = inj*d - inj*(1+tau_h) vF + phi aF
		inj, -inj * (1 + cfg.HeadwayTime), phi,
	})
	b := mat.NewDenseData(3, 1, []float64{
		tSamp * (1 - tSamp*inj), // d' gains T vL - T^2 inj vL via vF'
		tSamp * inj,             // vF' via aF'
		inj,                     // aF'
	})
	c := mat.NewDenseData(1, 3, []float64{1, 0, 0})
	var std []float64
	if measStd > 0 {
		std = []float64{measStd}
	}
	return lti.NewSystem(a, b, c, std)
}

// EquilibriumGap returns the linearized loop's steady-state gap for a
// constant leader speed: d* = d0 + tau_h * vL (the CTH set point).
func EquilibriumGap(cfg Config, vL float64) float64 {
	return cfg.StopDistance + cfg.HeadwayTime*vL
}
