package acc

import (
	"math"
	"testing"
	"testing/quick"

	"safesense/internal/noise"
)

// TestSpacingLawMonotoneProperty: with everything else fixed, a larger gap
// (or a faster-receding leader) never yields a smaller desired speed.
func TestSpacingLawMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := noise.NewSource(seed)
		v := src.Uniform(5, 35)
		d := src.Uniform(5, 80)
		dv := src.Uniform(-5, 5)
		mk := func(d, dv float64) float64 {
			u, err := NewUpperController(cfg())
			if err != nil {
				return math.NaN()
			}
			return u.Step(d, dv, v, true).VDes
		}
		if mk(d+1, dv) < mk(d, dv) {
			return false
		}
		return mk(d, dv+1) >= mk(d, dv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCommandAlwaysWithinActuatorLimitsProperty: no input combination can
// command beyond the saturation bounds.
func TestCommandAlwaysWithinActuatorLimitsProperty(t *testing.T) {
	c := cfg()
	f := func(d, dv, v float64) bool {
		for _, x := range []float64{d, dv, v} {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		if v < 0 {
			v = -v
		}
		u, err := NewUpperController(c)
		if err != nil {
			return false
		}
		cmd := u.Step(d, dv, v, true)
		return cmd.ADes <= c.AccelMax+1e-12 && cmd.ADes >= -c.BrakeMax-1e-12 && cmd.VDes >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestModeArbitrationPicksConservativeProperty: the arbitrated VDes is
// never above the speed-mode command.
func TestModeArbitrationPicksConservativeProperty(t *testing.T) {
	c := cfg()
	f := func(seed int64) bool {
		src := noise.NewSource(seed)
		u, err := NewUpperController(c)
		if err != nil {
			return false
		}
		cmd := u.Step(src.Uniform(1, 300), src.Uniform(-20, 20), src.Uniform(0, 40), true)
		return cmd.VDes <= c.SetSpeed+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestLowerControllerBIBOProperty: bounded demands keep the realized
// acceleration within the demand's historical bounds (DC gain 1,
// first-order lag).
func TestLowerControllerBIBOProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := noise.NewSource(seed)
		l, err := NewLowerController(cfg())
		if err != nil {
			return false
		}
		lo, hi := 0.0, 0.0
		for k := 0; k < 200; k++ {
			u := src.Uniform(-6, 2.5)
			if u < lo {
				lo = u
			}
			if u > hi {
				hi = u
			}
			a := l.Step(u)
			if a < lo-1e-9 || a > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
