package acc

import (
	"math"
	"testing"

	"safesense/internal/units"
	"safesense/internal/vehicle"
)

func cfg() Config { return DefaultConfig(units.MphToMps(67)) }

func TestConfigValidate(t *testing.T) {
	if err := cfg().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.SetSpeed = 0 },
		func(c *Config) { c.HeadwayTime = 0 },
		func(c *Config) { c.StopDistance = -1 },
		func(c *Config) { c.Gain = 0 },
		func(c *Config) { c.TimeConstant = 0 },
		func(c *Config) { c.SamplePeriod = 0 },
		func(c *Config) { c.AccelMax = 0 },
		func(c *Config) { c.BrakeMax = 0 },
	}
	for i, m := range mutations {
		c := cfg()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation %d should fail validation", i)
		}
	}
}

func TestDesiredDistanceEqn12(t *testing.T) {
	c := cfg()
	// d_des = d0 + tau_h * vF = 5 + 3 * 29.9517 at the paper's set speed.
	v := units.MphToMps(67)
	want := 5 + 3*v
	if got := c.DesiredDistance(v); math.Abs(got-want) > 1e-9 {
		t.Fatalf("DesiredDistance = %v, want %v", got, want)
	}
}

func TestSpeedModeWhenFarOrNoTarget(t *testing.T) {
	u, err := NewUpperController(cfg())
	if err != nil {
		t.Fatal(err)
	}
	// No target at all.
	cmd := u.Step(0, 0, 20, false)
	if cmd.Mode != SpeedControl {
		t.Fatalf("mode = %v, want speed", cmd.Mode)
	}
	if cmd.VDes != cfg().SetSpeed {
		t.Fatalf("VDes = %v, want set speed", cmd.VDes)
	}
	// Target far beyond the desired distance.
	cmd = u.Step(500, 0, 20, true)
	if cmd.Mode != SpeedControl {
		t.Fatalf("mode = %v, want speed for far target", cmd.Mode)
	}
}

func TestSpacingModeWhenClose(t *testing.T) {
	u, _ := NewUpperController(cfg())
	v := 29.0
	d := cfg().DesiredDistance(v) - 10 // inside the desired gap
	cmd := u.Step(d, -1, v, true)
	if cmd.Mode != SpacingControl {
		t.Fatalf("mode = %v, want spacing", cmd.Mode)
	}
	if cmd.ClearanceError >= 0 {
		t.Fatalf("clearance error = %v, want negative", cmd.ClearanceError)
	}
	// Too close and closing: the controller must demand deceleration.
	if cmd.VDes >= v {
		t.Fatalf("VDes = %v, want below current speed %v", cmd.VDes, v)
	}
}

func TestSpacingEquilibrium(t *testing.T) {
	// At exactly d = d_des and matched speeds, VDes equals vF (Eqn 13
	// equilibrium).
	u, _ := NewUpperController(cfg())
	v := 25.0
	cmd := u.Step(cfg().DesiredDistance(v), 0, v, true)
	if cmd.Mode != SpacingControl {
		t.Fatalf("mode = %v", cmd.Mode)
	}
	if math.Abs(cmd.VDes-v) > 1e-9 {
		t.Fatalf("VDes = %v, want %v", cmd.VDes, v)
	}
}

func TestADesSaturation(t *testing.T) {
	c := cfg()
	u, _ := NewUpperController(c)
	// Massive spoofed closing rate: demanded acceleration must clip at
	// AccelMax.
	cmd := u.Step(c.DesiredDistance(25)-1, 500, 25, true)
	if cmd.ADes > c.AccelMax+1e-12 {
		t.Fatalf("ADes = %v exceeds AccelMax", cmd.ADes)
	}
	// Emergency closing: clipped at -BrakeMax.
	cmd = u.Step(5, -50, 25, true)
	if cmd.ADes < -c.BrakeMax-1e-12 {
		t.Fatalf("ADes = %v exceeds brake limit", cmd.ADes)
	}
}

func TestSpeedModeAcceleratesTowardSetSpeed(t *testing.T) {
	// A speed-mode vehicle below v_set must be commanded to accelerate —
	// the regression that motivated anchoring Eqn 16 at vF.
	u, _ := NewUpperController(cfg())
	cmd := u.Step(0, 0, 20, false)
	if cmd.ADes <= 0 {
		t.Fatalf("ADes = %v, want positive below set speed", cmd.ADes)
	}
	// At the set speed the command settles to zero.
	cmd = u.Step(0, 0, cfg().SetSpeed, false)
	if math.Abs(cmd.ADes) > 1e-9 {
		t.Fatalf("ADes at set speed = %v, want 0", cmd.ADes)
	}
}

func TestVDesNeverNegative(t *testing.T) {
	u, _ := NewUpperController(cfg())
	cmd := u.Step(1, -100, 2, true)
	if cmd.VDes < 0 {
		t.Fatalf("VDes = %v, want >= 0", cmd.VDes)
	}
}

func TestLowerControllerTracksStep(t *testing.T) {
	l, err := NewLowerController(cfg())
	if err != nil {
		t.Fatal(err)
	}
	// Constant demand: converges to K1 * aDes = aDes.
	var a float64
	for i := 0; i < 50; i++ {
		a = l.Step(-1.5)
	}
	if math.Abs(a-(-1.5)) > 1e-6 {
		t.Fatalf("lower loop settled at %v, want -1.5", a)
	}
	if math.Abs(l.Accel()-a) > 1e-12 {
		t.Fatal("Accel() inconsistent")
	}
}

func TestLowerControllerFirstStepFraction(t *testing.T) {
	// One sample of the ZOH first-order lag moves (1 - exp(-T/Ti)) of the
	// way: ~0.6293 for T = 1, Ti = 1.008.
	l, _ := NewLowerController(cfg())
	a := l.Step(1.0)
	want := 1 - math.Exp(-1/1.008)
	if math.Abs(a-want) > 1e-9 {
		t.Fatalf("first-step response = %v, want %v", a, want)
	}
}

func TestControllerClosedLoopFollowsDeceleratingLeader(t *testing.T) {
	// Full hierarchical controller against the Figure 2 scenario without
	// attacks: the follower must slow down, never collide, and keep a gap
	// close to d_des once settled.
	c := cfg()
	ctl, err := NewController(c)
	if err != nil {
		t.Fatal(err)
	}
	leader := vehicle.State{Position: 100, Velocity: units.MphToMps(65)}
	follower := vehicle.State{Position: 0, Velocity: units.MphToMps(67)}
	minGap := math.Inf(1)
	for k := 0; k < 300; k++ {
		la := -0.1082
		if leader.Velocity <= 0 {
			la = 0
		}
		leader = leader.Step(la, 1)
		d := vehicle.Gap(leader, follower)
		dv := vehicle.RelVelocity(leader, follower)
		_, aF := ctl.Step(d, dv, follower.Velocity, true)
		follower = follower.Step(aF, 1)
		if g := vehicle.Gap(leader, follower); g < minGap {
			minGap = g
		}
	}
	if minGap <= 0 {
		t.Fatalf("collision: min gap %v", minGap)
	}
	// Both should be nearly stopped; gap near the standstill distance d0.
	if follower.Velocity > 1.0 {
		t.Fatalf("follower still at %v m/s", follower.Velocity)
	}
	gap := vehicle.Gap(leader, follower)
	if gap < 1 || gap > 30 {
		t.Fatalf("settled gap %v m implausible", gap)
	}
}

func TestModeString(t *testing.T) {
	if SpeedControl.String() != "speed" || SpacingControl.String() != "spacing" {
		t.Fatal("mode strings")
	}
}

func TestSpacingEquilibriumZeroAccel(t *testing.T) {
	// At d = d_des with matched speeds the commanded acceleration is zero.
	u, _ := NewUpperController(cfg())
	cmd := u.Step(cfg().DesiredDistance(20), 0, 20, true)
	if math.Abs(cmd.ADes) > 1e-9 {
		t.Fatalf("equilibrium ADes = %v, want 0", cmd.ADes)
	}
}
