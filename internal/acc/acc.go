// Package acc implements the adaptive cruise control system of the paper's
// Section 6.1: a hierarchical architecture whose upper-level controller
// turns radar measurements into a desired acceleration via the constant
// time headway (CTH) policy (Eqns 12, 13, 16) and whose lower-level
// controller tracks that acceleration through the first-order vehicle
// response of Eqn 14.
package acc

import (
	"errors"
	"math"

	"safesense/internal/lti"
)

// Config holds the controller parameters. The paper's values: headway time
// tau_h = 3 s, minimum stopping distance d0 = 5 m, system gain K1 = 1.0,
// time constant Ti = 1.008 s, sample period T = 1 s.
type Config struct {
	// SetSpeed is the driver-selected cruise speed v_set (m/s).
	SetSpeed float64
	// HeadwayTime is tau_h (s).
	HeadwayTime float64
	// StopDistance is d0 (m).
	StopDistance float64
	// Gain is K1.
	Gain float64
	// TimeConstant is Ti (s) of the lower-level loop.
	TimeConstant float64
	// SamplePeriod is T (s).
	SamplePeriod float64
	// AccelMax / BrakeMax bound the commanded acceleration (m/s^2;
	// BrakeMax is positive and applied as a lower bound of -BrakeMax).
	AccelMax, BrakeMax float64
}

// DefaultConfig returns the paper's parameter set with actuator limits
// typical of a passenger car, for a given set speed.
func DefaultConfig(setSpeed float64) Config {
	return Config{
		SetSpeed:     setSpeed,
		HeadwayTime:  3,
		StopDistance: 5,
		Gain:         1.0,
		TimeConstant: 1.008,
		SamplePeriod: 1,
		AccelMax:     2.5,
		BrakeMax:     6.0,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.SetSpeed <= 0:
		return errors.New("acc: set speed must be positive")
	case c.HeadwayTime <= 0:
		return errors.New("acc: headway time must be positive")
	case c.StopDistance < 0:
		return errors.New("acc: stop distance must be non-negative")
	case c.Gain <= 0:
		return errors.New("acc: gain must be positive")
	case c.TimeConstant <= 0:
		return errors.New("acc: time constant must be positive")
	case c.SamplePeriod <= 0:
		return errors.New("acc: sample period must be positive")
	case c.AccelMax <= 0 || c.BrakeMax <= 0:
		return errors.New("acc: actuator limits must be positive")
	}
	return nil
}

// DesiredDistance returns d_des per Eqn 12: d0 + tau_h * vF.
func (c Config) DesiredDistance(vF float64) float64 {
	return c.StopDistance + c.HeadwayTime*vF
}

// Mode is the ACC operating mode.
type Mode int

const (
	// SpeedControl drives at the set speed (no close preceding vehicle).
	SpeedControl Mode = iota
	// SpacingControl maintains the desired distance to the leader.
	SpacingControl
)

// String renders the mode.
func (m Mode) String() string {
	if m == SpacingControl {
		return "spacing"
	}
	return "speed"
}

// Command is the upper-level controller output for one step.
type Command struct {
	Mode Mode
	// VDes is the desired speed from the CTH law (m/s).
	VDes float64
	// ADes is the desired acceleration handed to the lower level (m/s^2),
	// already saturated to the actuator limits.
	ADes float64
	// ClearanceError is Delta d = d - d_des (m); meaningful in spacing
	// mode.
	ClearanceError float64
}

// UpperController implements the CTH output-feedback law of Eqn 13 with the
// desired-acceleration derivation of Eqn 16 and speed/spacing mode
// switching.
type UpperController struct {
	cfg Config
}

// NewUpperController validates the configuration.
func NewUpperController(cfg Config) (*UpperController, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &UpperController{cfg: cfg}, nil
}

// Config returns the controller configuration.
func (u *UpperController) Config() Config { return u.cfg }

// Step computes the step command from the radar measurement (d, dv) and the
// trusted own-speed measurement vF. Pass hasTarget = false when the radar
// reports no vehicle ahead (pure speed control).
//
// Mode arbitration takes the more conservative (smaller) of the speed-mode
// and spacing-mode desired speeds whenever a target is present. Switching
// on the raw d <= d_des comparison instead would chatter at the boundary:
// one step of spacing braking lowers vF and with it d_des, flipping the
// comparator back to speed mode, which commands full acceleration toward
// v_set — a bang-bang limit cycle. Min-arbitration is the standard ACC
// resolution and leaves both pure modes intact away from the boundary.
func (u *UpperController) Step(d, dv, vF float64, hasTarget bool) Command {
	cfg := u.cfg
	dDes := cfg.DesiredDistance(vF)
	cmd := Command{Mode: SpeedControl, VDes: cfg.SetSpeed}
	if hasTarget {
		// Spacing law, Eqn 13: with gain c = T/(tau_h K1),
		//
		//	v_des(k+1) = (1 - c) vF + c (vF + Δv + Δd)
		//	           = vF + c (Δv + Δd)
		//
		// the constant-time-headway law: desired speed adjusts the own
		// speed proportionally to the clearance error and closing rate,
		// with equilibrium exactly at Δd = Δv = 0 (gap = d_des, matched
		// speeds).
		cGain := cfg.SamplePeriod / (cfg.HeadwayTime * cfg.Gain)
		clearance := d - dDes
		vSpacing := vF + cGain*(dv+clearance)
		if vSpacing < cmd.VDes {
			cmd.Mode = SpacingControl
			cmd.ClearanceError = clearance
			cmd.VDes = vSpacing
		}
	}
	if cmd.VDes < 0 {
		cmd.VDes = 0
	}
	// Eqn 16 derives a_des from the change the desired speed asks of the
	// vehicle over one sample. Differencing successive v_des values
	// literally would command zero acceleration whenever v_des is
	// constant — a speed-mode vehicle below v_set would never speed up —
	// so the realized speed vF anchors the difference:
	//
	//	a_des(k+1) = (v_des(k+1) - vF(k)) / T
	//
	// which in spacing mode reduces to the classical CTH acceleration law
	// a_des = (Δv + Δd) / (tau_h K1).
	cmd.ADes = clamp((cmd.VDes-vF)/cfg.SamplePeriod, -cfg.BrakeMax, cfg.AccelMax)
	return cmd
}

func clamp(v, lo, hi float64) float64 {
	return math.Min(math.Max(v, lo), hi)
}

// LowerController tracks the desired acceleration through the first-order
// closed-loop response of Eqn 14, discretized exactly (zero-order hold):
//
//	a_F(s) / a_des(s) = K1 / (Ti s + 1)
type LowerController struct {
	sys *lti.System
	aF  []float64
}

// NewLowerController builds the lower-level loop from the configuration.
func NewLowerController(cfg Config) (*LowerController, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sys, err := lti.DiscretizeFirstOrderLag(cfg.Gain, cfg.TimeConstant, cfg.SamplePeriod)
	if err != nil {
		return nil, err
	}
	return &LowerController{sys: sys, aF: []float64{0}}, nil
}

// Step advances the actuator state one sample toward aDes and returns the
// realized vehicle acceleration a_F.
func (l *LowerController) Step(aDes float64) float64 {
	l.aF = l.sys.Step(l.aF, []float64{aDes})
	return l.aF[0]
}

// Accel returns the current realized acceleration.
func (l *LowerController) Accel() float64 { return l.aF[0] }

// Controller bundles the hierarchical pair.
type Controller struct {
	Upper *UpperController
	Lower *LowerController
}

// NewController builds the full hierarchical ACC controller.
func NewController(cfg Config) (*Controller, error) {
	u, err := NewUpperController(cfg)
	if err != nil {
		return nil, err
	}
	l, err := NewLowerController(cfg)
	if err != nil {
		return nil, err
	}
	return &Controller{Upper: u, Lower: l}, nil
}

// Step runs one full control cycle and returns the command and realized
// acceleration.
func (c *Controller) Step(d, dv, vF float64, hasTarget bool) (Command, float64) {
	cmd := c.Upper.Step(d, dv, vF, hasTarget)
	return cmd, c.Lower.Step(cmd.ADes)
}
