package acc

import (
	"math"
	"testing"

	"safesense/internal/units"
)

func TestLinearizedClosedLoopStable(t *testing.T) {
	sys, err := LinearizedClosedLoop(cfg(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Stable() {
		t.Fatal("the paper's controller gains must yield a Schur-stable loop")
	}
}

func TestLinearizedClosedLoopObservableControllable(t *testing.T) {
	sys, err := LinearizedClosedLoop(cfg(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Observable through the radar's distance channel — the property the
	// related work ([1] in the paper) requires for secure estimation.
	if !sys.Observable() {
		t.Fatal("distance-observed loop must be observable")
	}
	// Controllable from the leader-speed input.
	if !sys.Controllable() {
		t.Fatal("loop must be controllable from vL")
	}
}

func TestLinearizedEquilibriumMatchesCTH(t *testing.T) {
	// Drive the linearized system with constant vL; the gap must settle
	// at the CTH set point relative to the linearization offset: since
	// the affine d0 is dropped, the linear system settles at d = tau_h*vL
	// + d0 once the offset is re-added via EquilibriumGap.
	c := cfg()
	sys, err := LinearizedClosedLoop(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	vL := 20.0
	x := []float64{0, 0, 0}
	for k := 0; k < 2000; k++ {
		x = sys.Step(x, []float64{vL})
	}
	// Steady state of the linear part: d* - d0 = tau_h * vL + ... Verify
	// via the defining equations instead: vF* = vL and aF* = 0.
	if math.Abs(x[1]-vL) > 1e-6 {
		t.Fatalf("steady follower speed %v, want %v", x[1], vL)
	}
	if math.Abs(x[2]) > 1e-6 {
		t.Fatalf("steady acceleration %v, want 0", x[2])
	}
	// And the linear gap satisfies a_des = 0:
	// d* + vL - (1+tau_h) vF* = d0-term... with the affine part dropped,
	// d* = (1+tau_h) vL - vL = tau_h * vL.
	if math.Abs(x[0]-c.HeadwayTime*vL) > 1e-5 {
		t.Fatalf("steady linear gap %v, want %v", x[0], c.HeadwayTime*vL)
	}
	// The physical equilibrium gap adds d0 back.
	if got := EquilibriumGap(c, vL); math.Abs(got-(5+3*vL)) > 1e-12 {
		t.Fatalf("EquilibriumGap = %v", got)
	}
}

func TestLinearizedMatchesNonlinearSimulation(t *testing.T) {
	// In spacing mode, away from saturations and standstill, the full
	// controller + kinematics should follow the linearized model closely.
	c := cfg()
	sys, err := LinearizedClosedLoop(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Nonlinear loop.
	ctl, err := NewController(c)
	if err != nil {
		t.Fatal(err)
	}
	vL := units.MphToMps(60)
	// Start near equilibrium with a small perturbation.
	dPhys := EquilibriumGap(c, vL) + 3
	vF := vL - 0.5
	aF := 0.0
	// Linear state is the deviation-free absolute gap minus d0.
	x := []float64{dPhys - c.StopDistance, vF, aF}
	for k := 0; k < 40; k++ {
		cmd := ctl.Upper.Step(dPhys, vL-vF, vF, true)
		if cmd.Mode != SpacingControl {
			t.Fatalf("left spacing mode at %d", k)
		}
		aF = ctl.Lower.Step(cmd.ADes)
		vF += aF * c.SamplePeriod
		dPhys += (vL - vF) * c.SamplePeriod

		x = sys.Step(x, []float64{vL})
		if math.Abs((x[0]+c.StopDistance)-dPhys) > 0.75 {
			t.Fatalf("k=%d: linear gap %v vs nonlinear %v", k, x[0]+c.StopDistance, dPhys)
		}
		if math.Abs(x[1]-vF) > 0.5 {
			t.Fatalf("k=%d: linear vF %v vs nonlinear %v", k, x[1], vF)
		}
	}
}

func TestLinearizedRejectsBadConfig(t *testing.T) {
	bad := cfg()
	bad.HeadwayTime = 0
	if _, err := LinearizedClosedLoop(bad, 0); err == nil {
		t.Fatal("invalid config should fail")
	}
}
