package lateral

import (
	"errors"
	"math"

	"safesense/internal/control"
	"safesense/internal/mat"
)

// LKC is a lane-keeping controller: LQR state feedback on the lane error
// state with steering saturation.
type LKC struct {
	k        *mat.Dense
	maxSteer float64
}

// LKCConfig tunes the controller synthesis.
type LKCConfig struct {
	// QDiag weighs [e_y, e_y', e_psi, e_psi'] (zero means a lane-centering
	// default).
	QDiag []float64
	// R weighs the steering effort (zero means 50).
	R float64
	// MaxSteerRad saturates the command (zero means 0.30 rad ≈ 17°).
	MaxSteerRad float64
}

// NewLKC synthesizes the controller for the given plant.
func NewLKC(m *Model, cfg LKCConfig) (*LKC, error) {
	if m == nil {
		return nil, errors.New("lateral: nil model")
	}
	qd := cfg.QDiag
	if qd == nil {
		qd = []float64{8, 0.5, 4, 0.25}
	}
	if len(qd) != stateDim {
		return nil, errors.New("lateral: QDiag must have 4 entries")
	}
	r := cfg.R
	if r == 0 {
		r = 50
	}
	if r < 0 {
		return nil, errors.New("lateral: R must be positive")
	}
	maxSteer := cfg.MaxSteerRad
	if maxSteer == 0 {
		maxSteer = 0.30
	}
	if maxSteer < 0 {
		return nil, errors.New("lateral: MaxSteerRad must be positive")
	}
	k, _, err := control.DLQR(m.A, m.B, mat.Diag(qd), mat.Diag([]float64{r}), 0, 0)
	if err != nil {
		return nil, err
	}
	return &LKC{k: k, maxSteer: maxSteer}, nil
}

// Steer returns the saturated steering command for the error state x.
func (c *LKC) Steer(x []float64) float64 {
	u := -mat.Dot(c.k.Row(0), x)
	return math.Min(math.Max(u, -c.maxSteer), c.maxSteer)
}

// Gain exposes the LQR gain row (diagnostics).
func (c *LKC) Gain() []float64 { return c.k.Row(0) }
