package lateral

import (
	"errors"
	"fmt"

	"safesense/internal/estimate"
	"safesense/internal/noise"
	"safesense/internal/prbs"
	"safesense/internal/trace"
)

// Measurement is one lateral-sensor sample: an active (lidar-type) lane
// sensor measuring the offset from the lane centerline and the heading
// error. The same CRA contract as the radar applies: at challenge instants
// the sensor emits nothing, so receiver energy implies an attacker.
type Measurement struct {
	K         int
	Ey, EPsi  float64
	Power     float64
	Challenge bool
}

// SensorParams models the active lane sensor.
type SensorParams struct {
	// EyStd / EPsiStd are the measurement noise standard deviations.
	EyStd, EPsiStd float64
	// ReturnPowerW is the nominal optical return power, NoiseFloorW the
	// quiet-channel level; the detector threshold sits between them.
	ReturnPowerW, NoiseFloorW float64
}

// DefaultSensor returns a lidar-like lane sensor: centimeter-level offset
// accuracy at 50 Hz.
func DefaultSensor() SensorParams {
	return SensorParams{EyStd: 0.02, EPsiStd: 0.005, ReturnPowerW: 1e-6, NoiseFloorW: 1e-9}
}

// ZeroThreshold is the detector's quiet-channel level.
func (s SensorParams) ZeroThreshold() float64 { return 10 * s.NoiseFloorW }

// Scenario configures a lane-keeping run under lateral-sensor attack.
type Scenario struct {
	Name string
	// Steps at period DT.
	Steps int
	// DT is the control period (s).
	DT float64
	// Speed is the constant longitudinal speed vx (m/s).
	Speed float64
	// Vehicle and Sensor parameters.
	Vehicle BicycleParams
	Sensor  SensorParams
	// InitialEy perturbs the starting lateral offset (m).
	InitialEy float64
	// Schedule supplies challenge instants.
	Schedule prbs.Schedule
	// SpoofOffsetM biases the measured offset within the attack window
	// (0 disables the attack).
	SpoofOffsetM float64
	// AttackStart / AttackEnd bound the attack in steps.
	AttackStart, AttackEnd int
	// Defended enables CRA + RLS.
	Defended bool
	// LaneHalfWidthM is the departure threshold (zero means 1.75 m).
	LaneHalfWidthM float64
	Seed           int64
}

// DefaultScenario returns a 30 s highway lane-keeping run with a +0.8 m
// spoof starting at step 800 and a pseudo-random challenge schedule.
func DefaultScenario() Scenario {
	sched, err := prbs.NewLFSRSchedule(12, 77, 4, 1500)
	if err != nil {
		panic(err) // static construction cannot fail
	}
	return Scenario{
		Name:           "lane-keeping-spoof",
		Steps:          1500,
		DT:             0.02,
		Speed:          30,
		Vehicle:        DefaultSedan(),
		Sensor:         DefaultSensor(),
		InitialEy:      0.3,
		Schedule:       sched,
		SpoofOffsetM:   0.8,
		AttackStart:    800,
		AttackEnd:      1499,
		Defended:       true,
		LaneHalfWidthM: 1.75,
		Seed:           1,
	}
}

// Validate checks scenario consistency.
func (s Scenario) Validate() error {
	if s.Steps < 1 || s.DT <= 0 || s.Speed <= 0 {
		return errors.New("lateral: steps, dt, and speed must be positive")
	}
	if s.Schedule == nil {
		return errors.New("lateral: nil challenge schedule")
	}
	if s.SpoofOffsetM != 0 && s.AttackEnd < s.AttackStart {
		return errors.New("lateral: attack window inverted")
	}
	if err := s.Vehicle.Validate(); err != nil {
		return err
	}
	return nil
}

// Result carries the lane-keeping run outcome.
type Result struct {
	Scenario   Scenario
	Offset     *trace.Set
	DetectedAt int
	// MaxAbsEy is the largest true lateral offset (m).
	MaxAbsEy float64
	// DepartedAt is the first step |e_y| exceeded the lane half width,
	// -1 if the vehicle stayed in lane.
	DepartedAt int
}

// Run executes the lane-keeping scenario: plant -> active lane sensor
// (with CRA challenges) -> spoof attack -> CRA comparison -> RLS
// estimation -> LKC steering. The heading-rate and offset-rate states come
// from the (trusted) inertial sensors, mirroring the longitudinal study's
// trusted own-speed assumption.
func Run(s Scenario) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	model, err := NewModel(s.Vehicle, s.Speed, s.DT)
	if err != nil {
		return nil, err
	}
	ctl, err := NewLKC(model, LKCConfig{})
	if err != nil {
		return nil, err
	}
	src := noise.NewSource(s.Seed)
	predCfg := estimate.DefaultPredictorConfig()
	eyPred, err := estimate.NewPredictor(predCfg)
	if err != nil {
		return nil, err
	}
	epsiPred, err := estimate.NewPredictor(predCfg)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Scenario:   s,
		Offset:     trace.NewSet(s.Name+": lateral offset", "step", "e_y (m)"),
		DetectedAt: -1,
		DepartedAt: -1,
	}
	tTrue := res.Offset.Add("truth")
	tMeas := res.Offset.Add("measured")
	tEst := res.Offset.Add("estimated")

	x := []float64{s.InitialEy, 0, 0, 0}
	underAttack := false
	heldEy, heldEPsi := s.InitialEy, 0.0
	laneHalf := s.LaneHalfWidthM
	if laneHalf == 0 {
		laneHalf = 1.75
	}
	// Recovery bookkeeping. CRA verifies the channel only at challenge
	// instants, so the defense anchors the vehicle's absolute lane
	// position at each verified-clean challenge — the RLS trend's
	// one-step prediction there, which smooths the sensor noise — and
	// dead-reckons from the anchor with the trusted inertial rates
	// (e_y' and e_psi' are exactly the offsets' derivatives in the error
	// model). During an attack the estimate is anchor + integrated rates:
	// responsive to the vehicle's own steering, unbiased by any spoofed
	// samples absorbed between onset and detection, and it re-centers the
	// vehicle because the rate integral has tracked the real displacement
	// through the detection-latency window.
	anchorEy, anchorEPsi := s.InitialEy, 0.0
	rateIntEy, rateIntEPsi := 0.0, 0.0

	for k := 0; k < s.Steps; k++ {
		tTrue.Append(k, x[StateEy])
		if a := abs(x[StateEy]); a > res.MaxAbsEy {
			res.MaxAbsEy = a
		}
		if abs(x[StateEy]) > laneHalf && res.DepartedAt < 0 {
			res.DepartedAt = k
		}

		m := observe(s, k, x, src)
		attacked := s.SpoofOffsetM != 0 && k >= s.AttackStart && k <= s.AttackEnd
		if attacked {
			if m.Challenge {
				// The spoofer's hardware delay leaks into the quiet
				// window, exactly as with the radar.
				m.Power += s.Sensor.ReturnPowerW / 4
			} else {
				m.Ey += s.SpoofOffsetM
			}
		}
		tMeas.Append(k, m.Ey)

		useEy, useEPsi := m.Ey, m.EPsi
		if s.Defended && m.Challenge {
			switch {
			case m.Power > s.Sensor.ZeroThreshold() && !underAttack:
				underAttack = true
				if res.DetectedAt < 0 {
					res.DetectedAt = k
				}
			case m.Power <= s.Sensor.ZeroThreshold():
				underAttack = false
				// Verified-clean challenge: re-anchor from the RLS
				// trends and restart the dead-reckoning integrals.
				anchorEy = peek(eyPred)
				anchorEPsi = peek(epsiPred)
				rateIntEy, rateIntEPsi = 0, 0
			}
		}
		switch {
		case s.Defended && underAttack:
			useEy = anchorEy + rateIntEy
			useEPsi = anchorEPsi + rateIntEPsi
			eyPred.SkipStep() // trends pause; the integrals carry on
			epsiPred.SkipStep()
			tEst.Append(k, useEy)
		case m.Challenge:
			useEy, useEPsi = heldEy, heldEPsi
			if s.Defended {
				eyPred.SkipStep()
				epsiPred.SkipStep()
			}
		default:
			if s.Defended {
				if _, err := eyPred.Observe(m.Ey); err != nil {
					return nil, fmt.Errorf("lateral: %w", err)
				}
				if _, err := epsiPred.Observe(m.EPsi); err != nil {
					return nil, fmt.Errorf("lateral: %w", err)
				}
			}
		}
		heldEy, heldEPsi = useEy, useEPsi

		// Rates come from trusted inertial sensing: use the true state.
		delta := ctl.Steer([]float64{useEy, x[StateEyDot], useEPsi, x[StateEPsiDot]})
		rateIntEy += x[StateEyDot] * s.DT
		rateIntEPsi += x[StateEPsiDot] * s.DT
		x = model.Step(x, delta)
	}
	return res, nil
}

func observe(s Scenario, k int, x []float64, src *noise.Source) Measurement {
	if s.Schedule.Challenge(k) {
		return Measurement{K: k, Challenge: true, Power: s.Sensor.NoiseFloorW}
	}
	return Measurement{
		K:     k,
		Ey:    x[StateEy] + src.Gaussian(0, s.Sensor.EyStd),
		EPsi:  x[StateEPsi] + src.Gaussian(0, s.Sensor.EPsiStd),
		Power: s.Sensor.ReturnPowerW,
	}
}

// peek returns the predictor's one-step prediction without advancing its
// state (trend-smoothed current value).
func peek(p *estimate.Predictor) float64 {
	return p.Clone().Predict()
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
