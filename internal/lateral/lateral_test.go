package lateral

import (
	"math"
	"testing"

	"safesense/internal/mat"
)

func TestBicycleParamsValidate(t *testing.T) {
	if err := DefaultSedan().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*BicycleParams){
		func(p *BicycleParams) { p.MassKg = 0 },
		func(p *BicycleParams) { p.YawInertia = -1 },
		func(p *BicycleParams) { p.LfM = 0 },
		func(p *BicycleParams) { p.CorneringRear = 0 },
	}
	for i, m := range mutations {
		p := DefaultSedan()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("mutation %d should fail", i)
		}
	}
}

func TestContinuousMatricesShape(t *testing.T) {
	a, b, err := DefaultSedan().ContinuousMatrices(30)
	if err != nil {
		t.Fatal(err)
	}
	if r, c := a.Dims(); r != 4 || c != 4 {
		t.Fatalf("A dims %dx%d", r, c)
	}
	if r, c := b.Dims(); r != 4 || c != 1 {
		t.Fatalf("B dims %dx%d", r, c)
	}
	// Zero speed rejected.
	if _, _, err := DefaultSedan().ContinuousMatrices(0); err == nil {
		t.Fatal("vx=0 should fail")
	}
	// e_y integrates e_y': A[0][1] = 1.
	if a.At(0, 1) != 1 {
		t.Fatal("offset integrator row wrong")
	}
}

func TestDiscretizeConsistency(t *testing.T) {
	// Two substep resolutions must agree closely (integration converged).
	p := DefaultSedan()
	a1, b1, err := p.Discretize(30, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	// Composing two 0.01 s steps must approximate one 0.02 s step.
	a2, b2, err := p.Discretize(30, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	aa := a2.Mul(a2)
	if !aa.EqualApprox(a1, 1e-3*(1+a1.MaxAbs())) {
		t.Fatal("discretization not consistent across step sizes")
	}
	bb := a2.Mul(b2).Add(b2)
	if !bb.EqualApprox(b1, 1e-3*(1+b1.MaxAbs())) {
		t.Fatal("input discretization not consistent")
	}
}

func TestOpenLoopHeadingErrorDrifts(t *testing.T) {
	// Without steering, an initial heading error grows the offset.
	m, err := NewModel(DefaultSedan(), 30, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0, 0, 0.05, 0}
	for k := 0; k < 100; k++ {
		x = m.Step(x, 0)
	}
	if x[StateEy] < 0.5 {
		t.Fatalf("offset after 2 s of 0.05 rad heading error = %v, want > 0.5", x[StateEy])
	}
}

func TestLKCCentersVehicle(t *testing.T) {
	m, err := NewModel(DefaultSedan(), 30, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewLKC(m, LKCConfig{})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.8, 0, 0.02, 0}
	for k := 0; k < 500; k++ {
		x = m.Step(x, ctl.Steer(x))
	}
	if math.Abs(x[StateEy]) > 0.01 || math.Abs(x[StateEPsi]) > 0.005 {
		t.Fatalf("not centered after 10 s: ey=%v epsi=%v", x[StateEy], x[StateEPsi])
	}
}

func TestLKCClosedLoopStable(t *testing.T) {
	m, _ := NewModel(DefaultSedan(), 30, 0.02)
	ctl, _ := NewLKC(m, LKCConfig{})
	// A - B K spectral radius < 1.
	k := mat.NewDenseData(1, 4, ctl.Gain())
	cl := m.A.Sub(m.B.Mul(k))
	if rho := mat.SpectralRadius(cl, 0); rho >= 1 {
		t.Fatalf("closed-loop spectral radius %v", rho)
	}
}

func TestLKCSaturation(t *testing.T) {
	m, _ := NewModel(DefaultSedan(), 30, 0.02)
	ctl, _ := NewLKC(m, LKCConfig{MaxSteerRad: 0.2})
	u := ctl.Steer([]float64{100, 0, 0, 0})
	if math.Abs(u) > 0.2+1e-12 {
		t.Fatalf("steer %v exceeds saturation", u)
	}
}

func TestLKCValidation(t *testing.T) {
	m, _ := NewModel(DefaultSedan(), 30, 0.02)
	if _, err := NewLKC(nil, LKCConfig{}); err == nil {
		t.Fatal("nil model should fail")
	}
	if _, err := NewLKC(m, LKCConfig{QDiag: []float64{1, 2}}); err == nil {
		t.Fatal("short QDiag should fail")
	}
	if _, err := NewLKC(m, LKCConfig{R: -1}); err == nil {
		t.Fatal("negative R should fail")
	}
}

func TestLaneKeepingCleanRun(t *testing.T) {
	s := DefaultScenario()
	s.SpoofOffsetM = 0
	s.Name = "clean"
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectedAt != -1 {
		t.Fatalf("false detection at %d", res.DetectedAt)
	}
	if res.DepartedAt != -1 {
		t.Fatalf("lane departure at %d in clean run", res.DepartedAt)
	}
	// Initial 0.3 m offset decays: final max bounded by the initial.
	if res.MaxAbsEy > 0.35 {
		t.Fatalf("max |ey| = %v", res.MaxAbsEy)
	}
}

func TestLaneKeepingSpoofUndefended(t *testing.T) {
	s := DefaultScenario()
	s.Defended = false
	s.Name = "undefended"
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	// The +0.8 m spoof steers the real vehicle ~0.8 m off center.
	if res.MaxAbsEy < 0.6 {
		t.Fatalf("spoof had no effect: max |ey| = %v", res.MaxAbsEy)
	}
}

func TestLaneKeepingSpoofDefended(t *testing.T) {
	res, err := Run(DefaultScenario())
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectedAt < 800 {
		t.Fatalf("detected at %d, before onset", res.DetectedAt)
	}
	if res.DetectedAt == -1 {
		t.Fatal("attack never detected")
	}
	// At 50 Hz the vehicle fully tracks the phantom offset within the
	// detection-latency window, so the run's *max* offset is latency-
	// dominated for both runs. The defense's value is recovery: after
	// detection the defended vehicle re-centers, while the undefended one
	// holds the spoofed offset to the end.
	undef := DefaultScenario()
	undef.Defended = false
	ures, err := Run(undef)
	if err != nil {
		t.Fatal(err)
	}
	settle := res.DetectedAt + 200 // 4 s after detection
	defEnd := maxAbsAfter(t, res, settle)
	undefEnd := maxAbsAfter(t, ures, settle)
	if defEnd > 0.25 {
		t.Fatalf("defended offset after recovery = %v, want re-centered", defEnd)
	}
	if undefEnd < 0.6 {
		t.Fatalf("undefended offset after %d = %v, want held near the spoof", settle, undefEnd)
	}
}

// maxAbsAfter returns the largest |truth e_y| at steps >= from.
func maxAbsAfter(t *testing.T, res *Result, from int) float64 {
	t.Helper()
	truth := res.Offset.Series("truth")
	if truth == nil {
		t.Fatal("missing truth series")
	}
	max := 0.0
	for i, k := range truth.T {
		if k >= from {
			if a := math.Abs(truth.Y[i]); a > max {
				max = a
			}
		}
	}
	return max
}

func TestLaneKeepingValidation(t *testing.T) {
	s := DefaultScenario()
	s.Steps = 0
	if _, err := Run(s); err == nil {
		t.Fatal("steps 0 should fail")
	}
	s = DefaultScenario()
	s.Schedule = nil
	if _, err := Run(s); err == nil {
		t.Fatal("nil schedule should fail")
	}
	s = DefaultScenario()
	s.AttackEnd = 10
	s.AttackStart = 20
	if _, err := Run(s); err == nil {
		t.Fatal("inverted window should fail")
	}
}

func TestLaneKeepingDeterminism(t *testing.T) {
	a, err := Run(DefaultScenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(DefaultScenario())
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxAbsEy != b.MaxAbsEy || a.DetectedAt != b.DetectedAt {
		t.Fatal("same seed differs")
	}
}

func TestScheduleUsable(t *testing.T) {
	// The default scenario's schedule must include challenges after the
	// attack onset for detection to be possible.
	s := DefaultScenario()
	found := false
	for k := s.AttackStart; k < s.Steps; k++ {
		if s.Schedule.Challenge(k) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no challenge after onset; scenario cannot detect")
	}
}
