// Package lateral implements the paper's stated future work: extending the
// case study "to include a non-linear system model with lateral dynamics".
// It provides the standard linear bicycle error model for lane keeping
// (Rajamani), an LQR lane-keeping controller (LKC — one of the automated
// features the paper's introduction motivates), and a closed-loop lane
// keeping simulation whose lateral active sensor (lidar-type lane ranging)
// is protected by the same CRA + RLS pipeline as the longitudinal radar.
package lateral

import (
	"errors"
	"fmt"

	"safesense/internal/mat"
)

// BicycleParams are the single-track (bicycle) model parameters.
type BicycleParams struct {
	// MassKg is the vehicle mass m.
	MassKg float64
	// YawInertia is Iz (kg m^2).
	YawInertia float64
	// LfM / LrM are the front/rear axle distances from the CG (m).
	LfM, LrM float64
	// CorneringFront / CorneringRear are the axle cornering stiffnesses
	// Caf / Car (N/rad).
	CorneringFront, CorneringRear float64
}

// DefaultSedan returns parameters of a mid-size passenger car.
func DefaultSedan() BicycleParams {
	return BicycleParams{
		MassKg:         1500,
		YawInertia:     2500,
		LfM:            1.2,
		LrM:            1.6,
		CorneringFront: 80000,
		CorneringRear:  80000,
	}
}

// Validate checks physical plausibility.
func (p BicycleParams) Validate() error {
	switch {
	case p.MassKg <= 0:
		return errors.New("lateral: mass must be positive")
	case p.YawInertia <= 0:
		return errors.New("lateral: yaw inertia must be positive")
	case p.LfM <= 0 || p.LrM <= 0:
		return errors.New("lateral: axle distances must be positive")
	case p.CorneringFront <= 0 || p.CorneringRear <= 0:
		return errors.New("lateral: cornering stiffnesses must be positive")
	}
	return nil
}

// State indices of the lane-keeping error model:
// x = [e_y, e_y', e_psi, e_psi'] — lateral offset from the lane
// centerline, its rate, heading error, and its rate.
const (
	StateEy = iota
	StateEyDot
	StateEPsi
	StateEPsiDot
	stateDim
)

// ContinuousMatrices returns the continuous-time lane-keeping error
// dynamics at constant longitudinal speed vx (m/s): x' = A x + B delta,
// with delta the front steering angle (rad).
func (p BicycleParams) ContinuousMatrices(vx float64) (a, b *mat.Dense, err error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if vx <= 0 {
		return nil, nil, fmt.Errorf("lateral: speed must be positive, got %v", vx)
	}
	caf, car := p.CorneringFront, p.CorneringRear
	m, iz := p.MassKg, p.YawInertia
	lf, lr := p.LfM, p.LrM

	a = mat.NewDenseData(stateDim, stateDim, []float64{
		0, 1, 0, 0,
		0, -(caf + car) / (m * vx), (caf + car) / m, (-caf*lf + car*lr) / (m * vx),
		0, 0, 0, 1,
		0, -(caf*lf - car*lr) / (iz * vx), (caf*lf - car*lr) / iz, -(caf*lf*lf + car*lr*lr) / (iz * vx),
	})
	b = mat.NewDenseData(stateDim, 1, []float64{
		0,
		caf / m,
		0,
		caf * lf / iz,
	})
	return a, b, nil
}

// Discretize returns the zero-order-hold-approximated discrete dynamics at
// sample period dt, computed by subdividing dt into Euler substeps small
// enough for the stiff tire dynamics (the fastest mode of the bicycle
// model is ~(Caf+Car)/(m*vx) rad/s).
func (p BicycleParams) Discretize(vx, dt float64) (ad, bd *mat.Dense, err error) {
	ac, bc, err := p.ContinuousMatrices(vx)
	if err != nil {
		return nil, nil, err
	}
	if dt <= 0 {
		return nil, nil, errors.New("lateral: dt must be positive")
	}
	// Substep count: keep each Euler step below 1 ms.
	sub := int(dt/1e-3) + 1
	h := dt / float64(sub)
	// One substep: I + h*Ac, h*Bc; compose.
	stepA := mat.Identity(stateDim).Add(ac.Scale(h))
	stepB := bc.Scale(h)
	ad = mat.Identity(stateDim)
	bd = mat.NewDense(stateDim, 1)
	for i := 0; i < sub; i++ {
		bd = stepA.Mul(bd).Add(stepB)
		ad = stepA.Mul(ad)
	}
	return ad, bd, nil
}

// Model is the discretized lane-keeping plant.
type Model struct {
	A, B *mat.Dense
	// DT is the sample period.
	DT float64
	// Vx is the longitudinal speed the model was linearized at.
	Vx float64
}

// NewModel discretizes the bicycle parameters at speed vx and period dt.
func NewModel(p BicycleParams, vx, dt float64) (*Model, error) {
	a, b, err := p.Discretize(vx, dt)
	if err != nil {
		return nil, err
	}
	return &Model{A: a, B: b, DT: dt, Vx: vx}, nil
}

// Step advances the error state one sample under steering angle delta.
func (m *Model) Step(x []float64, delta float64) []float64 {
	next := m.A.MulVec(x)
	mat.Axpy(delta, m.B.Col(0), next)
	return next
}
