// Package lti models the discrete-time linear time-invariant plant of the
// paper's Section 3:
//
//	x_{k+1} = A x_k + B u_k
//	y_k     = C x_k + v_k,   v_k ~ N(0, R)
//
// and the attacked variant of Section 4 in which the measurement gains an
// adversarial term y^a_k. It also provides the structural checks
// (observability, controllability, stability) referenced by the related
// work the paper builds on.
package lti

import (
	"errors"
	"fmt"
	"math"

	"safesense/internal/mat"
	"safesense/internal/noise"
)

// System is a discrete-time LTI system with additive Gaussian measurement
// noise.
type System struct {
	A *mat.Dense // n x n state matrix
	B *mat.Dense // n x m control matrix
	C *mat.Dense // p x n output matrix

	// MeasurementStd holds the per-output standard deviation of v_k
	// (diagonal R). A nil slice means noiseless output.
	MeasurementStd []float64
}

// NewSystem validates dimensions and returns a System.
func NewSystem(a, b, c *mat.Dense, measurementStd []float64) (*System, error) {
	n, n2 := a.Dims()
	if n != n2 {
		return nil, errors.New("lti: A must be square")
	}
	bn, _ := b.Dims()
	if bn != n {
		return nil, fmt.Errorf("lti: B has %d rows, want %d", bn, n)
	}
	p, cn := c.Dims()
	if cn != n {
		return nil, fmt.Errorf("lti: C has %d cols, want %d", cn, n)
	}
	if measurementStd != nil && len(measurementStd) != p {
		return nil, fmt.Errorf("lti: MeasurementStd has %d entries, want %d", len(measurementStd), p)
	}
	return &System{A: a, B: b, C: c, MeasurementStd: measurementStd}, nil
}

// StateDim returns n.
func (s *System) StateDim() int { r, _ := s.A.Dims(); return r }

// InputDim returns m.
func (s *System) InputDim() int { _, c := s.B.Dims(); return c }

// OutputDim returns p.
func (s *System) OutputDim() int { r, _ := s.C.Dims(); return r }

// Step advances the state one sample: x' = A x + B u.
func (s *System) Step(x, u []float64) []float64 {
	ax := s.A.MulVec(x)
	bu := s.B.MulVec(u)
	return mat.AddVec(ax, bu)
}

// Output returns y = C x + v with v drawn from src (or zero if src is nil
// or MeasurementStd is nil).
func (s *System) Output(x []float64, src *noise.Source) []float64 {
	y := s.C.MulVec(x)
	if src == nil || s.MeasurementStd == nil {
		return y
	}
	for i := range y {
		y[i] += src.Gaussian(0, s.MeasurementStd[i])
	}
	return y
}

// Simulate runs the closed system for steps samples from x0 under the input
// sequence provided by u (called with the step index and current state) and
// returns the state and output trajectories.
func (s *System) Simulate(x0 []float64, steps int, u func(k int, x []float64) []float64, src *noise.Source) (states, outputs [][]float64) {
	x := append([]float64{}, x0...)
	states = make([][]float64, steps)
	outputs = make([][]float64, steps)
	for k := 0; k < steps; k++ {
		states[k] = append([]float64{}, x...)
		outputs[k] = s.Output(x, src)
		x = s.Step(x, u(k, x))
	}
	return states, outputs
}

// ObservabilityMatrix returns [C; CA; ...; CA^{n-1}].
func (s *System) ObservabilityMatrix() *mat.Dense {
	n := s.StateDim()
	p := s.OutputDim()
	obs := mat.NewDense(p*n, n)
	block := s.C.Clone()
	for i := 0; i < n; i++ {
		for r := 0; r < p; r++ {
			obs.SetRow(i*p+r, block.Row(r))
		}
		block = block.Mul(s.A)
	}
	return obs
}

// Observable reports whether (A, C) is observable.
func (s *System) Observable() bool {
	return mat.Rank(s.ObservabilityMatrix(), 1e-10) == s.StateDim()
}

// ControllabilityMatrix returns [B, AB, ..., A^{n-1}B].
func (s *System) ControllabilityMatrix() *mat.Dense {
	n := s.StateDim()
	m := s.InputDim()
	ctrb := mat.NewDense(n, n*m)
	block := s.B.Clone()
	for i := 0; i < n; i++ {
		for r := 0; r < n; r++ {
			for c := 0; c < m; c++ {
				ctrb.Set(r, i*m+c, block.At(r, c))
			}
		}
		block = s.A.Mul(block)
	}
	return ctrb
}

// Controllable reports whether (A, B) is controllable.
func (s *System) Controllable() bool {
	return mat.Rank(s.ControllabilityMatrix(), 1e-10) == s.StateDim()
}

// Stable reports whether the autonomous dynamics are Schur stable
// (spectral radius of A strictly below 1, within a small tolerance).
func (s *System) Stable() bool {
	return mat.SpectralRadius(s.A, 0) < 1-1e-9
}

// DiscretizeFirstOrderLag returns the one-state discrete system matching
// the paper's lower-level controller transfer function
//
//	a_F(s)/a_des(s) = K1 / (Ti s + 1)
//
// sampled with period dt by exact zero-order-hold discretization:
//
//	a_F[k+1] = phi a_F[k] + (1-phi) K1 a_des[k],  phi = exp(-dt/Ti).
func DiscretizeFirstOrderLag(k1, ti, dt float64) (*System, error) {
	if ti <= 0 || dt <= 0 {
		return nil, errors.New("lti: Ti and dt must be positive")
	}
	phi := math.Exp(-dt / ti)
	a := mat.NewDenseData(1, 1, []float64{phi})
	b := mat.NewDenseData(1, 1, []float64{(1 - phi) * k1})
	c := mat.NewDenseData(1, 1, []float64{1})
	return NewSystem(a, b, c, nil)
}
