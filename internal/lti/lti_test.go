package lti

import (
	"math"
	"testing"
	"testing/quick"

	"safesense/internal/mat"
	"safesense/internal/noise"
)

// doubleIntegrator returns the standard position/velocity system sampled at
// dt, observing position only.
func doubleIntegrator(dt float64) *System {
	a := mat.NewDenseData(2, 2, []float64{1, dt, 0, 1})
	b := mat.NewDenseData(2, 1, []float64{dt * dt / 2, dt})
	c := mat.NewDenseData(1, 2, []float64{1, 0})
	s, err := NewSystem(a, b, c, nil)
	if err != nil {
		panic(err)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	a := mat.Identity(2)
	b := mat.NewDense(2, 1)
	c := mat.NewDense(1, 2)
	if _, err := NewSystem(mat.NewDense(2, 3), b, c, nil); err == nil {
		t.Fatal("non-square A should fail")
	}
	if _, err := NewSystem(a, mat.NewDense(3, 1), c, nil); err == nil {
		t.Fatal("mismatched B should fail")
	}
	if _, err := NewSystem(a, b, mat.NewDense(1, 3), nil); err == nil {
		t.Fatal("mismatched C should fail")
	}
	if _, err := NewSystem(a, b, c, []float64{1, 2}); err == nil {
		t.Fatal("wrong noise length should fail")
	}
	if _, err := NewSystem(a, b, c, []float64{0.1}); err != nil {
		t.Fatal(err)
	}
}

func TestStepDoubleIntegrator(t *testing.T) {
	s := doubleIntegrator(1)
	x := s.Step([]float64{0, 1}, []float64{2}) // pos 0, vel 1, accel 2
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("Step = %v, want [2 3]", x)
	}
}

func TestOutputNoiseless(t *testing.T) {
	s := doubleIntegrator(1)
	y := s.Output([]float64{5, -1}, noise.NewSource(1))
	if y[0] != 5 {
		t.Fatalf("Output = %v, want [5]", y)
	}
}

func TestOutputNoiseStatistics(t *testing.T) {
	a := mat.Identity(1)
	b := mat.NewDense(1, 1)
	c := mat.Identity(1)
	s, _ := NewSystem(a, b, c, []float64{2})
	src := noise.NewSource(4)
	n := 50000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		y := s.Output([]float64{10}, src)[0]
		sum += y
		sum2 += y * y
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(variance-4) > 0.2 {
		t.Fatalf("variance = %v, want ~4", variance)
	}
}

func TestSimulateFreeFall(t *testing.T) {
	// Constant input u = -g; position follows the kinematic parabola at
	// the discrete sample points.
	dt := 0.1
	s := doubleIntegrator(dt)
	g := 9.81
	states, outputs := s.Simulate([]float64{100, 0}, 50, func(int, []float64) []float64 {
		return []float64{-g}
	}, nil)
	if len(states) != 50 || len(outputs) != 50 {
		t.Fatal("wrong trajectory length")
	}
	// Exact discrete solution: x_k = 100 - g*(k*dt)^2/2 for ZOH double
	// integrator with the dt^2/2 input column.
	for k := 0; k < 50; k++ {
		tk := float64(k) * dt
		want := 100 - g*tk*tk/2
		if math.Abs(states[k][0]-want) > 1e-9 {
			t.Fatalf("k=%d: pos %v, want %v", k, states[k][0], want)
		}
	}
}

func TestObservability(t *testing.T) {
	// Double integrator observing position: observable.
	s := doubleIntegrator(1)
	if !s.Observable() {
		t.Fatal("position-observed double integrator must be observable")
	}
	// Observing velocity only: position unobservable.
	a := mat.NewDenseData(2, 2, []float64{1, 1, 0, 1})
	b := mat.NewDense(2, 1)
	c := mat.NewDenseData(1, 2, []float64{0, 1})
	s2, _ := NewSystem(a, b, c, nil)
	if s2.Observable() {
		t.Fatal("velocity-only observation must not be observable")
	}
}

func TestControllability(t *testing.T) {
	s := doubleIntegrator(1)
	if !s.Controllable() {
		t.Fatal("double integrator with accel input must be controllable")
	}
	// Input only into an isolated state.
	a := mat.Diag([]float64{0.5, 0.7})
	b := mat.NewDenseData(2, 1, []float64{1, 0})
	c := mat.Identity(2)
	s2, _ := NewSystem(a, b, c, nil)
	if s2.Controllable() {
		t.Fatal("decoupled second state must not be controllable")
	}
}

func TestStable(t *testing.T) {
	b := mat.NewDense(2, 1)
	c := mat.Identity(2)
	stable, _ := NewSystem(mat.Diag([]float64{0.9, -0.5}), b, c, nil)
	if !stable.Stable() {
		t.Fatal("contractive diagonal must be stable")
	}
	marginal, _ := NewSystem(mat.NewDenseData(2, 2, []float64{1, 1, 0, 1}), b, c, nil)
	if marginal.Stable() {
		t.Fatal("double integrator must not be strictly stable")
	}
	unstable, _ := NewSystem(mat.Diag([]float64{1.1, 0.2}), b, c, nil)
	if unstable.Stable() {
		t.Fatal("expanding mode must be unstable")
	}
}

func TestDiscretizeFirstOrderLag(t *testing.T) {
	// The paper's lower-level controller: K1 = 1.0, Ti = 1.008.
	s, err := DiscretizeFirstOrderLag(1.0, 1.008, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	phi := math.Exp(-1.0 / 1.008)
	if math.Abs(s.A.At(0, 0)-phi) > 1e-12 {
		t.Fatalf("A = %v, want %v", s.A.At(0, 0), phi)
	}
	// DC gain must equal K1: steady state under constant input u:
	// x* = phi x* + (1-phi) K1 u  =>  x* = K1 u.
	x := []float64{0}
	for i := 0; i < 200; i++ {
		x = s.Step(x, []float64{2.5})
	}
	if math.Abs(x[0]-2.5) > 1e-6 {
		t.Fatalf("DC gain: settled at %v, want 2.5", x[0])
	}
	if !s.Stable() {
		t.Fatal("first-order lag must be stable")
	}
}

func TestDiscretizeFirstOrderLagValidation(t *testing.T) {
	if _, err := DiscretizeFirstOrderLag(1, 0, 1); err == nil {
		t.Fatal("Ti=0 should fail")
	}
	if _, err := DiscretizeFirstOrderLag(1, 1, -1); err == nil {
		t.Fatal("dt<0 should fail")
	}
}

func TestFirstOrderLagTracksWithinBoundProperty(t *testing.T) {
	// For any bounded input, the lag output stays within the input's
	// historical bounds (first-order low-pass property, K1 = 1).
	f := func(seed int64) bool {
		src := noise.NewSource(seed)
		s, _ := DiscretizeFirstOrderLag(1.0, 1.008, 1.0)
		x := []float64{0}
		lo, hi := 0.0, 0.0
		for k := 0; k < 200; k++ {
			u := src.Uniform(-3, 3)
			if u < lo {
				lo = u
			}
			if u > hi {
				hi = u
			}
			x = s.Step(x, []float64{u})
			if x[0] < lo-1e-9 || x[0] > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
