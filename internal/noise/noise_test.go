package noise

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := 0; i < 100; i++ {
		if a.Gaussian(0, 1) != b.Gaussian(0, 1) {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestGaussianMoments(t *testing.T) {
	s := NewSource(7)
	n := 200000
	mean, m2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Gaussian(2, 3)
		mean += v
		m2 += v * v
	}
	mean /= float64(n)
	variance := m2/float64(n) - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("mean = %v, want ~2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Fatalf("variance = %v, want ~9", variance)
	}
}

func TestUniformRange(t *testing.T) {
	s := NewSource(1)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestComplexGaussianPower(t *testing.T) {
	s := NewSource(9)
	n := 100000
	p := 0.0
	for i := 0; i < n; i++ {
		v := s.ComplexGaussian(4)
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	p /= float64(n)
	if math.Abs(p-4) > 0.15 {
		t.Fatalf("complex Gaussian power = %v, want ~4", p)
	}
}

func TestAveragePower(t *testing.T) {
	if got := AveragePower(nil); got != 0 {
		t.Fatalf("AveragePower(nil) = %v", got)
	}
	sig := []complex128{3, 4i}
	if got := AveragePower(sig); math.Abs(got-12.5) > 1e-12 {
		t.Fatalf("AveragePower = %v, want 12.5", got)
	}
}

func TestAddAWGNSNR(t *testing.T) {
	s := NewSource(5)
	// Constant-magnitude signal.
	n := 50000
	sig := make([]complex128, n)
	for i := range sig {
		sig[i] = complex(math.Cos(0.1*float64(i)), math.Sin(0.1*float64(i)))
	}
	for _, snr := range []float64{0, 10, 20} {
		noisy := s.AddAWGN(sig, snr)
		// Measure realized noise power.
		np := 0.0
		for i := range sig {
			d := noisy[i] - sig[i]
			np += real(d)*real(d) + imag(d)*imag(d)
		}
		np /= float64(n)
		gotSNR := SNRFromPowers(AveragePower(sig), np)
		if math.Abs(gotSNR-snr) > 0.3 {
			t.Fatalf("realized SNR = %v dB, want %v dB", gotSNR, snr)
		}
	}
}

func TestAddAWGNDoesNotMutate(t *testing.T) {
	s := NewSource(3)
	sig := []complex128{1, 2, 3}
	orig := append([]complex128{}, sig...)
	_ = s.AddAWGN(sig, 10)
	for i := range sig {
		if sig[i] != orig[i] {
			t.Fatal("AddAWGN mutated its input")
		}
	}
}

func TestAddAWGNZeroSignal(t *testing.T) {
	s := NewSource(3)
	sig := make([]complex128, 8)
	out := s.AddAWGN(sig, 10)
	for _, v := range out {
		if v != 0 {
			t.Fatal("zero signal should pass through unchanged")
		}
	}
}

func TestComplexNoiseVecPowerProperty(t *testing.T) {
	f := func(seed int64) bool {
		if seed == 0 {
			seed = 1
		}
		s := NewSource(seed)
		v := s.ComplexNoiseVec(20000, 2.5)
		p := AveragePower(v)
		return math.Abs(p-2.5) < 0.25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
