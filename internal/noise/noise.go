// Package noise provides the deterministic, seedable noise sources used by
// the radar channel and measurement models: Gaussian measurement noise
// v_k ~ N(0, R), additive white Gaussian noise for complex baseband signals
// at a prescribed SNR, and the thermal receiver noise floor.
package noise

import (
	"math"
	"math/rand"

	"safesense/internal/units"
)

// Source is a seedable Gaussian noise source. All safesense randomness flows
// through Source so every experiment is reproducible from its seed.
type Source struct {
	rng *rand.Rand
}

// NewSource returns a Source seeded deterministically.
func NewSource(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Gaussian returns a sample from N(mean, stddev^2).
func (s *Source) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*s.rng.NormFloat64()
}

// GaussianVec returns n independent samples from N(mean, stddev^2).
func (s *Source) GaussianVec(n int, mean, stddev float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Gaussian(mean, stddev)
	}
	return out
}

// Uniform returns a sample from U[lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// ComplexGaussian returns a circularly-symmetric complex Gaussian sample
// with total variance sigma2 (i.e. each quadrature has variance sigma2/2).
func (s *Source) ComplexGaussian(sigma2 float64) complex128 {
	sd := math.Sqrt(sigma2 / 2)
	return complex(sd*s.rng.NormFloat64(), sd*s.rng.NormFloat64())
}

// AddAWGN adds complex white Gaussian noise to the signal so that the
// resulting per-sample signal-to-noise ratio is snrDB, measured against the
// signal's average power. The input slice is not modified; a noisy copy is
// returned. A zero-power signal is returned unchanged (SNR is undefined).
func (s *Source) AddAWGN(signal []complex128, snrDB float64) []complex128 {
	p := AveragePower(signal)
	out := make([]complex128, len(signal))
	if p == 0 {
		copy(out, signal)
		return out
	}
	noiseP := p / units.DBToLinear(snrDB)
	for i, v := range signal {
		out[i] = v + s.ComplexGaussian(noiseP)
	}
	return out
}

// ComplexNoiseVec returns n circularly-symmetric complex Gaussian samples of
// total per-sample power sigma2. It models the receiver output when no
// signal is present (e.g. during a CRA challenge instant).
func (s *Source) ComplexNoiseVec(n int, sigma2 float64) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = s.ComplexGaussian(sigma2)
	}
	return out
}

// AveragePower returns the mean squared magnitude of the signal.
func AveragePower(signal []complex128) float64 {
	if len(signal) == 0 {
		return 0
	}
	p := 0.0
	for _, v := range signal {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	return p / float64(len(signal))
}

// SNRFromPowers returns the SNR in dB given signal and noise powers in
// consistent linear units.
func SNRFromPowers(signalW, noiseW float64) float64 {
	return units.LinearToDB(signalW / noiseW)
}
