package dist

import (
	"encoding/json"
	"testing"

	"safesense/internal/campaign"
)

// FuzzDecodeLease fuzzes every dist wire decoder with one corpus: any
// byte string may arrive at any coordinator endpoint, so all four
// decoders must stay panic-free on the same inputs, and anything they
// accept must satisfy the documented bounds (worker-ID shape, lease
// size, event cap, partial-aggregate consistency) — those bounds are
// what keeps a hostile worker from bloating coordinator state.
func FuzzDecodeLease(f *testing.F) {
	// Valid messages of each kind seed the corpus.
	spec := campaign.Spec{Steps: 60, Attacks: []string{campaign.AttackDoS}, Onsets: []int{20}}
	if b, err := json.Marshal(SubmitRequest{Spec: spec, LeaseJobs: 8}); err == nil {
		f.Add(b)
	}
	if b, err := json.Marshal(AcquireRequest{WorkerID: "fuzz-worker"}); err == nil {
		f.Add(b)
	}
	if b, err := json.Marshal(RenewRequest{LeaseID: "d000001.0.1", WorkerID: "fuzz-worker"}); err == nil {
		f.Add(b)
	}
	partial := campaign.Partial{
		Jobs: 2, Attacked: 2, Detected: 1, EstimatedRuns: 1,
		WorstMinGapM: 3.5, WorstDistErrM: 1.25, WorstVelErrMps: 0.5,
		Latencies: []campaign.Sample{{Index: 4, V: 6}},
		DistRMSE:  []campaign.Sample{{Index: 5, V: 0.7}},
		VelRMSE:   []campaign.Sample{{Index: 5, V: 0.2}},
	}
	if b, err := json.Marshal(CompleteRequest{
		LeaseID: "d000001.0.1", WorkerID: "fuzz-worker", Partial: partial,
		Events: []Event{{Kind: EventCollision, JobIndex: 4, Seed: 99, K: 12, Detail: "dos/onset=20"}},
	}); err == nil {
		f.Add(b)
	}
	if b, err := json.Marshal(ProgressRequest{
		LeaseID: "d000001.0.1", WorkerID: "fuzz-worker", Done: 2, Partial: partial,
	}); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{"lease_id":"x","worker_id":"w","done":3,"partial":{"jobs":2}}`))
	// Hostile shapes: oversized IDs, unknown fields, truncations,
	// trailing garbage, boundary-breaking counts.
	f.Add([]byte(`{"worker_id":"` + string(make([]byte, MaxWorkerIDLen+1)) + `"}`))
	f.Add([]byte(`{"lease_id":"x","worker_id":"w","partial":{"jobs":999999}}`))
	f.Add([]byte(`{"spec":{"steps":60,"attacks":["dos"]},"lease_jobs":-1}`))
	f.Add([]byte(`{"worker_id":"w"} trailing`))
	f.Add([]byte(`{"unknown_field":true}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeAcquire(data); err == nil {
			if verr := validWorkerID(req.WorkerID); verr != nil {
				t.Fatalf("accepted acquire with invalid worker id: %v", verr)
			}
		}
		if req, err := DecodeRenew(data); err == nil {
			if req.LeaseID == "" || len(req.LeaseID) > maxLeaseIDLen {
				t.Fatalf("accepted renew with out-of-bounds lease id (%d bytes)", len(req.LeaseID))
			}
		}
		if req, err := DecodeSubmit(data); err == nil {
			if req.LeaseJobs < 0 || req.LeaseJobs > MaxLeaseJobs {
				t.Fatalf("accepted submit with lease_jobs %d", req.LeaseJobs)
			}
			if verr := req.Spec.Validate(); verr != nil {
				t.Fatalf("accepted submit with invalid spec: %v", verr)
			}
		}
		if req, err := DecodeProgress(data); err == nil {
			if req.Done != req.Partial.Jobs {
				t.Fatalf("accepted progress with done %d over a partial of %d jobs", req.Done, req.Partial.Jobs)
			}
			if req.Done < 0 || req.Done > MaxLeaseJobs {
				t.Fatalf("accepted progress covering %d jobs", req.Done)
			}
			if verr := req.Partial.Validate(); verr != nil {
				t.Fatalf("accepted progress with inconsistent partial: %v", verr)
			}
			if len(req.Events) > MaxCompleteEvents {
				t.Fatalf("accepted progress with %d events", len(req.Events))
			}
		}
		req, err := DecodeComplete(data)
		if err != nil {
			return
		}
		if verr := req.Partial.Validate(); verr != nil {
			t.Fatalf("accepted complete with inconsistent partial: %v", verr)
		}
		if req.Partial.Jobs > MaxLeaseJobs {
			t.Fatalf("accepted complete covering %d jobs", req.Partial.Jobs)
		}
		if len(req.Events) > MaxCompleteEvents {
			t.Fatalf("accepted complete with %d events", len(req.Events))
		}
		// Accepted completions must round-trip: re-encode and decode
		// yields the same message (the coordinator checkpoints exactly
		// what it accepted).
		again, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-encoding accepted completion: %v", err)
		}
		back, err := DecodeComplete(again)
		if err != nil {
			t.Fatalf("round-trip of accepted completion rejected: %v", err)
		}
		b1, _ := json.Marshal(back)
		if string(b1) != string(again) {
			t.Fatalf("completion round-trip unstable:\n first: %s\nsecond: %s", again, b1)
		}
	})
}
