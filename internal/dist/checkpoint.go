package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"safesense/internal/campaign"
)

// Checkpoint log: one JSON object per line, appended as campaigns are
// submitted and leases complete. The log is a pure function of campaign
// progress — no timestamps — so replaying it reconstructs exactly the
// lease-table state the coordinator had, and a coordinator restart
// resumes a sweep without recomputing finished shards. Records:
//
//	{"kind":"campaign","campaign":{"id":...,"spec":{...},"jobs":N,"lease_jobs":K,"trace_id":...}}
//	{"kind":"lease","lease":{"campaign":...,"shard":i,"start":a,"end":b,"worker":...,"partial":{...}}}

// Checkpoint record kinds.
const (
	recordCampaign = "campaign"
	recordLease    = "lease"
)

// CampaignRecord checkpoints one submission.
type CampaignRecord struct {
	ID        string        `json:"id"`
	Spec      campaign.Spec `json:"spec"`
	Jobs      int           `json:"jobs"`
	LeaseJobs int           `json:"lease_jobs"`
	TraceID   string        `json:"trace_id,omitempty"`
}

// LeaseRecord checkpoints one completed lease.
type LeaseRecord struct {
	Campaign string           `json:"campaign"`
	Shard    int              `json:"shard"`
	Start    int              `json:"start"`
	End      int              `json:"end"`
	Worker   string           `json:"worker,omitempty"`
	Partial  campaign.Partial `json:"partial"`
}

// checkpointRecord is the tagged union on the wire.
type checkpointRecord struct {
	Kind     string          `json:"kind"`
	Campaign *CampaignRecord `json:"campaign,omitempty"`
	Lease    *LeaseRecord    `json:"lease,omitempty"`
}

// checkpointLocked appends one record to the checkpoint log, when one
// is attached. A write failure disables further checkpointing (and is
// logged loudly) rather than failing the campaign: the sweep's
// correctness never depends on the log, only its restartability.
// Callers hold c.mu.
func (c *Coordinator) checkpointLocked(rec checkpointRecord) {
	if c.checkpoint == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err == nil {
		line = append(line, '\n')
		_, err = c.checkpoint.Write(line)
	}
	if err != nil {
		c.cfg.Log.Error("dist checkpoint write failed; checkpointing disabled", "error", err.Error())
		c.checkpoint = nil
	}
}

// maxCheckpointLine bounds one checkpoint record (a lease partial for
// MaxLeaseJobs jobs stays well under this).
const maxCheckpointLine = 64 << 20

// Restore replays a checkpoint log into the coordinator, rebuilding
// campaigns and their completed shards. Open shards (leased but never
// completed before the previous coordinator died) simply return to the
// pool. Call before AttachCheckpoint and before serving workers.
func (c *Coordinator) Restore(r io.Reader) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxCheckpointLine)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec checkpointRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("dist: checkpoint line %d: %w", lineNo, err)
		}
		switch rec.Kind {
		case recordCampaign:
			if err := c.restoreCampaignLocked(rec.Campaign); err != nil {
				return fmt.Errorf("dist: checkpoint line %d: %w", lineNo, err)
			}
		case recordLease:
			if err := c.restoreLeaseLocked(rec.Lease); err != nil {
				return fmt.Errorf("dist: checkpoint line %d: %w", lineNo, err)
			}
		default:
			return fmt.Errorf("dist: checkpoint line %d: unknown record kind %q", lineNo, rec.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("dist: reading checkpoint: %w", err)
	}
	return nil
}

func (c *Coordinator) restoreCampaignLocked(rec *CampaignRecord) error {
	if rec == nil {
		return fmt.Errorf("campaign record missing body")
	}
	if c.campaigns[rec.ID] != nil {
		return fmt.Errorf("duplicate campaign %q", rec.ID)
	}
	jobs, err := rec.Spec.NumJobs()
	if err != nil {
		return err
	}
	if jobs != rec.Jobs {
		return fmt.Errorf("campaign %q records %d jobs but spec expands to %d", rec.ID, rec.Jobs, jobs)
	}
	if rec.LeaseJobs < 1 || rec.LeaseJobs > MaxLeaseJobs {
		return fmt.Errorf("campaign %q lease_jobs %d outside [1, %d]", rec.ID, rec.LeaseJobs, MaxLeaseJobs)
	}
	d := &dcampaign{
		id:        rec.ID,
		spec:      rec.Spec,
		traceID:   rec.TraceID,
		jobs:      jobs,
		leaseJobs: rec.LeaseJobs,
		shards:    makeShards(jobs, rec.LeaseJobs),
		workers:   make(map[string]*workerProgress),
		createdAt: c.cfg.Clock(),
		status:    StatusRunning,
	}
	c.campaigns[d.id] = d
	c.order = append(c.order, d.id)
	// Keep minted IDs ahead of every restored one ("dNNNNNN").
	var n int
	if _, err := fmt.Sscanf(rec.ID, "d%06d", &n); err == nil && n > c.nextID {
		c.nextID = n
	}
	metricCampaignsActive.With().Add(1)
	if jobs == 0 {
		c.closeCampaignLocked(d)
	}
	return nil
}

func (c *Coordinator) restoreLeaseLocked(rec *LeaseRecord) error {
	if rec == nil {
		return fmt.Errorf("lease record missing body")
	}
	d := c.campaigns[rec.Campaign]
	if d == nil {
		return fmt.Errorf("lease for unknown campaign %q", rec.Campaign)
	}
	if rec.Shard < 0 || rec.Shard >= len(d.shards) {
		return fmt.Errorf("campaign %q has no shard %d", rec.Campaign, rec.Shard)
	}
	sh := d.shards[rec.Shard]
	if sh.start != rec.Start || sh.end != rec.End {
		return fmt.Errorf("campaign %q shard %d spans [%d,%d), record claims [%d,%d)",
			rec.Campaign, rec.Shard, sh.start, sh.end, rec.Start, rec.End)
	}
	if sh.completed {
		return nil // replay of a duplicate completion — same deterministic data
	}
	if got, want := rec.Partial.Jobs, sh.end-sh.start; got != want {
		return fmt.Errorf("campaign %q shard %d partial covers %d jobs, shard spans %d",
			rec.Campaign, rec.Shard, got, want)
	}
	if err := rec.Partial.Validate(); err != nil {
		return err
	}
	if err := rec.Partial.SampleRange(sh.start, sh.end); err != nil {
		return err
	}
	sh.completed = true
	sh.partial = rec.Partial
	d.doneShards++
	d.doneJobs += rec.Partial.Jobs
	d.merged = d.merged.Merge(rec.Partial)
	if rec.Worker != "" {
		wp := c.touchWorkerLocked(d, rec.Worker, c.cfg.Clock())
		wp.jobsDone += rec.Partial.Jobs
		wp.leasesDone++
	}
	if d.doneShards == len(d.shards) {
		c.closeCampaignLocked(d)
	}
	return nil
}
