// Package dist scales campaign execution horizontally: a coordinator
// splits one campaign's job grid into leases — contiguous job-index
// ranges — and hands them to workers that pull over the safesensed
// HTTP/JSON API, run their shard with the ordinary campaign engine, and
// push back a mergeable partial aggregate. Because every job's seed is
// a pure function of (spec, index), any partition of the grid is
// byte-stable: the merged campaign.Aggregate is identical to a
// single-node run of the same spec, no matter how many workers
// participated, which worker ran which shard, or how many times a shard
// was re-leased after a worker died.
//
// The moving parts:
//
//   - Coordinator: owns the lease table. Shards are fixed at submission
//     (ceil(jobs/leaseJobs) contiguous ranges); a lease grants one shard
//     to one worker for a TTL. Expired leases are re-granted to the next
//     worker that asks — lease selection is ordered purely by campaign
//     age and shard index, never by wall time, so the injected clock
//     (Config.Clock) is consulted only to decide expiry.
//   - Worker: the pull loop behind `safesensed -join`. Acquire a lease,
//     expand the spec (cached per campaign), run jobs [start, end) on
//     the local pool via campaign.RunJobs, renew the lease while
//     running, and complete with the campaign.Partial plus the shard's
//     flight events (collisions, detector confusion).
//   - Checkpoint: a JSONL log of campaign submissions and completed
//     leases. Replaying it with Restore reconstructs the lease table, so
//     a coordinator restart resumes a million-job sweep without
//     recomputing finished shards.
//
// Completion is idempotent and holder-agnostic: results are
// deterministic, so a late completion from a worker whose lease already
// expired (and whose shard was re-leased) is accepted if the shard is
// still open and ignored if it already closed — the data is the same
// either way.
//
// Trace propagation: the campaign's trace ID (minted from the
// submitting request) rides on every lease; workers root their lease
// span under it and stamp it as X-Request-ID on coordinator calls, so
// one trace ID resolves the full cross-node fan-out on either side's
// /debug/traces.
package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"safesense/internal/campaign"
	"safesense/internal/obs/forensic"
	"safesense/internal/obs/trace"
)

// Wire-format bounds. Decoders enforce them so a hostile or buggy peer
// cannot make the coordinator allocate absurd state.
const (
	// MaxWorkerIDLen bounds worker identifiers (they land in logs,
	// lease tables, and status payloads — never in metric labels).
	MaxWorkerIDLen = 64
	// MaxLeaseJobs bounds the jobs-per-lease shard size.
	MaxLeaseJobs = 1 << 16
	// MaxCompleteEvents bounds the flight events one completion may
	// forward; workers truncate, decoders reject beyond it.
	MaxCompleteEvents = 64
	// MaxCompleteCaptures bounds the forensic captures one completion may
	// ship. Workers keep the highest-priority captures when a shard
	// produces more (collisions outlive gap noise); decoders reject
	// payloads beyond the cap.
	MaxCompleteCaptures = 16
	// MaxCompleteSpans bounds the trace spans one completion may ship for
	// cross-node trace stitching.
	MaxCompleteSpans = 128
	// maxLeaseIDLen bounds lease tokens on the wire.
	maxLeaseIDLen = 128
)

// SubmitRequest asks the coordinator to run a campaign distributed.
type SubmitRequest struct {
	Spec campaign.Spec `json:"spec"`
	// LeaseJobs is the shard size in jobs (zero means the coordinator's
	// configured default).
	LeaseJobs int `json:"lease_jobs,omitempty"`
}

// SubmitResponse acknowledges a distributed submission.
type SubmitResponse struct {
	ID     string `json:"id"`
	Jobs   int    `json:"jobs"`
	Leases int    `json:"leases"`
	URL    string `json:"url"`
}

// AcquireRequest is a worker's pull for its next lease.
type AcquireRequest struct {
	WorkerID string `json:"worker_id"`
}

// AcquireResponse grants one lease. The worker must run jobs
// [Start, End) of the spec's expanded grid and complete within the TTL
// (renewing as needed).
type AcquireResponse struct {
	LeaseID  string        `json:"lease_id"`
	Campaign string        `json:"campaign"`
	Shard    int           `json:"shard"`
	Start    int           `json:"start"`
	End      int           `json:"end"`
	Spec     campaign.Spec `json:"spec"`
	TraceID  string        `json:"trace_id,omitempty"`
	// TTLSeconds is the lease lifetime; renew at a fraction of it.
	TTLSeconds float64 `json:"ttl_seconds"`
}

// RenewRequest extends a held lease.
type RenewRequest struct {
	LeaseID  string `json:"lease_id"`
	WorkerID string `json:"worker_id"`
}

// RenewResponse confirms the extension.
type RenewResponse struct {
	TTLSeconds float64 `json:"ttl_seconds"`
}

// ProgressRequest is a mid-lease streaming update: a snapshot of the
// shard's accumulated partial so far plus any flight events discovered
// since the previous update. Progress is best-effort observability —
// the coordinator keeps live partials separate from the completed-lease
// merge, so a lost or reordered progress post never affects the final
// aggregate.
type ProgressRequest struct {
	LeaseID  string `json:"lease_id"`
	WorkerID string `json:"worker_id"`
	// Done is how many of the shard's jobs have completed; it must
	// equal Partial.Jobs.
	Done    int              `json:"done"`
	Partial campaign.Partial `json:"partial"`
	Events  []Event          `json:"events,omitempty"`
}

// ProgressResponse acknowledges a progress update. Stale reports the
// update was discarded: the shard already closed or the lease was
// reassigned, so the worker's live view no longer represents the shard.
type ProgressResponse struct {
	Stale bool `json:"stale,omitempty"`
}

// CompleteRequest delivers a finished shard: the mergeable partial
// aggregate plus the shard's notable flight events, forensic anomaly
// captures, and the worker-side trace spans of the lease. Captures and
// spans are observability sidecars — the coordinator merges them
// idempotently (content hash, span identity) and they never influence
// the aggregate, so the byte-identity oracle is untouched.
type CompleteRequest struct {
	LeaseID  string             `json:"lease_id"`
	WorkerID string             `json:"worker_id"`
	Partial  campaign.Partial   `json:"partial"`
	Events   []Event            `json:"events,omitempty"`
	Captures []forensic.Capture `json:"captures,omitempty"`
	Spans    []trace.SpanRecord `json:"spans,omitempty"`
}

// CompleteResponse acknowledges a completion. Duplicate reports that
// the shard had already closed (the payload was discarded — results are
// deterministic, so nothing is lost).
type CompleteResponse struct {
	Duplicate bool `json:"duplicate,omitempty"`
	// CampaignDone reports that this completion closed the campaign.
	CampaignDone bool `json:"campaign_done,omitempty"`
}

// Event is one forwarded flight-recorder incident, attributed to the
// job that produced it so the run is reproducible from the event alone.
type Event struct {
	Kind     string `json:"kind"`
	JobIndex int    `json:"job_index"`
	Seed     int64  `json:"seed,omitempty"`
	K        int    `json:"k,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// Forwarded event kinds.
const (
	EventCollision     = "collision"
	EventFalsePositive = "false_positive"
	EventFalseNegative = "false_negative"
)

// decodeStrict parses exactly one JSON object into v: unknown fields
// and trailing data are errors (same contract as campaign.DecodeSpec).
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("dist: decoding message: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return fmt.Errorf("dist: trailing data after message object")
	}
	return nil
}

// validWorkerID enforces the worker-identifier contract: non-empty,
// bounded, printable ASCII without spaces, quotes, or backslashes (IDs
// land verbatim in log records and JSON status payloads).
func validWorkerID(id string) error {
	if id == "" {
		return fmt.Errorf("dist: worker_id must not be empty")
	}
	if len(id) > MaxWorkerIDLen {
		return fmt.Errorf("dist: worker_id longer than %d bytes", MaxWorkerIDLen)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return fmt.Errorf("dist: worker_id contains forbidden byte %q", c)
		}
	}
	return nil
}

// validLeaseID bounds lease tokens (shape is coordinator-internal).
func validLeaseID(id string) error {
	if id == "" {
		return fmt.Errorf("dist: lease_id must not be empty")
	}
	if len(id) > maxLeaseIDLen {
		return fmt.Errorf("dist: lease_id longer than %d bytes", maxLeaseIDLen)
	}
	return nil
}

// DecodeSubmit parses and validates a distributed-campaign submission.
func DecodeSubmit(data []byte) (SubmitRequest, error) {
	var req SubmitRequest
	if err := decodeStrict(data, &req); err != nil {
		return SubmitRequest{}, err
	}
	if req.LeaseJobs < 0 || req.LeaseJobs > MaxLeaseJobs {
		return SubmitRequest{}, fmt.Errorf("dist: lease_jobs %d outside [0, %d]", req.LeaseJobs, MaxLeaseJobs)
	}
	if err := req.Spec.Validate(); err != nil {
		return SubmitRequest{}, err
	}
	return req, nil
}

// DecodeAcquire parses and validates a lease-acquire pull.
func DecodeAcquire(data []byte) (AcquireRequest, error) {
	var req AcquireRequest
	if err := decodeStrict(data, &req); err != nil {
		return AcquireRequest{}, err
	}
	if err := validWorkerID(req.WorkerID); err != nil {
		return AcquireRequest{}, err
	}
	return req, nil
}

// DecodeRenew parses and validates a lease renewal.
func DecodeRenew(data []byte) (RenewRequest, error) {
	var req RenewRequest
	if err := decodeStrict(data, &req); err != nil {
		return RenewRequest{}, err
	}
	if err := validLeaseID(req.LeaseID); err != nil {
		return RenewRequest{}, err
	}
	if err := validWorkerID(req.WorkerID); err != nil {
		return RenewRequest{}, err
	}
	return req, nil
}

// DecodeComplete parses and validates a lease completion: identifier
// bounds, partial-aggregate internal consistency, shard-size and event
// caps. Range checks against the actual lease are the coordinator's job
// (the decoder has no lease table).
func DecodeComplete(data []byte) (CompleteRequest, error) {
	var req CompleteRequest
	if err := decodeStrict(data, &req); err != nil {
		return CompleteRequest{}, err
	}
	if err := validLeaseID(req.LeaseID); err != nil {
		return CompleteRequest{}, err
	}
	if err := validWorkerID(req.WorkerID); err != nil {
		return CompleteRequest{}, err
	}
	if req.Partial.Jobs > MaxLeaseJobs {
		return CompleteRequest{}, fmt.Errorf("dist: partial covers %d jobs, lease cap is %d", req.Partial.Jobs, MaxLeaseJobs)
	}
	if err := req.Partial.Validate(); err != nil {
		return CompleteRequest{}, err
	}
	if len(req.Events) > MaxCompleteEvents {
		return CompleteRequest{}, fmt.Errorf("dist: %d events exceed the %d-event cap", len(req.Events), MaxCompleteEvents)
	}
	if len(req.Captures) > MaxCompleteCaptures {
		return CompleteRequest{}, fmt.Errorf("dist: %d captures exceed the %d-capture cap", len(req.Captures), MaxCompleteCaptures)
	}
	for i, c := range req.Captures {
		if err := forensic.ValidateCapture(c); err != nil {
			return CompleteRequest{}, fmt.Errorf("dist: capture %d: %w", i, err)
		}
	}
	if len(req.Spans) > MaxCompleteSpans {
		return CompleteRequest{}, fmt.Errorf("dist: %d spans exceed the %d-span cap", len(req.Spans), MaxCompleteSpans)
	}
	return req, nil
}

// DecodeProgress parses and validates a mid-lease progress update:
// identifier bounds, partial consistency, the Done/Partial.Jobs
// agreement, and the event cap. Lease-range checks are the
// coordinator's job.
func DecodeProgress(data []byte) (ProgressRequest, error) {
	var req ProgressRequest
	if err := decodeStrict(data, &req); err != nil {
		return ProgressRequest{}, err
	}
	if err := validLeaseID(req.LeaseID); err != nil {
		return ProgressRequest{}, err
	}
	if err := validWorkerID(req.WorkerID); err != nil {
		return ProgressRequest{}, err
	}
	if req.Done < 0 || req.Done > MaxLeaseJobs {
		return ProgressRequest{}, fmt.Errorf("dist: progress done %d outside [0, %d]", req.Done, MaxLeaseJobs)
	}
	if req.Partial.Jobs != req.Done {
		return ProgressRequest{}, fmt.Errorf("dist: progress done %d disagrees with partial covering %d jobs", req.Done, req.Partial.Jobs)
	}
	if err := req.Partial.Validate(); err != nil {
		return ProgressRequest{}, err
	}
	if len(req.Events) > MaxCompleteEvents {
		return ProgressRequest{}, fmt.Errorf("dist: %d events exceed the %d-event cap", len(req.Events), MaxCompleteEvents)
	}
	return req, nil
}

// OutcomeEvents derives the forwardable flight events from a shard's
// outcomes: collisions and challenge confusion, truncated at
// MaxCompleteEvents so one pathological shard cannot flood the
// coordinator.
func OutcomeEvents(outcomes []campaign.Outcome) []Event {
	var evs []Event
	for _, o := range outcomes {
		if len(evs) >= MaxCompleteEvents {
			return evs
		}
		for _, ev := range eventsOfOutcome(o) {
			if len(evs) >= MaxCompleteEvents {
				break
			}
			evs = append(evs, ev)
		}
	}
	return evs
}

// eventsOfOutcome derives one job's forwardable events — the per-job
// unit OutcomeEvents and the worker's live progress reporter share, so
// an event delivered mid-lease is identical to the one a completion
// would carry.
func eventsOfOutcome(o campaign.Outcome) []Event {
	var evs []Event
	if o.CollisionAt >= 0 {
		evs = append(evs, Event{Kind: EventCollision,
			JobIndex: o.Index, Seed: o.Point.Seed, K: o.CollisionAt, Detail: o.Label})
	}
	if o.FalsePositives > 0 {
		evs = append(evs, Event{Kind: EventFalsePositive,
			JobIndex: o.Index, Seed: o.Point.Seed,
			Detail: fmt.Sprintf("%s: %d false positives", o.Label, o.FalsePositives)})
	}
	if o.FalseNegatives > 0 {
		evs = append(evs, Event{Kind: EventFalseNegative,
			JobIndex: o.Index, Seed: o.Point.Seed,
			Detail: fmt.Sprintf("%s: %d false negatives", o.Label, o.FalseNegatives)})
	}
	return evs
}

// eventKey is the identity progress dedup uses: events are
// deterministic per job, so kind+job+detail names one event uniquely.
func eventKey(ev Event) string {
	return fmt.Sprintf("%s|%d|%s", ev.Kind, ev.JobIndex, ev.Detail)
}
