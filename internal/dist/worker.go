package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"safesense/internal/campaign"
	"safesense/internal/obs/forensic"
	obstrace "safesense/internal/obs/trace"
)

// WorkerConfig tunes a pull worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (e.g. http://host:8077).
	Coordinator string
	// ID names this worker in lease grants and status payloads (empty
	// means "<hostname>-<pid>", sanitized).
	ID string
	// Client is the HTTP client used for coordinator calls (nil means
	// a client with a 30s timeout).
	Client *http.Client
	// Jobs bounds the local per-lease worker pool (<= 0 means
	// GOMAXPROCS).
	Jobs int
	// PollInterval is the idle wait between empty acquire pulls (zero
	// means 500ms).
	PollInterval time.Duration
	// ProgressInterval is how often a held lease streams a snapshot of
	// its partial aggregate to the coordinator for the live campaign
	// view (zero means 2s; negative disables mid-lease reporting).
	// Progress is best-effort: a failed post is retried at the next
	// tick and never affects the final aggregate.
	ProgressInterval time.Duration
	// Log receives the worker's structured records (nil discards).
	Log *slog.Logger
	// Traces is the span store lease spans root into (nil means
	// trace.Default()).
	Traces *obstrace.Store
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.ID == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		c.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.PollInterval == 0 {
		c.PollInterval = 500 * time.Millisecond
	}
	if c.ProgressInterval == 0 {
		c.ProgressInterval = 2 * time.Second
	}
	if c.Log == nil {
		c.Log = slog.New(discardHandler{})
	}
	if c.Traces == nil {
		c.Traces = obstrace.Default()
	}
	return c
}

// specCacheSize bounds the worker's expanded-grid cache; grids are
// O(jobs) so a handful of concurrent campaigns is plenty.
const specCacheSize = 4

// Worker pulls leases from a coordinator and runs them on the local
// campaign engine. One Worker runs one Run loop; it is not safe for
// concurrent Run calls.
type Worker struct {
	cfg        WorkerConfig
	base       string
	jobCache   map[string][]campaign.Job
	cacheOrder []string
}

// NewWorker validates the config and builds a worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	cfg = cfg.withDefaults()
	if err := validWorkerID(cfg.ID); err != nil {
		return nil, err
	}
	base := strings.TrimRight(cfg.Coordinator, "/")
	if base == "" {
		return nil, fmt.Errorf("dist: worker needs a coordinator URL")
	}
	return &Worker{cfg: cfg, base: base, jobCache: make(map[string][]campaign.Job)}, nil
}

// ID returns the worker's effective identifier.
func (w *Worker) ID() string { return w.cfg.ID }

// Run pulls and executes leases until ctx is cancelled. Transient
// coordinator failures back off and retry; the loop only exits with
// ctx.Err().
func (w *Worker) Run(ctx context.Context) error {
	w.cfg.Log.Info("dist worker joining", "coordinator", w.base, "worker", w.cfg.ID)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, ok, err := w.acquire(ctx)
		if err != nil {
			w.cfg.Log.Warn("dist acquire failed", "error", err.Error())
			if !sleepCtx(ctx, w.cfg.PollInterval) {
				return ctx.Err()
			}
			continue
		}
		if !ok {
			if !sleepCtx(ctx, w.cfg.PollInterval) {
				return ctx.Err()
			}
			continue
		}
		if err := w.execute(ctx, lease); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			metricWorkerLeaseFailures.With().Inc()
			w.cfg.Log.Error("dist lease abandoned",
				"lease", lease.LeaseID, "campaign", lease.Campaign, "error", err.Error())
			if !sleepCtx(ctx, w.cfg.PollInterval) {
				return ctx.Err()
			}
		}
	}
}

// acquire pulls the next lease; ok is false when the coordinator has no
// open work.
func (w *Worker) acquire(ctx context.Context) (AcquireResponse, bool, error) {
	var lease AcquireResponse
	status, err := w.postJSON(ctx, "/v1/dist/lease", AcquireRequest{WorkerID: w.cfg.ID}, &lease, "")
	if err != nil {
		return AcquireResponse{}, false, err
	}
	switch status {
	case http.StatusOK:
		return lease, true, nil
	case http.StatusNoContent:
		return AcquireResponse{}, false, nil
	default:
		return AcquireResponse{}, false, fmt.Errorf("dist: acquire returned status %d", status)
	}
}

// execute runs one lease: expand (cached), run the shard on the local
// pool while renewing, then complete with the partial aggregate and the
// shard's flight events.
func (w *Worker) execute(ctx context.Context, lease AcquireResponse) error {
	start := wallClock()
	// Remember which of this trace's spans are already stored: the
	// campaign trace ID is shared by every lease of the campaign, so the
	// completion must ship only the spans this lease adds.
	before := make(map[string]struct{})
	for _, rec := range w.cfg.Traces.Trace(lease.TraceID) {
		before[rec.SpanID] = struct{}{}
	}
	leaseCtx, span := w.cfg.Traces.Root(ctx, "dist.lease", lease.TraceID)
	defer span.End()
	if span.Sampled() {
		span.SetAttr("campaign", lease.Campaign)
		span.SetAttrInt("shard", int64(lease.Shard))
		span.SetAttrInt("start", int64(lease.Start))
		span.SetAttrInt("end", int64(lease.End))
		span.SetAttr("worker", w.cfg.ID)
	}
	jobs, err := w.jobsFor(lease)
	if err != nil {
		return err
	}
	shard := jobs[lease.Start:lease.End]
	w.cfg.Log.Info("dist lease acquired",
		"lease", lease.LeaseID, "campaign", lease.Campaign, "shard", lease.Shard,
		"start", lease.Start, "end", lease.End)

	// Renew at a third of the TTL while the shard runs; a lost lease
	// (renew says gone) cancels the run — the shard was reassigned, so
	// finishing it here would only duplicate deterministic work.
	runCtx, cancelRun := context.WithCancel(leaseCtx)
	defer cancelRun()
	stopRenew := w.renewLoop(runCtx, lease, cancelRun)

	// Captures stay anomaly-only on workers (no latency-outlier kind):
	// anomaly captures are deterministic, so the coordinator's
	// hash-dedup collapses re-leased and retried shards to one stored
	// copy per incident.
	collector := &captureCollector{}
	opts := campaign.Options{
		Workers:         w.cfg.Jobs,
		Log:             w.cfg.Log.With("campaign", lease.Campaign, "lease", lease.LeaseID),
		ProfileCampaign: lease.Campaign,
		Forensic: &campaign.ForensicOptions{
			Sink:     collector.add,
			Campaign: lease.Campaign,
			SpecHash: lease.Spec.Hash(),
		},
	}
	var reporter *progressReporter
	stopProgress := func() {}
	if w.cfg.ProgressInterval > 0 {
		reporter = newProgressReporter(w, lease)
		opts.OnOutcome = reporter.onOutcome
		stopProgress = reporter.loop(runCtx, w.cfg.ProgressInterval)
	}

	outcomes, runErr := campaign.RunJobs(runCtx, shard, opts)
	stopProgress()
	stopRenew()
	if runErr != nil {
		if ctx.Err() == nil && leaseCtx.Err() == nil && runCtx.Err() != nil {
			return fmt.Errorf("dist: lease %s lost mid-run: %w", lease.LeaseID, runErr)
		}
		return runErr
	}

	events := OutcomeEvents(outcomes)
	if reporter != nil {
		events = reporter.remainingEvents(events)
	}
	// Close the lease span now (End is idempotent; the defer becomes a
	// no-op) so it flushes into the store and ships with the completion —
	// the coordinator stitches it under the campaign root.
	span.End()
	var spans []obstrace.SpanRecord
	for _, rec := range w.cfg.Traces.Trace(lease.TraceID) {
		if _, ok := before[rec.SpanID]; ok {
			continue
		}
		spans = append(spans, rec)
		if len(spans) == MaxCompleteSpans {
			break
		}
	}
	req := CompleteRequest{
		LeaseID:  lease.LeaseID,
		WorkerID: w.cfg.ID,
		Partial:  campaign.PartialOfOutcomes(outcomes),
		Events:   events,
		Captures: collector.take(),
		Spans:    spans,
	}
	var resp CompleteResponse
	if err := w.completeWithRetry(ctx, req, &resp, lease.TraceID); err != nil {
		return err
	}
	metricWorkerLeaseSeconds.With().ObserveDuration(wallClock().Sub(start))
	w.cfg.Log.Info("dist lease completed",
		"lease", lease.LeaseID, "campaign", lease.Campaign, "jobs", len(shard),
		"duplicate", resp.Duplicate, "campaign_done", resp.CampaignDone)
	return nil
}

// captureCollector accumulates a lease's forensic captures under the
// MaxCompleteCaptures wire cap. When a shard produces more, the
// lowest-priority resident is displaced by a higher-priority newcomer,
// so collisions outlive gap noise — the same policy the store's
// eviction applies. Pool workers call add concurrently.
type captureCollector struct {
	mu   sync.Mutex
	caps []forensic.Capture
}

// capturePriority ranks a capture by its most severe kind.
func capturePriority(c forensic.Capture) int {
	p := 0
	for _, k := range c.Kinds {
		if kp := forensic.KindPriority(k); kp > p {
			p = kp
		}
	}
	return p
}

func (cc *captureCollector) add(c forensic.Capture) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if len(cc.caps) < MaxCompleteCaptures {
		cc.caps = append(cc.caps, c)
		return
	}
	low := 0
	for i := 1; i < len(cc.caps); i++ {
		if capturePriority(cc.caps[i]) < capturePriority(cc.caps[low]) {
			low = i
		}
	}
	if capturePriority(c) > capturePriority(cc.caps[low]) {
		cc.caps[low] = c
	}
}

// take returns the collected captures ordered by job index — pool
// completion order is racy, so the wire payload is re-sorted into the
// deterministic grid order.
func (cc *captureCollector) take() []forensic.Capture {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	caps := cc.caps
	cc.caps = nil
	sort.Slice(caps, func(i, j int) bool { return caps[i].JobIndex < caps[j].JobIndex })
	return caps
}

// jobsFor expands the lease's spec, caching the grid per campaign so a
// worker holding many leases of one sweep expands it once.
func (w *Worker) jobsFor(lease AcquireResponse) ([]campaign.Job, error) {
	if jobs, ok := w.jobCache[lease.Campaign]; ok {
		if err := checkLeaseRange(lease, len(jobs)); err != nil {
			return nil, err
		}
		return jobs, nil
	}
	jobs, err := lease.Spec.Expand()
	if err != nil {
		return nil, fmt.Errorf("dist: expanding campaign %s: %w", lease.Campaign, err)
	}
	if err := checkLeaseRange(lease, len(jobs)); err != nil {
		return nil, err
	}
	if len(w.cacheOrder) >= specCacheSize {
		delete(w.jobCache, w.cacheOrder[0])
		w.cacheOrder = w.cacheOrder[1:]
	}
	w.jobCache[lease.Campaign] = jobs
	w.cacheOrder = append(w.cacheOrder, lease.Campaign)
	return jobs, nil
}

// checkLeaseRange guards the shard slice against a malformed grant.
func checkLeaseRange(lease AcquireResponse, jobs int) error {
	if lease.Start < 0 || lease.End < lease.Start || lease.End > jobs {
		return fmt.Errorf("dist: lease %s range [%d, %d) outside grid of %d jobs",
			lease.LeaseID, lease.Start, lease.End, jobs)
	}
	return nil
}

// renewLoop keeps the lease alive on a background goroutine, cancelling
// the run when the coordinator reports the lease gone. The returned
// stop function blocks until the goroutine exits.
func (w *Worker) renewLoop(ctx context.Context, lease AcquireResponse, onLost context.CancelFunc) (stop func()) {
	interval := time.Duration(lease.TTLSeconds * float64(time.Second) / 3)
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	done := make(chan struct{})
	stopc := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-stopc:
				return
			case <-ticker.C:
			}
			var resp RenewResponse
			status, err := w.postJSON(ctx, "/v1/dist/lease/renew",
				RenewRequest{LeaseID: lease.LeaseID, WorkerID: w.cfg.ID}, &resp, lease.TraceID)
			if err != nil {
				// Transient coordinator trouble: keep running; the next
				// tick retries and the TTL gives slack for a few misses.
				w.cfg.Log.Warn("dist renew failed", "lease", lease.LeaseID, "error", err.Error())
				continue
			}
			if status == http.StatusGone {
				w.cfg.Log.Warn("dist lease lost", "lease", lease.LeaseID)
				onLost()
				return
			}
		}
	}()
	return func() {
		close(stopc)
		<-done
	}
}

// completeRetries bounds completion attempts before the lease is
// abandoned to expiry-driven reassignment.
const completeRetries = 3

func (w *Worker) completeWithRetry(ctx context.Context, req CompleteRequest, resp *CompleteResponse, traceID string) error {
	var lastErr error
	for attempt := 0; attempt < completeRetries; attempt++ {
		if attempt > 0 && !sleepCtx(ctx, time.Duration(attempt)*200*time.Millisecond) {
			return ctx.Err()
		}
		status, err := w.postJSON(ctx, "/v1/dist/lease/complete", req, resp, traceID)
		if err != nil {
			lastErr = err
			continue
		}
		switch status {
		case http.StatusOK:
			return nil
		case http.StatusConflict, http.StatusBadRequest:
			// Rejected payloads will not improve on retry.
			return fmt.Errorf("dist: completion rejected with status %d", status)
		default:
			lastErr = fmt.Errorf("dist: complete returned status %d", status)
		}
	}
	return fmt.Errorf("dist: completing lease %s: %w", req.LeaseID, lastErr)
}

// postJSON posts one JSON message and decodes the response when the
// status carries a body. The campaign's trace ID (when known) rides on
// X-Request-ID so the coordinator's middleware joins its records to the
// same trace.
func (w *Worker) postJSON(ctx context.Context, path string, in, out any, traceID string) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, fmt.Errorf("dist: encoding request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set("X-Request-ID", traceID)
	}
	res, err := w.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer res.Body.Close()
	if res.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(io.LimitReader(res.Body, maxDistBodyBytes)).Decode(out); err != nil {
			return res.StatusCode, fmt.Errorf("dist: decoding response: %w", err)
		}
	}
	return res.StatusCode, nil
}

// sleepCtx waits d or until ctx is cancelled, reporting whether the
// full wait elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
