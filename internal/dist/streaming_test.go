package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"safesense/internal/campaign"
	"safesense/internal/obs/stream"
)

// progressOver computes an honest mid-lease snapshot covering the first
// n jobs of the lease's shard.
func progressOver(t *testing.T, lease AcquireResponse, worker string, n int) ProgressRequest {
	t.Helper()
	jobs, err := lease.Spec.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	outcomes, err := campaign.RunJobs(context.Background(), jobs[lease.Start:lease.Start+n], campaign.Options{Workers: 1})
	if err != nil {
		t.Fatalf("RunJobs: %v", err)
	}
	return ProgressRequest{
		LeaseID:  lease.LeaseID,
		WorkerID: worker,
		Done:     n,
		Partial:  campaign.PartialOfOutcomes(outcomes),
		Events:   OutcomeEvents(outcomes),
	}
}

// TestCoordinatorProgressLiveView: mid-lease progress feeds the live
// fleet view and the stream hub without touching the completed-lease
// merge, and the terminal "done" event embeds an aggregate
// byte-identical to the single-node oracle.
func TestCoordinatorProgressLiveView(t *testing.T) {
	clock := newFakeClock()
	hub := stream.NewHub(0)
	c := NewCoordinator(Config{LeaseJobs: 3, LeaseTTL: time.Minute, Clock: clock.Now, Streams: hub})
	spec := testSpec("progress-live")

	sub, err := c.Submit(SubmitRequest{Spec: spec}, "")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	lease, ok := c.Acquire("w1")
	if !ok {
		t.Fatal("no lease granted")
	}

	preq := progressOver(t, lease, "w1", 2)
	resp, err := c.Progress(preq)
	if err != nil || resp.Stale {
		t.Fatalf("Progress = %+v, %v", resp, err)
	}

	// The live view counts in-flight jobs; the authoritative merge does not.
	st, _ := c.CampaignStatus(sub.ID)
	if st.DoneJobs != 0 {
		t.Fatalf("progress leaked into done_jobs: %d", st.DoneJobs)
	}
	fl := c.Fleet()
	if len(fl.Campaigns) != 1 || fl.Campaigns[0].LiveJobs != 2 {
		t.Fatalf("fleet campaigns = %+v, want live_jobs 2", fl.Campaigns)
	}
	if len(fl.Workers) != 1 || fl.Workers[0].ID != "w1" ||
		fl.Workers[0].LiveJobs != 2 || fl.Workers[0].ActiveLeases != 1 || !fl.Workers[0].Live {
		t.Fatalf("fleet workers = %+v", fl.Workers)
	}
	if fl.StreamPublished == 0 {
		t.Fatal("fleet reports zero published stream events after progress")
	}

	// The hub carries the update: the latest partial snapshot must be a
	// valid mergeable partial over the in-flight jobs.
	var lastPartial []byte
	for _, ev := range hub.Replay(sub.ID, 0) {
		if ev.Type == streamTypePartial {
			lastPartial = ev.Data
		}
	}
	if lastPartial == nil {
		t.Fatal("no partial event published")
	}
	var p campaign.Partial
	if err := json.Unmarshal(lastPartial, &p); err != nil {
		t.Fatalf("partial event not a Partial: %v", err)
	}
	if p.Jobs != 2 {
		t.Fatalf("live partial covers %d jobs, want 2", p.Jobs)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("live partial invalid: %v", err)
	}

	// Stale and invalid updates are rejected without state changes.
	if _, err := c.Progress(ProgressRequest{LeaseID: "d999999.0.1", WorkerID: "w1"}); err == nil {
		t.Fatal("unknown lease accepted")
	}
	wrongWorker := preq
	wrongWorker.WorkerID = "w2"
	if resp, err := c.Progress(wrongWorker); err != nil || !resp.Stale {
		t.Fatalf("non-holder progress = %+v, %v, want stale", resp, err)
	}
	older := progressOver(t, lease, "w1", 1)
	if resp, err := c.Progress(older); err != nil || !resp.Stale {
		t.Fatalf("out-of-order progress = %+v, %v, want stale", resp, err)
	}

	// Complete both shards; the live view collapses into the merge.
	first := runShard(t, lease)
	first.WorkerID = "w1"
	if _, err := c.Complete(first); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	lease2, ok := c.Acquire("w2")
	if !ok {
		t.Fatal("no second lease")
	}
	second := runShard(t, lease2)
	second.WorkerID = "w2"
	done, err := c.Complete(second)
	if err != nil || !done.CampaignDone {
		t.Fatalf("Complete = %+v, %v", done, err)
	}
	if resp, err := c.Progress(preq); err != nil || !resp.Stale {
		t.Fatalf("progress after completion = %+v, %v, want stale", resp, err)
	}

	// The terminal event's embedded aggregate is byte-identical to the
	// single-node fold of the same spec.
	var doneData []byte
	for _, ev := range hub.Replay(sub.ID, 0) {
		if ev.Type == streamTypeDone {
			doneData = ev.Data
		}
	}
	if doneData == nil {
		t.Fatal("no done event published")
	}
	var env struct {
		Aggregate json.RawMessage `json:"aggregate"`
	}
	if err := json.Unmarshal(doneData, &env); err != nil {
		t.Fatalf("done event: %v", err)
	}
	if want := oracleAggregate(t, spec); !bytes.Equal(env.Aggregate, want) {
		t.Fatalf("streamed done aggregate diverges from oracle\n got: %s\nwant: %s", env.Aggregate, want)
	}
}

// TestStreamEndpointFinishedCampaign: subscribing to a campaign that
// already finished yields one synthesized terminal frame carrying the
// oracle-identical aggregate, even when the hub never saw the campaign
// (e.g. after a coordinator restart with a cold ring).
func TestStreamEndpointFinishedCampaign(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(Config{LeaseJobs: MaxLeaseJobs, LeaseTTL: time.Minute, Clock: clock.Now, Streams: stream.NewHub(8)})
	spec := testSpec("stream-done")
	sub, err := c.Submit(SubmitRequest{Spec: spec}, "")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	lease, ok := c.Acquire("w1")
	if !ok {
		t.Fatal("no lease granted")
	}
	if _, err := c.Complete(runShard(t, lease)); err != nil {
		t.Fatalf("Complete: %v", err)
	}

	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/dist/campaigns/" + sub.ID + "/stream")
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	fr, err := stream.NewDecoder(resp.Body).Next()
	if err != nil {
		t.Fatalf("decoding terminal frame: %v", err)
	}
	if fr.Event != streamTypeDone {
		t.Fatalf("terminal frame event = %q, want done", fr.Event)
	}
	var env struct {
		Aggregate json.RawMessage `json:"aggregate"`
	}
	if err := json.Unmarshal(fr.Data, &env); err != nil {
		t.Fatalf("terminal frame data: %v", err)
	}
	if want := oracleAggregate(t, spec); !bytes.Equal(env.Aggregate, want) {
		t.Fatalf("terminal aggregate diverges from oracle\n got: %s\nwant: %s", env.Aggregate, want)
	}

	// Unknown campaigns 404 rather than hang.
	r404, err := http.Get(srv.URL + "/v1/dist/campaigns/d999999/stream")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign stream status = %d", r404.StatusCode)
	}
}
