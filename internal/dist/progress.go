package dist

import (
	"context"
	"net/http"
	"sync"
	"time"

	"safesense/internal/campaign"
)

// progressReporter streams a held lease's live state to the
// coordinator: an Accumulator folds outcomes as they complete (in any
// order), and a background loop posts periodic snapshots plus the
// flight events discovered since the last successful post. Everything
// here is best-effort observability — the authoritative partial still
// travels with the completion, so a dropped post costs nothing but
// freshness.
type progressReporter struct {
	w     *Worker
	lease AcquireResponse
	acc   *campaign.Accumulator

	mu      sync.Mutex
	pending []Event         // collected but not yet delivered
	total   int             // events collected over the lease, capped
	sent    map[string]bool // keys delivered via progress posts
	posted  int             // jobs covered by the last successful post
}

func newProgressReporter(w *Worker, lease AcquireResponse) *progressReporter {
	return &progressReporter{w: w, lease: lease, acc: campaign.NewAccumulator(), sent: make(map[string]bool)}
}

// onOutcome is the campaign engine's OnOutcome hook: fold the outcome
// and queue its notable events. The engine serializes calls, but the
// posting loop reads concurrently, so the event queue takes the lock.
func (pr *progressReporter) onOutcome(o campaign.Outcome) {
	pr.acc.Add(o)
	evs := eventsOfOutcome(o)
	if len(evs) == 0 {
		return
	}
	pr.mu.Lock()
	for _, ev := range evs {
		if pr.total >= MaxCompleteEvents {
			break
		}
		pr.pending = append(pr.pending, ev)
		pr.total++
	}
	pr.mu.Unlock()
}

// loop posts snapshots every interval until stopped. The returned stop
// function blocks until the goroutine exits, so completion never races
// a late post carrying an older snapshot.
func (pr *progressReporter) loop(ctx context.Context, interval time.Duration) (stop func()) {
	done := make(chan struct{})
	stopc := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-stopc:
				return
			case <-ticker.C:
			}
			pr.post(ctx)
		}
	}()
	return func() {
		close(stopc)
		<-done
	}
}

// post sends one snapshot when there is anything new to report. On
// failure the event batch goes back to the queue so the next tick — or
// the completion — still delivers it.
func (pr *progressReporter) post(ctx context.Context) {
	snap := pr.acc.Snapshot()
	pr.mu.Lock()
	evs := pr.pending
	pr.pending = nil
	stale := snap.Jobs == pr.posted
	pr.mu.Unlock()
	if snap.Jobs == 0 || (stale && len(evs) == 0) {
		return
	}
	req := ProgressRequest{
		LeaseID:  pr.lease.LeaseID,
		WorkerID: pr.w.cfg.ID,
		Done:     snap.Jobs,
		Partial:  snap,
		Events:   evs,
	}
	var resp ProgressResponse
	status, err := pr.w.postJSON(ctx, "/v1/dist/lease/progress", req, &resp, pr.lease.TraceID)
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if err != nil || status != http.StatusOK {
		pr.pending = append(evs, pr.pending...)
		return
	}
	pr.posted = snap.Jobs
	for _, ev := range evs {
		pr.sent[eventKey(ev)] = true
	}
}

// remainingEvents filters the completion's grid-order event list down
// to the events no progress post has already delivered, so the
// coordinator's campaign log sees each incident once on the common
// path.
func (pr *progressReporter) remainingEvents(full []Event) []Event {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if len(pr.sent) == 0 {
		return full
	}
	var out []Event
	for _, ev := range full {
		if !pr.sent[eventKey(ev)] {
			out = append(out, ev)
		}
	}
	return out
}
