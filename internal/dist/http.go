package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"safesense/internal/obs/stream"
	obstrace "safesense/internal/obs/trace"
)

// maxDistBodyBytes bounds coordinator-endpoint request bodies. A
// completion for a MaxLeaseJobs shard carries up to 3×65536 samples,
// which serializes to a few megabytes; 16 MiB leaves headroom without
// letting a hostile worker stream gigabytes.
const maxDistBodyBytes = 16 << 20

// Register mounts the coordinator's endpoints on mux:
//
//	POST /v1/dist/campaigns             submit a spec for distributed execution
//	GET  /v1/dist/campaigns/{id}        status: lease table, per-worker progress,
//	                                    forwarded flight events, summary when done
//	GET  /v1/dist/campaigns/{id}/stream live SSE feed: progress, merged partials,
//	                                    flight events, lease transitions, and a
//	                                    terminal "done" event carrying the final
//	                                    aggregate; supports Last-Event-ID resume
//	GET  /v1/fleet                      fleet view: worker liveness, throughput,
//	                                    per-campaign lease counts, hub health
//	POST /v1/dist/lease                 worker pull: acquire the next lease (204
//	                                    when no work is available)
//	POST /v1/dist/lease/renew           extend a held lease
//	POST /v1/dist/lease/progress        stream a held lease's partial snapshot
//	POST /v1/dist/lease/complete        deliver a shard's partial aggregate
//
// The handlers are transport-thin: strict bounded decoding, then the
// coordinator methods. Mounted under safesensed's observability
// middleware they inherit request tracing and metrics like every other
// route.
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/dist/campaigns", c.handleSubmit)
	mux.HandleFunc("GET /v1/dist/campaigns/{id}", c.handleStatus)
	mux.HandleFunc("GET /v1/dist/campaigns/{id}/stream", c.handleStream)
	mux.HandleFunc("GET /v1/fleet", c.handleFleet)
	mux.HandleFunc("POST /v1/dist/lease", c.handleAcquire)
	mux.HandleFunc("POST /v1/dist/lease/renew", c.handleRenew)
	mux.HandleFunc("POST /v1/dist/lease/progress", c.handleProgress)
	mux.HandleFunc("POST /v1/dist/lease/complete", c.handleComplete)
}

// Handler returns a standalone mux with the coordinator routes — what
// the in-process integration tests serve over httptest.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	c.Register(mux)
	return mux
}

func distWriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func distWriteError(w http.ResponseWriter, r *http.Request, code int, err error) {
	body := map[string]string{"error": err.Error()}
	if id := obstrace.ID(r.Context()); id != "" {
		body["request_id"] = id
	}
	distWriteJSON(w, code, body)
}

// readBody slurps a bounded request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	r.Body = http.MaxBytesReader(w, r.Body, maxDistBodyBytes)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, fmt.Errorf("dist: reading request body: %w", err)
	}
	return data, nil
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	data, err := readBody(w, r)
	if err != nil {
		distWriteError(w, r, http.StatusRequestEntityTooLarge, err)
		return
	}
	req, err := DecodeSubmit(data)
	if err != nil {
		distWriteError(w, r, http.StatusBadRequest, err)
		return
	}
	// The campaign outlives the request; its trace root inherits the
	// submitting request's ID so the submitter can follow the fan-out.
	resp, err := c.Submit(req, obstrace.ID(r.Context()))
	if err != nil {
		distWriteError(w, r, http.StatusServiceUnavailable, err)
		return
	}
	distWriteJSON(w, http.StatusAccepted, resp)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := c.CampaignStatus(id)
	if !ok {
		distWriteError(w, r, http.StatusNotFound, fmt.Errorf("dist: no campaign %q", id))
		return
	}
	distWriteJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleAcquire(w http.ResponseWriter, r *http.Request) {
	data, err := readBody(w, r)
	if err != nil {
		distWriteError(w, r, http.StatusRequestEntityTooLarge, err)
		return
	}
	req, err := DecodeAcquire(data)
	if err != nil {
		distWriteError(w, r, http.StatusBadRequest, err)
		return
	}
	lease, ok := c.Acquire(req.WorkerID)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	distWriteJSON(w, http.StatusOK, lease)
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	data, err := readBody(w, r)
	if err != nil {
		distWriteError(w, r, http.StatusRequestEntityTooLarge, err)
		return
	}
	req, err := DecodeRenew(data)
	if err != nil {
		distWriteError(w, r, http.StatusBadRequest, err)
		return
	}
	resp, err := c.Renew(req)
	if err != nil {
		// The lease is gone (completed or reassigned); 410 tells the
		// worker to stop renewing and abandon or finish quietly.
		distWriteError(w, r, http.StatusGone, err)
		return
	}
	distWriteJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleProgress(w http.ResponseWriter, r *http.Request) {
	data, err := readBody(w, r)
	if err != nil {
		distWriteError(w, r, http.StatusRequestEntityTooLarge, err)
		return
	}
	req, err := DecodeProgress(data)
	if err != nil {
		distWriteError(w, r, http.StatusBadRequest, err)
		return
	}
	resp, err := c.Progress(req)
	if err != nil {
		// Unknown lease or an impossible range: the worker's view of
		// the lease is wrong, so stop posting (progress is best-effort).
		distWriteError(w, r, http.StatusGone, err)
		return
	}
	distWriteJSON(w, http.StatusOK, resp)
}

// handleStream serves the campaign's live SSE feed. A finished
// campaign gets a single synthesized terminal frame (its live "done"
// event may have been evicted from the replay ring long ago); a
// running one subscribes with full-history replay, deduplicated
// against Last-Event-ID when the client is resuming, and ends when the
// terminal event arrives.
func (c *Coordinator) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := c.CampaignStatus(id)
	if !ok {
		distWriteError(w, r, http.StatusNotFound, fmt.Errorf("dist: no campaign %q", id))
		return
	}
	hub := c.cfg.Streams
	if hub == nil {
		distWriteError(w, r, http.StatusNotImplemented, fmt.Errorf("dist: streaming disabled on this coordinator"))
		return
	}
	if st.Status == StatusDone && st.Summary != nil {
		data, err := json.Marshal(streamDone{
			Campaign: st.ID, Jobs: st.Jobs,
			ElapsedSeconds: st.ElapsedSeconds, Aggregate: st.Summary.Aggregate,
		})
		if err != nil {
			distWriteError(w, r, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		_ = stream.EncodeFrame(w, stream.Frame{Event: streamTypeDone, Data: data})
		return
	}
	after, _ := stream.LastEventID(r)
	_ = stream.Serve(w, r, hub, stream.ServeOptions{
		Topic:     id,
		Replay:    true,
		After:     after,
		Keepalive: 15 * time.Second,
		Done:      func(ev *stream.Event) bool { return ev.Type == streamTypeDone },
	})
}

func (c *Coordinator) handleFleet(w http.ResponseWriter, _ *http.Request) {
	// Fleet is a read-only snapshot; no body to decode.
	distWriteJSON(w, http.StatusOK, c.Fleet())
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	data, err := readBody(w, r)
	if err != nil {
		distWriteError(w, r, http.StatusRequestEntityTooLarge, err)
		return
	}
	req, err := DecodeComplete(data)
	if err != nil {
		distWriteError(w, r, http.StatusBadRequest, err)
		return
	}
	resp, err := c.Complete(req)
	if err != nil {
		distWriteError(w, r, http.StatusConflict, err)
		return
	}
	distWriteJSON(w, http.StatusOK, resp)
}
