package dist

import "safesense/internal/obs"

// Process-wide lease metrics on the default registry, exposed by
// safesensed at /metrics. Deliberately label-free: worker IDs are
// unbounded-cardinality and belong in the status payload, not in
// metric labels (the metriclabels analyzer's contract).
var (
	metricCampaignsActive = obs.Default().Gauge(
		"safesense_dist_campaigns_active",
		"Distributed campaigns currently running on this coordinator.")
	metricLeasesGranted = obs.Default().Counter(
		"safesense_dist_leases_granted_total",
		"Leases granted to workers (including re-grants of expired leases).")
	metricLeasesRenewed = obs.Default().Counter(
		"safesense_dist_leases_renewed_total",
		"Lease renewals accepted.")
	metricLeasesExpired = obs.Default().Counter(
		"safesense_dist_leases_expired_total",
		"Leases reclaimed after their holder stopped renewing.")
	metricLeasesCompleted = obs.Default().Counter(
		"safesense_dist_leases_completed_total",
		"Leases completed with a valid partial aggregate.")
	metricProgressUpdates = obs.Default().Counter(
		"safesense_dist_progress_updates_total",
		"Mid-lease progress snapshots accepted into the live campaign view.")
	metricLeaseJobsDone = obs.Default().Counter(
		"safesense_dist_lease_jobs_done_total",
		"Jobs delivered through completed leases.")
	metricWorkerLeaseSeconds = obs.Default().Histogram(
		"safesense_dist_worker_lease_seconds",
		"Worker-side wall time from lease acquisition to completion.",
		obs.DefBuckets)
	metricWorkerLeaseFailures = obs.Default().Counter(
		"safesense_dist_worker_lease_failures_total",
		"Worker-side lease executions abandoned (lost lease, failed jobs, or unreachable coordinator).")
)
