package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestDistSmoke is the CI distributed-execution gate (`make dist-smoke`):
// a coordinator and two pull workers shard a 64-job campaign over the
// HTTP API; the merged aggregate must be byte-identical to the
// single-node oracle and both workers must have delivered shards.
func TestDistSmoke(t *testing.T) {
	coord := NewCoordinator(Config{
		LeaseJobs: 8,
		LeaseTTL:  time.Minute,
		Clock:     newFakeClock().Now,
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	spec := testSpec("dist-smoke")
	spec.Attacks = []string{"dos"}
	spec.Onsets = []int{10, 20, 30, 40}
	spec.Replicates = 16 // 4 grid points x 16 seeds = 64 jobs

	body, err := json.Marshal(SubmitRequest{Spec: spec})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	res, err := http.Post(srv.URL+"/v1/dist/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(res.Body).Decode(&sub); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	res.Body.Close()
	if sub.Jobs != 64 || sub.Leases != 8 {
		t.Fatalf("grid shape = %d jobs / %d leases, want 64 / 8", sub.Jobs, sub.Leases)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w, err := NewWorker(WorkerConfig{
			Coordinator:  srv.URL,
			ID:           fmt.Sprintf("smoke%d", i),
			Jobs:         2,
			PollInterval: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("NewWorker: %v", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx)
		}()
	}

	var st Status
	for poll := 0; ; poll++ {
		res, err := http.Get(srv.URL + "/v1/dist/campaigns/" + sub.ID)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		err = json.NewDecoder(res.Body).Decode(&st)
		res.Body.Close()
		if err != nil {
			t.Fatalf("decode status: %v", err)
		}
		if st.Status == StatusDone {
			break
		}
		if poll > 24000 {
			t.Fatalf("campaign did not finish: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	wg.Wait()

	if st.Summary == nil {
		t.Fatal("done campaign has no summary")
	}
	got, err := json.Marshal(st.Summary.Aggregate)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if want := oracleAggregate(t, spec); !bytes.Equal(got, want) {
		t.Fatalf("distributed aggregate diverges from single-node oracle\n got: %s\nwant: %s", got, want)
	}
	delivered := 0
	for _, w := range st.Workers {
		if w.LeasesDone > 0 {
			delivered++
		}
	}
	if delivered < 2 {
		t.Fatalf("only %d worker(s) delivered shards: %+v", delivered, st.Workers)
	}
	t.Logf("dist smoke: %d jobs over %d leases, %d workers, aggregate matches oracle",
		st.Jobs, st.Leases, delivered)
}
