package dist

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"safesense/internal/campaign"
)

// SSE event types the coordinator publishes on a campaign's topic. The
// topic is the campaign ID, so one hub carries every campaign and a
// subscriber sees only its own.
const (
	streamTypeProgress = "progress"
	streamTypePartial  = "partial"
	streamTypeFlight   = "flight"
	streamTypeLease    = "lease"
	streamTypeDone     = "done"
)

// Lease transition states carried by "lease" events.
const (
	leaseGranted   = "granted"
	leaseExpired   = "expired"
	leaseCompleted = "completed"
)

// streamProgress is the "progress" payload: overall campaign counters,
// with Done including in-flight jobs reported mid-lease (so the number
// is monotone during a lease, then settles to the completed-lease total
// when the shard closes).
type streamProgress struct {
	Campaign   string `json:"campaign"`
	Status     string `json:"status"`
	Jobs       int    `json:"jobs"`
	Done       int    `json:"done"`
	Leases     int    `json:"leases"`
	DoneLeases int    `json:"done_leases"`
}

// streamLease is the "lease" payload: one shard transition.
type streamLease struct {
	Campaign string `json:"campaign"`
	Shard    int    `json:"shard"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	Worker   string `json:"worker,omitempty"`
	State    string `json:"state"`
	Grants   int    `json:"grants"`
}

// streamDone is the terminal payload. Aggregate is embedded as the
// struct itself, so its JSON bytes inside the event equal a standalone
// json.Marshal of the campaign aggregate — the stream's byte-identity
// contract with the single-node oracle.
type streamDone struct {
	Campaign       string             `json:"campaign"`
	Jobs           int                `json:"jobs"`
	ElapsedSeconds float64            `json:"elapsed_seconds"`
	Aggregate      campaign.Aggregate `json:"aggregate"`
}

// publishLocked marshals v and publishes it on the campaign topic.
// Publishing is non-blocking by the hub's contract, so it is safe (and
// intentional) to call while holding c.mu. Callers hold c.mu.
func (c *Coordinator) publishLocked(topic, typ string, v any) {
	if c.cfg.Streams == nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	c.cfg.Streams.Publish(topic, typ, data)
}

// publishLeaseLocked emits one shard transition. Callers hold c.mu.
func (c *Coordinator) publishLeaseLocked(d *dcampaign, i int, sh *shard, state string) {
	c.publishLocked(d.id, streamTypeLease, streamLease{
		Campaign: d.id, Shard: i, Start: sh.start, End: sh.end,
		Worker: sh.worker, State: state, Grants: sh.grants,
	})
}

// publishProgressLocked emits the campaign's current counters plus the
// merged live partial. Callers hold c.mu.
func (c *Coordinator) publishProgressLocked(d *dcampaign) {
	if c.cfg.Streams == nil {
		return
	}
	c.publishLocked(d.id, streamTypeProgress, streamProgress{
		Campaign: d.id, Status: d.status, Jobs: d.jobs,
		Done:   d.doneJobs + liveJobs(d),
		Leases: len(d.shards), DoneLeases: d.doneShards,
	})
	c.publishLocked(d.id, streamTypePartial, livePartial(d))
}

// liveJobs sums the in-flight jobs reported by current lease holders.
func liveJobs(d *dcampaign) int {
	n := 0
	for _, sh := range d.shards {
		if !sh.completed {
			n += sh.liveDone
		}
	}
	return n
}

// livePartial merges the completed-lease fold with every open shard's
// last-reported live partial: the freshest consistent view of the whole
// campaign. Shard ranges are disjoint, so the merge is always valid.
func livePartial(d *dcampaign) campaign.Partial {
	merged := d.merged
	for _, sh := range d.shards {
		if !sh.completed && sh.liveDone > 0 {
			merged = merged.Merge(sh.livePartial)
		}
	}
	return merged
}

// Progress records a mid-lease snapshot from the shard's current
// holder. It feeds only the live view and the event stream — never the
// completed-lease merge — so progress is free to be lossy, duplicated,
// or late without touching the final aggregate. Stale updates (closed
// shard, reassigned lease, or an out-of-order snapshot) are discarded
// with Stale set; an unknown lease is an error so the worker stops
// posting.
func (c *Coordinator) Progress(req ProgressRequest) (ProgressResponse, error) {
	now := c.cfg.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	ref := c.leases[req.LeaseID]
	if ref == nil {
		return ProgressResponse{}, fmt.Errorf("dist: unknown lease %q", req.LeaseID)
	}
	d := ref.campaign
	sh := d.shards[ref.shard]
	if sh.completed || sh.leaseID != req.LeaseID || sh.worker != req.WorkerID {
		return ProgressResponse{Stale: true}, nil
	}
	if span := sh.end - sh.start; req.Done > span {
		return ProgressResponse{}, fmt.Errorf("dist: progress covers %d jobs, lease %q spans %d", req.Done, req.LeaseID, span)
	}
	if err := req.Partial.SampleRange(sh.start, sh.end); err != nil {
		return ProgressResponse{}, err
	}
	if req.Done < sh.liveDone {
		return ProgressResponse{Stale: true}, nil
	}
	sh.liveDone = req.Done
	sh.livePartial = req.Partial
	c.touchWorkerLocked(d, req.WorkerID, now)
	c.appendEventsLocked(d, req.Events)
	c.publishProgressLocked(d)
	metricProgressUpdates.With().Inc()
	return ProgressResponse{}, nil
}

// FleetWorker is one worker's row in the fleet view, aggregated across
// every stored campaign.
type FleetWorker struct {
	ID           string    `json:"id"`
	JobsDone     int       `json:"jobs_done"`
	LiveJobs     int       `json:"live_jobs"`
	LeasesDone   int       `json:"leases_done"`
	ActiveLeases int       `json:"active_leases"`
	FirstSeen    time.Time `json:"first_seen"`
	LastSeen     time.Time `json:"last_seen"`
	// RunsPerSec is jobs delivered per second of the worker's observed
	// lifetime (zero until the clock has advanced past first contact).
	RunsPerSec float64 `json:"runs_per_sec"`
	// Live reports contact within one lease TTL — a live holder renews
	// several times per TTL, and an idle worker polls far faster.
	Live bool `json:"live"`
}

// FleetCampaign summarizes one campaign for the fleet view.
type FleetCampaign struct {
	ID           string `json:"id"`
	Status       string `json:"status"`
	Jobs         int    `json:"jobs"`
	DoneJobs     int    `json:"done_jobs"`
	LiveJobs     int    `json:"live_jobs"`
	Leases       int    `json:"leases"`
	DoneLeases   int    `json:"done_leases"`
	ActiveLeases int    `json:"active_leases"`
}

// FleetStatus is the GET /v1/fleet payload: every worker the
// coordinator has heard from, every stored campaign, and the stream
// hub's health counters.
type FleetStatus struct {
	Workers           []FleetWorker   `json:"workers,omitempty"`
	Campaigns         []FleetCampaign `json:"campaigns,omitempty"`
	StreamSubscribers int             `json:"stream_subscribers"`
	StreamPublished   uint64          `json:"stream_events_published"`
	StreamDropped     uint64          `json:"stream_events_dropped"`
}

// Fleet reports fleet-wide worker liveness and throughput. Workers are
// keyed by ID across campaigns; rows are sorted by ID so the payload is
// deterministic for a given state.
func (c *Coordinator) Fleet() FleetStatus {
	now := c.cfg.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	byID := make(map[string]*FleetWorker)
	var fs FleetStatus
	for _, id := range c.order {
		d := c.campaigns[id]
		if d == nil {
			continue
		}
		fc := FleetCampaign{
			ID: d.id, Status: d.status, Jobs: d.jobs, DoneJobs: d.doneJobs,
			LiveJobs: liveJobs(d), Leases: len(d.shards), DoneLeases: d.doneShards,
		}
		for _, sh := range d.shards {
			if sh.completed || sh.worker == "" || !now.Before(sh.expires) {
				continue
			}
			fc.ActiveLeases++
			if fw := byID[sh.worker]; fw != nil {
				fw.ActiveLeases++
				fw.LiveJobs += sh.liveDone
			} else {
				byID[sh.worker] = &FleetWorker{ID: sh.worker, ActiveLeases: 1, LiveJobs: sh.liveDone}
			}
		}
		fs.Campaigns = append(fs.Campaigns, fc)
		for wid, wp := range d.workers {
			fw := byID[wid]
			if fw == nil {
				fw = &FleetWorker{ID: wid}
				byID[wid] = fw
			}
			fw.JobsDone += wp.jobsDone
			fw.LeasesDone += wp.leasesDone
			if fw.FirstSeen.IsZero() || wp.firstSeen.Before(fw.FirstSeen) {
				fw.FirstSeen = wp.firstSeen
			}
			if wp.lastSeen.After(fw.LastSeen) {
				fw.LastSeen = wp.lastSeen
			}
		}
	}
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fw := byID[id]
		fw.Live = !fw.LastSeen.IsZero() && now.Sub(fw.LastSeen) <= c.cfg.LeaseTTL
		if elapsed := fw.LastSeen.Sub(fw.FirstSeen); elapsed > 0 {
			fw.RunsPerSec = float64(fw.JobsDone+fw.LiveJobs) / elapsed.Seconds()
		}
		fs.Workers = append(fs.Workers, *fw)
	}
	if c.cfg.Streams != nil {
		published, dropped, subs := c.cfg.Streams.Stats()
		fs.StreamSubscribers = subs
		fs.StreamPublished = published
		fs.StreamDropped = dropped
	}
	return fs
}
