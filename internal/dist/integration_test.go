package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestMultiWorkerCampaign is the end-to-end distributed oracle: an
// in-process coordinator behind httptest, three pull workers, one of
// which is killed mid-campaign (its lease expires and is reassigned),
// and the merged summary must still be byte-identical to the
// single-node run. Run under -race this also exercises the
// coordinator's lock discipline against concurrent workers.
func TestMultiWorkerCampaign(t *testing.T) {
	clock := newFakeClock()
	coord := NewCoordinator(Config{
		LeaseJobs: 4,
		LeaseTTL:  time.Second,
		Clock:     clock.Now,
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	spec := testSpec("multi-worker")
	spec.Replicates = 12 // 60-job grid: enough leases for three workers to overlap

	body, err := json.Marshal(SubmitRequest{Spec: spec})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	res, err := http.Post(srv.URL+"/v1/dist/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(res.Body).Decode(&sub); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", res.StatusCode)
	}
	if sub.Jobs < 40 || sub.Leases < 10 {
		t.Fatalf("grid too small to shard meaningfully: %d jobs / %d leases", sub.Jobs, sub.Leases)
	}

	ctx, cancelAll := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancelAll()
	victimCtx, killVictim := context.WithCancel(ctx)
	defer killVictim()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		w, err := NewWorker(WorkerConfig{
			Coordinator:  srv.URL,
			ID:           fmt.Sprintf("itw%d", i),
			Jobs:         2,
			PollInterval: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("NewWorker: %v", err)
		}
		runCtx := ctx
		if i == 0 {
			runCtx = victimCtx
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(runCtx)
		}()
	}

	status := func() Status {
		t.Helper()
		res, err := http.Get(srv.URL + "/v1/dist/campaigns/" + sub.ID)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		defer res.Body.Close()
		var st Status
		if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
			t.Fatalf("decode status: %v", err)
		}
		return st
	}

	// Kill worker 0 once the campaign is visibly under way but far from
	// done, then advance the fake clock while polling so its orphaned
	// lease expires and is re-granted to a survivor. The poll budget
	// (rather than a wall-clock deadline — the determinism analyzer
	// covers this package's tests too) bounds the wait at ~2 minutes.
	killed := false
	var st Status
	for poll := 0; ; poll++ {
		st = status()
		if st.Status == StatusDone {
			break
		}
		if !killed && st.DoneLeases >= 1 {
			killVictim()
			killed = true
		}
		if killed {
			clock.Advance(500 * time.Millisecond)
		}
		if poll > 24000 {
			t.Fatalf("campaign did not finish: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !killed {
		t.Fatal("campaign finished before the victim worker could be killed")
	}
	cancelAll()
	wg.Wait()

	if st.Summary == nil {
		t.Fatal("done campaign has no summary")
	}
	got, err := json.Marshal(st.Summary.Aggregate)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if want := oracleAggregate(t, spec); !bytes.Equal(got, want) {
		t.Fatalf("distributed aggregate diverges from single-node oracle\n got: %s\nwant: %s", got, want)
	}
	if st.DoneJobs != sub.Jobs {
		t.Fatalf("done jobs = %d, want %d", st.DoneJobs, sub.Jobs)
	}
	// At least two distinct workers must have delivered shards — the
	// point of the exercise is sharded execution, not one fast worker.
	delivered := 0
	for _, w := range st.Workers {
		if w.LeasesDone > 0 {
			delivered++
		}
	}
	if delivered < 2 {
		t.Fatalf("only %d worker(s) delivered shards: %+v", delivered, st.Workers)
	}
}

// TestHTTPErrorPaths checks the transport contract: malformed bodies are
// 400s, unknown campaigns 404, lost leases 410, rejected completions
// 409, and an idle coordinator returns 204 on acquire.
func TestHTTPErrorPaths(t *testing.T) {
	clock := newFakeClock()
	coord := NewCoordinator(Config{LeaseJobs: 2, LeaseTTL: time.Minute, Clock: clock.Now})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	post := func(path, body string) *http.Response {
		t.Helper()
		res, err := http.Post(srv.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		res.Body.Close()
		return res
	}

	if res := post("/v1/dist/lease", `{"worker_id":"w"}`); res.StatusCode != http.StatusNoContent {
		t.Fatalf("idle acquire status = %d, want 204", res.StatusCode)
	}
	if res := post("/v1/dist/campaigns", `{"spec":{"steps":-5}}`); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec status = %d, want 400", res.StatusCode)
	}
	if res := post("/v1/dist/campaigns", `{"spec":{"steps":50,"attacks":["dos"]},"bogus":1}`); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field status = %d, want 400", res.StatusCode)
	}
	if res := post("/v1/dist/lease", `{"worker_id":"has space"}`); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad worker id status = %d, want 400", res.StatusCode)
	}
	if res := post("/v1/dist/lease/renew", `{"lease_id":"nope","worker_id":"w"}`); res.StatusCode != http.StatusGone {
		t.Fatalf("unknown lease renew status = %d, want 410", res.StatusCode)
	}
	if res := post("/v1/dist/lease/complete", `{"lease_id":"nope","worker_id":"w","partial":{}}`); res.StatusCode != http.StatusConflict {
		t.Fatalf("unknown lease complete status = %d, want 409", res.StatusCode)
	}
	res, err := http.Get(srv.URL + "/v1/dist/campaigns/d999999")
	if err != nil {
		t.Fatalf("GET status: %v", err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign status = %d, want 404", res.StatusCode)
	}
}
