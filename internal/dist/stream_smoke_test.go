package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"safesense/internal/campaign"
	"safesense/internal/obs/stream"
)

// TestStreamSmoke is the CI live-streaming gate (`make stream-smoke`):
// a coordinator and two pull workers shard a 64-job campaign while an
// SSE client follows /v1/dist/campaigns/{id}/stream. Workers report
// mid-lease progress every few milliseconds, so the stream must carry
// monotone progress counters, valid incremental partials, and lease
// transitions before the terminal event — whose embedded aggregate must
// be byte-identical to the single-node oracle.
func TestStreamSmoke(t *testing.T) {
	coord := NewCoordinator(Config{
		LeaseJobs: 8,
		LeaseTTL:  time.Minute,
		Clock:     newFakeClock().Now,
		Streams:   stream.NewHub(4096),
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	spec := testSpec("stream-smoke")
	spec.Attacks = []string{"dos"}
	spec.Onsets = []int{10, 20, 30, 40}
	spec.Replicates = 16 // 4 grid points x 16 seeds = 64 jobs

	body, err := json.Marshal(SubmitRequest{Spec: spec})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	res, err := http.Post(srv.URL+"/v1/dist/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(res.Body).Decode(&sub); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	res.Body.Close()

	// Attach the SSE follower before any worker starts: with full-ring
	// replay it would catch up anyway, but this proves the live path.
	sres, err := http.Get(srv.URL + "/v1/dist/campaigns/" + sub.ID + "/stream")
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer sres.Body.Close()
	if ct := sres.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w, err := NewWorker(WorkerConfig{
			Coordinator:      srv.URL,
			ID:               fmt.Sprintf("stream%d", i),
			Jobs:             2,
			PollInterval:     5 * time.Millisecond,
			ProgressInterval: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("NewWorker: %v", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx)
		}()
	}

	var (
		dec       = stream.NewDecoder(sres.Body)
		lastDone  = -1
		progress  int
		partials  int
		leases    int
		doneFrame []byte
	)
	for doneFrame == nil {
		fr, err := dec.Next()
		if err != nil {
			t.Fatalf("decoding frame after %d progress/%d partial/%d lease: %v",
				progress, partials, leases, err)
		}
		switch fr.Event {
		case streamTypeProgress:
			var p streamProgress
			if err := json.Unmarshal(fr.Data, &p); err != nil {
				t.Fatalf("progress payload: %v", err)
			}
			if p.Campaign != sub.ID || p.Jobs != sub.Jobs {
				t.Fatalf("progress = %+v, want campaign %s over %d jobs", p, sub.ID, sub.Jobs)
			}
			// The live count folds completed leases with in-flight
			// progress; neither ever runs backwards in a healthy run.
			if p.Done < lastDone {
				t.Fatalf("progress went backwards: %d after %d", p.Done, lastDone)
			}
			lastDone = p.Done
			progress++
		case streamTypePartial:
			var part campaign.Partial
			if err := json.Unmarshal(fr.Data, &part); err != nil {
				t.Fatalf("partial payload: %v", err)
			}
			if err := part.Validate(); err != nil {
				t.Fatalf("invalid streamed partial: %v", err)
			}
			partials++
		case streamTypeLease:
			leases++
		case streamTypeDone:
			doneFrame = fr.Data
		}
	}
	cancel()
	wg.Wait()

	if progress < 2 || partials < 1 || leases < sub.Leases {
		t.Fatalf("stream carried %d progress / %d partial / %d lease frames over %d leases",
			progress, partials, leases, sub.Leases)
	}

	var env struct {
		Aggregate json.RawMessage `json:"aggregate"`
	}
	if err := json.Unmarshal(doneFrame, &env); err != nil {
		t.Fatalf("done payload: %v", err)
	}
	if want := oracleAggregate(t, spec); !bytes.Equal(env.Aggregate, want) {
		t.Fatalf("streamed aggregate diverges from single-node oracle\n got: %s\nwant: %s",
			env.Aggregate, want)
	}

	// The fleet view saw both workers deliver.
	fres, err := http.Get(srv.URL + "/v1/fleet")
	if err != nil {
		t.Fatalf("GET fleet: %v", err)
	}
	var fleet FleetStatus
	err = json.NewDecoder(fres.Body).Decode(&fleet)
	fres.Body.Close()
	if err != nil {
		t.Fatalf("decode fleet: %v", err)
	}
	delivered := 0
	for _, w := range fleet.Workers {
		if w.LeasesDone > 0 {
			delivered++
		}
	}
	if delivered < 2 {
		t.Fatalf("fleet shows %d delivering worker(s): %+v", delivered, fleet.Workers)
	}
	if fleet.StreamPublished == 0 {
		t.Fatal("fleet reports zero stream events after a streamed campaign")
	}
	t.Logf("stream smoke: %d progress / %d partial / %d lease frames, %d workers, aggregate matches oracle",
		progress, partials, leases, delivered)
}
