package dist

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"safesense/internal/campaign"
	"safesense/internal/obs/forensic"
	"safesense/internal/obs/stream"
	obstrace "safesense/internal/obs/trace"
)

// wallClock is the package's injected time source (the determinism
// analyzer's approved seam). The coordinator reads time only through
// Config.Clock — and only to decide lease expiry and report elapsed
// wall time, never to order lease grants.
var wallClock = time.Now

// Config tunes the coordinator.
type Config struct {
	// LeaseJobs is the default shard size in jobs (zero means 256).
	LeaseJobs int
	// LeaseTTL is how long a granted lease lives without renewal (zero
	// means 60s).
	LeaseTTL time.Duration
	// MaxJobs rejects specs that expand beyond this many runs (zero
	// means 10 million — distributed sweeps are the big-grid path).
	MaxJobs int
	// MaxCampaigns bounds the in-memory distributed-campaign store
	// (zero means 16). Submissions evict the oldest finished campaign
	// when full and are rejected when every stored campaign still runs.
	MaxCampaigns int
	// Clock is the injected time source (nil means the wall clock).
	Clock func() time.Time
	// Log receives lease-lifecycle records (nil discards).
	Log *slog.Logger
	// Traces is the span store campaign trace roots are minted from
	// (nil means trace.Default()). Worker span batches shipped with lease
	// completions are imported here, stitching the cross-node trace tree.
	Traces *obstrace.Store
	// Forensic is the store worker-shipped anomaly captures merge into
	// (nil discards captures). Merging is idempotent by content hash, so
	// re-leased shards and resubmitted sweeps cannot double-store.
	Forensic *forensic.Store
	// Streams is the broadcast hub live campaign events are published
	// to, one topic per campaign ID (nil disables streaming; every
	// publish is non-blocking, so a slow or absent subscriber never
	// stalls lease traffic).
	Streams *stream.Hub
}

func (c Config) withDefaults() Config {
	if c.LeaseJobs == 0 {
		c.LeaseJobs = 256
	}
	if c.LeaseTTL == 0 {
		c.LeaseTTL = 60 * time.Second
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = 10_000_000
	}
	if c.MaxCampaigns == 0 {
		c.MaxCampaigns = 16
	}
	if c.Clock == nil {
		c.Clock = wallClock
	}
	if c.Log == nil {
		c.Log = slog.New(discardHandler{})
	}
	if c.Traces == nil {
		c.Traces = obstrace.Default()
	}
	return c
}

// discardHandler is a no-op slog.Handler (slog.DiscardHandler arrives
// in go1.24; this keeps the floor at the module's current toolchain).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Campaign lifecycle states.
const (
	StatusRunning = "running"
	StatusDone    = "done"
)

// shard is one contiguous job-index range of a campaign's grid and the
// unit of leasing.
type shard struct {
	start, end int // [start, end)

	completed bool
	partial   campaign.Partial

	// holder state; meaningful only while !completed.
	worker  string
	leaseID string
	expires time.Time
	grants  int // times granted (re-grants after expiry increment this)

	// live view reported mid-lease by the current holder. Kept apart
	// from the completed-lease merge: the final aggregate derives only
	// from completed partials, so a lost or duplicated progress post
	// can never perturb byte-identity with the single-node fold.
	liveDone    int
	livePartial campaign.Partial
}

// workerProgress tracks one worker's contribution to a campaign.
type workerProgress struct {
	jobsDone   int
	leasesDone int
	firstSeen  time.Time
	lastSeen   time.Time
}

// dcampaign is one stored distributed campaign.
type dcampaign struct {
	id        string
	spec      campaign.Spec
	traceID   string
	span      *obstrace.Span // root span, ended when the campaign closes
	jobs      int
	leaseJobs int
	shards    []*shard

	doneShards int
	doneJobs   int
	merged     campaign.Partial
	workers    map[string]*workerProgress
	events     []Event
	captures   int // forensic captures newly stored for this campaign

	createdAt time.Time
	status    string
	summary   *campaign.Summary
}

// maxCampaignEvents bounds a campaign's forwarded-event log.
const maxCampaignEvents = 256

// leaseRef resolves a lease token to its shard, even after expiry —
// late completions carry deterministic data and stay acceptable while
// the shard is open.
type leaseRef struct {
	campaign *dcampaign
	shard    int
}

// Coordinator owns the distributed-campaign store and lease table. All
// methods are safe for concurrent use.
type Coordinator struct {
	cfg Config

	mu        sync.Mutex
	campaigns map[string]*dcampaign
	order     []string // submission order, for lease priority and eviction
	leases    map[string]*leaseRef
	nextID    int
	nextLease int

	checkpoint io.Writer
}

// NewCoordinator builds a coordinator.
func NewCoordinator(cfg Config) *Coordinator {
	return &Coordinator{
		cfg:       cfg.withDefaults(),
		campaigns: make(map[string]*dcampaign),
		leases:    make(map[string]*leaseRef),
	}
}

// AttachCheckpoint directs the JSONL checkpoint log to w (typically an
// O_APPEND file). Call after Restore so replayed records are not
// re-written. Passing nil disables checkpointing.
func (c *Coordinator) AttachCheckpoint(w io.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.checkpoint = w
}

// Submit registers a campaign for distributed execution, splitting its
// grid into ceil(jobs/leaseJobs) contiguous shards. traceID labels the
// campaign's trace root ("" mints a fresh ID).
func (c *Coordinator) Submit(req SubmitRequest, traceID string) (SubmitResponse, error) {
	jobs, err := req.Spec.NumJobs()
	if err != nil {
		return SubmitResponse{}, err
	}
	if jobs > c.cfg.MaxJobs {
		return SubmitResponse{}, fmt.Errorf("dist: campaign expands to %d jobs, coordinator cap is %d", jobs, c.cfg.MaxJobs)
	}
	leaseJobs := req.LeaseJobs
	if leaseJobs <= 0 {
		leaseJobs = c.cfg.LeaseJobs
	}
	if leaseJobs > MaxLeaseJobs {
		leaseJobs = MaxLeaseJobs
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.evictLocked() {
		return SubmitResponse{}, fmt.Errorf("dist: campaign store full (%d running)", c.cfg.MaxCampaigns)
	}
	c.nextID++
	_, span := c.cfg.Traces.Root(context.Background(), "dist.campaign", traceID)
	d := &dcampaign{
		id:        fmt.Sprintf("d%06d", c.nextID),
		spec:      req.Spec,
		traceID:   span.TraceID(),
		span:      span,
		jobs:      jobs,
		leaseJobs: leaseJobs,
		shards:    makeShards(jobs, leaseJobs),
		workers:   make(map[string]*workerProgress),
		createdAt: c.cfg.Clock(),
		status:    StatusRunning,
	}
	if span.Sampled() {
		span.SetAttr("campaign_id", d.id)
		span.SetAttrInt("jobs", int64(jobs))
		span.SetAttrInt("leases", int64(len(d.shards)))
	}
	c.campaigns[d.id] = d
	c.order = append(c.order, d.id)
	c.checkpointLocked(checkpointRecord{Kind: recordCampaign, Campaign: &CampaignRecord{
		ID: d.id, Spec: d.spec, Jobs: d.jobs, LeaseJobs: d.leaseJobs, TraceID: d.traceID,
	}})
	metricCampaignsActive.With().Add(1)
	c.cfg.Log.Info("dist campaign submitted",
		"id", d.id, "jobs", jobs, "leases", len(d.shards), "lease_jobs", leaseJobs)
	c.publishProgressLocked(d)
	if jobs == 0 {
		c.closeCampaignLocked(d)
	}
	return SubmitResponse{ID: d.id, Jobs: jobs, Leases: len(d.shards), URL: "/v1/dist/campaigns/" + d.id}, nil
}

// makeShards partitions [0, jobs) into contiguous leaseJobs-sized ranges.
func makeShards(jobs, leaseJobs int) []*shard {
	var out []*shard
	for start := 0; start < jobs; start += leaseJobs {
		end := start + leaseJobs
		if end > jobs {
			end = jobs
		}
		out = append(out, &shard{start: start, end: end})
	}
	return out
}

// evictLocked makes room for one more campaign. Callers hold c.mu.
func (c *Coordinator) evictLocked() bool {
	if len(c.campaigns) < c.cfg.MaxCampaigns {
		return true
	}
	for i, id := range c.order {
		if d := c.campaigns[id]; d != nil && d.status != StatusRunning {
			c.dropLeasesLocked(d)
			delete(c.campaigns, id)
			c.order = append(c.order[:i], c.order[i+1:]...)
			return true
		}
	}
	return false
}

// dropLeasesLocked removes a campaign's tokens from the lease table.
func (c *Coordinator) dropLeasesLocked(d *dcampaign) {
	for id, ref := range c.leases {
		if ref.campaign == d {
			delete(c.leases, id)
		}
	}
}

// Acquire grants the next open lease to worker. Selection is
// deterministic in the campaign/shard structure — oldest campaign
// first, lowest shard index first — with the clock consulted only to
// decide whether a held lease has expired. ok is false when no work is
// available (all shards completed or held by live leases).
func (c *Coordinator) Acquire(workerID string) (AcquireResponse, bool) {
	now := c.cfg.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.order {
		d := c.campaigns[id]
		if d == nil || d.status != StatusRunning {
			continue
		}
		for i, sh := range d.shards {
			if sh.completed {
				continue
			}
			if sh.worker != "" && now.Before(sh.expires) {
				continue // held and live
			}
			if sh.worker != "" {
				// Expired: reclaim before re-granting. The dead holder's
				// live view is dropped with the lease — the replacement
				// worker re-reports from zero.
				metricLeasesExpired.With().Inc()
				c.cfg.Log.Warn("dist lease expired",
					"campaign", d.id, "shard", i, "worker", sh.worker, "lease", sh.leaseID)
				c.publishLeaseLocked(d, i, sh, leaseExpired)
				sh.liveDone = 0
				sh.livePartial = campaign.Partial{}
			}
			c.nextLease++
			sh.worker = workerID
			sh.leaseID = fmt.Sprintf("%s.%d.%d", d.id, i, c.nextLease)
			sh.expires = now.Add(c.cfg.LeaseTTL)
			sh.grants++
			c.leases[sh.leaseID] = &leaseRef{campaign: d, shard: i}
			c.touchWorkerLocked(d, workerID, now)
			metricLeasesGranted.With().Inc()
			c.cfg.Log.Info("dist lease granted",
				"campaign", d.id, "shard", i, "worker", workerID,
				"start", sh.start, "end", sh.end, "grant", sh.grants)
			c.publishLeaseLocked(d, i, sh, leaseGranted)
			return AcquireResponse{
				LeaseID:    sh.leaseID,
				Campaign:   d.id,
				Shard:      i,
				Start:      sh.start,
				End:        sh.end,
				Spec:       d.spec,
				TraceID:    d.traceID,
				TTLSeconds: c.cfg.LeaseTTL.Seconds(),
			}, true
		}
	}
	return AcquireResponse{}, false
}

// Renew extends a lease the worker still holds.
func (c *Coordinator) Renew(req RenewRequest) (RenewResponse, error) {
	now := c.cfg.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	ref := c.leases[req.LeaseID]
	if ref == nil {
		return RenewResponse{}, fmt.Errorf("dist: unknown lease %q", req.LeaseID)
	}
	sh := ref.campaign.shards[ref.shard]
	if sh.completed {
		return RenewResponse{}, fmt.Errorf("dist: lease %q already completed", req.LeaseID)
	}
	if sh.leaseID != req.LeaseID || sh.worker != req.WorkerID {
		return RenewResponse{}, fmt.Errorf("dist: lease %q was reassigned", req.LeaseID)
	}
	sh.expires = now.Add(c.cfg.LeaseTTL)
	c.touchWorkerLocked(ref.campaign, req.WorkerID, now)
	metricLeasesRenewed.With().Inc()
	return RenewResponse{TTLSeconds: c.cfg.LeaseTTL.Seconds()}, nil
}

// Complete records a finished shard. The partial must cover exactly the
// lease's job range; completion is idempotent (a duplicate for a closed
// shard is acknowledged and discarded) and holder-agnostic (a stale
// holder's deterministic result is as good as the current holder's).
func (c *Coordinator) Complete(req CompleteRequest) (CompleteResponse, error) {
	now := c.cfg.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	ref := c.leases[req.LeaseID]
	if ref == nil {
		return CompleteResponse{}, fmt.Errorf("dist: unknown lease %q", req.LeaseID)
	}
	d := ref.campaign
	sh := d.shards[ref.shard]
	if sh.completed {
		return CompleteResponse{Duplicate: true, CampaignDone: d.status == StatusDone}, nil
	}
	if got, want := req.Partial.Jobs, sh.end-sh.start; got != want {
		return CompleteResponse{}, fmt.Errorf("dist: partial covers %d jobs, lease %q spans %d", got, req.LeaseID, want)
	}
	if err := req.Partial.SampleRange(sh.start, sh.end); err != nil {
		return CompleteResponse{}, err
	}

	sh.completed = true
	sh.partial = req.Partial
	sh.worker = req.WorkerID // completed-by, for the lease event below
	sh.liveDone = 0
	sh.livePartial = campaign.Partial{}
	d.doneShards++
	d.doneJobs += req.Partial.Jobs
	d.merged = d.merged.Merge(req.Partial)
	wp := c.touchWorkerLocked(d, req.WorkerID, now)
	wp.jobsDone += req.Partial.Jobs
	wp.leasesDone++
	c.appendEventsLocked(d, req.Events)
	c.mergeCapturesLocked(d, req.Captures)
	if len(req.Spans) > 0 {
		c.cfg.Traces.Import(req.Spans)
	}
	c.publishLeaseLocked(d, ref.shard, sh, leaseCompleted)
	sh.worker = ""
	c.publishProgressLocked(d)
	c.checkpointLocked(checkpointRecord{Kind: recordLease, Lease: &LeaseRecord{
		Campaign: d.id, Shard: ref.shard, Start: sh.start, End: sh.end,
		Worker: req.WorkerID, Partial: req.Partial,
	}})
	metricLeasesCompleted.With().Inc()
	metricLeaseJobsDone.With().Add(float64(req.Partial.Jobs))
	c.cfg.Log.Info("dist lease completed",
		"campaign", d.id, "shard", ref.shard, "worker", req.WorkerID,
		"jobs", req.Partial.Jobs, "done_shards", d.doneShards, "shards", len(d.shards))
	done := d.doneShards == len(d.shards)
	if done {
		c.closeCampaignLocked(d)
	}
	return CompleteResponse{CampaignDone: done}, nil
}

// closeCampaignLocked finalizes a fully-completed campaign: the merged
// partial becomes the summary aggregate. Callers hold c.mu.
func (c *Coordinator) closeCampaignLocked(d *dcampaign) {
	d.status = StatusDone
	workers := 0
	for _, wp := range d.workers {
		if wp.leasesDone > 0 {
			workers++
		}
	}
	elapsed := c.cfg.Clock().Sub(d.createdAt)
	sum := &campaign.Summary{
		Name:           d.spec.Name,
		Spec:           d.spec,
		Workers:        workers,
		Aggregate:      d.merged.Finalize(),
		ElapsedSeconds: elapsed.Seconds(),
	}
	if elapsed > 0 {
		sum.RunsPerSec = float64(d.jobs) / elapsed.Seconds()
	}
	d.summary = sum
	if d.span != nil {
		if d.span.Sampled() {
			d.span.SetAttrInt("done_jobs", int64(d.doneJobs))
		}
		d.span.End()
	}
	metricCampaignsActive.With().Add(-1)
	c.cfg.Log.Info("dist campaign done",
		"id", d.id, "jobs", d.jobs, "workers", workers, "elapsed_seconds", elapsed.Seconds())
	c.publishLocked(d.id, streamTypeDone, streamDone{
		Campaign:       d.id,
		Jobs:           d.jobs,
		ElapsedSeconds: sum.ElapsedSeconds,
		Aggregate:      sum.Aggregate,
	})
}

// appendEventsLocked forwards a batch of worker flight events into the
// campaign's bounded event log and onto the stream. Callers hold c.mu.
func (c *Coordinator) appendEventsLocked(d *dcampaign, evs []Event) {
	for _, ev := range evs {
		if len(d.events) < maxCampaignEvents {
			d.events = append(d.events, ev)
		}
		c.publishLocked(d.id, streamTypeFlight, ev)
	}
}

// mergeCapturesLocked persists a completion's forensic captures,
// relabeled with the coordinator's campaign ID. The store dedups by
// content hash — and the hash excludes campaign metadata — so a shard
// completed twice (re-lease, retry) or the same sweep resubmitted under
// a new ID stores each anomaly exactly once. Callers hold c.mu.
func (c *Coordinator) mergeCapturesLocked(d *dcampaign, captures []forensic.Capture) {
	if c.cfg.Forensic == nil {
		return
	}
	for _, fc := range captures {
		fc.Campaign = d.id
		hash, stored, err := c.cfg.Forensic.Put(fc)
		if err != nil {
			c.cfg.Log.Warn("dist capture rejected", "campaign", d.id, "err", err)
			continue
		}
		if stored {
			d.captures++
			c.cfg.Log.Info("dist capture stored",
				"campaign", d.id, "job", fc.JobIndex, "hash", hash, "kinds", fc.Kinds)
		}
	}
}

// touchWorkerLocked bumps a worker's last-seen time. Callers hold c.mu.
func (c *Coordinator) touchWorkerLocked(d *dcampaign, workerID string, now time.Time) *workerProgress {
	wp := d.workers[workerID]
	if wp == nil {
		wp = &workerProgress{firstSeen: now}
		d.workers[workerID] = wp
	}
	wp.lastSeen = now
	return wp
}

// WorkerStatus is one worker's per-campaign progress row.
type WorkerStatus struct {
	ID         string    `json:"id"`
	JobsDone   int       `json:"jobs_done"`
	LeasesDone int       `json:"leases_done"`
	LastSeen   time.Time `json:"last_seen"`
}

// LeaseStatus summarizes one shard of the lease table.
type LeaseStatus struct {
	Shard     int    `json:"shard"`
	Start     int    `json:"start"`
	End       int    `json:"end"`
	Completed bool   `json:"completed"`
	Worker    string `json:"worker,omitempty"`
	Grants    int    `json:"grants"`
}

// Status is a distributed campaign's progress report.
type Status struct {
	ID             string            `json:"id"`
	TraceID        string            `json:"trace_id,omitempty"`
	Status         string            `json:"status"`
	Jobs           int               `json:"jobs"`
	DoneJobs       int               `json:"done_jobs"`
	Leases         int               `json:"leases"`
	DoneLeases     int               `json:"done_leases"`
	ActiveLeases   int               `json:"active_leases"`
	Workers        []WorkerStatus    `json:"workers,omitempty"`
	LeaseTable     []LeaseStatus     `json:"lease_table,omitempty"`
	Events         []Event           `json:"events,omitempty"`
	Captures       int               `json:"captures,omitempty"`
	ElapsedSeconds float64           `json:"elapsed_seconds"`
	Summary        *campaign.Summary `json:"summary,omitempty"`
}

// CampaignStatus reports one campaign ("" ok=false when unknown).
func (c *Coordinator) CampaignStatus(id string) (Status, bool) {
	now := c.cfg.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.campaigns[id]
	if d == nil {
		return Status{}, false
	}
	st := Status{
		ID:         d.id,
		TraceID:    d.traceID,
		Status:     d.status,
		Jobs:       d.jobs,
		DoneJobs:   d.doneJobs,
		Leases:     len(d.shards),
		DoneLeases: d.doneShards,
		Events:     append([]Event(nil), d.events...),
		Captures:   d.captures,
		Summary:    d.summary,
	}
	if d.summary != nil {
		st.ElapsedSeconds = d.summary.ElapsedSeconds
	} else {
		st.ElapsedSeconds = now.Sub(d.createdAt).Seconds()
	}
	for i, sh := range d.shards {
		row := LeaseStatus{Shard: i, Start: sh.start, End: sh.end, Completed: sh.completed, Grants: sh.grants}
		if !sh.completed && sh.worker != "" && now.Before(sh.expires) {
			row.Worker = sh.worker
			st.ActiveLeases++
		}
		st.LeaseTable = append(st.LeaseTable, row)
	}
	var ids []string
	for id := range d.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, wid := range ids {
		wp := d.workers[wid]
		st.Workers = append(st.Workers, WorkerStatus{
			ID: wid, JobsDone: wp.jobsDone, LeasesDone: wp.leasesDone, LastSeen: wp.lastSeen,
		})
	}
	return st, true
}

// Campaigns lists stored campaign IDs in submission order.
func (c *Coordinator) Campaigns() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}
