package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"safesense/internal/campaign"
)

// fakeClock is a hand-advanced time source for lease-expiry tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

// testSpec expands to a small multi-attack grid (fast at 50 steps).
func testSpec(name string) campaign.Spec {
	return campaign.Spec{
		Name:    name,
		Steps:   50,
		Attacks: []string{campaign.AttackDoS, campaign.AttackDelay, campaign.AttackNone},
		Onsets:  []int{15, 30},
	}
}

// runShard computes a lease's honest completion payload.
func runShard(t *testing.T, lease AcquireResponse) CompleteRequest {
	t.Helper()
	jobs, err := lease.Spec.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	outcomes, err := campaign.RunJobs(context.Background(), jobs[lease.Start:lease.End], campaign.Options{Workers: 2})
	if err != nil {
		t.Fatalf("RunJobs: %v", err)
	}
	return CompleteRequest{
		LeaseID:  lease.LeaseID,
		WorkerID: "test-worker",
		Partial:  campaign.PartialOfOutcomes(outcomes),
		Events:   OutcomeEvents(outcomes),
	}
}

// oracleAggregate runs the spec single-node and returns its aggregate
// as JSON — the differential oracle every distributed path must match.
func oracleAggregate(t *testing.T, spec campaign.Spec) []byte {
	t.Helper()
	sum, err := campaign.Run(context.Background(), spec, campaign.Options{Workers: 4})
	if err != nil {
		t.Fatalf("oracle Run: %v", err)
	}
	b, err := json.Marshal(sum.Aggregate)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

func TestCoordinatorLeaseLifecycle(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(Config{LeaseJobs: 2, LeaseTTL: time.Minute, Clock: clock.Now})
	spec := testSpec("lease-lifecycle")

	sub, err := c.Submit(SubmitRequest{Spec: spec}, "")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if sub.Jobs == 0 || sub.Leases != (sub.Jobs+1)/2 {
		t.Fatalf("submit reported %d jobs / %d leases", sub.Jobs, sub.Leases)
	}

	// Grants walk the shards in index order.
	first, ok := c.Acquire("w1")
	if !ok || first.Shard != 0 || first.Start != 0 {
		t.Fatalf("first grant = %+v, ok=%v", first, ok)
	}
	second, ok := c.Acquire("w2")
	if !ok || second.Shard != 1 {
		t.Fatalf("second grant = %+v, ok=%v", second, ok)
	}

	// A held lease renews; a live lease is not re-granted.
	if _, err := c.Renew(RenewRequest{LeaseID: first.LeaseID, WorkerID: "w1"}); err != nil {
		t.Fatalf("Renew: %v", err)
	}
	if _, err := c.Renew(RenewRequest{LeaseID: first.LeaseID, WorkerID: "w2"}); err == nil {
		t.Fatal("renew by a non-holder accepted")
	}

	// Expiry: advance past the TTL; the next acquire steals shard 0.
	clock.Advance(2 * time.Minute)
	stolen, ok := c.Acquire("w3")
	if !ok || stolen.Shard != 0 {
		t.Fatalf("post-expiry grant = %+v, ok=%v", stolen, ok)
	}
	if _, err := c.Renew(RenewRequest{LeaseID: first.LeaseID, WorkerID: "w1"}); err == nil {
		t.Fatal("renew of a reassigned lease accepted")
	}

	// The stale holder's completion is still accepted while the shard
	// is open (deterministic data), and the re-granted holder's copy
	// is acknowledged as a duplicate.
	done := runShard(t, first)
	done.WorkerID = "w1"
	if resp, err := c.Complete(done); err != nil || resp.Duplicate {
		t.Fatalf("stale-holder completion: %+v, %v", resp, err)
	}
	dup := runShard(t, stolen)
	dup.WorkerID = "w3"
	resp, err := c.Complete(dup)
	if err != nil || !resp.Duplicate {
		t.Fatalf("duplicate completion: %+v, %v", resp, err)
	}

	// A wrong-sized partial is rejected.
	bad := runShard(t, second)
	bad.Partial.Jobs++
	bad.Partial.Attacked = bad.Partial.Jobs
	if _, err := c.Complete(bad); err == nil {
		t.Fatal("wrong-sized partial accepted")
	}

	st, ok := c.CampaignStatus(sub.ID)
	if !ok || st.DoneLeases != 1 || st.Status != StatusRunning {
		t.Fatalf("status = %+v, ok=%v", st, ok)
	}
}

// TestCoordinatorDriveToOracle completes every lease by hand and checks
// the final summary aggregate against the single-node oracle,
// byte-for-byte.
func TestCoordinatorDriveToOracle(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(Config{LeaseJobs: 3, Clock: clock.Now})
	spec := testSpec("drive-to-oracle")
	sub, err := c.Submit(SubmitRequest{Spec: spec}, "")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for {
		lease, ok := c.Acquire("w1")
		if !ok {
			break
		}
		if _, err := c.Complete(runShard(t, lease)); err != nil {
			t.Fatalf("Complete: %v", err)
		}
	}
	st, ok := c.CampaignStatus(sub.ID)
	if !ok || st.Status != StatusDone || st.Summary == nil {
		t.Fatalf("campaign not done: %+v", st)
	}
	got, err := json.Marshal(st.Summary.Aggregate)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if want := oracleAggregate(t, spec); !bytes.Equal(got, want) {
		t.Fatalf("distributed aggregate diverges from oracle\n got: %s\nwant: %s", got, want)
	}
	if st.DoneJobs != st.Jobs || st.DoneLeases != st.Leases {
		t.Fatalf("progress incomplete at done: %+v", st)
	}
}

// TestCheckpointResume drives half the leases, replays the checkpoint
// into a fresh coordinator (a coordinator restart), finishes the rest
// there, and checks the summary still matches the oracle byte-for-byte
// — and that no completed shard was ever re-leased after the restore.
func TestCheckpointResume(t *testing.T) {
	clock := newFakeClock()
	var log bytes.Buffer
	c1 := NewCoordinator(Config{LeaseJobs: 2, Clock: clock.Now})
	c1.AttachCheckpoint(&log)
	spec := testSpec("checkpoint-resume")
	sub, err := c1.Submit(SubmitRequest{Spec: spec}, "")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	completed := 0
	target := (sub.Leases + 1) / 2
	for completed < target {
		lease, ok := c1.Acquire("w1")
		if !ok {
			t.Fatal("ran out of leases before the halfway mark")
		}
		if _, err := c1.Complete(runShard(t, lease)); err != nil {
			t.Fatalf("Complete: %v", err)
		}
		completed++
	}
	// One lease is granted but never completed — the in-flight shard a
	// dying coordinator would strand; resume must re-lease it.
	if _, ok := c1.Acquire("w1"); !ok {
		t.Fatal("no in-flight lease to strand")
	}

	c2 := NewCoordinator(Config{LeaseJobs: 2, Clock: clock.Now})
	if err := c2.Restore(bytes.NewReader(log.Bytes())); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	st, ok := c2.CampaignStatus(sub.ID)
	if !ok || st.DoneLeases != completed {
		t.Fatalf("restored status = %+v, ok=%v", st, ok)
	}

	seen := make(map[int]bool)
	for {
		lease, ok := c2.Acquire("w2")
		if !ok {
			break
		}
		if seen[lease.Shard] {
			t.Fatalf("shard %d leased twice after restore", lease.Shard)
		}
		seen[lease.Shard] = true
		if _, err := c2.Complete(runShard(t, lease)); err != nil {
			t.Fatalf("Complete: %v", err)
		}
	}
	if len(seen) != sub.Leases-completed {
		t.Fatalf("resume re-leased %d shards, want %d", len(seen), sub.Leases-completed)
	}
	st, _ = c2.CampaignStatus(sub.ID)
	if st.Status != StatusDone || st.Summary == nil {
		t.Fatalf("resumed campaign not done: %+v", st)
	}
	got, err := json.Marshal(st.Summary.Aggregate)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if want := oracleAggregate(t, spec); !bytes.Equal(got, want) {
		t.Fatalf("resumed aggregate diverges from oracle\n got: %s\nwant: %s", got, want)
	}
}

// TestRestoreRejectsCorruptLog exercises the checkpoint loader's
// validation: truncated JSON, unknown kinds, range mismatches.
func TestRestoreRejectsCorruptLog(t *testing.T) {
	spec := testSpec("corrupt")
	jobs, err := spec.NumJobs()
	if err != nil {
		t.Fatalf("NumJobs: %v", err)
	}
	campaignLine := func() string {
		rec := checkpointRecord{Kind: recordCampaign, Campaign: &CampaignRecord{
			ID: "d000001", Spec: spec, Jobs: jobs, LeaseJobs: 2,
		}}
		b, _ := json.Marshal(rec)
		return string(b)
	}
	cases := map[string]string{
		"bad json":          "{not json",
		"unknown kind":      `{"kind":"mystery"}`,
		"lease first":       `{"kind":"lease","lease":{"campaign":"d000001","shard":0,"start":0,"end":2,"partial":{"jobs":2,"worst_min_gap_m":1}}}`,
		"wrong jobs":        strings.Replace(campaignLine(), `"jobs":`+itoa(jobs), `"jobs":`+itoa(jobs+1), 1),
		"shard range":       campaignLine() + "\n" + `{"kind":"lease","lease":{"campaign":"d000001","shard":0,"start":0,"end":3,"partial":{"jobs":3,"worst_min_gap_m":1}}}`,
		"oversized partial": campaignLine() + "\n" + `{"kind":"lease","lease":{"campaign":"d000001","shard":0,"start":0,"end":2,"partial":{"jobs":5,"worst_min_gap_m":1}}}`,
	}
	for name, log := range cases {
		c := NewCoordinator(Config{Clock: newFakeClock().Now})
		if err := c.Restore(strings.NewReader(log)); err == nil {
			t.Errorf("%s: corrupt checkpoint accepted", name)
		}
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}
