package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"safesense/internal/campaign"
	"safesense/internal/obs/forensic"
	obstrace "safesense/internal/obs/trace"
	"safesense/internal/sim"
)

// forensicSmokeSpec is a sweep that reliably collides: undefended DoS
// holds the last pre-attack measurement, so the follower closes the gap
// shortly after onset regardless of seed.
func forensicSmokeSpec() campaign.Spec {
	off := false
	return campaign.Spec{
		Name:       "forensic-smoke",
		Steps:      200,
		BaseSeed:   7,
		Replicates: 8,
		Defended:   &off,
		Attacks:    []string{"dos"},
		Onsets:     []int{150},
	}
}

// TestForensicSmoke is the CI anomaly-forensics gate (`make
// forensic-smoke`): two workers shard a collision-bearing sweep; the
// coordinator must persist the worker-shipped captures in its forensic
// store (relabeled to its campaign ID), replaying a stored capture must
// reproduce the flight timeline bit-for-bit, resubmitting the same
// sweep must dedup to zero new captures, worker-side lease spans must
// be stitched into the coordinator's trace store, and the merged
// aggregate must stay byte-identical to the single-node oracle.
func TestForensicSmoke(t *testing.T) {
	fstore, err := forensic.Open(forensic.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("forensic.Open: %v", err)
	}
	defer fstore.Close()
	coordTraces := obstrace.NewStore(4096)

	coord := NewCoordinator(Config{
		LeaseJobs: 2,
		LeaseTTL:  time.Minute,
		Clock:     newFakeClock().Now,
		Traces:    coordTraces,
		Forensic:  fstore,
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	spec := forensicSmokeSpec()
	submit := func() Status {
		t.Helper()
		body, err := json.Marshal(SubmitRequest{Spec: spec})
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		res, err := http.Post(srv.URL+"/v1/dist/campaigns", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		var sub SubmitResponse
		err = json.NewDecoder(res.Body).Decode(&sub)
		res.Body.Close()
		if err != nil {
			t.Fatalf("decode submit: %v", err)
		}
		var st Status
		for poll := 0; ; poll++ {
			res, err := http.Get(srv.URL + "/v1/dist/campaigns/" + sub.ID)
			if err != nil {
				t.Fatalf("status: %v", err)
			}
			err = json.NewDecoder(res.Body).Decode(&st)
			res.Body.Close()
			if err != nil {
				t.Fatalf("decode status: %v", err)
			}
			if st.Status == StatusDone {
				return st
			}
			if poll > 24000 {
				t.Fatalf("campaign did not finish: %+v", st)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w, err := NewWorker(WorkerConfig{
			Coordinator:  srv.URL,
			ID:           fmt.Sprintf("forensic%d", i),
			Jobs:         2,
			PollInterval: 5 * time.Millisecond,
			Traces:       obstrace.NewStore(4096), // worker-local; spans only reach coordTraces via stitching
		})
		if err != nil {
			t.Fatalf("NewWorker: %v", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx)
		}()
	}

	st := submit()

	// The distributed aggregate must stay byte-identical to the
	// single-node oracle: captures and spans are sidecars, never inputs.
	if st.Summary == nil {
		t.Fatal("done campaign has no summary")
	}
	got, err := json.Marshal(st.Summary.Aggregate)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if want := oracleAggregate(t, spec); !bytes.Equal(got, want) {
		t.Fatalf("distributed aggregate diverges from single-node oracle\n got: %s\nwant: %s", got, want)
	}
	if st.Summary.Aggregate.Collisions == 0 {
		t.Fatal("undefended DoS sweep produced no collisions; the smoke needs them")
	}

	// Worker-shipped captures landed in the coordinator's store,
	// relabeled to the coordinator's campaign ID.
	if st.Captures == 0 {
		t.Fatal("campaign status reports zero stored captures")
	}
	metas, total := fstore.List(forensic.Query{Campaign: st.ID})
	if total == 0 || len(metas) == 0 {
		t.Fatalf("no captures listed for campaign %s (store has %d)", st.ID, fstore.Len())
	}
	if total != st.Captures {
		t.Errorf("store lists %d captures for %s, status says %d", total, st.ID, st.Captures)
	}
	collisions, _ := fstore.List(forensic.Query{Campaign: st.ID, Kind: sim.AnomalyCollision})
	if len(collisions) == 0 {
		t.Fatal("no collision-kind captures for a colliding sweep")
	}
	wantSpec := spec.Hash()
	for _, m := range metas {
		if m.SpecHash != wantSpec {
			t.Errorf("capture %s spec hash %q, want %q", m.Hash, m.SpecHash, wantSpec)
		}
	}

	// Replay a stored capture: the determinism invariant must hold
	// bit-for-bit through the worker -> wire -> store round trip.
	cap0, ok := fstore.Get(collisions[0].Hash)
	if !ok {
		t.Fatalf("Get(%s) missing", collisions[0].Hash)
	}
	rep, err := campaign.ReplayDiff(context.Background(), collisions[0].Hash, cap0)
	if err != nil {
		t.Fatalf("ReplayDiff: %v", err)
	}
	if !rep.Identical {
		t.Fatalf("stored capture did not replay identically: %+v", rep.Diffs)
	}
	if rep.CollisionAt < 0 {
		t.Error("replayed collision capture reported no collision")
	}

	// Cross-node trace stitching: the workers used their own span
	// stores, so lease spans can only appear under the coordinator's
	// campaign trace via the completion-time span batches.
	stitched := false
	for _, rec := range coordTraces.Trace(st.TraceID) {
		if rec.Name == "dist.lease" {
			stitched = true
			break
		}
	}
	if !stitched {
		t.Errorf("no worker lease span stitched into coordinator trace %s", st.TraceID)
	}

	// Resubmitting the same sweep federates onto the same content
	// addresses: the second campaign stores nothing new.
	before := fstore.Len()
	st2 := submit()
	if st2.ID == st.ID {
		t.Fatalf("resubmission reused campaign ID %s", st.ID)
	}
	if st2.Captures != 0 {
		t.Errorf("resubmitted sweep stored %d new captures, want 0 (dedup)", st2.Captures)
	}
	if after := fstore.Len(); after != before {
		t.Errorf("store grew %d -> %d on a resubmitted sweep", before, after)
	}

	cancel()
	wg.Wait()
	t.Logf("forensic smoke: %d captures (%d collisions) for %s, replay identical, resubmission deduped",
		st.Captures, len(collisions), st.ID)
}
