package vehicle

import (
	"math"
	"testing"
	"testing/quick"

	"safesense/internal/units"
)

func TestStepKinematics(t *testing.T) {
	s := State{Position: 10, Velocity: 5}
	next := s.Step(2, 1)
	if math.Abs(next.Velocity-7) > 1e-12 {
		t.Fatalf("velocity = %v, want 7", next.Velocity)
	}
	if math.Abs(next.Position-16) > 1e-12 { // 10 + 5 + 2/2
		t.Fatalf("position = %v, want 16", next.Position)
	}
	if next.Accel != 2 {
		t.Fatalf("accel = %v", next.Accel)
	}
}

func TestStepNoReverse(t *testing.T) {
	// Braking harder than needed to stop: the vehicle halts, never backs.
	s := State{Position: 0, Velocity: 1}
	next := s.Step(-2, 1)
	if next.Velocity != 0 {
		t.Fatalf("velocity = %v, want 0", next.Velocity)
	}
	// Stop occurs at t = 0.5 s, having covered 0.25 m.
	if math.Abs(next.Position-0.25) > 1e-12 {
		t.Fatalf("position = %v, want 0.25", next.Position)
	}
	// Position must never decrease under any braking input.
	f := func(v, a float64) bool {
		if math.IsNaN(v) || math.IsNaN(a) || math.Abs(v) > 1e6 || math.Abs(a) > 1e6 {
			return true
		}
		if v < 0 {
			v = -v
		}
		st := State{Position: 0, Velocity: v}
		return st.Step(a, 1).Position >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGapAndRelVelocity(t *testing.T) {
	l := State{Position: 100, Velocity: 29}
	f := State{Position: 0, Velocity: 30}
	if Gap(l, f) != 100 {
		t.Fatalf("Gap = %v", Gap(l, f))
	}
	if RelVelocity(l, f) != -1 {
		t.Fatalf("RelVelocity = %v", RelVelocity(l, f))
	}
}

func TestConstantAccelProfile(t *testing.T) {
	p := ConstantAccel{A: -0.1082}
	for _, k := range []int{0, 100, 299} {
		if p.Accel(k) != -0.1082 {
			t.Fatalf("Accel(%d) = %v", k, p.Accel(k))
		}
	}
	if p.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestPhasedProfile(t *testing.T) {
	p, err := NewPhasedProfile("fig3", Phase{Until: 150, A: -0.1082}, Phase{Until: 300, A: 0.012})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Accel(0); got != -0.1082 {
		t.Fatalf("Accel(0) = %v", got)
	}
	if got := p.Accel(150); got != -0.1082 {
		t.Fatalf("Accel(150) = %v", got)
	}
	if got := p.Accel(151); got != 0.012 {
		t.Fatalf("Accel(151) = %v", got)
	}
	if got := p.Accel(10_000); got != 0.012 {
		t.Fatalf("Accel beyond last phase = %v", got)
	}
	if p.Name() != "fig3" {
		t.Fatal("name")
	}
}

func TestPhasedProfileValidation(t *testing.T) {
	if _, err := NewPhasedProfile("empty"); err == nil {
		t.Fatal("empty profile should fail")
	}
	if _, err := NewPhasedProfile("bad", Phase{Until: 10, A: 1}, Phase{Until: 10, A: 2}); err == nil {
		t.Fatal("non-increasing phases should fail")
	}
}

func TestLeaderStopsUnderConstantDecel(t *testing.T) {
	// The Figure 2 leader: 65 mph, -0.1082 m/s^2 — standstill near
	// t = 29.06/0.1082 ≈ 268.5 s, and it must stay stopped.
	s := State{Position: 100, Velocity: units.MphToMps(65)}
	p := ConstantAccel{A: -0.1082}
	for k := 0; k < 300; k++ {
		s = s.Step(p.Accel(k), 1)
		if s.Velocity < 0 {
			t.Fatalf("negative velocity at %d", k)
		}
	}
	if s.Velocity != 0 {
		t.Fatalf("leader still moving at 300 s: %v m/s", s.Velocity)
	}
}

func TestIDMFreeRoad(t *testing.T) {
	m := DefaultIDM(30)
	// Huge gap, at desired speed: acceleration ~ 0.
	if a := m.Accel(30, 1e6, 0); math.Abs(a) > 0.01 {
		t.Fatalf("free-road accel at v0 = %v, want ~0", a)
	}
	// Below desired speed with huge gap: accelerate.
	if a := m.Accel(15, 1e6, 0); a <= 0 {
		t.Fatalf("free-road accel below v0 = %v, want > 0", a)
	}
}

func TestIDMBrakesWhenClosing(t *testing.T) {
	m := DefaultIDM(30)
	// Close gap, closing fast: strong braking.
	if a := m.Accel(30, 20, 5); a >= 0 {
		t.Fatalf("closing accel = %v, want < 0", a)
	}
	// Tiny/zero gap handled without blow-up.
	if a := m.Accel(30, 0, 5); !(a < 0) || math.IsInf(a, 0) || math.IsNaN(a) {
		t.Fatalf("zero-gap accel = %v", a)
	}
}

func TestIDMEquilibriumGapIncreasesWithSpeed(t *testing.T) {
	m := DefaultIDM(40)
	// Find equilibrium gap (a = 0, dv = 0) at two speeds by bisection.
	eq := func(v float64) float64 {
		lo, hi := m.MinGap, 1e4
		for i := 0; i < 100; i++ {
			mid := (lo + hi) / 2
			if m.Accel(v, mid, 0) < 0 {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo
	}
	if g10, g25 := eq(10), eq(25); g25 <= g10 {
		t.Fatalf("equilibrium gap must grow with speed: %v vs %v", g10, g25)
	}
}

func TestIDMNoCollisionInFollowing(t *testing.T) {
	// Pure-IDM follower behind a braking leader: gap stays positive.
	m := DefaultIDM(32)
	leader := State{Position: 60, Velocity: 25}
	follower := State{Position: 0, Velocity: 25}
	for k := 0; k < 600; k++ {
		la := -0.5
		if leader.Velocity <= 0 {
			la = 0
		}
		leader = leader.Step(la, 1)
		a := m.Accel(follower.Velocity, Gap(leader, follower), -RelVelocity(leader, follower))
		follower = follower.Step(a, 1)
		if Gap(leader, follower) <= 0 {
			t.Fatalf("collision at %d", k)
		}
	}
}
