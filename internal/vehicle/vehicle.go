// Package vehicle models the longitudinal dynamics of the car-following
// case study (Section 6.1): point-mass kinematics integrated per Eqns
// 15–17, the leader's acceleration profiles used in Figures 2 and 3, and
// the intelligent-driver model (IDM) the paper's car-following setup
// enhances with the hierarchical ACC controller.
package vehicle

import (
	"errors"
	"fmt"
	"math"
)

// State is a vehicle's longitudinal state.
type State struct {
	// Position is the along-road coordinate x in meters.
	Position float64
	// Velocity in m/s; never negative (vehicles do not reverse in this
	// model — braking saturates at standstill).
	Velocity float64
	// Accel is the acceleration applied over the last step, m/s^2.
	Accel float64
}

// Step integrates one sample of duration dt under acceleration a
// (paper Eqns 15 and 17):
//
//	v_{k+1} = v_k + a dt
//	x_{k+1} = x_k + v_k dt + a dt^2 / 2
//
// Velocity is clamped at zero: a braking command cannot make the vehicle
// reverse, and the position update uses the truncated kinematics in that
// case (stop partway through the step).
func (s State) Step(a, dt float64) State {
	v := s.Velocity + a*dt
	if v < 0 {
		// Time to standstill within this step.
		tStop := 0.0
		if a != 0 {
			tStop = -s.Velocity / a
		}
		return State{
			Position: s.Position + s.Velocity*tStop + a*tStop*tStop/2,
			Velocity: 0,
			Accel:    a,
		}
	}
	return State{
		Position: s.Position + s.Velocity*dt + a*dt*dt/2,
		Velocity: v,
		Accel:    a,
	}
}

// Gap returns the bumper distance from follower f to leader l (positive
// when the leader is ahead).
func Gap(l, f State) float64 { return l.Position - f.Position }

// RelVelocity returns the paper's Delta v = v_leader - v_follower
// (negative while the follower closes in).
func RelVelocity(l, f State) float64 { return l.Velocity - f.Velocity }

// Profile supplies the leader vehicle's acceleration at each step.
type Profile interface {
	// Accel returns the commanded acceleration at step k (m/s^2).
	Accel(k int) float64
	// Name identifies the profile in traces.
	Name() string
}

// ConstantAccel applies a fixed acceleration forever — the Figure 2
// leader decelerates at -0.1082 m/s^2.
type ConstantAccel struct{ A float64 }

// Accel implements Profile.
func (c ConstantAccel) Accel(int) float64 { return c.A }

// Name implements Profile.
func (c ConstantAccel) Name() string { return fmt.Sprintf("const(%.4g)", c.A) }

// Phase is one segment of a PhasedProfile.
type Phase struct {
	// Until is the last step (inclusive) this phase applies to.
	Until int
	// A is the acceleration during the phase.
	A float64
}

// PhasedProfile switches accelerations at fixed steps — the Figure 3
// leader decelerates at -0.1082 m/s^2 and then accelerates at
// +0.012 m/s^2. Steps beyond the last phase use the final phase's value.
type PhasedProfile struct {
	Phases []Phase
	Label  string
}

// NewPhasedProfile validates phase ordering.
func NewPhasedProfile(label string, phases ...Phase) (*PhasedProfile, error) {
	if len(phases) == 0 {
		return nil, errors.New("vehicle: empty profile")
	}
	for i := 1; i < len(phases); i++ {
		if phases[i].Until <= phases[i-1].Until {
			return nil, fmt.Errorf("vehicle: phase %d not after phase %d", i, i-1)
		}
	}
	return &PhasedProfile{Phases: phases, Label: label}, nil
}

// Accel implements Profile.
func (p *PhasedProfile) Accel(k int) float64 {
	for _, ph := range p.Phases {
		if k <= ph.Until {
			return ph.A
		}
	}
	return p.Phases[len(p.Phases)-1].A
}

// Name implements Profile.
func (p *PhasedProfile) Name() string { return p.Label }

// IDM is the intelligent-driver car-following model the paper's case study
// builds on (Treiber et al.). It maps the gap, own speed, and approach rate
// into an acceleration.
type IDM struct {
	// DesiredSpeed v0 (m/s).
	DesiredSpeed float64
	// TimeHeadway T (s).
	TimeHeadway float64
	// MaxAccel a (m/s^2).
	MaxAccel float64
	// ComfortDecel b (m/s^2, positive).
	ComfortDecel float64
	// MinGap s0 (m).
	MinGap float64
	// Exponent delta (dimensionless, typically 4).
	Exponent float64
}

// DefaultIDM returns standard highway IDM parameters.
func DefaultIDM(desiredSpeed float64) IDM {
	return IDM{
		DesiredSpeed: desiredSpeed,
		TimeHeadway:  1.5,
		MaxAccel:     1.4,
		ComfortDecel: 2.0,
		MinGap:       2.0,
		Exponent:     4,
	}
}

// Accel returns the IDM acceleration for own speed v, gap s to the leader,
// and approach rate dv = v - vLeader (positive while closing).
func (m IDM) Accel(v, s, dv float64) float64 {
	if s <= 0 {
		s = 1e-3 // collision regime: maximal braking below
	}
	sStar := m.MinGap + v*m.TimeHeadway + v*dv/(2*math.Sqrt(m.MaxAccel*m.ComfortDecel))
	if sStar < m.MinGap {
		sStar = m.MinGap
	}
	free := math.Pow(v/m.DesiredSpeed, m.Exponent)
	return m.MaxAccel * (1 - free - (sStar/s)*(sStar/s))
}
