// Package control provides the discrete-time linear-quadratic regulator
// synthesis used by the lateral (lane-keeping) extension — the paper's
// stated future work of adding lateral dynamics to the case study. Only
// dense iterations over internal/mat are used; dimensions stay tiny.
package control

import (
	"errors"
	"fmt"

	"safesense/internal/mat"
)

// DLQR solves the infinite-horizon discrete-time LQR problem for
//
//	x_{k+1} = A x_k + B u_k,  J = sum x'Qx + u'Ru,
//
// by iterating the Riccati difference equation to a fixed point:
//
//	P <- Q + A'PA - A'PB (R + B'PB)^-1 B'PA
//
// and returns the optimal gain K with u = -K x, plus the converged P.
// Q must be symmetric positive semidefinite and R symmetric positive
// definite (diagonal matrices are the usual choice here).
func DLQR(a, b, q, r *mat.Dense, maxIter int, tol float64) (k, p *mat.Dense, err error) {
	n, n2 := a.Dims()
	if n != n2 {
		return nil, nil, errors.New("control: A must be square")
	}
	bn, m := b.Dims()
	if bn != n {
		return nil, nil, fmt.Errorf("control: B has %d rows, want %d", bn, n)
	}
	if qr, qc := q.Dims(); qr != n || qc != n {
		return nil, nil, errors.New("control: Q dimension mismatch")
	}
	if rr, rc := r.Dims(); rr != m || rc != m {
		return nil, nil, errors.New("control: R dimension mismatch")
	}
	if !q.IsSymmetric(1e-9 * (1 + q.MaxAbs())) {
		return nil, nil, errors.New("control: Q must be symmetric")
	}
	if !r.IsSymmetric(1e-9 * (1 + r.MaxAbs())) {
		return nil, nil, errors.New("control: R must be symmetric")
	}
	if maxIter <= 0 {
		maxIter = 10000
	}
	if tol <= 0 {
		tol = 1e-12
	}
	at := a.T()
	bt := b.T()
	p = q.Clone()
	for iter := 0; iter < maxIter; iter++ {
		btp := bt.Mul(p)
		gram := r.Add(btp.Mul(b)) // R + B'PB
		gramInv, err := mat.Inverse(gram)
		if err != nil {
			return nil, nil, fmt.Errorf("control: R + B'PB singular: %w", err)
		}
		apb := at.Mul(p).Mul(b)
		next := q.Add(at.Mul(p).Mul(a)).Sub(apb.Mul(gramInv).Mul(btp.Mul(a)))
		// Symmetrize against round-off drift.
		next = next.Add(next.T()).Scale(0.5)
		if next.Sub(p).MaxAbs() <= tol*(1+p.MaxAbs()) {
			p = next
			kGain, err := gainFrom(p, a, b, r)
			if err != nil {
				return nil, nil, err
			}
			return kGain, p, nil
		}
		p = next
	}
	return nil, nil, errors.New("control: Riccati iteration did not converge (is (A,B) stabilizable?)")
}

func gainFrom(p, a, b, r *mat.Dense) (*mat.Dense, error) {
	bt := b.T()
	gram := r.Add(bt.Mul(p).Mul(b))
	gramInv, err := mat.Inverse(gram)
	if err != nil {
		return nil, err
	}
	return gramInv.Mul(bt).Mul(p).Mul(a), nil
}

// ClosedLoop returns A - B K, the regulated dynamics under u = -K x.
func ClosedLoop(a, b, k *mat.Dense) *mat.Dense {
	return a.Sub(b.Mul(k))
}
