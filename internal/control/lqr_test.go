package control

import (
	"math"
	"testing"

	"safesense/internal/mat"
)

func TestDLQRScalar(t *testing.T) {
	// x' = 2x + u, Q = 1, R = 1: scalar DARE p = 1 + 4p - 4p^2/(1+p)
	// => p^2 - 4p - 1 = 0 => p = 2 + sqrt(5).
	a := mat.NewDenseData(1, 1, []float64{2})
	b := mat.NewDenseData(1, 1, []float64{1})
	q := mat.Identity(1)
	r := mat.Identity(1)
	k, p, err := DLQR(a, b, q, r, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantP := 2 + math.Sqrt(5)
	if math.Abs(p.At(0, 0)-wantP) > 1e-9 {
		t.Fatalf("P = %v, want %v", p.At(0, 0), wantP)
	}
	// K = (R + B'PB)^-1 B'PA = 2p/(1+p).
	wantK := 2 * wantP / (1 + wantP)
	if math.Abs(k.At(0, 0)-wantK) > 1e-9 {
		t.Fatalf("K = %v, want %v", k.At(0, 0), wantK)
	}
	// Closed loop strictly stable.
	if cl := ClosedLoop(a, b, k); math.Abs(cl.At(0, 0)) >= 1 {
		t.Fatalf("closed loop = %v", cl.At(0, 0))
	}
}

func TestDLQRStabilizesDoubleIntegrator(t *testing.T) {
	dt := 0.1
	a := mat.NewDenseData(2, 2, []float64{1, dt, 0, 1})
	b := mat.NewDenseData(2, 1, []float64{dt * dt / 2, dt})
	q := mat.Diag([]float64{10, 1})
	r := mat.Identity(1)
	k, _, err := DLQR(a, b, q, r, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl := ClosedLoop(a, b, k)
	if rho := mat.SpectralRadius(cl, 0); rho >= 1-1e-9 {
		t.Fatalf("closed-loop spectral radius %v", rho)
	}
	// Regulation: from a perturbed state the closed loop returns to zero.
	x := []float64{5, -2}
	for i := 0; i < 400; i++ {
		x = cl.MulVec(x)
	}
	if math.Abs(x[0]) > 1e-6 || math.Abs(x[1]) > 1e-6 {
		t.Fatalf("state did not regulate: %v", x)
	}
}

func TestDLQRCostMonotoneInR(t *testing.T) {
	// Heavier control penalty must give a smaller gain magnitude.
	a := mat.NewDenseData(2, 2, []float64{1, 0.1, 0, 1})
	b := mat.NewDenseData(2, 1, []float64{0.005, 0.1})
	q := mat.Identity(2)
	kCheap, _, err := DLQR(a, b, q, mat.Identity(1).Scale(0.1), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	kPricey, _, err := DLQR(a, b, q, mat.Identity(1).Scale(10), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if kPricey.FrobeniusNorm() >= kCheap.FrobeniusNorm() {
		t.Fatalf("gain should shrink with R: %v vs %v",
			kPricey.FrobeniusNorm(), kCheap.FrobeniusNorm())
	}
}

func TestDLQRValidation(t *testing.T) {
	a := mat.Identity(2)
	b := mat.NewDenseData(2, 1, []float64{0, 1})
	q := mat.Identity(2)
	r := mat.Identity(1)
	if _, _, err := DLQR(mat.NewDense(2, 3), b, q, r, 0, 0); err == nil {
		t.Fatal("non-square A should fail")
	}
	if _, _, err := DLQR(a, mat.NewDense(3, 1), q, r, 0, 0); err == nil {
		t.Fatal("bad B should fail")
	}
	if _, _, err := DLQR(a, b, mat.Identity(3), r, 0, 0); err == nil {
		t.Fatal("bad Q should fail")
	}
	if _, _, err := DLQR(a, b, q, mat.Identity(2), 0, 0); err == nil {
		t.Fatal("bad R should fail")
	}
	nonSym := mat.NewDenseData(2, 2, []float64{1, 2, 3, 1})
	if _, _, err := DLQR(a, b, nonSym, r, 0, 0); err == nil {
		t.Fatal("non-symmetric Q should fail")
	}
}

func TestDLQRUnstabilizable(t *testing.T) {
	// Unstable mode with no control authority: iteration must not claim
	// convergence.
	a := mat.Diag([]float64{2, 0.5})
	b := mat.NewDenseData(2, 1, []float64{0, 1}) // only the stable mode
	q := mat.Identity(2)
	r := mat.Identity(1)
	if _, _, err := DLQR(a, b, q, r, 500, 0); err == nil {
		t.Fatal("unstabilizable pair should fail")
	}
}
