// Package attack implements the paper's two remote attacks on the active
// sensor: Denial of Service by a self-screening jammer (Section 4.1,
// Eqns 10–11) and delay-injection spoofing that replays a counterfeit
// reflection with extra physical delay. Attacks transform the radar
// front end's clean measurement stream exactly where the physical channel
// would be corrupted, upstream of the CRA detector.
package attack

import (
	"errors"
	"math"

	"safesense/internal/radar"
	"safesense/internal/units"
)

// Jammer models the self-screening jammer of Eqn 10. The paper's instance:
// Pj = 100 mW, Gj = 10 dBi, Bj = 155 MHz, Lj = 0.10 dB.
type Jammer struct {
	// PeakPowerW is Pj.
	PeakPowerW float64
	// AntennaGainDBi is Gj.
	AntennaGainDBi float64
	// BandwidthHz is Bj, the jammer's operating bandwidth.
	BandwidthHz float64
	// LossDB is Lj.
	LossDB float64
}

// PaperJammer returns the jammer parameter set of Section 6.2.
func PaperJammer() Jammer {
	return Jammer{
		PeakPowerW:     100e-3,
		AntennaGainDBi: 10,
		BandwidthHz:    155 * units.MHz,
		LossDB:         0.10,
	}
}

// Validate checks the jammer parameters.
func (j Jammer) Validate() error {
	if j.PeakPowerW <= 0 || j.BandwidthHz <= 0 {
		return errors.New("attack: jammer power and bandwidth must be positive")
	}
	return nil
}

// ReceivedPower returns P_jammer per Eqn 10: the jamming power collected by
// a victim radar with parameters p at distance d:
//
//	P_jammer = Pj Gj lambda^2 G B / ((4 pi)^2 d^2 Bj Lj)
func (j Jammer) ReceivedPower(p radar.Params, d float64) float64 {
	if d <= 0 {
		return math.Inf(1)
	}
	gj := units.DBToLinear(j.AntennaGainDBi)
	g := units.DBToLinear(p.AntennaGainDBi)
	lj := units.DBToLinear(j.LossDB)
	num := j.PeakPowerW * gj * p.WavelengthM * p.WavelengthM * g * p.OperatingBandwidthHz
	den := math.Pow(4*math.Pi, 2) * d * d * j.BandwidthHz * lj
	return num / den
}

// PowerRatio returns Ps / P_jammer per Eqn 11:
//
//	Ps / P_jammer = Pt sigma B Lj / (4 pi Pj Gj d^2 B Lj ...)
//
// evaluated as the ratio of the radar's target return (Eqn 9) to the
// jamming power (Eqn 10). The attack succeeds when the ratio is below 1.
func (j Jammer) PowerRatio(p radar.Params, d float64) float64 {
	ps := p.ReceivedPower(d, p.TargetRCS)
	pj := j.ReceivedPower(p, d)
	return ps / pj
}

// Succeeds reports whether the jammer overwhelms the target return at
// distance d (power ratio < 1, the paper's success condition).
func (j Jammer) Succeeds(p radar.Params, d float64) bool {
	return j.PowerRatio(p, d) < 1
}

// BurnThroughRange returns the distance below which the target return
// overcomes the jammer (power ratio >= 1), found by bisection over the
// radar's operating range. It returns 0 if the jammer wins everywhere in
// range, and MaxRangeM if the radar wins everywhere.
//
// Because the target return falls as 1/d^4 while self-screening jamming
// falls as 1/d^2, the ratio decreases with distance and the crossover is
// unique.
func (j Jammer) BurnThroughRange(p radar.Params) float64 {
	lo, hi := p.MinRangeM, p.MaxRangeM
	if j.PowerRatio(p, lo) < 1 {
		return 0
	}
	if j.PowerRatio(p, hi) >= 1 {
		return p.MaxRangeM
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if j.PowerRatio(p, mid) >= 1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
