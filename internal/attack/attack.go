package attack

import (
	"errors"
	"fmt"
	"math"

	"safesense/internal/noise"
	"safesense/internal/radar"
	"safesense/internal/units"
)

// Window is a closed attack interval [Start, End] in discrete steps,
// matching the paper's finite attack duration [k1, kn].
type Window struct {
	Start, End int
}

// Contains reports whether step k falls inside the window.
func (w Window) Contains(k int) bool { return k >= w.Start && k <= w.End }

// Validate checks the window is well formed.
func (w Window) Validate() error {
	if w.End < w.Start {
		return fmt.Errorf("attack: window end %d before start %d", w.End, w.Start)
	}
	return nil
}

// Attack corrupts the radar measurement stream the way a physical channel
// attack would: it observes the clean measurement and returns what the
// receiver actually reports under attack.
type Attack interface {
	// Active reports whether the attack is running at step k.
	Active(k int) bool
	// Corrupt transforms the clean measurement at step k. The clean
	// measurement carries the Challenge flag so the attack model can
	// honour the physics: a jammer emits regardless of challenges, and a
	// spoofer's hardware delay makes it emit into challenge silence too.
	Corrupt(k int, clean radar.Measurement) radar.Measurement
	// Name identifies the attack in traces and benchmark output.
	Name() string
}

// None is the no-attack baseline.
type None struct{}

// Active implements Attack.
func (None) Active(int) bool { return false }

// Corrupt implements Attack.
func (None) Corrupt(_ int, clean radar.Measurement) radar.Measurement { return clean }

// Name implements Attack.
func (None) Name() string { return "none" }

// DoS is the jamming attack: within the window the receiver is flooded
// with jammer energy, so reported distance and relative velocity are
// meaningless large values (the y^a = r ∈ R^p term of Eqn 4) and the
// receiver power is the jammer's, which also floods challenge instants —
// the signature CRA detects.
type DoS struct {
	Window Window
	Jammer Jammer
	// Radar supplies the victim's link-budget parameters for the received
	// jamming power.
	Radar radar.Params
	// CorruptionScale sets the magnitude of the garbage measurements the
	// saturated receiver reports; the paper's Figure 2a shows values up
	// to ~240 against a true range near 100 m. Zero means 240.
	CorruptionScale float64

	src *noise.Source
}

// NewDoS validates and builds a DoS attack drawing corruption values from
// src.
func NewDoS(w Window, j Jammer, p radar.Params, src *noise.Source) (*DoS, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if err := j.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, errors.New("attack: nil noise source")
	}
	return &DoS{Window: w, Jammer: j, Radar: p, CorruptionScale: 240, src: src}, nil
}

// Active implements Attack.
func (a *DoS) Active(k int) bool { return a.Window.Contains(k) }

// Name implements Attack.
func (a *DoS) Name() string { return "dos" }

// Corrupt implements Attack.
func (a *DoS) Corrupt(k int, clean radar.Measurement) radar.Measurement {
	if !a.Active(k) {
		return clean
	}
	// The jammer's energy reaches the receiver no matter what the radar
	// transmitted. Distance to the self-screening jammer is the true
	// target distance when available; during a challenge the clean
	// measurement carries no range, so use a nominal mid-range distance —
	// the detector only needs the power to be far above the floor.
	d := clean.Distance
	if d <= 0 {
		d = (a.Radar.MinRangeM + a.Radar.MaxRangeM) / 2
	}
	jam := a.Jammer.ReceivedPower(a.Radar, d)
	out := clean
	out.Power = clean.Power + jam
	// Saturated receiver: beat extraction locks onto jammer noise,
	// producing large erratic values.
	out.Distance = a.src.Uniform(0.5, 1) * a.CorruptionScale
	out.RelVelocity = a.src.Uniform(-1, 1) * a.CorruptionScale / 2
	return out
}

// DelayInjection is the spoofing attack: within the window the adversary
// replays a counterfeit reflection delayed by ExtraDelay seconds, which the
// FMCW receiver converts into a distance offset of c*ExtraDelay/2 meters
// (the paper uses +6 m). The spoofer's hardware needs a strictly positive
// processing time, so at a challenge instant — when the radar transmitted
// nothing — the spoofer is still emitting a counterfeit derived from the
// previous probe, which is exactly what the CRA detector catches.
type DelayInjection struct {
	Window Window
	// ExtraDelaySec is the injected two-way delay. The reported distance
	// grows by c*ExtraDelaySec/2.
	ExtraDelaySec float64
	// Radar supplies the victim parameters for the counterfeit power.
	Radar radar.Params
	// KnowsSchedule marks a "smart adversary" who tries to stay silent at
	// challenge instants. Per Section 5.2 the nonzero hardware delay
	// defeats this: the counterfeit of the previous probe still lands in
	// the challenge window, so detection is unaffected. Modelled as a
	// reduced — but still above-threshold — leak power.
	KnowsSchedule bool
}

// NewDelayInjection builds the spoofer with the paper's +6 m offset when
// extraMeters is 6.
func NewDelayInjection(w Window, extraMeters float64, p radar.Params) (*DelayInjection, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if extraMeters <= 0 {
		return nil, fmt.Errorf("attack: delay offset must be positive, got %v m", extraMeters)
	}
	return &DelayInjection{
		Window:        w,
		ExtraDelaySec: units.RoundTripDelay(extraMeters),
		Radar:         p,
	}, nil
}

// OffsetMeters returns the distance offset the injected delay produces.
func (a *DelayInjection) OffsetMeters() float64 {
	return units.DelayToDistance(a.ExtraDelaySec)
}

// Active implements Attack.
func (a *DelayInjection) Active(k int) bool { return a.Window.Contains(k) }

// Name implements Attack.
func (a *DelayInjection) Name() string { return "delay" }

// Corrupt implements Attack.
func (a *DelayInjection) Corrupt(k int, clean radar.Measurement) radar.Measurement {
	if !a.Active(k) {
		return clean
	}
	out := clean
	if clean.Challenge {
		// The radar transmitted nothing, but the spoofer's replay chain
		// (delayed copy of the previous probe) is still radiating. Its
		// energy reaches the victim over a one-way Friis link, orders of
		// magnitude above any passive reflection.
		leak := a.counterfeitPower((a.Radar.MinRangeM + a.Radar.MaxRangeM) / 2)
		if a.KnowsSchedule {
			leak /= 10 // partially suppressed, still far above the floor
		}
		out.Power = clean.Power + leak
		out.Distance = a.Radar.MaxRangeM + a.OffsetMeters()
		out.RelVelocity = 0
		return out
	}
	// Normal instants: the counterfeit mimics the true reflection with
	// extra delay, shifting the reported range.
	out.Distance = clean.Distance + a.OffsetMeters()
	return out
}

// counterfeitPower returns the power the victim receives from the spoofer's
// active transmitter at distance d: a one-way Friis link assuming the
// adversary radiates at the radar's own transmit power through a matched
// antenna — the "similar characteristics as the original reflected signal"
// hardware of Section 4.1.
func (a *DelayInjection) counterfeitPower(d float64) float64 {
	g := units.DBToLinear(a.Radar.AntennaGainDBi)
	lam := a.Radar.WavelengthM
	return a.Radar.TransmitPowerW * g * g * lam * lam /
		(math.Pow(4*math.Pi, 2) * d * d)
}
