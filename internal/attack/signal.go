package attack

import (
	"fmt"

	"safesense/internal/radar"
	"safesense/internal/units"
)

// Signal-level attack channel: the same adversaries expressed as transforms
// of the dechirped sweep the receiver digitizes, for use with
// radar.SignalFrontEnd. Both types also keep their measurement-level
// Corrupt implementations so the fast closed-form pipeline works unchanged.

var (
	_ radar.SweepCorruptor = (*DoS)(nil)
	_ radar.SweepCorruptor = (*DelayInjection)(nil)
)

// CorruptSweep implements radar.SweepCorruptor: within the attack window
// the jammer's Eqn 10 received power floods both sweep segments as
// broadband noise, regardless of whether the radar transmitted — which is
// exactly what blinds the beat extractor and what lights up a challenge
// instant.
func (a *DoS) CorruptSweep(k int, s radar.Sweep, challenge bool) radar.Sweep {
	if !a.Active(k) {
		return s
	}
	d := (a.Radar.MinRangeM + a.Radar.MaxRangeM) / 2
	jam := a.Jammer.ReceivedPower(a.Radar, d)
	return radar.AddNoiseSweep(s, jam, a.src)
}

// CorruptSweep implements radar.SweepCorruptor for the spoofer. During
// normal instants the true reflection is replaced by its frequency-shifted
// counterfeit: the injected round-trip delay tau maps to a beat shift
// df = tau * Bs / Ts on both slopes, which the receiver reads as
// +OffsetMeters of range with unchanged Doppler. At a challenge instant
// the radar transmitted nothing, but the spoofer's replay chain is still
// radiating a counterfeit tone (derived from the previous probe), which
// the CRA detector sees as energy on a supposedly quiet channel.
func (a *DelayInjection) CorruptSweep(k int, s radar.Sweep, challenge bool) radar.Sweep {
	if !a.Active(k) {
		return s
	}
	df := a.ExtraDelaySec * a.Radar.SweepBandwidthHz / a.Radar.SweepTimeSec
	if challenge {
		// Counterfeit of the previous probe: a tone at a mid-range beat
		// plus the injected shift, at the spoofer's one-way link power.
		fb, _ := a.Radar.BeatFrequencies((a.Radar.MinRangeM+a.Radar.MaxRangeM)/2, 0)
		leak := a.counterfeitPower((a.Radar.MinRangeM + a.Radar.MaxRangeM) / 2)
		if a.KnowsSchedule {
			leak /= 10
		}
		return radar.AddToneSweep(s, fb+df, leak)
	}
	return radar.ShiftSweep(s, df)
}

// BeatShiftHz returns the beat-frequency shift the configured extra delay
// produces on both FMCW slopes.
func (a *DelayInjection) BeatShiftHz() float64 {
	return a.ExtraDelaySec * a.Radar.SweepBandwidthHz / a.Radar.SweepTimeSec
}

// OffsetFromShift converts a beat shift back to meters for verification:
// d = c * Ts * df / (2 * Bs).
func OffsetFromShift(p radar.Params, df float64) float64 {
	return units.SpeedOfLight * p.SweepTimeSec * df / (2 * p.SweepBandwidthHz)
}

// FastAdversary is the adversary the paper's conclusion concedes defeats
// CRA: one "with adequate resources [to] sample the incoming signals from
// active sensors faster than the defender". It knows each challenge before
// it must respond and its hardware is fast enough to go silent within the
// same step, so challenge instants read clean while normal instants carry
// the spoofed offset — the detector never fires. It exists to reproduce
// the stated limitation (see the limitation tests and ablation A5), not to
// improve on it.
type FastAdversary struct {
	Window Window
	// OffsetM is the spoofed distance offset applied outside challenges.
	OffsetM float64
}

// NewFastAdversary validates and builds the CRA-evading spoofer.
func NewFastAdversary(w Window, offsetM float64) (*FastAdversary, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if offsetM <= 0 {
		return nil, fmt.Errorf("attack: offset must be positive, got %v m", offsetM)
	}
	return &FastAdversary{Window: w, OffsetM: offsetM}, nil
}

// Active implements Attack.
func (a *FastAdversary) Active(k int) bool { return a.Window.Contains(k) }

// Name implements Attack.
func (a *FastAdversary) Name() string { return "fast-adversary" }

// Corrupt implements Attack: silent at challenge instants, spoofing
// everywhere else.
func (a *FastAdversary) Corrupt(k int, clean radar.Measurement) radar.Measurement {
	if !a.Active(k) || clean.Challenge {
		return clean
	}
	out := clean
	out.Distance = clean.Distance + a.OffsetM
	return out
}
