package attack

import (
	"math"
	"testing"
	"testing/quick"

	"safesense/internal/noise"
	"safesense/internal/radar"
)

func TestWindow(t *testing.T) {
	w := Window{Start: 182, End: 300}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		k    int
		want bool
	}{{181, false}, {182, true}, {250, true}, {300, true}, {301, false}} {
		if got := w.Contains(c.k); got != c.want {
			t.Fatalf("Contains(%d) = %v", c.k, got)
		}
	}
	if err := (Window{Start: 5, End: 4}).Validate(); err == nil {
		t.Fatal("inverted window should fail")
	}
}

func TestJammerReceivedPowerInverseSquare(t *testing.T) {
	j := PaperJammer()
	p := radar.BoschLRR2()
	p50 := j.ReceivedPower(p, 50)
	p100 := j.ReceivedPower(p, 100)
	if math.Abs(p50/p100-4) > 1e-9 {
		t.Fatalf("jammer power ratio = %v, want 4 (1/d^2)", p50/p100)
	}
}

func TestPaperJammerWinsAtCaseStudyRange(t *testing.T) {
	// Section 6.2: the paper's jammer corrupts the radar at ~100 m, so the
	// Eqn 11 ratio must be < 1 there.
	j := PaperJammer()
	p := radar.BoschLRR2()
	if !j.Succeeds(p, 100) {
		t.Fatalf("paper jammer should succeed at 100 m (ratio %v)", j.PowerRatio(p, 100))
	}
}

func TestPowerRatioMonotoneDecreasing(t *testing.T) {
	// Target return ~ 1/d^4, jamming ~ 1/d^2: ratio must fall with d.
	j := PaperJammer()
	p := radar.BoschLRR2()
	prev := math.Inf(1)
	for d := 2.0; d <= 200; d += 2 {
		r := j.PowerRatio(p, d)
		if r >= prev {
			t.Fatalf("ratio not decreasing at %v m", d)
		}
		prev = r
	}
}

func TestBurnThroughRange(t *testing.T) {
	p := radar.BoschLRR2()
	// The paper's jammer is strong: check a weak jammer has a crossover
	// inside the operating range and the ordering is correct around it.
	weak := PaperJammer()
	weak.PeakPowerW = 2e-4
	bt := weak.BurnThroughRange(p)
	if bt <= p.MinRangeM || bt >= p.MaxRangeM {
		t.Fatalf("weak jammer burn-through = %v, want interior", bt)
	}
	if !(weak.PowerRatio(p, bt-1) > 1 && weak.PowerRatio(p, bt+1) < 1) {
		t.Fatal("burn-through not a crossover")
	}
	// Absurdly strong jammer: wins everywhere.
	strong := PaperJammer()
	strong.PeakPowerW = 1e3
	if got := strong.BurnThroughRange(p); got != 0 {
		t.Fatalf("strong jammer burn-through = %v, want 0", got)
	}
	// No jammer to speak of: radar wins everywhere.
	nil2 := PaperJammer()
	nil2.PeakPowerW = 1e-15
	if got := nil2.BurnThroughRange(p); got != p.MaxRangeM {
		t.Fatalf("negligible jammer burn-through = %v, want max range", got)
	}
}

func TestNoneAttackPassthrough(t *testing.T) {
	var a None
	clean := radar.Measurement{K: 3, Distance: 90, RelVelocity: -2, Power: 1e-12}
	if got := a.Corrupt(3, clean); got != clean {
		t.Fatal("None must be identity")
	}
	if a.Active(3) {
		t.Fatal("None must never be active")
	}
}

func TestDoSCorruption(t *testing.T) {
	p := radar.BoschLRR2()
	src := noise.NewSource(1)
	a, err := NewDoS(Window{Start: 182, End: 300}, PaperJammer(), p, src)
	if err != nil {
		t.Fatal(err)
	}
	clean := radar.Measurement{K: 200, Distance: 95, RelVelocity: -1, Power: p.ReceivedPower(95, p.TargetRCS)}
	got := a.Corrupt(200, clean)
	// Corrupted values are large and unrelated to the truth.
	if got.Distance < 100 || got.Distance > 250 {
		t.Fatalf("DoS distance = %v, want in [100, 250]", got.Distance)
	}
	if got.Power <= clean.Power {
		t.Fatal("jamming must raise the receiver power")
	}
	// Outside the window the attack is a no-op.
	if out := a.Corrupt(10, clean); out != clean {
		t.Fatal("DoS outside window must be identity")
	}
}

func TestDoSFloodsChallenges(t *testing.T) {
	// The key detection property: a jammed challenge instant is NOT quiet.
	p := radar.BoschLRR2()
	src := noise.NewSource(2)
	a, _ := NewDoS(Window{Start: 100, End: 200}, PaperJammer(), p, src)
	challenge := radar.Measurement{K: 150, Challenge: true, Power: p.NoiseFloor()}
	got := a.Corrupt(150, challenge)
	threshold := 10 * p.NoiseFloor()
	if got.IsZero(threshold) {
		t.Fatalf("jammed challenge power %v below threshold %v", got.Power, threshold)
	}
	if !got.Challenge {
		t.Fatal("Challenge flag must survive corruption")
	}
}

func TestDoSValidation(t *testing.T) {
	p := radar.BoschLRR2()
	src := noise.NewSource(1)
	if _, err := NewDoS(Window{Start: 5, End: 1}, PaperJammer(), p, src); err == nil {
		t.Fatal("bad window should fail")
	}
	bad := PaperJammer()
	bad.PeakPowerW = 0
	if _, err := NewDoS(Window{Start: 1, End: 5}, bad, p, src); err == nil {
		t.Fatal("bad jammer should fail")
	}
	if _, err := NewDoS(Window{Start: 1, End: 5}, PaperJammer(), p, nil); err == nil {
		t.Fatal("nil source should fail")
	}
}

func TestDelayInjectionOffset(t *testing.T) {
	p := radar.BoschLRR2()
	a, err := NewDelayInjection(Window{Start: 180, End: 300}, 6, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.OffsetMeters()-6) > 1e-9 {
		t.Fatalf("offset = %v, want 6", a.OffsetMeters())
	}
	clean := radar.Measurement{K: 200, Distance: 95, RelVelocity: -1, Power: 1e-12}
	got := a.Corrupt(200, clean)
	if math.Abs(got.Distance-101) > 1e-9 {
		t.Fatalf("spoofed distance = %v, want 101", got.Distance)
	}
	if got.RelVelocity != clean.RelVelocity {
		t.Fatal("delay attack must not change velocity outside challenges")
	}
	if out := a.Corrupt(100, clean); out != clean {
		t.Fatal("outside window must be identity")
	}
}

func TestDelayInjectionLeaksIntoChallenges(t *testing.T) {
	p := radar.BoschLRR2()
	threshold := 10 * p.NoiseFloor()
	for _, smart := range []bool{false, true} {
		a, _ := NewDelayInjection(Window{Start: 100, End: 300}, 6, p)
		a.KnowsSchedule = smart
		challenge := radar.Measurement{K: 182, Challenge: true, Power: p.NoiseFloor()}
		got := a.Corrupt(182, challenge)
		if got.IsZero(threshold) {
			t.Fatalf("smart=%v: spoofed challenge power %v below threshold %v", smart, got.Power, threshold)
		}
	}
}

func TestDelayInjectionValidation(t *testing.T) {
	p := radar.BoschLRR2()
	if _, err := NewDelayInjection(Window{Start: 5, End: 1}, 6, p); err == nil {
		t.Fatal("bad window should fail")
	}
	if _, err := NewDelayInjection(Window{Start: 1, End: 5}, 0, p); err == nil {
		t.Fatal("zero offset should fail")
	}
	if _, err := NewDelayInjection(Window{Start: 1, End: 5}, -3, p); err == nil {
		t.Fatal("negative offset should fail")
	}
}

func TestAttackNames(t *testing.T) {
	p := radar.BoschLRR2()
	src := noise.NewSource(1)
	dos, _ := NewDoS(Window{Start: 1, End: 2}, PaperJammer(), p, src)
	del, _ := NewDelayInjection(Window{Start: 1, End: 2}, 6, p)
	if (None{}).Name() != "none" || dos.Name() != "dos" || del.Name() != "delay" {
		t.Fatal("attack names wrong")
	}
}

func TestDoSCorruptionBoundedProperty(t *testing.T) {
	p := radar.BoschLRR2()
	f := func(seed int64, k int) bool {
		src := noise.NewSource(seed)
		a, err := NewDoS(Window{Start: 0, End: 1 << 20}, PaperJammer(), p, src)
		if err != nil {
			return false
		}
		if k < 0 {
			k = -k
		}
		k %= 1 << 20
		clean := radar.Measurement{K: k, Distance: 90, Power: 1e-12}
		got := a.Corrupt(k, clean)
		return got.Distance >= 0 && got.Distance <= a.CorruptionScale &&
			math.Abs(got.RelVelocity) <= a.CorruptionScale/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
