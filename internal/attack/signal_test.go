package attack

import (
	"math"
	"testing"

	"safesense/internal/noise"
	"safesense/internal/radar"
)

func TestDoSCorruptSweepFloodsChannel(t *testing.T) {
	p := radar.BoschLRR2()
	src := noise.NewSource(1)
	a, err := NewDoS(Window{Start: 100, End: 200}, PaperJammer(), p, src)
	if err != nil {
		t.Fatal(err)
	}
	quiet := p.SynthesizeSilence(128, src)
	jammed := a.CorruptSweep(150, quiet, true)
	if jammed.Power() < 100*quiet.Power() {
		t.Fatalf("jammed power %v not far above quiet %v", jammed.Power(), quiet.Power())
	}
	// Outside the window: untouched.
	out := a.CorruptSweep(50, quiet, true)
	if out.Power() != quiet.Power() {
		t.Fatal("DoS sweep corruption outside window")
	}
}

func TestDelayCorruptSweepShiftsDistance(t *testing.T) {
	p := radar.BoschLRR2()
	a, err := NewDelayInjection(Window{Start: 100, End: 300}, 6, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.SynthesizeSweep(100, -1.0, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	spoofed := a.CorruptSweep(150, s, false)
	fbUp, fbDown, err := (radar.FFTExtractor{}).Extract(spoofed)
	if err != nil {
		t.Fatal(err)
	}
	d, v := p.FromBeats(fbUp, fbDown)
	if math.Abs(d-106) > 1.0 {
		t.Fatalf("spoofed distance = %v, want ~106", d)
	}
	// Doppler preserved: both slopes shift identically.
	if math.Abs(v-(-1.0)) > 0.5 {
		t.Fatalf("spoofed velocity = %v, want ~-1.0", v)
	}
	// The beat shift corresponds to exactly the configured offset.
	if off := OffsetFromShift(p, a.BeatShiftHz()); math.Abs(off-6) > 1e-9 {
		t.Fatalf("shift-offset inverse = %v, want 6", off)
	}
}

func TestDelayCorruptSweepLeaksDuringChallenge(t *testing.T) {
	p := radar.BoschLRR2()
	src := noise.NewSource(2)
	a, _ := NewDelayInjection(Window{Start: 100, End: 300}, 6, p)
	quiet := p.SynthesizeSilence(128, src)
	leaked := a.CorruptSweep(150, quiet, true)
	threshold := 10 * p.NoiseFloor()
	if leaked.Power() <= threshold {
		t.Fatalf("challenge leak power %v below threshold %v", leaked.Power(), threshold)
	}
}

func TestFastAdversaryValidation(t *testing.T) {
	if _, err := NewFastAdversary(Window{Start: 5, End: 1}, 6); err == nil {
		t.Fatal("bad window should fail")
	}
	if _, err := NewFastAdversary(Window{Start: 1, End: 5}, 0); err == nil {
		t.Fatal("zero offset should fail")
	}
}

func TestFastAdversaryEvadesChallenges(t *testing.T) {
	a, err := NewFastAdversary(Window{Start: 100, End: 300}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "fast-adversary" {
		t.Fatal("name")
	}
	// Normal instant: spoofed.
	clean := radar.Measurement{K: 150, Distance: 90, Power: 1e-12}
	got := a.Corrupt(150, clean)
	if got.Distance != 96 {
		t.Fatalf("spoofed distance = %v, want 96", got.Distance)
	}
	// Challenge instant: perfectly silent — the CRA-evading property.
	challenge := radar.Measurement{K: 182, Challenge: true, Power: 1e-14}
	if out := a.Corrupt(182, challenge); out != challenge {
		t.Fatal("fast adversary must be invisible at challenge instants")
	}
	// Outside window: identity.
	if out := a.Corrupt(50, clean); out != clean {
		t.Fatal("outside window must be identity")
	}
}
