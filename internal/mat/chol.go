package mat

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky for matrices that are not
// symmetric positive definite to working precision.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L with A = L*L^T.
type Cholesky struct {
	l *Dense
}

// NewCholesky factorizes the symmetric positive-definite matrix a.
// Only the lower triangle of a is read.
func NewCholesky(a *Dense) (*Cholesky, error) {
	n, c := a.Dims()
	if n != c {
		return nil, errors.New("mat: Cholesky of non-square matrix")
	}
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return nil, ErrNotPositiveDefinite
		}
		l.Set(j, j, math.Sqrt(d))
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/l.At(j, j))
		}
	}
	return &Cholesky{l: l}, nil
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Dense { return c.l.Clone() }

// SolveVec solves A*x = b using the factorization.
func (c *Cholesky) SolveVec(b []float64) ([]float64, error) {
	n := c.l.rows
	if len(b) != n {
		return nil, errors.New("mat: Cholesky solve dimension mismatch")
	}
	// Forward: L*y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= c.l.At(i, j) * y[j]
		}
		y[i] = s / c.l.At(i, i)
	}
	// Backward: L^T*x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.At(j, i) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x, nil
}

// LogDet returns the natural log of det(A) = 2*sum(log(L_ii)).
func (c *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.l.rows; i++ {
		s += math.Log(c.l.At(i, i))
	}
	return 2 * s
}
