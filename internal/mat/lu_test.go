package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	a := NewDenseData(2, 2, []float64{2, 1, 1, 3})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("Solve = %v, want [1 3]", x)
	}
}

func TestSolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randDense(rng, n, n)
		// Diagonal dominance keeps the system comfortably nonsingular.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInverse(t *testing.T) {
	a := NewDenseData(3, 3, []float64{4, 2, 0, 2, 5, 1, 0, 1, 3})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(inv).EqualApprox(Identity(3), 1e-10) {
		t.Fatal("A*inv(A) != I")
	}
	if !inv.Mul(a).EqualApprox(Identity(3), 1e-10) {
		t.Fatal("inv(A)*A != I")
	}
}

func TestSingularDetection(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 4})
	if _, err := Inverse(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
	if d := Det(a); d != 0 {
		t.Fatalf("Det of singular = %v", d)
	}
}

func TestDet(t *testing.T) {
	a := NewDenseData(2, 2, []float64{3, 1, 4, 2})
	if d := Det(a); math.Abs(d-2) > 1e-12 {
		t.Fatalf("Det = %v, want 2", d)
	}
	// Determinant changes sign under a row swap; LU pivoting must track it.
	b := NewDenseData(2, 2, []float64{4, 2, 3, 1})
	if d := Det(b); math.Abs(d+2) > 1e-12 {
		t.Fatalf("Det = %v, want -2", d)
	}
}

func TestDetProductProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := randDense(rng, n, n)
		b := randDense(rng, n, n)
		dab := Det(a.Mul(b))
		da, db := Det(a), Det(b)
		return math.Abs(dab-da*db) <= 1e-8*(1+math.Abs(da*db))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRank(t *testing.T) {
	if r := Rank(Identity(4), 1e-10); r != 4 {
		t.Fatalf("Rank(I4) = %d", r)
	}
	// Rank-1 matrix.
	a := Outer([]float64{1, 2, 3}, []float64{4, 5, 6})
	if r := Rank(a, 1e-10); r != 1 {
		t.Fatalf("Rank(outer) = %d", r)
	}
	if r := Rank(NewDense(3, 3), 1e-10); r != 0 {
		t.Fatalf("Rank(0) = %d", r)
	}
	// Wide matrix with two independent rows.
	w := NewDenseData(2, 4, []float64{1, 0, 1, 0, 0, 1, 0, 1})
	if r := Rank(w, 1e-10); r != 2 {
		t.Fatalf("Rank(wide) = %d", r)
	}
}

func TestLUSolveMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randDense(rng, 4, 4)
	for i := 0; i < 4; i++ {
		a.Set(i, i, a.At(i, i)+5)
	}
	b := randDense(rng, 4, 3)
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(x).EqualApprox(b, 1e-9) {
		t.Fatal("A*X != B")
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := NewLU(NewDense(2, 3)); err == nil {
		t.Fatal("LU of non-square should fail")
	}
}
