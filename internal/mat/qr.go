package mat

import (
	"errors"
	"math"
)

// QR holds a Householder QR factorization of an m-by-n matrix with m >= n:
// A = Q*R with Q orthogonal (m-by-m, applied implicitly) and R upper
// triangular. It backs the batch least-squares solver that the estimator
// ablation compares against recursive least squares.
type QR struct {
	qr   *Dense    // packed Householder vectors below the diagonal, R on/above
	rdia []float64 // diagonal of R
}

// NewQR factorizes a (m >= n required).
func NewQR(a *Dense) (*QR, error) {
	m, n := a.Dims()
	if m < n {
		return nil, errors.New("mat: QR requires rows >= cols")
	}
	qr := a.Clone()
	rdia := make([]float64, n)
	for k := 0; k < n; k++ {
		// Norm of column k below row k.
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm == 0 {
			return nil, ErrSingular
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/nrm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		// Apply transformation to remaining columns.
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rdia[k] = -nrm
	}
	return &QR{qr: qr, rdia: rdia}, nil
}

// SolveVec returns the least-squares solution x minimizing ||A*x - b||_2.
func (f *QR) SolveVec(b []float64) ([]float64, error) {
	m, n := f.qr.Dims()
	if len(b) != m {
		return nil, errors.New("mat: QR solve dimension mismatch")
	}
	y := make([]float64, m)
	copy(y, b)
	// Apply Householder reflections: y = Q^T * b.
	for k := 0; k < n; k++ {
		s := 0.0
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back substitution with R.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		if f.rdia[i] == 0 {
			return nil, ErrSingular
		}
		x[i] = s / f.rdia[i]
	}
	return x, nil
}

// LeastSquares solves min ||A*x - b||_2 for x via QR.
func LeastSquares(a *Dense, b []float64) ([]float64, error) {
	f, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b)
}
