package mat

import (
	"fmt"
	"math"
)

// Vector helpers. Vectors are plain []float64 so callers can build them with
// ordinary slice syntax; these functions provide the handful of BLAS-1 style
// operations the estimators need.

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled accumulation avoids overflow for large components.
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			ssq = 1 + ssq*(scale/a)*(scale/a)
			scale = a
		} else {
			ssq += (a / scale) * (a / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute component of x.
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// AddVec returns x + y as a new slice.
func AddVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("mat: AddVec length mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}

// SubVec returns x - y as a new slice.
func SubVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("mat: SubVec length mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// ScaleVec returns s*x as a new slice.
func ScaleVec(s float64, x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = s * v
	}
	return out
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}
