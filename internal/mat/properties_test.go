package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestLUAndQRAgreeOnSquareSystems: two independent factorizations must
// produce the same solution for well-conditioned square systems.
func TestLUAndQRAgreeOnSquareSystems(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := randDense(rng, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+2)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xLU, err1 := Solve(a, b)
		xQR, err2 := LeastSquares(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range xLU {
			if math.Abs(xLU[i]-xQR[i]) > 1e-8*(1+math.Abs(xLU[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEigenDetConsistency: the product of eigenvalues equals the LU
// determinant for symmetric matrices.
func TestEigenDetConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := randSym(rng, n)
		vals, _, err := EigenSym(a)
		if err != nil {
			return false
		}
		prod := 1.0
		for _, v := range vals {
			prod *= v
		}
		det := Det(a)
		return math.Abs(prod-det) <= 1e-7*(1+math.Abs(det))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCholeskyLUSolveAgree: SPD systems solved via Cholesky and LU agree.
func TestCholeskyLUSolveAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		b0 := randDense(rng, n+2, n)
		a := b0.T().Mul(b0).Add(Identity(n).Scale(0.5))
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		x1, err1 := ch.SolveVec(rhs)
		x2, err2 := Solve(a, rhs)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-7*(1+math.Abs(x2[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSpectralRadiusSubmultiplicative: rho(A) <= ||A||_F for any matrix.
func TestSpectralRadiusSubmultiplicative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := randDense(rng, n, n)
		return SpectralRadius(a, 0) <= a.FrobeniusNorm()*(1+1e-9)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRankBounds: rank never exceeds min(rows, cols) and matches full rank
// for identity-padded matrices.
func TestRankBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		a := randDense(rng, r, c)
		rk := Rank(a, 1e-10)
		minDim := r
		if c < r {
			minDim = c
		}
		return rk >= 0 && rk <= minDim
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
