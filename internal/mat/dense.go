// Package mat implements the small dense real linear algebra kernel used by
// the safesense estimators, controllers, and plant models.
//
// It is deliberately minimal: row-major dense matrices, the factorizations
// required by the RLS/Kalman estimators (LU, Cholesky, QR) and a symmetric
// Jacobi eigendecomposition that internal/cmat builds on for the Hermitian
// eigenproblem inside root-MUSIC. All dimensions in this project are tiny
// (covariance matrices of order <= 64), so clarity wins over blocking or
// SIMD tricks.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns an r-by-c zero matrix. It panics if r or c is not
// positive.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData returns an r-by-c matrix backed by a copy of data, which must
// have length r*c and be laid out row-major.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	m := NewDense(r, c)
	copy(m.data, data)
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with d on its diagonal.
func Diag(d []float64) *Dense {
	m := NewDense(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// Dims returns the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	return NewDenseData(m.rows, m.cols, m.data)
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	m.check(i, 0)
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	m.check(0, j)
	out := make([]float64, m.rows)
	for i := range out {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic("mat: SetRow length mismatch")
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Add returns m + b.
func (m *Dense) Add(b *Dense) *Dense {
	m.sameDims(b, "Add")
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out
}

// Sub returns m - b.
func (m *Dense) Sub(b *Dense) *Dense {
	m.sameDims(b, "Sub")
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out
}

// Scale returns s*m.
func (m *Dense) Scale(s float64) *Dense {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Mul returns the matrix product m*b.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			orow := out.data[i*out.cols : (i+1)*out.cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*x.
func (m *Dense) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %dx%d * %d", m.rows, m.cols, len(x)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

func (m *Dense) sameDims(b *Dense, op string) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: %s dimension mismatch %dx%d vs %dx%d", op, m.rows, m.cols, b.rows, b.cols))
	}
}

// MaxAbs returns the largest absolute element value, or 0 for an all-zero
// matrix.
func (m *Dense) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Trace returns the sum of diagonal elements. It panics for non-square m.
func (m *Dense) Trace() float64 {
	if m.rows != m.cols {
		panic("mat: Trace of non-square matrix")
	}
	s := 0.0
	for i := 0; i < m.rows; i++ {
		s += m.data[i*m.cols+i]
	}
	return s
}

// EqualApprox reports whether m and b agree element-wise within tol.
func (m *Dense) EqualApprox(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// String formats m for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "% .6g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Outer returns the outer product x*y^T.
func Outer(x, y []float64) *Dense {
	m := NewDense(len(x), len(y))
	for i, xv := range x {
		for j, yv := range y {
			m.data[i*m.cols+j] = xv * yv
		}
	}
	return m
}
