package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// feq reports exact float64 equality, for oracle values that are
// stored and read back verbatim (At/Row/Col copies) or produced by
// small-integer arithmetic — both exact in IEEE-754. Computed
// quantities (norms, dot products) use epsilon comparisons instead.
//
//safesense:floatcmp-helper
func feq(a, b float64) bool { return a == b }

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestNewDensePanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDense(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewDense(dims[0], dims[1])
		}()
	}
}

func TestAtSet(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); !feq(got, 7.5) {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v, want 0", got)
	}
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, 4, 4)
	if !a.Mul(Identity(4)).EqualApprox(a, 1e-12) {
		t.Fatal("A*I != A")
	}
	if !Identity(4).Mul(a).EqualApprox(a, 1e-12) {
		t.Fatal("I*A != A")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		a := randDense(rng, r, c)
		return a.T().T().EqualApprox(a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randDense(rng, 3, 4)
		b := randDense(rng, 4, 2)
		c := randDense(rng, 2, 5)
		left := a.Mul(b).Mul(c)
		right := a.Mul(b.Mul(c))
		return left.EqualApprox(right, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMulTransposeIdentity(t *testing.T) {
	// (A*B)^T == B^T * A^T
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randDense(rng, 3, 4)
		b := randDense(rng, 4, 2)
		return a.Mul(b).T().EqualApprox(b.T().Mul(a.T()), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{5, 6, 7, 8})
	if got := a.Add(b); !got.EqualApprox(NewDenseData(2, 2, []float64{6, 8, 10, 12}), 0) {
		t.Fatalf("Add: %v", got)
	}
	if got := b.Sub(a); !got.EqualApprox(NewDenseData(2, 2, []float64{4, 4, 4, 4}), 0) {
		t.Fatalf("Sub: %v", got)
	}
	if got := a.Scale(2); !got.EqualApprox(NewDenseData(2, 2, []float64{2, 4, 6, 8}), 0) {
		t.Fatalf("Scale: %v", got)
	}
	// a must be unchanged (operations return copies).
	if !a.EqualApprox(NewDenseData(2, 2, []float64{1, 2, 3, 4}), 0) {
		t.Fatal("Add/Sub/Scale mutated receiver")
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 5, 3)
	x := []float64{1.5, -2, 0.25}
	xm := NewDenseData(3, 1, x)
	want := a.Mul(xm)
	got := a.MulVec(x)
	for i := range got {
		if math.Abs(got[i]-want.At(i, 0)) > 1e-12 {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestRowColSetRow(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if r := a.Row(1); !feq(r[0], 4) || !feq(r[1], 5) || !feq(r[2], 6) {
		t.Fatalf("Row(1) = %v", r)
	}
	if c := a.Col(2); !feq(c[0], 3) || !feq(c[1], 6) {
		t.Fatalf("Col(2) = %v", c)
	}
	a.SetRow(0, []float64{9, 8, 7})
	if !feq(a.At(0, 0), 9) || !feq(a.At(0, 2), 7) {
		t.Fatal("SetRow failed")
	}
	// Row returns a copy: mutating it must not affect the matrix.
	r := a.Row(0)
	r[0] = -1
	if !feq(a.At(0, 0), 9) {
		t.Fatal("Row did not return a copy")
	}
}

func TestTraceDiagOuter(t *testing.T) {
	d := Diag([]float64{1, 2, 3})
	if math.Abs(d.Trace()-6) > 1e-12 {
		t.Fatalf("Trace = %v", d.Trace())
	}
	o := Outer([]float64{1, 2}, []float64{3, 4, 5})
	want := NewDenseData(2, 3, []float64{3, 4, 5, 6, 8, 10})
	if !o.EqualApprox(want, 0) {
		t.Fatalf("Outer = %v", o)
	}
}

func TestIsSymmetric(t *testing.T) {
	s := NewDenseData(2, 2, []float64{1, 2, 2, 5})
	if !s.IsSymmetric(0) {
		t.Fatal("symmetric matrix not detected")
	}
	ns := NewDenseData(2, 2, []float64{1, 2, 3, 5})
	if ns.IsSymmetric(1e-12) {
		t.Fatal("non-symmetric matrix passed")
	}
	if NewDense(2, 3).IsSymmetric(0) {
		t.Fatal("non-square matrix passed")
	}
}

func TestFrobeniusAndMaxAbs(t *testing.T) {
	a := NewDenseData(2, 2, []float64{3, 0, 4, 0})
	if got := a.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %v", got)
	}
	if got := a.MaxAbs(); !feq(got, 4) {
		t.Fatalf("MaxAbs = %v", got)
	}
}
