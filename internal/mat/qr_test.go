package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLeastSquaresExact(t *testing.T) {
	// Square nonsingular system: least squares == exact solve.
	a := NewDenseData(2, 2, []float64{2, 1, 1, 3})
	x, err := LeastSquares(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-10 || math.Abs(x[1]-3) > 1e-10 {
		t.Fatalf("LeastSquares = %v, want [1 3]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2t + 1 through noiseless samples; exact recovery expected.
	n := 10
	a := NewDense(n, 2)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		tme := float64(i)
		a.Set(i, 0, tme)
		a.Set(i, 1, 1)
		b[i] = 2*tme + 1
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-10 || math.Abs(x[1]-1) > 1e-10 {
		t.Fatalf("fit = %v, want [2 1]", x)
	}
}

func TestLeastSquaresNormalEquationsProperty(t *testing.T) {
	// The LS residual must be orthogonal to the column space:
	// A^T (A x - b) = 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := n + 1 + rng.Intn(6)
		a := randDense(rng, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return true // singular random draw: skip
		}
		res := SubVec(a.MulVec(x), b)
		g := a.T().MulVec(res)
		return NormInf(g) <= 1e-8*(1+NormInf(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQRRejectsWide(t *testing.T) {
	if _, err := NewQR(NewDense(2, 3)); err == nil {
		t.Fatal("QR of wide matrix should fail")
	}
}

func TestVecOps(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Dot(x, y); math.Abs(got-32) > 1e-12 {
		t.Fatalf("Dot = %v", got)
	}
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm2 = %v", got)
	}
	if got := NormInf([]float64{-7, 2}); !feq(got, 7) {
		t.Fatalf("NormInf = %v", got)
	}
	if got := AddVec(x, y); !feq(got[0], 5) || !feq(got[2], 9) {
		t.Fatalf("AddVec = %v", got)
	}
	if got := SubVec(y, x); !feq(got[0], 3) || !feq(got[2], 3) {
		t.Fatalf("SubVec = %v", got)
	}
	if got := ScaleVec(2, x); !feq(got[1], 4) {
		t.Fatalf("ScaleVec = %v", got)
	}
	z := []float64{1, 1, 1}
	Axpy(2, x, z)
	if !feq(z[0], 3) || !feq(z[2], 7) {
		t.Fatalf("Axpy = %v", z)
	}
}

func TestNorm2Overflow(t *testing.T) {
	// Norm2 must not overflow for huge components.
	big := 1e300
	got := Norm2([]float64{big, big})
	want := big * math.Sqrt2
	if math.IsInf(got, 0) || math.Abs(got-want) > 1e-10*want {
		t.Fatalf("Norm2 overflow handling: got %v, want %v", got, want)
	}
}

func TestCauchySchwarzProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n == 0 {
			return true
		}
		x, y := xs[:n], ys[:n]
		for _, v := range append(append([]float64{}, x...), y...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				return true
			}
		}
		return math.Abs(Dot(x, y)) <= Norm2(x)*Norm2(y)*(1+1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
