package mat

import (
	"errors"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a matrix
// that is singular to working precision.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	lu   *Dense
	piv  []int
	sign int // +1 or -1, parity of the permutation
}

// NewLU factorizes the square matrix a. It returns ErrSingular if a pivot
// vanishes.
func NewLU(a *Dense) (*LU, error) {
	n, c := a.Dims()
	if n != c {
		return nil, errors.New("mat: LU of non-square matrix")
	}
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivot: largest magnitude in column k at/below row k.
		p, maxv := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.data[k*n+j], lu.data[p*n+j] = lu.data[p*n+j], lu.data[k*n+j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivVal
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Set(i, j, lu.At(i, j)-m*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// SolveVec solves A*x = b for x.
func (f *LU) SolveVec(b []float64) ([]float64, error) {
	n := f.lu.rows
	if len(b) != n {
		return nil, errors.New("mat: LU solve dimension mismatch")
	}
	x := make([]float64, n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		d := f.lu.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// Solve solves A*X = B column by column.
func (f *LU) Solve(b *Dense) (*Dense, error) {
	n := f.lu.rows
	if b.rows != n {
		return nil, errors.New("mat: LU solve dimension mismatch")
	}
	out := NewDense(n, b.cols)
	for j := 0; j < b.cols; j++ {
		col, err := f.SolveVec(b.Col(j))
		if err != nil {
			return nil, err
		}
		for i, v := range col {
			out.Set(i, j, v)
		}
	}
	return out, nil
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	n := f.lu.rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves the linear system a*x = b.
func Solve(a *Dense, b []float64) ([]float64, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b)
}

// Inverse returns the inverse of a, or ErrSingular.
func Inverse(a *Dense) (*Dense, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(Identity(a.rows))
}

// Det returns the determinant of a. A singular matrix yields 0.
func Det(a *Dense) float64 {
	f, err := NewLU(a)
	if err != nil {
		return 0
	}
	return f.Det()
}

// Rank estimates the rank of a using column-pivoted Gaussian elimination
// with the relative tolerance tol (e.g. 1e-10). It is used by the
// observability and controllability tests of internal/lti.
func Rank(a *Dense, tol float64) int {
	m := a.Clone()
	r, c := m.Dims()
	scale := m.MaxAbs()
	if scale == 0 {
		return 0
	}
	thresh := tol * scale
	rank := 0
	row := 0
	for col := 0; col < c && row < r; col++ {
		// Find pivot in this column.
		p, maxv := -1, thresh
		for i := row; i < r; i++ {
			if v := math.Abs(m.At(i, col)); v > maxv {
				p, maxv = i, v
			}
		}
		if p < 0 {
			continue
		}
		if p != row {
			for j := 0; j < c; j++ {
				tmp := m.At(row, j)
				m.Set(row, j, m.At(p, j))
				m.Set(p, j, tmp)
			}
		}
		pv := m.At(row, col)
		for i := row + 1; i < r; i++ {
			f := m.At(i, col) / pv
			if f == 0 {
				continue
			}
			for j := col; j < c; j++ {
				m.Set(i, j, m.At(i, j)-f*m.At(row, j))
			}
		}
		rank++
		row++
	}
	return rank
}
