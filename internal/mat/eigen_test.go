package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSym(rng *rand.Rand, n int) *Dense {
	a := randDense(rng, n, n)
	return a.Add(a.T()).Scale(0.5)
}

func TestEigenSymDiagonal(t *testing.T) {
	vals, vecs, err := EigenSym(Diag([]float64{3, 1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	// Eigenvectors must be orthonormal.
	if !vecs.T().Mul(vecs).EqualApprox(Identity(3), 1e-10) {
		t.Fatal("V not orthonormal")
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	vals, _, err := EigenSym(NewDenseData(2, 2, []float64{2, 1, 1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-10 || math.Abs(vals[1]-3) > 1e-10 {
		t.Fatalf("vals = %v, want [1 3]", vals)
	}
}

func TestEigenSymReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randSym(rng, n)
		vals, vecs, err := EigenSym(a)
		if err != nil {
			return false
		}
		// A == V * diag(vals) * V^T
		rec := vecs.Mul(Diag(vals)).Mul(vecs.T())
		if !rec.EqualApprox(a, 1e-8*(1+a.MaxAbs())) {
			return false
		}
		// Ascending order.
		for i := 1; i < n; i++ {
			if vals[i] < vals[i-1] {
				return false
			}
		}
		// Trace preserved.
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		return math.Abs(sum-a.Trace()) <= 1e-8*(1+math.Abs(a.Trace()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenSymRejectsNonSymmetric(t *testing.T) {
	if _, _, err := EigenSym(NewDenseData(2, 2, []float64{1, 2, 3, 4})); err == nil {
		t.Fatal("expected error for non-symmetric input")
	}
	if _, _, err := EigenSym(NewDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestSpectralRadiusDiagonal(t *testing.T) {
	a := Diag([]float64{0.5, -0.9, 0.2})
	if got := SpectralRadius(a, 0); math.Abs(got-0.9) > 1e-6 {
		t.Fatalf("SpectralRadius = %v, want 0.9", got)
	}
}

func TestSpectralRadiusRotation(t *testing.T) {
	// Scaled rotation: complex eigenvalues of magnitude r.
	r := 0.8
	th := 0.7
	a := NewDenseData(2, 2, []float64{
		r * math.Cos(th), -r * math.Sin(th),
		r * math.Sin(th), r * math.Cos(th),
	})
	if got := SpectralRadius(a, 0); math.Abs(got-r) > 1e-6 {
		t.Fatalf("SpectralRadius = %v, want %v", got, r)
	}
}

func TestSpectralRadiusZeroAndNilpotent(t *testing.T) {
	if got := SpectralRadius(NewDense(3, 3), 0); got != 0 {
		t.Fatalf("SpectralRadius(0) = %v", got)
	}
	// Nilpotent: all eigenvalues zero.
	n := NewDenseData(2, 2, []float64{0, 1, 0, 0})
	if got := SpectralRadius(n, 0); got > 1e-6 {
		t.Fatalf("SpectralRadius(nilpotent) = %v, want ~0", got)
	}
}

func TestCholeskySolve(t *testing.T) {
	// SPD matrix.
	a := NewDenseData(3, 3, []float64{4, 2, 0, 2, 5, 1, 0, 1, 3})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := ch.L()
	if !l.Mul(l.T()).EqualApprox(a, 1e-10) {
		t.Fatal("L*L^T != A")
	}
	want := []float64{1, -2, 3}
	b := a.MulVec(want)
	got, err := ch.SolveVec(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("solve = %v, want %v", got, want)
		}
	}
	// LogDet consistency with LU determinant.
	if math.Abs(math.Exp(ch.LogDet())-Det(a)) > 1e-8*math.Abs(Det(a)) {
		t.Fatal("LogDet mismatch")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("expected ErrNotPositiveDefinite")
	}
}

func TestCholeskyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		// Build SPD as B^T*B + eps*I.
		b := randDense(rng, n+2, n)
		a := b.T().Mul(b).Add(Identity(n).Scale(1e-3))
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		l := ch.L()
		return l.Mul(l.T()).EqualApprox(a, 1e-8*(1+a.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
