package mat

import (
	"errors"
	"math"
	"sort"
)

// EigenSym computes the eigendecomposition of the symmetric matrix a using
// the cyclic Jacobi method. It returns the eigenvalues in ascending order
// and a matrix whose columns are the corresponding orthonormal eigenvectors,
// so a = V * diag(vals) * V^T.
//
// Jacobi is slow for large matrices but unconditionally stable and exact
// enough for the covariance matrices (order <= 64) that root-MUSIC builds;
// internal/cmat reduces the Hermitian case to this routine via the standard
// real embedding.
func EigenSym(a *Dense) (vals []float64, vecs *Dense, err error) {
	n, c := a.Dims()
	if n != c {
		return nil, nil, errors.New("mat: EigenSym of non-square matrix")
	}
	if !a.IsSymmetric(1e-10 * (1 + a.MaxAbs())) {
		return nil, nil, errors.New("mat: EigenSym of non-symmetric matrix")
	}
	m := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(m)
		if off <= 1e-14*(1+m.MaxAbs()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				// Compute the Jacobi rotation that annihilates apq.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				cth := 1 / math.Sqrt(1+t*t)
				sth := t * cth
				applyJacobi(m, v, p, q, cth, sth)
			}
		}
	}

	// Extract eigenvalues and sort ascending with matching vectors.
	type pair struct {
		val float64
		col int
	}
	ps := make([]pair, n)
	for i := range ps {
		ps[i] = pair{m.At(i, i), i}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].val < ps[j].val })
	vals = make([]float64, n)
	vecs = NewDense(n, n)
	for k, p := range ps {
		vals[k] = p.val
		for i := 0; i < n; i++ {
			vecs.Set(i, k, v.At(i, p.col))
		}
	}
	return vals, vecs, nil
}

// applyJacobi applies the rotation G(p,q,theta) with cosine c and sine s to
// m (two-sided, preserving symmetry) and accumulates it into v.
func applyJacobi(m, v *Dense, p, q int, c, s float64) {
	n := m.rows
	for i := 0; i < n; i++ {
		mip, miq := m.At(i, p), m.At(i, q)
		m.Set(i, p, c*mip-s*miq)
		m.Set(i, q, s*mip+c*miq)
	}
	for j := 0; j < n; j++ {
		mpj, mqj := m.At(p, j), m.At(q, j)
		m.Set(p, j, c*mpj-s*mqj)
		m.Set(q, j, s*mpj+c*mqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func offDiagNorm(m *Dense) float64 {
	n := m.rows
	s := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				s += m.At(i, j) * m.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}

// SpectralRadius estimates the spectral radius (largest |eigenvalue|) of a
// general square matrix via Gelfand's formula rho(A) = lim ||A^k||^(1/k),
// evaluated by repeated squaring with normalization: after m squarings it
// reports ||A^(2^m)||_F^(1/2^m). Unlike plain power iteration this converges
// for complex eigenvalue pairs, which the closed-loop ACC dynamics have.
// It is used for discrete-time stability checks in internal/lti.
func SpectralRadius(a *Dense, squarings int) float64 {
	n, c := a.Dims()
	if n != c {
		panic("mat: SpectralRadius of non-square matrix")
	}
	if squarings <= 0 {
		squarings = 40
	}
	b := a.Clone()
	logScale := 0.0 // accumulated log of normalization factors, weighted.
	k := 1.0        // current power of A represented by b*exp(logScale terms)
	for i := 0; i < squarings; i++ {
		nrm := b.FrobeniusNorm()
		if nrm == 0 {
			return 0
		}
		// Normalize to keep entries representable, tracking the factor:
		// A^k = nrm * b  =>  log||A^k|| contribution nrm at weight 1/k.
		logScale += math.Log(nrm) / k
		b = b.Scale(1 / nrm)
		b = b.Mul(b)
		k *= 2
	}
	nrm := b.FrobeniusNorm()
	if nrm == 0 {
		return 0
	}
	logScale += math.Log(nrm) / k
	return math.Exp(logScale)
}
