package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || got != 0 {
		t.Fatalf("identical series RMSE = %v, %v", got, err)
	}
	got, err = RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil || math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("RMSE = %v", got)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Fatal("empty should fail")
	}
}

func TestMAEAndMaxAbs(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, 0, 3}
	mae, err := MAE(a, b)
	if err != nil || math.Abs(mae-1) > 1e-12 {
		t.Fatalf("MAE = %v", mae)
	}
	mx, err := MaxAbsErr(a, b)
	if err != nil || mx != 2 {
		t.Fatalf("MaxAbsErr = %v", mx)
	}
	if _, err := MAE(nil, nil); err == nil {
		t.Fatal("empty MAE should fail")
	}
	if _, err := MaxAbsErr([]float64{1}, []float64{}); err == nil {
		t.Fatal("mismatch MaxAbsErr should fail")
	}
}

func TestMetricOrderingProperty(t *testing.T) {
	// MAE <= RMSE <= MaxAbsErr for any data.
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		x, y := a[:n], b[:n]
		for i := 0; i < n; i++ {
			if math.IsNaN(x[i]) || math.IsNaN(y[i]) || math.Abs(x[i]) > 1e100 || math.Abs(y[i]) > 1e100 {
				return true
			}
		}
		mae, _ := MAE(x, y)
		rmse, _ := RMSE(x, y)
		mx, _ := MaxAbsErr(x, y)
		return mae <= rmse*(1+1e-12) && rmse <= mx*(1+1e-12)+1e-300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(x); m != 5 {
		t.Fatalf("Mean = %v", m)
	}
	if s := StdDev(x); math.Abs(s-2) > 1e-12 {
		t.Fatalf("StdDev = %v", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty Mean/StdDev should be 0")
	}
}

func TestMinMax(t *testing.T) {
	x := []float64{3, -1, 7}
	if Min(x) != -1 || Max(x) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(x), Max(x))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty Min/Max should be 0")
	}
}

func TestDetectionLatency(t *testing.T) {
	if got := DetectionLatency(182, 182); got != 0 {
		t.Fatalf("latency = %d", got)
	}
	if got := DetectionLatency(182, 190); got != 8 {
		t.Fatalf("latency = %d", got)
	}
	if got := DetectionLatency(182, -1); got != -1 {
		t.Fatalf("missed detection latency = %d", got)
	}
}
