package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// feq reports exact float64 equality, for oracle values that are
// selected or copied verbatim (Min/Max, single-element percentile,
// untouched inputs) and therefore bit-identical. Computed quantities
// (means, errors) use epsilon comparisons instead.
//
//safesense:floatcmp-helper
func feq(a, b float64) bool { return a == b }

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || got != 0 {
		t.Fatalf("identical series RMSE = %v, %v", got, err)
	}
	got, err = RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil || math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("RMSE = %v", got)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Fatal("empty should fail")
	}
}

func TestMAEAndMaxAbs(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, 0, 3}
	mae, err := MAE(a, b)
	if err != nil || math.Abs(mae-1) > 1e-12 {
		t.Fatalf("MAE = %v", mae)
	}
	mx, err := MaxAbsErr(a, b)
	if err != nil || math.Abs(mx-2) > 1e-12 {
		t.Fatalf("MaxAbsErr = %v", mx)
	}
	if _, err := MAE(nil, nil); err == nil {
		t.Fatal("empty MAE should fail")
	}
	if _, err := MaxAbsErr([]float64{1}, []float64{}); err == nil {
		t.Fatal("mismatch MaxAbsErr should fail")
	}
}

func TestMetricOrderingProperty(t *testing.T) {
	// MAE <= RMSE <= MaxAbsErr for any data.
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		x, y := a[:n], b[:n]
		for i := 0; i < n; i++ {
			if math.IsNaN(x[i]) || math.IsNaN(y[i]) || math.Abs(x[i]) > 1e100 || math.Abs(y[i]) > 1e100 {
				return true
			}
		}
		mae, _ := MAE(x, y)
		rmse, _ := RMSE(x, y)
		mx, _ := MaxAbsErr(x, y)
		return mae <= rmse*(1+1e-12) && rmse <= mx*(1+1e-12)+1e-300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(x); math.Abs(m-5) > 1e-12 {
		t.Fatalf("Mean = %v", m)
	}
	if s := StdDev(x); math.Abs(s-2) > 1e-12 {
		t.Fatalf("StdDev = %v", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty Mean/StdDev should be 0")
	}
}

func TestMinMax(t *testing.T) {
	x := []float64{3, -1, 7}
	if !feq(Min(x), -1) || !feq(Max(x), 7) {
		t.Fatalf("Min/Max = %v/%v", Min(x), Max(x))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty Min/Max should be 0")
	}
}

func TestDetectionLatency(t *testing.T) {
	if got := DetectionLatency(182, 182); got != 0 {
		t.Fatalf("latency = %d", got)
	}
	if got := DetectionLatency(182, 190); got != 8 {
		t.Fatalf("latency = %d", got)
	}
	if got := DetectionLatency(182, -1); got != -1 {
		t.Fatalf("missed detection latency = %d", got)
	}
}

func TestPercentile(t *testing.T) {
	x := []float64{5, 1, 3, 2, 4} // unsorted on purpose
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {90, 4.6},
	}
	for _, c := range cases {
		if got := Percentile(x, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !feq(x[0], 5) {
		t.Fatal("Percentile must not modify its input")
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty input should yield NaN")
	}
	if !math.IsNaN(Percentile(x, 101)) || !math.IsNaN(Percentile(x, -1)) {
		t.Fatal("out-of-range p should yield NaN")
	}
	if got := Percentile([]float64{7}, 99); !feq(got, 7) {
		t.Fatalf("single-element percentile = %v", got)
	}
}

func TestPercentiles(t *testing.T) {
	got, err := Percentiles([]float64{1, 2, 3, 4, 5}, 50, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 5, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Percentiles = %v, want %v", got, want)
		}
	}
	if _, err := Percentiles(nil, 50); err == nil {
		t.Fatal("empty input should fail")
	}
	if _, err := Percentiles([]float64{1}, 120); err == nil {
		t.Fatal("out-of-range p should fail")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0, 1.9, 2, 5, 9.9, 10, 25, -3, math.NaN()} {
		h.Observe(v)
	}
	// Bins: [0,2) [2,4) [4,6) [6,8) [8,10); -3 clamps low, 10 and 25 clamp high.
	want := []int{3, 1, 1, 0, 3}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Fatalf("Counts = %v, want %v", h.Counts, want)
		}
	}
	if h.N != 8 {
		t.Fatalf("N = %d, want 8 (NaN ignored)", h.N)
	}
	edges := h.BinEdges()
	if len(edges) != 6 || edges[0] != 0 || !feq(edges[5], 10) || !feq(edges[1], 2) {
		t.Fatalf("BinEdges = %v", edges)
	}
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("zero bins should fail")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("empty range should fail")
	}
}
