// Package stats provides the error metrics and detection-accuracy
// bookkeeping used to compare simulation traces against the paper's
// reported results.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// RMSE returns the root mean squared error between two equal-length series.
func RMSE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(a) == 0 {
		return 0, errors.New("stats: empty input")
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a))), nil
}

// MAE returns the mean absolute error.
func MAE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(a) == 0 {
		return 0, errors.New("stats: empty input")
	}
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(len(a)), nil
}

// MaxAbsErr returns the largest absolute difference.
func MaxAbsErr(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(a) == 0 {
		return 0, errors.New("stats: empty input")
	}
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation.
func StdDev(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		s += (v - m) * (v - m)
	}
	return math.Sqrt(s / float64(len(x)))
}

// Min and Max of a slice (0 for empty input).
func Min(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum of a slice (0 for empty input).
func Max(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// DetectionLatency returns flagStep - onsetStep, or -1 if the attack was
// never flagged (flagStep < 0).
func DetectionLatency(onsetStep, flagStep int) int {
	if flagStep < 0 {
		return -1
	}
	return flagStep - onsetStep
}

// Percentile returns the p-th percentile (0 <= p <= 100) of x using linear
// interpolation between closest ranks. The input is not modified. It
// returns NaN for an empty slice or an out-of-range p.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 || p < 0 || p > 100 || math.IsNaN(p) {
		return math.NaN()
	}
	s := make([]float64, len(x))
	copy(s, x)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// Percentiles returns the requested percentiles of x in one sort pass,
// in the same order as ps. It returns an error for an empty input or an
// out-of-range p.
func Percentiles(x []float64, ps ...float64) ([]float64, error) {
	if len(x) == 0 {
		return nil, errors.New("stats: empty input")
	}
	s := make([]float64, len(x))
	copy(s, x)
	sort.Float64s(s)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 || p > 100 || math.IsNaN(p) {
			return nil, fmt.Errorf("stats: percentile %g out of range [0, 100]", p)
		}
		out[i] = percentileSorted(s, p)
	}
	return out, nil
}

// percentileSorted interpolates the p-th percentile of an ascending slice.
func percentileSorted(s []float64, p float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Histogram accumulates samples into equal-width bins over [Lo, Hi).
// Samples below Lo land in the first bin and samples at or above Hi in the
// last, so the tails remain visible without unbounded storage. The zero
// value is not usable; construct with NewHistogram.
type Histogram struct {
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	Counts []int   `json:"counts"`
	N      int     `json:"n"`
}

// NewHistogram builds a histogram with the given range and bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: histogram needs >= 1 bin, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram range [%g, %g) is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Observe adds one sample. NaNs are ignored.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := int(math.Floor((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts))))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.N++
}

// BinEdges returns the len(Counts)+1 bin boundaries.
func (h *Histogram) BinEdges() []float64 {
	edges := make([]float64, len(h.Counts)+1)
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i := range edges {
		edges[i] = h.Lo + float64(i)*w
	}
	edges[len(edges)-1] = h.Hi
	return edges
}
