// Package stats provides the error metrics and detection-accuracy
// bookkeeping used to compare simulation traces against the paper's
// reported results.
package stats

import (
	"errors"
	"math"
)

// RMSE returns the root mean squared error between two equal-length series.
func RMSE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(a) == 0 {
		return 0, errors.New("stats: empty input")
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a))), nil
}

// MAE returns the mean absolute error.
func MAE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(a) == 0 {
		return 0, errors.New("stats: empty input")
	}
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(len(a)), nil
}

// MaxAbsErr returns the largest absolute difference.
func MaxAbsErr(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(a) == 0 {
		return 0, errors.New("stats: empty input")
	}
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation.
func StdDev(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		s += (v - m) * (v - m)
	}
	return math.Sqrt(s / float64(len(x)))
}

// Min and Max of a slice (0 for empty input).
func Min(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum of a slice (0 for empty input).
func Max(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// DetectionLatency returns flagStep - onsetStep, or -1 if the attack was
// never flagged (flagStep < 0).
func DetectionLatency(onsetStep, flagStep int) int {
	if flagStep < 0 {
		return -1
	}
	return flagStep - onsetStep
}
