package radar

import (
	"math"
	"testing"

	"safesense/internal/noise"
	"safesense/internal/prbs"
)

func newSFE(t *testing.T, sched prbs.Schedule, ext BeatExtractor, seed int64) *SignalFrontEnd {
	t.Helper()
	sfe, err := NewSignalFrontEnd(BoschLRR2(), sched, ext, 128, noise.NewSource(seed))
	if err != nil {
		t.Fatal(err)
	}
	return sfe
}

func TestNewSignalFrontEndValidation(t *testing.T) {
	p := BoschLRR2()
	src := noise.NewSource(1)
	sched := prbs.NewFixedSchedule()
	if _, err := NewSignalFrontEnd(p, nil, FFTExtractor{}, 128, src); err == nil {
		t.Fatal("nil schedule should fail")
	}
	if _, err := NewSignalFrontEnd(p, sched, nil, 128, src); err == nil {
		t.Fatal("nil extractor should fail")
	}
	if _, err := NewSignalFrontEnd(p, sched, FFTExtractor{}, 8, src); err == nil {
		t.Fatal("too few samples should fail")
	}
	if _, err := NewSignalFrontEnd(p, sched, FFTExtractor{}, 128, nil); err == nil {
		t.Fatal("nil source should fail")
	}
	bad := p
	bad.SampleRateHz = 0
	if _, err := NewSignalFrontEnd(bad, sched, FFTExtractor{}, 128, src); err == nil {
		t.Fatal("bad params should fail")
	}
}

func TestSignalObserveRecoversTruth(t *testing.T) {
	for _, ext := range []BeatExtractor{FFTExtractor{}, MUSICExtractor{}} {
		sfe := newSFE(t, prbs.NewFixedSchedule(), ext, 2)
		m := sfe.Observe(0, 80, -1.5)
		if m.Challenge {
			t.Fatal("unexpected challenge")
		}
		if math.Abs(m.Distance-80) > 2 {
			t.Fatalf("%s: distance %v, want ~80", ext.Name(), m.Distance)
		}
		if math.Abs(m.RelVelocity-(-1.5)) > 0.8 {
			t.Fatalf("%s: velocity %v, want ~-1.5", ext.Name(), m.RelVelocity)
		}
		if m.IsZero(sfe.ZeroThreshold()) {
			t.Fatalf("%s: target return reads as quiet", ext.Name())
		}
	}
}

func TestSignalChallengeReadsZero(t *testing.T) {
	sfe := newSFE(t, prbs.NewFixedSchedule(5), FFTExtractor{}, 3)
	m := sfe.Observe(5, 80, -1.5)
	if !m.Challenge {
		t.Fatal("expected challenge")
	}
	if m.Distance != 0 || m.RelVelocity != 0 {
		t.Fatalf("challenge output = (%v, %v), want zeros", m.Distance, m.RelVelocity)
	}
	if !m.IsZero(sfe.ZeroThreshold()) {
		t.Fatalf("challenge power %v above threshold", m.Power)
	}
}

func TestSignalOutOfRangeReadsZero(t *testing.T) {
	sfe := newSFE(t, prbs.NewFixedSchedule(), FFTExtractor{}, 4)
	m := sfe.Observe(0, 500, 0)
	if !m.IsZero(sfe.ZeroThreshold()) {
		t.Fatal("out-of-range target should read as noise")
	}
}

func TestShiftSweepMovesBeatFrequency(t *testing.T) {
	p := BoschLRR2()
	s, err := p.SynthesizeSweep(100, 0, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Shift corresponding to +6 m: df = tau * Bs / Ts.
	df := (2 * 6.0 / 299792458.0) * p.SweepBandwidthHz / p.SweepTimeSec
	shifted := ShiftSweep(s, df)
	fbUp, fbDown, err := (FFTExtractor{}).Extract(shifted)
	if err != nil {
		t.Fatal(err)
	}
	d, v := p.FromBeats(fbUp, fbDown)
	if math.Abs(d-106) > 1.0 {
		t.Fatalf("shifted distance = %v, want ~106", d)
	}
	if math.Abs(v) > 0.5 {
		t.Fatalf("shifted velocity = %v, want ~0", v)
	}
}

func TestAddNoiseSweepRaisesPower(t *testing.T) {
	p := BoschLRR2()
	src := noise.NewSource(5)
	s := p.SynthesizeSilence(256, src)
	before := s.Power()
	jammed := AddNoiseSweep(s, 1e-9, src)
	if jammed.Power() < 100*before {
		t.Fatalf("jamming power not visible: %v -> %v", before, jammed.Power())
	}
	// Original sweep untouched.
	if s.Power() != before {
		t.Fatal("AddNoiseSweep mutated input")
	}
}

func TestAddToneSweepPowerAndFrequency(t *testing.T) {
	p := BoschLRR2()
	src := noise.NewSource(6)
	s := p.SynthesizeSilence(256, src)
	fb, _ := p.BeatFrequencies(101, 0)
	spoofed := AddToneSweep(s, fb, 1e-9)
	fbUp, fbDown, err := (FFTExtractor{}).Extract(spoofed)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := p.FromBeats(fbUp, fbDown)
	if math.Abs(d-101) > 2 {
		t.Fatalf("spoofed tone reads as %v m, want ~101", d)
	}
}

func TestSignalMeasureClampsGarbage(t *testing.T) {
	// A pure-noise hot channel must yield a clamped, finite report.
	p := BoschLRR2()
	src := noise.NewSource(7)
	sfe := newSFE(t, prbs.NewFixedSchedule(), FFTExtractor{}, 7)
	s := p.SynthesizeSilence(128, src)
	hot := AddNoiseSweep(s, 1e-8, src)
	m := sfe.Measure(3, hot, false)
	if math.IsNaN(m.Distance) || m.Distance < 0 || m.Distance > p.MaxRangeM*1.2 {
		t.Fatalf("garbage distance %v outside clamp", m.Distance)
	}
	if math.Abs(m.RelVelocity) > 60 {
		t.Fatalf("garbage velocity %v outside clamp", m.RelVelocity)
	}
}
