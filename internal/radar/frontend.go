package radar

import (
	"errors"
	"math"

	"safesense/internal/noise"
	"safesense/internal/prbs"
)

// Measurement is one per-step radar output as delivered to the vehicle's
// control stack (and to the CRA detector before it).
type Measurement struct {
	// K is the discrete time step (seconds in the paper's case study).
	K int
	// Distance and RelVelocity are the radar's reported range (m) and
	// range rate (m/s, positive when the gap grows).
	Distance, RelVelocity float64
	// Power is the average receiver output power over the cycle (W). The
	// CRA detector thresholds this at challenge instants.
	Power float64
	// Challenge records whether the radar suppressed its transmission at
	// this step (k in T_c).
	Challenge bool
}

// IsZero reports whether the receiver output is indistinguishable from the
// noise floor — the expected response at an unattacked challenge instant.
// threshold is an absolute power level in watts.
func (m Measurement) IsZero(threshold float64) bool {
	return m.Power <= threshold
}

// ClosedFormModel maps the link-budget SNR into Gaussian measurement noise
// for the fast measurement pipeline: the standard deviations are anchored
// at a reference distance and scale as 1/sqrt(SNR), i.e. quadratically in
// distance.
type ClosedFormModel struct {
	// DistStdRef / VelStdRef are the 1-sigma distance (m) and range-rate
	// (m/s) errors at RefDist.
	DistStdRef, VelStdRef float64
	// RefDist is the anchoring distance in meters.
	RefDist float64
}

// DefaultClosedFormModel matches LRR2-class measurement accuracy: about
// ±0.5 m range and ±0.12 m/s range-rate at 100 m, degrading with the
// link-budget SNR at longer range. These figures matter for the recovery
// experiments: the RLS estimator free-runs for ~2 minutes, so its distance
// error budget is the level and slope noise of the pre-attack fit
// integrated over the whole window.
func DefaultClosedFormModel() ClosedFormModel {
	return ClosedFormModel{DistStdRef: 0.5, VelStdRef: 0.12, RefDist: 100}
}

// Stds returns the distance and velocity noise standard deviations at
// distance d.
func (c ClosedFormModel) Stds(p Params, d float64) (stdD, stdV float64) {
	refSNR := p.ReceivedPower(c.RefDist, p.TargetRCS) / p.NoiseFloor()
	snr := p.ReceivedPower(d, p.TargetRCS) / p.NoiseFloor()
	scale := math.Sqrt(refSNR / snr)
	return c.DistStdRef * scale, c.VelStdRef * scale
}

// FrontEnd is the CRA-modified radar front end: a Params set, a challenge
// schedule driving the pseudo-random binary modulation m(t), and a noise
// source. It produces the *clean* (pre-attack) measurement stream; attacks
// from internal/attack transform its output the way a jammer or spoofer
// transforms the physical channel.
type FrontEnd struct {
	Params   Params
	Schedule prbs.Schedule
	Model    ClosedFormModel

	src *noise.Source
}

// NewFrontEnd validates the radar parameters and builds a front end.
func NewFrontEnd(p Params, sched prbs.Schedule, src *noise.Source) (*FrontEnd, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if sched == nil {
		return nil, errors.New("radar: nil challenge schedule")
	}
	if src == nil {
		return nil, errors.New("radar: nil noise source")
	}
	return &FrontEnd{Params: p, Schedule: sched, Model: DefaultClosedFormModel(), src: src}, nil
}

// Observe produces the step-k measurement for a true target at distance
// dTrue with range rate vRelTrue using the closed-form pipeline.
//
// At a challenge instant the radar transmits nothing, so absent an attack
// the receiver reports (0, 0) at the noise floor — the zero spikes of the
// paper's figures. Outside the operating range the radar reports the range
// limit at the noise floor (no detectable return).
func (f *FrontEnd) Observe(k int, dTrue, vRelTrue float64) Measurement {
	challenge := f.Schedule.Challenge(k)
	if challenge {
		return Measurement{
			K:         k,
			Challenge: true,
			Power:     f.noisePowerSample(),
		}
	}
	if !f.Params.InRange(dTrue) {
		// No return: clamp the report to the range limit.
		d := math.Min(math.Max(dTrue, f.Params.MinRangeM), f.Params.MaxRangeM)
		return Measurement{K: k, Distance: d, RelVelocity: 0, Power: f.noisePowerSample()}
	}
	stdD, stdV := f.Model.Stds(f.Params, dTrue)
	return Measurement{
		K:           k,
		Distance:    f.src.Gaussian(dTrue, stdD),
		RelVelocity: f.src.Gaussian(vRelTrue, stdV),
		Power:       f.Params.ReceivedPower(dTrue, f.Params.TargetRCS),
	}
}

// noisePowerSample draws a realization of the receiver's noise-floor power
// estimate (chi-squared spread around NoiseFloor), so challenge instants
// are near zero but not exactly zero, as in real hardware.
func (f *FrontEnd) noisePowerSample() float64 {
	nf := f.Params.NoiseFloor()
	v := f.src.Gaussian(nf, nf/4)
	if v < 0 {
		v = 0
	}
	return v
}

// ZeroThreshold returns the detector's power threshold separating "no
// transmission, quiet channel" from "energy present": a safe multiple of
// the noise floor, far below any in-range target return or jammer.
func (f *FrontEnd) ZeroThreshold() float64 {
	return 10 * f.Params.NoiseFloor()
}
