package radar

import (
	"errors"
	"math"

	"safesense/internal/noise"
	"safesense/internal/prbs"
)

// SweepCorruptor is implemented by attacks that operate on the physical
// channel: they transform the dechirped sweep the receiver digitizes, the
// way a jammer's energy or a spoofer's counterfeit reflection would.
type SweepCorruptor interface {
	// CorruptSweep transforms the receiver's sweep at step k. challenge
	// reports whether the radar suppressed its own transmission.
	CorruptSweep(k int, s Sweep, challenge bool) Sweep
}

// SignalFrontEnd is the high-fidelity measurement pipeline: it synthesizes
// the dechirped baseband sweep for the true target (or thermal noise at a
// challenge instant), lets a SweepCorruptor transform it, and extracts the
// measurement with a configurable beat estimator — the chain the paper
// implements with the MATLAB Phased Array Toolbox plus root MUSIC.
type SignalFrontEnd struct {
	Params   Params
	Schedule prbs.Schedule
	// Extractor recovers the beat frequencies (FFTExtractor or
	// MUSICExtractor).
	Extractor BeatExtractor
	// Samples per sweep segment.
	Samples int

	src *noise.Source
}

// NewSignalFrontEnd validates and builds the signal-level front end.
func NewSignalFrontEnd(p Params, sched prbs.Schedule, ext BeatExtractor, samples int, src *noise.Source) (*SignalFrontEnd, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if sched == nil {
		return nil, errors.New("radar: nil challenge schedule")
	}
	if ext == nil {
		return nil, errors.New("radar: nil beat extractor")
	}
	if samples < 32 {
		return nil, errors.New("radar: need at least 32 samples per segment")
	}
	if src == nil {
		return nil, errors.New("radar: nil noise source")
	}
	return &SignalFrontEnd{Params: p, Schedule: sched, Extractor: ext, Samples: samples, src: src}, nil
}

// ObserveSweep produces the receiver's raw sweep at step k for the true
// target, before any attack: thermal noise only at challenge instants or
// out of range, the dechirped target return otherwise.
func (f *SignalFrontEnd) ObserveSweep(k int, dTrue, vRelTrue float64) (s Sweep, challenge bool) {
	challenge = f.Schedule.Challenge(k)
	if challenge || !f.Params.InRange(dTrue) {
		return f.Params.SynthesizeSilence(f.Samples, f.src), challenge
	}
	sw, err := f.Params.SynthesizeSweep(dTrue, vRelTrue, f.Samples, f.src)
	if err != nil {
		// Validated parameters and an in-range target cannot fail;
		// degrade to silence rather than panic.
		return f.Params.SynthesizeSilence(f.Samples, f.src), challenge
	}
	return sw, challenge
}

// Measure runs beat extraction on a (possibly corrupted) sweep and returns
// the step measurement. The receiver reports zeros when the sweep power
// sits at the noise floor (nothing detected — the expected challenge
// response), and clamps physically impossible extractions to the
// receiver's unambiguous limits, as the anti-aliasing chain of a real
// FMCW receiver would.
func (f *SignalFrontEnd) Measure(k int, s Sweep, challenge bool) Measurement {
	m := Measurement{K: k, Challenge: challenge, Power: s.Power()}
	if m.Power <= f.ZeroThreshold() {
		return m // quiet channel: zero output
	}
	fbUp, fbDown, err := f.Extractor.Extract(s)
	if err != nil {
		// Extraction failure on a hot channel: report saturated garbage
		// (the controller-facing equivalent of a blinded receiver).
		m.Distance = f.Params.MaxRangeM
		m.RelVelocity = 0
		return m
	}
	d, v := f.Params.FromBeats(fbUp, fbDown)
	maxD := f.Params.MaxRangeM * 1.2
	m.Distance = clampF(d, 0, maxD)
	m.RelVelocity = clampF(v, -60, 60)
	return m
}

// Observe is the convenience composition for attack-free operation.
func (f *SignalFrontEnd) Observe(k int, dTrue, vRelTrue float64) Measurement {
	s, challenge := f.ObserveSweep(k, dTrue, vRelTrue)
	return f.Measure(k, s, challenge)
}

// ZeroThreshold returns the detector's quiet-channel power threshold.
func (f *SignalFrontEnd) ZeroThreshold() float64 {
	return 10 * f.Params.NoiseFloor()
}

func clampF(v, lo, hi float64) float64 {
	return math.Min(math.Max(v, lo), hi)
}

// ShiftSweep returns a copy of the sweep with both segments shifted in
// frequency by df Hz — the effect of injecting extra round-trip delay
// tau into the reflection, since an FMCW dechirper maps delay to beat
// frequency by df = tau * Bs / Ts.
func ShiftSweep(s Sweep, df float64) Sweep {
	out := Sweep{
		Up:   shiftTone(s.Up, df, s.Fs),
		Down: shiftTone(s.Down, df, s.Fs),
		Fs:   s.Fs,
	}
	return out
}

func shiftTone(x []complex128, df, fs float64) []complex128 {
	out := make([]complex128, len(x))
	w := 2 * math.Pi * df / fs
	for i, v := range x {
		s, c := math.Sincos(w * float64(i))
		out[i] = v * complex(c, s)
	}
	return out
}

// AddNoiseSweep returns a copy of the sweep with circularly-symmetric
// Gaussian noise of the given per-sample power added to both segments —
// the effect of broadband jamming energy reaching the receiver.
func AddNoiseSweep(s Sweep, power float64, src *noise.Source) Sweep {
	return Sweep{
		Up:   addNoise(s.Up, power, src),
		Down: addNoise(s.Down, power, src),
		Fs:   s.Fs,
	}
}

// AddToneSweep returns a copy of the sweep with a complex tone of the given
// frequency and power added to both segments — a spoofer's counterfeit
// return landing in the dechirped band.
func AddToneSweep(s Sweep, freq, power float64) Sweep {
	amp := math.Sqrt(power)
	n := len(s.Up)
	t := tone(n, freq, s.Fs, amp)
	add := func(x []complex128) []complex128 {
		out := make([]complex128, len(x))
		for i, v := range x {
			out[i] = v + t[i%n]
		}
		return out
	}
	return Sweep{Up: add(s.Up), Down: add(s.Down), Fs: s.Fs}
}
