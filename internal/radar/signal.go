package radar

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"safesense/internal/dsp/music"
	"safesense/internal/dsp/spectrum"
	"safesense/internal/dsp/window"
	"safesense/internal/noise"
)

// Sweep holds one triangular-FMCW measurement cycle of dechirped complex
// baseband samples: the up-slope segment carries a tone at fb+ and the
// down-slope segment a tone at fb-.
type Sweep struct {
	Up   []complex128
	Down []complex128
	// Fs is the sample rate the segments were synthesized at.
	Fs float64
}

// SynthesizeSweep produces the dechirped receiver output for a point target
// at distance d with range rate vRel. Each segment has n samples; thermal
// noise at the link-budget SNR is added when src is non-nil. This is the
// substitute for the MATLAB Phased Array System Toolbox simulation: the
// toolbox ultimately hands the estimator exactly this pair of noisy tones.
func (p Params) SynthesizeSweep(d, vRel float64, n int, src *noise.Source) (Sweep, error) {
	if n < 2 {
		return Sweep{}, fmt.Errorf("radar: need at least 2 samples per segment, got %d", n)
	}
	if d <= 0 {
		return Sweep{}, errors.New("radar: non-positive target distance")
	}
	fbUp, fbDown := p.BeatFrequencies(d, vRel)
	amp := math.Sqrt(p.ReceivedPower(d, p.TargetRCS))
	up := tone(n, fbUp, p.SampleRateHz, amp)
	down := tone(n, fbDown, p.SampleRateHz, amp)
	if src != nil {
		nf := p.NoiseFloor()
		up = addNoise(up, nf, src)
		down = addNoise(down, nf, src)
	}
	return Sweep{Up: up, Down: down, Fs: p.SampleRateHz}, nil
}

// SynthesizeSilence produces the receiver output during a CRA challenge
// instant when nothing was transmitted: thermal noise only.
func (p Params) SynthesizeSilence(n int, src *noise.Source) Sweep {
	nf := p.NoiseFloor()
	return Sweep{
		Up:   src.ComplexNoiseVec(n, nf),
		Down: src.ComplexNoiseVec(n, nf),
		Fs:   p.SampleRateHz,
	}
}

func tone(n int, f, fs, amp float64) []complex128 {
	x := make([]complex128, n)
	w := 2 * math.Pi * f / fs
	for i := range x {
		x[i] = cmplx.Rect(amp, w*float64(i))
	}
	return x
}

func addNoise(x []complex128, noisePower float64, src *noise.Source) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = v + src.ComplexGaussian(noisePower)
	}
	return out
}

// Power returns the average received power across both segments, the
// quantity the CRA detector thresholds at challenge instants.
func (s Sweep) Power() float64 {
	return (noise.AveragePower(s.Up) + noise.AveragePower(s.Down)) / 2
}

// BeatExtractor recovers the two beat frequencies from a sweep.
type BeatExtractor interface {
	// Extract returns the estimated (fb+, fb-) in Hz.
	Extract(s Sweep) (fbUp, fbDown float64, err error)
	// Name identifies the extractor in benchmark output.
	Name() string
}

// FFTExtractor estimates each segment's beat frequency from the dominant
// peak of a Hann-windowed periodogram with parabolic interpolation.
type FFTExtractor struct{}

// Name implements BeatExtractor.
func (FFTExtractor) Name() string { return "fft" }

// Extract implements BeatExtractor.
func (FFTExtractor) Extract(s Sweep) (float64, float64, error) {
	w := window.Hann(len(s.Up))
	fbUp, err := spectrum.DominantFrequency(s.Up, w, s.Fs)
	if err != nil {
		return 0, 0, fmt.Errorf("radar: up-segment: %w", err)
	}
	if len(s.Down) != len(s.Up) {
		w = window.Hann(len(s.Down))
	}
	fbDown, err := spectrum.DominantFrequency(s.Down, w, s.Fs)
	if err != nil {
		return 0, 0, fmt.Errorf("radar: down-segment: %w", err)
	}
	return fbUp, fbDown, nil
}

// MUSICExtractor estimates each segment's beat frequency with root-MUSIC,
// the paper's choice ("The root MUSIC algorithm is used to extract beat
// frequencies from radar data").
type MUSICExtractor struct {
	// Order is the covariance order (default 12).
	Order int
}

// Name implements BeatExtractor.
func (MUSICExtractor) Name() string { return "root-music" }

// Extract implements BeatExtractor.
func (m MUSICExtractor) Extract(s Sweep) (float64, float64, error) {
	order := m.Order
	if order == 0 {
		order = 12
	}
	est, err := music.New(music.Config{Order: order, NumSignals: 1})
	if err != nil {
		return 0, 0, err
	}
	fbUp, err := segmentFreq(est, s.Up, s.Fs)
	if err != nil {
		return 0, 0, fmt.Errorf("radar: up-segment: %w", err)
	}
	fbDown, err := segmentFreq(est, s.Down, s.Fs)
	if err != nil {
		return 0, 0, fmt.Errorf("radar: down-segment: %w", err)
	}
	return fbUp, fbDown, nil
}

func segmentFreq(est *music.Estimator, x []complex128, fs float64) (float64, error) {
	ws, err := est.Frequencies(x)
	if err != nil {
		return 0, err
	}
	// Normalized rad/sample -> Hz. Beat tones are positive by
	// construction; a negative angle means the tone aliased past pi.
	f := ws[0] * fs / (2 * math.Pi)
	if f < 0 {
		f += fs
	}
	return f, nil
}

// MeasureSweep runs a full signal-level measurement: synthesize the
// dechirped sweep for the true target, extract beat frequencies with the
// given extractor, and convert to distance and range rate via Eqns 7–8.
func (p Params) MeasureSweep(dTrue, vRelTrue float64, n int, ext BeatExtractor, src *noise.Source) (d, vRel float64, err error) {
	s, err := p.SynthesizeSweep(dTrue, vRelTrue, n, src)
	if err != nil {
		return 0, 0, err
	}
	fbUp, fbDown, err := ext.Extract(s)
	if err != nil {
		return 0, 0, err
	}
	d, vRel = p.FromBeats(fbUp, fbDown)
	return d, vRel, nil
}
