package radar

import (
	"math"
	"testing"

	"safesense/internal/noise"
	"safesense/internal/prbs"
)

func TestSynthesizeSweepNoiseless(t *testing.T) {
	p := BoschLRR2()
	s, err := p.SynthesizeSweep(120, -1.5, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Up) != 512 || len(s.Down) != 512 {
		t.Fatal("wrong segment lengths")
	}
	// Segment power equals the link-budget received power.
	want := p.ReceivedPower(120, p.TargetRCS)
	if got := noise.AveragePower(s.Up); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("up power = %v, want %v", got, want)
	}
}

func TestSynthesizeSweepValidation(t *testing.T) {
	p := BoschLRR2()
	if _, err := p.SynthesizeSweep(100, 0, 1, nil); err == nil {
		t.Fatal("n=1 should fail")
	}
	if _, err := p.SynthesizeSweep(-5, 0, 64, nil); err == nil {
		t.Fatal("negative distance should fail")
	}
}

func TestFFTExtractorRecoversTruth(t *testing.T) {
	p := BoschLRR2()
	src := noise.NewSource(1)
	d, v, err := p.MeasureSweep(100, -1.2, 1024, FFTExtractor{}, src)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-100) > 1.5 {
		t.Fatalf("FFT distance = %v, want ~100", d)
	}
	if math.Abs(v-(-1.2)) > 0.6 {
		t.Fatalf("FFT velocity = %v, want ~-1.2", v)
	}
}

func TestMUSICExtractorRecoversTruth(t *testing.T) {
	p := BoschLRR2()
	src := noise.NewSource(2)
	d, v, err := p.MeasureSweep(100, -1.2, 256, MUSICExtractor{}, src)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-100) > 1.0 {
		t.Fatalf("MUSIC distance = %v, want ~100", d)
	}
	if math.Abs(v-(-1.2)) > 0.5 {
		t.Fatalf("MUSIC velocity = %v, want ~-1.2", v)
	}
}

func TestMUSICExtractorAcrossRange(t *testing.T) {
	p := BoschLRR2()
	src := noise.NewSource(3)
	for _, d := range []float64{10, 50, 150} {
		got, _, err := p.MeasureSweep(d, 0, 256, MUSICExtractor{}, src)
		if err != nil {
			t.Fatalf("d=%v: %v", d, err)
		}
		if math.Abs(got-d) > 1.0+d*0.02 {
			t.Fatalf("d=%v: measured %v", d, got)
		}
	}
}

func TestExtractorNames(t *testing.T) {
	if (FFTExtractor{}).Name() != "fft" {
		t.Fatal("FFT extractor name")
	}
	if (MUSICExtractor{}).Name() != "root-music" {
		t.Fatal("MUSIC extractor name")
	}
}

func TestSweepPowerChallengeVsTarget(t *testing.T) {
	p := BoschLRR2()
	src := noise.NewSource(4)
	sig, err := p.SynthesizeSweep(100, 0, 256, src)
	if err != nil {
		t.Fatal(err)
	}
	quiet := p.SynthesizeSilence(256, src)
	// Target return power must dominate the challenge-silence power.
	if sig.Power() < 5*quiet.Power() {
		t.Fatalf("signal power %v not well above silence power %v", sig.Power(), quiet.Power())
	}
	// Silence power must sit near the noise floor.
	nf := p.NoiseFloor()
	if quiet.Power() > 3*nf || quiet.Power() < nf/3 {
		t.Fatalf("silence power %v vs noise floor %v", quiet.Power(), nf)
	}
}

func newTestFrontEnd(t *testing.T, sched prbs.Schedule, seed int64) *FrontEnd {
	t.Helper()
	fe, err := NewFrontEnd(BoschLRR2(), sched, noise.NewSource(seed))
	if err != nil {
		t.Fatal(err)
	}
	return fe
}

func TestFrontEndObserveClean(t *testing.T) {
	fe := newTestFrontEnd(t, prbs.NewFixedSchedule(), 5)
	m := fe.Observe(3, 100, -1)
	if m.Challenge {
		t.Fatal("unexpected challenge")
	}
	if math.Abs(m.Distance-100) > 8 || math.Abs(m.RelVelocity-(-1)) > 5 {
		t.Fatalf("measurement (%v, %v) too far from truth", m.Distance, m.RelVelocity)
	}
	if m.IsZero(fe.ZeroThreshold()) {
		t.Fatal("target return must exceed the zero threshold")
	}
}

func TestFrontEndChallengeIsZero(t *testing.T) {
	fe := newTestFrontEnd(t, prbs.NewFixedSchedule(7), 6)
	m := fe.Observe(7, 100, -1)
	if !m.Challenge {
		t.Fatal("expected challenge at k=7")
	}
	if m.Distance != 0 || m.RelVelocity != 0 {
		t.Fatalf("challenge measurement = (%v, %v), want zeros", m.Distance, m.RelVelocity)
	}
	if !m.IsZero(fe.ZeroThreshold()) {
		t.Fatalf("challenge power %v above threshold %v", m.Power, fe.ZeroThreshold())
	}
}

func TestFrontEndOutOfRange(t *testing.T) {
	fe := newTestFrontEnd(t, prbs.NewFixedSchedule(), 7)
	m := fe.Observe(0, 500, -1)
	if m.Distance != 200 {
		t.Fatalf("out-of-range report = %v, want clamp to 200", m.Distance)
	}
	m2 := fe.Observe(1, 1, -1)
	if m2.Distance != 2 {
		t.Fatalf("below-range report = %v, want clamp to 2", m2.Distance)
	}
}

func TestFrontEndNoiseScalesWithDistance(t *testing.T) {
	fe := newTestFrontEnd(t, prbs.NewFixedSchedule(), 8)
	spread := func(d float64) float64 {
		var s2 float64
		n := 400
		for i := 0; i < n; i++ {
			m := fe.Observe(i, d, 0)
			s2 += (m.Distance - d) * (m.Distance - d)
		}
		return math.Sqrt(s2 / float64(n))
	}
	near, far := spread(50), spread(180)
	if far <= near {
		t.Fatalf("noise at 180 m (%v) should exceed noise at 50 m (%v)", far, near)
	}
}

func TestNewFrontEndValidation(t *testing.T) {
	src := noise.NewSource(1)
	if _, err := NewFrontEnd(BoschLRR2(), nil, src); err == nil {
		t.Fatal("nil schedule should fail")
	}
	if _, err := NewFrontEnd(BoschLRR2(), prbs.NewFixedSchedule(), nil); err == nil {
		t.Fatal("nil source should fail")
	}
	bad := BoschLRR2()
	bad.SampleRateHz = 0
	if _, err := NewFrontEnd(bad, prbs.NewFixedSchedule(), src); err == nil {
		t.Fatal("invalid params should fail")
	}
}

func TestClosedFormModelStds(t *testing.T) {
	p := BoschLRR2()
	m := DefaultClosedFormModel()
	d100, v100 := m.Stds(p, 100)
	if math.Abs(d100-m.DistStdRef) > 1e-9 || math.Abs(v100-m.VelStdRef) > 1e-9 {
		t.Fatalf("reference stds = (%v, %v)", d100, v100)
	}
	d200, _ := m.Stds(p, 200)
	// 1/sqrt(SNR) scaling: doubling distance quadruples the std.
	if math.Abs(d200/d100-4) > 1e-6 {
		t.Fatalf("std scaling = %v, want 4", d200/d100)
	}
}
