// Package radar models the 77 GHz FMCW long-range automotive radar of the
// paper's Section 4.1: triangular frequency-modulated continuous-wave
// ranging with beat-frequency extraction (Eqns 5–8), the received-power
// link budget (Eqn 9), dechirped baseband signal synthesis, and the three
// measurement pipelines (closed-form, FFT periodogram, root-MUSIC) the
// simulation and ablations use. The challenge-response front end that
// suppresses transmission at pseudo-random instants lives here too, since
// the paper implements CRA by modifying the radar's modulation unit.
package radar

import (
	"errors"
	"fmt"
	"math"

	"safesense/internal/units"
)

// Params holds the physical radar parameters. The zero value is not valid;
// start from BoschLRR2() and override as needed.
type Params struct {
	// CarrierHz is the carrier frequency (77 GHz for the LRR2).
	CarrierHz float64
	// SweepBandwidthHz is Bs, the FMCW sweep bandwidth (150 MHz).
	SweepBandwidthHz float64
	// SweepTimeSec is Ts, the duration of one sweep slope (2 ms).
	SweepTimeSec float64
	// WavelengthM is lambda (3.89 mm at 77 GHz).
	WavelengthM float64
	// TransmitPowerW is Pt, the maximum transmitted power (10 mW).
	TransmitPowerW float64
	// AntennaGainDBi is G (28 dBi).
	AntennaGainDBi float64
	// SystemLossDB is L (0.10 dB).
	SystemLossDB float64
	// OperatingBandwidthHz is B, the receiver operating bandwidth used in
	// the jamming power ratio (matched to the sweep bandwidth).
	OperatingBandwidthHz float64
	// MinRangeM and MaxRangeM bound the radar's operating range
	// (2–200 m for the Bosch LRR2).
	MinRangeM, MaxRangeM float64
	// SampleRateHz is the complex baseband sample rate of the dechirped
	// receiver output used by the signal-level pipelines.
	SampleRateHz float64
	// NoiseFigureDB is the receiver noise figure applied on top of the
	// thermal floor kT * SampleRateHz.
	NoiseFigureDB float64
	// TargetRCS is sigma, the assumed scattering cross-section of the
	// tracked vehicle in m^2.
	TargetRCS float64
}

// BoschLRR2 returns the parameter set of the Bosch LRR2 long-range radar
// used in the paper's case study.
func BoschLRR2() Params {
	return Params{
		CarrierHz:            77 * units.GHz,
		SweepBandwidthHz:     150 * units.MHz,
		SweepTimeSec:         2e-3,
		WavelengthM:          3.89 * units.Millimeter,
		TransmitPowerW:       10e-3,
		AntennaGainDBi:       28,
		SystemLossDB:         0.10,
		OperatingBandwidthHz: 150 * units.MHz,
		MinRangeM:            2,
		MaxRangeM:            200,
		SampleRateHz:         1 * units.MHz,
		NoiseFigureDB:        10,
		TargetRCS:            10,
	}
}

// Validate checks the parameter set for physical consistency.
func (p Params) Validate() error {
	switch {
	case p.CarrierHz <= 0:
		return errors.New("radar: carrier frequency must be positive")
	case p.SweepBandwidthHz <= 0:
		return errors.New("radar: sweep bandwidth must be positive")
	case p.SweepTimeSec <= 0:
		return errors.New("radar: sweep time must be positive")
	case p.WavelengthM <= 0:
		return errors.New("radar: wavelength must be positive")
	case p.TransmitPowerW <= 0:
		return errors.New("radar: transmit power must be positive")
	case p.MinRangeM <= 0 || p.MaxRangeM <= p.MinRangeM:
		return fmt.Errorf("radar: invalid range bounds [%v, %v]", p.MinRangeM, p.MaxRangeM)
	case p.SampleRateHz <= 0:
		return errors.New("radar: sample rate must be positive")
	case p.TargetRCS <= 0:
		return errors.New("radar: target RCS must be positive")
	}
	// The highest beat frequency must be sampleable.
	fbMax, _ := p.BeatFrequencies(p.MaxRangeM, 0)
	if fbMax >= p.SampleRateHz/2 {
		return fmt.Errorf("radar: max beat frequency %.0f Hz exceeds Nyquist %.0f Hz", fbMax, p.SampleRateHz/2)
	}
	return nil
}

// RangeSlope returns the range-to-beat-frequency slope 2*Bs/(Ts*c) in
// Hz per meter.
func (p Params) RangeSlope() float64 {
	return 2 * p.SweepBandwidthHz / (p.SweepTimeSec * units.SpeedOfLight)
}

// DopplerShift returns the Doppler frequency 2*vRel/lambda in Hz for a
// range rate vRel (m/s, positive when the target recedes).
func (p Params) DopplerShift(vRel float64) float64 {
	return 2 * vRel / p.WavelengthM
}

// BeatFrequencies returns the two beat frequencies of the triangular FMCW
// waveform for a target at distance d moving with range rate vRel
// (paper Eqns 5–6):
//
//	fb+ = (2 d / c) (Bs / Ts) - 2 vRel / lambda   (up-slope)
//	fb- = (2 d / c) (Bs / Ts) + 2 vRel / lambda   (down-slope)
func (p Params) BeatFrequencies(d, vRel float64) (fbUp, fbDown float64) {
	fr := d * p.RangeSlope()
	fd := p.DopplerShift(vRel)
	return fr - fd, fr + fd
}

// FromBeats inverts BeatFrequencies (paper Eqns 7–8):
//
//	d    = Ts c (fb+ + fb-) / (4 Bs)
//	vRel = lambda (fb- - fb+) / 4
func (p Params) FromBeats(fbUp, fbDown float64) (d, vRel float64) {
	d = p.SweepTimeSec * units.SpeedOfLight * (fbUp + fbDown) / (4 * p.SweepBandwidthHz)
	vRel = p.WavelengthM * (fbDown - fbUp) / 4
	return d, vRel
}

// ReceivedPower returns Pr per the radar range equation (paper Eqn 9):
//
//	Pr = Pt G^2 lambda^2 sigma / ((4 pi)^3 d^4 L)
func (p Params) ReceivedPower(d, sigma float64) float64 {
	if d <= 0 {
		return math.Inf(1)
	}
	g := units.DBToLinear(p.AntennaGainDBi)
	l := units.DBToLinear(p.SystemLossDB)
	num := p.TransmitPowerW * g * g * p.WavelengthM * p.WavelengthM * sigma
	den := math.Pow(4*math.Pi, 3) * math.Pow(d, 4) * l
	return num / den
}

// NoiseFloor returns the receiver noise power in the sampled baseband
// bandwidth: kT * SampleRateHz * NF.
func (p Params) NoiseFloor() float64 {
	return units.ThermalNoisePower(units.StandardNoiseTemp, p.SampleRateHz) *
		units.DBToLinear(p.NoiseFigureDB)
}

// SNRdB returns the per-sample signal-to-noise ratio of the dechirped
// receiver output for a target at distance d with the configured RCS.
func (p Params) SNRdB(d float64) float64 {
	return units.LinearToDB(p.ReceivedPower(d, p.TargetRCS) / p.NoiseFloor())
}

// InRange reports whether a distance lies within the radar's operating
// range.
func (p Params) InRange(d float64) bool {
	return d >= p.MinRangeM && d <= p.MaxRangeM
}

// MaxUnambiguousBeat returns the largest beat frequency the radar will
// report, corresponding to MaxRangeM plus the largest resolvable Doppler.
func (p Params) MaxUnambiguousBeat() float64 {
	fb, _ := p.BeatFrequencies(p.MaxRangeM, -50)
	_, fb2 := p.BeatFrequencies(p.MaxRangeM, 50)
	return math.Max(fb, fb2)
}
