package radar

import (
	"math"
	"testing"
	"testing/quick"

	"safesense/internal/units"
)

func TestBoschLRR2Valid(t *testing.T) {
	if err := BoschLRR2().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	base := BoschLRR2()
	cases := []func(*Params){
		func(p *Params) { p.CarrierHz = 0 },
		func(p *Params) { p.SweepBandwidthHz = -1 },
		func(p *Params) { p.SweepTimeSec = 0 },
		func(p *Params) { p.WavelengthM = 0 },
		func(p *Params) { p.TransmitPowerW = 0 },
		func(p *Params) { p.MinRangeM = 0 },
		func(p *Params) { p.MaxRangeM = 1 },
		func(p *Params) { p.SampleRateHz = 0 },
		func(p *Params) { p.TargetRCS = 0 },
		func(p *Params) { p.SampleRateHz = 100e3 }, // Nyquist violation at 200 m
	}
	for i, mutate := range cases {
		p := base
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestBeatFrequenciesKnownValues(t *testing.T) {
	p := BoschLRR2()
	// At d = 100 m, stationary: fr = 2*100*150e6/(0.002*c) ≈ 100.07 kHz.
	fbUp, fbDown := p.BeatFrequencies(100, 0)
	fr := 2 * 100 * 150e6 / (0.002 * units.SpeedOfLight)
	if math.Abs(fbUp-fr) > 1e-6 || math.Abs(fbDown-fr) > 1e-6 {
		t.Fatalf("beats = (%v, %v), want %v", fbUp, fbDown, fr)
	}
	// Moving target: Doppler splits the beats symmetrically.
	fbUp, fbDown = p.BeatFrequencies(100, -2) // closing at 2 m/s
	fd := 2 * (-2.0) / p.WavelengthM
	if math.Abs((fbDown-fbUp)-2*fd) > 1e-6 {
		t.Fatalf("Doppler split = %v, want %v", fbDown-fbUp, 2*fd)
	}
}

func TestBeatsRoundTripProperty(t *testing.T) {
	p := BoschLRR2()
	f := func(dRaw, vRaw float64) bool {
		if math.IsNaN(dRaw) || math.IsNaN(vRaw) {
			return true
		}
		d := 2 + math.Mod(math.Abs(dRaw), 198)
		v := math.Mod(vRaw, 50)
		fbUp, fbDown := p.BeatFrequencies(d, v)
		d2, v2 := p.FromBeats(fbUp, fbDown)
		return math.Abs(d2-d) < 1e-9*(1+d) && math.Abs(v2-v) < 1e-9*(1+math.Abs(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFromBeatsUsesPaperEquations(t *testing.T) {
	p := BoschLRR2()
	// Eqn 7/8 with hand-picked beats.
	fbUp, fbDown := 90e3, 110e3
	d, v := p.FromBeats(fbUp, fbDown)
	wantD := p.SweepTimeSec * units.SpeedOfLight * (fbUp + fbDown) / (4 * p.SweepBandwidthHz)
	wantV := p.WavelengthM * (fbDown - fbUp) / 4
	if math.Abs(d-wantD) > 1e-9 || math.Abs(v-wantV) > 1e-12 {
		t.Fatalf("FromBeats = (%v, %v), want (%v, %v)", d, v, wantD, wantV)
	}
}

func TestReceivedPowerFourthPowerLaw(t *testing.T) {
	p := BoschLRR2()
	p1 := p.ReceivedPower(50, p.TargetRCS)
	p2 := p.ReceivedPower(100, p.TargetRCS)
	// Doubling distance divides power by 16.
	if math.Abs(p1/p2-16) > 1e-9 {
		t.Fatalf("power ratio = %v, want 16", p1/p2)
	}
}

func TestReceivedPowerMagnitude(t *testing.T) {
	// Sanity of absolute level: ~3e-12 W at 100 m for a 10 m^2 target
	// with the LRR2 link budget.
	p := BoschLRR2()
	pr := p.ReceivedPower(100, 10)
	if pr < 1e-12 || pr > 1e-11 {
		t.Fatalf("Pr(100m) = %v W, want ~3e-12", pr)
	}
}

func TestSNRMonotoneDecreasing(t *testing.T) {
	p := BoschLRR2()
	prev := math.Inf(1)
	for d := 2.0; d <= 200; d += 5 {
		s := p.SNRdB(d)
		if s >= prev {
			t.Fatalf("SNR not decreasing at %v m", d)
		}
		prev = s
	}
	// Positive SNR across most of the operating range.
	if p.SNRdB(100) < 10 {
		t.Fatalf("SNR(100m) = %v dB, want > 10", p.SNRdB(100))
	}
}

func TestInRange(t *testing.T) {
	p := BoschLRR2()
	for _, c := range []struct {
		d    float64
		want bool
	}{{1.9, false}, {2, true}, {100, true}, {200, true}, {200.1, false}} {
		if got := p.InRange(c.d); got != c.want {
			t.Fatalf("InRange(%v) = %v", c.d, got)
		}
	}
}

func TestRoundTripDelayConsistency(t *testing.T) {
	// The delay tau = 2d/c inserted by a spoofer maps back to a distance
	// offset via the range slope: f_extra = tau * slope * c/2... i.e. an
	// extra delay of 2*6/c seconds must read as +6 m.
	p := BoschLRR2()
	extra := units.RoundTripDelay(6)
	df := extra * p.SweepBandwidthHz / p.SweepTimeSec // beat shift from delay
	fbUp, fbDown := p.BeatFrequencies(100, 0)
	d, v := p.FromBeats(fbUp+df, fbDown+df)
	if math.Abs(d-106) > 1e-6 {
		t.Fatalf("spoofed distance = %v, want 106", d)
	}
	if math.Abs(v) > 1e-9 {
		t.Fatalf("spoofed velocity = %v, want 0", v)
	}
}
