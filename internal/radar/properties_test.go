package radar

import (
	"math"
	"testing"
	"testing/quick"

	"safesense/internal/noise"
)

// TestReceivedPowerMonotoneProperty: Pr strictly decreases with distance
// and increases with RCS.
func TestReceivedPowerMonotoneProperty(t *testing.T) {
	p := BoschLRR2()
	f := func(dRaw, sRaw float64) bool {
		if math.IsNaN(dRaw) || math.IsNaN(sRaw) {
			return true
		}
		d := 2 + math.Mod(math.Abs(dRaw), 190)
		sigma := 1 + math.Mod(math.Abs(sRaw), 40)
		if p.ReceivedPower(d+5, sigma) >= p.ReceivedPower(d, sigma) {
			return false
		}
		return p.ReceivedPower(d, sigma*2) > p.ReceivedPower(d, sigma)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestBeatFrequencySymmetryProperty: the Doppler shift splits the two
// beats symmetrically about the range beat, for any in-range geometry.
func TestBeatFrequencySymmetryProperty(t *testing.T) {
	p := BoschLRR2()
	f := func(dRaw, vRaw float64) bool {
		if math.IsNaN(dRaw) || math.IsNaN(vRaw) {
			return true
		}
		d := 2 + math.Mod(math.Abs(dRaw), 198)
		v := math.Mod(vRaw, 50)
		up, down := p.BeatFrequencies(d, v)
		mid := (up + down) / 2
		wantMid := d * p.RangeSlope()
		return math.Abs(mid-wantMid) <= 1e-9*(1+wantMid)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSweepPowerMatchesLinkBudgetProperty: the synthesized (noiseless)
// sweep's power equals the Eqn 9 prediction for any in-range target.
func TestSweepPowerMatchesLinkBudgetProperty(t *testing.T) {
	p := BoschLRR2()
	f := func(dRaw float64) bool {
		if math.IsNaN(dRaw) {
			return true
		}
		d := 2 + math.Mod(math.Abs(dRaw), 198)
		s, err := p.SynthesizeSweep(d, 0, 64, nil)
		if err != nil {
			return false
		}
		want := p.ReceivedPower(d, p.TargetRCS)
		return math.Abs(s.Power()-want) <= 1e-9*want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestShiftSweepPreservesPowerProperty: a pure frequency shift is a
// unitary operation on the sweep.
func TestShiftSweepPreservesPowerProperty(t *testing.T) {
	p := BoschLRR2()
	src := noise.NewSource(3)
	f := func(dfRaw float64) bool {
		if math.IsNaN(dfRaw) {
			return true
		}
		df := math.Mod(dfRaw, 1e5)
		s, err := p.SynthesizeSweep(80, -1, 64, src)
		if err != nil {
			return false
		}
		shifted := ShiftSweep(s, df)
		return math.Abs(shifted.Power()-s.Power()) <= 1e-9*(1+s.Power())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFromBeatsLinearityProperty: FromBeats is linear in the beat pair.
func TestFromBeatsLinearityProperty(t *testing.T) {
	p := BoschLRR2()
	f := func(a1, a2, b1, b2 float64) bool {
		for _, v := range []float64{a1, a2, b1, b2} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				return true
			}
		}
		dA, vA := p.FromBeats(a1, a2)
		dB, vB := p.FromBeats(b1, b2)
		dS, vS := p.FromBeats(a1+b1, a2+b2)
		return math.Abs(dS-(dA+dB)) <= 1e-6*(1+math.Abs(dS)) &&
			math.Abs(vS-(vA+vB)) <= 1e-6*(1+math.Abs(vS))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
