package perf

import (
	"math"
	"sort"
)

// This file is the comparator's statistical core: a two-sided
// Mann-Whitney U test (normal approximation with tie and continuity
// corrections, the benchstat approach for the sample sizes a perf run
// produces), Cliff's delta as the effect size, and the median helpers.
// Everything guards against NaN/Inf samples and degenerate inputs —
// identical sample sets, all-zero series (allocation counts), and tiny
// N — because the regression gate must fail loudly on real slowdowns
// and never on arithmetic edge cases.

// minSamplesPerSide is the smallest per-side sample count the U test
// accepts: below it the normal approximation is meaningless (with 3 vs
// 3 samples the best achievable two-sided exact p is 0.1), so the
// comparator reports "insufficient data" instead of a fake p-value.
const minSamplesPerSide = 4

// finite returns the finite entries of samples (NaN and ±Inf dropped)
// plus the number removed.
func finite(samples []float64) (out []float64, dropped int) {
	out = make([]float64, 0, len(samples))
	for _, v := range samples {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			dropped++
			continue
		}
		out = append(out, v)
	}
	return out, dropped
}

// median returns the sample median (ok=false on an empty set). Non-
// finite values must already be filtered.
func median(samples []float64) (m float64, ok bool) {
	if len(samples) == 0 {
		return 0, false
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2], true
	}
	return (s[n/2-1] + s[n/2]) / 2, true
}

// MannWhitney runs the two-sided Mann-Whitney U test on x (old) vs y
// (new). It returns the p-value for H0 "both sides come from the same
// distribution" and ok=false when the inputs cannot support a verdict:
// fewer than minSamplesPerSide finite samples on either side. Non-finite
// samples are dropped before ranking. Fully tied data (every sample
// equal) yields p = 1: no evidence of a shift.
func MannWhitney(x, y []float64) (p float64, ok bool) {
	x, _ = finite(x)
	y, _ = finite(y)
	n1, n2 := len(x), len(y)
	if n1 < minSamplesPerSide || n2 < minSamplesPerSide {
		return 0, false
	}

	// Rank the pooled samples, averaging ranks across ties.
	type tagged struct {
		v    float64
		from int // 0 = x, 1 = y
	}
	all := make([]tagged, 0, n1+n2)
	for _, v := range x {
		all = append(all, tagged{v, 0})
	}
	for _, v := range y {
		all = append(all, tagged{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	n := n1 + n2
	ranks := make([]float64, n)
	tieTerm := 0.0 // sum of t^3 - t over tie groups
	for i := 0; i < n; {
		j := i
		for j < n && !(all[j].v > all[i].v) { // extend across the tie group
			j++
		}
		avg := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}

	r1 := 0.0
	for i, tg := range all {
		if tg.from == 0 {
			r1 += ranks[i]
		}
	}
	f1, f2, fn := float64(n1), float64(n2), float64(n)
	u1 := r1 - f1*(f1+1)/2
	mu := f1 * f2 / 2

	// Tie-corrected variance of U; zero means every sample is equal.
	variance := f1 * f2 / 12 * ((fn + 1) - tieTerm/(fn*(fn-1)))
	if variance <= 0 {
		return 1, true
	}
	// Continuity correction pulls |U - mu| toward zero by 1/2.
	dev := math.Abs(u1-mu) - 0.5
	if dev < 0 {
		dev = 0
	}
	z := dev / math.Sqrt(variance)
	return 2 * normalUpperTail(z), true
}

// normalUpperTail is P(Z > z) for the standard normal, clamped to [0, 1].
func normalUpperTail(z float64) float64 {
	p := 0.5 * math.Erfc(z/math.Sqrt2)
	if p < 0 {
		return 0
	}
	if p > 0.5 {
		return 0.5
	}
	return p
}

// CliffsDelta is the effect size in [-1, 1]: +1 means every new sample
// exceeds every old sample (for time/alloc metrics, "new is strictly
// slower"), -1 the reverse, 0 full overlap. Ties count half. Non-finite
// samples are dropped; an empty side yields 0.
func CliffsDelta(old, new []float64) float64 {
	old, _ = finite(old)
	new, _ = finite(new)
	if len(old) == 0 || len(new) == 0 {
		return 0
	}
	more := 0.0
	for _, b := range new {
		for _, a := range old {
			switch {
			case b > a:
				more++
			case b < a:
				more--
			}
		}
	}
	return more / float64(len(old)*len(new))
}
