package perf

import (
	"bytes"
	"runtime/pprof"

	"safesense/internal/obs/profile"
)

// ProfileSummary is the optional per-scenario CPU attribution embedded
// in a BENCH document when the capture ran with profiling on: how the
// scenario's CPU time split across the simulator's pipeline-phase pprof
// labels, plus the top functions by flat share. It rides in an
// omitempty field, so documents captured without -profile are
// byte-identical to the pre-profile schema and no SchemaVersion bump is
// needed.
type ProfileSummary struct {
	// TotalSamples counts the CPU samples the window collected; tiny
	// values (< ~50) mean the shares are noisy.
	TotalSamples int `json:"total_samples"`
	// PhaseCPUShare maps sim phase label values (plus "(unlabeled)") to
	// their fraction of the scenario's CPU total; the values sum to 1.
	PhaseCPUShare map[string]float64 `json:"phase_cpu_share,omitempty"`
	// Top is the union of the top functions by flat and cumulative CPU.
	Top []profile.FuncStat `json:"top,omitempty"`
}

// Summary widens the embedded digest back into a profile.Summary so the
// share-based profile.Diff machinery can compare two BENCH captures.
// Flat values survive in Top; phase totals do not round-trip (only
// shares are stored), so LabelShare.Total stays zero.
func (ps *ProfileSummary) Summary() *profile.Summary {
	if ps == nil {
		return nil
	}
	s := &profile.Summary{
		SampleType:   "cpu",
		TotalSamples: ps.TotalSamples,
		Top:          ps.Top,
	}
	for _, f := range ps.Top {
		if f.Flat > s.Total {
			// Best-effort total for display; shares are precomputed.
			s.Total = f.Flat
		}
	}
	for _, phase := range sortedFloatKeys(ps.PhaseCPUShare) {
		s.Phases = append(s.Phases, profile.LabelShare{
			Value: phase, Share: ps.PhaseCPUShare[phase],
		})
	}
	return s
}

// scenarioProfile wraps one scenario's measured repetitions in a CPU
// profile with the sim phase labels enabled.
type scenarioProfile struct {
	buf bytes.Buffer
	on  bool
}

// start enables phase labeling and begins the CPU capture. A
// StartCPUProfile failure (another capture owns the profiler) is not
// fatal: the scenario still measures, it just carries no attribution.
func (sp *scenarioProfile) start() {
	profile.Enable()
	if err := pprof.StartCPUProfile(&sp.buf); err != nil {
		profile.Disable()
		return
	}
	sp.on = true
}

// finish stops the capture and digests it. Decode or summarize failures
// yield nil — attribution is advisory and never fails a measurement.
func (sp *scenarioProfile) finish() *ProfileSummary {
	if !sp.on {
		return nil
	}
	pprof.StopCPUProfile()
	profile.Disable()
	sp.on = false
	p, err := profile.Decode(sp.buf.Bytes())
	if err != nil {
		return nil
	}
	sum, err := profile.Summarize(p, profile.SummaryOptions{})
	if err != nil {
		return nil
	}
	ps := &ProfileSummary{TotalSamples: sum.TotalSamples, Top: sum.Top}
	if len(sum.Phases) > 0 {
		ps.PhaseCPUShare = make(map[string]float64, len(sum.Phases))
		for _, ls := range sum.Phases {
			ps.PhaseCPUShare[ls.Value] = ls.Share
		}
	}
	return ps
}

// HotFunctionMinDeltaShare is the flat-share growth floor (one
// percentage point) below which a function is not blamed for a
// regression.
const HotFunctionMinDeltaShare = 0.01

// AttributeRegressions annotates gate findings with the functions whose
// flat CPU share grew between the two captures' embedded profiles, so
// the gate names suspects instead of just the scenario. Regressions
// whose scenario lacks a profile on either side pass through unchanged.
func AttributeRegressions(regs []Regression, old, new *Run) []Regression {
	if len(regs) == 0 {
		return regs
	}
	profiles := func(r *Run) map[string]*ProfileSummary {
		m := make(map[string]*ProfileSummary, len(r.Scenarios))
		for i := range r.Scenarios {
			m[r.Scenarios[i].Name] = r.Scenarios[i].Profile
		}
		return m
	}
	oldProf, newProf := profiles(old), profiles(new)
	for i := range regs {
		before, after := oldProf[regs[i].Scenario], newProf[regs[i].Scenario]
		if before == nil || after == nil {
			continue
		}
		d := profile.Diff(before.Summary(), after.Summary())
		regs[i].HotFunctions = d.Growers(HotFunctionMinDeltaShare)
	}
	return regs
}
