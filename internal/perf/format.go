package perf

import (
	"fmt"
	"io"
	"strings"
)

// FormatRun renders a run document as a human-readable table: one line
// per scenario with the median of each core metric.
func FormatRun(w io.Writer, run *Run) {
	fmt.Fprintf(w, "perf run: %d scenarios, %d reps (warmup %d), host %s/%s cpus=%d %s",
		len(run.Scenarios), run.Config.Reps, run.Config.Warmup,
		run.Host.OS, run.Host.Arch, run.Host.CPUs, run.Host.GoVersion)
	if run.VCSRevision != "" {
		fmt.Fprintf(w, ", rev %s", shortRev(run.VCSRevision))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-28s %14s %14s %14s\n", "scenario", "ns/op", "allocs/op", "B/op")
	for i := range run.Scenarios {
		s := &run.Scenarios[i]
		ns, _ := median(s.NsPerOp)
		al, _ := median(s.AllocsPerOp)
		by, _ := median(s.BytesPerOp)
		fmt.Fprintf(w, "%-28s %14s %14.1f %14.0f\n", s.Name, formatNs(ns), al, by)
	}
}

// FormatReport renders a comparison: per scenario, one line per core
// metric that has data, with the median shift, p-value, and effect
// size. quiet hides metrics whose delta is insignificant and under
// 1 percent.
func FormatReport(w io.Writer, rep *Report, quiet bool) {
	fmt.Fprintf(w, "compare: old %s -> new %s (alpha %.3g)\n",
		revOrLabel(rep.OldRevision, "(unversioned)"),
		revOrLabel(rep.NewRevision, "(unversioned)"), rep.Alpha)
	if rep.HostMismatch {
		fmt.Fprintf(w, "WARNING: runs were captured on different hosts (%s/%s cpus=%d %s vs %s/%s cpus=%d %s); deltas include hardware differences\n",
			rep.OldHost.OS, rep.OldHost.Arch, rep.OldHost.CPUs, rep.OldHost.GoVersion,
			rep.NewHost.OS, rep.NewHost.Arch, rep.NewHost.CPUs, rep.NewHost.GoVersion)
	}
	fmt.Fprintf(w, "%-28s %-16s %12s %12s %9s %8s %7s\n",
		"scenario", "metric", "old", "new", "delta", "p", "effect")
	for _, sc := range rep.Scenarios {
		if sc.OnlyIn != "" {
			fmt.Fprintf(w, "%-28s only in %s run\n", sc.Name, sc.OnlyIn)
			continue
		}
		for _, d := range sc.Metrics {
			if !coreMetric(d.Metric) {
				continue
			}
			if quiet && !d.Significant && !(d.DeltaDefined && abs(d.DeltaPct) >= 1) {
				continue
			}
			fmt.Fprintf(w, "%-28s %-16s %12s %12s %9s %8s %7.2f%s\n",
				sc.Name, d.Metric,
				formatMetric(d.Metric, d.OldMedian), formatMetric(d.Metric, d.NewMedian),
				formatDelta(d), formatP(d), d.Effect, significanceTag(d))
		}
	}
}

// FormatRegressions renders the gate verdict.
func FormatRegressions(w io.Writer, regs []Regression, thresholdPct, alpha float64, failed bool) {
	if len(regs) == 0 {
		fmt.Fprintf(w, "perf gate: PASS — no significant regression beyond %.1f%% (alpha %.3g)\n",
			thresholdPct, alpha)
		return
	}
	for _, reg := range regs {
		verdict := "REGRESSION"
		if reg.Waived {
			verdict = "waived"
		}
		fmt.Fprintf(w, "perf gate: %s %s %s: %s -> %s (%s, p=%s, effect %.2f)",
			verdict, reg.Scenario, reg.Delta.Metric,
			formatMetric(reg.Delta.Metric, reg.Delta.OldMedian),
			formatMetric(reg.Delta.Metric, reg.Delta.NewMedian),
			formatDelta(reg.Delta), formatP(reg.Delta), reg.Delta.Effect)
		if reg.Waived {
			fmt.Fprintf(w, " — %s", reg.Reason)
		}
		fmt.Fprintln(w)
		for _, hf := range reg.HotFunctions {
			fmt.Fprintf(w, "  grew %+.1fpp flat CPU share (%.1f%% -> %.1f%%): %s\n",
				hf.DeltaShare*100, hf.BeforeShare*100, hf.AfterShare*100, hf.Name)
		}
	}
	if failed {
		fmt.Fprintf(w, "perf gate: FAIL — significant regression beyond %.1f%% (alpha %.3g); optimize, or waive with a safesense:perf-waiver line (see perf/waivers.txt)\n",
			thresholdPct, alpha)
	} else {
		fmt.Fprintf(w, "perf gate: PASS — all regressions waived\n")
	}
}

func coreMetric(m string) bool {
	return m == MetricNsPerOp || m == MetricAllocsPerOp || m == MetricBytesPerOp
}

func formatMetric(metric string, v float64) string {
	if metric == MetricNsPerOp {
		return formatNs(v)
	}
	if v >= 1000 || v == float64(int64(v)) {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// formatNs renders nanoseconds with an adaptive unit.
func formatNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3gs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.4gms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.4gµs", ns/1e3)
	}
	return fmt.Sprintf("%.4gns", ns)
}

func formatDelta(d MetricDelta) string {
	if !d.DeltaDefined {
		return "~"
	}
	return fmt.Sprintf("%+.1f%%", d.DeltaPct)
}

func formatP(d MetricDelta) string {
	if !d.PDefined {
		return "n<4"
	}
	return fmt.Sprintf("%.3f", d.P)
}

func significanceTag(d MetricDelta) string {
	if d.Significant {
		return "  *"
	}
	return ""
}

func revOrLabel(rev, label string) string {
	if rev == "" {
		return label
	}
	return shortRev(rev)
}

// shortRev abbreviates a full commit hash, keeping any -dirty suffix.
func shortRev(rev string) string {
	dirty := strings.HasSuffix(rev, "-dirty")
	h := strings.TrimSuffix(rev, "-dirty")
	if len(h) > 12 {
		h = h[:12]
	}
	if dirty {
		h += "-dirty"
	}
	return h
}

//safesense:floatcmp-helper
func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
