package perf

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// BENCH_<n>.json naming: each `safesense-perf run` (and each CI
// `check`) appends the next number in the directory, so the perf
// trajectory accumulates one document per capture without collisions.

// benchPrefix and benchPattern define the trajectory file naming.
const benchPrefix = "BENCH_"

// NextBenchPath returns the first unused BENCH_<n>.json path in dir,
// scanning existing files for the highest sequence number.
func NextBenchPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil && !os.IsNotExist(err) {
		return "", fmt.Errorf("perf: scanning %s: %w", dir, err)
	}
	max := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, benchPrefix) || !strings.HasSuffix(name, ".json") {
			continue
		}
		numPart := strings.TrimSuffix(strings.TrimPrefix(name, benchPrefix), ".json")
		n := 0
		if _, err := fmt.Sscanf(numPart, "%d", &n); err != nil {
			continue
		}
		if n > max {
			max = n
		}
	}
	return filepath.Join(dir, fmt.Sprintf("%s%04d.json", benchPrefix, max+1)), nil
}

// WriteRunFile serializes the run document to path (parent directories
// are created), pretty-printed so BENCH diffs review cleanly.
func WriteRunFile(path string, run *Run) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("perf: %w", err)
	}
	data, err := json.MarshalIndent(run, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: encoding run: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("perf: %w", err)
	}
	return nil
}

// ReadRunFile loads and schema-validates a run document.
func ReadRunFile(path string) (*Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	var run Run
	if err := json.Unmarshal(data, &run); err != nil {
		return nil, fmt.Errorf("perf: decoding %s: %w", path, err)
	}
	if err := run.ValidateSchema(); err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return &run, nil
}

// WaiverDirective is the escape-hatch marker: a line in the waivers
// file reading
//
//	safesense:perf-waiver <scenario> <reason...>
//
// exempts the scenario from failing the gate (its regressions are still
// reported). The directive mirrors the //safesense:allow style the lint
// layer uses, adapted to a standalone file because BENCH documents are
// JSON. Waivers are deliberately loud in review: adding one is a diff
// line a reviewer must justify.
const WaiverDirective = "safesense:perf-waiver"

// ParseWaivers reads a waivers stream: blank lines and #-comments are
// skipped, every other line must be a WaiverDirective. Returns
// scenario -> reason.
func ParseWaivers(r io.Reader) (map[string]string, error) {
	waivers := make(map[string]string)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] != WaiverDirective || len(fields) < 3 {
			return nil, fmt.Errorf("perf: waivers line %d: want %q <scenario> <reason>, got %q",
				lineNo, WaiverDirective, line)
		}
		waivers[fields[1]] = strings.Join(fields[2:], " ")
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("perf: reading waivers: %w", err)
	}
	return waivers, nil
}

// ReadWaiversFile loads a waivers file; a missing file is an empty
// waiver set, not an error, so the gate runs strict by default.
func ReadWaiversFile(path string) (map[string]string, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[string]string{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	defer f.Close()
	return ParseWaivers(f)
}
