package perf

import (
	"errors"
	"testing"
	"time"

	"safesense/internal/obs"
)

// fakeClock advances a fixed step per reading, making runner timing
// fully deterministic.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

func testRunner(cfg RunnerConfig, step time.Duration) *Runner {
	r := NewRunner(cfg)
	clock := &fakeClock{t: time.Unix(1700000000, 0), step: step}
	r.now = clock.now
	r.readRuntime = func() obs.RuntimeSnapshot {
		return obs.RuntimeSnapshot{HeapBytes: 1 << 20, Goroutines: 2, GCCycles: 5}
	}
	return r
}

func countingScenario(calls *int) Scenario {
	return Scenario{
		Name:  "counting",
		Group: "test",
		Ops:   3,
		Setup: func() (func(r *Rep) error, error) {
			return func(r *Rep) error {
				*calls++
				r.Observe("calls_total", float64(*calls))
				return nil
			}, nil
		},
	}
}

func TestRunnerConfigDefaults(t *testing.T) {
	cfg := RunnerConfig{}.withDefaults()
	if cfg.Reps != 10 || cfg.Warmup != 1 || cfg.MinRepMillis != 20 || cfg.MaxInner != 1<<16 {
		t.Errorf("defaults = %+v", cfg)
	}
	// Warmup can be explicitly disabled with a negative value.
	if got := (RunnerConfig{Warmup: -1}).withDefaults().Warmup; got != 0 {
		t.Errorf("Warmup=-1 -> %d, want 0", got)
	}
}

// TestRunScenarioDeterministic drives the runner entirely through its
// seams: sample counts, per-op scaling, runtime extras, and body
// observations all come out exactly as configured.
func TestRunScenarioDeterministic(t *testing.T) {
	// Each clock read advances 30ms, so one body call "takes" 30ms —
	// past the 20ms floor, calibration picks inner=1.
	r := testRunner(RunnerConfig{Reps: 5, Warmup: 1, MinRepMillis: 20}, 30*time.Millisecond)
	calls := 0
	res, err := r.RunScenario(countingScenario(&calls))
	if err != nil {
		t.Fatal(err)
	}
	// 1 calibration + 1 warmup + 5 measured reps, inner=1 each.
	if calls != 7 {
		t.Errorf("body calls = %d, want 7", calls)
	}
	if len(res.NsPerOp) != 5 || len(res.AllocsPerOp) != 5 || len(res.BytesPerOp) != 5 {
		t.Fatalf("sample counts = %d/%d/%d, want 5 each",
			len(res.NsPerOp), len(res.AllocsPerOp), len(res.BytesPerOp))
	}
	// One rep = one timed window = one 30ms step across Ops=3 ops.
	wantNs := float64(30*time.Millisecond) / 3
	for i, ns := range res.NsPerOp {
		if ns != wantNs {
			t.Errorf("rep %d: ns/op = %v, want %v", i, ns, wantNs)
		}
	}
	for _, name := range []string{ExtraHeapBytes, ExtraGoroutines, ExtraGCCyclesDelta, ExtraGCPauseSeconds, "calls_total"} {
		if got := len(res.Extra[name]); got != 5 {
			t.Errorf("extra %q: %d samples, want 5", name, got)
		}
	}
	// Fake runtime snapshots are constant, so cycle deltas are zero.
	for _, d := range res.Extra[ExtraGCCyclesDelta] {
		if d != 0 {
			t.Errorf("gc cycle delta = %v, want 0", d)
		}
	}
	if res.Name != "counting" || res.Group != "test" || res.Ops != 3 {
		t.Errorf("identity fields = %+v", res)
	}
}

// TestRunnerCalibration: a fast body gets an inner loop sized to reach
// the per-rep floor, capped at MaxInner.
func TestRunnerCalibration(t *testing.T) {
	// One clock step = 1ms per body call; floor 20ms → inner = 21.
	r := testRunner(RunnerConfig{Reps: 2, Warmup: 1, MinRepMillis: 20}, time.Millisecond)
	calls := 0
	res, err := r.RunScenario(countingScenario(&calls))
	if err != nil {
		t.Fatal(err)
	}
	inner := 21
	// calibration(1) + warmup(inner) + 2 reps * inner.
	if want := 1 + inner + 2*inner; calls != want {
		t.Errorf("body calls = %d, want %d", calls, want)
	}
	// The fake clock advances only on now() reads, so the measured
	// window is exactly one step divided across inner*Ops operations.
	wantNs := float64(time.Millisecond) / (float64(inner) * 3)
	if res.NsPerOp[0] != wantNs {
		t.Errorf("ns/op = %v, want %v", res.NsPerOp[0], wantNs)
	}

	// MaxInner caps runaway loop counts for sub-microsecond bodies.
	r = testRunner(RunnerConfig{Reps: 1, Warmup: -1, MinRepMillis: 1000, MaxInner: 8}, time.Millisecond)
	calls = 0
	if _, err := r.RunScenario(countingScenario(&calls)); err != nil {
		t.Fatal(err)
	}
	if want := 1 + 8; calls != want { // calibration + 1 rep * capped inner
		t.Errorf("capped body calls = %d, want %d", calls, want)
	}
}

func TestRunScenarioErrors(t *testing.T) {
	r := testRunner(RunnerConfig{Reps: 2}, time.Millisecond)
	boom := errors.New("boom")
	_, err := r.RunScenario(Scenario{
		Name: "bad-setup", Ops: 1,
		Setup: func() (func(*Rep) error, error) { return nil, boom },
	})
	if !errors.Is(err, boom) {
		t.Errorf("setup error not propagated: %v", err)
	}
	_, err = r.RunScenario(Scenario{
		Name: "bad-body", Ops: 1,
		Setup: func() (func(*Rep) error, error) {
			return func(*Rep) error { return boom }, nil
		},
	})
	if !errors.Is(err, boom) {
		t.Errorf("body error not propagated: %v", err)
	}
}

func TestRunSuite(t *testing.T) {
	r := testRunner(RunnerConfig{Reps: 3, Warmup: 1, MinRepMillis: 1}, 5*time.Millisecond)
	var visited []string
	r.OnScenario = func(name string) { visited = append(visited, name) }
	c1, c2 := 0, 0
	s1 := countingScenario(&c1)
	s2 := countingScenario(&c2)
	s2.Name = "counting_2"
	run, err := r.RunSuite([]Scenario{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if run.SchemaVersion != SchemaVersion {
		t.Errorf("schema version = %d", run.SchemaVersion)
	}
	if len(run.Scenarios) != 2 || run.Scenarios[0].Name != "counting" || run.Scenarios[1].Name != "counting_2" {
		t.Errorf("scenarios = %+v", run.Scenarios)
	}
	if len(visited) != 2 {
		t.Errorf("OnScenario visits = %v", visited)
	}
	if run.Config.Reps != 3 {
		t.Errorf("config echo = %+v", run.Config)
	}
	if run.CreatedAt == "" {
		t.Error("CreatedAt empty")
	}
	if _, err := time.Parse(time.RFC3339, run.CreatedAt); err != nil {
		t.Errorf("CreatedAt %q not RFC 3339: %v", run.CreatedAt, err)
	}
	if run.Host.CPUs < 1 {
		t.Errorf("host fingerprint = %+v", run.Host)
	}
}

func TestRegistry(t *testing.T) {
	g := NewRegistry()
	ok := Scenario{Name: "a", Ops: 1, Setup: func() (func(*Rep) error, error) { return nil, nil }}
	if err := g.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(ok); err == nil {
		t.Error("duplicate accepted")
	}
	bad := ok
	bad.Name = ""
	if err := g.Register(bad); err == nil {
		t.Error("empty name accepted")
	}
	bad = ok
	bad.Name = "b"
	bad.Setup = nil
	if err := g.Register(bad); err == nil {
		t.Error("nil Setup accepted")
	}
	bad = ok
	bad.Name = "c"
	bad.Ops = 0
	if err := g.Register(bad); err == nil {
		t.Error("Ops=0 accepted")
	}

	b := ok
	b.Name = "kernel_b"
	g.MustRegister(b)
	if _, found := g.Lookup("kernel_b"); !found {
		t.Error("Lookup failed")
	}
	if _, found := g.Lookup("missing"); found {
		t.Error("Lookup found a ghost")
	}
	if got := g.Scenarios(); len(got) != 2 || got[0].Name != "a" {
		t.Errorf("Scenarios order = %v", got)
	}
	matched, err := g.Match("^kernel_")
	if err != nil || len(matched) != 1 || matched[0].Name != "kernel_b" {
		t.Errorf("Match = %v, %v", matched, err)
	}
	all, err := g.Match("")
	if err != nil || len(all) != 2 {
		t.Errorf("Match(\"\") = %v, %v", all, err)
	}
	if _, err := g.Match("["); err == nil {
		t.Error("bad pattern accepted")
	}
}

func TestRepObserve(t *testing.T) {
	rep := NewRep()
	rep.Observe("x", 1)
	rep.Observe("x", 2) // last write wins
	if rep.Value("x") != 2 {
		t.Errorf("Value = %v", rep.Value("x"))
	}
	if rep.Value("never") != 0 {
		t.Error("unobserved name should read 0")
	}
	rep.reset()
	if rep.Value("x") != 0 {
		t.Error("reset did not clear")
	}
}
