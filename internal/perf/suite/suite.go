// Package suite defines the repo's registered perf scenarios: the four
// figure-level closed-loop runs, the hot kernels, and campaign
// throughput at several worker counts. Both `safesense-perf` and the
// root-package benchmarks (bench_test.go) drive this one registry, so
// BENCH documents and `go test -bench` measure identical workloads.
//
// Every scenario is seeded at registration: a body produces the same
// domain results on every call, and bodies double as correctness checks
// (a perf sample from a wrong-answer run aborts the capture).
package suite

import (
	"context"
	"fmt"

	"safesense/internal/campaign"
	"safesense/internal/cra"
	"safesense/internal/dsp/fft"
	"safesense/internal/dsp/music"
	"safesense/internal/estimate"
	"safesense/internal/noise"
	"safesense/internal/perf"
	"safesense/internal/prbs"
	"safesense/internal/radar"
	"safesense/internal/sim"
)

// Scenario groups.
const (
	GroupFigure   = "figure"
	GroupKernel   = "kernel"
	GroupCampaign = "campaign"
)

// Deterministic observation names bodies record (beyond timing, which
// the runner measures itself). ObsDetectedAt and ObsDetected feed the
// suite determinism test; ObsRunsPerSec is advisory throughput.
const (
	ObsDetectedAt = "detected_at"
	ObsDetected   = "detected"
	ObsRunsPerSec = "runs_per_sec"
)

// paperDetectionStep is the step every figure scenario detects its
// attack at (the paper's k = 182 challenge instant).
const paperDetectionStep = 182

// Default builds the full scenario registry.
func Default() *perf.Registry {
	g := perf.NewRegistry()
	registerFigures(g)
	registerKernels(g)
	registerCampaigns(g)
	return g
}

// figureScenario wraps one closed-loop defended run: the body executes
// the full simulation, verifies the paper's detection step, and reports
// the per-phase timing breakdown.
func figureScenario(name, doc string, mk func() sim.Scenario) perf.Scenario {
	return perf.Scenario{
		Name:  name,
		Group: GroupFigure,
		Doc:   doc,
		Ops:   1,
		Setup: func() (func(r *perf.Rep) error, error) {
			s := mk()
			return func(r *perf.Rep) error {
				res, err := sim.Run(s)
				if err != nil {
					return err
				}
				if res.DetectedAt != paperDetectionStep {
					return fmt.Errorf("DetectedAt = %d, want %d", res.DetectedAt, paperDetectionStep)
				}
				r.Observe(ObsDetectedAt, float64(res.DetectedAt))
				for _, p := range res.Phases {
					if p.Calls > 0 {
						r.Observe("phase_"+p.Phase+"_seconds", p.Seconds)
					}
				}
				return nil
			}, nil
		},
	}
}

func registerFigures(g *perf.Registry) {
	g.MustRegister(figureScenario("fig2a_dos",
		"Figure 2a: DoS attack, constant-deceleration leader, defended.", sim.Fig2aDoS))
	g.MustRegister(figureScenario("fig2b_delay",
		"Figure 2b: delay attack, constant-deceleration leader, defended.", sim.Fig2bDelay))
	g.MustRegister(figureScenario("fig3a_dos",
		"Figure 3a: DoS attack, decelerate-then-accelerate leader, defended.", sim.Fig3aDoS))
	g.MustRegister(figureScenario("fig3b_delay",
		"Figure 3b: delay attack, decelerate-then-accelerate leader, defended.", sim.Fig3bDelay))
}

func registerKernels(g *perf.Registry) {
	g.MustRegister(perf.Scenario{
		Name:  "kernel_root_music_256",
		Group: GroupKernel,
		Doc:   "Root-MUSIC frequency extraction from one 256-sample beat sweep.",
		Ops:   1,
		Setup: func() (func(r *perf.Rep) error, error) {
			est, err := music.New(music.Config{Order: 12, NumSignals: 1})
			if err != nil {
				return nil, err
			}
			sweep, err := radar.BoschLRR2().SynthesizeSweep(100, -1.5, 256, noise.NewSource(2))
			if err != nil {
				return nil, err
			}
			return func(*perf.Rep) error {
				_, err := est.Frequencies(sweep.Up)
				return err
			}, nil
		},
	})

	g.MustRegister(perf.Scenario{
		Name:  "kernel_fft_1024",
		Group: GroupKernel,
		Doc:   "Radix FFT over 1024 complex samples.",
		Ops:   1,
		Setup: func() (func(r *perf.Rep) error, error) {
			x := noise.NewSource(3).ComplexNoiseVec(1024, 1)
			return func(*perf.Rep) error {
				fft.Forward(x)
				return nil
			}, nil
		},
	})

	g.MustRegister(perf.Scenario{
		Name:  "kernel_rls_update_order8",
		Group: GroupKernel,
		Doc:   "RLS covariance update, order 8, over a 256-regressor cycle.",
		Ops:   256,
		Setup: func() (func(r *perf.Rep) error, error) {
			rls, err := estimate.NewRLS(8, 0.98, 1)
			if err != nil {
				return nil, err
			}
			// Cycle pre-generated regressors: repeating one forever leaves
			// the orthogonal subspace unexcited and the forgetting factor
			// winds the covariance up, which is not the usage measured.
			src := noise.NewSource(1)
			hs := make([][]float64, 256)
			for i := range hs {
				hs[i] = src.GaussianVec(8, 0, 1)
			}
			return func(*perf.Rep) error {
				for _, h := range hs {
					if _, _, err := rls.Update(h, 1.0); err != nil {
						return err
					}
				}
				return nil
			}, nil
		},
	})

	g.MustRegister(perf.Scenario{
		Name:  "kernel_cra_check",
		Group: GroupKernel,
		Doc:   "One challenge-response authentication detector step.",
		Ops:   1,
		Setup: func() (func(r *perf.Rep) error, error) {
			det, err := cra.NewDetector(prbs.PaperFigureSchedule(), 1e-13)
			if err != nil {
				return nil, err
			}
			m := radar.Measurement{K: 20, Power: 1e-11}
			return func(*perf.Rep) error {
				det.Step(m)
				return nil
			}, nil
		},
	})

	g.MustRegister(perf.Scenario{
		Name:  "kernel_synthesize_sweep",
		Group: GroupKernel,
		Doc:   "Synthesize one 256-sample FMCW radar sweep pair.",
		Ops:   1,
		Setup: func() (func(r *perf.Rep) error, error) {
			p := radar.BoschLRR2()
			src := noise.NewSource(4)
			return func(*perf.Rep) error {
				_, err := p.SynthesizeSweep(100, -1.5, 256, src)
				return err
			}, nil
		},
	})

	g.MustRegister(perf.Scenario{
		Name:  "kernel_sim_step",
		Group: GroupKernel,
		Doc:   "Per-step cost of the Fig 2a closed loop (one run / 301 steps).",
		Ops:   301,
		Setup: func() (func(r *perf.Rep) error, error) {
			s := sim.Fig2aDoS()
			if s.Steps != 301 {
				return nil, fmt.Errorf("Fig2aDoS has %d steps, scenario assumes 301", s.Steps)
			}
			return func(r *perf.Rep) error {
				res, err := sim.Run(s)
				if err != nil {
					return err
				}
				if res.DetectedAt != paperDetectionStep {
					return fmt.Errorf("DetectedAt = %d, want %d", res.DetectedAt, paperDetectionStep)
				}
				return nil
			}, nil
		},
	})
}

// campaignSpec is the 64-job Figure 2a/2b grid the throughput scenarios
// sweep: DoS + delay attacks x 2 onsets x 16 seeds.
func campaignSpec() campaign.Spec {
	return campaign.Spec{
		Name:       "bench-fig2-grid",
		Steps:      301,
		BaseSeed:   42,
		Replicates: 16,
		Attacks:    []string{campaign.AttackDoS, campaign.AttackDelay},
		Onsets:     []int{175, 182},
	}
}

// CampaignJobs is the grid size of the campaign throughput scenarios.
const CampaignJobs = 64

func registerCampaigns(g *perf.Registry) {
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		g.MustRegister(perf.Scenario{
			Name:  fmt.Sprintf("campaign_w%d", workers),
			Group: GroupCampaign,
			Doc: fmt.Sprintf(
				"64-job Monte Carlo sweep over the Fig 2 grid, worker pool of %d.", workers),
			Ops: CampaignJobs,
			Setup: func() (func(r *perf.Rep) error, error) {
				spec := campaignSpec()
				jobs, err := spec.NumJobs()
				if err != nil {
					return nil, err
				}
				if jobs != CampaignJobs {
					return nil, fmt.Errorf("grid size = %d, want %d", jobs, CampaignJobs)
				}
				return func(r *perf.Rep) error {
					sum, err := campaign.Run(context.Background(), spec,
						campaign.Options{Workers: workers, DiscardOutcomes: true})
					if err != nil {
						return err
					}
					agg := sum.Aggregate
					if agg.Detected != CampaignJobs || agg.FalsePositives != 0 {
						return fmt.Errorf("aggregate drifted: detected=%d fp=%d",
							agg.Detected, agg.FalsePositives)
					}
					r.Observe(ObsDetected, float64(agg.Detected))
					r.Observe(ObsRunsPerSec, sum.RunsPerSec)
					return nil
				}, nil
			},
		})
	}
}
