package suite

import (
	"testing"

	"safesense/internal/perf"
)

func TestDefaultRegistryShape(t *testing.T) {
	g := Default()
	want := []string{
		"fig2a_dos", "fig2b_delay", "fig3a_dos", "fig3b_delay",
		"kernel_root_music_256", "kernel_fft_1024", "kernel_rls_update_order8",
		"kernel_cra_check", "kernel_synthesize_sweep", "kernel_sim_step",
		"campaign_w1", "campaign_w2", "campaign_w4", "campaign_w8",
	}
	got := g.Scenarios()
	if len(got) != len(want) {
		t.Fatalf("registry has %d scenarios, want %d", len(got), len(want))
	}
	for i, name := range want {
		if got[i].Name != name {
			t.Errorf("scenario %d = %q, want %q", i, got[i].Name, name)
		}
		if got[i].Doc == "" || got[i].Group == "" {
			t.Errorf("scenario %q missing doc/group", got[i].Name)
		}
	}
}

// runBodyOnce builds a fresh repetition of the named scenario and runs
// its body once, returning the observations.
func runBodyOnce(t *testing.T, name string) *perf.Rep {
	t.Helper()
	s, ok := Default().Lookup(name)
	if !ok {
		t.Fatalf("no scenario %q", name)
	}
	body, err := s.Setup()
	if err != nil {
		t.Fatalf("%s setup: %v", name, err)
	}
	rep := perf.NewRep()
	if err := body(rep); err != nil {
		t.Fatalf("%s body: %v", name, err)
	}
	return rep
}

// TestSuiteDeterministic: the bench workloads are fully seeded, so two
// independent executions (fresh registries, fresh Setup) observe
// identical domain values. This is the contract that makes
// `make bench-smoke` and BENCH captures reproducible.
func TestSuiteDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full closed-loop runs are slow in -short mode")
	}
	a := runBodyOnce(t, "fig2a_dos")
	b := runBodyOnce(t, "fig2a_dos")
	if a.Value(ObsDetectedAt) != float64(paperDetectionStep) {
		t.Errorf("detected_at = %v, want %d", a.Value(ObsDetectedAt), paperDetectionStep)
	}
	if a.Value(ObsDetectedAt) != b.Value(ObsDetectedAt) {
		t.Errorf("detection drifted across executions: %v vs %v",
			a.Value(ObsDetectedAt), b.Value(ObsDetectedAt))
	}

	c := runBodyOnce(t, "campaign_w2")
	if c.Value(ObsDetected) != CampaignJobs {
		t.Errorf("campaign detected = %v, want %d", c.Value(ObsDetected), CampaignJobs)
	}
	if c.Value(ObsRunsPerSec) <= 0 {
		t.Errorf("runs_per_sec = %v, want > 0", c.Value(ObsRunsPerSec))
	}
}

// TestKernelsThroughRunner: the fast kernels survive a real (tiny)
// runner pass and produce fully-populated sample arrays — the same code
// path `safesense-perf run` takes, minus the repetition count.
func TestKernelsThroughRunner(t *testing.T) {
	g := Default()
	scenarios, err := g.Match("^kernel_(fft_1024|cra_check|rls_update_order8)$")
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 3 {
		t.Fatalf("matched %d scenarios", len(scenarios))
	}
	r := perf.NewRunner(perf.RunnerConfig{Reps: 2, Warmup: 1, MinRepMillis: 1, MaxInner: 64})
	run, err := r.RunSuite(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.ValidateSchema(); err != nil {
		t.Error(err)
	}
	for _, sr := range run.Scenarios {
		if len(sr.NsPerOp) != 2 || len(sr.AllocsPerOp) != 2 || len(sr.BytesPerOp) != 2 {
			t.Errorf("%s: sample counts %d/%d/%d, want 2 each",
				sr.Name, len(sr.NsPerOp), len(sr.AllocsPerOp), len(sr.BytesPerOp))
		}
		for _, ns := range sr.NsPerOp {
			if ns <= 0 {
				t.Errorf("%s: ns/op = %v, want > 0", sr.Name, ns)
			}
		}
		if len(sr.Extra[perf.ExtraHeapBytes]) != 2 {
			t.Errorf("%s: runtime extras missing", sr.Name)
		}
	}
}
