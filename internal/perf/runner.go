package perf

import (
	"fmt"
	"runtime"
	"time"

	"safesense/internal/obs"
)

// wallClock is the runner's injected time source (the same seam idiom
// internal/campaign uses): production reads time.Now, tests substitute
// a fake clock so runner output is reproducible.
var wallClock = time.Now

// RunnerConfig tunes the measurement loop.
type RunnerConfig struct {
	// Reps is the measured repetition count per scenario (default 10).
	// More reps sharpen the Mann-Whitney test; 10 gives the comparator
	// enough to call a 10% shift on a quiet machine.
	Reps int
	// Warmup is the unmeasured repetition count run first (default 1),
	// letting caches, the branch predictor, and the heap reach steady
	// state.
	Warmup int
	// MinRepMillis is the per-repetition time floor (default 20): the
	// runner calibrates an inner loop count so one repetition's body
	// calls take at least this long, keeping clock quantization out of
	// fast kernels.
	MinRepMillis int
	// MaxInner caps the calibrated inner loop count (default 1<<16).
	MaxInner int
	// Profile wraps each scenario's measured repetitions in a CPU
	// profile with the sim phase labels enabled and embeds the decoded
	// phase-share/top-function digest in the result. Adds a few percent
	// of sampling overhead; compare profiled captures against profiled
	// baselines.
	Profile bool
}

func (c RunnerConfig) withDefaults() RunnerConfig {
	if c.Reps <= 0 {
		c.Reps = 10
	}
	if c.Warmup < 0 {
		c.Warmup = 0
	} else if c.Warmup == 0 {
		c.Warmup = 1
	}
	if c.MinRepMillis <= 0 {
		c.MinRepMillis = 20
	}
	if c.MaxInner <= 0 {
		c.MaxInner = 1 << 16
	}
	return c
}

// Runner executes scenarios and assembles Run documents.
type Runner struct {
	cfg RunnerConfig
	// now and readRuntime are seams for deterministic tests.
	now         func() time.Time
	readRuntime func() obs.RuntimeSnapshot

	// OnScenario, when non-nil, is called before each scenario runs —
	// the CLI's progress line.
	OnScenario func(name string)
}

// NewRunner builds a runner with the given config (zero values take
// defaults).
func NewRunner(cfg RunnerConfig) *Runner {
	return &Runner{
		cfg:         cfg.withDefaults(),
		now:         wallClock,
		readRuntime: obs.ReadRuntime,
	}
}

// RunScenario measures one scenario: warmup repetitions, then cfg.Reps
// measured repetitions, each built from a fresh Setup. Per repetition it
// captures wall ns/op, allocs/op and bytes/op (runtime.MemStats
// deltas), the runtime/metrics GC and heap readings, and whatever the
// body observed into its Rep.
func (r *Runner) RunScenario(s Scenario) (ScenarioResult, error) {
	res := ScenarioResult{
		Name:  s.Name,
		Group: s.Group,
		Ops:   s.Ops,
		Extra: make(map[string][]float64),
	}

	inner, err := r.calibrate(s)
	if err != nil {
		return res, err
	}
	rep := NewRep()
	for w := 0; w < r.cfg.Warmup; w++ {
		body, err := s.Setup()
		if err != nil {
			return res, fmt.Errorf("perf: %s: setup: %w", s.Name, err)
		}
		for i := 0; i < inner; i++ {
			if err := body(rep); err != nil {
				return res, fmt.Errorf("perf: %s: warmup: %w", s.Name, err)
			}
		}
	}

	var sp scenarioProfile
	if r.cfg.Profile {
		sp.start()
		defer sp.finish() // early-error path; no-op after the normal finish
	}
	for n := 0; n < r.cfg.Reps; n++ {
		body, err := s.Setup()
		if err != nil {
			return res, fmt.Errorf("perf: %s: setup: %w", s.Name, err)
		}
		rep.reset()

		var msBefore, msAfter runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		rtBefore := r.readRuntime()
		t0 := r.now()
		for i := 0; i < inner; i++ {
			if err := body(rep); err != nil {
				return res, fmt.Errorf("perf: %s: rep %d: %w", s.Name, n, err)
			}
		}
		elapsed := r.now().Sub(t0)
		rtAfter := r.readRuntime()
		runtime.ReadMemStats(&msAfter)

		ops := float64(inner) * float64(s.Ops)
		res.NsPerOp = append(res.NsPerOp, float64(elapsed.Nanoseconds())/ops)
		res.AllocsPerOp = append(res.AllocsPerOp, float64(msAfter.Mallocs-msBefore.Mallocs)/ops)
		res.BytesPerOp = append(res.BytesPerOp, float64(msAfter.TotalAlloc-msBefore.TotalAlloc)/ops)

		res.Extra[ExtraHeapBytes] = append(res.Extra[ExtraHeapBytes], rtAfter.HeapBytes)
		res.Extra[ExtraGoroutines] = append(res.Extra[ExtraGoroutines], rtAfter.Goroutines)
		res.Extra[ExtraGCCyclesDelta] = append(res.Extra[ExtraGCCyclesDelta], rtAfter.GCCycles-rtBefore.GCCycles)
		res.Extra[ExtraGCPauseSeconds] = append(res.Extra[ExtraGCPauseSeconds], rtAfter.GCPauseTotalSeconds-rtBefore.GCPauseTotalSeconds)

		for _, name := range sortedFloatKeys(rep.extra) {
			res.Extra[name] = append(res.Extra[name], rep.extra[name])
		}
	}
	res.Profile = sp.finish()
	return res, nil
}

// calibrate picks the inner loop count: enough body calls that one
// repetition spans at least MinRepMillis, fixed once per scenario so
// every repetition measures identical work.
func (r *Runner) calibrate(s Scenario) (int, error) {
	body, err := s.Setup()
	if err != nil {
		return 0, fmt.Errorf("perf: %s: setup: %w", s.Name, err)
	}
	rep := NewRep()
	t0 := r.now()
	if err := body(rep); err != nil {
		return 0, fmt.Errorf("perf: %s: calibration: %w", s.Name, err)
	}
	once := r.now().Sub(t0)
	floor := time.Duration(r.cfg.MinRepMillis) * time.Millisecond
	if once >= floor {
		return 1, nil
	}
	if once <= 0 {
		once = time.Nanosecond
	}
	inner := int(floor/once) + 1
	if inner > r.cfg.MaxInner {
		inner = r.cfg.MaxInner
	}
	return inner, nil
}

// RunSuite measures every scenario in the set and assembles the full
// Run document (host fingerprint, VCS revision, creation time).
func (r *Runner) RunSuite(scenarios []Scenario) (*Run, error) {
	run := &Run{
		SchemaVersion: SchemaVersion,
		CreatedAt:     r.now().UTC().Format(time.RFC3339),
		VCSRevision:   VCSRevision(),
		Host:          ReadHost(),
		Config: Config{
			Reps:         r.cfg.Reps,
			Warmup:       r.cfg.Warmup,
			MinRepMillis: r.cfg.MinRepMillis,
			Profile:      r.cfg.Profile,
		},
	}
	for _, s := range scenarios {
		if r.OnScenario != nil {
			r.OnScenario(s.Name)
		}
		sr, err := r.RunScenario(s)
		if err != nil {
			return nil, err
		}
		run.Scenarios = append(run.Scenarios, sr)
	}
	return run, nil
}

// sortedFloatKeys returns a map's keys sorted (keeps per-rep Extra
// append order independent of map iteration order).
func sortedFloatKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort: the observation sets are tiny (< 16 names).
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
