// Package perf is the stdlib-only performance-observability layer: a
// registry of named perf scenarios, a repetition-based runner that
// captures ns/op, allocs/op, bytes/op, and runtime/metrics GC/heap
// readings per repetition, a schema-versioned BENCH_*.json run document
// so the repo accumulates a perf trajectory across PRs, and a
// benchstat-style comparator (Mann-Whitney U test, Cliff's delta) that
// backs the `safesense-perf check` regression gate.
//
// The package deliberately depends only on the standard library and
// internal/obs (for the runtime/metrics snapshot), so the simulator and
// campaign packages can be exercised by the suite without an import
// cycle: concrete scenarios live in internal/perf/suite.
package perf

import (
	"runtime"
	"runtime/debug"
)

// SchemaVersion identifies the BENCH_*.json document layout. Bump it on
// any incompatible change; readers reject versions they do not know.
const SchemaVersion = 1

// Host fingerprints the machine a run was captured on. Comparisons
// across different fingerprints are possible but noisy; the formatter
// flags them.
type Host struct {
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	CPUs       int    `json:"cpus"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// ReadHost captures the current process's host fingerprint.
func ReadHost() Host {
	return Host{
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Equal reports whether two fingerprints describe the same machine
// shape (comparisons across differing hosts are flagged by the
// formatter).
func (h Host) Equal(o Host) bool {
	return h.OS == o.OS && h.Arch == o.Arch && h.CPUs == o.CPUs &&
		h.GoVersion == o.GoVersion && h.GOMAXPROCS == o.GOMAXPROCS
}

// Config records the runner parameters a document was captured with.
type Config struct {
	// Reps is how many measured repetitions each scenario ran.
	Reps int `json:"reps"`
	// Warmup is how many unmeasured repetitions preceded them.
	Warmup int `json:"warmup"`
	// MinRepMillis is the per-repetition time floor the runner
	// calibrated its inner loop against.
	MinRepMillis int `json:"min_rep_millis"`
	// Profile records whether scenarios ran under the CPU profiler (the
	// per-scenario ScenarioResult.Profile digests exist only then).
	// Profiled captures carry a small instrumentation overhead, so the
	// comparator should prefer same-mode pairs.
	Profile bool `json:"profile,omitempty"`
}

// Run is one serialized perf capture: everything `safesense-perf run`
// writes into a BENCH_<n>.json file.
type Run struct {
	SchemaVersion int    `json:"schema_version"`
	CreatedAt     string `json:"created_at,omitempty"` // RFC 3339, wall clock
	VCSRevision   string `json:"vcs_revision,omitempty"`
	Host          Host   `json:"host"`
	Config        Config `json:"config"`

	Scenarios []ScenarioResult `json:"scenarios"`
}

// ScenarioResult holds one scenario's per-repetition sample arrays.
// Every array has Config.Reps entries, aligned by repetition index.
type ScenarioResult struct {
	Name  string `json:"name"`
	Group string `json:"group"`
	// Ops is how many logical operations one body call performs; the
	// per-op sample arrays are already divided by it.
	Ops int `json:"ops"`

	NsPerOp     []float64 `json:"ns_per_op"`
	AllocsPerOp []float64 `json:"allocs_per_op"`
	BytesPerOp  []float64 `json:"bytes_per_op"`

	// Extra carries named per-repetition series beyond the core three:
	// runtime/metrics readings (heap_bytes, goroutines, gc_cycles_delta,
	// gc_pause_delta_seconds) plus whatever the scenario body observed
	// (obs phase timings, runs_per_sec, deterministic check values).
	Extra map[string][]float64 `json:"extra,omitempty"`

	// Profile is the scenario's CPU attribution digest, present only
	// when the capture ran with profiling enabled (Config.Profile).
	Profile *ProfileSummary `json:"profile,omitempty"`
}

// Samples returns the named sample array: one of the core metrics or an
// Extra series; nil when absent.
func (s *ScenarioResult) Samples(metric string) []float64 {
	switch metric {
	case MetricNsPerOp:
		return s.NsPerOp
	case MetricAllocsPerOp:
		return s.AllocsPerOp
	case MetricBytesPerOp:
		return s.BytesPerOp
	}
	return s.Extra[metric]
}

// Metrics lists the scenario's populated metric names: the core three
// followed by the Extra keys in sorted order.
func (s *ScenarioResult) Metrics() []string {
	out := []string{MetricNsPerOp, MetricAllocsPerOp, MetricBytesPerOp}
	out = append(out, sortedKeys(s.Extra)...)
	return out
}

// Core metric names.
const (
	MetricNsPerOp     = "ns_per_op"
	MetricAllocsPerOp = "allocs_per_op"
	MetricBytesPerOp  = "bytes_per_op"
)

// Runtime-reading Extra series names the runner populates on every
// scenario.
const (
	ExtraHeapBytes      = "heap_bytes"
	ExtraGoroutines     = "goroutines"
	ExtraGCCyclesDelta  = "gc_cycles_delta"
	ExtraGCPauseSeconds = "gc_pause_delta_seconds"
)

// VCSRevision extracts the commit the binary was built from, "" when the
// toolchain stamped none (e.g. `go test` binaries); a locally modified
// tree gets a "-dirty" suffix.
func VCSRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, modified string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev != "" && modified == "true" {
		rev += "-dirty"
	}
	return rev
}
