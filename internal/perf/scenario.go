package perf

import (
	"fmt"
	"regexp"
	"sort"
)

// Scenario is one registered perf workload. Setup builds fresh state
// for a repetition outside the measured window and returns the body the
// runner times; the body performs Ops logical operations per call and
// must produce bit-identical domain results on every call for a given
// registration (all randomness flows from seeds fixed at registration,
// mirroring the determinism contract the lint layer enforces on the
// simulation pipeline).
type Scenario struct {
	// Name identifies the scenario in BENCH documents and reports
	// (snake_case, stable across PRs — renaming breaks the trajectory).
	Name string
	// Group clusters related scenarios in reports: "figure", "kernel",
	// "campaign".
	Group string
	// Doc is a one-line description for `safesense-perf run -list`.
	Doc string
	// Ops is how many logical operations one body call performs (>= 1);
	// per-op metrics are divided by it. A full 301-step closed-loop run
	// exposed as a per-step kernel sets Ops to the step count.
	Ops int
	// Setup builds one repetition's state (untimed) and returns the
	// timed body. The body's error aborts the whole run: a perf sample
	// from a run that produced wrong results is worse than no sample.
	Setup func() (func(r *Rep) error, error)
}

// Rep collects a repetition's named observations. Bodies call Observe
// with deterministic domain values (detected_at, runs_per_sec, phase
// seconds); within one repetition the last observation of a name wins,
// so a body called several times per repetition reports once.
type Rep struct {
	extra map[string]float64
}

// NewRep returns an empty repetition recorder.
func NewRep() *Rep { return &Rep{extra: make(map[string]float64)} }

// Observe records v under name for this repetition (last write wins).
func (r *Rep) Observe(name string, v float64) { r.extra[name] = v }

// Value returns the recorded value (zero when never observed).
func (r *Rep) Value(name string) float64 { return r.extra[name] }

// reset clears the recorder between repetitions.
func (r *Rep) reset() {
	for k := range r.extra {
		delete(r.extra, k)
	}
}

// Registry holds the registered scenario set in registration order.
type Registry struct {
	scenarios []Scenario
	byName    map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byName: make(map[string]int)} }

// Register adds a scenario; duplicate names and malformed entries are
// rejected so the suite definition cannot silently shadow itself.
func (g *Registry) Register(s Scenario) error {
	if s.Name == "" {
		return fmt.Errorf("perf: scenario with empty name")
	}
	if s.Setup == nil {
		return fmt.Errorf("perf: scenario %q has no Setup", s.Name)
	}
	if s.Ops < 1 {
		return fmt.Errorf("perf: scenario %q has Ops %d, want >= 1", s.Name, s.Ops)
	}
	if _, dup := g.byName[s.Name]; dup {
		return fmt.Errorf("perf: scenario %q registered twice", s.Name)
	}
	g.byName[s.Name] = len(g.scenarios)
	g.scenarios = append(g.scenarios, s)
	return nil
}

// MustRegister is Register for static suite definitions.
func (g *Registry) MustRegister(s Scenario) {
	if err := g.Register(s); err != nil {
		panic(err)
	}
}

// Lookup returns the named scenario.
func (g *Registry) Lookup(name string) (Scenario, bool) {
	i, ok := g.byName[name]
	if !ok {
		return Scenario{}, false
	}
	return g.scenarios[i], true
}

// Scenarios returns the registered set in registration order.
func (g *Registry) Scenarios() []Scenario {
	return append([]Scenario(nil), g.scenarios...)
}

// Match returns the scenarios whose names match the regexp ("" matches
// all), in registration order.
func (g *Registry) Match(pattern string) ([]Scenario, error) {
	if pattern == "" {
		return g.Scenarios(), nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("perf: bad scenario pattern: %w", err)
	}
	var out []Scenario
	for _, s := range g.scenarios {
		if re.MatchString(s.Name) {
			out = append(out, s)
		}
	}
	return out, nil
}

// sortedKeys returns a map's keys in sorted order (map iteration order
// must never reach serialized output).
func sortedKeys(m map[string][]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
