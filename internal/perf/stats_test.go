package perf

import (
	"math"
	"testing"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMedian(t *testing.T) {
	if _, ok := median(nil); ok {
		t.Error("median(nil) should not be ok")
	}
	if m, ok := median([]float64{5}); !ok || m != 5 {
		t.Errorf("median([5]) = %v, %v", m, ok)
	}
	if m, _ := median([]float64{4, 1, 3, 2}); !almost(m, 2.5, 1e-12) {
		t.Errorf("median([1..4]) = %v, want 2.5", m)
	}
	if m, _ := median([]float64{9, 1, 5}); m != 5 {
		t.Errorf("odd median = %v, want 5", m)
	}
}

func TestFiniteFiltersNaNAndInf(t *testing.T) {
	out, dropped := finite([]float64{1, math.NaN(), 2, math.Inf(1), math.Inf(-1), 3})
	if dropped != 3 || len(out) != 3 {
		t.Fatalf("finite: out=%v dropped=%d", out, dropped)
	}
}

// TestMannWhitneyIdentical: identical sample sets must yield p = 1 —
// no evidence of a shift, never a division by zero from the tie
// correction.
func TestMannWhitneyIdentical(t *testing.T) {
	same := []float64{3, 3, 3, 3, 3, 3}
	p, ok := MannWhitney(same, same)
	if !ok || p != 1 {
		t.Errorf("fully tied: p=%v ok=%v, want p=1 ok=true", p, ok)
	}

	// Identical but non-constant distributions: high p, defined.
	x := []float64{1, 2, 3, 4, 5, 6}
	p, ok = MannWhitney(x, x)
	if !ok || p < 0.9 {
		t.Errorf("identical sets: p=%v ok=%v, want p close to 1", p, ok)
	}
}

// TestMannWhitneyTinyN: fewer than 4 samples per side cannot support a
// verdict.
func TestMannWhitneyTinyN(t *testing.T) {
	if _, ok := MannWhitney([]float64{1, 2, 3}, []float64{4, 5, 6, 7}); ok {
		t.Error("n1=3 should be rejected")
	}
	if _, ok := MannWhitney([]float64{1, 2, 3, 4}, []float64{5, 6}); ok {
		t.Error("n2=2 should be rejected")
	}
	if _, ok := MannWhitney(nil, nil); ok {
		t.Error("empty sides should be rejected")
	}
}

// TestMannWhitneyNaNGuard: non-finite samples are dropped, and a side
// reduced below the minimum by dropping is rejected rather than ranked
// against garbage.
func TestMannWhitneyNaNGuard(t *testing.T) {
	x := []float64{1, 2, math.NaN(), 3, math.Inf(1), 4}
	y := []float64{10, 11, 12, 13}
	p, ok := MannWhitney(x, y)
	if !ok {
		t.Fatal("4 finite samples per side should be enough")
	}
	if p > 0.05 {
		t.Errorf("clearly shifted sets: p=%v, want significant", p)
	}

	mostlyNaN := []float64{1, math.NaN(), math.NaN(), math.NaN(), math.NaN()}
	if _, ok := MannWhitney(mostlyNaN, y); ok {
		t.Error("side with 1 finite sample should be rejected")
	}
}

// TestMannWhitneySeparated: fully separated samples are maximally
// significant.
func TestMannWhitneySeparated(t *testing.T) {
	x := []float64{100, 101, 102, 103, 104, 105, 106, 107, 108, 109}
	y := []float64{200, 201, 202, 203, 204, 205, 206, 207, 208, 209}
	p, ok := MannWhitney(x, y)
	if !ok || p > 0.001 {
		t.Errorf("separated sets: p=%v ok=%v, want p < 0.001", p, ok)
	}
	// Symmetric in the other direction.
	p2, _ := MannWhitney(y, x)
	if !almost(p, p2, 1e-12) {
		t.Errorf("test is not symmetric: %v vs %v", p, p2)
	}
}

// TestMannWhitneyOverlapping: heavily overlapping noise must not read
// as significant.
func TestMannWhitneyOverlapping(t *testing.T) {
	x := []float64{10, 11, 12, 13, 14, 15, 16, 17}
	y := []float64{10.5, 11.5, 12.5, 13.5, 14.5, 15.5, 16.5, 17.5}
	p, ok := MannWhitney(x, y)
	if !ok {
		t.Fatal("want defined p")
	}
	if p < 0.05 {
		t.Errorf("overlapping sets: p=%v, should not be significant", p)
	}
}

func TestCliffsDelta(t *testing.T) {
	old := []float64{1, 2, 3, 4}
	slower := []float64{10, 11, 12, 13}
	if d := CliffsDelta(old, slower); d != 1 {
		t.Errorf("fully separated: delta=%v, want 1", d)
	}
	if d := CliffsDelta(slower, old); d != -1 {
		t.Errorf("fully separated (faster): delta=%v, want -1", d)
	}
	if d := CliffsDelta(old, old); d != 0 {
		t.Errorf("identical: delta=%v, want 0", d)
	}
	if d := CliffsDelta(nil, slower); d != 0 {
		t.Errorf("empty side: delta=%v, want 0", d)
	}
	if d := CliffsDelta([]float64{math.NaN()}, slower); d != 0 {
		t.Errorf("all-NaN side: delta=%v, want 0", d)
	}
}
