package perf

import (
	"fmt"
	"sort"

	"safesense/internal/obs/profile"
)

// MetricDelta compares one metric of one scenario across two runs.
type MetricDelta struct {
	Metric string `json:"metric"`

	OldMedian float64 `json:"old_median"`
	NewMedian float64 `json:"new_median"`
	OldN      int     `json:"old_n"`
	NewN      int     `json:"new_n"`

	// DeltaPct is (new-old)/old in percent; DeltaDefined is false when
	// the old median is zero (e.g. an all-zero allocation series) or a
	// side is empty, in which case DeltaPct is meaningless and held at 0.
	DeltaPct     float64 `json:"delta_pct"`
	DeltaDefined bool    `json:"delta_defined"`

	// P is the two-sided Mann-Whitney p-value; PDefined is false when
	// either side had fewer than the minimum finite samples.
	P        float64 `json:"p"`
	PDefined bool    `json:"p_defined"`
	// Effect is Cliff's delta in [-1, 1]; positive means the new samples
	// tend larger.
	Effect float64 `json:"effect"`

	// Significant is PDefined && P < the report's Alpha.
	Significant bool `json:"significant"`

	// Dropped counts non-finite samples removed before comparison
	// (old + new); nonzero values deserve suspicion.
	Dropped int `json:"dropped,omitempty"`
}

// ScenarioDelta groups a scenario's metric deltas; OnlyIn marks
// scenarios present in just one run (suite drift).
type ScenarioDelta struct {
	Name    string        `json:"name"`
	Group   string        `json:"group,omitempty"`
	OnlyIn  string        `json:"only_in,omitempty"` // "old" or "new"
	Metrics []MetricDelta `json:"metrics,omitempty"`
}

// Report is the full two-run comparison `safesense-perf compare` emits.
type Report struct {
	Alpha       float64 `json:"alpha"`
	OldRevision string  `json:"old_revision,omitempty"`
	NewRevision string  `json:"new_revision,omitempty"`
	OldHost     Host    `json:"old_host"`
	NewHost     Host    `json:"new_host"`
	// HostMismatch flags comparisons across differing machine shapes:
	// still rendered, but deltas reflect the hardware as much as the
	// code.
	HostMismatch bool `json:"host_mismatch,omitempty"`

	Scenarios []ScenarioDelta `json:"scenarios"`
}

// DefaultAlpha is the significance level the comparator and gate use
// unless overridden.
const DefaultAlpha = 0.05

// Compare diffs two runs scenario by scenario, metric by metric. Alpha
// <= 0 means DefaultAlpha. Scenario order follows the new run, with
// old-only scenarios appended.
func Compare(old, new *Run, alpha float64) *Report {
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	rep := &Report{
		Alpha:        alpha,
		OldRevision:  old.VCSRevision,
		NewRevision:  new.VCSRevision,
		OldHost:      old.Host,
		NewHost:      new.Host,
		HostMismatch: !old.Host.Equal(new.Host),
	}

	oldByName := make(map[string]*ScenarioResult, len(old.Scenarios))
	for i := range old.Scenarios {
		oldByName[old.Scenarios[i].Name] = &old.Scenarios[i]
	}
	seen := make(map[string]bool, len(new.Scenarios))
	for i := range new.Scenarios {
		ns := &new.Scenarios[i]
		seen[ns.Name] = true
		os, ok := oldByName[ns.Name]
		if !ok {
			rep.Scenarios = append(rep.Scenarios, ScenarioDelta{
				Name: ns.Name, Group: ns.Group, OnlyIn: "new",
			})
			continue
		}
		rep.Scenarios = append(rep.Scenarios, compareScenario(os, ns, alpha))
	}
	// Old-only scenarios, in the old run's order.
	for i := range old.Scenarios {
		if s := &old.Scenarios[i]; !seen[s.Name] {
			rep.Scenarios = append(rep.Scenarios, ScenarioDelta{
				Name: s.Name, Group: s.Group, OnlyIn: "old",
			})
		}
	}
	return rep
}

// compareScenario diffs every metric present in either side, core
// metrics first, extras in sorted-name order.
func compareScenario(old, new *ScenarioResult, alpha float64) ScenarioDelta {
	sd := ScenarioDelta{Name: new.Name, Group: new.Group}
	names := metricUnion(old, new)
	for _, m := range names {
		sd.Metrics = append(sd.Metrics, compareMetric(m, old.Samples(m), new.Samples(m), alpha))
	}
	return sd
}

// metricUnion merges both sides' metric names, core three first, extras
// sorted.
func metricUnion(old, new *ScenarioResult) []string {
	extras := make(map[string]bool)
	for k := range old.Extra {
		extras[k] = true
	}
	for k := range new.Extra {
		extras[k] = true
	}
	keys := make([]string, 0, len(extras))
	for k := range extras {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return append([]string{MetricNsPerOp, MetricAllocsPerOp, MetricBytesPerOp}, keys...)
}

// compareMetric builds one MetricDelta, guarding every degenerate
// combination: empty sides, zero old medians, non-finite samples, tiny
// sample counts.
func compareMetric(name string, oldS, newS []float64, alpha float64) MetricDelta {
	oldF, droppedOld := finite(oldS)
	newF, droppedNew := finite(newS)
	d := MetricDelta{
		Metric:  name,
		OldN:    len(oldF),
		NewN:    len(newF),
		Dropped: droppedOld + droppedNew,
	}
	om, oOK := median(oldF)
	nm, nOK := median(newF)
	d.OldMedian, d.NewMedian = om, nm
	if oOK && nOK && om != 0 {
		d.DeltaPct = (nm - om) / om * 100
		d.DeltaDefined = true
	} else if oOK && nOK && nm == om {
		// 0 → 0 (all-zero allocation series): a defined, exact zero delta.
		d.DeltaPct = 0
		d.DeltaDefined = true
	}
	if p, ok := MannWhitney(oldF, newF); ok {
		d.P, d.PDefined = p, true
		d.Significant = p < alpha
	}
	d.Effect = CliffsDelta(oldF, newF)
	return d
}

// GateOptions tunes the regression gate `safesense-perf check` applies
// to a Report.
type GateOptions struct {
	// ThresholdPct is the minimum median worsening (percent) that
	// counts as a regression; <= 0 means DefaultThresholdPct. Holding a
	// threshold above pure significance keeps the gate from tripping on
	// real-but-tiny shifts a shared CI box produces.
	ThresholdPct float64
	// Metrics are the gated metric names; nil means DefaultGateMetrics.
	// Gated metrics are all "larger is worse".
	Metrics []string
	// Waivers maps scenario names to a reason; a waived scenario's
	// regressions are reported but do not fail the gate (the
	// safesense:perf-waiver escape hatch).
	Waivers map[string]string
	// MinAbsDelta sets a per-metric absolute floor the median shift must
	// also clear; nil means DefaultMinAbsDelta. Without it, a fully
	// amortized hot path reading 0.01 allocs/op can "regress" 15% on
	// background-GC noise worth a hundredth of an allocation.
	MinAbsDelta map[string]float64
}

// DefaultMinAbsDelta ignores allocation shifts below half an allocation
// per op — relative thresholds alone misfire on near-zero medians.
var DefaultMinAbsDelta = map[string]float64{MetricAllocsPerOp: 0.5}

// DefaultThresholdPct is the gate's default median-worsening threshold.
const DefaultThresholdPct = 10.0

// DefaultGateMetrics are the metrics the gate defends: wall time and
// allocation count, both stable under repetition and both "larger is
// worse". Extra series (phase timings, runs_per_sec) stay advisory.
var DefaultGateMetrics = []string{MetricNsPerOp, MetricAllocsPerOp}

// Regression is one gate finding.
type Regression struct {
	Scenario string      `json:"scenario"`
	Delta    MetricDelta `json:"delta"`
	// Waived regressions are reported but not fatal; Reason carries the
	// waiver text.
	Waived bool   `json:"waived,omitempty"`
	Reason string `json:"reason,omitempty"`
	// HotFunctions names the functions whose flat CPU share grew between
	// the two captures' embedded profiles (AttributeRegressions fills it
	// when both sides carry one) — the gate's "what grew" answer.
	HotFunctions []profile.FuncDelta `json:"hot_functions,omitempty"`
}

// Gate scans the report for statistically significant regressions
// beyond the threshold on the gated metrics. failed is true when any
// unwaived regression exists. A regression requires all three: a
// defined median delta past the threshold, a defined p-value below
// alpha, and a positive effect size — so noise, tiny-N scenarios, and
// all-zero series can never fail the build on their own.
func (r *Report) Gate(opt GateOptions) (regressions []Regression, failed bool) {
	threshold := opt.ThresholdPct
	if threshold <= 0 {
		threshold = DefaultThresholdPct
	}
	metrics := opt.Metrics
	if metrics == nil {
		metrics = DefaultGateMetrics
	}
	gated := make(map[string]bool, len(metrics))
	for _, m := range metrics {
		gated[m] = true
	}
	minAbs := opt.MinAbsDelta
	if minAbs == nil {
		minAbs = DefaultMinAbsDelta
	}
	for _, sc := range r.Scenarios {
		for _, d := range sc.Metrics {
			if !gated[d.Metric] {
				continue
			}
			if !d.DeltaDefined || !d.PDefined || !d.Significant {
				continue
			}
			if d.DeltaPct < threshold || d.Effect <= 0 {
				continue
			}
			if d.NewMedian-d.OldMedian < minAbs[d.Metric] {
				continue
			}
			reg := Regression{Scenario: sc.Name, Delta: d}
			if reason, ok := opt.Waivers[sc.Name]; ok {
				reg.Waived = true
				reg.Reason = reason
			} else {
				failed = true
			}
			regressions = append(regressions, reg)
		}
	}
	return regressions, failed
}

// CheckResult is the JSON document `safesense-perf check -json` emits.
type CheckResult struct {
	Failed       bool         `json:"failed"`
	ThresholdPct float64      `json:"threshold_pct"`
	Alpha        float64      `json:"alpha"`
	Regressions  []Regression `json:"regressions"`
}

// ValidateSchema rejects runs from an unknown schema generation with an
// actionable error.
func (r *Run) ValidateSchema() error {
	if r.SchemaVersion != SchemaVersion {
		return fmt.Errorf("perf: run has schema_version %d, this binary reads %d (regenerate the file with the matching safesense-perf)",
			r.SchemaVersion, SchemaVersion)
	}
	return nil
}
