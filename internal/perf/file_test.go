package perf

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNextBenchPath(t *testing.T) {
	dir := t.TempDir()
	// Empty (and even missing) directories start at 1.
	p, err := NextBenchPath(dir)
	if err != nil || filepath.Base(p) != "BENCH_0001.json" {
		t.Errorf("empty dir: %q, %v", p, err)
	}
	p, err = NextBenchPath(filepath.Join(dir, "missing"))
	if err != nil || filepath.Base(p) != "BENCH_0001.json" {
		t.Errorf("missing dir: %q, %v", p, err)
	}

	for _, name := range []string{"BENCH_0001.json", "BENCH_0007.json", "BENCH_3.json", "notes.txt", "BENCH_x.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err = NextBenchPath(dir)
	if err != nil || filepath.Base(p) != "BENCH_0008.json" {
		t.Errorf("populated dir: %q, %v", p, err)
	}
}

func TestRunFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	run := mkRun("deadbeef", map[string][]float64{
		"kernel_fft": {100, 101, 99, 100},
	})
	run.Scenarios[0].Extra = map[string][]float64{
		ExtraHeapBytes: {1024, 1024, 1024, 1024},
	}
	path := filepath.Join(dir, "nested", "BENCH_0001.json")
	if err := WriteRunFile(path, run); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRunFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.VCSRevision != "deadbeef" || len(got.Scenarios) != 1 {
		t.Errorf("round trip lost data: %+v", got)
	}
	s := got.Scenarios[0]
	if s.Name != "kernel_fft" || len(s.NsPerOp) != 4 || s.Extra[ExtraHeapBytes][0] != 1024 {
		t.Errorf("scenario round trip: %+v", s)
	}
	// Pretty-printed with trailing newline, for reviewable diffs.
	raw, _ := os.ReadFile(path)
	if !strings.HasSuffix(string(raw), "\n") || !strings.Contains(string(raw), "  \"schema_version\"") {
		t.Error("file is not pretty-printed with trailing newline")
	}
}

func TestReadRunFileRejects(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadRunFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := ReadRunFile(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
	future := mkRun("x", nil)
	future.SchemaVersion = SchemaVersion + 1
	fp := filepath.Join(dir, "future.json")
	if err := WriteRunFile(fp, future); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRunFile(fp); err == nil || !strings.Contains(err.Error(), "schema_version") {
		t.Errorf("future schema accepted: %v", err)
	}
}

func TestParseWaivers(t *testing.T) {
	input := `# perf waivers — one directive per line
safesense:perf-waiver kernel_fft known 20% slowdown from bounds checks, tracked

safesense:perf-waiver campaign_w4 shared CI box starves workers
`
	waivers, err := ParseWaivers(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(waivers) != 2 {
		t.Fatalf("waivers = %v", waivers)
	}
	if waivers["kernel_fft"] != "known 20% slowdown from bounds checks, tracked" {
		t.Errorf("reason = %q", waivers["kernel_fft"])
	}

	for _, bad := range []string{
		"kernel_fft no directive prefix",
		"safesense:perf-waiver only_scenario_no_reason",
		"safesense:perf-waiver",
	} {
		if _, err := ParseWaivers(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted malformed line %q", bad)
		}
	}
}

func TestReadWaiversFile(t *testing.T) {
	dir := t.TempDir()
	// Missing file: strict empty set, not an error.
	w, err := ReadWaiversFile(filepath.Join(dir, "absent.txt"))
	if err != nil || len(w) != 0 {
		t.Errorf("missing waivers file: %v, %v", w, err)
	}
	path := filepath.Join(dir, "waivers.txt")
	os.WriteFile(path, []byte("safesense:perf-waiver s reason here\n"), 0o644)
	w, err = ReadWaiversFile(path)
	if err != nil || w["s"] != "reason here" {
		t.Errorf("waivers = %v, %v", w, err)
	}
}

func TestVCSRevisionDoesNotPanic(t *testing.T) {
	// Test binaries usually carry no VCS stamp; the call must still be
	// safe and return a plain string.
	_ = VCSRevision()
}

func TestShortRev(t *testing.T) {
	if got := shortRev("0123456789abcdef0123"); got != "0123456789ab" {
		t.Errorf("shortRev = %q", got)
	}
	if got := shortRev("0123456789abcdef0123-dirty"); got != "0123456789ab-dirty" {
		t.Errorf("shortRev dirty = %q", got)
	}
	if got := shortRev("abc"); got != "abc" {
		t.Errorf("shortRev short = %q", got)
	}
}
