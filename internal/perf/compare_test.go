package perf

import (
	"math"
	"strings"
	"testing"
)

// mkRun builds a run document with one scenario per entry; each entry's
// ns/op samples are given directly, allocs default to all-zero (a common
// real shape: fully amortized hot paths).
func mkRun(rev string, scenarios map[string][]float64) *Run {
	run := &Run{
		SchemaVersion: SchemaVersion,
		VCSRevision:   rev,
		Host:          ReadHost(),
		Config:        Config{Reps: 8, Warmup: 1, MinRepMillis: 20},
	}
	for _, name := range sortedStrings(scenarios) {
		ns := scenarios[name]
		run.Scenarios = append(run.Scenarios, ScenarioResult{
			Name:        name,
			Group:       "test",
			Ops:         1,
			NsPerOp:     ns,
			AllocsPerOp: make([]float64, len(ns)),
			BytesPerOp:  make([]float64, len(ns)),
		})
	}
	return run
}

func sortedStrings(m map[string][]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func findScenario(t *testing.T, rep *Report, name string) ScenarioDelta {
	t.Helper()
	for _, sc := range rep.Scenarios {
		if sc.Name == name {
			return sc
		}
	}
	t.Fatalf("scenario %q not in report", name)
	return ScenarioDelta{}
}

func findMetric(t *testing.T, sc ScenarioDelta, metric string) MetricDelta {
	t.Helper()
	for _, d := range sc.Metrics {
		if d.Metric == metric {
			return d
		}
	}
	t.Fatalf("metric %q not in scenario %q", metric, sc.Name)
	return MetricDelta{}
}

// TestCompareIdenticalRuns: comparing a run against itself yields no
// significant deltas and a defined zero delta everywhere.
func TestCompareIdenticalRuns(t *testing.T) {
	run := mkRun("aaa", map[string][]float64{
		"kernel_fft": {100, 101, 99, 100, 102, 98, 100, 101},
	})
	rep := Compare(run, run, 0)
	if rep.Alpha != DefaultAlpha {
		t.Errorf("alpha=%v, want default %v", rep.Alpha, DefaultAlpha)
	}
	if rep.HostMismatch {
		t.Error("same host must not mismatch")
	}
	d := findMetric(t, findScenario(t, rep, "kernel_fft"), MetricNsPerOp)
	if d.Significant {
		t.Errorf("identical runs flagged significant: %+v", d)
	}
	if !d.DeltaDefined || d.DeltaPct != 0 {
		t.Errorf("identical runs: delta=%v defined=%v, want defined 0", d.DeltaPct, d.DeltaDefined)
	}
}

// TestCompareAllZeroAllocs: an all-zero allocation series on both sides
// is a defined zero delta (not undefined, not significant) — the gate
// must treat zero-alloc hot paths as stable, not degenerate.
func TestCompareAllZeroAllocs(t *testing.T) {
	run := mkRun("aaa", map[string][]float64{
		"hotpath": {50, 51, 49, 50, 50, 51, 49, 50},
	})
	rep := Compare(run, run, 0)
	d := findMetric(t, findScenario(t, rep, "hotpath"), MetricAllocsPerOp)
	if !d.DeltaDefined || d.DeltaPct != 0 {
		t.Errorf("0->0 allocs: delta=%v defined=%v, want defined 0", d.DeltaPct, d.DeltaDefined)
	}
	if d.Significant {
		t.Error("0->0 allocs flagged significant")
	}
	// Zero -> nonzero: percent delta is undefined but significance can
	// still fire, so the gate's DeltaDefined requirement is load-bearing.
	grew := mkRun("bbb", map[string][]float64{
		"hotpath": {50, 51, 49, 50, 50, 51, 49, 50},
	})
	grew.Scenarios[0].AllocsPerOp = []float64{3, 3, 3, 3, 3, 3, 3, 3}
	rep = Compare(run, grew, 0)
	d = findMetric(t, findScenario(t, rep, "hotpath"), MetricAllocsPerOp)
	if d.DeltaDefined {
		t.Errorf("0->3 allocs: delta defined (%v%%), want undefined", d.DeltaPct)
	}
	regs, failed := rep.Gate(GateOptions{})
	if failed {
		t.Errorf("undefined delta must not fail the gate: %+v", regs)
	}
}

// TestCompareTinyN: below the Mann-Whitney minimum the p-value is
// undefined and the scenario can never regress.
func TestCompareTinyN(t *testing.T) {
	old := mkRun("aaa", map[string][]float64{"s": {10, 11, 12}})
	new := mkRun("bbb", map[string][]float64{"s": {100, 110, 120}})
	rep := Compare(old, new, 0)
	d := findMetric(t, findScenario(t, rep, "s"), MetricNsPerOp)
	if d.PDefined || d.Significant {
		t.Errorf("n=3: p_defined=%v significant=%v, want neither", d.PDefined, d.Significant)
	}
	if !d.DeltaDefined {
		t.Error("median delta is still computable at n=3")
	}
	if _, failed := rep.Gate(GateOptions{}); failed {
		t.Error("tiny-N shift must not fail the gate")
	}
}

// TestCompareNaNSamples: non-finite samples are counted in Dropped and
// excluded from medians and ranking.
func TestCompareNaNSamples(t *testing.T) {
	old := mkRun("aaa", map[string][]float64{"s": {10, 10, 10, 10, math.NaN()}})
	new := mkRun("bbb", map[string][]float64{"s": {10, 10, 10, 10, math.Inf(1)}})
	rep := Compare(old, new, 0)
	d := findMetric(t, findScenario(t, rep, "s"), MetricNsPerOp)
	if d.Dropped != 2 {
		t.Errorf("dropped=%d, want 2", d.Dropped)
	}
	if d.OldN != 4 || d.NewN != 4 {
		t.Errorf("n=%d/%d, want 4/4", d.OldN, d.NewN)
	}
	if math.IsNaN(d.OldMedian) || math.IsInf(d.NewMedian, 0) {
		t.Errorf("medians contaminated: %v %v", d.OldMedian, d.NewMedian)
	}
}

// TestCompareScenarioDrift: scenarios present in only one run are
// reported as such, never diffed.
func TestCompareScenarioDrift(t *testing.T) {
	old := mkRun("aaa", map[string][]float64{
		"stays":   {1, 2, 3, 4},
		"removed": {1, 2, 3, 4},
	})
	new := mkRun("bbb", map[string][]float64{
		"stays": {1, 2, 3, 4},
		"added": {1, 2, 3, 4},
	})
	rep := Compare(old, new, 0)
	if got := findScenario(t, rep, "added").OnlyIn; got != "new" {
		t.Errorf("added: only_in=%q, want new", got)
	}
	if got := findScenario(t, rep, "removed").OnlyIn; got != "old" {
		t.Errorf("removed: only_in=%q, want old", got)
	}
	if got := findScenario(t, rep, "stays").OnlyIn; got != "" {
		t.Errorf("stays: only_in=%q, want empty", got)
	}
}

// TestGateSyntheticRegression is the acceptance-criterion test: an
// injected regression (clear separation, > threshold) fails the gate; a
// matching waiver reports it without failing.
func TestGateSyntheticRegression(t *testing.T) {
	old := mkRun("aaa", map[string][]float64{
		"kernel_fft": {100, 101, 99, 100, 102, 98, 100, 101},
		"quiet":      {50, 51, 49, 50, 50, 51, 49, 50},
	})
	// 50% slower with no overlap: unambiguous.
	new := mkRun("bbb", map[string][]float64{
		"kernel_fft": {150, 151, 149, 150, 152, 148, 150, 151},
		"quiet":      {50, 51, 49, 50, 50, 51, 49, 50},
	})
	rep := Compare(old, new, 0)

	regs, failed := rep.Gate(GateOptions{})
	if !failed {
		t.Fatal("injected 50% regression did not fail the gate")
	}
	if len(regs) != 1 || regs[0].Scenario != "kernel_fft" {
		t.Fatalf("regressions = %+v, want exactly kernel_fft", regs)
	}
	if regs[0].Delta.Metric != MetricNsPerOp || regs[0].Waived {
		t.Errorf("regression = %+v, want unwaived ns_per_op", regs[0])
	}
	if regs[0].Delta.DeltaPct < 40 || regs[0].Delta.Effect != 1 {
		t.Errorf("delta=%v%% effect=%v, want ~50%% and 1", regs[0].Delta.DeltaPct, regs[0].Delta.Effect)
	}

	// The same regression under a waiver: reported, not fatal.
	regs, failed = rep.Gate(GateOptions{
		Waivers: map[string]string{"kernel_fft": "known slowdown, tracked"},
	})
	if failed {
		t.Error("waived regression still failed the gate")
	}
	if len(regs) != 1 || !regs[0].Waived || regs[0].Reason != "known slowdown, tracked" {
		t.Errorf("waived regressions = %+v", regs)
	}

	// Raising the threshold above the shift passes outright.
	regs, failed = rep.Gate(GateOptions{ThresholdPct: 75})
	if failed || len(regs) != 0 {
		t.Errorf("threshold 75%%: regs=%+v failed=%v, want clean pass", regs, failed)
	}
}

// TestGateAbsoluteFloor: near-zero allocation medians can shift a large
// relative amount on sub-allocation noise; the absolute floor keeps
// that out of the gate while real per-op allocation growth still fails.
func TestGateAbsoluteFloor(t *testing.T) {
	mk := func(allocs []float64) *Run {
		run := mkRun("r", map[string][]float64{
			"hotpath": {50, 51, 49, 50, 50, 51, 49, 50},
		})
		run.Scenarios[0].AllocsPerOp = allocs
		return run
	}
	// 0.01 -> 0.02 allocs/op: +100%, clearly separated, but far below
	// half an allocation — noise, not a regression.
	old := mk([]float64{0.010, 0.011, 0.009, 0.010, 0.010, 0.011, 0.009, 0.010})
	new := mk([]float64{0.020, 0.021, 0.019, 0.020, 0.020, 0.021, 0.019, 0.020})
	if regs, failed := Compare(old, new, 0).Gate(GateOptions{}); failed {
		t.Errorf("sub-allocation noise failed the gate: %+v", regs)
	}
	// 2 -> 4 allocs/op clears both the relative threshold and the floor.
	old = mk([]float64{2, 2, 2, 2, 2, 2, 2, 2})
	new = mk([]float64{4, 4, 4, 4, 4, 4, 4, 4})
	if _, failed := Compare(old, new, 0).Gate(GateOptions{}); !failed {
		t.Error("real allocation doubling passed the gate")
	}
}

// TestGateIgnoresImprovements: a significant speedup must never trip
// the gate.
func TestGateIgnoresImprovements(t *testing.T) {
	old := mkRun("aaa", map[string][]float64{
		"s": {150, 151, 149, 150, 152, 148, 150, 151},
	})
	new := mkRun("bbb", map[string][]float64{
		"s": {100, 101, 99, 100, 102, 98, 100, 101},
	})
	regs, failed := Compare(old, new, 0).Gate(GateOptions{})
	if failed || len(regs) != 0 {
		t.Errorf("improvement tripped the gate: %+v", regs)
	}
}

// TestGateMetricSelection: non-default gated metrics are honored.
func TestGateMetricSelection(t *testing.T) {
	old := mkRun("aaa", map[string][]float64{"s": {100, 101, 99, 100, 102, 98, 100, 101}})
	new := mkRun("bbb", map[string][]float64{"s": {100, 101, 99, 100, 102, 98, 100, 101}})
	new.Scenarios[0].BytesPerOp = []float64{900, 901, 899, 900, 902, 898, 900, 901}
	old.Scenarios[0].BytesPerOp = []float64{100, 101, 99, 100, 102, 98, 100, 101}
	rep := Compare(old, new, 0)
	// bytes_per_op is not gated by default.
	if _, failed := rep.Gate(GateOptions{}); failed {
		t.Error("bytes_per_op regression failed the default gate")
	}
	regs, failed := rep.Gate(GateOptions{Metrics: []string{MetricBytesPerOp}})
	if !failed || len(regs) != 1 {
		t.Errorf("explicit bytes gate: regs=%+v failed=%v", regs, failed)
	}
}

func TestValidateSchema(t *testing.T) {
	run := mkRun("aaa", nil)
	if err := run.ValidateSchema(); err != nil {
		t.Errorf("current schema rejected: %v", err)
	}
	run.SchemaVersion = SchemaVersion + 7
	err := run.ValidateSchema()
	if err == nil || !strings.Contains(err.Error(), "schema_version") {
		t.Errorf("future schema accepted: %v", err)
	}
}

// TestFormatReportAndRegressions exercises the text renderers over a
// report with a mismatch warning, a regression, and drift lines.
func TestFormatReportAndRegressions(t *testing.T) {
	old := mkRun("aaaaaaaaaaaaaaaaaaaa", map[string][]float64{
		"kernel_fft": {100, 101, 99, 100, 102, 98, 100, 101},
		"removed":    {1, 2, 3, 4},
	})
	new := mkRun("bbbbbbbbbbbbbbbbbbbb-dirty", map[string][]float64{
		"kernel_fft": {150, 151, 149, 150, 152, 148, 150, 151},
	})
	new.Host.CPUs = old.Host.CPUs + 4
	rep := Compare(old, new, 0)

	var b strings.Builder
	FormatReport(&b, rep, false)
	out := b.String()
	for _, want := range []string{
		"aaaaaaaaaaaa", "bbbbbbbbbbbb-dirty", "WARNING", "kernel_fft",
		"ns_per_op", "+50.", "only in old run",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}

	regs, failed := rep.Gate(GateOptions{})
	b.Reset()
	FormatRegressions(&b, regs, DefaultThresholdPct, DefaultAlpha, failed)
	out = b.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "FAIL") {
		t.Errorf("regression output missing verdict:\n%s", out)
	}
	if !strings.Contains(out, WaiverDirective) {
		t.Errorf("failure message does not mention the waiver escape hatch:\n%s", out)
	}

	b.Reset()
	FormatRegressions(&b, nil, DefaultThresholdPct, DefaultAlpha, false)
	if !strings.Contains(b.String(), "PASS") {
		t.Errorf("clean gate output missing PASS:\n%s", b.String())
	}
}

func TestFormatRun(t *testing.T) {
	run := mkRun("cccccccccccccccccccc", map[string][]float64{
		"kernel_fft": {46000, 46100, 45900, 46000},
	})
	var b strings.Builder
	FormatRun(&b, run)
	out := b.String()
	for _, want := range []string{"kernel_fft", "46", "µs", "cccccccccccc"} {
		if !strings.Contains(out, want) {
			t.Errorf("run output missing %q:\n%s", want, out)
		}
	}
}
