package spectrum

import (
	"math"
	"math/cmplx"
	"testing"

	"safesense/internal/dsp/window"
	"safesense/internal/noise"
)

func tone(n int, freq, fs float64) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Rect(1, 2*math.Pi*freq*float64(i)/fs)
	}
	return x
}

func TestDominantFrequencyExactBin(t *testing.T) {
	fs := 1000.0
	x := tone(256, 125, fs) // bin 32 exactly
	got, err := DominantFrequency(x, nil, fs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-125) > 1e-6 {
		t.Fatalf("freq = %v, want 125", got)
	}
}

func TestDominantFrequencyOffBin(t *testing.T) {
	// Off-bin tone: parabolic interpolation should get within a fraction
	// of a bin (bin width = fs/n = 3.90625 Hz).
	fs := 1000.0
	x := tone(256, 127.3, fs)
	got, err := DominantFrequency(x, window.Hann(256), fs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-127.3) > 1.0 {
		t.Fatalf("freq = %v, want ~127.3", got)
	}
}

func TestDominantFrequencyNegative(t *testing.T) {
	fs := 1000.0
	x := tone(256, -250, fs)
	got, err := DominantFrequency(x, nil, fs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(-250)) > 1e-6 {
		t.Fatalf("freq = %v, want -250", got)
	}
}

func TestFindTwoPeaks(t *testing.T) {
	fs := 1000.0
	n := 512
	x := make([]complex128, n)
	for i := range x {
		x[i] = tone(n, 100, fs)[i] + tone(n, 300, fs)[i]
	}
	psd, freqs := Periodogram(x, window.Hann(n), fs)
	peaks, err := FindPeaks(psd, freqs, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(peaks) != 2 {
		t.Fatalf("found %d peaks", len(peaks))
	}
	got := []float64{peaks[0].Freq, peaks[1].Freq}
	if got[0] > got[1] {
		got[0], got[1] = got[1], got[0]
	}
	if math.Abs(got[0]-100) > 2 || math.Abs(got[1]-300) > 2 {
		t.Fatalf("peaks = %v, want ~[100 300]", got)
	}
}

func TestPeaksInNoise(t *testing.T) {
	fs := 1000.0
	n := 1024
	src := noise.NewSource(11)
	x := src.AddAWGN(tone(n, 222, fs), 10)
	got, err := DominantFrequency(x, window.Hann(n), fs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-222) > 2 {
		t.Fatalf("freq in noise = %v, want ~222", got)
	}
}

func TestPeriodogramParseval(t *testing.T) {
	// Rectangular-window periodogram total power equals signal power.
	src := noise.NewSource(3)
	x := src.ComplexNoiseVec(256, 2.0)
	psd, _ := Periodogram(x, nil, 1)
	got := TotalPower(psd)
	want := noise.AveragePower(x)
	if math.Abs(got-want) > 1e-9*(1+want) {
		t.Fatalf("TotalPower = %v, want %v", got, want)
	}
}

func TestFindPeaksValidation(t *testing.T) {
	if _, err := FindPeaks([]float64{1, 2}, []float64{0}, 1, 1); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := FindPeaks([]float64{1, 2}, []float64{0, 1}, 0, 1); err == nil {
		t.Fatal("k=0 should fail")
	}
	// All-zero PSD: no positive local maxima.
	if _, err := FindPeaks([]float64{0, 0, 0}, []float64{0, 1, 2}, 1, 1); err == nil {
		t.Fatal("flat zero PSD should fail")
	}
}

func TestPeriodogramEmpty(t *testing.T) {
	psd, freqs := Periodogram(nil, nil, 1)
	if psd != nil || freqs != nil {
		t.Fatal("empty input should yield nil")
	}
}

func TestMinSeparationSuppression(t *testing.T) {
	// Single strong tone with window side lobes: requesting 2 peaks with a
	// wide separation must not return two picks inside the main lobe.
	fs := 1000.0
	n := 256
	x := tone(n, 125, fs)
	psd, freqs := Periodogram(x, window.Hamming(n), fs)
	peaks, err := FindPeaks(psd, freqs, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(peaks) >= 2 {
		sep := math.Abs(peaks[0].Freq - peaks[1].Freq)
		if sep < 10*fs/float64(n) {
			t.Fatalf("peaks too close: %v Hz apart", sep)
		}
	}
}
