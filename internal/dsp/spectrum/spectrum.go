// Package spectrum implements periodogram power spectral density estimation
// and peak picking with parabolic interpolation — the FFT-based
// beat-frequency extractor that the radar ablation compares against
// root-MUSIC.
package spectrum

import (
	"errors"
	"math"
	"sort"

	"safesense/internal/dsp/fft"
	"safesense/internal/dsp/window"
)

// Periodogram returns the windowed periodogram |FFT(w.x)|^2 / (N*U) of the
// signal and the frequency of each bin for sample rate fs. U is the window
// power normalization so white noise yields a flat density.
func Periodogram(x []complex128, w []float64, fs float64) (psd, freqs []float64) {
	n := len(x)
	if n == 0 {
		return nil, nil
	}
	if w == nil {
		w = window.Rect(n)
	}
	u := 0.0
	for _, v := range w {
		u += v * v
	}
	u /= float64(n)
	spec := fft.Forward(window.Apply(x, w))
	psd = make([]float64, n)
	for i, v := range spec {
		psd[i] = (real(v)*real(v) + imag(v)*imag(v)) / (float64(n) * u)
	}
	return psd, fft.FreqBins(n, fs)
}

// Peak is a located spectral peak.
type Peak struct {
	// Freq is the interpolated peak frequency in Hz.
	Freq float64
	// Power is the peak PSD value.
	Power float64
	// Bin is the integer bin index of the maximum.
	Bin int
}

// FindPeaks locates up to k local maxima of the PSD, strongest first, and
// refines each frequency by parabolic interpolation over log power. Peaks
// closer than minSepBins bins to an already accepted stronger peak are
// suppressed.
func FindPeaks(psd, freqs []float64, k, minSepBins int) ([]Peak, error) {
	n := len(psd)
	if n != len(freqs) {
		return nil, errors.New("spectrum: psd/freqs length mismatch")
	}
	if k <= 0 {
		return nil, errors.New("spectrum: k must be positive")
	}
	type cand struct {
		bin int
		p   float64
	}
	var cands []cand
	for i := 0; i < n; i++ {
		prev := psd[(i-1+n)%n]
		next := psd[(i+1)%n]
		if psd[i] >= prev && psd[i] >= next && psd[i] > 0 {
			cands = append(cands, cand{i, psd[i]})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].p > cands[b].p })
	var out []Peak
	for _, c := range cands {
		if len(out) == k {
			break
		}
		ok := true
		for _, p := range out {
			if binDist(c.bin, p.Bin, n) < minSepBins {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out = append(out, Peak{
			Freq:  interpolate(psd, freqs, c.bin),
			Power: c.p,
			Bin:   c.bin,
		})
	}
	if len(out) == 0 {
		return nil, errors.New("spectrum: no peaks found")
	}
	return out, nil
}

func binDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// interpolate refines the peak location with a parabolic fit over log power
// on the three bins around the maximum, then converts the fractional bin to
// frequency assuming uniform bin spacing.
func interpolate(psd, freqs []float64, bin int) float64 {
	n := len(psd)
	im := (bin - 1 + n) % n
	ip := (bin + 1) % n
	// Exact-bin tones leave only FFT round-off in the neighbors; parabolic
	// interpolation over those junk values adds noise, so skip it.
	if psd[im] < psd[bin]*1e-9 && psd[ip] < psd[bin]*1e-9 {
		return freqs[bin]
	}
	ym := safeLog(psd[im])
	y0 := safeLog(psd[bin])
	yp := safeLog(psd[ip])
	den := ym - 2*y0 + yp
	delta := 0.0
	if den != 0 {
		delta = 0.5 * (ym - yp) / den
		if delta > 0.5 {
			delta = 0.5
		} else if delta < -0.5 {
			delta = -0.5
		}
	}
	// Uniform spacing: df from adjacent bins (watch the wrap at n/2).
	df := freqs[1] - freqs[0]
	if len(freqs) > 1 {
		return freqs[bin] + delta*df
	}
	return freqs[bin]
}

func safeLog(x float64) float64 {
	if x <= 0 {
		return -745 // log of smallest positive double
	}
	return math.Log(x)
}

// DominantFrequency returns the interpolated frequency of the strongest
// peak of the windowed periodogram of x.
func DominantFrequency(x []complex128, w []float64, fs float64) (float64, error) {
	psd, freqs := Periodogram(x, w, fs)
	peaks, err := FindPeaks(psd, freqs, 1, 1)
	if err != nil {
		return 0, err
	}
	return peaks[0].Freq, nil
}

// TotalPower integrates the PSD over all bins (Parseval-consistent power
// estimate in signal units).
func TotalPower(psd []float64) float64 {
	s := 0.0
	for _, v := range psd {
		s += v
	}
	if len(psd) == 0 {
		return 0
	}
	return s / float64(len(psd))
}
