package window

import (
	"math"
	"testing"
)

func TestWindowLengths(t *testing.T) {
	for _, f := range []struct {
		name string
		fn   Func
	}{{"Rect", Rect}, {"Hann", Hann}, {"Hamming", Hamming}, {"Blackman", Blackman}} {
		for _, n := range []int{1, 2, 7, 64} {
			w := f.fn(n)
			if len(w) != n {
				t.Fatalf("%s(%d) length %d", f.name, n, len(w))
			}
		}
	}
}

func TestWindowSymmetry(t *testing.T) {
	for _, f := range []struct {
		name string
		fn   Func
	}{{"Hann", Hann}, {"Hamming", Hamming}, {"Blackman", Blackman}} {
		w := f.fn(33)
		for i := range w {
			j := len(w) - 1 - i
			if math.Abs(w[i]-w[j]) > 1e-12 {
				t.Fatalf("%s not symmetric at %d", f.name, i)
			}
		}
	}
}

func TestHannEndpointsAndCenter(t *testing.T) {
	w := Hann(65)
	if math.Abs(w[0]) > 1e-12 || math.Abs(w[64]) > 1e-12 {
		t.Fatalf("Hann endpoints = %v, %v", w[0], w[64])
	}
	if math.Abs(w[32]-1) > 1e-12 {
		t.Fatalf("Hann center = %v", w[32])
	}
}

func TestHammingEndpoints(t *testing.T) {
	w := Hamming(11)
	if math.Abs(w[0]-0.08) > 1e-12 {
		t.Fatalf("Hamming endpoint = %v, want 0.08", w[0])
	}
}

func TestWindowsBounded(t *testing.T) {
	for _, f := range []Func{Rect, Hann, Hamming, Blackman} {
		for _, v := range f(101) {
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("window value out of [0,1]: %v", v)
			}
		}
	}
}

// ceq reports exact complex equality. The oracle values below are
// products with 0, 0.5, and 1 — all exact in IEEE-754 — so exact
// comparison is the intended check.
//
//safesense:floatcmp-helper
func ceq(a, b complex128) bool { return a == b }

// feq is ceq for float64 oracle values.
//
//safesense:floatcmp-helper
func feq(a, b float64) bool { return a == b }

func TestApply(t *testing.T) {
	sig := []complex128{1 + 1i, 2, 3i}
	w := []float64{1, 0.5, 0}
	got := Apply(sig, w)
	if !ceq(got[0], 1+1i) || !ceq(got[1], 1) || got[2] != 0 {
		t.Fatalf("Apply = %v", got)
	}
	// Input must not be mutated.
	if !ceq(sig[1], 2) {
		t.Fatal("Apply mutated input")
	}
}

func TestApplyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Apply([]complex128{1}, []float64{1, 2})
}

func TestCoherentGain(t *testing.T) {
	if g := CoherentGain(Rect(10)); math.Abs(g-1) > 1e-12 {
		t.Fatalf("rect gain = %v", g)
	}
	// Hann coherent gain -> 0.5 for large n.
	if g := CoherentGain(Hann(4096)); math.Abs(g-0.5) > 1e-3 {
		t.Fatalf("Hann gain = %v, want ~0.5", g)
	}
	if g := CoherentGain(nil); g != 0 {
		t.Fatalf("empty gain = %v", g)
	}
}

func TestSingleElementWindows(t *testing.T) {
	for _, f := range []Func{Hann, Hamming, Blackman} {
		if w := f(1); !feq(w[0], 1) {
			t.Fatalf("single-point window = %v, want 1", w[0])
		}
	}
}
