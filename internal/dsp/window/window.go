// Package window provides the tapering windows applied before spectral
// estimation of radar beat signals. Windowing trades main-lobe width for
// side-lobe suppression; the FMCW receiver uses Hann by default.
package window

import "math"

// Func generates an n-point window.
type Func func(n int) []float64

// Rect returns the all-ones rectangular window.
func Rect(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// Hann returns the n-point Hann window.
func Hann(n int) []float64 {
	return raisedCosine(n, 0.5, 0.5)
}

// Hamming returns the n-point Hamming window.
func Hamming(n int) []float64 {
	return raisedCosine(n, 0.54, 0.46)
}

// Blackman returns the n-point Blackman window.
func Blackman(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		w[i] = 0.42 - 0.5*math.Cos(x) + 0.08*math.Cos(2*x)
	}
	return w
}

func raisedCosine(n int, a0, a1 float64) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = a0 - a1*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// Apply multiplies the signal by the window element-wise, returning a new
// slice. It panics if the lengths differ.
func Apply(signal []complex128, w []float64) []complex128 {
	if len(signal) != len(w) {
		panic("window: length mismatch")
	}
	out := make([]complex128, len(signal))
	for i, v := range signal {
		out[i] = v * complex(w[i], 0)
	}
	return out
}

// CoherentGain returns the window's coherent gain (mean of the window),
// used to correct amplitude estimates after windowed FFTs.
func CoherentGain(w []float64) float64 {
	if len(w) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range w {
		s += v
	}
	return s / float64(len(w))
}
