package music

import (
	"math"
	"math/cmplx"
	"testing"

	"safesense/internal/noise"
)

func cisTone(n int, w float64) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Rect(1, w*float64(i))
	}
	return x
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Order: 4, NumSignals: 0}); err == nil {
		t.Fatal("NumSignals 0 should fail")
	}
	if _, err := New(Config{Order: 2, NumSignals: 2}); err == nil {
		t.Fatal("Order <= NumSignals should fail")
	}
	if _, err := New(Config{Order: 8, NumSignals: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleToneNoiseless(t *testing.T) {
	est, err := New(Config{Order: 8, NumSignals: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{0.3, 1.1, -0.7, 2.5} {
		x := cisTone(128, w)
		got, err := est.Frequencies(x)
		if err != nil {
			t.Fatalf("w=%v: %v", w, err)
		}
		if math.Abs(got[0]-w) > 1e-5 {
			t.Fatalf("w=%v: estimated %v", w, got[0])
		}
	}
}

func TestSingleToneInNoise(t *testing.T) {
	est, _ := New(Config{Order: 10, NumSignals: 1})
	src := noise.NewSource(17)
	w := 0.9
	x := src.AddAWGN(cisTone(256, w), 15)
	got, err := est.Frequencies(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-w) > 0.02 {
		t.Fatalf("estimated %v, want %v", got[0], w)
	}
}

func TestTwoTonesResolved(t *testing.T) {
	// Two tones closer than an FFT bin of the same data length:
	// MUSIC's super-resolution property.
	n := 256
	w1, w2 := 0.50, 0.62 // separation 0.12 rad/sample
	x := make([]complex128, n)
	t1, t2 := cisTone(n, w1), cisTone(n, w2)
	for i := range x {
		x[i] = t1[i] + 0.8*t2[i]
	}
	src := noise.NewSource(5)
	x = src.AddAWGN(x, 25)
	est, _ := New(Config{Order: 12, NumSignals: 2})
	got, err := est.Frequencies(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-w1) > 0.03 || math.Abs(got[1]-w2) > 0.03 {
		t.Fatalf("estimated %v, want [%v %v]", got, w1, w2)
	}
}

func TestFrequenciesSorted(t *testing.T) {
	n := 256
	x := make([]complex128, n)
	a, b := cisTone(n, -1.2), cisTone(n, 0.8)
	for i := range x {
		x[i] = a[i] + b[i]
	}
	est, _ := New(Config{Order: 10, NumSignals: 2})
	got, err := est.Frequencies(x)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] > got[1] {
		t.Fatalf("not sorted: %v", got)
	}
	if math.Abs(got[0]-(-1.2)) > 1e-3 || math.Abs(got[1]-0.8) > 1e-3 {
		t.Fatalf("estimated %v", got)
	}
}

func TestTooFewSamples(t *testing.T) {
	est, _ := New(Config{Order: 8, NumSignals: 1})
	if _, err := est.Frequencies(cisTone(10, 0.5)); err == nil {
		t.Fatal("short input should fail")
	}
}

func TestCovarianceProperties(t *testing.T) {
	src := noise.NewSource(9)
	x := src.ComplexNoiseVec(200, 1)
	r, err := Covariance(x, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsHermitian(1e-10) {
		t.Fatal("covariance not Hermitian")
	}
	// Diagonal ~ signal power.
	for i := 0; i < 6; i++ {
		d := real(r.At(i, i))
		if d < 0.5 || d > 1.6 {
			t.Fatalf("diagonal %d = %v, want ~1", i, d)
		}
	}
}

func TestCovarianceValidation(t *testing.T) {
	if _, err := Covariance(cisTone(10, 1), 1); err == nil {
		t.Fatal("order < 2 should fail")
	}
	if _, err := Covariance(cisTone(3, 1), 6); err == nil {
		t.Fatal("too few samples should fail")
	}
}

func TestMUSICBeatsFFTResolution(t *testing.T) {
	// Deterministic check of the super-resolution claim that motivates the
	// paper's use of root-MUSIC: two tones separated by ~half an FFT bin
	// are merged by the periodogram (one local max) but resolved by MUSIC.
	n := 128
	dw := math.Pi / float64(n) // half the FFT bin spacing 2*pi/n
	w1 := 0.7
	w2 := w1 + dw
	x := make([]complex128, n)
	t1, t2 := cisTone(n, w1), cisTone(n, w2)
	for i := range x {
		x[i] = t1[i] + t2[i]
	}
	est, _ := New(Config{Order: 16, NumSignals: 2})
	got, err := est.Frequencies(x)
	if err != nil {
		t.Fatal(err)
	}
	sep := got[1] - got[0]
	if sep < dw/2 || sep > 2*dw {
		t.Fatalf("MUSIC separation = %v, want ~%v", sep, dw)
	}
	mid := (got[0] + got[1]) / 2
	if math.Abs(mid-(w1+w2)/2) > 0.01 {
		t.Fatalf("MUSIC midpoint = %v, want %v", mid, (w1+w2)/2)
	}
}
