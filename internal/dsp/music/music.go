// Package music implements the root-MUSIC super-resolution frequency
// estimator. The paper extracts the FMCW radar's beat frequencies with
// MATLAB's root MUSIC; this package reproduces that pipeline from scratch:
//
//  1. estimate an order-m sample covariance of the snapshot stream with
//     forward–backward averaging,
//  2. eigendecompose it (Hermitian Jacobi via internal/cmat),
//  3. form the noise-subspace polynomial D(z) = sum over noise eigenvectors
//     of V(z) and its conjugate-reciprocal,
//  4. root it (Durand–Kerner via internal/poly) and pick the k roots inside
//     the unit circle that lie closest to it; their angles are the
//     normalized signal frequencies.
package music

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"safesense/internal/cmat"
	"safesense/internal/poly"
)

// Config parameterizes the estimator.
type Config struct {
	// Order m is the covariance dimension (subarray length). It must
	// exceed NumSignals and be at most len(signal). Typical: 8–16.
	Order int
	// NumSignals is the assumed number of complex exponentials.
	NumSignals int
}

// Estimator estimates the frequencies of complex exponentials in noise.
type Estimator struct {
	cfg Config
}

// New validates the configuration and returns an Estimator.
func New(cfg Config) (*Estimator, error) {
	if cfg.NumSignals < 1 {
		return nil, fmt.Errorf("music: NumSignals must be >= 1, got %d", cfg.NumSignals)
	}
	if cfg.Order <= cfg.NumSignals {
		return nil, fmt.Errorf("music: Order (%d) must exceed NumSignals (%d)", cfg.Order, cfg.NumSignals)
	}
	return &Estimator{cfg: cfg}, nil
}

// Frequencies estimates the normalized angular frequencies (radians/sample,
// in (-pi, pi]) of the configured number of complex exponentials present in
// x. The result is sorted ascending.
func (e *Estimator) Frequencies(x []complex128) ([]float64, error) {
	m := e.cfg.Order
	if len(x) < 2*m {
		return nil, fmt.Errorf("music: need at least %d samples for order %d, got %d", 2*m, m, len(x))
	}
	r, err := Covariance(x, m)
	if err != nil {
		return nil, err
	}
	return e.FrequenciesFromCovariance(r)
}

// FrequenciesFromCovariance runs steps 2–4 on a precomputed order-m
// covariance matrix.
func (e *Estimator) FrequenciesFromCovariance(r *cmat.Dense) ([]float64, error) {
	m := e.cfg.Order
	k := e.cfg.NumSignals
	if rr, rc := r.Dims(); rr != m || rc != m {
		return nil, fmt.Errorf("music: covariance must be %dx%d", m, m)
	}
	_, vecs, err := cmat.EigenHermitian(r)
	if err != nil {
		return nil, err
	}
	// Noise subspace: eigenvectors of the m-k smallest eigenvalues, which
	// EigenHermitian returns first (ascending order).
	// Build the root-MUSIC polynomial
	//   D(z) = sum_{noise v} V_v(z) * conj(V_v(1/conj(z))),
	// with V_v(z) = sum_i conj(v[i]) z^i, so that on the unit circle
	// D(e^{jw}) = sum_v |v^H a(w)|^2 with a(w) the steering vector — the
	// MUSIC null spectrum, vanishing exactly at the signal frequencies.
	// The coefficient at lag j is c[j] = sum_v sum_i conj(v[i]) * v[i-j];
	// D has degree 2(m-1) and c[-j] = conj(c[j]).
	coeffs := make([]complex128, 2*m-1) // index j+m-1 holds lag j in [-(m-1), m-1]
	for col := 0; col < m-k; col++ {
		v := make([]complex128, m)
		for i := 0; i < m; i++ {
			v[i] = vecs.At(i, col)
		}
		for j := -(m - 1); j <= m-1; j++ {
			var s complex128
			for i := 0; i < m; i++ {
				i2 := i - j
				if i2 < 0 || i2 >= m {
					continue
				}
				s += cmplx.Conj(v[i]) * v[i2]
			}
			coeffs[j+m-1] += s
		}
	}
	p := poly.New(coeffs...)
	if p.Degree() < 2 {
		return nil, errors.New("music: degenerate noise-subspace polynomial")
	}
	roots, err := poly.Roots(p, poly.RootsOptions{MaxIter: 3000, Tol: 1e-11})
	if err != nil {
		return nil, fmt.Errorf("music: rooting failed: %w", err)
	}
	// Roots come in conjugate-reciprocal pairs (z, 1/conj(z)). Keep roots
	// strictly inside (or on) the unit circle, then pick the k closest to
	// the circle; their angles are the frequencies.
	type cand struct {
		z    complex128
		dist float64
	}
	var cands []cand
	for _, z := range roots {
		a := cmplx.Abs(z)
		if a <= 1+1e-9 {
			cands = append(cands, cand{z, math.Abs(1 - a)})
		}
	}
	if len(cands) < k {
		return nil, fmt.Errorf("music: only %d in-circle roots for %d signals", len(cands), k)
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
	// De-duplicate near-coincident picks (a root exactly on the circle can
	// appear twice from the reciprocal pair).
	var freqs []float64
	for _, c := range cands {
		w := cmplx.Phase(c.z)
		dup := false
		for _, f := range freqs {
			if angDist(f, w) < 1e-4 {
				dup = true
				break
			}
		}
		if !dup {
			freqs = append(freqs, w)
			if len(freqs) == k {
				break
			}
		}
	}
	if len(freqs) < k {
		return nil, fmt.Errorf("music: found %d distinct frequencies, want %d", len(freqs), k)
	}
	sort.Float64s(freqs)
	return freqs, nil
}

func angDist(a, b float64) float64 {
	d := math.Mod(math.Abs(a-b), 2*math.Pi)
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}

// Covariance estimates the order-m sample covariance of x using overlapping
// snapshots with forward–backward averaging, the standard conditioning step
// for root-MUSIC with coherent or short data.
func Covariance(x []complex128, m int) (*cmat.Dense, error) {
	n := len(x)
	if m < 2 {
		return nil, fmt.Errorf("music: order must be >= 2, got %d", m)
	}
	if n < m {
		return nil, fmt.Errorf("music: %d samples < order %d", n, m)
	}
	r := cmat.NewDense(m, m)
	count := 0
	for s := 0; s+m <= n; s++ {
		snap := x[s : s+m]
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				r.Set(i, j, r.At(i, j)+snap[i]*cmplx.Conj(snap[j]))
			}
		}
		count++
	}
	inv := complex(1/float64(count), 0)
	r = r.Scale(inv)
	// Forward-backward averaging: R_fb = (R + J * conj(R) * J) / 2 with J
	// the exchange matrix.
	fb := cmat.NewDense(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			fb.Set(i, j, (r.At(i, j)+cmplx.Conj(r.At(m-1-i, m-1-j)))/2)
		}
	}
	return fb, nil
}
