package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSignal(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			s += x[t] * cmplx.Rect(1, -2*math.Pi*float64(k*t)/float64(n))
		}
		out[k] = s
	}
	return out
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 31, 64, 100} {
		x := randSignal(rng, n)
		got := Forward(x)
		want := naiveDFT(x)
		if e := maxErr(got, want); e > 1e-8 {
			t.Fatalf("n=%d: max error %v vs naive DFT", n, e)
		}
	}
}

func TestImpulseIsFlat(t *testing.T) {
	x := make([]complex128, 16)
	x[0] = 1
	spec := Forward(x)
	for k, v := range spec {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", k, v)
		}
	}
}

func TestSinusoidPeakBin(t *testing.T) {
	// exp(2*pi*i*5*t/64): all energy in bin 5.
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Rect(1, 2*math.Pi*5*float64(i)/float64(n))
	}
	spec := Forward(x)
	for k, v := range spec {
		want := 0.0
		if k == 5 {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Fatalf("bin %d magnitude = %v, want %v", k, cmplx.Abs(v), want)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		x := randSignal(rng, n)
		back := Inverse(Forward(x))
		return maxErr(back, x) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// sum |x|^2 == (1/N) sum |X|^2.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(128)
		x := randSignal(rng, n)
		spec := Forward(x)
		var ex, es float64
		for _, v := range x {
			ex += real(v)*real(v) + imag(v)*imag(v)
		}
		for _, v := range spec {
			es += real(v)*real(v) + imag(v)*imag(v)
		}
		es /= float64(n)
		return math.Abs(ex-es) < 1e-8*(1+ex)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		x := randSignal(rng, n)
		y := randSignal(rng, n)
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a*x[i] + y[i]
		}
		left := Forward(sum)
		fx, fy := Forward(x), Forward(y)
		right := make([]complex128, n)
		for i := range right {
			right[i] = a*fx[i] + fy[i]
		}
		return maxErr(left, right) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestForwardDoesNotMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randSignal(rng, 33) // Bluestein path
	orig := append([]complex128{}, x...)
	_ = Forward(x)
	if maxErr(x, orig) != 0 {
		t.Fatal("Forward mutated input")
	}
	y := randSignal(rng, 32) // radix-2 path
	origY := append([]complex128{}, y...)
	_ = Forward(y)
	if maxErr(y, origY) != 0 {
		t.Fatal("Forward mutated input (radix-2)")
	}
}

func TestEmptyInput(t *testing.T) {
	if Forward(nil) != nil {
		t.Fatal("Forward(nil) should be nil")
	}
	if Inverse(nil) != nil {
		t.Fatal("Inverse(nil) should be nil")
	}
}

func TestForwardReal(t *testing.T) {
	x := []float64{1, 0, -1, 0} // cos(pi*t/2): energy split between bins 1 and 3.
	spec := ForwardReal(x)
	if cmplx.Abs(spec[1]-2) > 1e-12 || cmplx.Abs(spec[3]-2) > 1e-12 {
		t.Fatalf("spectrum = %v", spec)
	}
	if cmplx.Abs(spec[0]) > 1e-12 || cmplx.Abs(spec[2]) > 1e-12 {
		t.Fatalf("leakage into DC/Nyquist: %v", spec)
	}
}

func TestFreqBins(t *testing.T) {
	f := FreqBins(8, 800)
	want := []float64{0, 100, 200, 300, 400, -300, -200, -100}
	for i := range want {
		if math.Abs(f[i]-want[i]) > 1e-9 {
			t.Fatalf("FreqBins = %v, want %v", f, want)
		}
	}
}

func TestHermitianSymmetryForRealInput(t *testing.T) {
	// Real input: X[n-k] == conj(X[k]).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(63)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		spec := ForwardReal(x)
		for k := 1; k < n; k++ {
			if cmplx.Abs(spec[n-k]-cmplx.Conj(spec[k])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
