// Package fft implements the discrete Fourier transform used by the radar
// receiver's FFT-based beat-frequency extractor and the spectrum analysis
// tooling: an iterative radix-2 Cooley–Tukey transform for power-of-two
// lengths and Bluestein's chirp-z algorithm for arbitrary lengths.
package fft

import (
	"math"
	"math/bits"
	"math/cmplx"
)

// Forward returns the DFT of x:
//
//	X[k] = sum_n x[n] * exp(-2*pi*i*k*n/N).
//
// Any length is accepted; power-of-two lengths use radix-2, others use
// Bluestein. The input is not modified.
func Forward(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	if isPow2(n) {
		radix2(out, false)
		return out
	}
	return bluestein(out, false)
}

// Inverse returns the inverse DFT with 1/N normalization, so
// Inverse(Forward(x)) == x.
func Inverse(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	if isPow2(n) {
		radix2(out, true)
	} else {
		out = bluestein(out, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// ForwardReal transforms a real signal, returning the full complex spectrum.
func ForwardReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return Forward(c)
}

// FreqBins returns the frequency in Hz of each DFT bin for a signal sampled
// at fs Hz, using the unshifted convention: bins [0, n/2] are non-negative
// frequencies, bins above n/2 are negative.
func FreqBins(n int, fs float64) []float64 {
	out := make([]float64, n)
	for k := range out {
		if k <= n/2 {
			out[k] = float64(k) * fs / float64(n)
		} else {
			out[k] = float64(k-n) * fs / float64(n)
		}
	}
	return out
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// radix2 computes an in-place iterative Cooley–Tukey FFT. inverse selects
// the conjugate twiddle factors (no normalization).
func radix2(a []complex128, inverse bool) {
	n := len(a)
	if n == 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wBase := cmplx.Rect(1, step)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= wBase
			}
		}
	}
}

// bluestein computes the DFT of arbitrary length via the chirp-z transform,
// reducing to a power-of-two circular convolution.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[k] = exp(sign * i*pi*k^2/n).
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		// Use k^2 mod 2n to avoid precision loss for large k.
		k2 := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Rect(1, sign*math.Pi*float64(k2)/float64(n))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	invM := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * invM * chirp[k]
	}
	return out
}
