package cfar

import (
	"math"
	"testing"

	"safesense/internal/dsp/spectrum"
	"safesense/internal/noise"
	"safesense/internal/radar"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{TrainCells: 0, GuardCells: 1, Pfa: 1e-3},
		{TrainCells: 8, GuardCells: -1, Pfa: 1e-3},
		{TrainCells: 8, GuardCells: 1, Pfa: 0},
		{TrainCells: 8, GuardCells: 1, Pfa: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d should fail", i)
		}
	}
}

func TestThresholdMonotoneInPfa(t *testing.T) {
	strict := Config{TrainCells: 16, GuardCells: 2, Pfa: 1e-6}
	loose := Config{TrainCells: 16, GuardCells: 2, Pfa: 1e-2}
	if strict.Threshold() <= loose.Threshold() {
		t.Fatal("lower Pfa must raise the threshold")
	}
}

func TestDetectFindsStrongTone(t *testing.T) {
	p := radar.BoschLRR2()
	src := noise.NewSource(1)
	sweep, err := p.SynthesizeSweep(100, 0, 512, src)
	if err != nil {
		t.Fatal(err)
	}
	psd, freqs := spectrum.Periodogram(sweep.Up, nil, p.SampleRateHz)
	hits, err := Detect(psd, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no detections on a strong target")
	}
	// The strongest hit sits at the beat frequency.
	best := hits[0]
	for _, h := range hits {
		if h.Power > best.Power {
			best = h
		}
	}
	fbUp, _ := p.BeatFrequencies(100, 0)
	if got := freqs[best.Bin]; math.Abs(got-fbUp) > 2*p.SampleRateHz/512 {
		t.Fatalf("CFAR peak at %v Hz, want %v", got, fbUp)
	}
}

func TestFalseAlarmRateNearDesign(t *testing.T) {
	// Noise-only spectra: the empirical false-alarm rate should sit near
	// the design Pfa (same order of magnitude).
	src := noise.NewSource(2)
	cfg := Config{TrainCells: 16, GuardCells: 2, Pfa: 1e-3}
	var spectra [][]float64
	for i := 0; i < 60; i++ {
		x := src.ComplexNoiseVec(512, 1)
		psd, _ := spectrum.Periodogram(x, nil, 1)
		spectra = append(spectra, psd)
	}
	rate, err := FalseAlarmRate(spectra, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rate > 10*cfg.Pfa {
		t.Fatalf("false alarm rate %v far above design %v", rate, cfg.Pfa)
	}
	if rate == 0 {
		// 512*60 ≈ 31k cells at 1e-3: expect ~31 alarms; zero indicates a
		// broken threshold.
		t.Fatal("no false alarms at all — threshold too high")
	}
}

func TestDetectSpectrumTooShort(t *testing.T) {
	if _, err := Detect(make([]float64, 8), DefaultConfig()); err == nil {
		t.Fatal("short spectrum should fail")
	}
}

func TestJammedSpectrumRaisesNoiseEstimate(t *testing.T) {
	// Under broadband jamming, CA-CFAR's noise estimate rises with the
	// jam floor and a weak target no longer crosses the threshold —
	// exactly the DoS blinding mechanism.
	p := radar.BoschLRR2()
	src := noise.NewSource(3)
	sweep, err := p.SynthesizeSweep(190, 0, 512, src) // weak (far) target
	if err != nil {
		t.Fatal(err)
	}
	psdClean, _ := spectrum.Periodogram(sweep.Up, nil, p.SampleRateHz)
	jammed := radar.AddNoiseSweep(sweep, 1e-9, src) // jam ≫ return
	psdJam, _ := spectrum.Periodogram(jammed.Up, nil, p.SampleRateHz)

	cfg := DefaultConfig()
	hitsClean, err := Detect(psdClean, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hitsJam, err := Detect(psdJam, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(hitsClean) == 0 {
		t.Fatal("weak target should still be detectable in clean noise")
	}
	// Under jamming the target's bin must no longer be the detection set's
	// dominant member (usually no hits at all; occasional jam spikes may
	// alarm elsewhere).
	fbUp, _ := p.BeatFrequencies(190, 0)
	binWidth := p.SampleRateHz / 512
	for _, h := range hitsJam {
		f := float64(h.Bin) * binWidth
		if math.Abs(f-fbUp) < 2*binWidth {
			t.Fatalf("target still detected under jamming at bin %d", h.Bin)
		}
	}
}

func TestFalseAlarmRateEmptyInput(t *testing.T) {
	if _, err := FalseAlarmRate(nil, DefaultConfig()); err == nil {
		t.Fatal("empty input should fail")
	}
}
