// Package cfar implements cell-averaging constant-false-alarm-rate (CA-CFAR)
// detection over a power spectrum — the detection layer a production FMCW
// receiver runs before beat-frequency estimation. The radar ablations use
// it to separate "target present" from "noise/jam only" decisions at a
// calibrated false-alarm rate.
package cfar

import (
	"errors"
	"fmt"
	"math"
)

// Config parameterizes the CA-CFAR detector.
type Config struct {
	// TrainCells per side used to estimate the local noise level.
	TrainCells int
	// GuardCells per side excluded around the cell under test.
	GuardCells int
	// Pfa is the design false-alarm probability per cell.
	Pfa float64
}

// DefaultConfig returns a standard 16-train/2-guard CA-CFAR at Pfa = 1e-4.
func DefaultConfig() Config {
	return Config{TrainCells: 16, GuardCells: 2, Pfa: 1e-4}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.TrainCells < 1:
		return fmt.Errorf("cfar: need at least one training cell, got %d", c.TrainCells)
	case c.GuardCells < 0:
		return errors.New("cfar: guard cells must be non-negative")
	case c.Pfa <= 0 || c.Pfa >= 1:
		return fmt.Errorf("cfar: Pfa must be in (0,1), got %v", c.Pfa)
	}
	return nil
}

// Threshold returns the CA-CFAR scaling factor alpha = N (Pfa^(-1/N) - 1)
// for N total training cells: the threshold is alpha times the average
// training-cell power, calibrated for exponentially distributed noise
// power (complex Gaussian noise).
func (c Config) Threshold() float64 {
	n := float64(2 * c.TrainCells)
	return n * (math.Pow(c.Pfa, -1/n) - 1)
}

// Detection is one CFAR hit.
type Detection struct {
	// Bin is the cell index.
	Bin int
	// Power is the cell power, Noise the estimated local noise level.
	Power, Noise float64
}

// Detect runs CA-CFAR over the power spectrum and returns the hits. Cells
// whose training window would leave the array are evaluated with the
// available cells only (wrap-free, clamped window).
func Detect(psd []float64, cfg Config) ([]Detection, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(psd)
	if n < 2*(cfg.TrainCells+cfg.GuardCells)+1 {
		return nil, fmt.Errorf("cfar: spectrum of %d cells too short for the window", n)
	}
	alpha := cfg.Threshold()
	var hits []Detection
	for i := 0; i < n; i++ {
		noise, count := 0.0, 0
		for _, side := range [2]int{-1, 1} {
			for j := cfg.GuardCells + 1; j <= cfg.GuardCells+cfg.TrainCells; j++ {
				idx := i + side*j
				if idx < 0 || idx >= n {
					continue
				}
				noise += psd[idx]
				count++
			}
		}
		if count == 0 {
			continue
		}
		level := noise / float64(count)
		if psd[i] > alpha*level {
			hits = append(hits, Detection{Bin: i, Power: psd[i], Noise: level})
		}
	}
	return hits, nil
}

// FalseAlarmRate empirically measures the per-cell false alarm rate of the
// configuration on the provided noise-only spectra (diagnostics and tests).
func FalseAlarmRate(spectra [][]float64, cfg Config) (float64, error) {
	cells, alarms := 0, 0
	for _, psd := range spectra {
		hits, err := Detect(psd, cfg)
		if err != nil {
			return 0, err
		}
		cells += len(psd)
		alarms += len(hits)
	}
	if cells == 0 {
		return 0, errors.New("cfar: no spectra")
	}
	return float64(alarms) / float64(cells), nil
}
