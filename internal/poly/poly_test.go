package poly

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// sortByArg orders roots lexicographically by (re, im) so two root
// sets can be compared element-wise. The != here is a sort tie-break,
// not an approximate-equality check.
//
//safesense:floatcmp-helper
func sortByArg(rs []complex128) {
	sort.Slice(rs, func(i, j int) bool {
		if real(rs[i]) != real(rs[j]) {
			return real(rs[i]) < real(rs[j])
		}
		return imag(rs[i]) < imag(rs[j])
	})
}

// ceq reports exact complex equality, for coefficient oracles built
// from small integers — exact in IEEE-754 — and read back verbatim.
//
//safesense:floatcmp-helper
func ceq(a, b complex128) bool { return a == b }

func matchRoots(t *testing.T, got, want []complex128, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d roots, want %d", len(got), len(want))
	}
	used := make([]bool, len(want))
	for _, g := range got {
		best, bestd := -1, math.Inf(1)
		for i, w := range want {
			if used[i] {
				continue
			}
			if d := cmplx.Abs(g - w); d < bestd {
				best, bestd = i, d
			}
		}
		if best < 0 || bestd > tol {
			t.Fatalf("root %v unmatched (closest distance %v, want %v)", g, bestd, want)
		}
		used[best] = true
	}
}

func TestEvalHorner(t *testing.T) {
	// p(z) = 1 + 2z + 3z^2 at z = 2 -> 1 + 4 + 12 = 17.
	p := New(1, 2, 3)
	if got := p.Eval(2); cmplx.Abs(got-17) > 1e-12 {
		t.Fatalf("Eval = %v", got)
	}
	if got := p.Eval(0); cmplx.Abs(got-1) > 1e-12 {
		t.Fatalf("Eval(0) = %v", got)
	}
}

func TestDerivative(t *testing.T) {
	p := New(5, 3, 0, 2) // 5 + 3z + 2z^3
	d := p.Derivative()  // 3 + 6z^2
	if !ceq(d.C[0], 3) || d.C[1] != 0 || !ceq(d.C[2], 6) {
		t.Fatalf("Derivative = %v", d.C)
	}
	c := New(7)
	if dc := c.Derivative(); dc.Eval(100) != 0 {
		t.Fatal("derivative of constant must be 0")
	}
}

func TestFromRootsEvalZero(t *testing.T) {
	roots := []complex128{2, -1, 3i}
	p := FromRoots(roots...)
	for _, r := range roots {
		if cmplx.Abs(p.Eval(r)) > 1e-10 {
			t.Fatalf("p(%v) = %v, want 0", r, p.Eval(r))
		}
	}
	if p.Degree() != 3 {
		t.Fatalf("degree = %d", p.Degree())
	}
}

func TestNewTrimsLeadingZeros(t *testing.T) {
	p := New(1, 2, 0, 0)
	if p.Degree() != 1 {
		t.Fatalf("degree = %d, want 1", p.Degree())
	}
}

func TestRootsQuadratic(t *testing.T) {
	// z^2 - 3z + 2 = (z-1)(z-2).
	p := New(2, -3, 1)
	rs, err := Roots(p, RootsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	matchRoots(t, rs, []complex128{1, 2}, 1e-8)
}

func TestRootsComplexConjugatePair(t *testing.T) {
	// z^2 + 1 = (z-i)(z+i).
	rs, err := Roots(New(1, 0, 1), RootsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	matchRoots(t, rs, []complex128{1i, -1i}, 1e-8)
}

func TestRootsUnitCircle(t *testing.T) {
	// z^4 - 1: the fourth roots of unity — the structure root-MUSIC sees.
	rs, err := Roots(New(-1, 0, 0, 0, 1), RootsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	matchRoots(t, rs, []complex128{1, -1, 1i, -1i}, 1e-8)
}

func TestRootsRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		want := make([]complex128, n)
		for i := range want {
			// Well-separated random roots in an annulus.
			r := 0.3 + 2*rng.Float64()
			th := 2 * math.Pi * rng.Float64()
			want[i] = cmplx.Rect(r, th)
		}
		// Reject nearly-coincident draws; DK converges slowly there.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if cmplx.Abs(want[i]-want[j]) < 0.15 {
					return true
				}
			}
		}
		p := FromRoots(want...)
		got, err := Roots(p, RootsOptions{})
		if err != nil {
			return false
		}
		sortByArg(got)
		sortByArg(want)
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRootsDegenerateInputs(t *testing.T) {
	if _, err := Roots(New(5), RootsOptions{}); err == nil {
		t.Fatal("constant polynomial should fail")
	}
	if _, err := Roots(Poly{}, RootsOptions{}); err == nil {
		t.Fatal("zero polynomial should fail")
	}
}

func TestMonic(t *testing.T) {
	p := New(2, 4, 2)
	m, err := p.Monic()
	if err != nil {
		t.Fatal(err)
	}
	if !ceq(m.C[2], 1) || !ceq(m.C[0], 1) || !ceq(m.C[1], 2) {
		t.Fatalf("Monic = %v", m.C)
	}
}

func TestRootsHighDegree(t *testing.T) {
	// Degree-12 polynomial with roots on two circles, similar in size to
	// the root-MUSIC polynomial for a covariance of order 7.
	var want []complex128
	for k := 0; k < 6; k++ {
		th := 2 * math.Pi * float64(k) / 6
		want = append(want, cmplx.Rect(0.8, th+0.2), cmplx.Rect(1.25, th+0.5))
	}
	p := FromRoots(want...)
	got, err := Roots(p, RootsOptions{MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	matchRoots(t, got, want, 1e-5)
}
