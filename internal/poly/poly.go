// Package poly implements complex polynomial evaluation and root finding.
//
// Root-MUSIC turns the noise-subspace projector into a conjugate-symmetric
// polynomial whose roots nearest the unit circle carry the beat frequencies;
// this package provides the Durand–Kerner (Weierstrass) simultaneous root
// finder used to extract them.
package poly

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// Poly is a complex polynomial stored coefficient-low-first:
// p(z) = C[0] + C[1] z + ... + C[n] z^n.
type Poly struct {
	C []complex128
}

// New builds a polynomial from low-order-first coefficients. Trailing
// (highest-order) zero coefficients are trimmed.
func New(coeffs ...complex128) Poly {
	n := len(coeffs)
	for n > 1 && coeffs[n-1] == 0 {
		n--
	}
	c := make([]complex128, n)
	copy(c, coeffs[:n])
	return Poly{C: c}
}

// FromRoots builds the monic polynomial with the given roots.
func FromRoots(roots ...complex128) Poly {
	c := []complex128{1}
	for _, r := range roots {
		next := make([]complex128, len(c)+1)
		for i, v := range c {
			next[i+1] += v
			next[i] -= r * v
		}
		c = next
	}
	return Poly{C: c}
}

// Degree returns the polynomial degree (0 for constants, including the zero
// polynomial).
func (p Poly) Degree() int {
	if len(p.C) == 0 {
		return 0
	}
	return len(p.C) - 1
}

// Eval evaluates p at z with Horner's rule.
func (p Poly) Eval(z complex128) complex128 {
	var acc complex128
	for i := len(p.C) - 1; i >= 0; i-- {
		acc = acc*z + p.C[i]
	}
	return acc
}

// Derivative returns p'.
func (p Poly) Derivative() Poly {
	if len(p.C) <= 1 {
		return Poly{C: []complex128{0}}
	}
	d := make([]complex128, len(p.C)-1)
	for i := 1; i < len(p.C); i++ {
		d[i-1] = complex(float64(i), 0) * p.C[i]
	}
	return Poly{C: d}
}

// Monic returns p scaled so its leading coefficient is 1. It returns an
// error for the zero polynomial.
func (p Poly) Monic() (Poly, error) {
	if len(p.C) == 0 {
		return Poly{}, errors.New("poly: zero polynomial")
	}
	lead := p.C[len(p.C)-1]
	if lead == 0 {
		return Poly{}, errors.New("poly: zero leading coefficient")
	}
	c := make([]complex128, len(p.C))
	for i, v := range p.C {
		c[i] = v / lead
	}
	return Poly{C: c}, nil
}

// String renders the polynomial for debugging.
func (p Poly) String() string {
	s := ""
	for i, c := range p.C {
		if i > 0 {
			s += " + "
		}
		s += fmt.Sprintf("(%v)z^%d", c, i)
	}
	return s
}

// RootsOptions tunes the Durand–Kerner iteration.
type RootsOptions struct {
	// MaxIter bounds the number of simultaneous-update sweeps.
	// Zero means 500.
	MaxIter int
	// Tol is the convergence threshold on the largest root update per
	// sweep, relative to the root magnitude. Zero means 1e-12.
	Tol float64
}

// Roots finds all complex roots of p with the Durand–Kerner method.
// The polynomial must have degree >= 1 and a nonzero leading coefficient
// (use Monic or New, which trims).
func Roots(p Poly, opt RootsOptions) ([]complex128, error) {
	mp, err := p.Monic()
	if err != nil {
		return nil, err
	}
	n := mp.Degree()
	if n < 1 {
		return nil, errors.New("poly: degree must be >= 1")
	}
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 500
	}
	tol := opt.Tol
	if tol == 0 {
		tol = 1e-12
	}

	// Initial guesses: points on a circle of radius derived from the
	// Cauchy bound, at angles avoiding real-axis symmetry traps.
	bound := rootBound(mp)
	roots := make([]complex128, n)
	for i := range roots {
		theta := 2*math.Pi*float64(i)/float64(n) + 0.4
		roots[i] = cmplx.Rect(bound*0.5+0.1, theta)
	}

	for iter := 0; iter < maxIter; iter++ {
		maxDelta := 0.0
		for i := range roots {
			num := mp.Eval(roots[i])
			den := complex(1, 0)
			for j := range roots {
				if j != i {
					den *= roots[i] - roots[j]
				}
			}
			if den == 0 {
				// Perturb coincident estimates and continue.
				roots[i] += complex(1e-8, 1e-8)
				continue
			}
			delta := num / den
			roots[i] -= delta
			rel := cmplx.Abs(delta) / (1 + cmplx.Abs(roots[i]))
			if rel > maxDelta {
				maxDelta = rel
			}
		}
		if maxDelta < tol {
			return roots, nil
		}
	}
	// Accept if residuals are small even without per-step convergence.
	for _, r := range roots {
		if cmplx.Abs(mp.Eval(r)) > 1e-6*(1+math.Pow(cmplx.Abs(r), float64(n))) {
			return roots, fmt.Errorf("poly: Durand-Kerner did not converge after %d iterations", maxIter)
		}
	}
	return roots, nil
}

// rootBound returns the Cauchy bound 1 + max|c_i| for a monic polynomial:
// every root lies within this radius.
func rootBound(mp Poly) float64 {
	max := 0.0
	for _, c := range mp.C[:len(mp.C)-1] {
		if a := cmplx.Abs(c); a > max {
			max = a
		}
	}
	return 1 + max
}
