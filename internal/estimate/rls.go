// Package estimate implements the paper's Algorithm 1 — recursive least
// squares (RLS) estimation of sensor measurements — and the free-running
// measurement predictor built on it that supplies the controller with safe
// distance and relative-velocity values for the duration of an attack.
package estimate

import (
	"errors"
	"fmt"

	"safesense/internal/mat"
)

// RLS is the exponentially-weighted recursive least squares filter of
// Algorithm 1 (Haykin). State: weight vector w and inverse-correlation
// matrix P, updated per sample in O(n^2).
type RLS struct {
	n      int
	lambda float64
	w      []float64
	p      *mat.Dense

	// LastGamma exposes the conversion factor gamma of the most recent
	// update, useful for monitoring conditioning.
	LastGamma float64
}

// NewRLS builds an order-n RLS filter with forgetting factor lambda in
// (0, 1] and initialization P_0 = delta^-1... following the paper's
// notation P_0 = delta*I with delta positive (the paper uses delta = 1).
func NewRLS(n int, lambda, delta float64) (*RLS, error) {
	if n < 1 {
		return nil, fmt.Errorf("estimate: order must be >= 1, got %d", n)
	}
	if lambda <= 0 || lambda > 1 {
		return nil, fmt.Errorf("estimate: forgetting factor must be in (0, 1], got %v", lambda)
	}
	if delta <= 0 {
		return nil, fmt.Errorf("estimate: delta must be positive, got %v", delta)
	}
	return &RLS{
		n:      n,
		lambda: lambda,
		w:      make([]float64, n),
		p:      mat.Identity(n).Scale(delta),
	}, nil
}

// Order returns the filter order n.
func (r *RLS) Order() int { return r.n }

// Weights returns a copy of the current weight vector.
func (r *RLS) Weights() []float64 {
	out := make([]float64, r.n)
	copy(out, r.w)
	return out
}

// P returns a copy of the current inverse-correlation matrix.
func (r *RLS) P() *mat.Dense { return r.p.Clone() }

// Predict returns the filter output w^T h for regressor h without updating
// the state.
func (r *RLS) Predict(h []float64) float64 {
	return mat.Dot(r.w, h)
}

// Update performs one Algorithm 1 iteration with regressor h and desired
// output y. It returns the a-priori prediction w_{k-1}^T h_k and the error
// e_k = y_k - w_{k-1}^T h_k. Steps (paper lines 5–11):
//
//	g     = P_{k-1} h_k
//	gamma = lambda + h_k^T g
//	kGain = g / gamma
//	e     = y_k - w_{k-1}^T h_k
//	w_k   = w_{k-1} + kGain e
//	P_k   = (P_{k-1} - kGain g^T) / lambda
func (r *RLS) Update(h []float64, y float64) (pred, e float64, err error) {
	if len(h) != r.n {
		return 0, 0, fmt.Errorf("estimate: regressor length %d, want %d", len(h), r.n)
	}
	g := r.p.MulVec(h)
	gamma := r.lambda + mat.Dot(h, g)
	if gamma <= 0 {
		return 0, 0, errors.New("estimate: non-positive conversion factor (P lost definiteness)")
	}
	r.LastGamma = gamma
	kGain := mat.ScaleVec(1/gamma, g)
	pred = mat.Dot(r.w, h)
	e = y - pred
	mat.Axpy(e, kGain, r.w)
	// P <- (P - kGain g^T) / lambda, symmetrized to fight round-off drift.
	kg := mat.Outer(kGain, g)
	p := r.p.Sub(kg).Scale(1 / r.lambda)
	r.p = p.Add(p.T()).Scale(0.5)
	return pred, e, nil
}

// Clone returns a deep copy of the filter state.
func (r *RLS) Clone() *RLS {
	w := make([]float64, r.n)
	copy(w, r.w)
	return &RLS{n: r.n, lambda: r.lambda, w: w, p: r.p.Clone(), LastGamma: r.LastGamma}
}

// Translate re-expresses the filter state in a new regressor basis:
// w <- M w and P <- M P M^T, where M is the (invertible) basis-change
// matrix satisfying h_old = M^T h_new. Predictions are invariant:
// w_new^T h_new = w_old^T h_old. The trend predictor uses this to shift a
// polynomial time basis one step each sample, which keeps the regressors
// perfectly conditioned regardless of how long the filter runs.
func (r *RLS) Translate(m *mat.Dense) error {
	if rows, cols := m.Dims(); rows != r.n || cols != r.n {
		return fmt.Errorf("estimate: translation matrix must be %dx%d", r.n, r.n)
	}
	r.w = m.MulVec(r.w)
	r.p = m.Mul(r.p).Mul(m.T())
	return nil
}

// Reset restores the filter to its initial state with P = delta*I.
func (r *RLS) Reset(delta float64) error {
	return r.SetState(make([]float64, r.n), delta)
}

// SetState overwrites the weights and re-initializes P = delta*I. The
// change-detection reset uses it to refit a trend while preserving the
// continuous part of the signal (the level).
func (r *RLS) SetState(w []float64, delta float64) error {
	if delta <= 0 {
		return fmt.Errorf("estimate: delta must be positive, got %v", delta)
	}
	if len(w) != r.n {
		return fmt.Errorf("estimate: weight length %d, want %d", len(w), r.n)
	}
	r.w = append([]float64{}, w...)
	r.p = mat.Identity(r.n).Scale(delta)
	r.LastGamma = 0
	return nil
}
