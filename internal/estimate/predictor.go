package estimate

import (
	"fmt"
	"math"

	"safesense/internal/mat"
)

// Predictor wraps an RLS filter into the measurement estimator of the
// paper's Algorithm 2. The regressor h_k — the "entries of measurement
// matrix" of Algorithm 1 — is a polynomial time basis [1, tau, tau^2, ...],
// so the filter performs exponentially weighted recursive polynomial
// regression on the measurement stream. During normal operation each
// accepted sensor value updates the fit; once the CRA detector flags an
// attack the fit is frozen and evaluated at future time steps, supplying
// the controller with a stable extrapolation of the pre-attack trend for
// the duration of the attack.
//
// Numerically, the basis is re-centered on the current step: before each
// sample the weight vector and P matrix are translated one step back in
// time (RLS.Translate), and the update always uses the regressor
// [1, 0, 0, ...]. This is algebraically identical to regressing on
// absolute time but keeps the information matrix stationary and well
// conditioned — regressing on raw absolute time suffers covariance
// wind-up under a forgetting factor, and an autoregressive basis (whose
// noisy roots stray outside the unit circle) diverges exponentially over
// the paper's ~2-minute attack window.
type Predictor struct {
	rls   *RLS
	cfg   PredictorConfig
	shift *mat.Dense // one-step basis translation matrix
	n     int        // samples observed since the last reset
	ahead int        // free-run steps since the last Observe
	wall  int        // wall-clock step of the last Observe/SkipStep/Predict

	// CUSUM change detection state (see PredictorConfig.ChangeDetect).
	sigma2 float64 // EWMA of squared residuals
	sigmaN int     // residuals absorbed into sigma2
	gPos   float64 // one-sided CUSUM statistics
	gNeg   float64
	resets int

	freeRunning bool
}

// PredictorConfig parameterizes a measurement predictor.
type PredictorConfig struct {
	// Degree is the polynomial degree of the time basis (1 = local linear
	// trend, the case-study default).
	Degree int
	// Lambda is the RLS forgetting factor in (0, 1]; values below 1 make
	// the fit local so the extrapolation continues the *recent* trend.
	Lambda float64
	// Delta initializes P = Delta*I (the paper uses 1).
	Delta float64
	// TimeScale divides the step index in the basis for conditioning
	// (tau advances by 1/TimeScale per step). Zero means 8.
	TimeScale float64
	// ChangeDetect enables CUSUM monitoring of the one-step residuals:
	// when the monitored signal switches regime (the Figure 3 leader
	// flips from deceleration to acceleration), the discounted fit still
	// carries pre-change data whose weight decays only geometrically, and
	// an attack detected shortly after the switch would free-run on a
	// contaminated slope — a quadratically growing distance error. On a
	// CUSUM alarm the filter resets and refits from post-change samples
	// only.
	ChangeDetect bool
	// ChangeThreshold is the CUSUM alarm level in residual standard
	// deviations (zero means 8).
	ChangeThreshold float64
	// ChangeDrift is the CUSUM slack per step in standard deviations
	// (zero means 0.5).
	ChangeDrift float64
}

// DefaultPredictorConfig returns the configuration used by the case study:
// a local linear trend with ~16-step memory — enough to extrapolate the
// smooth distance/velocity evolution of car following through the attack.
func DefaultPredictorConfig() PredictorConfig {
	return PredictorConfig{
		Degree: 1, Lambda: 0.98, Delta: 100, TimeScale: 8,
		ChangeDetect: true, ChangeThreshold: 8, ChangeDrift: 0.5,
	}
}

// NewPredictor builds a Predictor.
func NewPredictor(cfg PredictorConfig) (*Predictor, error) {
	if cfg.Degree < 0 {
		return nil, fmt.Errorf("estimate: predictor degree must be >= 0, got %d", cfg.Degree)
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 8
	}
	if cfg.TimeScale < 0 {
		return nil, fmt.Errorf("estimate: time scale must be positive, got %v", cfg.TimeScale)
	}
	r, err := NewRLS(cfg.Degree+1, cfg.Lambda, cfg.Delta)
	if err != nil {
		return nil, err
	}
	return &Predictor{
		rls:   r,
		cfg:   cfg,
		shift: shiftMatrix(cfg.Degree, 1/cfg.TimeScale),
		wall:  -1,
	}, nil
}

// shiftMatrix returns M with M[j][i] = C(i, j) s^(i-j) for j <= i: the
// basis-change that moves the polynomial origin forward by s, so a sample
// previously at tau = 0 sits at tau = -s afterwards. Derivation: with
// tau_old = tau_new + s, w_new[j] = sum_{i>=j} C(i, j) s^(i-j) w_old[i]
// keeps w_new^T h(tau_new) == w_old^T h(tau_old).
func shiftMatrix(degree int, s float64) *mat.Dense {
	n := degree + 1
	m := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		c := 1.0
		for j := i; j >= 0; j-- {
			m.Set(j, i, c*math.Pow(s, float64(i-j)))
			c = c * float64(j) / float64(i-j+1)
		}
	}
	return m
}

// nowBasis is the regressor for "the current step" in recentered
// coordinates: [1, 0, 0, ...].
func (p *Predictor) nowBasis() []float64 {
	h := make([]float64, p.cfg.Degree+1)
	h[0] = 1
	return h
}

// horizonBasis evaluates the basis at j steps ahead of the current origin.
func (p *Predictor) horizonBasis(j int) []float64 {
	tau := float64(j) / p.cfg.TimeScale
	h := make([]float64, p.cfg.Degree+1)
	v := 1.0
	for i := range h {
		h[i] = v
		v *= tau
	}
	return h
}

// Ready reports whether enough samples have been observed for the fit to
// be determined (at least Degree+1 points).
func (p *Predictor) Ready() bool { return p.n >= p.cfg.Degree+1 }

// Clone returns a deep copy of the predictor. The simulation snapshots the
// predictor at every verified-clean challenge instant: when an attack is
// detected, all samples since the previous challenge are suspect (CRA
// cannot vouch for them), so the estimator rolls back to the snapshot
// before free-running — otherwise corrupted samples absorbed between
// attack onset and detection would poison the extrapolated trend.
func (p *Predictor) Clone() *Predictor {
	return &Predictor{
		rls:         p.rls.Clone(),
		cfg:         p.cfg,
		shift:       p.shift, // immutable
		n:           p.n,
		ahead:       p.ahead,
		wall:        p.wall,
		sigma2:      p.sigma2,
		sigmaN:      p.sigmaN,
		gPos:        p.gPos,
		gNeg:        p.gNeg,
		resets:      p.resets,
		freeRunning: p.freeRunning,
	}
}

// Resets returns how many CUSUM-triggered refits have occurred.
func (p *Predictor) Resets() int { return p.resets }

// Observe trains on a trusted measurement (no attack in progress) and
// returns the one-step-ahead prediction that was made for it.
func (p *Predictor) Observe(y float64) (pred float64, err error) {
	p.freeRunning = false
	// Advance the basis origin by every elapsed step, including any
	// free-run steps since the last Observe — otherwise data recorded
	// before an attack would be mis-dated relative to post-attack data
	// and the refit slope would absorb the gap as a spurious jump.
	for i := 0; i <= p.ahead; i++ {
		if err := p.rls.Translate(p.shift); err != nil {
			return 0, err
		}
	}
	p.ahead = 0
	p.wall++
	pred, e, err := p.rls.Update(p.nowBasis(), y)
	if err != nil {
		return 0, err
	}
	p.n++
	if p.cfg.ChangeDetect && p.regimeChanged(e) {
		// Refit the trend from post-change data. The signal itself is
		// continuous across a regime change — only its derivative jumps —
		// so the level (the current fitted value, which after the reset's
		// Update below absorbs the newest sample too) is preserved and
		// only the higher-order weights and the covariance reset.
		w := p.rls.Weights()
		for i := 1; i < len(w); i++ {
			w[i] = 0
		}
		if err := p.rls.SetState(w, p.cfg.Delta); err != nil {
			return 0, err
		}
		p.n, p.sigma2, p.sigmaN, p.gPos, p.gNeg = 0, 0, 0, 0, 0
		p.resets++
		if _, _, err := p.rls.Update(p.nowBasis(), y); err != nil {
			return 0, err
		}
		p.n = 1
	}
	return pred, nil
}

// regimeChanged runs the two-sided CUSUM test on the one-step residual e.
// The first residuals after (re)initialization calibrate the noise scale
// and are not tested.
func (p *Predictor) regimeChanged(e float64) bool {
	const warmup = 8
	if p.n <= p.cfg.Degree+2 {
		return false // transient of a fresh fit
	}
	if p.sigmaN < warmup {
		// Running mean of e^2 during calibration; sigma2 holds the mean.
		p.sigma2 = (p.sigma2*float64(p.sigmaN) + e*e) / float64(p.sigmaN+1)
		p.sigmaN++
		return false
	}
	sigma := math.Sqrt(p.sigma2)
	if sigma <= 0 {
		// Noiseless stream: any nonzero residual is a change.
		return e != 0
	}
	z := e / sigma
	p.gPos = math.Max(0, p.gPos+z-p.cfg.ChangeDrift)
	p.gNeg = math.Max(0, p.gNeg-z-p.cfg.ChangeDrift)
	if p.gPos > p.cfg.ChangeThreshold || p.gNeg > p.cfg.ChangeThreshold {
		return true
	}
	// Slow EWMA keeps the scale current without chasing the very
	// residuals the test inspects.
	p.sigma2 += 0.05 * (e*e - p.sigma2)
	return false
}

// Predict produces the next estimated measurement while the sensor is under
// attack (Algorithm 2 line 11) by evaluating the frozen fit one more step
// ahead. Successive calls free-run forward in time.
func (p *Predictor) Predict() float64 {
	p.freeRunning = true
	p.ahead++
	p.wall++
	return p.rls.Predict(p.horizonBasis(p.ahead))
}

// SkipStep advances the predictor's internal clock one step without an
// observation or a prediction. The simulation calls it at challenge
// instants — the radar produced no measurement, but wall-clock time still
// passed, and without the skip every later prediction would lag truth by
// one step per elapsed challenge.
func (p *Predictor) SkipStep() { p.ahead++; p.wall++ }

// Wall returns the wall-clock step of the last Observe, SkipStep, or
// Predict call (-1 before any). The simulation uses it to catch a
// restored snapshot up to the current step after a rollback.
func (p *Predictor) Wall() int { return p.wall }

// FreeRunning reports whether the last call was a Predict.
func (p *Predictor) FreeRunning() bool { return p.freeRunning }

// Weights exposes the underlying RLS weights (diagnostics).
func (p *Predictor) Weights() []float64 { return p.rls.Weights() }

// Slope returns the current fitted trend in measurement units per step
// (0 for degree-0 fits).
func (p *Predictor) Slope() float64 {
	if p.cfg.Degree < 1 {
		return 0
	}
	return p.rls.Weights()[1] / p.cfg.TimeScale
}

// PairPredictor bundles two Predictors for the radar's (distance,
// relative velocity) measurement vector.
type PairPredictor struct {
	Distance *Predictor
	Velocity *Predictor
}

// NewPairPredictor builds predictors for both radar channels with the same
// configuration.
func NewPairPredictor(cfg PredictorConfig) (*PairPredictor, error) {
	d, err := NewPredictor(cfg)
	if err != nil {
		return nil, err
	}
	v, err := NewPredictor(cfg)
	if err != nil {
		return nil, err
	}
	return &PairPredictor{Distance: d, Velocity: v}, nil
}

// Observe trains both channels on a trusted (d, v) measurement.
func (pp *PairPredictor) Observe(d, v float64) error {
	if _, err := pp.Distance.Observe(d); err != nil {
		return err
	}
	_, err := pp.Velocity.Observe(v)
	return err
}

// Predict free-runs both channels one step. The distance channel is
// clamped at zero — a radar cannot report a negative range.
func (pp *PairPredictor) Predict() (d, v float64) {
	d = pp.Distance.Predict()
	if d < 0 {
		d = 0
	}
	return d, pp.Velocity.Predict()
}

// Clone deep-copies both channels (see Predictor.Clone).
func (pp *PairPredictor) Clone() *PairPredictor {
	return &PairPredictor{Distance: pp.Distance.Clone(), Velocity: pp.Velocity.Clone()}
}
