package estimate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"safesense/internal/mat"
	"safesense/internal/noise"
)

// quickConfig pins the property tests' seed generator: quick.Check's
// default RNG is wall-clock seeded, and the CUSUM noise property is
// near its detection threshold for rare seeds, so an unpinned run is
// flaky. Fixed trials keep the property coverage and make reruns exact.
func quickConfig(maxCount int) *quick.Config {
	return &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(1))}
}

// TestTranslatePredictionInvariance checks the algebraic contract of
// RLS.Translate: re-expressing the filter in a shifted basis must not
// change any prediction — w_new^T h_new(tau) == w_old^T h_old(tau + s).
func TestTranslatePredictionInvariance(t *testing.T) {
	f := func(seed int64) bool {
		src := noise.NewSource(seed)
		p, err := NewPredictor(PredictorConfig{Degree: 2, Lambda: 0.95, Delta: 1, TimeScale: 8})
		if err != nil {
			return false
		}
		// Train on arbitrary data.
		for k := 0; k < 30; k++ {
			if _, err := p.Observe(src.Gaussian(0, 3)); err != nil {
				return false
			}
		}
		// Prediction j steps ahead, evaluated two ways: directly, and
		// after translating the underlying filter one extra step.
		before := p.rls.Predict(p.horizonBasis(5))
		if err := p.rls.Translate(p.shift); err != nil {
			return false
		}
		after := p.rls.Predict(p.horizonBasis(4))
		return math.Abs(before-after) <= 1e-9*(1+math.Abs(before))
	}
	if err := quick.Check(f, quickConfig(40)); err != nil {
		t.Fatal(err)
	}
}

// TestShiftMatrixInverseProperty: shifting forward then backward is the
// identity.
func TestShiftMatrixInverseProperty(t *testing.T) {
	for _, deg := range []int{0, 1, 2, 3} {
		fwd := shiftMatrix(deg, 0.125)
		bwd := shiftMatrix(deg, -0.125)
		if !fwd.Mul(bwd).EqualApprox(mat.Identity(deg+1), 1e-12) {
			t.Fatalf("degree %d: shift not invertible", deg)
		}
	}
}

// TestRLSExponentialWeightingProperty: with lambda < 1, a later sample
// moves the estimate more than the same sample seen earlier (recency
// weighting).
func TestRLSExponentialWeightingProperty(t *testing.T) {
	run := func(spikeAt int) float64 {
		r, _ := NewRLS(1, 0.9, 100)
		for k := 0; k < 50; k++ {
			y := 0.0
			if k == spikeAt {
				y = 10
			}
			r.Update([]float64{1}, y)
		}
		return r.Weights()[0]
	}
	early, late := run(5), run(45)
	if late <= early {
		t.Fatalf("late spike influence %v should exceed early %v", late, early)
	}
}

// TestPredictorScaleInvariance: scaling the observations scales the
// predictions linearly (the filter is linear in y).
func TestPredictorScaleInvariance(t *testing.T) {
	f := func(seed int64, scaleRaw float64) bool {
		if math.IsNaN(scaleRaw) || math.IsInf(scaleRaw, 0) {
			return true
		}
		scale := 1 + math.Mod(math.Abs(scaleRaw), 50)
		mk := func(c float64) float64 {
			src := noise.NewSource(seed)
			p, _ := NewPredictor(DefaultPredictorConfig())
			for k := 0; k < 60; k++ {
				p.Observe(c * (10 + 0.5*float64(k) + src.Gaussian(0, 0.2)))
			}
			return p.Predict()
		}
		a, b := mk(1), mk(scale)
		return math.Abs(b-scale*a) <= 1e-6*(1+math.Abs(b))
	}
	if err := quick.Check(f, quickConfig(25)); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryEstimatorKinematicConsistency: with a perfectly observed
// constant-speed pair, the free-run distance decreases by exactly the
// relative speed each step.
func TestRecoveryEstimatorKinematicConsistency(t *testing.T) {
	rec, err := NewRecoveryEstimator(DefaultPredictorConfig())
	if err != nil {
		t.Fatal(err)
	}
	vF := 20.0
	vL := 19.8
	d := 80.0
	for k := 0; k < 100; k++ {
		if err := rec.Observe(d, vL-vF, vF); err != nil {
			t.Fatal(err)
		}
		d += vL - vF
	}
	prevD, _ := rec.Predict(vF)
	for j := 0; j < 30; j++ {
		dj, dvj := rec.Predict(vF)
		if math.Abs(dvj-(vL-vF)) > 0.02 {
			t.Fatalf("free-run dv = %v, want %v", dvj, vL-vF)
		}
		if math.Abs((dj-prevD)-dvj) > 1e-9 {
			t.Fatalf("distance increment %v != dv %v", dj-prevD, dvj)
		}
		prevD = dj
	}
}

// TestCUSUMNoResetOnStationaryNoiseProperty: pure noise around a trend
// must not trigger regime resets.
func TestCUSUMNoResetOnStationaryNoiseProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := noise.NewSource(seed)
		p, _ := NewPredictor(DefaultPredictorConfig())
		for k := 0; k < 300; k++ {
			p.Observe(5 - 0.1*float64(k) + src.Gaussian(0, 0.3))
		}
		return p.Resets() == 0
	}
	if err := quick.Check(f, quickConfig(25)); err != nil {
		t.Fatal(err)
	}
}

// TestCUSUMResetsOnSlopeJump: a sharp derivative change triggers exactly
// the reset behaviour the Fig 3 scenario needs.
func TestCUSUMResetsOnSlopeJump(t *testing.T) {
	src := noise.NewSource(7)
	p, _ := NewPredictor(DefaultPredictorConfig())
	for k := 0; k < 150; k++ {
		p.Observe(100 - 0.5*float64(k) + src.Gaussian(0, 0.1))
	}
	if p.Resets() != 0 {
		t.Fatalf("premature resets: %d", p.Resets())
	}
	for k := 150; k < 200; k++ {
		p.Observe(25 + 0.5*float64(k-150) + src.Gaussian(0, 0.1))
	}
	if p.Resets() == 0 {
		t.Fatal("slope jump not detected")
	}
	if s := p.Slope(); math.Abs(s-0.5) > 0.05 {
		t.Fatalf("post-reset slope = %v, want 0.5", s)
	}
}
