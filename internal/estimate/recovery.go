package estimate

// RecoveryEstimator is the measurement estimator the closed-loop case study
// uses during an attack. It combines two pieces of knowledge the paper's
// Section 6 grants the defender:
//
//  1. the RLS-extrapolated trend of the *leader's* speed — reconstructed
//     pre-attack as vL = Δv + vF from the radar's relative velocity and
//     the trusted on-board speed sensor ("We assume that the sensor
//     measuring velocity of the follower vehicle is trusted"), and
//  2. longitudinal kinematics: d(k+1) = d(k) + Δv(k) T.
//
// During an attack it free-runs the leader-speed trend, recomputes the
// relative velocity against the *current* trusted follower speed, and
// integrates the distance. Unlike extrapolating the distance channel
// open-loop, this keeps the estimate consistent with the follower's own
// reaction: if the controller brakes, the estimated gap opens — exactly
// what the paper's "estimated radar data" curves show tracking the
// no-attack trajectory.
type RecoveryEstimator struct {
	dist   *Predictor // distance trend, used to seed the integration
	leader *Predictor // leader-speed trend

	estD   float64
	seeded bool

	// freeRunning is true between the first Predict after training (the
	// estimator takes over the measurement channel) and the next Observe
	// (a trusted measurement releases it).
	freeRunning bool
	// onTransition, when set, is called at the takeover/release boundary
	// (see SetTransitionHook).
	onTransition func(takeover bool)
}

// SetTransitionHook installs fn to be called exactly once per boundary
// crossing of the detection/recovery state machine: fn(true) when the
// estimator's free-run estimates start replacing measurements (RLS
// takeover), fn(false) when a trusted measurement is absorbed again (RLS
// release). The hook survives Clone, so snapshot/rollback keeps firing
// events. The closed-loop simulation uses this to stamp rls_takeover /
// rls_release flight-recorder events.
func (r *RecoveryEstimator) SetTransitionHook(fn func(takeover bool)) { r.onTransition = fn }

// FreeRunning reports whether the estimator is currently replacing the
// measurement channel with free-run predictions.
func (r *RecoveryEstimator) FreeRunning() bool { return r.freeRunning }

// NewRecoveryEstimator builds the estimator; both internal channels use the
// same RLS configuration.
func NewRecoveryEstimator(cfg PredictorConfig) (*RecoveryEstimator, error) {
	d, err := NewPredictor(cfg)
	if err != nil {
		return nil, err
	}
	l, err := NewPredictor(cfg)
	if err != nil {
		return nil, err
	}
	return &RecoveryEstimator{dist: d, leader: l}, nil
}

// Observe trains on a trusted radar measurement (d, dv) with the follower's
// own speed vF. It resets any free-run in progress.
func (r *RecoveryEstimator) Observe(d, dv, vF float64) error {
	if r.freeRunning {
		r.freeRunning = false
		if r.onTransition != nil {
			r.onTransition(false)
		}
	}
	r.seeded = false
	if _, err := r.dist.Observe(d); err != nil {
		return err
	}
	_, err := r.leader.Observe(dv + vF)
	return err
}

// Ready reports whether the trends are determined.
func (r *RecoveryEstimator) Ready() bool { return r.dist.Ready() && r.leader.Ready() }

// SkipStep advances both channels' clocks across a measurement-less step
// (see Predictor.SkipStep).
func (r *RecoveryEstimator) SkipStep() {
	r.dist.SkipStep()
	r.leader.SkipStep()
}

// Wall returns the wall-clock step of the estimator (see Predictor.Wall).
func (r *RecoveryEstimator) Wall() int { return r.dist.Wall() }

// CatchUp advances both trends one step without delivering an estimate.
// After a rollback to an old snapshot the estimator must fast-forward to
// the present before producing values: the skipped steps already happened,
// so integrating the distance against the *current* follower speed over
// them would be meaningless — the next real Predict re-seeds the distance
// from the extrapolated trend instead.
func (r *RecoveryEstimator) CatchUp() {
	r.leader.Predict()
	r.dist.Predict()
	r.seeded = false
}

// Predict produces the next (distance, relative velocity) estimate while
// the sensor is under attack, given the current trusted follower speed.
// The first call after training seeds the distance from the RLS distance
// trend; subsequent calls integrate the kinematics. The leader speed is
// clamped at zero (vehicles do not reverse) and the distance at zero.
func (r *RecoveryEstimator) Predict(vF float64) (d, dv float64) {
	if !r.freeRunning {
		r.freeRunning = true
		if r.onTransition != nil {
			r.onTransition(true)
		}
	}
	vL := r.leader.Predict()
	if vL < 0 {
		vL = 0
	}
	dv = vL - vF
	if !r.seeded {
		r.estD = r.dist.Predict()
		r.seeded = true
	} else {
		r.dist.Predict() // keep the distance trend's clock aligned
		r.estD += dv
	}
	if r.estD < 0 {
		r.estD = 0
	}
	return r.estD, dv
}

// Clone deep-copies the estimator (see Predictor.Clone for why the
// simulation snapshots it at verified-clean challenge instants).
func (r *RecoveryEstimator) Clone() *RecoveryEstimator {
	return &RecoveryEstimator{
		dist:         r.dist.Clone(),
		leader:       r.leader.Clone(),
		estD:         r.estD,
		seeded:       r.seeded,
		freeRunning:  r.freeRunning,
		onTransition: r.onTransition,
	}
}
