package estimate

import (
	"math"
	"testing"
	"testing/quick"

	"safesense/internal/noise"
)

func TestNewRLSValidation(t *testing.T) {
	if _, err := NewRLS(0, 0.9, 1); err == nil {
		t.Fatal("order 0 should fail")
	}
	if _, err := NewRLS(3, 0, 1); err == nil {
		t.Fatal("lambda 0 should fail")
	}
	if _, err := NewRLS(3, 1.1, 1); err == nil {
		t.Fatal("lambda > 1 should fail")
	}
	if _, err := NewRLS(3, 0.9, 0); err == nil {
		t.Fatal("delta 0 should fail")
	}
	if _, err := NewRLS(3, 1, 1); err != nil {
		t.Fatalf("lambda = 1 must be allowed: %v", err)
	}
}

func TestRLSConvergesToTrueWeights(t *testing.T) {
	// y = w* . h with a static linear model: RLS must identify w*.
	// Large delta keeps the P0 regularization bias (which decays like
	// 1/(delta*N)) below the assertion tolerance.
	want := []float64{2, -1, 0.5}
	r, err := NewRLS(3, 1.0, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	src := noise.NewSource(1)
	for k := 0; k < 400; k++ {
		h := src.GaussianVec(3, 0, 1)
		y := 0.0
		for i := range h {
			y += want[i] * h[i]
		}
		if _, _, err := r.Update(h, y); err != nil {
			t.Fatal(err)
		}
	}
	got := r.Weights()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("weights = %v, want %v", got, want)
		}
	}
}

func TestRLSConvergesInNoise(t *testing.T) {
	want := []float64{1.5, -0.7}
	r, _ := NewRLS(2, 0.995, 10)
	src := noise.NewSource(2)
	for k := 0; k < 3000; k++ {
		h := src.GaussianVec(2, 0, 1)
		y := want[0]*h[0] + want[1]*h[1] + src.Gaussian(0, 0.1)
		r.Update(h, y)
	}
	got := r.Weights()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.05 {
			t.Fatalf("weights = %v, want %v", got, want)
		}
	}
}

func TestRLSTracksDriftingWeights(t *testing.T) {
	// With forgetting, RLS follows a slowly changing parameter; with
	// lambda = 1 it averages and lags. Compare tracking error.
	src := noise.NewSource(3)
	run := func(lambda float64) float64 {
		r, _ := NewRLS(1, lambda, 10)
		src := noise.NewSource(3)
		errSum := 0.0
		wTrue := 1.0
		for k := 0; k < 2000; k++ {
			wTrue += 0.002 // drift
			h := []float64{src.Gaussian(0, 1)}
			y := wTrue * h[0]
			r.Update(h, y)
			errSum += math.Abs(r.Weights()[0] - wTrue)
		}
		return errSum
	}
	_ = src
	forgetting := run(0.95)
	growing := run(1.0)
	if forgetting >= growing {
		t.Fatalf("forgetting factor should track drift better: %v vs %v", forgetting, growing)
	}
}

func TestRLSUpdateReturnsAPrioriError(t *testing.T) {
	r, _ := NewRLS(2, 0.99, 1)
	h := []float64{1, 2}
	pred, e, err := r.Update(h, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Initial weights are zero, so prediction 0 and error 5.
	if pred != 0 || e != 5 {
		t.Fatalf("pred=%v e=%v, want 0, 5", pred, e)
	}
}

func TestRLSRejectsWrongRegressorLength(t *testing.T) {
	r, _ := NewRLS(3, 0.99, 1)
	if _, _, err := r.Update([]float64{1, 2}, 0); err == nil {
		t.Fatal("short regressor should fail")
	}
}

func TestRLSPSymmetricPositive(t *testing.T) {
	// P must remain symmetric and have positive diagonal through updates.
	r, _ := NewRLS(3, 0.97, 1)
	src := noise.NewSource(5)
	for k := 0; k < 500; k++ {
		h := src.GaussianVec(3, 0, 1)
		r.Update(h, src.Gaussian(0, 1))
		p := r.P()
		if !p.IsSymmetric(1e-8 * (1 + p.MaxAbs())) {
			t.Fatalf("P lost symmetry at step %d", k)
		}
		for i := 0; i < 3; i++ {
			if p.At(i, i) <= 0 {
				t.Fatalf("P diagonal %d non-positive at step %d", i, k)
			}
		}
	}
}

func TestRLSMatchesBatchLeastSquaresProperty(t *testing.T) {
	// With lambda = 1 and large delta, RLS after N samples approaches the
	// batch least-squares solution on the same data.
	f := func(seed int64) bool {
		src := noise.NewSource(seed)
		n := 3
		r, _ := NewRLS(n, 1.0, 1e6)
		want := []float64{src.Gaussian(0, 2), src.Gaussian(0, 2), src.Gaussian(0, 2)}
		for k := 0; k < 120; k++ {
			h := src.GaussianVec(n, 0, 1)
			y := 0.0
			for i := range h {
				y += want[i] * h[i]
			}
			r.Update(h, y)
		}
		got := r.Weights()
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-3*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRLSReset(t *testing.T) {
	r, _ := NewRLS(2, 0.99, 1)
	src := noise.NewSource(6)
	for k := 0; k < 50; k++ {
		r.Update(src.GaussianVec(2, 0, 1), src.Gaussian(0, 1))
	}
	if err := r.Reset(2); err != nil {
		t.Fatal(err)
	}
	w := r.Weights()
	if w[0] != 0 || w[1] != 0 {
		t.Fatalf("weights after reset = %v", w)
	}
	p := r.P()
	if p.At(0, 0) != 2 || p.At(0, 1) != 0 {
		t.Fatalf("P after reset = %v", p)
	}
	if err := r.Reset(0); err == nil {
		t.Fatal("Reset(0) should fail")
	}
}

func TestRLSComplexityIsQuadratic(t *testing.T) {
	// Not a wall-clock test: verify Update touches only O(n^2) memory by
	// construction — here we simply sanity-check behavior at a larger
	// order to guard against accidental O(n^3) (matrix-matrix) paths
	// blowing up numerically.
	r, _ := NewRLS(32, 0.99, 1)
	src := noise.NewSource(7)
	for k := 0; k < 200; k++ {
		if _, _, err := r.Update(src.GaussianVec(32, 0, 1), src.Gaussian(0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if r.LastGamma <= 0 {
		t.Fatal("gamma must stay positive")
	}
}
