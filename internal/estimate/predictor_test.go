package estimate

import (
	"math"
	"testing"

	"safesense/internal/noise"
)

func TestNewPredictorValidation(t *testing.T) {
	if _, err := NewPredictor(PredictorConfig{Degree: -1, Lambda: 0.9, Delta: 1}); err == nil {
		t.Fatal("negative degree should fail")
	}
	if _, err := NewPredictor(PredictorConfig{Degree: 1, Lambda: 2, Delta: 1}); err == nil {
		t.Fatal("bad lambda should fail")
	}
	if _, err := NewPredictor(PredictorConfig{Degree: 1, Lambda: 0.9, Delta: 1, TimeScale: -5}); err == nil {
		t.Fatal("negative time scale should fail")
	}
	if _, err := NewPredictor(DefaultPredictorConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestPredictorLearnsLinearTrend(t *testing.T) {
	// Train on y_k = 100 - 0.5k (a closing gap); free-run predictions must
	// continue the trend.
	p, _ := NewPredictor(DefaultPredictorConfig())
	for k := 0; k < 150; k++ {
		if _, err := p.Observe(100 - 0.5*float64(k)); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Ready() {
		t.Fatal("predictor should be ready")
	}
	for j := 1; j <= 100; j++ {
		got := p.Predict()
		want := 100 - 0.5*float64(149+j)
		if math.Abs(got-want) > 1.0 {
			t.Fatalf("free-run step %d: %v, want %v", j, got, want)
		}
	}
	if !p.FreeRunning() {
		t.Fatal("FreeRunning should be true after Predict")
	}
	if s := p.Slope(); math.Abs(s-(-0.5)) > 0.01 {
		t.Fatalf("Slope = %v, want -0.5", s)
	}
}

func TestPredictorStableLongFreeRunInNoise(t *testing.T) {
	// The regression against the AR divergence that motivated the
	// polynomial basis: train on a noisy trend, free-run 119 steps (the
	// paper's attack window), and require the extrapolation error to stay
	// bounded by the trend's own scale.
	p, _ := NewPredictor(DefaultPredictorConfig())
	src := noise.NewSource(3)
	slope := -0.32
	for k := 0; k < 182; k++ {
		p.Observe(100 + slope*float64(k) + src.Gaussian(0, 1.5))
	}
	for j := 1; j <= 119; j++ {
		got := p.Predict()
		want := 100 + slope*float64(181+j)
		if math.Abs(got-want) > 15 {
			t.Fatalf("free-run step %d: error %v too large", j, got-want)
		}
	}
}

func TestPredictorOneStepAccuracyOnSmoothSignal(t *testing.T) {
	p, _ := NewPredictor(DefaultPredictorConfig())
	src := noise.NewSource(1)
	var worst float64
	for k := 0; k < 400; k++ {
		y := 50 + 20*math.Sin(0.02*float64(k)) + src.Gaussian(0, 0.1)
		pred, err := p.Observe(y)
		if err != nil {
			t.Fatal(err)
		}
		if k > 100 {
			if d := math.Abs(pred - y); d > worst {
				worst = d
			}
		}
	}
	if worst > 1.5 {
		t.Fatalf("worst one-step error %v too large", worst)
	}
}

func TestPredictorRecoversAfterAttack(t *testing.T) {
	// Train, free-run (attack), then resume observing: the filter must
	// keep producing sensible predictions.
	p, _ := NewPredictor(DefaultPredictorConfig())
	for k := 0; k < 100; k++ {
		p.Observe(100 - 0.3*float64(k))
	}
	for j := 0; j < 30; j++ {
		p.Predict()
	}
	// Truth continued the trend during the attack.
	for k := 130; k < 180; k++ {
		pred, err := p.Observe(100 - 0.3*float64(k))
		if err != nil {
			t.Fatal(err)
		}
		if k > 140 && math.Abs(pred-(100-0.3*float64(k))) > 3 {
			t.Fatalf("post-attack prediction at %d off by %v", k, pred-(100-0.3*float64(k)))
		}
	}
	if p.FreeRunning() {
		t.Fatal("FreeRunning should clear after Observe")
	}
}

func TestPredictorTracksSlopeChange(t *testing.T) {
	// The forgetting factor must adapt the trend after a regime change
	// (the Figure 3 leader switches from decel to accel).
	p, _ := NewPredictor(DefaultPredictorConfig())
	for k := 0; k < 150; k++ {
		p.Observe(100 - 0.3*float64(k))
	}
	for k := 150; k < 250; k++ {
		p.Observe(100 - 0.3*150 + 0.1*float64(k-150))
	}
	if s := p.Slope(); math.Abs(s-0.1) > 0.02 {
		t.Fatalf("Slope after regime change = %v, want ~0.1", s)
	}
}

func TestPredictorNotReadyEarly(t *testing.T) {
	p, _ := NewPredictor(DefaultPredictorConfig())
	if p.Ready() {
		t.Fatal("ready with no data")
	}
	p.Observe(1)
	if p.Ready() {
		t.Fatal("degree-1 fit needs two points")
	}
	p.Observe(2)
	if !p.Ready() {
		t.Fatal("should be ready after two points")
	}
}

func TestPredictorDegreeZero(t *testing.T) {
	cfg := DefaultPredictorConfig()
	cfg.Degree = 0
	p, err := NewPredictor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 50; k++ {
		p.Observe(7)
	}
	// The delta*I prior biases the level toward zero by O(1/(delta*N)).
	if got := p.Predict(); math.Abs(got-7) > 0.01 {
		t.Fatalf("constant fit = %v, want 7", got)
	}
	if p.Slope() != 0 {
		t.Fatal("degree-0 slope must be 0")
	}
}

func TestPairPredictor(t *testing.T) {
	pp, err := NewPairPredictor(DefaultPredictorConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 120; k++ {
		if err := pp.Observe(100-0.4*float64(k), -0.4); err != nil {
			t.Fatal(err)
		}
	}
	d, v := pp.Predict()
	wantD := 100 - 0.4*120
	if math.Abs(d-wantD) > 1.5 {
		t.Fatalf("distance prediction = %v, want ~%v", d, wantD)
	}
	if math.Abs(v-(-0.4)) > 0.3 {
		t.Fatalf("velocity prediction = %v, want ~-0.4", v)
	}
}

func TestPairPredictorClampsNegativeDistance(t *testing.T) {
	pp, _ := NewPairPredictor(DefaultPredictorConfig())
	for k := 0; k < 100; k++ {
		pp.Observe(30-0.4*float64(k), -0.4) // crosses zero at k = 75
	}
	for j := 0; j < 50; j++ {
		d, _ := pp.Predict()
		if d < 0 {
			t.Fatalf("negative distance prediction %v", d)
		}
	}
}

func TestPairPredictorBadConfig(t *testing.T) {
	if _, err := NewPairPredictor(PredictorConfig{Degree: -1}); err == nil {
		t.Fatal("bad config should fail")
	}
}
