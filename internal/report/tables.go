package report

import (
	"fmt"
	"strings"
	"time"

	"safesense/internal/attack"
	"safesense/internal/radar"
	"safesense/internal/sim"
)

// Table1Row is one row of the Section 6.2 results table (the paper reports
// it as prose: detection at k = 182 for both attacks, zero FP/FN, RLS
// runtimes of 1.2e7 / 1.3e7 ns).
type Table1Row struct {
	Attack         string
	DetectedAt     int
	FalsePositives int
	FalseNegatives int
	EstimateSteps  int
	RLSTime        time.Duration
	DistRMSE       float64
	VelRMSE        float64
	Collision      bool
}

// Table1 reproduces the results paragraph over both attacks and both
// leader profiles (four defended runs; the paper quotes the constant-decel
// pair).
func Table1() ([]Table1Row, error) {
	scens := []sim.Scenario{sim.Fig2aDoS(), sim.Fig2bDelay(), sim.Fig3aDoS(), sim.Fig3bDelay()}
	rows := make([]Table1Row, 0, len(scens))
	for _, s := range scens {
		res, err := sim.Run(s)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Attack:         s.Name,
			DetectedAt:     res.DetectedAt,
			FalsePositives: res.Accuracy.FalsePositives,
			FalseNegatives: res.Accuracy.FalseNegatives,
			EstimateSteps:  res.EstimateSteps,
			RLSTime:        res.RLSTime,
			DistRMSE:       res.EstimateDistRMSE,
			VelRMSE:        res.EstimateVelRMSE,
			Collision:      res.CollisionAt >= 0,
		})
	}
	return rows, nil
}

// FormatTable1 renders the rows with the paper's reference values.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("T1: detection & recovery summary (paper: detection at k=182, no FP/FN,\n")
	b.WriteString("    RLS runtime 1.2e7 ns DoS / 1.3e7 ns delay for k=182..300)\n")
	fmt.Fprintf(&b, "%-28s %9s %4s %4s %6s %14s %10s %10s %9s\n",
		"scenario", "detected", "FP", "FN", "steps", "rls-time(ns)", "dist-rmse", "vel-rmse", "collision")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %9d %4d %4d %6d %14d %10.2f %10.3f %9v\n",
			r.Attack, r.DetectedAt, r.FalsePositives, r.FalseNegatives,
			r.EstimateSteps, r.RLSTime.Nanoseconds(), r.DistRMSE, r.VelRMSE, r.Collision)
	}
	return b.String()
}

// JammerRow is one row of the Eqn 11 power-ratio sweep (experiment E1).
type JammerRow struct {
	Distance   float64
	SignalW    float64
	JammerW    float64
	PowerRatio float64
	Succeeds   bool
}

// JammerSweep evaluates the jamming success condition across the radar's
// operating range.
func JammerSweep(p radar.Params, j attack.Jammer, points int) []JammerRow {
	if points < 2 {
		points = 2
	}
	rows := make([]JammerRow, 0, points)
	for i := 0; i < points; i++ {
		d := p.MinRangeM + (p.MaxRangeM-p.MinRangeM)*float64(i)/float64(points-1)
		rows = append(rows, JammerRow{
			Distance:   d,
			SignalW:    p.ReceivedPower(d, p.TargetRCS),
			JammerW:    j.ReceivedPower(p, d),
			PowerRatio: j.PowerRatio(p, d),
			Succeeds:   j.Succeeds(p, d),
		})
	}
	return rows
}

// FormatJammerSweep renders the sweep with the burn-through range.
func FormatJammerSweep(p radar.Params, j attack.Jammer, rows []JammerRow) string {
	var b strings.Builder
	b.WriteString("E1: Eqn 11 jamming power ratio Ps/Pj over the LRR2 operating range\n")
	b.WriteString("    (attack succeeds where the ratio < 1; paper's jammer wins at the\n")
	b.WriteString("    100 m case-study range)\n")
	fmt.Fprintf(&b, "%8s %14s %14s %12s %8s\n", "d (m)", "Ps (W)", "Pjam (W)", "Ps/Pjam", "jammed")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8.1f %14.3e %14.3e %12.4g %8v\n",
			r.Distance, r.SignalW, r.JammerW, r.PowerRatio, r.Succeeds)
	}
	fmt.Fprintf(&b, "burn-through range (radar wins below): %.2f m\n", j.BurnThroughRange(p))
	return b.String()
}
