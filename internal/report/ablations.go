package report

import (
	"fmt"
	"math"
	"strings"

	"safesense/internal/baseline"
	"safesense/internal/estimate"
	"safesense/internal/noise"
	"safesense/internal/prbs"
	"safesense/internal/radar"
	"safesense/internal/sim"
	"safesense/internal/stats"
)

// EstimatorRow is one row of ablation A1: how well each estimator family
// predicts the radar channels over the paper's attack window when trained
// only on pre-attack data.
type EstimatorRow struct {
	Estimator string
	DistRMSE  float64
	VelRMSE   float64
	Diverged  bool // prediction left the plausible envelope (|d| > 1 km)
}

// EstimatorAblation trains each candidate on the clean Figure 2a
// measurement stream up to the attack onset and free-runs it over the
// attack window, scoring against ground truth. It isolates the estimator
// choice from the closed loop: every candidate sees the identical stream.
func EstimatorAblation() ([]EstimatorRow, error) {
	base, err := sim.Run(sim.Baseline(sim.Fig2aDoS()))
	if err != nil {
		return nil, err
	}
	onset := 182
	dMeas := base.Distance.Series(sim.SeriesMeasured)
	vMeas := base.Velocity.Series(sim.SeriesMeasured)
	dTrue := base.Distance.Series(sim.SeriesTrue)
	vTrue := base.Velocity.Series(sim.SeriesTrue)
	vF := base.Speeds.Series(sim.SeriesFollower)
	sched := sim.Fig2aDoS().Schedule

	horizon := base.Scenario.Steps
	var rows []EstimatorRow

	score := func(name string, predD, predV []float64) {
		var td, tv []float64
		for k := onset; k < horizon; k++ {
			d, _ := dTrue.At(k)
			v, _ := vTrue.At(k)
			td = append(td, d)
			tv = append(tv, v)
		}
		dr, _ := stats.RMSE(predD, td)
		vr, _ := stats.RMSE(predV, tv)
		diverged := false
		for _, v := range predD {
			if math.Abs(v) > 1000 {
				diverged = true
				break
			}
		}
		rows = append(rows, EstimatorRow{Estimator: name, DistRMSE: dr, VelRMSE: vr, Diverged: diverged})
	}

	// 1. The paper's pipeline: RLS trend + kinematic integration.
	rec, err := estimate.NewRecoveryEstimator(estimate.DefaultPredictorConfig())
	if err != nil {
		return nil, err
	}
	for k := 0; k < onset; k++ {
		if sched.Challenge(k) {
			rec.SkipStep()
			continue
		}
		d, _ := dMeas.At(k)
		v, _ := vMeas.At(k)
		f, _ := vF.At(k)
		if err := rec.Observe(d, v, f); err != nil {
			return nil, err
		}
	}
	var pd, pv []float64
	for k := onset; k < horizon; k++ {
		f, _ := vF.At(k)
		d, v := rec.Predict(f)
		pd = append(pd, d)
		pv = append(pv, v)
	}
	score("rls-recovery (paper)", pd, pv)

	// 2. Pure RLS trend extrapolation of both channels (no kinematics).
	pair, err := estimate.NewPairPredictor(estimate.DefaultPredictorConfig())
	if err != nil {
		return nil, err
	}
	for k := 0; k < onset; k++ {
		if sched.Challenge(k) {
			pair.Distance.SkipStep()
			pair.Velocity.SkipStep()
			continue
		}
		d, _ := dMeas.At(k)
		v, _ := vMeas.At(k)
		if err := pair.Observe(d, v); err != nil {
			return nil, err
		}
	}
	pd, pv = nil, nil
	for k := onset; k < horizon; k++ {
		d, v := pair.Predict()
		pd = append(pd, d)
		pv = append(pv, v)
	}
	score("rls-trend", pd, pv)

	// 3. Constant-velocity Kalman on the distance channel, predict-only
	// through the attack; velocity prediction is the filter's rate state.
	kf, err := baseline.NewConstantVelocityKalman(1, 0.02, 0.25, 100)
	if err != nil {
		return nil, err
	}
	for k := 0; k < onset; k++ {
		if sched.Challenge(k) {
			kf.Predict()
			continue
		}
		d, _ := dMeas.At(k)
		if _, err := kf.Update([]float64{d}); err != nil {
			return nil, err
		}
	}
	pd, pv = nil, nil
	for k := onset; k < horizon; k++ {
		kf.Predict()
		x := kf.State()
		pd = append(pd, math.Max(0, x[0]))
		pv = append(pv, x[1])
	}
	score("kalman-cv", pd, pv)

	// 4. Normalized LMS with an autoregressive regressor — the cheap
	// adaptive filter. Its free-run feeds predictions back through noisy
	// AR weights whose roots stray outside the unit circle; divergence
	// over the 2-minute window is the expected finding.
	const arOrder = 4
	lmsD, err := baseline.NewLMS(arOrder+1, 0.5)
	if err != nil {
		return nil, err
	}
	lmsV, err := baseline.NewLMS(arOrder+1, 0.5)
	if err != nil {
		return nil, err
	}
	histD := make([]float64, 0, horizon)
	histV := make([]float64, 0, horizon)
	reg := func(hist []float64) []float64 {
		h := make([]float64, arOrder+1)
		for i := 0; i < arOrder; i++ {
			h[i] = hist[len(hist)-1-i]
		}
		h[arOrder] = 1
		return h
	}
	for k := 0; k < onset; k++ {
		if sched.Challenge(k) {
			continue
		}
		d, _ := dMeas.At(k)
		v, _ := vMeas.At(k)
		if len(histD) >= arOrder {
			lmsD.Update(reg(histD), d)
			lmsV.Update(reg(histV), v)
		}
		histD = append(histD, d)
		histV = append(histV, v)
	}
	pd, pv = nil, nil
	for k := onset; k < horizon; k++ {
		d := lmsD.Predict(reg(histD))
		v := lmsV.Predict(reg(histV))
		histD = append(histD, d)
		histV = append(histV, v)
		pd = append(pd, d)
		pv = append(pv, v)
	}
	score("lms-ar4", pd, pv)

	return rows, nil
}

// FormatEstimatorAblation renders A1.
func FormatEstimatorAblation(rows []EstimatorRow) string {
	var b strings.Builder
	b.WriteString("A1: estimator ablation — free-run error over the attack window\n")
	b.WriteString("    (trained on the clean Fig 2a stream up to k=182, scored on k=182..300)\n")
	fmt.Fprintf(&b, "%-22s %12s %12s %9s\n", "estimator", "dist-rmse", "vel-rmse", "diverged")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %12.2f %12.3f %9v\n", r.Estimator, r.DistRMSE, r.VelRMSE, r.Diverged)
	}
	return b.String()
}

// DetectorRow is one row of ablation A2: detection latency and false
// positives for CRA (at several challenge rates) and the chi-square
// residual baseline.
type DetectorRow struct {
	Detector     string
	LatencyDoS   int // steps from onset to flag; -1 = missed
	LatencyDelay int
	FPClean      int // alarms raised on the clean run
}

// DetectorAblation compares CRA challenge rates against a chi-square
// residual detector on identical measurement streams.
func DetectorAblation() ([]DetectorRow, error) {
	onset := 182
	// Streams: clean baseline, undefended DoS, undefended delay — the raw
	// radar outputs each detector inspects.
	clean, err := sim.Run(sim.Baseline(sim.Fig2aDoS()))
	if err != nil {
		return nil, err
	}
	dos, err := sim.Run(sim.Undefended(sim.Fig2aDoS()))
	if err != nil {
		return nil, err
	}
	delay, err := sim.Run(sim.Undefended(sim.Fig2bDelay()))
	if err != nil {
		return nil, err
	}
	horizon := clean.Scenario.Steps

	var rows []DetectorRow

	// CRA at pseudo-random challenge rates ~2^-w: latency is the wait for
	// the first challenge instant at/after onset; FP and FN are zero by
	// construction (Section 5.2), which the sim package's accuracy tests
	// verify — here we report the structural latency.
	for _, w := range []int{2, 3, 4, 5} {
		sched, err := prbs.NewLFSRSchedule(12, 42, w, horizon)
		if err != nil {
			return nil, err
		}
		lat := -1
		for k := onset; k < horizon; k++ {
			if sched.Challenge(k) {
				lat = k - onset
				break
			}
		}
		rows = append(rows, DetectorRow{
			Detector:     fmt.Sprintf("cra (rate~%.3f)", sched.Rate()),
			LatencyDoS:   lat,
			LatencyDelay: lat,
			FPClean:      0,
		})
	}
	// The paper's pinned schedule: a challenge at the onset itself.
	rows = append(rows, DetectorRow{Detector: "cra (paper schedule)", LatencyDoS: 0, LatencyDelay: 0, FPClean: 0})

	// Chi-square residual detector on the distance channel.
	for _, th := range []float64{4, 8, 16} {
		runChi := func(res *sim.Result) (int, int, error) {
			d, err := baseline.NewChiSquareDetector(1, 0.05, 0.5, 100, 8, th)
			if err != nil {
				return 0, 0, err
			}
			meas := res.Distance.Series(sim.SeriesMeasured)
			sched := res.Scenario.Schedule
			lat, fp := -1, 0
			for k := 0; k < horizon; k++ {
				if sched.Challenge(k) {
					continue // no measurement at challenge instants
				}
				y, ok := meas.At(k)
				if !ok {
					continue
				}
				alarmed, err := d.Step(k, y)
				if err != nil {
					return 0, 0, err
				}
				if alarmed {
					if k < onset {
						fp++
					} else if lat < 0 {
						lat = k - onset
					}
				}
			}
			return lat, fp, nil
		}
		latDoS, _, err := runChi(dos)
		if err != nil {
			return nil, err
		}
		latDelay, _, err := runChi(delay)
		if err != nil {
			return nil, err
		}
		_, fpClean, err := runChi(clean)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DetectorRow{
			Detector:     fmt.Sprintf("chi-square (th=%g)", th),
			LatencyDoS:   latDoS,
			LatencyDelay: latDelay,
			FPClean:      fpClean,
		})
	}
	return rows, nil
}

// FormatDetectorAblation renders A2.
func FormatDetectorAblation(rows []DetectorRow) string {
	var b strings.Builder
	b.WriteString("A2: detector ablation — latency (steps after onset; -1 = missed) and\n")
	b.WriteString("    false alarms on the clean run\n")
	fmt.Fprintf(&b, "%-24s %12s %14s %10s\n", "detector", "latency-dos", "latency-delay", "fp-clean")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %12d %14d %10d\n", r.Detector, r.LatencyDoS, r.LatencyDelay, r.FPClean)
	}
	return b.String()
}

// BeatRow is one row of ablation A3: beat-frequency extraction accuracy of
// the FFT periodogram vs root-MUSIC across target range and snapshot size.
type BeatRow struct {
	Extractor string
	Samples   int
	Distance  float64
	SNRdB     float64
	DistRMSE  float64
	VelRMSE   float64
}

// BeatAblation measures distance/velocity estimation error of both
// extractors over repeated noisy sweeps.
func BeatAblation(trials int) ([]BeatRow, error) {
	if trials < 1 {
		trials = 1
	}
	p := radar.BoschLRR2()
	extractors := []radar.BeatExtractor{radar.FFTExtractor{}, radar.MUSICExtractor{}}
	var rows []BeatRow
	for _, n := range []int{64, 256} {
		for _, d := range []float64{20, 100, 180} {
			for _, ext := range extractors {
				src := noise.NewSource(1000 + int64(n) + int64(d))
				var sd, sv float64
				vTrue := -1.5
				ok := 0
				for t := 0; t < trials; t++ {
					dm, vm, err := p.MeasureSweep(d, vTrue, n, ext, src)
					if err != nil {
						continue
					}
					sd += (dm - d) * (dm - d)
					sv += (vm - vTrue) * (vm - vTrue)
					ok++
				}
				if ok == 0 {
					return nil, fmt.Errorf("report: extractor %s failed all trials", ext.Name())
				}
				rows = append(rows, BeatRow{
					Extractor: ext.Name(),
					Samples:   n,
					Distance:  d,
					SNRdB:     p.SNRdB(d),
					DistRMSE:  math.Sqrt(sd / float64(ok)),
					VelRMSE:   math.Sqrt(sv / float64(ok)),
				})
			}
		}
	}
	return rows, nil
}

// FormatBeatAblation renders A3.
func FormatBeatAblation(rows []BeatRow) string {
	var b strings.Builder
	b.WriteString("A3: beat-frequency extraction — FFT periodogram vs root-MUSIC\n")
	b.WriteString("    (distance / range-rate RMSE over repeated noisy sweeps)\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %12s %12s\n", "extractor", "samples", "d (m)", "snr(dB)", "dist-rmse", "vel-rmse")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8d %8.0f %8.1f %12.3f %12.3f\n",
			r.Extractor, r.Samples, r.Distance, r.SNRdB, r.DistRMSE, r.VelRMSE)
	}
	return b.String()
}
