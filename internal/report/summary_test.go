package report

import (
	"encoding/json"
	"reflect"
	"testing"

	"safesense/internal/sim"
)

func TestSummarizeRoundTripsJSON(t *testing.T) {
	res, err := sim.Run(sim.Fig2aDoS())
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(res, false)
	if sum.Traces != nil {
		t.Fatal("traces must be opt-in")
	}
	if sum.DetectedAt != 182 || sum.Attack != "dos" || !sum.Defended {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.FalsePositives != 0 || sum.FalseNegatives != 0 {
		t.Fatalf("confusion = FP %d FN %d", sum.FalsePositives, sum.FalseNegatives)
	}
	b, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	var back RunSummary
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, sum) {
		t.Fatal("summary did not survive a JSON round trip")
	}
	if len(sum.Events) == 0 {
		t.Fatal("flight-recorder events must ride along in the summary")
	}
}

func TestSummarizeWithTraces(t *testing.T) {
	res, err := sim.Run(sim.Fig2bDelay())
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(res, true)
	if sum.Traces == nil {
		t.Fatal("traces requested but absent")
	}
	if len(sum.Traces.Distance.Series) == 0 || len(sum.Traces.Speeds.Series) != 2 {
		t.Fatalf("trace dump shape: %d distance, %d speed series",
			len(sum.Traces.Distance.Series), len(sum.Traces.Speeds.Series))
	}
	if _, err := json.Marshal(sum); err != nil {
		t.Fatalf("traces must marshal cleanly (NaN-free): %v", err)
	}
}
