package report

import (
	"strings"
	"testing"

	"safesense/internal/sim"
)

func TestChallengeRateSweep(t *testing.T) {
	rows, err := ChallengeRateSweep([]int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Rates decrease down the table (w = 1..5 halves the rate each step).
	for i := 1; i < len(rows); i++ {
		if rows[i].Rate >= rows[i-1].Rate {
			t.Fatalf("rate not decreasing: %v", rows)
		}
	}
	// The densest schedule detects fast.
	if rows[0].MeanLatency < 0 || rows[0].MeanLatency > 10 {
		t.Fatalf("dense schedule latency = %v", rows[0].MeanLatency)
	}
	out := FormatChallengeRateSweep(rows)
	if !strings.Contains(out, "A4:") {
		t.Fatalf("format: %s", out)
	}
}

func TestLimitationDemo(t *testing.T) {
	rows, err := LimitationDemo()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	ordinary, fast := rows[0], rows[1]
	if ordinary.Attack != "delay" || fast.Attack != "fast-adversary" {
		t.Fatalf("attack order: %+v", rows)
	}
	// The ordinary spoofer is caught; the fast adversary never is.
	if ordinary.DetectedAt != 182 {
		t.Fatalf("ordinary spoofer detected at %d", ordinary.DetectedAt)
	}
	if fast.DetectedAt != -1 {
		t.Fatalf("fast adversary detected at %d — limitation should hold", fast.DetectedAt)
	}
	// And the undetected attack erodes the safety margin.
	if fast.MinGap >= ordinary.MinGap {
		t.Fatalf("fast adversary min gap %v should be below defended %v",
			fast.MinGap, ordinary.MinGap)
	}
	out := FormatLimitationDemo(rows)
	if !strings.Contains(out, "never") {
		t.Fatalf("format: %s", out)
	}
}

func TestSignalFigure(t *testing.T) {
	f, err := SignalFigure("fig2a", sim.Fig2aDoS())
	if err != nil {
		t.Fatal(err)
	}
	if f.Defended.DetectedAt != 182 {
		t.Fatalf("signal-level detection at %d", f.Defended.DetectedAt)
	}
	if f.Defended.CollisionAt >= 0 {
		t.Fatal("signal-level defended run collided")
	}
	if !strings.Contains(f.ID, "signal") {
		t.Fatalf("id: %s", f.ID)
	}
}
