package report

import (
	"fmt"
	"strings"

	"safesense/internal/prbs"
	"safesense/internal/sim"
	"safesense/internal/stats"
)

// ChallengeRateRow is one row of ablation A4: how the CRA challenge rate
// trades detection latency (and with it safety margin) against sensor
// availability, evaluated in the full closed loop.
type ChallengeRateRow struct {
	// Rate is the realized fraction of steps that are challenges.
	Rate float64
	// MeanLatency averages detection latency over the seeds (-1 if any
	// run missed the attack entirely).
	MeanLatency float64
	// WorstMinGap is the smallest defended gap seen across seeds.
	WorstMinGap float64
	// Collisions counts colliding runs.
	Collisions int
	// Blanked is the fraction of steps the radar spends not measuring.
	Blanked float64
}

// ChallengeRateSweep runs the defended Figure 2b scenario under LFSR
// schedules of decreasing challenge rate, over several seeds each.
func ChallengeRateSweep(seeds []int64) ([]ChallengeRateRow, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3}
	}
	var rows []ChallengeRateRow
	for _, w := range []int{1, 2, 3, 4, 5} {
		var latencies []float64
		worst := 1e18
		collisions := 0
		var rate float64
		missed := false
		for _, seed := range seeds {
			scen := sim.Fig2bDelay()
			scen.Seed = seed
			sched, err := prbs.NewLFSRSchedule(14, uint32(seed)+uint32(w)<<8, w, scen.Steps)
			if err != nil {
				return nil, err
			}
			scen.Schedule = sched
			rate = sched.Rate()
			res, err := sim.Run(scen)
			if err != nil {
				return nil, err
			}
			if res.DetectedAt < 0 {
				missed = true
			} else {
				latencies = append(latencies, float64(res.DetectedAt-scen.Attack.Window.Start))
			}
			if res.MinGap < worst {
				worst = res.MinGap
			}
			if res.CollisionAt >= 0 {
				collisions++
			}
		}
		lat := -1.0
		if !missed && len(latencies) > 0 {
			lat = stats.Mean(latencies)
		}
		rows = append(rows, ChallengeRateRow{
			Rate:        rate,
			MeanLatency: lat,
			WorstMinGap: worst,
			Collisions:  collisions,
			Blanked:     rate,
		})
	}
	return rows, nil
}

// FormatChallengeRateSweep renders A4.
func FormatChallengeRateSweep(rows []ChallengeRateRow) string {
	var b strings.Builder
	b.WriteString("A4: challenge-rate sweep — CRA availability/latency/safety tradeoff\n")
	b.WriteString("    (defended Fig 2b runs under LFSR schedules, 3 seeds per rate)\n")
	fmt.Fprintf(&b, "%12s %14s %14s %11s %10s\n", "rate", "mean-latency", "worst-min-gap", "collisions", "blanked")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12.4f %14.1f %14.2f %11d %10.1f%%\n",
			r.Rate, r.MeanLatency, r.WorstMinGap, r.Collisions, 100*r.Blanked)
	}
	return b.String()
}

// LimitationRow is one row of A5: the paper's acknowledged failure mode.
type LimitationRow struct {
	Attack     string
	DetectedAt int
	MinGap     float64
	Collision  bool
}

// LimitationDemo reproduces the conclusion's concession: a fast adversary
// that samples the channel faster than the defender and mutes itself at
// challenge instants is never detected, and the defense never engages.
func LimitationDemo() ([]LimitationRow, error) {
	ordinary := sim.Fig2bDelay()
	fast := sim.Fig2bDelay()
	fast.Name = "fast-adversary-delay"
	fast.Attack.Kind = sim.FastAdversaryAttack

	var rows []LimitationRow
	for _, scen := range []sim.Scenario{ordinary, fast} {
		res, err := sim.Run(scen)
		if err != nil {
			return nil, err
		}
		rows = append(rows, LimitationRow{
			Attack:     scen.Attack.Kind.String(),
			DetectedAt: res.DetectedAt,
			MinGap:     res.MinGap,
			Collision:  res.CollisionAt >= 0,
		})
	}
	return rows, nil
}

// FormatLimitationDemo renders A5.
func FormatLimitationDemo(rows []LimitationRow) string {
	var b strings.Builder
	b.WriteString("A5: limitation demo — the conclusion's fast adversary defeats CRA\n")
	b.WriteString("    (same +6 m spoof; the fast adversary mutes itself at challenges)\n")
	fmt.Fprintf(&b, "%-18s %10s %14s %10s\n", "attack", "detected", "min gap (m)", "collision")
	for _, r := range rows {
		det := fmt.Sprintf("%d", r.DetectedAt)
		if r.DetectedAt < 0 {
			det = "never"
		}
		fmt.Fprintf(&b, "%-18s %10s %14.2f %10v\n", r.Attack, det, r.MinGap, r.Collision)
	}
	return b.String()
}

// SignalFigure reproduces a figure scenario through the signal-level
// pipeline (sweep synthesis -> sweep-level attack -> beat extraction),
// verifying the closed-form results hold under the high-fidelity substrate.
func SignalFigure(id string, scen sim.Scenario) (*FigureResult, error) {
	scen.SignalLevel = true
	scen.Name += "-signal"
	return Figure(id+"-signal", scen)
}
