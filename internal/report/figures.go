// Package report regenerates every figure and table of the paper's
// evaluation (Section 6.2) plus the ablations documented in DESIGN.md, and
// formats paper-vs-measured summaries. cmd/experiments is a thin CLI over
// this package.
package report

import (
	"fmt"
	"io"
	"strings"

	"safesense/internal/sim"
	"safesense/internal/trace"
)

// FigureResult bundles one reproduced figure: the three-curve trace sets
// (without attack / with attack / estimated) for both radar channels, and
// the runs they came from.
type FigureResult struct {
	ID       string
	Title    string
	Distance *trace.Set
	Velocity *trace.Set

	Baseline *sim.Result // no attack
	Defended *sim.Result // attack + CRA/RLS defense
}

// Figure reproduces one of Figures 2a/2b/3a/3b from its scenario: it runs
// the clean baseline and the defended attacked run, then assembles the
// figure's three curves per channel exactly as the paper plots them.
func Figure(id string, scen sim.Scenario) (*FigureResult, error) {
	baseline, err := sim.Run(sim.Baseline(scen))
	if err != nil {
		return nil, fmt.Errorf("report: baseline run: %w", err)
	}
	defended, err := sim.Run(scen)
	if err != nil {
		return nil, fmt.Errorf("report: defended run: %w", err)
	}
	fr := &FigureResult{
		ID:       id,
		Title:    scen.Name,
		Baseline: baseline,
		Defended: defended,
	}
	fr.Distance = assemble(id+": relative distance", "time (s)", "distance (m)",
		baseline.Distance, defended.Distance)
	fr.Velocity = assemble(id+": relative velocity", "time (s)", "velocity (m/s)",
		baseline.Velocity, defended.Velocity)
	return fr, nil
}

// assemble merges the baseline's measured series and the defended run's
// measured + estimated series into one figure-ready set.
func assemble(title, xl, yl string, base, def *trace.Set) *trace.Set {
	out := trace.NewSet(title, xl, yl)
	copySeries(out.Add(sim.SeriesNoAttack), base.Series(sim.SeriesMeasured))
	copySeries(out.Add(sim.SeriesMeasured), def.Series(sim.SeriesMeasured))
	copySeries(out.Add(sim.SeriesEstimated), def.Series(sim.SeriesEstimated))
	return out
}

func copySeries(dst, src *trace.Series) {
	if src == nil {
		return
	}
	for i, t := range src.T {
		dst.Append(t, src.Y[i])
	}
}

// Summary returns the one-paragraph check of the figure's expected shape.
func (f *FigureResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", f.ID, f.Title)
	fmt.Fprintf(&b, "  attack detected at k = %d (paper: 182)\n", f.Defended.DetectedAt)
	fmt.Fprintf(&b, "  challenge-instant confusion: TP=%d TN=%d FP=%d FN=%d (paper: no FP/FN)\n",
		f.Defended.Accuracy.TruePositives, f.Defended.Accuracy.TrueNegatives,
		f.Defended.Accuracy.FalsePositives, f.Defended.Accuracy.FalseNegatives)
	fmt.Fprintf(&b, "  estimates delivered: %d steps, distance RMSE %.2f m, velocity RMSE %.3f m/s vs truth\n",
		f.Defended.EstimateSteps, f.Defended.EstimateDistRMSE, f.Defended.EstimateVelRMSE)
	fmt.Fprintf(&b, "  defended min gap %.2f m (collision: %v); baseline min gap %.2f m\n",
		f.Defended.MinGap, f.Defended.CollisionAt >= 0, f.Baseline.MinGap)
	fmt.Fprintf(&b, "  RLS time over attack window: %d ns (paper: ~1.2e7–1.3e7 ns in MATLAB)\n",
		f.Defended.RLSTime.Nanoseconds())
	return b.String()
}

// Render writes the ASCII plots and summary to w.
func (f *FigureResult) Render(w io.Writer, opt trace.PlotOptions) error {
	if err := f.Distance.RenderASCII(w, opt); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := f.Velocity.RenderASCII(w, opt); err != nil {
		return err
	}
	fmt.Fprintln(w)
	_, err := io.WriteString(w, f.Summary())
	return err
}

// AllFigures reproduces the full Figure 2/3 family.
func AllFigures() ([]*FigureResult, error) {
	specs := []struct {
		id   string
		scen sim.Scenario
	}{
		{"fig2a", sim.Fig2aDoS()},
		{"fig2b", sim.Fig2bDelay()},
		{"fig3a", sim.Fig3aDoS()},
		{"fig3b", sim.Fig3bDelay()},
	}
	out := make([]*FigureResult, 0, len(specs))
	for _, s := range specs {
		f, err := Figure(s.id, s.scen)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
