package report

import (
	"safesense/internal/sim"
	"safesense/internal/trace"
)

// RunSummary is the JSON-serializable digest of one sim.Result: the wire
// format the safesensed service returns for a single-scenario run, and a
// stable export shape for external tooling. Traces ride along only when
// requested — they dominate the payload size.
type RunSummary struct {
	Name     string `json:"name"`
	Attack   string `json:"attack"`
	Defended bool   `json:"defended"`
	Steps    int    `json:"steps"`
	Seed     int64  `json:"seed"`

	DetectedAt     int `json:"detected_at"`
	FalsePositives int `json:"false_positives"`
	FalseNegatives int `json:"false_negatives"`
	TruePositives  int `json:"true_positives"`
	TrueNegatives  int `json:"true_negatives"`

	MinGapM       float64 `json:"min_gap_m"`
	FinalGapM     float64 `json:"final_gap_m"`
	FinalSpeedMps float64 `json:"final_speed_mps"`
	CollisionAt   int     `json:"collision_at"`

	EstimateSteps int     `json:"estimate_steps"`
	DistRMSEm     float64 `json:"dist_rmse_m"`
	DistMaxErrM   float64 `json:"dist_max_err_m"`
	VelRMSEmps    float64 `json:"vel_rmse_mps"`
	VelMaxErrMps  float64 `json:"vel_max_err_mps"`
	RLSTimeNs     int64   `json:"rls_time_ns"`

	// Events is the flight-recorder timeline: challenge instants, CRA
	// detections, RLS takeover/release, exceedances, collisions — each
	// stamped with its timestep k.
	Events []sim.FlightEvent `json:"events,omitempty"`
	// Anomalies carries the recorder's last-N state dumps for collisions
	// and challenge-instant detector confusion.
	Anomalies []sim.AnomalyDump `json:"anomalies,omitempty"`

	// Traces holds the distance / velocity / speed trace sets when the
	// caller asked for them (see Summarize's includeTraces).
	Traces *RunTraces `json:"traces,omitempty"`
}

// RunTraces bundles the three trace sets of a run in JSON form.
type RunTraces struct {
	Distance trace.SetDump `json:"distance"`
	Velocity trace.SetDump `json:"velocity"`
	Speeds   trace.SetDump `json:"speeds"`
}

// Summarize projects a Result onto the wire format.
func Summarize(res *sim.Result, includeTraces bool) RunSummary {
	s := RunSummary{
		Name:           res.Scenario.Name,
		Attack:         res.Scenario.Attack.Kind.String(),
		Defended:       res.Scenario.Defended,
		Steps:          res.Scenario.Steps,
		Seed:           res.Scenario.Seed,
		DetectedAt:     res.DetectedAt,
		FalsePositives: res.Accuracy.FalsePositives,
		FalseNegatives: res.Accuracy.FalseNegatives,
		TruePositives:  res.Accuracy.TruePositives,
		TrueNegatives:  res.Accuracy.TrueNegatives,
		MinGapM:        res.MinGap,
		FinalGapM:      res.FinalGap,
		FinalSpeedMps:  res.FinalFollowerSpeed,
		CollisionAt:    res.CollisionAt,
		EstimateSteps:  res.EstimateSteps,
		DistRMSEm:      res.EstimateDistRMSE,
		DistMaxErrM:    res.EstimateDistMaxErr,
		VelRMSEmps:     res.EstimateVelRMSE,
		VelMaxErrMps:   res.EstimateVelMaxErr,
		RLSTimeNs:      res.RLSTime.Nanoseconds(),
		Events:         res.Flight,
		Anomalies:      res.Anomalies,
	}
	if includeTraces {
		s.Traces = &RunTraces{
			Distance: res.Distance.Dump(),
			Velocity: res.Velocity.Dump(),
			Speeds:   res.Speeds.Dump(),
		}
	}
	return s
}
