package report

import (
	"strings"
	"testing"

	"safesense/internal/attack"
	"safesense/internal/radar"
	"safesense/internal/sim"
	"safesense/internal/trace"
)

func TestFigureReproducesPaperShape(t *testing.T) {
	f, err := Figure("fig2a", sim.Fig2aDoS())
	if err != nil {
		t.Fatal(err)
	}
	// Three series per channel.
	for _, set := range []*trace.Set{f.Distance, f.Velocity} {
		names := set.Names()
		if len(names) != 3 {
			t.Fatalf("series = %v", names)
		}
	}
	// With-attack series must depart from the without-attack series during
	// the attack (DoS garbage ~240 vs truth <60).
	with := f.Distance.Series(sim.SeriesMeasured)
	without := f.Distance.Series(sim.SeriesNoAttack)
	w250, _ := with.At(250)
	wo250, _ := without.At(250)
	if w250-wo250 < 50 {
		t.Fatalf("with-attack %v vs without %v: corruption not visible", w250, wo250)
	}
	// Estimated series exists only during the attack and tracks the
	// without-attack curve far better than the corrupted one.
	est := f.Distance.Series(sim.SeriesEstimated)
	if _, ok := est.At(100); ok {
		t.Fatal("estimates must not exist before the attack")
	}
	e250, ok := est.At(250)
	if !ok {
		t.Fatal("estimates missing during attack")
	}
	if diff := abs(e250 - wo250); diff > 15 {
		t.Fatalf("estimate %v vs clean %v too far apart", e250, wo250)
	}
	// Summary and render produce non-trivial output.
	if !strings.Contains(f.Summary(), "detected at k = 182") {
		t.Fatalf("summary: %s", f.Summary())
	}
	var sb strings.Builder
	if err := f.Render(&sb, trace.PlotOptions{Width: 60, Height: 10}); err != nil {
		t.Fatal(err)
	}
	if len(sb.String()) < 500 {
		t.Fatal("render output suspiciously small")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestAllFigures(t *testing.T) {
	figs, err := AllFigures()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("got %d figures", len(figs))
	}
	ids := map[string]bool{}
	for _, f := range figs {
		ids[f.ID] = true
		if f.Defended.DetectedAt != 182 {
			t.Fatalf("%s: detected at %d", f.ID, f.Defended.DetectedAt)
		}
	}
	for _, id := range []string{"fig2a", "fig2b", "fig3a", "fig3b"} {
		if !ids[id] {
			t.Fatalf("missing %s", id)
		}
	}
}

func TestTable1MatchesPaperClaims(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.DetectedAt != 182 {
			t.Fatalf("%s: detected at %d, want 182", r.Attack, r.DetectedAt)
		}
		if r.FalsePositives != 0 || r.FalseNegatives != 0 {
			t.Fatalf("%s: FP=%d FN=%d", r.Attack, r.FalsePositives, r.FalseNegatives)
		}
		if r.Collision {
			t.Fatalf("%s: collision despite defense", r.Attack)
		}
		if r.EstimateSteps != 119 {
			t.Fatalf("%s: %d estimate steps, want 119", r.Attack, r.EstimateSteps)
		}
		if r.RLSTime <= 0 {
			t.Fatalf("%s: no RLS time recorded", r.Attack)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "fig2a-dos-const-decel") {
		t.Fatalf("format: %s", out)
	}
}

func TestJammerSweepShape(t *testing.T) {
	p := radar.BoschLRR2()
	j := attack.PaperJammer()
	rows := JammerSweep(p, j, 12)
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Ratio decreases with distance; paper's jammer succeeds at 100 m.
	for i := 1; i < len(rows); i++ {
		if rows[i].PowerRatio >= rows[i-1].PowerRatio {
			t.Fatalf("ratio not decreasing at %v m", rows[i].Distance)
		}
	}
	found := false
	for _, r := range rows {
		if r.Distance >= 90 && r.Distance <= 110 && r.Succeeds {
			found = true
		}
	}
	_ = found // the 100 m point may fall between grid points; check nearest
	if !j.Succeeds(p, 100) {
		t.Fatal("paper jammer must succeed at 100 m")
	}
	out := FormatJammerSweep(p, j, rows)
	if !strings.Contains(out, "burn-through") {
		t.Fatalf("format: %s", out)
	}
}

func TestEstimatorAblationOrdering(t *testing.T) {
	rows, err := EstimatorAblation()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]EstimatorRow{}
	for _, r := range rows {
		byName[r.Estimator] = r
	}
	rec, ok := byName["rls-recovery (paper)"]
	if !ok {
		t.Fatalf("rows: %+v", rows)
	}
	// The paper's pipeline must beat the naive LMS AR free-run, which is
	// expected to diverge.
	lms := byName["lms-ar4"]
	if !(rec.DistRMSE < lms.DistRMSE) {
		t.Fatalf("recovery RMSE %v not better than LMS %v", rec.DistRMSE, lms.DistRMSE)
	}
	// And be at least competitive with the Kalman baseline.
	kal := byName["kalman-cv"]
	if rec.DistRMSE > kal.DistRMSE*3+10 {
		t.Fatalf("recovery %v vastly worse than kalman %v", rec.DistRMSE, kal.DistRMSE)
	}
	out := FormatEstimatorAblation(rows)
	if !strings.Contains(out, "rls-recovery") {
		t.Fatalf("format: %s", out)
	}
}

func TestDetectorAblationShape(t *testing.T) {
	rows, err := DetectorAblation()
	if err != nil {
		t.Fatal(err)
	}
	var craRows, chiRows []DetectorRow
	for _, r := range rows {
		if strings.HasPrefix(r.Detector, "cra") {
			craRows = append(craRows, r)
		} else {
			chiRows = append(chiRows, r)
		}
	}
	if len(craRows) < 3 || len(chiRows) < 2 {
		t.Fatalf("row split: %d cra, %d chi", len(craRows), len(chiRows))
	}
	// CRA never false-alarms.
	for _, r := range craRows {
		if r.FPClean != 0 {
			t.Fatalf("CRA false positives: %+v", r)
		}
	}
	// Chi-square catches the gross DoS corruption quickly.
	for _, r := range chiRows {
		if r.LatencyDoS < 0 || r.LatencyDoS > 20 {
			t.Fatalf("chi-square DoS latency: %+v", r)
		}
	}
	// The +6 m delay attack is harder for the residual detector than the
	// DoS flood on at least the strictest threshold.
	hard := false
	for _, r := range chiRows {
		if r.LatencyDelay < 0 || r.LatencyDelay > r.LatencyDoS {
			hard = true
		}
	}
	if !hard {
		t.Fatalf("delay attack unexpectedly easy for chi-square: %+v", chiRows)
	}
	out := FormatDetectorAblation(rows)
	if !strings.Contains(out, "chi-square") {
		t.Fatalf("format: %s", out)
	}
}

func TestBeatAblationMUSICCompetitive(t *testing.T) {
	rows, err := BeatAblation(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Both extractors stay within a few meters across the range at 256
	// samples.
	for _, r := range rows {
		if r.Samples == 256 && r.DistRMSE > 5 {
			t.Fatalf("%s at %v m: dist RMSE %v", r.Extractor, r.Distance, r.DistRMSE)
		}
	}
	out := FormatBeatAblation(rows)
	if !strings.Contains(out, "root-music") {
		t.Fatalf("format: %s", out)
	}
}
