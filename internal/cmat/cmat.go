// Package cmat implements the small complex dense linear algebra kernel
// required by the root-MUSIC beat-frequency estimator: complex matrix
// arithmetic and a Hermitian eigendecomposition obtained via the standard
// real-symmetric embedding handled by internal/mat.
package cmat

import (
	"fmt"
	"math"
	"math/cmplx"

	"safesense/internal/mat"
)

// Dense is a row-major dense complex matrix.
type Dense struct {
	rows, cols int
	data       []complex128
}

// NewDense returns an r-by-c zero complex matrix.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("cmat: invalid dimensions %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]complex128, r*c)}
}

// NewDenseData returns an r-by-c matrix backed by a copy of data (row-major).
func NewDenseData(r, c int, data []complex128) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("cmat: data length %d does not match %dx%d", len(data), r, c))
	}
	m := NewDense(r, c)
	copy(m.data, data)
	return m
}

// Identity returns the n-by-n complex identity.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Dims returns the matrix dimensions.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) complex128 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v complex128) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("cmat: index (%d,%d) out of range for %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense { return NewDenseData(m.rows, m.cols, m.data) }

// Add returns m + b.
func (m *Dense) Add(b *Dense) *Dense {
	m.sameDims(b, "Add")
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out
}

// Scale returns s*m.
func (m *Dense) Scale(s complex128) *Dense {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Mul returns the product m*b.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("cmat: Mul dimension mismatch %dx%d * %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			orow := out.data[i*out.cols : (i+1)*out.cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// MulVec returns m*x.
func (m *Dense) MulVec(x []complex128) []complex128 {
	if m.cols != len(x) {
		panic("cmat: MulVec dimension mismatch")
	}
	out := make([]complex128, m.rows)
	for i := 0; i < m.rows; i++ {
		var s complex128
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// ConjT returns the conjugate transpose (Hermitian adjoint) of m.
func (m *Dense) ConjT() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = cmplx.Conj(m.data[i*m.cols+j])
		}
	}
	return t
}

// IsHermitian reports whether m equals its conjugate transpose within tol.
func (m *Dense) IsHermitian(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		if math.Abs(imag(m.At(i, i))) > tol {
			return false
		}
		for j := i + 1; j < m.cols; j++ {
			if cmplx.Abs(m.At(i, j)-cmplx.Conj(m.At(j, i))) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest element magnitude.
func (m *Dense) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := cmplx.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// EqualApprox reports element-wise agreement within tol (by magnitude of the
// difference).
func (m *Dense) EqualApprox(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if cmplx.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

func (m *Dense) sameDims(b *Dense, op string) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("cmat: %s dimension mismatch", op))
	}
}

// Outer returns x * y^H (conjugating y), the building block of sample
// covariance estimation.
func Outer(x, y []complex128) *Dense {
	m := NewDense(len(x), len(y))
	for i, xv := range x {
		for j, yv := range y {
			m.data[i*m.cols+j] = xv * cmplx.Conj(yv)
		}
	}
	return m
}

// EigenHermitian computes the eigendecomposition of the Hermitian matrix h.
// Eigenvalues are returned in ascending order; the columns of the returned
// matrix are the corresponding orthonormal eigenvectors.
//
// The computation embeds H = A + iB into the real symmetric matrix
//
//	M = [ A  -B ]
//	    [ B   A ]
//
// whose spectrum is that of H with every eigenvalue doubled; a real
// eigenvector (x; y) of M maps to the complex eigenvector x + iy of H. The
// doubled eigenvalues are de-duplicated by taking every second one and
// re-orthonormalizing vectors that land in the same eigenspace.
func EigenHermitian(h *Dense) (vals []float64, vecs *Dense, err error) {
	n, c := h.Dims()
	if n != c {
		return nil, nil, fmt.Errorf("cmat: EigenHermitian of non-square %dx%d matrix", n, c)
	}
	if !h.IsHermitian(1e-9 * (1 + h.MaxAbs())) {
		return nil, nil, fmt.Errorf("cmat: matrix is not Hermitian")
	}
	// Build the 2n-by-2n real embedding.
	m := mat.NewDense(2*n, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a := real(h.At(i, j))
			b := imag(h.At(i, j))
			m.Set(i, j, a)
			m.Set(i+n, j+n, a)
			m.Set(i, j+n, -b)
			m.Set(i+n, j, b)
		}
	}
	// Symmetrize exactly: the embedding is symmetric in exact arithmetic
	// because H is Hermitian, but round the residual asymmetry away so the
	// Jacobi routine's symmetry check passes.
	m = m.Add(m.T()).Scale(0.5)
	rvals, rvecs, err := mat.EigenSym(m)
	if err != nil {
		return nil, nil, err
	}
	// Every eigenvalue of H appears twice, consecutively after sorting.
	vals = make([]float64, n)
	vecs = NewDense(n, n)
	for k := 0; k < n; k++ {
		vals[k] = rvals[2*k]
	}
	// Extract one complex eigenvector per doubled eigenvalue. A real
	// eigenvector (x; y) maps to x + iy; the partner (-y; x) maps to
	// i*(x + iy), so each real pair spans a single complex direction, and a
	// d-dimensional complex eigenspace appears as 2d real columns. For each
	// k, scan candidate real columns whose eigenvalue matches vals[k] and
	// accept the first whose complex image survives Gram-Schmidt against
	// the vectors already extracted in the same (near-)degenerate cluster.
	for k := 0; k < n; k++ {
		extracted := false
		for cand := 0; cand < 2*n && !extracted; cand++ {
			if math.Abs(rvals[cand]-vals[k]) > 1e-6*(1+math.Abs(vals[k])) {
				continue
			}
			v := make([]complex128, n)
			for i := 0; i < n; i++ {
				v[i] = complex(rvecs.At(i, cand), rvecs.At(i+n, cand))
			}
			if vecNorm(v) < 1e-8 {
				continue
			}
			// Orthogonalize against previously accepted near-equal modes.
			for p := 0; p < k; p++ {
				if math.Abs(vals[p]-vals[k]) > 1e-6*(1+math.Abs(vals[k])) {
					continue
				}
				var dot complex128
				for i := 0; i < n; i++ {
					dot += cmplx.Conj(vecs.At(i, p)) * v[i]
				}
				for i := 0; i < n; i++ {
					v[i] -= dot * vecs.At(i, p)
				}
			}
			if nv := vecNorm(v); nv > 1e-7 {
				for i := 0; i < n; i++ {
					vecs.Set(i, k, v[i]/complex(nv, 0))
				}
				extracted = true
			}
		}
		if !extracted {
			return nil, nil, fmt.Errorf("cmat: failed to extract eigenvector %d", k)
		}
	}
	return vals, vecs, nil
}

func vecNorm(v []complex128) float64 {
	s := 0.0
	for _, x := range v {
		s += real(x)*real(x) + imag(x)*imag(x)
	}
	return math.Sqrt(s)
}
