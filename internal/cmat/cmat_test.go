package cmat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randCDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
		}
	}
	return m
}

func randHermitian(rng *rand.Rand, n int) *Dense {
	a := randCDense(rng, n, n)
	return a.Add(a.ConjT()).Scale(0.5)
}

func TestConjT(t *testing.T) {
	a := NewDenseData(1, 2, []complex128{1 + 2i, 3 - 1i})
	h := a.ConjT()
	if h.At(0, 0) != 1-2i || h.At(1, 0) != 3+1i {
		t.Fatalf("ConjT = %v %v", h.At(0, 0), h.At(1, 0))
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randCDense(rng, 3, 3)
	if !a.Mul(Identity(3)).EqualApprox(a, 1e-12) {
		t.Fatal("A*I != A")
	}
}

func TestIsHermitian(t *testing.T) {
	h := NewDenseData(2, 2, []complex128{2, 1 + 1i, 1 - 1i, 3})
	if !h.IsHermitian(1e-12) {
		t.Fatal("Hermitian matrix not detected")
	}
	nh := NewDenseData(2, 2, []complex128{2 + 1i, 1, 1, 3})
	if nh.IsHermitian(1e-12) {
		t.Fatal("matrix with complex diagonal passed")
	}
}

func TestOuterHermitianProperty(t *testing.T) {
	// x*x^H is always Hermitian PSD.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		return Outer(x, x).IsHermitian(1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenHermitianKnown(t *testing.T) {
	// [[2, i], [-i, 2]] has eigenvalues 1 and 3.
	h := NewDenseData(2, 2, []complex128{2, 1i, -1i, 2})
	vals, vecs, err := EigenHermitian(h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-8 || math.Abs(vals[1]-3) > 1e-8 {
		t.Fatalf("vals = %v, want [1 3]", vals)
	}
	// Each column must satisfy H v = lambda v.
	for k := 0; k < 2; k++ {
		v := []complex128{vecs.At(0, k), vecs.At(1, k)}
		hv := h.MulVec(v)
		for i := range hv {
			if cmplx.Abs(hv[i]-complex(vals[k], 0)*v[i]) > 1e-8 {
				t.Fatalf("Hv != lambda v for k=%d", k)
			}
		}
	}
}

func TestEigenHermitianReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		h := randHermitian(rng, n)
		vals, vecs, err := EigenHermitian(h)
		if err != nil {
			return false
		}
		// Ascending eigenvalues.
		for i := 1; i < n; i++ {
			if vals[i] < vals[i-1] {
				return false
			}
		}
		// V^H V = I.
		if !vecs.ConjT().Mul(vecs).EqualApprox(Identity(n), 1e-6) {
			return false
		}
		// H = V diag V^H.
		d := NewDense(n, n)
		for i := 0; i < n; i++ {
			d.Set(i, i, complex(vals[i], 0))
		}
		rec := vecs.Mul(d).Mul(vecs.ConjT())
		return rec.EqualApprox(h, 1e-6*(1+h.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenHermitianDegenerate(t *testing.T) {
	// sigma^2 * I plus a rank-1 signal: the MUSIC covariance structure.
	// Noise eigenvalue 0.5 is (n-1)-fold degenerate.
	n := 5
	rng := rand.New(rand.NewSource(42))
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 0.7*float64(i))) // steering-like vector
	}
	_ = rng
	h := Outer(x, x).Scale(2).Add(Identity(n).Scale(0.5))
	vals, vecs, err := EigenHermitian(h)
	if err != nil {
		t.Fatal(err)
	}
	// n-1 eigenvalues at 0.5, one at 0.5 + 2*|x|^2 = 0.5 + 2n.
	for i := 0; i < n-1; i++ {
		if math.Abs(vals[i]-0.5) > 1e-7 {
			t.Fatalf("noise eigenvalue %d = %v, want 0.5", i, vals[i])
		}
	}
	if math.Abs(vals[n-1]-(0.5+2*float64(n))) > 1e-6 {
		t.Fatalf("signal eigenvalue = %v, want %v", vals[n-1], 0.5+2*float64(n))
	}
	// Noise eigenvectors must be orthogonal to the signal vector x.
	for k := 0; k < n-1; k++ {
		var dot complex128
		for i := 0; i < n; i++ {
			dot += cmplx.Conj(vecs.At(i, k)) * x[i]
		}
		if cmplx.Abs(dot) > 1e-6 {
			t.Fatalf("noise eigenvector %d not orthogonal to signal: |dot| = %v", k, cmplx.Abs(dot))
		}
	}
	// And mutually orthonormal.
	if !vecs.ConjT().Mul(vecs).EqualApprox(Identity(n), 1e-6) {
		t.Fatal("eigenvectors not orthonormal")
	}
}

func TestEigenHermitianRejectsBadInput(t *testing.T) {
	if _, _, err := EigenHermitian(NewDense(2, 3)); err == nil {
		t.Fatal("non-square should fail")
	}
	nh := NewDenseData(2, 2, []complex128{1, 2, 3, 4})
	if _, _, err := EigenHermitian(nh); err == nil {
		t.Fatal("non-Hermitian should fail")
	}
}

func TestMulVec(t *testing.T) {
	a := NewDenseData(2, 2, []complex128{1, 1i, -1i, 2})
	got := a.MulVec([]complex128{1, 1})
	if cmplx.Abs(got[0]-(1+1i)) > 1e-12 || cmplx.Abs(got[1]-(2-1i)) > 1e-12 {
		t.Fatalf("MulVec = %v", got)
	}
}
