// Package units provides the physical constants and unit conversions used
// throughout the safesense radar, jammer, and vehicle models.
//
// All internal computation is done in SI units (meters, seconds, watts,
// hertz). This package is the single place where the paper's mixed units
// (miles/hour, dB, dBi, dBm, GHz, mm) are converted.
package units

import "math"

// Physical constants (SI).
const (
	// SpeedOfLight is the speed of light in vacuum, m/s.
	SpeedOfLight = 299792458.0

	// Boltzmann is the Boltzmann constant, J/K. Used for the thermal
	// noise floor kTB of the radar receiver.
	Boltzmann = 1.380649e-23

	// StandardNoiseTemp is the reference receiver noise temperature, K.
	StandardNoiseTemp = 290.0
)

// Frequency multipliers.
const (
	Hz  = 1.0
	KHz = 1e3
	MHz = 1e6
	GHz = 1e9
)

// Length multipliers.
const (
	Millimeter = 1e-3
	Centimeter = 1e-2
	Meter      = 1.0
	Kilometer  = 1e3
)

// metersPerMile is the international mile in meters.
const metersPerMile = 1609.344

// MphToMps converts miles per hour to meters per second.
func MphToMps(mph float64) float64 { return mph * metersPerMile / 3600.0 }

// MpsToMph converts meters per second to miles per hour.
func MpsToMph(mps float64) float64 { return mps * 3600.0 / metersPerMile }

// DBToLinear converts a power ratio expressed in decibels to a linear ratio.
// Antenna gains quoted in dBi convert with the same formula.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear power ratio to decibels. It returns -Inf for
// a zero ratio and NaN for negative ratios, matching 10*log10.
func LinearToDB(ratio float64) float64 { return 10 * math.Log10(ratio) }

// DBmToWatts converts a power level in dBm (dB relative to 1 mW) to watts.
func DBmToWatts(dbm float64) float64 { return 1e-3 * DBToLinear(dbm) }

// WattsToDBm converts a power level in watts to dBm.
func WattsToDBm(w float64) float64 { return LinearToDB(w / 1e-3) }

// ThermalNoisePower returns the thermal noise floor kTB in watts for a
// receiver of bandwidth bw (Hz) at temperature temp (K).
func ThermalNoisePower(temp, bw float64) float64 { return Boltzmann * temp * bw }

// WavelengthFor returns the wavelength in meters of a carrier at frequency
// f (Hz).
func WavelengthFor(f float64) float64 { return SpeedOfLight / f }

// RoundTripDelay returns the two-way propagation delay tau = 2d/c for a
// target at distance d meters.
func RoundTripDelay(d float64) float64 { return 2 * d / SpeedOfLight }

// DelayToDistance inverts RoundTripDelay: the one-way target distance that
// produces a two-way delay tau.
func DelayToDistance(tau float64) float64 { return tau * SpeedOfLight / 2 }
