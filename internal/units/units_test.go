package units

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (tol %v)", what, got, want, tol)
	}
}

func TestMphToMps(t *testing.T) {
	// The paper's initial speeds: 65 mph and 67 mph.
	approx(t, MphToMps(65), 29.0576, 1e-3, "65 mph")
	approx(t, MphToMps(67), 29.9517, 1e-3, "67 mph")
	approx(t, MphToMps(0), 0, 0, "0 mph")
}

func TestMphRoundTrip(t *testing.T) {
	f := func(mph float64) bool {
		if math.IsNaN(mph) || math.IsInf(mph, 0) || math.Abs(mph) > 1e12 {
			return true
		}
		back := MpsToMph(MphToMps(mph))
		return math.Abs(back-mph) <= 1e-9*(1+math.Abs(mph))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDBConversions(t *testing.T) {
	approx(t, DBToLinear(0), 1, 1e-12, "0 dB")
	approx(t, DBToLinear(10), 10, 1e-9, "10 dB")
	approx(t, DBToLinear(3), 1.9952623, 1e-6, "3 dB")
	approx(t, LinearToDB(100), 20, 1e-9, "100x")
	if !math.IsInf(LinearToDB(0), -1) {
		t.Fatal("LinearToDB(0) should be -Inf")
	}
}

func TestDBRoundTrip(t *testing.T) {
	f := func(db float64) bool {
		if math.IsNaN(db) || math.Abs(db) > 300 {
			return true
		}
		back := LinearToDB(DBToLinear(db))
		return math.Abs(back-db) <= 1e-9*(1+math.Abs(db))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDBm(t *testing.T) {
	// The paper's radar transmit power: Pt = 10 mW = 10 dBm.
	approx(t, DBmToWatts(10), 0.010, 1e-9, "10 dBm")
	approx(t, WattsToDBm(0.010), 10, 1e-9, "10 mW")
	// The paper's jammer: Pj = 100 mW = 20 dBm.
	approx(t, WattsToDBm(0.100), 20, 1e-9, "100 mW")
}

func TestThermalNoisePower(t *testing.T) {
	// kTB at 290 K over 150 MHz (the LRR2 sweep bandwidth).
	want := Boltzmann * 290 * 150e6
	approx(t, ThermalNoisePower(StandardNoiseTemp, 150*MHz), want, want*1e-12, "kTB")
}

func TestWavelength(t *testing.T) {
	// 77 GHz carrier -> approx 3.89 mm, the paper's lambda.
	lambda := WavelengthFor(77 * GHz)
	approx(t, lambda, 3.893e-3, 1e-5, "77 GHz wavelength")
}

func TestRoundTripDelay(t *testing.T) {
	// 150 m target: tau = 2*150/c = 1.0007 microseconds.
	tau := RoundTripDelay(150)
	approx(t, tau, 2*150/SpeedOfLight, 1e-18, "delay")
	approx(t, DelayToDistance(tau), 150, 1e-9, "inverse")
}

func TestDelayDistanceRoundTrip(t *testing.T) {
	f := func(d float64) bool {
		if math.IsNaN(d) || math.IsInf(d, 0) || math.Abs(d) > 1e9 {
			return true
		}
		back := DelayToDistance(RoundTripDelay(d))
		return math.Abs(back-d) <= 1e-9*(1+math.Abs(d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
