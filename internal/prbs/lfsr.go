// Package prbs implements pseudo-random binary sequence generation with
// Galois linear-feedback shift registers, plus the challenge schedulers the
// CRA-modified radar uses to decide when to suppress its probing signal.
//
// The paper modulates the radar's transmitted signal with a binary signal
// m(t) ∈ {0,1} generated pseudo-randomly; m(t) = 0 defines the challenge
// instants T_c at which the receiver must observe (near-)zero output. An
// m-sequence LFSR provides the standard hardware-friendly source for m(t).
package prbs

import "fmt"

// taps maps register length to a maximal-length (m-sequence) tap mask for a
// Galois LFSR. Bit i of the mask corresponds to stage i+1. These are the
// standard primitive-polynomial taps.
var taps = map[int]uint32{
	3:  0x6,    // x^3 + x^2 + 1
	4:  0xC,    // x^4 + x^3 + 1
	5:  0x14,   // x^5 + x^3 + 1
	6:  0x30,   // x^6 + x^5 + 1
	7:  0x60,   // x^7 + x^6 + 1
	8:  0xB8,   // x^8 + x^6 + x^5 + x^4 + 1
	9:  0x110,  // x^9 + x^5 + 1
	10: 0x240,  // x^10 + x^7 + 1
	11: 0x500,  // x^11 + x^9 + 1
	12: 0xE08,  // x^12 + x^11 + x^10 + x^4 + 1
	13: 0x1C80, // x^13 + x^12 + x^11 + x^8 + 1
	14: 0x3802, // x^14 + x^13 + x^12 + x^2 + 1
	15: 0x6000, // x^15 + x^14 + 1
	16: 0xD008, // x^16 + x^15 + x^13 + x^4 + 1
}

// LFSR is a Galois linear-feedback shift register producing a maximal-length
// binary sequence of period 2^n - 1.
type LFSR struct {
	state uint32
	mask  uint32
	n     int
}

// NewLFSR returns an n-stage maximal-length LFSR (3 <= n <= 16) seeded with
// the given nonzero seed (only the low n bits are used; a zero seed after
// masking is replaced by 1, since the all-zero state is absorbing).
func NewLFSR(n int, seed uint32) (*LFSR, error) {
	mask, ok := taps[n]
	if !ok {
		return nil, fmt.Errorf("prbs: no m-sequence taps for length %d (want 3..16)", n)
	}
	s := seed & ((1 << uint(n)) - 1)
	if s == 0 {
		s = 1
	}
	return &LFSR{state: s, mask: mask, n: n}, nil
}

// Len returns the register length in bits.
func (l *LFSR) Len() int { return l.n }

// Period returns the sequence period 2^n - 1.
func (l *LFSR) Period() int { return (1 << uint(l.n)) - 1 }

// NextBit advances the register one step and returns the output bit.
func (l *LFSR) NextBit() int {
	out := int(l.state & 1)
	l.state >>= 1
	if out == 1 {
		l.state ^= l.mask
	}
	return out
}

// NextBits returns the next k output bits.
func (l *LFSR) NextBits(k int) []int {
	bits := make([]int, k)
	for i := range bits {
		bits[i] = l.NextBit()
	}
	return bits
}

// State returns the current register state.
func (l *LFSR) State() uint32 { return l.state }
