package prbs

import (
	"testing"
	"testing/quick"
)

func TestLFSRPeriod(t *testing.T) {
	// Maximal-length property: every register size must have period 2^n-1.
	for n := 3; n <= 12; n++ {
		l, err := NewLFSR(n, 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		start := l.State()
		period := 0
		for {
			l.NextBit()
			period++
			if l.State() == start {
				break
			}
			if period > l.Period()+1 {
				t.Fatalf("n=%d: period exceeds 2^n-1", n)
			}
		}
		if period != l.Period() {
			t.Fatalf("n=%d: period %d, want %d", n, period, l.Period())
		}
	}
}

func TestLFSRBalanceProperty(t *testing.T) {
	// m-sequence balance: over one period, #ones = 2^(n-1), #zeros = 2^(n-1)-1.
	for _, n := range []int{5, 8, 10} {
		l, _ := NewLFSR(n, 7)
		ones := 0
		for i := 0; i < l.Period(); i++ {
			ones += l.NextBit()
		}
		if want := 1 << uint(n-1); ones != want {
			t.Fatalf("n=%d: %d ones per period, want %d", n, ones, want)
		}
	}
}

func TestLFSRRunProperty(t *testing.T) {
	// m-sequence run property: half the runs have length 1, a quarter
	// length 2, etc. Check at least that the longest run of ones is n and
	// of zeros is n-1 for one period.
	n := 9
	l, _ := NewLFSR(n, 3)
	bits := l.NextBits(l.Period())
	maxRun := func(val int) int {
		best, cur := 0, 0
		for _, b := range bits {
			if b == val {
				cur++
				if cur > best {
					best = cur
				}
			} else {
				cur = 0
			}
		}
		return best
	}
	if got := maxRun(1); got != n {
		t.Fatalf("longest 1-run = %d, want %d", got, n)
	}
	if got := maxRun(0); got != n-1 {
		t.Fatalf("longest 0-run = %d, want %d", got, n-1)
	}
}

func TestLFSRZeroSeedCoerced(t *testing.T) {
	l, err := NewLFSR(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Must not be stuck: state changes and bits vary within a period.
	bits := l.NextBits(31)
	sum := 0
	for _, b := range bits {
		sum += b
	}
	if sum == 0 || sum == 31 {
		t.Fatalf("degenerate sequence from zero seed: sum=%d", sum)
	}
}

func TestLFSRUnsupportedLength(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17, -3} {
		if _, err := NewLFSR(n, 1); err == nil {
			t.Fatalf("NewLFSR(%d) should fail", n)
		}
	}
}

func TestLFSRDeterminism(t *testing.T) {
	f := func(seed uint32) bool {
		a, _ := NewLFSR(10, seed)
		b, _ := NewLFSR(10, seed)
		for i := 0; i < 100; i++ {
			if a.NextBit() != b.NextBit() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedSchedule(t *testing.T) {
	s := NewFixedSchedule(50, 15, 175, 15) // duplicate 15 on purpose
	if !s.Challenge(15) || !s.Challenge(50) || !s.Challenge(175) {
		t.Fatal("missing challenge steps")
	}
	if s.Challenge(16) || s.Challenge(0) {
		t.Fatal("spurious challenge steps")
	}
	steps := s.Steps()
	if len(steps) != 3 || steps[0] != 15 || steps[2] != 175 {
		t.Fatalf("Steps = %v", steps)
	}
	if got := s.NextAfter(16); got != 50 {
		t.Fatalf("NextAfter(16) = %d", got)
	}
	if got := s.NextAfter(175); got != 175 {
		t.Fatalf("NextAfter(175) = %d", got)
	}
	if got := s.NextAfter(176); got != -1 {
		t.Fatalf("NextAfter(176) = %d", got)
	}
}

func TestPaperFigureSchedule(t *testing.T) {
	s := PaperFigureSchedule()
	// The instants the paper names must be present.
	for _, k := range []int{15, 50, 175, 182} {
		if !s.Challenge(k) {
			t.Fatalf("paper schedule missing k=%d", k)
		}
	}
	// The attack onset (182) must be probed at onset for zero-latency
	// detection as reported in Section 6.2.
	if got := s.NextAfter(182); got != 182 {
		t.Fatalf("NextAfter(182) = %d, want 182", got)
	}
}

func TestLFSRScheduleRate(t *testing.T) {
	horizon := 4000
	s, err := NewLFSRSchedule(12, 99, 4, horizon)
	if err != nil {
		t.Fatal(err)
	}
	// Expected rate ~2^-4 = 0.0625; allow generous tolerance.
	r := s.Rate()
	if r < 0.03 || r > 0.11 {
		t.Fatalf("challenge rate = %v, want ~0.0625", r)
	}
	// Steps and Challenge must agree.
	for _, k := range s.Steps() {
		if !s.Challenge(k) {
			t.Fatalf("inconsistent schedule at %d", k)
		}
	}
	if s.Challenge(-1) || s.Challenge(horizon) {
		t.Fatal("out-of-horizon steps must not be challenges")
	}
}

func TestLFSRScheduleValidation(t *testing.T) {
	if _, err := NewLFSRSchedule(10, 1, 0, 100); err == nil {
		t.Fatal("width 0 should fail")
	}
	if _, err := NewLFSRSchedule(10, 1, 2, -1); err == nil {
		t.Fatal("negative horizon should fail")
	}
	if _, err := NewLFSRSchedule(2, 1, 2, 100); err == nil {
		t.Fatal("unsupported register length should fail")
	}
}

func TestLFSRScheduleDeterminism(t *testing.T) {
	a, _ := NewLFSRSchedule(11, 5, 3, 500)
	b, _ := NewLFSRSchedule(11, 5, 3, 500)
	for k := 0; k < 500; k++ {
		if a.Challenge(k) != b.Challenge(k) {
			t.Fatalf("schedules diverge at %d", k)
		}
	}
	c, _ := NewLFSRSchedule(11, 6, 3, 500)
	same := true
	for k := 0; k < 500; k++ {
		if a.Challenge(k) != c.Challenge(k) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}
