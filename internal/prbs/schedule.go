package prbs

import (
	"fmt"
	"sort"
)

// Schedule decides, for each discrete time step k, whether the radar issues
// a challenge (suppresses its probing signal, m(k) = 0). This is the
// "listzero" input of the paper's Algorithm 2.
type Schedule interface {
	// Challenge reports whether step k is a challenge instant (k ∈ T_c).
	Challenge(k int) bool
}

// FixedSchedule challenges at an explicit set of time steps. The paper's
// figures use challenge instants k = 15, 50, 175, ... — a fixed schedule
// pinned so the attack onset at k = 182 is probed immediately.
type FixedSchedule struct {
	set map[int]bool
	ks  []int
}

// NewFixedSchedule builds a schedule from the given challenge steps.
func NewFixedSchedule(steps ...int) *FixedSchedule {
	s := &FixedSchedule{set: make(map[int]bool, len(steps))}
	for _, k := range steps {
		if !s.set[k] {
			s.set[k] = true
			s.ks = append(s.ks, k)
		}
	}
	sort.Ints(s.ks)
	return s
}

// Challenge implements Schedule.
func (s *FixedSchedule) Challenge(k int) bool { return s.set[k] }

// Steps returns the sorted challenge steps.
func (s *FixedSchedule) Steps() []int {
	out := make([]int, len(s.ks))
	copy(out, s.ks)
	return out
}

// NextAfter returns the first challenge step >= k, or -1 if none.
func (s *FixedSchedule) NextAfter(k int) int {
	i := sort.SearchInts(s.ks, k)
	if i == len(s.ks) {
		return -1
	}
	return s.ks[i]
}

// LFSRSchedule derives challenge instants from an m-sequence: step k is a
// challenge when a window of LFSR bits is all zero, giving an average
// challenge rate of about 2^-w for window width w. The schedule is
// deterministic in (register length, seed, width) but unpredictable to an
// attacker who does not know the seed — the security property CRA needs.
type LFSRSchedule struct {
	bits []int
	w    int
}

// NewLFSRSchedule builds a pseudo-random schedule covering steps
// [0, horizon). Width w >= 1 sets the challenge rate ~2^-w.
func NewLFSRSchedule(regLen int, seed uint32, w, horizon int) (*LFSRSchedule, error) {
	if w < 1 {
		return nil, fmt.Errorf("prbs: width must be >= 1, got %d", w)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("prbs: negative horizon %d", horizon)
	}
	l, err := NewLFSR(regLen, seed)
	if err != nil {
		return nil, err
	}
	// Pre-draw w bits per step.
	bits := make([]int, horizon)
	for k := 0; k < horizon; k++ {
		allZero := 1
		for i := 0; i < w; i++ {
			if l.NextBit() != 0 {
				allZero = 0
			}
		}
		bits[k] = allZero
	}
	return &LFSRSchedule{bits: bits, w: w}, nil
}

// Challenge implements Schedule. Steps beyond the horizon are never
// challenges.
func (s *LFSRSchedule) Challenge(k int) bool {
	if k < 0 || k >= len(s.bits) {
		return false
	}
	return s.bits[k] == 1
}

// Steps returns all challenge steps within the horizon.
func (s *LFSRSchedule) Steps() []int {
	var out []int
	for k, b := range s.bits {
		if b == 1 {
			out = append(out, k)
		}
	}
	return out
}

// Rate returns the fraction of steps that are challenges.
func (s *LFSRSchedule) Rate() float64 {
	if len(s.bits) == 0 {
		return 0
	}
	n := 0
	for _, b := range s.bits {
		n += b
	}
	return float64(n) / float64(len(s.bits))
}

// PaperFigureSchedule returns the fixed challenge schedule used to reproduce
// Figures 2 and 3: it includes the instants the paper calls out explicitly
// (k = 15, 50, 175) plus pseudo-random instants, and pins a challenge at
// k = 182 so the attack beginning there is detected at k = 182 exactly, as
// reported in Section 6.2.
func PaperFigureSchedule() *FixedSchedule {
	return NewFixedSchedule(15, 50, 107, 144, 175, 182, 203, 230, 261, 290)
}
