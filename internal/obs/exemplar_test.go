package obs

import (
	"strings"
	"testing"
)

func TestObserveExemplar(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h_seconds", "help", []float64{0.1, 1}).With()
	h.ObserveExemplar(0.05, "trace-a")
	h.ObserveExemplar(0.07, "trace-b") // same bucket: replaces trace-a
	h.ObserveExemplar(0.5, "")         // no trace: counted, no exemplar
	h.ObserveExemplar(5, "trace-c")    // +Inf bucket

	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	snap := reg.Snapshot()
	if len(snap) != 1 || len(snap[0].Metrics) != 1 {
		t.Fatalf("unexpected snapshot shape: %+v", snap)
	}
	buckets := snap[0].Metrics[0].Buckets
	if len(buckets) != 3 {
		t.Fatalf("got %d buckets, want 3", len(buckets))
	}
	if ex := buckets[0].Exemplar; ex == nil || ex.TraceID != "trace-b" || ex.Value != 0.07 {
		t.Errorf("bucket 0 exemplar = %+v, want trace-b/0.07", buckets[0].Exemplar)
	}
	if buckets[1].Exemplar != nil {
		t.Errorf("bucket 1 exemplar = %+v, want none (untraced observation)", buckets[1].Exemplar)
	}
	if ex := buckets[2].Exemplar; ex == nil || ex.TraceID != "trace-c" {
		t.Errorf("+Inf bucket exemplar = %+v, want trace-c", buckets[2].Exemplar)
	}
}

func TestPrometheusExemplarRendering(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("req_seconds", "latency", []float64{1}).With()
	h.ObserveExemplar(0.25, "abc123")

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `req_seconds_bucket{le="1"} 1 # {trace_id="abc123"} 0.25`
	if !strings.Contains(out, want) {
		t.Errorf("exposition missing exemplar line %q:\n%s", want, out)
	}
	// Buckets without exemplars render classic text format unchanged.
	if !strings.Contains(out, "req_seconds_bucket{le=\"+Inf\"} 1\n") {
		t.Errorf("+Inf bucket line altered:\n%s", out)
	}
}
