package obs

import "time"

// clock is the injected time source for span measurement. Timing here
// is reporting metadata, never analysis input, but routing every read
// through the seam keeps the transitive determinism lint exact about
// where wall time can enter the pipeline — and lets tests freeze it.
var clock = time.Now

// Timer accumulates wall time over repeated Spans of one named phase.
// It is a plain accumulator for single-goroutine use (one Timer per phase
// per run); flush the total into a shared Histogram when the run ends.
type Timer struct {
	name  string
	total time.Duration
	calls int
}

// NewTimer returns a zeroed phase timer.
func NewTimer(name string) *Timer { return &Timer{name: name} }

// Name returns the phase name.
func (t *Timer) Name() string { return t.name }

// Total returns the accumulated wall time.
func (t *Timer) Total() time.Duration { return t.total }

// Calls returns how many spans have ended.
func (t *Timer) Calls() int { return t.calls }

// Reset zeroes the accumulator.
func (t *Timer) Reset() { t.total, t.calls = 0, 0 }

// Start opens a span; End it to accumulate.
//
//safesense:hotpath
func (t *Timer) Start() Span { return Span{t: t, start: clock()} }

// Span measures one region of code. The zero Span is inert: End returns 0
// and records nothing.
type Span struct {
	t     *Timer
	h     *Histogram
	start time.Time
}

// StartSpan opens a span that records its duration (in seconds) into h
// when ended; h may be nil, which only measures.
func StartSpan(h *Histogram) Span { return Span{h: h, start: clock()} }

// End closes the span, accumulates into its Timer and/or Histogram, and
// returns the elapsed duration.
//
//safesense:hotpath
func (s Span) End() time.Duration {
	if s.start.IsZero() {
		return 0
	}
	d := clock().Sub(s.start)
	if s.t != nil {
		s.t.total += d
		s.t.calls++
	}
	if s.h != nil {
		s.h.Observe(d.Seconds())
	}
	return d
}
