package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"strings"
	"testing"
)

func TestReadRuntimeLiveValues(t *testing.T) {
	// Force at least one GC cycle so cumulative counters are nonzero.
	runtime.GC()
	s := ReadRuntime()
	if s.HeapBytes <= 0 {
		t.Errorf("HeapBytes = %v, want > 0", s.HeapBytes)
	}
	if s.Goroutines < 1 {
		t.Errorf("Goroutines = %v, want >= 1", s.Goroutines)
	}
	if s.GCCycles < 1 {
		t.Errorf("GCCycles = %v, want >= 1 after runtime.GC", s.GCCycles)
	}
	// Pause and latency summaries must be finite and ordered.
	for name, v := range map[string]float64{
		"GCPauseTotalSeconds":    s.GCPauseTotalSeconds,
		"GCPauseP99Seconds":      s.GCPauseP99Seconds,
		"SchedLatencyP99Seconds": s.SchedLatencyP99Seconds,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Errorf("%s = %v, want finite >= 0", name, v)
		}
	}
	if s.GCPauseP50Seconds > s.GCPauseMaxSeconds {
		t.Errorf("pause p50 %v > max %v", s.GCPauseP50Seconds, s.GCPauseMaxSeconds)
	}
	if s.SchedLatencyP50Seconds > s.SchedLatencyMaxSeconds {
		t.Errorf("sched p50 %v > max %v", s.SchedLatencyP50Seconds, s.SchedLatencyMaxSeconds)
	}
}

func TestReadRuntimeMonotoneCumulative(t *testing.T) {
	before := ReadRuntime()
	runtime.GC()
	after := ReadRuntime()
	if after.GCCycles < before.GCCycles+1 {
		t.Errorf("GCCycles did not advance: %v -> %v", before.GCCycles, after.GCCycles)
	}
	if after.GCPauseTotalSeconds < before.GCPauseTotalSeconds {
		t.Errorf("pause total went backwards: %v -> %v",
			before.GCPauseTotalSeconds, after.GCPauseTotalSeconds)
	}
}

func mkHist(counts []uint64, buckets []float64) *metrics.Float64Histogram {
	return &metrics.Float64Histogram{Counts: counts, Buckets: buckets}
}

func TestHistHelpers(t *testing.T) {
	// Buckets: [-Inf,1) [1,2) [2,+Inf) with counts 2, 6, 2.
	h := mkHist([]uint64{2, 6, 2}, []float64{math.Inf(-1), 1, 2, math.Inf(1)})

	if got := bucketMid(h, 0); got != 1 {
		t.Errorf("mid(-Inf,1) = %v, want 1", got)
	}
	if got := bucketMid(h, 1); got != 1.5 {
		t.Errorf("mid(1,2) = %v, want 1.5", got)
	}
	if got := bucketMid(h, 2); got != 2 {
		t.Errorf("mid(2,+Inf) = %v, want 2", got)
	}

	// Sum: 2*1 + 6*1.5 + 2*2 = 15.
	if got := histApproxSum(h); got != 15 {
		t.Errorf("sum = %v, want 15", got)
	}
	// p50 lands in the middle bucket, max in the top one.
	if got := histQuantile(h, 0.50); got != 1.5 {
		t.Errorf("q50 = %v, want 1.5", got)
	}
	if got := histQuantile(h, 0.05); got != 1 {
		t.Errorf("q05 = %v, want 1", got)
	}
	if got := histQuantile(h, 0.99); got != 2 {
		t.Errorf("q99 = %v, want 2", got)
	}
	if got := histMax(h); got != 2 {
		t.Errorf("max = %v, want 2", got)
	}

	empty := mkHist([]uint64{0, 0}, []float64{0, 1, 2})
	if histQuantile(empty, 0.5) != 0 || histMax(empty) != 0 || histApproxSum(empty) != 0 {
		t.Error("empty histogram should summarize to zeros")
	}
}

func TestRuntimeCollector(t *testing.T) {
	r := NewRegistry()
	c := NewRuntimeCollector(r)
	// Substitute a deterministic snapshot source.
	c.read = func() RuntimeSnapshot {
		return RuntimeSnapshot{
			HeapBytes:              2048,
			Goroutines:             7,
			GCCycles:               3,
			GCPauseP50Seconds:      0.001,
			GCPauseP99Seconds:      0.004,
			GCPauseMaxSeconds:      0.010,
			SchedLatencyP50Seconds: 0.0002,
			SchedLatencyP99Seconds: 0.0008,
			SchedLatencyMaxSeconds: 0.0030,
		}
	}
	c.Collect()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"go_heap_bytes 2048",
		"go_goroutines 7",
		"go_gc_cycles 3",
		`go_gc_pause_seconds{quantile="p50"} 0.001`,
		`go_gc_pause_seconds{quantile="p99"} 0.004`,
		`go_gc_pause_seconds{quantile="max"} 0.01`,
		`go_sched_latency_seconds{quantile="p50"} 0.0002`,
		`go_sched_latency_seconds{quantile="max"} 0.003`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestRuntimeCollectorLiveRead(t *testing.T) {
	r := NewRegistry()
	c := NewRuntimeCollector(r)
	c.Collect() // default ReadRuntime source must not panic
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "go_goroutines") {
		t.Error("live collect did not publish go_goroutines")
	}
}
