package obs

import (
	"testing"
	"time"
)

// Zero-allocation guards for every //safesense:hotpath function in this
// package: the hotpathalloc analyzer forbids the static allocation
// patterns (fmt, capturing closures, interface boxing); these tests pin
// the dynamic behavior with testing.AllocsPerRun so a regression that
// slips past the analyzer (map growth, slice append, hidden boxing in a
// callee) still fails the build.

func allocAssert(t *testing.T, name string, want float64, f func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(200, f); avg != want {
		t.Errorf("%s: %v allocs/op, want %v", name, avg, want)
	}
}

func TestCounterHotPathZeroAlloc(t *testing.T) {
	c := NewRegistry().Counter("alloc_test_counter_total", "").With()
	allocAssert(t, "Counter.Inc", 0, func() { c.Inc() })
	allocAssert(t, "Counter.Add", 0, func() { c.Add(2.5) })
}

func TestGaugeHotPathZeroAlloc(t *testing.T) {
	g := NewRegistry().Gauge("alloc_test_gauge", "").With()
	allocAssert(t, "Gauge.Set", 0, func() { g.Set(42) })
	// Gauge.Add exercises the addFloat CAS loop.
	allocAssert(t, "Gauge.Add", 0, func() { g.Add(0.5) })
}

func TestHistogramHotPathZeroAlloc(t *testing.T) {
	h := NewRegistry().Histogram("alloc_test_seconds", "", DefBuckets).With()
	allocAssert(t, "Histogram.Observe", 0, func() { h.Observe(0.017) })
	allocAssert(t, "Histogram.ObserveDuration", 0, func() { h.ObserveDuration(17 * time.Millisecond) })
	// An exemplar-free observation takes the zero-alloc path; attaching a
	// trace ID stores one Exemplar, which is the documented single
	// allocation — pin it so it cannot silently grow.
	allocAssert(t, "Histogram.ObserveExemplar(no trace)", 0, func() { h.ObserveExemplar(0.017, "") })
	allocAssert(t, "Histogram.ObserveExemplar(traced)", 1, func() { h.ObserveExemplar(0.017, "trace-1") })
}

func TestLabeledFastPathZeroAlloc(t *testing.T) {
	// The labeled With() lookup may allocate; the returned child must
	// not. Callers on per-step paths hold the child, exactly like the
	// sim package does with its phase timers.
	v := NewRegistry().Counter("alloc_test_labeled_total", "", "phase")
	c := v.With("cra_check")
	allocAssert(t, "labeled Counter.Inc", 0, func() { c.Inc() })
}

func TestSpanHotPathZeroAlloc(t *testing.T) {
	timer := NewTimer("alloc_test_phase")
	allocAssert(t, "Timer.Start+Span.End", 0, func() {
		sp := timer.Start()
		_ = sp.End()
	})

	h := NewRegistry().Histogram("alloc_test_span_seconds", "", DefBuckets).With()
	allocAssert(t, "StartSpan+End into histogram", 0, func() {
		sp := StartSpan(h)
		_ = sp.End()
	})

	var zero Span
	allocAssert(t, "zero Span.End", 0, func() { _ = zero.End() })
}
