package profile

import (
	"context"
	"testing"
	"time"
)

func TestProfilerRequiresStore(t *testing.T) {
	if err := NewProfiler(ProfilerOptions{}).Run(context.Background()); err == nil {
		t.Fatal("Run accepted a nil store")
	}
}

func TestProfilerOptionDefaults(t *testing.T) {
	p := NewProfiler(ProfilerOptions{})
	if p.opts.Interval != DefaultProfileInterval || p.opts.Window != DefaultProfileWindow {
		t.Fatalf("defaults = %+v", p.opts)
	}
	clamped := NewProfiler(ProfilerOptions{Interval: time.Second, Window: time.Minute})
	if clamped.opts.Window != time.Second {
		t.Fatalf("window %v not clamped to interval", clamped.opts.Window)
	}
}

// TestProfilerCapturesAndTerminates is the shutdown guarantee the
// safesensed drain path relies on (run under -race via make race-hot):
// the profiler goroutine captures into the store, then exits promptly
// when its context is canceled, releasing the labels refcount.
func TestProfilerCapturesAndTerminates(t *testing.T) {
	store := NewStore(StoreOptions{})
	p := NewProfiler(ProfilerOptions{
		Interval: 40 * time.Millisecond,
		Window:   20 * time.Millisecond,
		Store:    store,
		Phases:   []string{"radar_synthesis", "beat_extraction"},
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx) }()

	// Wait for at least one capture; the first window opens immediately.
	deadline := 200
	for store.Len() == 0 && deadline > 0 {
		time.Sleep(10 * time.Millisecond)
		deadline--
	}
	if store.Len() == 0 {
		t.Fatal("no capture landed before the deadline")
	}
	if !Enabled() {
		t.Fatal("phase labels not enabled while the profiler runs")
	}

	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if Enabled() {
		t.Fatal("profiler exit leaked the labels refcount")
	}

	// Stored capture carries provenance stamps and a decoded summary.
	list := store.List()
	meta := list[0]
	if meta.Kind != "cpu" || meta.Bytes == 0 {
		t.Fatalf("capture meta = %+v", meta)
	}
	if meta.Host.OS == "" || meta.Host.CPUs == 0 {
		t.Fatalf("missing host fingerprint: %+v", meta.Host)
	}
	if meta.Summary == nil {
		t.Fatal("capture stored without a summary")
	}
	if meta.WindowNanos != (20 * time.Millisecond).Nanoseconds() {
		t.Fatalf("window = %d", meta.WindowNanos)
	}
}
