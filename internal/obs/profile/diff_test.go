package profile

import (
	"strings"
	"testing"
)

func diffSummaries(t *testing.T) (*Summary, *Summary) {
	t.Helper()
	before, err := Summarize(testProfile(), SummaryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// After: the extractor's flat time doubles, everything else fixed.
	p := testProfile()
	p.Sample[0].Value[1] = 60_000_000
	after, err := Summarize(p, SummaryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return before, after
}

func TestDiffRanksGrowth(t *testing.T) {
	before, after := diffSummaries(t)
	rep := Diff(before, after)
	if rep.SampleType != "cpu" {
		t.Fatalf("sample type = %s", rep.SampleType)
	}
	if rep.BeforeTotal != 60_000_000 || rep.AfterTotal != 90_000_000 {
		t.Fatalf("totals = %d -> %d", rep.BeforeTotal, rep.AfterTotal)
	}
	if len(rep.Funcs) == 0 || rep.Funcs[0].Name != "radar.MUSICExtractor.Extract" {
		t.Fatalf("largest grower = %+v", rep.Funcs)
	}
	// 30/60 -> 60/90: +1/6 share.
	if d := rep.Funcs[0].DeltaShare; d < 0.16 || d > 0.17 {
		t.Fatalf("delta share = %v", d)
	}
	// Every other function's share shrank (same flat, larger total).
	for _, fd := range rep.Funcs[1:] {
		if fd.DeltaShare > 0 {
			t.Fatalf("unexpected grower %+v", fd)
		}
	}
	if len(rep.Phases) == 0 || rep.Phases[0].Phase != "beat_extraction" {
		t.Fatalf("phase deltas = %+v", rep.Phases)
	}
}

func TestGrowersThreshold(t *testing.T) {
	before, after := diffSummaries(t)
	rep := Diff(before, after)
	grown := rep.Growers(0.01)
	if len(grown) != 1 || grown[0].Name != "radar.MUSICExtractor.Extract" {
		t.Fatalf("growers = %+v", grown)
	}
	if got := rep.Growers(0.5); len(got) != 0 {
		t.Fatalf("growers above 50pp = %+v", got)
	}
}

func TestFormatDiff(t *testing.T) {
	before, after := diffSummaries(t)
	var b strings.Builder
	FormatDiff(&b, Diff(before, after))
	out := b.String()
	for _, want := range []string{"profile diff (cpu)", "phase share deltas", "function flat-share deltas", "radar.MUSICExtractor.Extract"} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
}
