package profile

import (
	"crypto/sha256"
	"encoding/hex"
	"log/slog"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"
)

// clock is the store's injected time source — captures are stamped for
// humans reading /v1/profiles, never compared; recency ordering uses
// the logical seq counter, matching the determinism contract.
var clock = time.Now

// DefaultStoreBudgetBytes bounds resident capture bytes by default.
// CPU captures are ~100 KiB, so the default keeps on the order of a
// few hundred windows.
const DefaultStoreBudgetBytes = 32 << 20

// Host fingerprints the machine a capture was taken on. (Deliberately
// a local type: internal/perf has an equivalent, but perf imports this
// package, not the reverse.)
type Host struct {
	Hostname   string `json:"hostname,omitempty"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	CPUs       int    `json:"cpus"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// ReadHost captures the current process's fingerprint.
func ReadHost() Host {
	name, _ := os.Hostname()
	return Host{
		Hostname:   name,
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// VCSRevision extracts the commit the binary was built from ("" when
// unstamped, "-dirty" suffix on a modified tree).
func VCSRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, modified string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev != "" && modified == "true" {
		rev += "-dirty"
	}
	return rev
}

// Capture is one stored profile: identity, provenance stamps, and the
// precomputed summary. The raw bytes live only inside the store and are
// returned by Get.
type Capture struct {
	// ID is the hex SHA-256 of the raw capture bytes (content address;
	// identical captures dedupe).
	ID  string `json:"id"`
	Seq uint64 `json:"seq"`
	// Kind names the profile flavor, e.g. "cpu".
	Kind        string    `json:"kind"`
	CapturedAt  time.Time `json:"captured_at"`
	VCSRevision string    `json:"vcs_revision,omitempty"`
	Host        Host      `json:"host"`
	Bytes       int       `json:"bytes"`
	// WindowNanos is how long the capture window was open.
	WindowNanos int64    `json:"window_nanos,omitempty"`
	Summary     *Summary `json:"summary,omitempty"`
}

// StoreOptions tunes a Store.
type StoreOptions struct {
	// BudgetBytes bounds resident raw capture bytes (zero means
	// DefaultStoreBudgetBytes). Inserts over budget evict the oldest
	// captures — same recency discipline as the forensic store, minus
	// the priority tiers (every profile capture ranks equal).
	BudgetBytes int64
	// Log receives store lifecycle records (nil discards).
	Log *slog.Logger
}

// storeEntry is one resident capture plus its raw bytes.
type storeEntry struct {
	meta Capture
	raw  []byte
}

// Store is a content-addressed, budget-bounded in-memory capture store.
// Profiles are ephemeral observability data — unlike forensic anomaly
// evidence they are not persisted; a restart simply starts capturing
// again. All methods are safe for concurrent use.
type Store struct {
	opts StoreOptions
	host Host
	rev  string

	mu        sync.Mutex
	entries   map[string]*storeEntry
	liveBytes int64
	nextSeq   uint64
}

// NewStore builds an empty store.
func NewStore(opts StoreOptions) *Store {
	if opts.BudgetBytes <= 0 {
		opts.BudgetBytes = DefaultStoreBudgetBytes
	}
	if opts.Log == nil {
		opts.Log = slog.New(discardHandler{})
	}
	return &Store{
		opts:    opts,
		host:    ReadHost(),
		rev:     VCSRevision(),
		entries: make(map[string]*storeEntry),
	}
}

// Put stores one capture, stamping identity (content hash), sequence,
// wall time, VCS revision, and host fingerprint. It returns the capture
// metadata and whether it was new (false = dedup hit; recency is
// refreshed). Inserting over budget evicts oldest-first until the
// store fits.
func (s *Store) Put(raw []byte, kind string, windowNanos int64, sum *Summary) (Capture, bool) {
	h := sha256.Sum256(raw)
	id := hex.EncodeToString(h[:])
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.entries[id]; e != nil {
		s.nextSeq++
		e.meta.Seq = s.nextSeq
		return e.meta, false
	}
	s.nextSeq++
	e := &storeEntry{
		meta: Capture{
			ID:          id,
			Seq:         s.nextSeq,
			Kind:        kind,
			CapturedAt:  clock(),
			VCSRevision: s.rev,
			Host:        s.host,
			Bytes:       len(raw),
			WindowNanos: windowNanos,
			Summary:     sum,
		},
		raw: raw,
	}
	s.entries[id] = e
	s.liveBytes += int64(len(raw))
	metricCaptures.With().Inc()
	s.evictLocked()
	s.publishGaugesLocked()
	return e.meta, true
}

// evictLocked drops captures while the store is over budget, lowest
// seq (least recently stored or touched) first.
func (s *Store) evictLocked() {
	for s.liveBytes > s.opts.BudgetBytes && len(s.entries) > 0 {
		var victim *storeEntry
		for _, e := range s.entries {
			if victim == nil || e.meta.Seq < victim.meta.Seq {
				victim = e
			}
		}
		delete(s.entries, victim.meta.ID)
		s.liveBytes -= int64(len(victim.raw))
		metricEvictions.With().Inc()
		s.opts.Log.Debug("profile capture evicted",
			"id", victim.meta.ID, "bytes", len(victim.raw))
	}
}

func (s *Store) publishGaugesLocked() {
	metricLiveCaptures.With().Set(float64(len(s.entries)))
	metricLiveBytes.With().Set(float64(s.liveBytes))
}

// Get returns a capture's metadata and raw bytes by ID, bumping its
// recency. Callers must treat the raw slice as read-only.
func (s *Store) Get(id string) (Capture, []byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[id]
	if e == nil {
		return Capture{}, nil, false
	}
	s.nextSeq++
	e.meta.Seq = s.nextSeq
	return e.meta, e.raw, true
}

// List returns every resident capture's metadata, most recent first.
func (s *Store) List() []Capture {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Capture, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e.meta)
	}
	// Highest seq first; seqs are unique so the order is total.
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}

// Len returns the resident capture count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// LiveBytes returns the resident raw bytes.
func (s *Store) LiveBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.liveBytes
}
