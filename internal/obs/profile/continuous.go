package profile

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"runtime/pprof"
	"time"
)

// Continuous-profiler defaults: a 10s window every 60s keeps steady
// attribution at ~17% sampling duty cycle for ~1% CPU overhead.
const (
	DefaultProfileInterval = 60 * time.Second
	DefaultProfileWindow   = 10 * time.Second
)

// OtherPhase is the gauge bucket for CPU outside the whitelisted
// phases: unlabeled samples (runtime, GC, HTTP serving) plus any
// unexpected label values — kept aggregated so the gauge's label
// cardinality stays fixed.
const OtherPhase = "other"

// ProfilerOptions configures the background profiler.
type ProfilerOptions struct {
	// Interval is the time between capture-window starts (zero means
	// DefaultProfileInterval).
	Interval time.Duration
	// Window is how long each capture runs (zero means
	// DefaultProfileWindow; clamped to Interval).
	Window time.Duration
	// Store receives the captures (required).
	Store *Store
	// Log receives profiler lifecycle records (nil discards).
	Log *slog.Logger
	// Phases whitelists the phase label values published as
	// safesense_profile_phase_cpu_share gauges; everything else folds
	// into the OtherPhase bucket. Typically sim.PhaseNames().
	Phases []string
}

// Profiler periodically opens a CPU-profile window, decodes the
// capture with the package's own decoder, summarizes it, stores it,
// and republishes the per-phase CPU-share gauges.
type Profiler struct {
	opts ProfilerOptions
}

// NewProfiler builds a profiler, applying option defaults.
func NewProfiler(opts ProfilerOptions) *Profiler {
	if opts.Interval <= 0 {
		opts.Interval = DefaultProfileInterval
	}
	if opts.Window <= 0 {
		opts.Window = DefaultProfileWindow
	}
	if opts.Window > opts.Interval {
		opts.Window = opts.Interval
	}
	if opts.Log == nil {
		opts.Log = slog.New(discardHandler{})
	}
	return &Profiler{opts: opts}
}

// Run captures until ctx is canceled, then returns ctx.Err(). Phase
// labeling is enabled for the profiler's lifetime (reference-counted,
// so overlapping consumers compose). A window that fails to start —
// e.g. another CPU profile is already active — is logged, counted, and
// retried next interval rather than treated as fatal.
func (p *Profiler) Run(ctx context.Context) error {
	if p.opts.Store == nil {
		return errors.New("profile: Profiler requires a Store")
	}
	Enable()
	defer Disable()
	p.opts.Log.Info("continuous profiler running",
		"interval", p.opts.Interval.String(), "window", p.opts.Window.String())
	for {
		took := p.captureOnce(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if !sleepCtx(ctx, p.opts.Interval-took) {
			return ctx.Err()
		}
	}
}

// captureOnce opens one window and ingests the capture, returning how
// much of the interval it consumed.
func (p *Profiler) captureOnce(ctx context.Context) time.Duration {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		// Another profile owns the CPU profiler (perf capture, test run);
		// skip this window.
		metricCaptureErrors.With().Inc()
		p.opts.Log.Warn("profile window skipped", "error", err.Error())
		return 0
	}
	sleepCtx(ctx, p.opts.Window)
	pprof.StopCPUProfile()
	p.ingest(buf.Bytes())
	return p.opts.Window
}

// ingest decodes, summarizes, stores, and publishes one capture.
func (p *Profiler) ingest(raw []byte) {
	prof, err := Decode(raw)
	if err != nil {
		metricCaptureErrors.With().Inc()
		p.opts.Log.Error("profile capture undecodable", "error", err.Error())
		return
	}
	sum, err := Summarize(prof, SummaryOptions{})
	if err != nil {
		metricCaptureErrors.With().Inc()
		p.opts.Log.Error("profile capture unsummarizable", "error", err.Error())
		return
	}
	meta, fresh := p.opts.Store.Put(raw, "cpu", p.opts.Window.Nanoseconds(), sum)
	p.publishShares(sum)
	p.opts.Log.Debug("profile capture stored",
		"id", meta.ID, "bytes", meta.Bytes, "samples", sum.TotalSamples, "fresh", fresh)
}

// publishShares refreshes the phase-share gauges from one summary:
// every whitelisted phase is set (zeroing phases that took no samples
// this window) and the remainder folds into OtherPhase.
func (p *Profiler) publishShares(sum *Summary) {
	var accounted float64
	for _, phase := range p.opts.Phases {
		share := sum.PhaseShare(phase)
		accounted += share
		metricPhaseCPUShare.With(phase).Set(share)
	}
	rest := 1 - accounted
	if sum.Total == 0 || rest < 0 {
		rest = 0
	}
	other := OtherPhase
	metricPhaseCPUShare.With(other).Set(rest)
}

// sleepCtx waits d (false when ctx was canceled first — the profiler's
// only exit path, keeping the goroutine leak-provable).
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
