// Package profile is the continuous-profiling plane: pprof goroutine
// labels that attribute CPU samples to pipeline phases and campaign
// jobs, a stdlib-only decoder for the gzip+protobuf pprof wire format,
// summaries (top-N functions, per-phase CPU shares, alloc hotspots),
// capture diffing, a bounded content-addressed capture store, and the
// background profiler safesensed runs between requests.
//
// The package deliberately imports neither internal/sim nor
// internal/perf — both import it — so the label helpers and the decoder
// stay leaf dependencies.
package profile

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
)

// Label keys attached to CPU samples. LabelPhase carries the
// internal/sim phase names; LabelCampaign/LabelJob identify the
// campaign worker that ran the sample.
const (
	LabelPhase    = "phase"
	LabelCampaign = "campaign"
	LabelJob      = "job"
)

// Unlabeled is the summary bucket for samples with no phase label:
// runtime internals, GC, and any code outside the instrumented phases.
const Unlabeled = "(unlabeled)"

// enabled counts the label consumers currently active (the continuous
// profiler, safesim -profile-dir, perf captures). Labeling costs one
// atomic load per phase transition when off, so the simulator checks
// Enabled once per run and skips label plumbing entirely at zero.
var enabled atomic.Int64

// Enable turns phase/job labeling on (reference-counted).
func Enable() { enabled.Add(1) }

// Disable releases one Enable.
func Disable() { enabled.Add(-1) }

// Enabled reports whether any profile consumer wants labeled samples.
func Enabled() bool { return enabled.Load() > 0 }

// PhaseLabels carries prebuilt label contexts for a fixed phase set, so
// entering a phase inside a step loop is one slice index plus one
// runtime label-pointer swap — no per-step context or map allocation.
// A nil *PhaseLabels is valid and inert, letting call sites write
// pl.Set(i) unconditionally.
type PhaseLabels struct {
	base   context.Context
	phases []context.Context
}

// NewPhaseLabels prebuilds one labeled context per phase name on top of
// ctx (whose own labels — e.g. campaign/job from DoJob — are merged by
// the runtime, so a sample can carry phase and job at once).
func NewPhaseLabels(ctx context.Context, phases ...string) *PhaseLabels {
	pl := &PhaseLabels{base: ctx, phases: make([]context.Context, len(phases))}
	for i, name := range phases {
		pl.phases[i] = pprof.WithLabels(ctx, pprof.Labels(LabelPhase, name))
	}
	return pl
}

// Set attributes subsequent CPU samples on this goroutine to phase i
// (the index into the NewPhaseLabels argument order).
//
//safesense:hotpath
func (pl *PhaseLabels) Set(i int) {
	if pl == nil {
		return
	}
	pprof.SetGoroutineLabels(pl.phases[i])
}

// Unset restores the base context's labels.
//
//safesense:hotpath
func (pl *PhaseLabels) Unset() {
	if pl == nil {
		return
	}
	pprof.SetGoroutineLabels(pl.base)
}

// DoJob runs f with campaign/job labels attached to the goroutine for
// its duration (restoring the previous labels after), so every CPU
// sample inside a campaign job is attributable to the sweep and grid
// index that ran it.
func DoJob(ctx context.Context, campaign string, job int, f func(context.Context)) {
	pprof.Do(ctx, pprof.Labels(
		LabelCampaign, campaign,
		LabelJob, strconv.Itoa(job),
	), f)
}
