package profile

import (
	"testing"
	"time"
)

func TestStorePutGetDedup(t *testing.T) {
	fixed := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	old := clock
	clock = func() time.Time { return fixed }
	defer func() { clock = old }()

	s := NewStore(StoreOptions{})
	raw := MarshalGzip(testProfile())
	meta, fresh := s.Put(raw, "cpu", int64(10*time.Second), nil)
	if !fresh {
		t.Fatal("first Put reported dedup")
	}
	if len(meta.ID) != 64 || meta.Seq != 1 || meta.Kind != "cpu" || meta.Bytes != len(raw) {
		t.Fatalf("capture meta = %+v", meta)
	}
	if !meta.CapturedAt.Equal(fixed) {
		t.Fatalf("CapturedAt = %v, want the injected clock", meta.CapturedAt)
	}

	again, fresh := s.Put(raw, "cpu", int64(10*time.Second), nil)
	if fresh {
		t.Fatal("identical capture not deduped")
	}
	if again.ID != meta.ID || again.Seq <= meta.Seq {
		t.Fatalf("dedup must refresh recency: %+v vs %+v", again, meta)
	}
	if s.Len() != 1 || s.LiveBytes() != int64(len(raw)) {
		t.Fatalf("len=%d bytes=%d", s.Len(), s.LiveBytes())
	}

	got, rawBack, ok := s.Get(meta.ID)
	if !ok || got.ID != meta.ID || len(rawBack) != len(raw) {
		t.Fatalf("Get = %+v ok=%v", got, ok)
	}
	if _, _, ok := s.Get("no-such-id"); ok {
		t.Fatal("Get invented a capture")
	}
}

func TestStoreEvictsOldestFirst(t *testing.T) {
	s := NewStore(StoreOptions{BudgetBytes: 250})
	mk := func(fill byte) []byte {
		b := make([]byte, 100)
		for i := range b {
			b[i] = fill
		}
		return b
	}
	a, _ := s.Put(mk(1), "cpu", 0, nil)
	b, _ := s.Put(mk(2), "cpu", 0, nil)
	// Touch a so b becomes the eviction victim.
	if _, _, ok := s.Get(a.ID); !ok {
		t.Fatal("capture a vanished early")
	}
	c, _ := s.Put(mk(3), "cpu", 0, nil) // 300 bytes resident -> evict lowest seq (b)
	if _, _, ok := s.Get(b.ID); ok {
		t.Fatal("least recently touched capture survived eviction")
	}
	for _, id := range []string{a.ID, c.ID} {
		if _, _, ok := s.Get(id); !ok {
			t.Fatalf("capture %s evicted out of order", id)
		}
	}
	if s.LiveBytes() > 250 {
		t.Fatalf("live bytes %d over budget", s.LiveBytes())
	}
}

func TestStoreListNewestFirst(t *testing.T) {
	s := NewStore(StoreOptions{})
	s.Put([]byte("one"), "cpu", 0, nil)
	s.Put([]byte("two"), "cpu", 0, nil)
	s.Put([]byte("three"), "cpu", 0, nil)
	list := s.List()
	if len(list) != 3 {
		t.Fatalf("len = %d", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].Seq <= list[i].Seq {
			t.Fatalf("list not newest-first: %+v", list)
		}
	}
}
