package profile

import (
	"context"
	"log/slog"

	"safesense/internal/obs"
)

var (
	metricCaptures = obs.Default().Counter(
		"safesense_profile_captures_total",
		"Continuous-profiler captures stored.")
	metricCaptureErrors = obs.Default().Counter(
		"safesense_profile_capture_errors_total",
		"Continuous-profiler windows that failed to start, decode, or summarize.")
	metricEvictions = obs.Default().Counter(
		"safesense_profile_evictions_total",
		"Profile captures evicted to stay within the store budget.")
	metricLiveCaptures = obs.Default().Gauge(
		"safesense_profile_live_captures",
		"Profile captures currently resident in the store.")
	metricLiveBytes = obs.Default().Gauge(
		"safesense_profile_live_bytes",
		"Raw bytes of the resident profile captures.")
	// metricPhaseCPUShare's label values are bounded by the profiler's
	// phase whitelist plus the "other" bucket — never raw sample labels.
	metricPhaseCPUShare = obs.Default().Gauge(
		"safesense_profile_phase_cpu_share",
		"Fraction of the latest capture's CPU attributed to each pipeline phase.",
		"phase")
)

// discardHandler is a no-op slog.Handler (slog.DiscardHandler arrives
// in go1.24; this keeps the floor at the module's current toolchain).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
