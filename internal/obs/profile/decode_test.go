package profile

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime/pprof"
	"testing"
)

// testProfile fabricates a small two-dimension profile exercising every
// decoded field: labels, multi-line (inlined) locations, comments, and
// a default sample type.
func testProfile() *Profile {
	return &Profile{
		SampleType: []ValueType{
			{Type: "samples", Unit: "count"},
			{Type: "cpu", Unit: "nanoseconds"},
		},
		Sample: []Sample{
			{
				LocationID: []uint64{1, 2},
				Value:      []int64{3, 30_000_000},
				Label:      []Label{{Key: LabelPhase, Str: "beat_extraction"}},
			},
			{
				LocationID: []uint64{2},
				Value:      []int64{1, 10_000_000},
				Label: []Label{
					{Key: LabelPhase, Str: "rls_estimation"},
					{Key: LabelJob, Num: 7, NumUnit: "index"},
				},
			},
			{LocationID: []uint64{3, 2}, Value: []int64{2, 20_000_000}},
		},
		Location: []Location{
			{ID: 1, Address: 0x40_0000, Line: []Line{{FunctionID: 1, Line: 42}}},
			// Two lines: an inlined frame inside its caller.
			{ID: 2, Line: []Line{{FunctionID: 2, Line: 7}, {FunctionID: 3, Line: 99, Column: 4}}},
			{ID: 3, Line: []Line{{FunctionID: 3, Line: 120}}},
		},
		Function: []Function{
			{ID: 1, Name: "radar.MUSICExtractor.Extract", Filename: "signal.go", StartLine: 115},
			{ID: 2, Name: "sim.stepOnce", SystemName: "safesense/internal/sim.stepOnce", Filename: "runner.go"},
			{ID: 3, Name: "sim.RunContext", Filename: "runner.go", StartLine: 100},
		},
		TimeNanos:         1_700_000_000_000_000_000,
		DurationNanos:     2_000_000_000,
		PeriodType:        ValueType{Type: "cpu", Unit: "nanoseconds"},
		Period:            10_000_000,
		Comment:           []string{"fabricated test capture"},
		DefaultSampleType: "cpu",
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	want := testProfile()
	got, err := Decode(Marshal(want))
	if err != nil {
		t.Fatalf("Decode(Marshal): %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestDecodeGzipRoundTrip(t *testing.T) {
	want := testProfile()
	data := MarshalGzip(want)
	if data[0] != 0x1f || data[1] != 0x8b {
		t.Fatalf("MarshalGzip output is not gzip framed: % x", data[:2])
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode(MarshalGzip): %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("gzip round trip mismatch")
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	valid := Marshal(testProfile())
	cases := map[string][]byte{
		"truncated":       valid[:len(valid)-3],
		"bad gzip header": {0x1f, 0x8b, 0xff, 0x00},
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", name)
		}
	}
}

func TestDecodeRejectsValueCountMismatch(t *testing.T) {
	p := testProfile()
	p.Sample[1].Value = p.Sample[1].Value[:1] // one value, two sample types
	if _, err := Decode(Marshal(p)); err == nil {
		t.Fatal("Decode accepted a sample with the wrong value arity")
	}
}

func TestDecodeRejectsBadStringIndex(t *testing.T) {
	raw := Marshal(testProfile())
	// Append a default_sample_type (field 14) index far past the string
	// table: str() must reject it.
	raw = appendTag(raw, 14, wireVarint)
	raw = append(raw, 0x7f)
	if _, err := Decode(raw); err == nil {
		t.Fatal("Decode accepted an out-of-range string index")
	}
}

// TestDecodeRealRuntimeCapture exercises the decoder against a live
// runtime/pprof capture (packed location/value encodings, mappings,
// real label plumbing) rather than only our own encoder's output.
func TestDecodeRealRuntimeCapture(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("CPU profiler busy: %v", err)
	}
	pl := NewPhaseLabels(context.Background(), "beat_extraction")
	pl.Set(0)
	sink := 0.0
	for i := 0; i < 20_000_000; i++ {
		sink += math.Sqrt(float64(i))
	}
	pl.Unset()
	pprof.StopCPUProfile()
	if sink == 0 {
		t.Fatal("burn loop optimized away")
	}

	p, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("Decode(real capture): %v", err)
	}
	if len(p.SampleType) == 0 || p.SampleType[len(p.SampleType)-1].Type != "cpu" {
		t.Fatalf("sample types = %+v, want trailing cpu", p.SampleType)
	}
	// Idempotence against the runtime encoder: decode(Marshal(decode(x)))
	// must equal decode(x).
	again, err := Decode(Marshal(p))
	if err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if !reflect.DeepEqual(again, p) {
		t.Fatal("re-encode/re-decode of a runtime capture diverged")
	}
}

// goldenFixture is the checked-in gzipped pprof capture and its pinned
// summary (regenerate with PROFILE_REGEN_FIXTURE=1).
const (
	goldenCapture = "testdata/cpu_golden.pprof.gz"
	goldenSummary = "testdata/cpu_golden_summary.json"
)

// TestDecodeGoldenFixture pins the decoder + summarizer output on a
// checked-in capture: any change to flat/cum attribution, phase-share
// accounting, or top-table ordering shows up as a golden diff.
func TestDecodeGoldenFixture(t *testing.T) {
	raw, err := os.ReadFile(goldenCapture)
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with PROFILE_REGEN_FIXTURE=1): %v", err)
	}
	p, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode(golden): %v", err)
	}
	sum, err := Summarize(p, SummaryOptions{TopN: 5})
	if err != nil {
		t.Fatalf("Summarize(golden): %v", err)
	}
	got, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(goldenSummary)
	if err != nil {
		t.Fatalf("missing golden summary: %v", err)
	}
	if !bytes.Equal(bytes.TrimSpace(got), bytes.TrimSpace(want)) {
		t.Fatalf("golden summary drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The fixture must also satisfy the fuzz oracle.
	again, err := Decode(Marshal(p))
	if err != nil {
		t.Fatalf("re-decode golden: %v", err)
	}
	if !reflect.DeepEqual(again, p) {
		t.Fatal("golden capture is not idempotent under re-encode")
	}
}

// TestRegenGoldenFixture rewrites the golden files from a deterministic
// fabricated capture. Gated behind an env var so normal runs never
// touch testdata.
func TestRegenGoldenFixture(t *testing.T) {
	if os.Getenv("PROFILE_REGEN_FIXTURE") == "" {
		t.Skip("set PROFILE_REGEN_FIXTURE=1 to regenerate the golden fixture")
	}
	p := testProfile()
	if err := os.MkdirAll(filepath.Dir(goldenCapture), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenCapture, MarshalGzip(p), 0o644); err != nil {
		t.Fatal(err)
	}
	sum, err := Summarize(p, SummaryOptions{TopN: 5})
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenSummary, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeSampleZeroAlloc guards the hot decode loop: once the
// destination slices have capacity, decoding a sample must not allocate.
func TestDecodeSampleZeroAlloc(t *testing.T) {
	e := &encoder{index: map[string]uint64{"": 0}, table: []string{""}}
	src := Sample{
		LocationID: []uint64{1, 2, 3, 4},
		Value:      []int64{5, 50},
		Label: []Label{
			{Key: LabelPhase, Str: "cra_check"},
			{Key: LabelJob, Num: 3},
		},
	}
	buf := e.sample(&src)
	table := e.table

	var s Sample
	ok := true
	decodeOnce := func() {
		s.LocationID = s.LocationID[:0]
		s.Value = s.Value[:0]
		s.Label = s.Label[:0]
		ok = ok && decodeSample(buf, table, &s)
	}
	decodeOnce() // warm slice capacity
	allocs := testing.AllocsPerRun(200, decodeOnce)
	if !ok {
		t.Fatal("decodeSample failed")
	}
	if allocs != 0 {
		t.Fatalf("decodeSample allocates %v/op with warm slices, want 0", allocs)
	}
	if !reflect.DeepEqual(s.Value, src.Value) || !reflect.DeepEqual(s.Label, src.Label) {
		t.Fatalf("decoded sample mismatch: %+v", s)
	}
}
