package profile

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// DefaultTopN is the function-table size Summarize keeps when
// SummaryOptions.TopN is zero.
const DefaultTopN = 10

// SummaryOptions selects what Summarize extracts.
type SummaryOptions struct {
	// TopN bounds the function table (zero means DefaultTopN).
	TopN int
	// SampleType picks the value dimension by type name (e.g. "cpu",
	// "samples", "alloc_space"). Empty uses the profile's
	// default_sample_type, falling back to the last dimension — which is
	// "cpu"/nanoseconds for runtime CPU captures and "inuse_space" for
	// heap captures, matching go tool pprof.
	SampleType string
}

// FuncStat is one row of the summary's function table.
type FuncStat struct {
	Name string `json:"name"`
	// Flat is the value sampled with this function on top of the stack;
	// Cum counts every sample the function appears anywhere in.
	Flat      int64   `json:"flat"`
	Cum       int64   `json:"cum"`
	FlatShare float64 `json:"flat_share"`
	CumShare  float64 `json:"cum_share"`
}

// LabelShare is one label value's share of the profile total.
type LabelShare struct {
	Value string  `json:"value"`
	Total int64   `json:"total"`
	Share float64 `json:"share"`
}

// Summary is the machine-readable digest of one capture: which
// functions burn the selected dimension and how it splits across the
// pipeline-phase labels. Shares are fractions of Total; the Phases
// shares (including the "(unlabeled)" bucket) sum to 1 by construction.
type Summary struct {
	SampleType    string `json:"sample_type"`
	Unit          string `json:"unit"`
	TotalSamples  int    `json:"total_samples"`
	Total         int64  `json:"total"`
	DurationNanos int64  `json:"duration_nanos,omitempty"`

	// Phases splits Total across the "phase" pprof label, descending,
	// with the "(unlabeled)" bucket covering runtime/GC/untagged code.
	Phases []LabelShare `json:"phases,omitempty"`
	// LabelKeys lists the other label keys seen on samples (e.g.
	// campaign, job) without enumerating their — unbounded — values.
	LabelKeys []string `json:"label_keys,omitempty"`
	// Top unions the top-N functions by flat and by cumulative value,
	// sorted by flat descending.
	Top []FuncStat `json:"top"`
}

// unknownFunc labels frames whose location or function cannot be
// resolved (stripped or foreign profiles).
const unknownFunc = "(unknown)"

// Summarize digests a decoded profile. It errors when the profile has
// no sample types or the requested sample type does not exist; an empty
// sample list yields a zero-total summary rather than an error, so
// callers can distinguish "no samples landed" from "corrupt capture".
func Summarize(p *Profile, opt SummaryOptions) (*Summary, error) {
	if len(p.SampleType) == 0 {
		return nil, fmt.Errorf("profile: no sample types")
	}
	topN := opt.TopN
	if topN <= 0 {
		topN = DefaultTopN
	}
	want := opt.SampleType
	if want == "" {
		want = p.DefaultSampleType
	}
	idx := -1
	if want == "" {
		idx = len(p.SampleType) - 1
	} else {
		for i, vt := range p.SampleType {
			if vt.Type == want {
				idx = i
				break
			}
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("profile: no %q sample type (have %s)", want, sampleTypeNames(p))
	}

	locByID := make(map[uint64]*Location, len(p.Location))
	for i := range p.Location {
		locByID[p.Location[i].ID] = &p.Location[i]
	}
	fnByID := make(map[uint64]*Function, len(p.Function))
	for i := range p.Function {
		fnByID[p.Function[i].ID] = &p.Function[i]
	}
	fnName := func(locID uint64, innermostOnly bool, visit func(string)) {
		loc := locByID[locID]
		if loc == nil || len(loc.Line) == 0 {
			visit(unknownFunc)
			return
		}
		for _, ln := range loc.Line {
			name := unknownFunc
			if fn := fnByID[ln.FunctionID]; fn != nil && fn.Name != "" {
				name = fn.Name
			}
			visit(name)
			if innermostOnly {
				return
			}
		}
	}

	sum := &Summary{
		SampleType:    p.SampleType[idx].Type,
		Unit:          p.SampleType[idx].Unit,
		DurationNanos: p.DurationNanos,
	}
	flat := map[string]int64{}
	cum := map[string]int64{}
	phases := map[string]int64{}
	otherKeys := map[string]bool{}
	seen := map[string]bool{} // per-sample function dedupe for cum
	for si := range p.Sample {
		s := &p.Sample[si]
		v := s.Value[idx]
		sum.Total += v
		sum.TotalSamples++

		phase := Unlabeled
		for _, l := range s.Label {
			if l.Key == LabelPhase && l.Str != "" {
				phase = l.Str
			} else if l.Key != "" && l.Key != LabelPhase {
				otherKeys[l.Key] = true
			}
		}
		phases[phase] += v

		if len(s.LocationID) > 0 {
			// Flat: the leaf location's innermost inlined frame.
			fnName(s.LocationID[0], true, func(name string) { flat[name] += v })
		}
		clear(seen)
		for _, locID := range s.LocationID {
			fnName(locID, false, func(name string) {
				if !seen[name] {
					seen[name] = true
					cum[name] += v
				}
			})
		}
	}

	share := func(v int64) float64 {
		if sum.Total == 0 {
			return 0
		}
		return float64(v) / float64(sum.Total)
	}
	var phaseShares []LabelShare
	for value, total := range phases {
		phaseShares = append(phaseShares, LabelShare{Value: value, Total: total, Share: share(total)})
	}
	sort.Slice(phaseShares, func(i, j int) bool {
		if phaseShares[i].Total != phaseShares[j].Total {
			return phaseShares[i].Total > phaseShares[j].Total
		}
		return phaseShares[i].Value < phaseShares[j].Value
	})
	sum.Phases = phaseShares

	var labelKeys []string
	for k := range otherKeys {
		labelKeys = append(labelKeys, k)
	}
	sort.Strings(labelKeys)
	sum.LabelKeys = labelKeys

	keep := map[string]bool{}
	for _, name := range topNames(flat, topN) {
		keep[name] = true
	}
	for _, name := range topNames(cum, topN) {
		keep[name] = true
	}
	var top []FuncStat
	for name := range keep {
		top = append(top, FuncStat{
			Name: name, Flat: flat[name], Cum: cum[name],
			FlatShare: share(flat[name]), CumShare: share(cum[name]),
		})
	}
	sort.Slice(top, func(i, j int) bool {
		a, b := top[i], top[j]
		if a.Flat != b.Flat {
			return a.Flat > b.Flat
		}
		if a.Cum != b.Cum {
			return a.Cum > b.Cum
		}
		return a.Name < b.Name
	})
	sum.Top = top
	return sum, nil
}

// topNames returns the N keys with the largest values, name-tiebroken
// for determinism.
func topNames(m map[string]int64, n int) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if m[names[i]] != m[names[j]] {
			return m[names[i]] > m[names[j]]
		}
		return names[i] < names[j]
	})
	if len(names) > n {
		names = names[:n]
	}
	return names
}

func sampleTypeNames(p *Profile) string {
	names := make([]string, len(p.SampleType))
	for i, vt := range p.SampleType {
		names[i] = vt.Type
	}
	return strings.Join(names, ", ")
}

// PhaseShare returns one phase's share of the summary total (zero when
// the phase took no samples).
func (s *Summary) PhaseShare(phase string) float64 {
	for _, p := range s.Phases {
		if p.Value == phase {
			return p.Share
		}
	}
	return 0
}

// FormatSummary renders the summary as the text table safesim
// -profile-summary and safesense-perf print.
func FormatSummary(w io.Writer, s *Summary) {
	fmt.Fprintf(w, "profile: %d samples, %d %s total", s.TotalSamples, s.Total, s.Unit)
	if s.DurationNanos > 0 {
		fmt.Fprintf(w, " over %.2fs", float64(s.DurationNanos)/1e9)
	}
	fmt.Fprintln(w)
	if len(s.Phases) > 0 {
		fmt.Fprintln(w, "phase CPU shares:")
		for _, p := range s.Phases {
			fmt.Fprintf(w, "  %6.2f%%  %s\n", p.Share*100, p.Value)
		}
	}
	if len(s.Top) > 0 {
		fmt.Fprintf(w, "top functions (%s):\n", s.SampleType)
		fmt.Fprintf(w, "  %8s %8s  %s\n", "flat", "cum", "function")
		for _, f := range s.Top {
			fmt.Fprintf(w, "  %7.2f%% %7.2f%%  %s\n", f.FlatShare*100, f.CumShare*100, f.Name)
		}
	}
}
