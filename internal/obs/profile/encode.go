package profile

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
)

// Marshal encodes a Profile back to uncompressed profile.proto wire
// format in canonical form: fields in ascending number order, repeated
// numeric fields packed, zero-valued singular fields omitted, and the
// string table rebuilt in first-use order with "" at index 0. Decode of
// the output reproduces the input Profile exactly — the idempotence
// oracle FuzzDecodeProfile leans on — which also makes Marshal the way
// tests fabricate deterministic fixtures.
func Marshal(p *Profile) []byte {
	e := &encoder{index: map[string]uint64{"": 0}, table: []string{""}}

	// Encode every string-bearing section first so the table is complete
	// before it is emitted at field 6.
	var pre []byte
	for i := range p.SampleType {
		pre = appendBytesField(pre, 1, e.valueType(p.SampleType[i]))
	}
	for i := range p.Sample {
		pre = appendBytesField(pre, 2, e.sample(&p.Sample[i]))
	}
	for i := range p.Location {
		pre = appendBytesField(pre, 4, encodeLocation(&p.Location[i]))
	}
	for i := range p.Function {
		pre = appendBytesField(pre, 5, e.function(&p.Function[i]))
	}
	dropIdx := e.str(p.DropFrames)
	keepIdx := e.str(p.KeepFrames)
	periodType := e.valueType(p.PeriodType)
	commentIdx := make([]uint64, len(p.Comment))
	for i, c := range p.Comment {
		commentIdx[i] = e.str(c)
	}
	defIdx := e.str(p.DefaultSampleType)

	out := pre
	for _, s := range e.table {
		out = appendBytesField(out, 6, []byte(s))
	}
	out = appendVarintField(out, 7, dropIdx)
	out = appendVarintField(out, 8, keepIdx)
	out = appendVarintField(out, 9, uint64(p.TimeNanos))
	out = appendVarintField(out, 10, uint64(p.DurationNanos))
	if len(periodType) > 0 {
		out = appendBytesField(out, 11, periodType)
	}
	out = appendVarintField(out, 12, uint64(p.Period))
	for _, idx := range commentIdx {
		// Repeated: every element is emitted, including index 0 ("").
		out = appendTag(out, 13, wireVarint)
		out = binary.AppendUvarint(out, idx)
	}
	out = appendVarintField(out, 14, defIdx)
	return out
}

// MarshalGzip is Marshal wrapped in the gzip framing runtime/pprof
// uses, so fabricated captures exercise the same ingest path as real
// ones. The output is deterministic (no mod-time in the header).
func MarshalGzip(p *Profile) []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(Marshal(p))
	zw.Close()
	return buf.Bytes()
}

// encoder interns strings into the output string table.
type encoder struct {
	index map[string]uint64
	table []string
}

// str returns the table index for s, interning it on first use.
func (e *encoder) str(s string) uint64 {
	if idx, ok := e.index[s]; ok {
		return idx
	}
	idx := uint64(len(e.table))
	e.index[s] = idx
	e.table = append(e.table, s)
	return idx
}

func (e *encoder) valueType(vt ValueType) []byte {
	var b []byte
	b = appendVarintField(b, 1, e.str(vt.Type))
	b = appendVarintField(b, 2, e.str(vt.Unit))
	return b
}

func (e *encoder) sample(s *Sample) []byte {
	var b []byte
	if len(s.LocationID) > 0 {
		b = appendBytesField(b, 1, packUvarints(s.LocationID))
	}
	if len(s.Value) > 0 {
		b = appendBytesField(b, 2, packVarints(s.Value))
	}
	for _, l := range s.Label {
		var lb []byte
		lb = appendVarintField(lb, 1, e.str(l.Key))
		lb = appendVarintField(lb, 2, e.str(l.Str))
		lb = appendVarintField(lb, 3, uint64(l.Num))
		lb = appendVarintField(lb, 4, e.str(l.NumUnit))
		b = appendBytesField(b, 3, lb)
	}
	return b
}

func encodeLocation(loc *Location) []byte {
	var b []byte
	b = appendVarintField(b, 1, loc.ID)
	b = appendVarintField(b, 2, loc.MappingID)
	b = appendVarintField(b, 3, loc.Address)
	for _, ln := range loc.Line {
		var lb []byte
		lb = appendVarintField(lb, 1, ln.FunctionID)
		lb = appendVarintField(lb, 2, uint64(ln.Line))
		lb = appendVarintField(lb, 3, uint64(ln.Column))
		b = appendBytesField(b, 4, lb)
	}
	if loc.IsFolded {
		b = appendVarintField(b, 5, 1)
	}
	return b
}

func (e *encoder) function(fn *Function) []byte {
	var b []byte
	b = appendVarintField(b, 1, fn.ID)
	b = appendVarintField(b, 2, e.str(fn.Name))
	b = appendVarintField(b, 3, e.str(fn.SystemName))
	b = appendVarintField(b, 4, e.str(fn.Filename))
	b = appendVarintField(b, 5, uint64(fn.StartLine))
	return b
}

func appendTag(b []byte, num, wt int) []byte {
	return binary.AppendUvarint(b, uint64(num)<<3|uint64(wt))
}

// appendVarintField emits a singular varint field, omitting proto3
// zero values.
func appendVarintField(b []byte, num int, v uint64) []byte {
	if v == 0 {
		return b
	}
	b = appendTag(b, num, wireVarint)
	return binary.AppendUvarint(b, v)
}

func appendBytesField(b []byte, num int, payload []byte) []byte {
	b = appendTag(b, num, wireBytes)
	b = binary.AppendUvarint(b, uint64(len(payload)))
	return append(b, payload...)
}

func packUvarints(vs []uint64) []byte {
	var b []byte
	for _, v := range vs {
		b = binary.AppendUvarint(b, v)
	}
	return b
}

func packVarints(vs []int64) []byte {
	var b []byte
	for _, v := range vs {
		b = binary.AppendUvarint(b, uint64(v))
	}
	return b
}
