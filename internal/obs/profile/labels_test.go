package profile

import (
	"context"
	"runtime/pprof"
	"testing"
)

func TestEnableReferenceCounts(t *testing.T) {
	if Enabled() {
		t.Fatal("labels enabled at package init")
	}
	Enable()
	Enable()
	Disable()
	if !Enabled() {
		t.Fatal("refcount dropped to zero after one Disable of two Enables")
	}
	Disable()
	if Enabled() {
		t.Fatal("labels still enabled after balanced Disables")
	}
}

func TestPhaseLabelsSetAndUnset(t *testing.T) {
	ctx := pprof.WithLabels(context.Background(), pprof.Labels(LabelCampaign, "sweep"))
	pprof.SetGoroutineLabels(ctx)
	defer pprof.SetGoroutineLabels(context.Background())

	pl := NewPhaseLabels(ctx, "radar_synthesis", "beat_extraction")
	pl.Set(1)
	// The phase context must merge the base labels, not replace them.
	if v, ok := pprof.Label(pl.phases[1], LabelPhase); !ok || v != "beat_extraction" {
		t.Fatalf("phase label = %q ok=%v", v, ok)
	}
	if v, ok := pprof.Label(pl.phases[1], LabelCampaign); !ok || v != "sweep" {
		t.Fatalf("base label lost: %q ok=%v", v, ok)
	}
	pl.Unset()

	// A nil receiver is inert: call sites write pl.Set unconditionally.
	var nilPL *PhaseLabels
	nilPL.Set(0)
	nilPL.Unset()
}

// TestPhaseLabelSwitchZeroAlloc guards the per-step label swap: entering
// and leaving a phase must not allocate (the contexts are prebuilt).
func TestPhaseLabelSwitchZeroAlloc(t *testing.T) {
	pl := NewPhaseLabels(context.Background(), "radar_synthesis", "beat_extraction", "cra_check")
	defer pl.Unset()
	allocs := testing.AllocsPerRun(200, func() {
		pl.Set(0)
		pl.Set(1)
		pl.Set(2)
		pl.Unset()
	})
	if allocs != 0 {
		t.Fatalf("phase switch allocates %v/op, want 0", allocs)
	}
}

func TestDoJobAttachesLabels(t *testing.T) {
	var phase, campaign, job string
	var ok1, ok2 bool
	DoJob(context.Background(), "fig2a-sweep", 42, func(ctx context.Context) {
		campaign, ok1 = pprof.Label(ctx, LabelCampaign)
		job, ok2 = pprof.Label(ctx, LabelJob)
		phase, _ = pprof.Label(ctx, LabelPhase)
	})
	if !ok1 || campaign != "fig2a-sweep" {
		t.Fatalf("campaign label = %q", campaign)
	}
	if !ok2 || job != "42" {
		t.Fatalf("job label = %q", job)
	}
	if phase != "" {
		t.Fatalf("unexpected phase label %q", phase)
	}
}
