package profile

import (
	"os"
	"reflect"
	"testing"
)

// FuzzDecodeProfile hammers the wire decoder with mutated captures. Two
// oracles: Decode must never panic (bounded input, strict structure
// checks), and any input it accepts must be idempotent under the
// canonical encoder — decode(Marshal(decode(x))) == decode(x) — so the
// decoder and encoder can never drift apart on a representable profile.
func FuzzDecodeProfile(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x1f, 0x8b})
	f.Add(Marshal(testProfile()))
	f.Add(MarshalGzip(testProfile()))
	f.Add(Marshal(&Profile{SampleType: []ValueType{{Type: "cpu", Unit: "nanoseconds"}}}))
	if golden, err := os.ReadFile(goldenCapture); err == nil {
		f.Add(golden)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("bounded: continuous captures are a few hundred KiB")
		}
		p, err := Decode(data)
		if err != nil {
			return
		}
		again, err := Decode(Marshal(p))
		if err != nil {
			t.Fatalf("re-decode of accepted profile failed: %v", err)
		}
		if !reflect.DeepEqual(again, p) {
			t.Fatalf("decode/encode not idempotent:\nfirst  %+v\nsecond %+v", p, again)
		}
	})
}
