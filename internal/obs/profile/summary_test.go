package profile

import (
	"strings"
	"testing"
)

func TestSummarizePhaseSharesAndTop(t *testing.T) {
	sum, err := Summarize(testProfile(), SummaryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.SampleType != "cpu" || sum.Unit != "nanoseconds" {
		t.Fatalf("selected %s/%s, want cpu/nanoseconds (default_sample_type)", sum.SampleType, sum.Unit)
	}
	if sum.Total != 60_000_000 || sum.TotalSamples != 3 {
		t.Fatalf("total = %d over %d samples", sum.Total, sum.TotalSamples)
	}
	var shareSum float64
	shares := map[string]float64{}
	for _, p := range sum.Phases {
		shareSum += p.Share
		shares[p.Value] = p.Share
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		t.Fatalf("phase shares sum to %v, want 1", shareSum)
	}
	if shares["beat_extraction"] != 0.5 || shares[Unlabeled] <= 0 {
		t.Fatalf("phase shares = %v", shares)
	}
	// Phases are descending by total; beat_extraction (30ms) leads.
	if sum.Phases[0].Value != "beat_extraction" {
		t.Fatalf("largest phase = %s", sum.Phases[0].Value)
	}
	// Non-phase label keys are listed without value enumeration.
	if len(sum.LabelKeys) != 1 || sum.LabelKeys[0] != LabelJob {
		t.Fatalf("label keys = %v", sum.LabelKeys)
	}
	if len(sum.Top) == 0 {
		t.Fatal("empty top table")
	}
	// Flat attribution goes to the leaf location's innermost frame:
	// sample 1 (30ms) leafs at location 1 -> MUSICExtractor.Extract.
	if sum.Top[0].Name != "radar.MUSICExtractor.Extract" {
		t.Fatalf("top flat = %s (%+v)", sum.Top[0].Name, sum.Top)
	}
	if sum.Top[0].Flat != 30_000_000 || sum.Top[0].FlatShare != 0.5 {
		t.Fatalf("top row = %+v", sum.Top[0])
	}
	if got := sum.PhaseShare("beat_extraction"); got != 0.5 {
		t.Fatalf("PhaseShare = %v", got)
	}
	if got := sum.PhaseShare("no_such_phase"); got != 0 {
		t.Fatalf("PhaseShare(absent) = %v", got)
	}
}

func TestSummarizeSampleTypeSelection(t *testing.T) {
	sum, err := Summarize(testProfile(), SummaryOptions{SampleType: "samples"})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != 6 || sum.Unit != "count" {
		t.Fatalf("samples dimension: total=%d unit=%s", sum.Total, sum.Unit)
	}
	if _, err := Summarize(testProfile(), SummaryOptions{SampleType: "alloc_space"}); err == nil {
		t.Fatal("Summarize accepted a missing sample type")
	}
	if _, err := Summarize(&Profile{}, SummaryOptions{}); err == nil {
		t.Fatal("Summarize accepted a profile with no sample types")
	}
}

func TestSummarizeEmptySamples(t *testing.T) {
	p := &Profile{SampleType: []ValueType{{Type: "cpu", Unit: "nanoseconds"}}}
	sum, err := Summarize(p, SummaryOptions{})
	if err != nil {
		t.Fatalf("empty capture must summarize to zero, got error: %v", err)
	}
	if sum.Total != 0 || sum.TotalSamples != 0 || len(sum.Top) != 0 {
		t.Fatalf("zero-sample summary = %+v", sum)
	}
}

func TestFormatSummary(t *testing.T) {
	sum, err := Summarize(testProfile(), SummaryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	FormatSummary(&b, sum)
	out := b.String()
	for _, want := range []string{"beat_extraction", "phase CPU shares", "top functions (cpu)", "radar.MUSICExtractor.Extract"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted summary missing %q:\n%s", want, out)
		}
	}
}
