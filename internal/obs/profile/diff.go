package profile

import (
	"fmt"
	"io"
	"sort"
)

// FuncDelta is one function's share movement between two captures.
// Shares (fractions of each capture's own total) are compared rather
// than raw values because the two windows rarely cover the same wall
// time or sample count.
type FuncDelta struct {
	Name        string  `json:"name"`
	BeforeShare float64 `json:"before_share"`
	AfterShare  float64 `json:"after_share"`
	DeltaShare  float64 `json:"delta_share"`
	BeforeFlat  int64   `json:"before_flat"`
	AfterFlat   int64   `json:"after_flat"`
}

// PhaseDelta is one phase label's share movement.
type PhaseDelta struct {
	Phase       string  `json:"phase"`
	BeforeShare float64 `json:"before_share"`
	AfterShare  float64 `json:"after_share"`
	DeltaShare  float64 `json:"delta_share"`
}

// DiffReport compares two capture summaries. Scope: the function rows
// cover the union of the two summaries' top tables (a function outside
// both top-N lists cannot appear), which is exactly the "what grew"
// question the perf gate asks.
type DiffReport struct {
	SampleType  string       `json:"sample_type"`
	BeforeTotal int64        `json:"before_total"`
	AfterTotal  int64        `json:"after_total"`
	Funcs       []FuncDelta  `json:"funcs,omitempty"`
	Phases      []PhaseDelta `json:"phases,omitempty"`
}

// Diff compares before/after summaries by flat share, largest growth
// first (ties broken by name for determinism).
func Diff(before, after *Summary) *DiffReport {
	rep := &DiffReport{
		SampleType:  after.SampleType,
		BeforeTotal: before.Total,
		AfterTotal:  after.Total,
	}
	type sides struct {
		beforeShare, afterShare float64
		beforeFlat, afterFlat   int64
	}
	funcs := map[string]*sides{}
	at := func(name string) *sides {
		s := funcs[name]
		if s == nil {
			s = &sides{}
			funcs[name] = s
		}
		return s
	}
	for _, f := range before.Top {
		s := at(f.Name)
		s.beforeShare, s.beforeFlat = f.FlatShare, f.Flat
	}
	for _, f := range after.Top {
		s := at(f.Name)
		s.afterShare, s.afterFlat = f.FlatShare, f.Flat
	}
	var funcRows []FuncDelta
	for name, s := range funcs {
		funcRows = append(funcRows, FuncDelta{
			Name:        name,
			BeforeShare: s.beforeShare,
			AfterShare:  s.afterShare,
			DeltaShare:  s.afterShare - s.beforeShare,
			BeforeFlat:  s.beforeFlat,
			AfterFlat:   s.afterFlat,
		})
	}
	sort.Slice(funcRows, func(i, j int) bool {
		if funcRows[i].DeltaShare != funcRows[j].DeltaShare {
			return funcRows[i].DeltaShare > funcRows[j].DeltaShare
		}
		return funcRows[i].Name < funcRows[j].Name
	})
	rep.Funcs = funcRows

	phases := map[string]*sides{}
	pat := func(name string) *sides {
		s := phases[name]
		if s == nil {
			s = &sides{}
			phases[name] = s
		}
		return s
	}
	for _, p := range before.Phases {
		pat(p.Value).beforeShare = p.Share
	}
	for _, p := range after.Phases {
		pat(p.Value).afterShare = p.Share
	}
	var phaseRows []PhaseDelta
	for name, s := range phases {
		phaseRows = append(phaseRows, PhaseDelta{
			Phase:       name,
			BeforeShare: s.beforeShare,
			AfterShare:  s.afterShare,
			DeltaShare:  s.afterShare - s.beforeShare,
		})
	}
	sort.Slice(phaseRows, func(i, j int) bool {
		if phaseRows[i].DeltaShare != phaseRows[j].DeltaShare {
			return phaseRows[i].DeltaShare > phaseRows[j].DeltaShare
		}
		return phaseRows[i].Phase < phaseRows[j].Phase
	})
	rep.Phases = phaseRows
	return rep
}

// Growers returns the function deltas that grew by at least
// minDeltaShare (e.g. 0.01 for one percentage point), largest first —
// the rows the perf gate attaches to a regression.
func (r *DiffReport) Growers(minDeltaShare float64) []FuncDelta {
	var out []FuncDelta
	for _, f := range r.Funcs {
		if f.DeltaShare >= minDeltaShare && f.DeltaShare > 0 {
			out = append(out, f)
		}
	}
	return out
}

// FormatDiff renders the report as the text table safesense-perf
// profile-diff prints.
func FormatDiff(w io.Writer, r *DiffReport) {
	fmt.Fprintf(w, "profile diff (%s): before total %d, after total %d\n",
		r.SampleType, r.BeforeTotal, r.AfterTotal)
	if len(r.Phases) > 0 {
		fmt.Fprintln(w, "phase share deltas:")
		for _, p := range r.Phases {
			fmt.Fprintf(w, "  %+7.2f%%  %6.2f%% -> %6.2f%%  %s\n",
				p.DeltaShare*100, p.BeforeShare*100, p.AfterShare*100, p.Phase)
		}
	}
	if len(r.Funcs) > 0 {
		fmt.Fprintln(w, "function flat-share deltas:")
		for _, f := range r.Funcs {
			fmt.Fprintf(w, "  %+7.2f%%  %6.2f%% -> %6.2f%%  %s\n",
				f.DeltaShare*100, f.BeforeShare*100, f.AfterShare*100, f.Name)
		}
	}
}
