package profile

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// MaxDecodedBytes bounds the decompressed size Decode will accept — a
// gzip-bomb guard for captures arriving over HTTP or from fuzzing.
// Continuous-profiler captures are a few hundred KiB.
const MaxDecodedBytes = 64 << 20

// Decode errors. The wire primitives live on a hot path and therefore
// signal failure through these sentinels rather than formatted errors;
// Decode wraps them with positional context.
var (
	ErrTruncated   = errors.New("profile: truncated message")
	ErrOverflow    = errors.New("profile: varint overflow")
	ErrWireType    = errors.New("profile: unexpected wire type")
	ErrStringIndex = errors.New("profile: string table index out of range")
	ErrTooLarge    = errors.New("profile: decompressed profile exceeds MaxDecodedBytes")
	ErrValueCount  = errors.New("profile: sample value count does not match sample types")
)

// Profile is the decoded subset of pprof's profile.proto that summaries
// and diffs need: sample types, samples with location stacks and
// labels, the location/function tables, and the top-level scalars.
// String-table indices are resolved at decode time; the mapping table
// (build-id/address-range metadata) is skipped.
type Profile struct {
	SampleType        []ValueType `json:"sample_type"`
	Sample            []Sample    `json:"sample"`
	Location          []Location  `json:"location"`
	Function          []Function  `json:"function"`
	DropFrames        string      `json:"drop_frames,omitempty"`
	KeepFrames        string      `json:"keep_frames,omitempty"`
	TimeNanos         int64       `json:"time_nanos,omitempty"`
	DurationNanos     int64       `json:"duration_nanos,omitempty"`
	PeriodType        ValueType   `json:"period_type"`
	Period            int64       `json:"period,omitempty"`
	Comment           []string    `json:"comment,omitempty"`
	DefaultSampleType string      `json:"default_sample_type,omitempty"`
}

// ValueType names one sample dimension, e.g. {cpu, nanoseconds}.
type ValueType struct {
	Type string `json:"type"`
	Unit string `json:"unit"`
}

// Sample is one stack observation: the location IDs leaf-first, one
// value per sample type, and the pprof labels active when it was taken.
type Sample struct {
	LocationID []uint64 `json:"location_id"`
	Value      []int64  `json:"value"`
	Label      []Label  `json:"label,omitempty"`
}

// Label is one pprof label on a sample (string- or number-valued).
type Label struct {
	Key     string `json:"key"`
	Str     string `json:"str,omitempty"`
	Num     int64  `json:"num,omitempty"`
	NumUnit string `json:"num_unit,omitempty"`
}

// Location is one address with its line table (Line[0] is the innermost
// inlined frame).
type Location struct {
	ID        uint64 `json:"id"`
	MappingID uint64 `json:"mapping_id,omitempty"`
	Address   uint64 `json:"address,omitempty"`
	Line      []Line `json:"line,omitempty"`
	IsFolded  bool   `json:"is_folded,omitempty"`
}

// Line resolves one frame of a location to a function.
type Line struct {
	FunctionID uint64 `json:"function_id"`
	Line       int64  `json:"line,omitempty"`
	Column     int64  `json:"column,omitempty"`
}

// Function is one entry of the function table.
type Function struct {
	ID         uint64 `json:"id"`
	Name       string `json:"name"`
	SystemName string `json:"system_name,omitempty"`
	Filename   string `json:"filename,omitempty"`
	StartLine  int64  `json:"start_line,omitempty"`
}

// Protobuf wire types.
const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
	wireFixed32 = 5
)

// wire is a cursor over one protobuf message. Its primitives are the
// innermost decode loop — every varint of every sample goes through
// them — so they avoid fmt and report failure through booleans.
type wire struct {
	buf []byte
	pos int
}

//safesense:hotpath
func (r *wire) more() bool { return r.pos < len(r.buf) }

// varint reads one base-128 varint (at most 10 bytes).
//
//safesense:hotpath
func (r *wire) varint() (uint64, bool) {
	var v uint64
	var shift uint
	for r.pos < len(r.buf) {
		b := r.buf[r.pos]
		r.pos++
		if shift == 63 && b > 1 {
			return 0, false
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, true
		}
		shift += 7
		if shift > 63 {
			return 0, false
		}
	}
	return 0, false
}

// field reads one field tag, returning the field number and wire type.
//
//safesense:hotpath
func (r *wire) field() (int, int, bool) {
	tag, ok := r.varint()
	if !ok || tag>>3 > 1<<28 {
		return 0, 0, false
	}
	return int(tag >> 3), int(tag & 7), true
}

// bytes reads one length-delimited payload as a subslice (no copy).
//
//safesense:hotpath
func (r *wire) bytes() ([]byte, bool) {
	n, ok := r.varint()
	if !ok || n > uint64(len(r.buf)-r.pos) {
		return nil, false
	}
	b := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b, true
}

// skip advances past one field of the given wire type.
//
//safesense:hotpath
func (r *wire) skip(wt int) bool {
	switch wt {
	case wireVarint:
		_, ok := r.varint()
		return ok
	case wireFixed64:
		if len(r.buf)-r.pos < 8 {
			return false
		}
		r.pos += 8
		return true
	case wireBytes:
		_, ok := r.bytes()
		return ok
	case wireFixed32:
		if len(r.buf)-r.pos < 4 {
			return false
		}
		r.pos += 4
		return true
	}
	return false
}

// maybeGunzip transparently decompresses gzip'd input (runtime/pprof
// always gzips), bounding the output at MaxDecodedBytes.
func maybeGunzip(data []byte) ([]byte, error) {
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		return data, nil
	}
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("profile: gzip header: %w", err)
	}
	defer zr.Close()
	out, err := io.ReadAll(io.LimitReader(zr, MaxDecodedBytes+1))
	if err != nil {
		return nil, fmt.Errorf("profile: gunzip: %w", err)
	}
	if len(out) > MaxDecodedBytes {
		return nil, ErrTooLarge
	}
	return out, nil
}

// Decode parses a pprof capture (gzip'd or raw protobuf) into a
// Profile with string indices resolved. The decode is strict about
// structure — truncated varints, bad wire types, out-of-range string
// indices, and sample/sample-type arity mismatches are errors — so
// everything downstream (Summarize, Diff, the HTTP endpoints) can trust
// the shape.
func Decode(data []byte) (*Profile, error) {
	raw, err := maybeGunzip(data)
	if err != nil {
		return nil, err
	}

	// Pass 1: split the top-level message into raw sub-message payloads
	// and scalars, and materialize the string table (field 6), which
	// later fields reference by index.
	var (
		table                              []string
		sampleTypeRaw, sampleRaw           [][]byte
		locRaw, fnRaw                      [][]byte
		periodTypeRaw                      []byte
		dropIdx, keepIdx, defIdx           uint64
		commentIdx                         []uint64
		timeNanos, durationNanos, periodNs int64
	)
	r := wire{buf: raw}
	for r.more() {
		num, wt, ok := r.field()
		if !ok {
			return nil, fmt.Errorf("%w: top-level tag at offset %d", ErrTruncated, r.pos)
		}
		switch num {
		case 1, 2, 3, 4, 5, 11: // sub-messages
			if wt != wireBytes {
				return nil, fmt.Errorf("%w: field %d", ErrWireType, num)
			}
			b, ok := r.bytes()
			if !ok {
				return nil, fmt.Errorf("%w: field %d payload", ErrTruncated, num)
			}
			switch num {
			case 1:
				sampleTypeRaw = append(sampleTypeRaw, b)
			case 2:
				sampleRaw = append(sampleRaw, b)
			case 3:
				// Mapping: build-id metadata the summaries never use.
			case 4:
				locRaw = append(locRaw, b)
			case 5:
				fnRaw = append(fnRaw, b)
			case 11:
				periodTypeRaw = b
			}
		case 6:
			if wt != wireBytes {
				return nil, fmt.Errorf("%w: string table", ErrWireType)
			}
			b, ok := r.bytes()
			if !ok {
				return nil, fmt.Errorf("%w: string table entry", ErrTruncated)
			}
			table = append(table, string(b))
		case 7, 8, 9, 10, 12, 14:
			if wt != wireVarint {
				return nil, fmt.Errorf("%w: field %d", ErrWireType, num)
			}
			v, ok := r.varint()
			if !ok {
				return nil, fmt.Errorf("%w: field %d", ErrTruncated, num)
			}
			switch num {
			case 7:
				dropIdx = v
			case 8:
				keepIdx = v
			case 9:
				timeNanos = int64(v)
			case 10:
				durationNanos = int64(v)
			case 12:
				periodNs = int64(v)
			case 14:
				defIdx = v
			}
		case 13: // repeated int64 comment: packed or one-per-field
			switch wt {
			case wireVarint:
				v, ok := r.varint()
				if !ok {
					return nil, fmt.Errorf("%w: comment", ErrTruncated)
				}
				commentIdx = append(commentIdx, v)
			case wireBytes:
				b, ok := r.bytes()
				if !ok {
					return nil, fmt.Errorf("%w: comment", ErrTruncated)
				}
				pr := wire{buf: b}
				for pr.more() {
					v, ok := pr.varint()
					if !ok {
						return nil, fmt.Errorf("%w: packed comment", ErrTruncated)
					}
					commentIdx = append(commentIdx, v)
				}
			default:
				return nil, fmt.Errorf("%w: comment", ErrWireType)
			}
		default:
			if !r.skip(wt) {
				return nil, fmt.Errorf("%w: skipping field %d", ErrTruncated, num)
			}
		}
	}

	str := func(idx uint64) (string, error) {
		if idx == 0 {
			return "", nil
		}
		if idx >= uint64(len(table)) {
			return "", ErrStringIndex
		}
		return table[idx], nil
	}

	// Pass 2: decode the collected sub-messages against the table.
	p := &Profile{
		TimeNanos:     timeNanos,
		DurationNanos: durationNanos,
		Period:        periodNs,
	}
	if p.DropFrames, err = str(dropIdx); err != nil {
		return nil, fmt.Errorf("%w: drop_frames", err)
	}
	if p.KeepFrames, err = str(keepIdx); err != nil {
		return nil, fmt.Errorf("%w: keep_frames", err)
	}
	if p.DefaultSampleType, err = str(defIdx); err != nil {
		return nil, fmt.Errorf("%w: default_sample_type", err)
	}
	for _, idx := range commentIdx {
		s, err := str(idx)
		if err != nil {
			return nil, fmt.Errorf("%w: comment", err)
		}
		p.Comment = append(p.Comment, s)
	}
	if periodTypeRaw != nil {
		if p.PeriodType, err = decodeValueType(periodTypeRaw, table); err != nil {
			return nil, fmt.Errorf("period_type: %w", err)
		}
	}
	p.SampleType = make([]ValueType, 0, len(sampleTypeRaw))
	for _, b := range sampleTypeRaw {
		vt, err := decodeValueType(b, table)
		if err != nil {
			return nil, fmt.Errorf("sample_type: %w", err)
		}
		p.SampleType = append(p.SampleType, vt)
	}
	p.Location = make([]Location, 0, len(locRaw))
	for _, b := range locRaw {
		loc, err := decodeLocation(b)
		if err != nil {
			return nil, fmt.Errorf("location: %w", err)
		}
		p.Location = append(p.Location, loc)
	}
	p.Function = make([]Function, 0, len(fnRaw))
	for _, b := range fnRaw {
		fn, err := decodeFunction(b, table)
		if err != nil {
			return nil, fmt.Errorf("function: %w", err)
		}
		p.Function = append(p.Function, fn)
	}
	p.Sample = make([]Sample, 0, len(sampleRaw))
	for i, b := range sampleRaw {
		var s Sample
		if !decodeSample(b, table, &s) {
			return nil, fmt.Errorf("%w: sample %d", ErrTruncated, i)
		}
		if len(s.Value) != len(p.SampleType) {
			return nil, fmt.Errorf("%w: sample %d has %d values, %d types",
				ErrValueCount, i, len(s.Value), len(p.SampleType))
		}
		p.Sample = append(p.Sample, s)
	}
	return p, nil
}

// decodeValueType parses one ValueType message (string indices 1, 2).
func decodeValueType(buf []byte, table []string) (ValueType, error) {
	var vt ValueType
	r := wire{buf: buf}
	for r.more() {
		num, wt, ok := r.field()
		if !ok {
			return vt, ErrTruncated
		}
		switch num {
		case 1, 2:
			if wt != wireVarint {
				return vt, ErrWireType
			}
			idx, ok := r.varint()
			if !ok {
				return vt, ErrTruncated
			}
			if idx >= uint64(len(table)) && idx != 0 {
				return vt, ErrStringIndex
			}
			s := ""
			if idx != 0 {
				s = table[idx]
			}
			if num == 1 {
				vt.Type = s
			} else {
				vt.Unit = s
			}
		default:
			if !r.skip(wt) {
				return vt, ErrTruncated
			}
		}
	}
	return vt, nil
}

// decodeLocation parses one Location message with its line table.
func decodeLocation(buf []byte) (Location, error) {
	var loc Location
	r := wire{buf: buf}
	for r.more() {
		num, wt, ok := r.field()
		if !ok {
			return loc, ErrTruncated
		}
		switch num {
		case 1, 2, 3, 5:
			if wt != wireVarint {
				return loc, ErrWireType
			}
			v, ok := r.varint()
			if !ok {
				return loc, ErrTruncated
			}
			switch num {
			case 1:
				loc.ID = v
			case 2:
				loc.MappingID = v
			case 3:
				loc.Address = v
			case 5:
				loc.IsFolded = v != 0
			}
		case 4:
			if wt != wireBytes {
				return loc, ErrWireType
			}
			b, ok := r.bytes()
			if !ok {
				return loc, ErrTruncated
			}
			var ln Line
			lr := wire{buf: b}
			for lr.more() {
				lnum, lwt, ok := lr.field()
				if !ok {
					return loc, ErrTruncated
				}
				if lwt != wireVarint {
					if !lr.skip(lwt) {
						return loc, ErrTruncated
					}
					continue
				}
				v, ok := lr.varint()
				if !ok {
					return loc, ErrTruncated
				}
				switch lnum {
				case 1:
					ln.FunctionID = v
				case 2:
					ln.Line = int64(v)
				case 3:
					ln.Column = int64(v)
				}
			}
			loc.Line = append(loc.Line, ln)
		default:
			if !r.skip(wt) {
				return loc, ErrTruncated
			}
		}
	}
	return loc, nil
}

// decodeFunction parses one Function message (string indices 2-4).
func decodeFunction(buf []byte, table []string) (Function, error) {
	var fn Function
	r := wire{buf: buf}
	for r.more() {
		num, wt, ok := r.field()
		if !ok {
			return fn, ErrTruncated
		}
		if wt != wireVarint {
			if !r.skip(wt) {
				return fn, ErrTruncated
			}
			continue
		}
		v, ok := r.varint()
		if !ok {
			return fn, ErrTruncated
		}
		switch num {
		case 1:
			fn.ID = v
		case 2, 3, 4:
			if v >= uint64(len(table)) && v != 0 {
				return fn, ErrStringIndex
			}
			s := ""
			if v != 0 {
				s = table[v]
			}
			switch num {
			case 2:
				fn.Name = s
			case 3:
				fn.SystemName = s
			case 4:
				fn.Filename = s
			}
		case 5:
			fn.StartLine = int64(v)
		}
	}
	return fn, nil
}

// decodeSample is the hot decode loop: a CPU capture holds thousands of
// samples and every location ID, value, and label of each goes through
// here. It reports failure (truncation, bad wire type, string index out
// of range) as false; the caller attaches sample context. Both packed
// and one-per-field encodings of the repeated numeric fields are
// accepted, since runtime/pprof switches on element count.
//
//safesense:hotpath
func decodeSample(buf []byte, table []string, s *Sample) bool {
	r := wire{buf: buf}
	for r.more() {
		num, wt, ok := r.field()
		if !ok {
			return false
		}
		switch num {
		case 1, 2: // location_id, value
			switch wt {
			case wireVarint:
				v, ok := r.varint()
				if !ok {
					return false
				}
				if num == 1 {
					s.LocationID = append(s.LocationID, v)
				} else {
					s.Value = append(s.Value, int64(v))
				}
			case wireBytes:
				b, ok := r.bytes()
				if !ok {
					return false
				}
				pr := wire{buf: b}
				for pr.more() {
					v, ok := pr.varint()
					if !ok {
						return false
					}
					if num == 1 {
						s.LocationID = append(s.LocationID, v)
					} else {
						s.Value = append(s.Value, int64(v))
					}
				}
			default:
				return false
			}
		case 3: // label sub-message
			if wt != wireBytes {
				return false
			}
			b, ok := r.bytes()
			if !ok {
				return false
			}
			var l Label
			lr := wire{buf: b}
			for lr.more() {
				lnum, lwt, ok := lr.field()
				if !ok {
					return false
				}
				if lwt != wireVarint {
					if !lr.skip(lwt) {
						return false
					}
					continue
				}
				v, ok := lr.varint()
				if !ok {
					return false
				}
				switch lnum {
				case 1, 2, 4:
					if v >= uint64(len(table)) && v != 0 {
						return false
					}
					str := ""
					if v != 0 {
						str = table[v]
					}
					switch lnum {
					case 1:
						l.Key = str
					case 2:
						l.Str = str
					case 4:
						l.NumUnit = str
					}
				case 3:
					l.Num = int64(v)
				}
			}
			s.Label = append(s.Label, l)
		default:
			if !r.skip(wt) {
				return false
			}
		}
	}
	return true
}
