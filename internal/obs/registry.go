package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// kind discriminates the three metric families.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return "unknown"
}

// Registry holds metric families. Registration takes a lock; the metric
// hot path (With + Inc/Add/Observe) never does.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed label schema and one child per
// distinct label-value tuple.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64 // histogram upper bounds, ascending

	// children maps the joined label-value key to *Counter, *Gauge, or
	// *Histogram. Reads are lock-free; creation serializes on newMu.
	children sync.Map
	newMu    sync.Mutex
}

// keySep joins label values into a child key; \xff cannot appear in valid
// UTF-8 label values, so the key is unambiguous.
const keySep = "\xff"

func (r *Registry) register(name, help string, k kind, buckets []float64, labels []string) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind or label schema", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: k, labels: append([]string(nil), labels...)}
	if k == histogramKind {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		f.buckets = append([]float64(nil), buckets...)
		if !sort.Float64sAreSorted(f.buckets) {
			panic(fmt.Sprintf("obs: histogram %q buckets must be ascending", name))
		}
	}
	if len(labels) == 0 {
		// Eagerly create the single unlabeled child so the family renders
		// (at zero) before the first event.
		f.child()
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// child resolves (or creates) the child for the given label values.
func (f *family) child(values ...string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, keySep)
	if c, ok := f.children.Load(key); ok {
		return c
	}
	f.newMu.Lock()
	defer f.newMu.Unlock()
	if c, ok := f.children.Load(key); ok {
		return c
	}
	var c any
	switch f.kind {
	case counterKind:
		c = &Counter{}
	case gaugeKind:
		c = &Gauge{}
	case histogramKind:
		c = newHistogram(f.buckets)
	}
	f.children.Store(key, c)
	return c
}

// Counter is a monotonically increasing float64.
type Counter struct{ bits atomic.Uint64 }

// Inc adds one.
//
//safesense:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (negative deltas are ignored; counters only go up).
//
//safesense:hotpath
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	addFloat(&c.bits, delta)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
//
//safesense:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (may be negative).
//
//safesense:hotpath
func (g *Gauge) Add(delta float64) { addFloat(&g.bits, delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloat is the lock-free float accumulator under every Counter and
// Gauge write.
//
//safesense:hotpath
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram counts observations into fixed cumulative-at-render buckets.
type Histogram struct {
	upper     []float64
	counts    []atomic.Uint64 // len(upper)+1; the last is +Inf
	sum       atomic.Uint64   // float64 bits
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one observed value to the trace that produced it, so a
// histogram bucket in /metrics can point at a concrete request or run in
// /debug/traces.
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{
		upper:     upper,
		counts:    make([]atomic.Uint64, len(upper)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(upper)+1),
	}
}

// Observe records one value (NaN is dropped).
//
//safesense:hotpath
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
}

// ObserveExemplar records v and, when traceID is non-empty, replaces the
// matching bucket's exemplar with (v, traceID). The write is a single
// atomic pointer swap, keeping the hot path lock-free.
//
//safesense:hotpath
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID})
	}
}

// ObserveDuration records d in seconds.
//
//safesense:hotpath
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With resolves the child counter for the label values; callers on hot
// paths should cache the result.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values...).(*Counter) }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With resolves the child gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values...).(*Gauge) }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With resolves the child histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values...).(*Histogram) }

// Counter registers (or fetches) a counter family. Registering an
// existing name with a different kind or label schema panics.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, counterKind, nil, labels)}
}

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, gaugeKind, nil, labels)}
}

// Histogram registers (or fetches) a histogram family with the given
// ascending upper bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, histogramKind, buckets, labels)}
}

// Snapshot types: a stable, test-friendly view of the registry.
type (
	// FamilySnapshot is one metric family at a point in time.
	FamilySnapshot struct {
		Name    string           `json:"name"`
		Help    string           `json:"help"`
		Kind    string           `json:"kind"`
		Metrics []MetricSnapshot `json:"metrics"`
	}
	// MetricSnapshot is one child. Value is set for counters/gauges;
	// Count/Sum/Buckets for histograms.
	MetricSnapshot struct {
		Labels  map[string]string `json:"labels,omitempty"`
		Value   float64           `json:"value,omitempty"`
		Count   uint64            `json:"count,omitempty"`
		Sum     float64           `json:"sum,omitempty"`
		Buckets []BucketSnapshot  `json:"buckets,omitempty"`
	}
	// BucketSnapshot is one cumulative histogram bucket; the final bucket
	// has UpperBound = +Inf. Exemplar, when present, is the latest traced
	// observation that landed in this bucket.
	BucketSnapshot struct {
		UpperBound float64   `json:"le"`
		Count      uint64    `json:"count"`
		Exemplar   *Exemplar `json:"exemplar,omitempty"`
	}
)

// Snapshot captures every family, sorted by name, children sorted by
// label values. Values are read atomically per metric (the snapshot as a
// whole is not a consistent cut — fine for tests and exposition).
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	families := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		families = append(families, f)
	}
	r.mu.Unlock()
	sort.Slice(families, func(i, j int) bool { return families[i].name < families[j].name })

	out := make([]FamilySnapshot, 0, len(families))
	for _, f := range families {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind.String()}
		type kv struct {
			key string
			c   any
		}
		var kids []kv
		f.children.Range(func(k, v any) bool {
			kids = append(kids, kv{k.(string), v})
			return true
		})
		sort.Slice(kids, func(i, j int) bool { return kids[i].key < kids[j].key })
		for _, kid := range kids {
			m := MetricSnapshot{}
			if len(f.labels) > 0 {
				values := strings.Split(kid.key, keySep)
				m.Labels = make(map[string]string, len(f.labels))
				for i, name := range f.labels {
					m.Labels[name] = values[i]
				}
			}
			switch c := kid.c.(type) {
			case *Counter:
				m.Value = c.Value()
			case *Gauge:
				m.Value = c.Value()
			case *Histogram:
				var cum uint64
				for i := range c.counts {
					cum += c.counts[i].Load()
					ub := math.Inf(1)
					if i < len(c.upper) {
						ub = c.upper[i]
					}
					m.Buckets = append(m.Buckets, BucketSnapshot{
						UpperBound: ub, Count: cum, Exemplar: c.exemplars[i].Load(),
					})
				}
				m.Count = cum
				m.Sum = c.Sum()
			}
			fs.Metrics = append(fs.Metrics, m)
		}
		out = append(out, fs)
	}
	return out
}
