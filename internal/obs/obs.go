// Package obs is the stdlib-only observability layer: a metrics registry
// (atomic counters, gauges, fixed-bucket histograms with labeled
// families), Prometheus text-format exposition, expvar publication, and a
// tiny Span/Timer API for phase timing.
//
// The hot path is lock-free: resolving a labeled child with With() is a
// sync.Map read, and Inc/Add/Observe are atomic operations, so callers
// that cache the child pay only a few nanoseconds per event (pinned by
// BenchmarkObsCounter / BenchmarkObsHistogram).
//
// A process-wide Default() registry carries the safesense_* families the
// simulator, the campaign engine, and safesensed register at init; it is
// also published to expvar under "safesense_metrics" so /debug/vars shows
// the same numbers.
package obs

import (
	"expvar"
	"sync"
)

// DefBuckets spans 100µs .. 10s, suiting both per-request latencies and
// per-run phase totals.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry, published to expvar on first
// use.
func Default() *Registry {
	defaultOnce.Do(func() {
		defaultReg = NewRegistry()
		defaultReg.PublishExpvar("safesense_metrics")
	})
	return defaultReg
}

// PublishExpvar exposes the registry's snapshot as an expvar variable (it
// shows up in /debug/vars). Publishing the same name twice is a no-op.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
