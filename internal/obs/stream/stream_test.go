package stream

import (
	"fmt"
	"sync"
	"testing"
)

func TestHubPublishSubscribeTopicFilter(t *testing.T) {
	h := NewHub(64)
	sub := h.Subscribe("a", 16)
	defer sub.Close()

	h.Publish("a", "x", []byte("1"))
	h.Publish("b", "x", []byte("2"))
	h.Publish("a", "y", []byte("3"))

	got := drain(sub)
	if len(got) != 2 {
		t.Fatalf("topic-filtered subscriber got %d events, want 2: %+v", len(got), got)
	}
	if got[0].Type != "x" || string(got[0].Data) != "1" || got[1].Type != "y" || string(got[1].Data) != "3" {
		t.Fatalf("unexpected events: %+v", got)
	}
	if got[0].ID >= got[1].ID {
		t.Fatalf("event IDs not increasing: %d then %d", got[0].ID, got[1].ID)
	}
}

func TestHubReplayAfterCursor(t *testing.T) {
	h := NewHub(64)
	for i := 1; i <= 10; i++ {
		h.Publish("c1", "ev", []byte{byte(i)})
	}
	evs := h.Replay("c1", 5)
	if len(evs) != 5 {
		t.Fatalf("replay after 5 returned %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.ID != want {
			t.Fatalf("replay[%d].ID = %d, want %d", i, ev.ID, want)
		}
	}
	if got := h.Replay("other", 0); len(got) != 0 {
		t.Fatalf("replay of unused topic returned %d events", len(got))
	}
}

func TestHubReplayRingEviction(t *testing.T) {
	h := NewHub(8)
	for i := 0; i < 20; i++ {
		h.Publish("t", "ev", nil)
	}
	evs := h.Replay("t", 0)
	if len(evs) != 8 {
		t.Fatalf("ring of 8 retained %d events", len(evs))
	}
	if evs[0].ID != 13 || evs[len(evs)-1].ID != 20 {
		t.Fatalf("retained window [%d, %d], want [13, 20]", evs[0].ID, evs[len(evs)-1].ID)
	}
}

func TestSubscriberClose(t *testing.T) {
	h := NewHub(16)
	s1 := h.Subscribe("", 4)
	s2 := h.Subscribe("", 4)
	if _, _, n := h.Stats(); n != 2 {
		t.Fatalf("subscribers = %d, want 2", n)
	}
	s1.Close()
	s1.Close() // idempotent
	if _, _, n := h.Stats(); n != 1 {
		t.Fatalf("subscribers after close = %d, want 1", n)
	}
	h.Publish("t", "ev", nil)
	if got := drain(s2); len(got) != 1 {
		t.Fatalf("surviving subscriber got %d events, want 1", len(got))
	}
	s2.Close()
}

func TestNilHubIsSafe(t *testing.T) {
	var h *Hub
	if id := h.Publish("t", "ev", nil); id != 0 {
		t.Fatalf("nil hub Publish returned %d", id)
	}
	if evs := h.Replay("", 0); evs != nil {
		t.Fatalf("nil hub Replay returned %v", evs)
	}
	if id := h.LastID(); id != 0 {
		t.Fatalf("nil hub LastID returned %d", id)
	}
}

// TestHubStalledSubscriberShedsLoad is the backpressure contract under
// -race: N concurrent publishers fan out to healthy subscribers and one
// deliberately stalled subscriber (buffer 1, never drained). Publishers
// must never block, healthy subscribers must see every event exactly
// once in ID order, and the stalled subscriber's drop counter must
// prove the shed load.
func TestHubStalledSubscriberShedsLoad(t *testing.T) {
	const (
		publishers = 4
		perPub     = 500
		total      = publishers * perPub
	)
	h := NewHub(64) // much smaller than total: eviction happens live
	stalled := h.Subscribe("", 1)
	defer stalled.Close()

	healthy := make([]*Subscriber, 2)
	results := make([]struct {
		n       int
		ordered bool
	}, len(healthy))
	var consumers sync.WaitGroup
	for i := range healthy {
		healthy[i] = h.Subscribe("", total)
		consumers.Add(1)
		go func(s *Subscriber, slot int) {
			defer consumers.Done()
			var last uint64
			ordered := true
			n := 0
			for ev := range s.Events() {
				if ev.ID <= last {
					ordered = false
				}
				last = ev.ID
				n++
				if n == total {
					break
				}
			}
			results[slot].n = n
			results[slot].ordered = ordered
		}(healthy[i], i)
	}

	var pubs sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubs.Add(1)
		go func(p int) {
			defer pubs.Done()
			for i := 0; i < perPub; i++ {
				h.Publish("load", "ev", []byte(fmt.Sprintf("%d/%d", p, i)))
			}
		}(p)
	}
	pubs.Wait()
	consumers.Wait()
	for i := range healthy {
		healthy[i].Close()
	}

	for i, r := range results {
		if r.n != total {
			t.Fatalf("healthy subscriber %d received %d/%d events", i, r.n, total)
		}
		if !r.ordered {
			t.Fatalf("healthy subscriber %d saw non-increasing event IDs", i)
		}
	}
	// The stalled subscriber holds at most its buffer; everything else
	// must have been dropped, not blocked on.
	if got := stalled.Dropped(); got < total-1 {
		t.Fatalf("stalled subscriber dropped %d events, want >= %d", got, total-1)
	}
	published, dropped, _ := h.Stats()
	if published != total {
		t.Fatalf("hub published %d, want %d", published, total)
	}
	if dropped < total-1 {
		t.Fatalf("hub-wide drop counter %d, want >= %d", dropped, total-1)
	}
}

// drain empties whatever is currently buffered on s.
func drain(s *Subscriber) []*Event {
	var out []*Event
	for {
		select {
		case ev := <-s.Events():
			out = append(out, ev)
		default:
			return out
		}
	}
}
