package stream

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestEncodeFrameGolden(t *testing.T) {
	cases := []struct {
		name string
		f    Frame
		want string
	}{
		{
			name: "full frame",
			f:    Frame{ID: 7, Event: "progress", Data: []byte(`{"done":3}`)},
			want: "id: 7\nevent: progress\ndata: {\"done\":3}\n\n",
		},
		{
			name: "multi-line data",
			f:    Frame{ID: 8, Event: "log", Data: []byte("line one\nline two")},
			want: "id: 8\nevent: log\ndata: line one\ndata: line two\n\n",
		},
		{
			name: "zero id and empty event omitted",
			f:    Frame{Data: []byte("x")},
			want: "data: x\n\n",
		},
		{
			name: "empty data still framed",
			f:    Frame{ID: 9, Event: "done", Data: nil},
			want: "id: 9\nevent: done\ndata: \n\n",
		},
		{
			name: "cr and crlf split like lf",
			f:    Frame{Data: []byte("a\rb\r\nc")},
			want: "data: a\ndata: b\ndata: c\n\n",
		},
		{
			name: "trailing newline yields empty final line",
			f:    Frame{Data: []byte("a\n")},
			want: "data: a\ndata: \n\n",
		},
		{
			name: "newlines stripped from event name",
			f:    Frame{Event: "do\ne", Data: []byte("x")},
			want: "event: doe\ndata: x\n\n",
		},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := EncodeFrame(&buf, tc.f); err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		if buf.String() != tc.want {
			t.Errorf("%s:\n got %q\nwant %q", tc.name, buf.String(), tc.want)
		}
	}
}

func TestDecoderStream(t *testing.T) {
	wire := "" +
		": keepalive\n\n" +
		"id: 1\nevent: progress\ndata: {\"done\":1}\n\n" +
		"data: a\ndata: b\n\n" +
		": keepalive\n\n" +
		"id: 3\nevent: done\ndata: \n\n"
	d := NewDecoder(strings.NewReader(wire))

	f1, err := d.Next()
	if err != nil {
		t.Fatalf("frame 1: %v", err)
	}
	if f1.ID != 1 || f1.Event != "progress" || string(f1.Data) != `{"done":1}` {
		t.Fatalf("frame 1 = %+v", f1)
	}
	f2, err := d.Next()
	if err != nil {
		t.Fatalf("frame 2: %v", err)
	}
	if f2.ID != 0 || f2.Event != "" || string(f2.Data) != "a\nb" {
		t.Fatalf("frame 2 = %+v", f2)
	}
	f3, err := d.Next()
	if err != nil {
		t.Fatalf("frame 3: %v", err)
	}
	if f3.ID != 3 || f3.Event != "done" || string(f3.Data) != "" {
		t.Fatalf("frame 3 = %+v", f3)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("after last frame err = %v, want io.EOF", err)
	}
}

func TestDecoderTruncatedFrame(t *testing.T) {
	d := NewDecoder(strings.NewReader("id: 1\ndata: partial\n"))
	if _, err := d.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestLastEventID(t *testing.T) {
	r := httptest.NewRequest(http.MethodGet, "/stream", nil)
	if _, ok := LastEventID(r); ok {
		t.Fatal("bare request should have no cursor")
	}
	r.Header.Set("Last-Event-ID", "41")
	id, ok := LastEventID(r)
	if !ok || id != 41 {
		t.Fatalf("header cursor = (%d, %v), want (41, true)", id, ok)
	}
	r2 := httptest.NewRequest(http.MethodGet, "/stream?last_event_id=9", nil)
	id, ok = LastEventID(r2)
	if !ok || id != 9 {
		t.Fatalf("query cursor = (%d, %v), want (9, true)", id, ok)
	}
	r2.Header.Set("Last-Event-ID", "bogus")
	if _, ok := LastEventID(r2); ok {
		t.Fatal("invalid header cursor should not parse")
	}
}

// TestServeResumeAndDone drives Serve end to end: a first client reads
// two live events and disconnects; a second client resumes with
// Last-Event-ID and must see exactly the missed events plus the final
// one, which Done uses to end the stream.
func TestServeResumeAndDone(t *testing.T) {
	h := NewHub(64)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		opt := ServeOptions{Topic: "c1", Keepalive: time.Hour,
			Done: func(ev *Event) bool { return ev.Type == "done" }}
		if after, ok := LastEventID(r); ok {
			opt.Replay, opt.After = true, after
		}
		_ = Serve(w, r, h, opt)
	}))
	defer srv.Close()

	h.Publish("c1", "progress", []byte("1"))
	h.Publish("c1", "progress", []byte("2"))
	h.Publish("c1", "progress", []byte("3"))
	h.Publish("other", "noise", nil)
	h.Publish("c1", "done", []byte("final"))

	// Fresh client with a cursor: replays 2..done and terminates.
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set("Last-Event-ID", "1")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("resume request: %v", err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	d := NewDecoder(res.Body)
	var types []string
	var datas []string
	for {
		f, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		types = append(types, f.Event)
		datas = append(datas, string(f.Data))
	}
	if want := []string{"progress", "progress", "done"}; !equalStrings(types, want) {
		t.Fatalf("resumed stream events = %v, want %v", types, want)
	}
	if datas[0] != "2" || datas[1] != "3" || datas[2] != "final" {
		t.Fatalf("resumed stream data = %v", datas)
	}

	// A client with no cursor on a finished topic would hang waiting for
	// live events; callers handle that by checking terminal state before
	// calling Serve. Here, verify live delivery instead.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req2, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	res2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatalf("live request: %v", err)
	}
	defer res2.Body.Close()
	go func() {
		time.Sleep(50 * time.Millisecond)
		h.Publish("c1", "done", []byte("live"))
	}()
	f, err := NewDecoder(res2.Body).Next()
	if err != nil {
		t.Fatalf("live decode: %v", err)
	}
	if f.Event != "done" || string(f.Data) != "live" {
		t.Fatalf("live frame = %+v", f)
	}
}

func TestServeKeepalive(t *testing.T) {
	h := NewHub(16)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = Serve(w, r, h, ServeOptions{Topic: "idle", Keepalive: 5 * time.Millisecond})
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	defer res.Body.Close()
	buf := make([]byte, 64)
	n, err := res.Body.Read(buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !strings.Contains(string(buf[:n]), ": keepalive") {
		t.Fatalf("idle stream produced %q, want keepalive comment", buf[:n])
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
