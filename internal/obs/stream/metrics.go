package stream

import "safesense/internal/obs"

// Hub metrics on the default registry, exposed by safesensed at
// /metrics. Deliberately label-free: stream topics are campaign IDs
// (unbounded cardinality), so per-topic detail belongs in status
// payloads, not metric labels (the metriclabels analyzer's contract).
var (
	metricSubscribers = obs.Default().Gauge(
		"safesense_stream_subscribers",
		"Hub subscribers (SSE streams and internal taps) currently registered.")
	metricDropped = obs.Default().Counter(
		"safesense_stream_dropped_events_total",
		"Events dropped because a subscriber's buffer was full (load shed instead of backpressure).")
	metricPublished = obs.Default().Counter(
		"safesense_stream_events_published_total",
		"Events published to the stream hub.")
)
