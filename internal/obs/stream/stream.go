// Package stream is the live-observability event bus: a bounded
// broadcast hub with never-blocking publish, plus the SSE wire codec
// behind safesensed's streaming endpoints.
//
// Design constraints (DESIGN.md §11):
//
//   - Publish never blocks and never waits on a subscriber, so a
//     producer adjacent to the //safesense:hotpath sim loop can publish
//     regardless of subscriber health. Event IDs come from one atomic
//     counter and the event lands in a fixed-size replay ring of atomic
//     pointers — no lock is taken on the publish path.
//   - Every subscriber owns a bounded buffer. A subscriber that stops
//     draining loses events: the hub counts the drops (per subscriber
//     and globally on /metrics) instead of applying backpressure.
//   - The replay ring is what makes SSE `Last-Event-ID` resume work: a
//     reconnecting client replays every retained event newer than its
//     cursor. Events older than the ring are gone for good; the client
//     detects the gap from the jump in event IDs.
package stream

import (
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultRingSize is the replay-ring capacity when NewHub is given a
// non-positive size.
const DefaultRingSize = 1024

// DefaultSubscriberBuffer is the per-subscriber buffer capacity when
// Subscribe is given a non-positive size.
const DefaultSubscriberBuffer = 256

// Event is one published hub event. Events are immutable once
// published: neither the hub nor subscribers may mutate the fields, and
// the publisher must not reuse the Data slice afterwards.
type Event struct {
	ID    uint64 `json:"id"`
	Topic string `json:"topic"`
	Type  string `json:"type"`
	Data  []byte `json:"data,omitempty"`
}

// Hub is a bounded broadcast bus. The zero value is not usable; build
// one with NewHub. Publish and Replay are safe on a nil *Hub (no-ops),
// so optional wiring can skip nil checks.
type Hub struct {
	ring []atomic.Pointer[Event] // replay ring; len is a power of two
	mask uint64
	seq  atomic.Uint64 // last assigned event ID; IDs start at 1

	// subs is swapped copy-on-write under mu; Publish only loads it.
	mu   sync.Mutex
	subs atomic.Pointer[[]*Subscriber]

	dropped atomic.Uint64
}

// NewHub returns a hub whose replay ring retains at least ringSize
// events (rounded up to a power of two; non-positive means
// DefaultRingSize).
func NewHub(ringSize int) *Hub {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	n := 1
	for n < ringSize {
		n <<= 1
	}
	h := &Hub{ring: make([]atomic.Pointer[Event], n), mask: uint64(n - 1)}
	h.subs.Store(&[]*Subscriber{})
	return h
}

// Publish assigns the next event ID, retains the event in the replay
// ring, and offers it to every matching subscriber. It never blocks: a
// subscriber with a full buffer drops the event and its drop counter
// (plus safesense_stream_dropped_events_total) advances. Returns the
// assigned ID, or 0 on a nil hub.
func (h *Hub) Publish(topic, typ string, data []byte) uint64 {
	if h == nil {
		return 0
	}
	ev := &Event{Topic: topic, Type: typ, Data: data}
	ev.ID = h.seq.Add(1)
	h.ring[(ev.ID-1)&h.mask].Store(ev)
	metricPublished.With().Inc()
	for _, s := range *h.subs.Load() {
		if s.topic != "" && s.topic != topic {
			continue
		}
		if s.closed.Load() {
			continue
		}
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
			h.dropped.Add(1)
			metricDropped.With().Inc()
		}
	}
	return ev.ID
}

// LastID returns the most recently assigned event ID (0 before the
// first publish, or on a nil hub).
func (h *Hub) LastID() uint64 {
	if h == nil {
		return 0
	}
	return h.seq.Load()
}

// Replay returns the retained events with ID > after that match topic
// ("" matches all), oldest first. Events already evicted from the ring
// are not recoverable; callers see the loss as an ID gap.
func (h *Hub) Replay(topic string, after uint64) []*Event {
	if h == nil {
		return nil
	}
	latest := h.seq.Load()
	var out []*Event
	for i := range h.ring {
		ev := h.ring[i].Load()
		if ev == nil || ev.ID <= after || ev.ID > latest {
			continue
		}
		if topic != "" && ev.Topic != topic {
			continue
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats reports the total events published, total events dropped across
// all subscribers, and the current subscriber count.
func (h *Hub) Stats() (published, dropped uint64, subscribers int) {
	if h == nil {
		return 0, 0, 0
	}
	return h.seq.Load(), h.dropped.Load(), len(*h.subs.Load())
}

// Subscriber is one bounded consumer of hub events. Receive from
// Events() promptly or lose events — the hub never blocks on you.
type Subscriber struct {
	hub     *Hub
	topic   string
	ch      chan *Event
	dropped atomic.Uint64
	closed  atomic.Bool
}

// Subscribe registers a consumer for topic ("" means every topic) with
// the given buffer capacity (non-positive means
// DefaultSubscriberBuffer). Only events published after registration
// are delivered; use Replay for history.
func (h *Hub) Subscribe(topic string, buffer int) *Subscriber {
	if buffer <= 0 {
		buffer = DefaultSubscriberBuffer
	}
	s := &Subscriber{hub: h, topic: topic, ch: make(chan *Event, buffer)}
	h.mu.Lock()
	old := *h.subs.Load()
	next := make([]*Subscriber, len(old), len(old)+1)
	copy(next, old)
	next = append(next, s)
	h.subs.Store(&next)
	h.mu.Unlock()
	metricSubscribers.With().Add(1)
	return s
}

// Events is the delivery channel. It is never closed: consumers stop by
// selecting on their own context and calling Close.
func (s *Subscriber) Events() <-chan *Event { return s.ch }

// Dropped returns how many events this subscriber lost to a full
// buffer.
func (s *Subscriber) Dropped() uint64 { return s.dropped.Load() }

// Close unregisters the subscriber. Idempotent. The events channel is
// left open (a concurrent Publish may still hold the old subscriber
// list); buffered events become garbage with the Subscriber.
func (s *Subscriber) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	h := s.hub
	h.mu.Lock()
	old := *h.subs.Load()
	next := make([]*Subscriber, 0, len(old))
	for _, o := range old {
		if o != s {
			next = append(next, o)
		}
	}
	h.subs.Store(&next)
	h.mu.Unlock()
	metricSubscribers.With().Add(-1)
}
