package stream

import (
	"bytes"
	"io"
	"testing"
)

// FuzzSSEFrame round-trips arbitrary frames through the encoder and
// decoder. The oracle: decoding an encoded frame yields the same ID,
// the event name with line terminators stripped (they cannot be
// framed), and the data with CR / CRLF normalized to LF (SSE line
// splitting erases the distinction by design). The stream must also end
// cleanly after exactly one frame.
func FuzzSSEFrame(f *testing.F) {
	f.Add(uint64(1), "progress", []byte(`{"done":3}`))
	f.Add(uint64(0), "", []byte{})
	f.Add(uint64(42), "multi line", []byte("a\nb\r\nc\rd"))
	f.Add(uint64(7), "colon:name", []byte("data: nested\n\nmore"))
	f.Add(^uint64(0), "ev\nil", []byte("\r\n\r\n"))
	f.Fuzz(func(t *testing.T, id uint64, event string, data []byte) {
		var buf bytes.Buffer
		if err := EncodeFrame(&buf, Frame{ID: id, Event: event, Data: data}); err != nil {
			t.Fatalf("encode: %v", err)
		}
		wire := buf.String()
		d := NewDecoder(&buf)
		got, err := d.Next()
		if err != nil {
			t.Fatalf("decode of %q: %v", wire, err)
		}
		if got.ID != id {
			t.Fatalf("ID round-trip: got %d, want %d (wire %q)", got.ID, id, wire)
		}
		if want := stripLineBreaks(event); got.Event != want {
			t.Fatalf("event round-trip: got %q, want %q (wire %q)", got.Event, want, wire)
		}
		if want := normalizeNewlines(data); !bytes.Equal(got.Data, want) {
			t.Fatalf("data round-trip: got %q, want %q (wire %q)", got.Data, want, wire)
		}
		if _, err := d.Next(); err != io.EOF {
			t.Fatalf("stream not clean after one frame: %v (wire %q)", err, wire)
		}
	})
}

func stripLineBreaks(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' || s[i] == '\r' {
			continue
		}
		out = append(out, s[i])
	}
	return string(out)
}

func normalizeNewlines(b []byte) []byte {
	out := make([]byte, 0, len(b))
	for i := 0; i < len(b); i++ {
		if b[i] == '\r' {
			out = append(out, '\n')
			if i+1 < len(b) && b[i+1] == '\n' {
				i++
			}
			continue
		}
		out = append(out, b[i])
	}
	return out
}
