package stream

import (
	"bufio"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Frame is one server-sent event on the wire:
//
//	id: 7
//	event: progress
//	data: {"done":3}
//	<blank line>
//
// Multi-line data encodes as one `data:` line per line; the decoder
// joins them back with "\n". A zero ID omits the id line (the client's
// Last-Event-ID cursor does not advance).
type Frame struct {
	ID    uint64
	Event string
	Data  []byte
}

// AppendFrame appends the SSE encoding of f to dst and returns the
// extended slice. CR, LF, and CRLF in Data all split data lines (they
// decode uniformly as "\n"); CR and LF are stripped from the event name
// since they cannot be framed.
func AppendFrame(dst []byte, f Frame) []byte {
	if f.ID != 0 {
		dst = append(dst, "id: "...)
		dst = strconv.AppendUint(dst, f.ID, 10)
		dst = append(dst, '\n')
	}
	if f.Event != "" {
		dst = append(dst, "event: "...)
		dst = appendEventName(dst, f.Event)
		dst = append(dst, '\n')
	}
	data := f.Data
	for {
		line, rest, more := cutLine(data)
		dst = append(dst, "data: "...)
		dst = append(dst, line...)
		dst = append(dst, '\n')
		if !more {
			break
		}
		data = rest
	}
	dst = append(dst, '\n')
	return dst
}

// EncodeFrame writes the SSE encoding of f to w.
func EncodeFrame(w io.Writer, f Frame) error {
	_, err := w.Write(AppendFrame(nil, f))
	return err
}

// WriteKeepalive writes an SSE comment; clients ignore it, idle proxies
// and peers see traffic.
func WriteKeepalive(w io.Writer) error {
	_, err := io.WriteString(w, ": keepalive\n\n")
	return err
}

// appendEventName appends name with CR and LF stripped — an event name
// cannot span lines.
func appendEventName(dst []byte, name string) []byte {
	for i := 0; i < len(name); i++ {
		if name[i] == '\n' || name[i] == '\r' {
			continue
		}
		dst = append(dst, name[i])
	}
	return dst
}

// cutLine splits b at the first line terminator (LF, CRLF, or lone CR).
// more reports whether a terminator was found (rest may be empty: a
// trailing terminator yields a final empty line).
func cutLine(b []byte) (line, rest []byte, more bool) {
	for i := 0; i < len(b); i++ {
		switch b[i] {
		case '\n':
			return b[:i], b[i+1:], true
		case '\r':
			if i+1 < len(b) && b[i+1] == '\n' {
				return b[:i], b[i+2:], true
			}
			return b[:i], b[i+1:], true
		}
	}
	return b, nil, false
}

// Decoder reads SSE frames back off a stream; it understands exactly
// the subset EncodeFrame emits plus comment lines, which it skips.
type Decoder struct {
	r *bufio.Reader
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r)}
}

// Next returns the next frame. It returns io.EOF when the stream ends
// cleanly between frames, and io.ErrUnexpectedEOF when it ends inside
// one.
func (d *Decoder) Next() (Frame, error) {
	var f Frame
	var data []string
	pending := false
	for {
		line, err := d.r.ReadString('\n')
		if err != nil {
			if err == io.EOF && !pending && line == "" {
				return Frame{}, io.EOF
			}
			if err == io.EOF {
				return Frame{}, io.ErrUnexpectedEOF
			}
			return Frame{}, err
		}
		line = strings.TrimSuffix(line, "\n")
		line = strings.TrimSuffix(line, "\r")
		if line == "" {
			if !pending {
				continue // stray blank line between frames
			}
			if data != nil {
				f.Data = []byte(strings.Join(data, "\n"))
			}
			return f, nil
		}
		if strings.HasPrefix(line, ":") {
			continue // comment (keepalive)
		}
		field, value, _ := strings.Cut(line, ":")
		value = strings.TrimPrefix(value, " ")
		switch field {
		case "id":
			f.ID, _ = strconv.ParseUint(value, 10, 64)
		case "event":
			f.Event = value
		case "data":
			data = append(data, value)
		default:
			continue // unknown field: ignore per SSE spec, not pending
		}
		pending = true
	}
}

// LastEventID extracts the client's resume cursor from the
// Last-Event-ID header (set by EventSource on reconnect) or, as a
// curl-friendly fallback, the last_event_id query parameter. ok is
// false when neither carries a valid decimal ID.
func LastEventID(r *http.Request) (id uint64, ok bool) {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("last_event_id")
	}
	if raw == "" {
		return 0, false
	}
	id, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// ServeOptions configures one SSE response served off a hub.
type ServeOptions struct {
	// Topic filters delivery ("" streams every topic).
	Topic string
	// Replay, when true, first replays retained events with ID > After.
	// When false the stream starts at "now".
	Replay bool
	// After is the resume cursor used when Replay is set.
	After uint64
	// Keepalive is the comment cadence on an idle stream (0 means 15s).
	Keepalive time.Duration
	// Buffer is the subscriber buffer capacity (0 means
	// DefaultSubscriberBuffer).
	Buffer int
	// Init, when non-nil, runs after headers are sent and replay is
	// done, before live delivery — the place to write an orientation
	// frame (e.g. current status).
	Init func(w io.Writer) error
	// Done, when non-nil, reports that ev is the stream's final event:
	// Serve flushes it and returns nil.
	Done func(ev *Event) bool
}

// errNoFlusher reports a ResponseWriter that cannot stream.
var errNoFlusher = errors.New("stream: ResponseWriter does not implement http.Flusher")

// Serve writes an SSE response from h until the client disconnects or
// Done says the stream is complete. Publish-side slowness policy
// applies: if this client stops reading, events drop (counted) rather
// than backing up the publisher; the client sees the loss as an event
// ID gap.
func Serve(w http.ResponseWriter, r *http.Request, h *Hub, opt ServeOptions) error {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return errNoFlusher
	}
	hdr := w.Header()
	hdr.Set("Content-Type", "text/event-stream")
	hdr.Set("Cache-Control", "no-cache")
	hdr.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	sub := h.Subscribe(opt.Topic, opt.Buffer)
	defer sub.Close()

	last := opt.After
	if opt.Replay {
		for _, ev := range h.Replay(opt.Topic, opt.After) {
			if err := EncodeFrame(w, Frame{ID: ev.ID, Event: ev.Type, Data: ev.Data}); err != nil {
				return err
			}
			last = ev.ID
			if opt.Done != nil && opt.Done(ev) {
				fl.Flush()
				return nil
			}
		}
	} else {
		last = h.LastID()
	}
	if opt.Init != nil {
		if err := opt.Init(w); err != nil {
			return err
		}
	}
	fl.Flush()

	keepalive := opt.Keepalive
	if keepalive <= 0 {
		keepalive = 15 * time.Second
	}
	tick := time.NewTicker(keepalive)
	defer tick.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case ev := <-sub.Events():
			if ev.ID <= last {
				continue // already sent during replay
			}
			last = ev.ID
			if err := EncodeFrame(w, Frame{ID: ev.ID, Event: ev.Type, Data: ev.Data}); err != nil {
				return err
			}
			fl.Flush()
			if opt.Done != nil && opt.Done(ev) {
				return nil
			}
		case <-tick.C:
			if err := WriteKeepalive(w); err != nil {
				return err
			}
			fl.Flush()
		}
	}
}
