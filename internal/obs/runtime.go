package obs

import (
	"math"
	"runtime/metrics"
)

// This file bridges the Go runtime's own telemetry (runtime/metrics)
// into the obs registry: heap size, goroutine count, GC cycle/pause
// accounting, and scheduler latency quantiles. The same snapshot feeds
// two consumers — the safesensed /metrics endpoint (refreshed per
// scrape by a RuntimeCollector) and the internal/perf runner (per-
// repetition deltas in BENCH documents).

// runtime/metrics sample names read by ReadRuntime.
const (
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmGoroutines = "/sched/goroutines:goroutines"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGCPauses   = "/sched/pauses/total/gc:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
)

// RuntimeSnapshot is a point-in-time read of runtime health. Cycle and
// pause fields are cumulative since process start, so consumers diff
// two snapshots; quantiles summarize the full distribution so far.
type RuntimeSnapshot struct {
	// HeapBytes is the live heap object memory (bytes).
	HeapBytes float64
	// Goroutines is the live goroutine count.
	Goroutines float64
	// GCCycles is the cumulative completed GC cycle count.
	GCCycles float64
	// GCPauseTotalSeconds approximates cumulative stop-the-world pause
	// time (bucket-midpoint sum over the runtime's pause histogram).
	GCPauseTotalSeconds float64
	// GCPauseP50Seconds / GCPauseP99Seconds / GCPauseMaxSeconds
	// summarize the pause distribution.
	GCPauseP50Seconds, GCPauseP99Seconds, GCPauseMaxSeconds float64
	// SchedLatencyP50Seconds / SchedLatencyP99Seconds /
	// SchedLatencyMaxSeconds summarize how long runnable goroutines
	// waited for a thread — the first number to look at when campaign
	// workers starve.
	SchedLatencyP50Seconds, SchedLatencyP99Seconds, SchedLatencyMaxSeconds float64
}

// ReadRuntime samples the runtime. Unsupported metric names (older
// toolchains) leave their fields zero rather than failing: telemetry
// must never take the process down.
func ReadRuntime() RuntimeSnapshot {
	samples := []metrics.Sample{
		{Name: rmHeapBytes},
		{Name: rmGoroutines},
		{Name: rmGCCycles},
		{Name: rmGCPauses},
		{Name: rmSchedLat},
	}
	metrics.Read(samples)

	var s RuntimeSnapshot
	s.HeapBytes = uint64Value(samples[0])
	s.Goroutines = uint64Value(samples[1])
	s.GCCycles = uint64Value(samples[2])
	if h := histValue(samples[3]); h != nil {
		s.GCPauseTotalSeconds = histApproxSum(h)
		s.GCPauseP50Seconds = histQuantile(h, 0.50)
		s.GCPauseP99Seconds = histQuantile(h, 0.99)
		s.GCPauseMaxSeconds = histMax(h)
	}
	if h := histValue(samples[4]); h != nil {
		s.SchedLatencyP50Seconds = histQuantile(h, 0.50)
		s.SchedLatencyP99Seconds = histQuantile(h, 0.99)
		s.SchedLatencyMaxSeconds = histMax(h)
	}
	return s
}

func uint64Value(s metrics.Sample) float64 {
	if s.Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return float64(s.Value.Uint64())
}

func histValue(s metrics.Sample) *metrics.Float64Histogram {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return nil
	}
	return s.Value.Float64Histogram()
}

// bucketMid returns a representative value for bucket i of h
// (Counts[i] spans Buckets[i]..Buckets[i+1]); infinite edges fall back
// to the finite boundary.
func bucketMid(h *metrics.Float64Histogram, i int) float64 {
	lo, hi := h.Buckets[i], h.Buckets[i+1]
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, 1):
		return lo
	}
	return (lo + hi) / 2
}

// histApproxSum estimates the histogram's total mass as sum of
// count x bucket midpoint — exact enough for pause-time deltas.
func histApproxSum(h *metrics.Float64Histogram) float64 {
	var sum float64
	for i, c := range h.Counts {
		if c > 0 {
			sum += float64(c) * bucketMid(h, i)
		}
	}
	return sum
}

// histQuantile returns the smallest bucket boundary at or above the
// q-quantile of the histogram's observations (0 when empty).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			return bucketMid(h, i)
		}
	}
	return bucketMid(h, len(h.Counts)-1)
}

// histMax returns the highest occupied bucket's representative value.
func histMax(h *metrics.Float64Histogram) float64 {
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] > 0 {
			return bucketMid(h, i)
		}
	}
	return 0
}

// RuntimeCollector publishes a RuntimeSnapshot as go_* gauge families.
// Collect refreshes them; safesensed calls it on every /metrics scrape
// so the exposition always carries current runtime health.
type RuntimeCollector struct {
	read func() RuntimeSnapshot

	heap       *Gauge
	goroutines *Gauge
	gcCycles   *Gauge
	gcPause    *GaugeVec // quantile: p50 | p99 | max
	schedLat   *GaugeVec // quantile: p50 | p99 | max
}

// Quantile label values of the go_gc_pause_seconds and
// go_sched_latency_seconds families.
const (
	QuantileP50 = "p50"
	QuantileP99 = "p99"
	QuantileMax = "max"
)

// NewRuntimeCollector registers the go_* families on r and returns the
// collector (registration is idempotent per registry).
func NewRuntimeCollector(r *Registry) *RuntimeCollector {
	return &RuntimeCollector{
		read: ReadRuntime,
		heap: r.Gauge("go_heap_bytes",
			"Live heap object memory in bytes (runtime/metrics).").With(),
		goroutines: r.Gauge("go_goroutines",
			"Live goroutine count.").With(),
		gcCycles: r.Gauge("go_gc_cycles",
			"Completed GC cycles since process start.").With(),
		gcPause: r.Gauge("go_gc_pause_seconds",
			"GC stop-the-world pause distribution since process start, by quantile.",
			"quantile"),
		schedLat: r.Gauge("go_sched_latency_seconds",
			"Time runnable goroutines waited for a thread, by quantile.",
			"quantile"),
	}
}

// Collect samples the runtime and refreshes every gauge.
func (c *RuntimeCollector) Collect() {
	s := c.read()
	c.heap.Set(s.HeapBytes)
	c.goroutines.Set(s.Goroutines)
	c.gcCycles.Set(s.GCCycles)
	c.gcPause.With(QuantileP50).Set(s.GCPauseP50Seconds)
	c.gcPause.With(QuantileP99).Set(s.GCPauseP99Seconds)
	c.gcPause.With(QuantileMax).Set(s.GCPauseMaxSeconds)
	c.schedLat.With(QuantileP50).Set(s.SchedLatencyP50Seconds)
	c.schedLat.With(QuantileP99).Set(s.SchedLatencyP99Seconds)
	c.schedLat.With(QuantileMax).Set(s.SchedLatencyMaxSeconds)
}
