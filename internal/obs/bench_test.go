package obs

import "testing"

// BenchmarkObsCounter pins the counter hot path (cached child, atomic
// add); the acceptance bar is < 100 ns/op.
func BenchmarkObsCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "bench", "k").With("v")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != float64(b.N) {
		b.Fatalf("count = %g", c.Value())
	}
}

// BenchmarkObsCounterWith includes the label resolution (sync.Map load)
// that callers pay when they do not cache the child.
func BenchmarkObsCounterWith(b *testing.B) {
	r := NewRegistry()
	cv := r.Counter("bench_with_total", "bench", "k")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cv.With("v").Inc()
	}
}

// BenchmarkObsHistogram pins Observe: bucket search + two atomic adds.
func BenchmarkObsHistogram(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "bench", nil, "k").With("v")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
	if h.Count() != uint64(b.N) {
		b.Fatalf("count = %d", h.Count())
	}
}

func BenchmarkObsCounterParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_par_total", "bench").With()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
