package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the exposition format: counter, gauge,
// and histogram rendering, label ordering, and label-value escaping.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()

	reqs := r.Counter("http_requests_total", "Total HTTP requests.", "method", "route")
	reqs.With("GET", "/healthz").Add(3)
	reqs.With("POST", "/v1/run").Inc()

	inFlight := r.Gauge("http_in_flight", "Requests currently being served.")
	inFlight.With().Set(2)

	lat := r.Histogram("request_seconds", "Request latency.", []float64{0.1, 1}, "route")
	h := lat.With("/v1/run")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	esc := r.Counter("odd_labels_total", `Says "hi" with a \ and`+"\na newline.", "what")
	esc.With(`quo"te\slash` + "\nnewline").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP http_in_flight Requests currently being served.
# TYPE http_in_flight gauge
http_in_flight 2
# HELP http_requests_total Total HTTP requests.
# TYPE http_requests_total counter
http_requests_total{method="GET",route="/healthz"} 3
http_requests_total{method="POST",route="/v1/run"} 1
# HELP odd_labels_total Says "hi" with a \\ and\na newline.
# TYPE odd_labels_total counter
odd_labels_total{what="quo\"te\\slash\nnewline"} 1
# HELP request_seconds Request latency.
# TYPE request_seconds histogram
request_seconds_bucket{route="/v1/run",le="0.1"} 1
request_seconds_bucket{route="/v1/run",le="1"} 2
request_seconds_bucket{route="/v1/run",le="+Inf"} 3
request_seconds_sum{route="/v1/run"} 5.55
request_seconds_count{route="/v1/run"} 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestUnlabeledFamiliesRenderAtZero(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_done_total", "Jobs done.")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "jobs_done_total 0\n") {
		t.Errorf("unlabeled counter missing zero sample:\n%s", sb.String())
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c", "k")
	c.With("a").Add(2)
	c.With("b").Inc()
	hv := r.Histogram("h_seconds", "h", []float64{1})
	hv.With().Observe(0.5)
	hv.With().Observe(3)

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("families = %d, want 2", len(snap))
	}
	// Sorted by name: c_total then h_seconds.
	cs := snap[0]
	if cs.Name != "c_total" || cs.Kind != "counter" || len(cs.Metrics) != 2 {
		t.Fatalf("counter snapshot = %+v", cs)
	}
	if cs.Metrics[0].Labels["k"] != "a" || cs.Metrics[0].Value != 2 {
		t.Errorf("counter child a = %+v", cs.Metrics[0])
	}
	hs := snap[1]
	if hs.Kind != "histogram" || len(hs.Metrics) != 1 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
	m := hs.Metrics[0]
	if m.Count != 2 || m.Sum != 3.5 || len(m.Buckets) != 2 {
		t.Fatalf("histogram metric = %+v", m)
	}
	if m.Buckets[0].Count != 1 || m.Buckets[1].Count != 2 {
		t.Errorf("cumulative buckets = %+v", m.Buckets)
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines so
// `go test -race` vets the lock-free hot path.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	cv := r.Counter("conc_total", "c", "worker")
	gv := r.Gauge("conc_gauge", "g")
	hv := r.Histogram("conc_seconds", "h", []float64{0.5, 1, 2}, "worker")

	const goroutines, iters = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			worker := string(rune('a' + id))
			c := cv.With(worker)
			h := hv.With(worker)
			for i := 0; i < iters; i++ {
				c.Inc()
				gv.With().Add(1)
				h.Observe(float64(i%3) + 0.25)
				if i%100 == 0 {
					// Concurrent reads while writers are hot.
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	var total float64
	for _, m := range r.Snapshot() {
		if m.Name == "conc_total" {
			for _, child := range m.Metrics {
				total += child.Value
			}
		}
	}
	if want := float64(goroutines * iters); total != want {
		t.Errorf("counter total = %g, want %g", total, want)
	}
	if got := gv.With().Value(); got != float64(goroutines*iters) {
		t.Errorf("gauge = %g", got)
	}
	var count uint64
	for _, w := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		count += hv.With(w).Count()
	}
	if count != goroutines*iters {
		t.Errorf("histogram count = %d", count)
	}
}

func TestReRegistrationReturnsSameFamily(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "a", "k")
	b := r.Counter("same_total", "b", "k")
	a.With("x").Inc()
	if got := b.With("x").Value(); got != 1 {
		t.Errorf("re-registered family is not shared: %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch should panic")
		}
	}()
	r.Gauge("same_total", "now a gauge", "k")
}

func TestTimerAndSpan(t *testing.T) {
	tm := NewTimer("phase_x")
	for i := 0; i < 3; i++ {
		sp := tm.Start()
		time.Sleep(time.Millisecond)
		if d := sp.End(); d <= 0 {
			t.Fatalf("span duration = %v", d)
		}
	}
	if tm.Calls() != 3 || tm.Total() < 3*time.Millisecond {
		t.Errorf("timer = %d calls, %v total", tm.Calls(), tm.Total())
	}
	if tm.Name() != "phase_x" {
		t.Errorf("name = %q", tm.Name())
	}
	tm.Reset()
	if tm.Calls() != 0 || tm.Total() != 0 {
		t.Error("reset did not zero the timer")
	}

	r := NewRegistry()
	h := r.Histogram("span_seconds", "", nil).With()
	sp := StartSpan(h)
	time.Sleep(time.Millisecond)
	sp.End()
	if h.Count() != 1 || h.Sum() <= 0 {
		t.Errorf("span histogram count=%d sum=%g", h.Count(), h.Sum())
	}

	var zero Span
	if zero.End() != 0 {
		t.Error("zero span must be inert")
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("expvar_total", "x").With().Inc()
	// Second publish under the same name must not panic.
	r.PublishExpvar("obs_test_metrics")
	r.PublishExpvar("obs_test_metrics")
}
