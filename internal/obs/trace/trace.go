// Package trace is the stdlib-only tracing half of the observability
// layer: randomly-generated trace and span IDs with parent linkage,
// context propagation helpers, and a bounded in-memory ring-buffer store
// with head sampling. It deliberately mirrors the shape (not the wire
// format) of W3C/OTel tracing — a trace is the tree of spans sharing one
// trace ID — while staying small enough to audit in one sitting.
//
// The package also integrates with runtime/trace: when the Go execution
// tracer is running (`safesensed -pprof-addr` + /debug/pprof/trace, or a
// test's -trace flag), every root span opens a runtime/trace Task and
// every child span opens a Region, so `go tool trace` shows campaign
// jobs and simulation runs natively in its user-defined-tasks view.
//
// Spans are single-goroutine objects (start, annotate, and end one span
// on the same goroutine); the store they flush into is safe for
// concurrent use. A span started without a parent in its context is
// inert: every method is a no-op, so library code can instrument
// unconditionally and pay nothing when nobody is tracing.
package trace

import (
	"context"
	"math/rand/v2"
	rt "runtime/trace"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// clock and randUint64 are the package's injected nondeterminism
// seams: trace timing and IDs are observability metadata, never
// analysis input, and routing them through package-level vars keeps
// the transitive determinism lint exact about where wall time and
// global randomness enter — callers in the scenario pipeline inherit
// no taint from instrumenting. Tests freeze them for stable output.
var (
	clock      = time.Now
	randUint64 = rand.Uint64
)

// NewTraceID returns a fresh 16-hex-digit trace ID.
func NewTraceID() string { return formatID(randUint64()) }

// NewSpanID returns a fresh 16-hex-digit span ID.
func NewSpanID() string { return formatID(randUint64()) }

// formatID renders a non-zero 64-bit ID as fixed-width hex.
func formatID(v uint64) string {
	if v == 0 {
		v = 1
	}
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is a completed span as kept by the Store and rendered by
// the /debug/traces endpoint.
type SpanRecord struct {
	TraceID         string    `json:"trace_id"`
	SpanID          string    `json:"span_id"`
	ParentID        string    `json:"parent_id,omitempty"`
	Name            string    `json:"name"`
	Start           time.Time `json:"start"`
	DurationSeconds float64   `json:"duration_seconds"`
	Attrs           []Attr    `json:"attrs,omitempty"`
}

// Span is one in-flight region of work. The zero value (and any span
// started without a traced parent) is inert.
type Span struct {
	store   *Store
	rec     SpanRecord
	sampled bool
	start   time.Time
	task    *rt.Task
	region  *rt.Region
	ended   bool
}

// active reports whether the span does anything at all.
func (s *Span) active() bool {
	return s != nil && (s.rec.TraceID != "" || s.task != nil || s.region != nil)
}

// TraceID returns the span's trace ID ("" for an inert span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.rec.TraceID
}

// SpanID returns the span's own ID ("" for an inert span).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.rec.SpanID
}

// Sampled reports whether the span will be kept by the store on End.
func (s *Span) Sampled() bool { return s != nil && s.sampled }

// SetAttr annotates the span. Inert spans ignore the call.
func (s *Span) SetAttr(key, value string) {
	if !s.active() || s.ended {
		return
	}
	s.rec.Attrs = append(s.rec.Attrs, Attr{Key: key, Value: value})
}

// SetAttrInt annotates the span with an integer value.
func (s *Span) SetAttrInt(key string, value int64) {
	s.SetAttr(key, strconv.FormatInt(value, 10))
}

// End closes the span, flushes it into the store when sampled, and
// returns the elapsed wall time. Ending an inert or already-ended span
// returns 0.
func (s *Span) End() time.Duration {
	if !s.active() || s.ended {
		return 0
	}
	s.ended = true
	d := clock().Sub(s.start)
	if s.region != nil {
		s.region.End()
	}
	if s.task != nil {
		s.task.End()
	}
	if s.sampled && s.store != nil {
		s.rec.DurationSeconds = d.Seconds()
		s.store.add(s.rec)
	}
	return d
}

// ctxKey carries the current span through a context.
type ctxKey struct{}

// FromContext returns the current span, or nil when the context is
// untraced.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// ID returns the trace ID carried by the context ("" when untraced).
// This is what log records and error responses should attach.
func ID(ctx context.Context) string { return FromContext(ctx).TraceID() }

// StartSpan opens a child of the context's current span. Without a
// traced parent the returned span is inert and the context is returned
// unchanged, so instrumented code costs nothing when nobody traces it.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil || !parent.active() {
		return ctx, nil
	}
	s := &Span{
		store:   parent.store,
		sampled: parent.sampled,
		start:   clock(),
		rec: SpanRecord{
			TraceID:  parent.rec.TraceID,
			SpanID:   NewSpanID(),
			ParentID: parent.rec.SpanID,
			Name:     name,
			Start:    clock(),
		},
	}
	if rt.IsEnabled() {
		s.region = rt.StartRegion(ctx, name)
	}
	return context.WithValue(ctx, ctxKey{}, s), s
}

// Sampler decides at trace start (head sampling) whether a new root
// span's trace is recorded. Implementations must be safe for concurrent
// use.
type Sampler interface {
	Sample(traceID string) bool
}

// always samples everything (the default).
type always struct{}

func (always) Sample(string) bool { return true }

// everyN keeps the head of every window of n traces: the 1st, the
// n+1st, ... — classic head sampling, decided before any span ends.
type everyN struct {
	n uint64
	c atomic.Uint64
}

func (s *everyN) Sample(string) bool { return (s.c.Add(1)-1)%s.n == 0 }

// SampleEveryN returns a head sampler keeping 1 of every n root spans
// (n <= 1 keeps everything).
func SampleEveryN(n int) Sampler {
	if n <= 1 {
		return always{}
	}
	return &everyN{n: uint64(n)}
}

// Store is a bounded ring buffer of completed spans. When full, the
// oldest span is evicted. All methods are safe for concurrent use.
type Store struct {
	sampler atomic.Pointer[Sampler]

	dropped atomic.Uint64 // roots rejected by the head sampler
	evicted atomic.Uint64 // live spans overwritten by ring wraparound

	mu   sync.Mutex
	buf  []SpanRecord
	head int // next write index
	n    int // filled entries
}

// DefaultCapacity bounds the default store: at ~4 spans per request or
// campaign job this holds on the order of the last thousand operations.
const DefaultCapacity = 4096

// NewStore returns a store keeping at most capacity completed spans
// (capacity < 1 means DefaultCapacity). Sampling defaults to keeping
// everything; see SetSampler.
func NewStore(capacity int) *Store {
	if capacity < 1 {
		capacity = DefaultCapacity
	}
	st := &Store{buf: make([]SpanRecord, capacity)}
	var s Sampler = always{}
	st.sampler.Store(&s)
	return st
}

var defaultStore = sync.OnceValue(func() *Store { return NewStore(DefaultCapacity) })

// Default returns the process-wide store (what safesensed serves at
// /debug/traces).
func Default() *Store { return defaultStore() }

// SetSampler installs the head sampler applied to subsequent Root calls.
func (st *Store) SetSampler(s Sampler) {
	if s == nil {
		s = always{}
	}
	st.sampler.Store(&s)
}

// Root opens a new trace rooted at this store. traceID may be supplied
// by the caller (e.g. an inbound X-Request-ID header); empty means a
// fresh random ID. The root span always carries its trace ID — so logs
// can reference it — but is recorded only when the head sampler keeps
// the trace. When the Go execution tracer is running, the root also
// opens a runtime/trace Task named name.
func (st *Store) Root(ctx context.Context, name, traceID string) (context.Context, *Span) {
	if traceID == "" {
		traceID = NewTraceID()
	}
	sampled := (*st.sampler.Load()).Sample(traceID)
	if !sampled {
		st.dropped.Add(1)
	}
	s := &Span{
		store:   st,
		sampled: sampled,
		start:   clock(),
		rec: SpanRecord{
			TraceID: traceID,
			SpanID:  NewSpanID(),
			Name:    name,
			Start:   clock(),
		},
	}
	if rt.IsEnabled() {
		ctx, s.task = rt.NewTask(ctx, name)
	}
	return context.WithValue(ctx, ctxKey{}, s), s
}

// add appends a completed span, evicting the oldest when full.
func (st *Store) add(rec SpanRecord) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.addLocked(rec)
}

func (st *Store) addLocked(rec SpanRecord) {
	if st.n == len(st.buf) {
		st.evicted.Add(1)
	}
	st.buf[st.head] = rec
	st.head = (st.head + 1) % len(st.buf)
	if st.n < len(st.buf) {
		st.n++
	}
}

// Stats is the store's loss accounting: how much tracing data never
// made it into (or survived in) the ring. Dropped roots are traces the
// head sampler rejected; evicted spans were recorded but overwritten by
// newer ones. Both are cumulative since process start.
type Stats struct {
	Spans        int    `json:"spans"`
	Capacity     int    `json:"capacity"`
	DroppedRoots uint64 `json:"dropped_roots"`
	EvictedSpans uint64 `json:"evicted_spans"`
}

// Stats returns the store's current size and cumulative loss counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	spans, capacity := st.n, len(st.buf)
	st.mu.Unlock()
	return Stats{
		Spans:        spans,
		Capacity:     capacity,
		DroppedRoots: st.dropped.Load(),
		EvictedSpans: st.evicted.Load(),
	}
}

// Import merges externally-recorded spans — e.g. a dist worker's span
// batch shipped with its lease completion — into the store, so a
// coordinator can stitch worker-side spans under the campaign trace it
// started. Spans already present (same trace ID and span ID) are
// skipped, making redelivered batches idempotent; spans missing either
// ID are rejected. Returns how many spans were added.
func (st *Store) Import(recs []SpanRecord) int {
	if len(recs) == 0 {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	seen := make(map[[2]string]struct{}, st.n+len(recs))
	start := st.head - st.n
	if start < 0 {
		start += len(st.buf)
	}
	for i := 0; i < st.n; i++ {
		rec := st.buf[(start+i)%len(st.buf)]
		seen[[2]string{rec.TraceID, rec.SpanID}] = struct{}{}
	}
	added := 0
	for _, rec := range recs {
		if rec.TraceID == "" || rec.SpanID == "" {
			continue
		}
		key := [2]string{rec.TraceID, rec.SpanID}
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		st.addLocked(rec)
		added++
	}
	return added
}

// Len returns the number of stored spans.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.n
}

// Records returns the stored spans, oldest first.
func (st *Store) Records() []SpanRecord {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]SpanRecord, 0, st.n)
	start := st.head - st.n
	if start < 0 {
		start += len(st.buf)
	}
	for i := 0; i < st.n; i++ {
		out = append(out, st.buf[(start+i)%len(st.buf)])
	}
	return out
}

// Trace returns the stored spans of one trace, oldest first (nil when
// the trace is unknown or fully evicted).
func (st *Store) Trace(traceID string) []SpanRecord {
	var out []SpanRecord
	for _, rec := range st.Records() {
		if rec.TraceID == traceID {
			out = append(out, rec)
		}
	}
	return out
}

// TraceSummary is one trace as listed by Summaries.
type TraceSummary struct {
	TraceID string    `json:"trace_id"`
	Root    string    `json:"root"`
	Spans   int       `json:"spans"`
	Start   time.Time `json:"start"`
}

// Summaries lists the stored traces, oldest first: trace ID, the name
// of its earliest stored span, and the span count.
func (st *Store) Summaries() []TraceSummary {
	recs := st.Records()
	index := make(map[string]int, len(recs))
	var out []TraceSummary
	for _, rec := range recs {
		i, ok := index[rec.TraceID]
		if !ok {
			index[rec.TraceID] = len(out)
			out = append(out, TraceSummary{
				TraceID: rec.TraceID, Root: rec.Name, Spans: 1, Start: rec.Start,
			})
			continue
		}
		out[i].Spans++
		// Prefer the outermost stored span as the trace's display name:
		// spans flush inner-first, so any span that started earlier and
		// is a parent candidate wins.
		if rec.Start.Before(out[i].Start) || rec.ParentID == "" {
			out[i].Root = rec.Name
			if rec.Start.Before(out[i].Start) {
				out[i].Start = rec.Start
			}
		}
	}
	return out
}
