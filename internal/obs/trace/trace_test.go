package trace

import (
	"context"
	"fmt"
	"testing"
)

func TestIDsAreHexAndDistinct(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q: want 16 hex digits", id)
		}
		for _, c := range id {
			if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
				t.Fatalf("trace ID %q: non-hex digit %q", id, c)
			}
		}
		if seen[id] {
			t.Fatalf("trace ID %q repeated within 1000 draws", id)
		}
		seen[id] = true
	}
}

func TestRootAndChildLinkage(t *testing.T) {
	st := NewStore(16)
	ctx, root := st.Root(context.Background(), "root", "")
	if root.TraceID() == "" || root.SpanID() == "" {
		t.Fatal("root span missing IDs")
	}
	if !root.Sampled() {
		t.Fatal("default sampler must keep everything")
	}

	ctx2, child := StartSpan(ctx, "child")
	if child.TraceID() != root.TraceID() {
		t.Errorf("child trace = %q, want %q", child.TraceID(), root.TraceID())
	}
	_, grand := StartSpan(ctx2, "grandchild")
	grand.SetAttr("k", "v")
	grand.End()
	child.End()
	root.SetAttrInt("jobs", 42)
	root.End()

	recs := st.Trace(root.TraceID())
	if len(recs) != 3 {
		t.Fatalf("stored %d spans, want 3", len(recs))
	}
	// Spans flush on End, so the order is grandchild, child, root.
	if recs[0].Name != "grandchild" || recs[1].Name != "child" || recs[2].Name != "root" {
		t.Fatalf("unexpected span order: %q %q %q", recs[0].Name, recs[1].Name, recs[2].Name)
	}
	if recs[0].ParentID != recs[1].SpanID {
		t.Error("grandchild not parented to child")
	}
	if recs[1].ParentID != recs[2].SpanID {
		t.Error("child not parented to root")
	}
	if recs[2].ParentID != "" {
		t.Error("root must have no parent")
	}
	if len(recs[2].Attrs) != 1 || recs[2].Attrs[0].Key != "jobs" || recs[2].Attrs[0].Value != "42" {
		t.Errorf("root attrs = %+v", recs[2].Attrs)
	}
}

func TestHonorsCallerTraceID(t *testing.T) {
	st := NewStore(4)
	_, root := st.Root(context.Background(), "req", "demo")
	if root.TraceID() != "demo" {
		t.Fatalf("trace ID = %q, want demo", root.TraceID())
	}
	root.End()
	if got := st.Trace("demo"); len(got) != 1 {
		t.Fatalf("Trace(demo) = %d spans, want 1", len(got))
	}
}

func TestInertSpanWithoutParent(t *testing.T) {
	ctx, span := StartSpan(context.Background(), "orphan")
	if span.TraceID() != "" || span.Sampled() {
		t.Fatal("span without traced parent must be inert")
	}
	// All methods must be safe no-ops.
	span.SetAttr("k", "v")
	if d := span.End(); d != 0 {
		t.Errorf("inert End = %v, want 0", d)
	}
	if got := FromContext(ctx); got != nil {
		t.Errorf("inert StartSpan must not install a span, got %+v", got)
	}
	if ID(ctx) != "" {
		t.Errorf("ID of untraced context = %q, want empty", ID(ctx))
	}
}

func TestDoubleEndIsIdempotent(t *testing.T) {
	st := NewStore(4)
	_, root := st.Root(context.Background(), "r", "")
	root.End()
	root.End()
	if st.Len() != 1 {
		t.Fatalf("double End stored %d spans, want 1", st.Len())
	}
}

// TestRingEvictionAndOrdering pins the satellite requirement: at
// capacity the store drops the oldest spans and Records stays ordered
// oldest-first.
func TestRingEvictionAndOrdering(t *testing.T) {
	const capacity = 4
	st := NewStore(capacity)
	for i := 0; i < 7; i++ {
		_, s := st.Root(context.Background(), fmt.Sprintf("span-%d", i), "")
		s.End()
	}
	if st.Len() != capacity {
		t.Fatalf("Len = %d, want %d", st.Len(), capacity)
	}
	recs := st.Records()
	if len(recs) != capacity {
		t.Fatalf("Records = %d, want %d", len(recs), capacity)
	}
	for i, rec := range recs {
		want := fmt.Sprintf("span-%d", 7-capacity+i)
		if rec.Name != want {
			t.Errorf("Records[%d] = %q, want %q (oldest evicted, oldest-first order)", i, rec.Name, want)
		}
	}
}

func TestHeadSampling(t *testing.T) {
	st := NewStore(16)
	st.SetSampler(SampleEveryN(3))
	kept := 0
	for i := 0; i < 9; i++ {
		_, s := st.Root(context.Background(), "r", "")
		// Even unsampled roots must keep their trace ID for logging.
		if s.TraceID() == "" {
			t.Fatal("unsampled root lost its trace ID")
		}
		if s.Sampled() {
			kept++
		}
		s.End()
	}
	if kept != 3 {
		t.Errorf("kept %d of 9 roots at 1-in-3 head sampling, want 3", kept)
	}
	// Children inherit the head decision.
	st2 := NewStore(16)
	st2.SetSampler(SampleEveryN(2))
	ctx, root := st2.Root(context.Background(), "kept", "")
	_, child := StartSpan(ctx, "c")
	if !child.Sampled() {
		t.Error("child of sampled root must be sampled")
	}
	child.End()
	root.End()
	ctx, root = st2.Root(context.Background(), "dropped", "")
	_, child = StartSpan(ctx, "c")
	if child.Sampled() {
		t.Error("child of unsampled root must not be sampled")
	}
	child.End()
	root.End()
	if got := st2.Len(); got != 2 {
		t.Errorf("stored %d spans, want 2 (the sampled root + child only)", got)
	}
}

func TestSummaries(t *testing.T) {
	st := NewStore(16)
	ctx, root := st.Root(context.Background(), "campaign", "t1")
	_, child := StartSpan(ctx, "job")
	child.End()
	root.End()
	_, other := st.Root(context.Background(), "run", "t2")
	other.End()

	sums := st.Summaries()
	if len(sums) != 2 {
		t.Fatalf("Summaries = %d traces, want 2", len(sums))
	}
	if sums[0].TraceID != "t1" || sums[0].Spans != 2 || sums[0].Root != "campaign" {
		t.Errorf("trace t1 summary = %+v", sums[0])
	}
	if sums[1].TraceID != "t2" || sums[1].Spans != 1 || sums[1].Root != "run" {
		t.Errorf("trace t2 summary = %+v", sums[1])
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	st := NewStore(1024)
	ctx, root := st.Root(context.Background(), "bench", "")
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "child")
		s.End()
	}
}

func BenchmarkInertSpan(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "child")
		s.SetAttr("k", "v")
		s.End()
	}
}

func TestStatsCounters(t *testing.T) {
	st := NewStore(2)
	st.SetSampler(SampleEveryN(2))
	for i := 0; i < 6; i++ {
		_, s := st.Root(context.Background(), "r", "")
		s.End()
	}
	stats := st.Stats()
	if stats.Capacity != 2 {
		t.Errorf("Capacity = %d, want 2", stats.Capacity)
	}
	if stats.Spans != 2 {
		t.Errorf("Spans = %d, want 2 (ring full)", stats.Spans)
	}
	// 1-in-2 sampling over 6 roots keeps 3 and drops 3; the 3 kept
	// overflow the 2-slot ring once.
	if stats.DroppedRoots != 3 {
		t.Errorf("DroppedRoots = %d, want 3", stats.DroppedRoots)
	}
	if stats.EvictedSpans != 1 {
		t.Errorf("EvictedSpans = %d, want 1", stats.EvictedSpans)
	}
}

func TestImportDedup(t *testing.T) {
	st := NewStore(16)
	_, local := st.Root(context.Background(), "local", "t1")
	local.End()
	localRec := st.Trace("t1")[0]

	batch := []SpanRecord{
		localRec, // already resident: skipped
		{TraceID: "t1", SpanID: "w1", Name: "dist.lease"}, // new
		{TraceID: "t1", SpanID: "w1", Name: "dist.lease"}, // duplicate within batch
		{TraceID: "", SpanID: "x", Name: "no-trace"},      // rejected: empty trace ID
		{TraceID: "t1", SpanID: "", Name: "no-span"},      // rejected: empty span ID
	}
	if added := st.Import(batch); added != 1 {
		t.Fatalf("Import added %d spans, want 1", added)
	}
	if got := len(st.Trace("t1")); got != 2 {
		t.Fatalf("trace t1 has %d spans after import, want 2", got)
	}
	// Re-importing the same batch is a no-op: redelivered completions
	// must not duplicate spans.
	if added := st.Import(batch); added != 0 {
		t.Errorf("re-Import added %d spans, want 0", added)
	}
	if added := st.Import(nil); added != 0 {
		t.Errorf("Import(nil) added %d spans, want 0", added)
	}
}
