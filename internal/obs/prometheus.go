package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4), families sorted by name and children by label
// values, so output is stable for golden tests.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		families = append(families, f)
	}
	r.mu.Unlock()
	sort.Slice(families, func(i, j int) bool { return families[i].name < families[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range families {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')

		type kv struct {
			key string
			c   any
		}
		var kids []kv
		f.children.Range(func(k, v any) bool {
			kids = append(kids, kv{k.(string), v})
			return true
		})
		sort.Slice(kids, func(i, j int) bool { return kids[i].key < kids[j].key })

		for _, kid := range kids {
			var values []string
			if len(f.labels) > 0 {
				values = strings.Split(kid.key, keySep)
			}
			switch c := kid.c.(type) {
			case *Counter:
				writeSample(bw, f.name, "", f.labels, values, "", "", c.Value())
			case *Gauge:
				writeSample(bw, f.name, "", f.labels, values, "", "", c.Value())
			case *Histogram:
				var cum uint64
				for i := range c.counts {
					cum += c.counts[i].Load()
					le := "+Inf"
					if i < len(c.upper) {
						le = formatFloat(c.upper[i])
					}
					writeSampleExemplar(bw, f.name, "_bucket", f.labels, values, "le", le,
						float64(cum), c.exemplars[i].Load())
				}
				writeSample(bw, f.name, "_sum", f.labels, values, "", "", c.Sum())
				writeSample(bw, f.name, "_count", f.labels, values, "", "", float64(cum))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one `name_suffix{labels,extra="v"} value` line.
func writeSample(bw *bufio.Writer, name, suffix string, labels, values []string, extraLabel, extraValue string, v float64) {
	writeSampleExemplar(bw, name, suffix, labels, values, extraLabel, extraValue, v, nil)
}

// writeSampleExemplar additionally appends an OpenMetrics-style exemplar
// (` # {trace_id="..."} value`) linking the bucket to the trace that fed
// it; exposition stays valid classic text format when ex is nil.
func writeSampleExemplar(bw *bufio.Writer, name, suffix string, labels, values []string, extraLabel, extraValue string, v float64, ex *Exemplar) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 || extraLabel != "" {
		bw.WriteByte('{')
		first := true
		for i, l := range labels {
			if !first {
				bw.WriteByte(',')
			}
			first = false
			bw.WriteString(l)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(values[i]))
			bw.WriteByte('"')
		}
		if extraLabel != "" {
			if !first {
				bw.WriteByte(',')
			}
			bw.WriteString(extraLabel)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(extraValue))
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	if ex != nil {
		bw.WriteString(` # {trace_id="`)
		bw.WriteString(escapeLabel(ex.TraceID))
		bw.WriteString(`"} `)
		bw.WriteString(formatFloat(ex.Value))
	}
	bw.WriteByte('\n')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// Handler serves the registry at GET /metrics in text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
