package forensic

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"safesense/internal/sim"
)

// testCapture builds a valid capture; seed also differentiates the
// hashed fields so distinct seeds yield distinct content hashes.
func testCapture(seed int64, kinds ...string) Capture {
	if len(kinds) == 0 {
		kinds = []string{sim.AnomalyCollision}
	}
	return Capture{
		Schema:   CaptureSchema,
		SpecHash: "spec-abc",
		Campaign: "c000001",
		JobIndex: int(seed),
		Seed:     seed,
		Label:    "dos/const/paper",
		Attack:   "dos",
		Point:    json.RawMessage(fmt.Sprintf(`{"attack":"dos","steps":301,"seed":%d}`, seed)),
		Kinds:    kinds,
		Flight: []sim.FlightEvent{
			{K: 10, Kind: sim.EventChallenge, Value: 0.5},
			{K: 150, Kind: sim.EventCollision, Value: -0.2},
		},
		Anomalies: []sim.AnomalyDump{
			{K: 150, Kind: kinds[0], States: []sim.StepState{{K: 149, GapM: 0.1}, {K: 150, GapM: -0.2}}},
		},
		Phases: []sim.PhaseTiming{{Phase: "controller", Seconds: 0.001, Calls: 301}},
	}
}

func TestHashExcludesMetadata(t *testing.T) {
	a := testCapture(7)
	ha, err := a.Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}

	// Campaign label, kinds, and phase timings are metadata: two nodes
	// observing the same anomaly under different campaign IDs (or one
	// tagging an extra latency_outlier kind) must dedup to one hash.
	b := testCapture(7)
	b.Campaign = "c999999"
	b.Kinds = append(b.Kinds, KindLatencyOutlier)
	b.Phases = nil
	if hb, _ := b.Hash(); hb != ha {
		t.Fatalf("metadata perturbed the content hash: %s vs %s", hb, ha)
	}

	// The evidence itself is identity: any change is a new capture.
	mutations := []struct {
		name   string
		mutate func(*Capture)
	}{
		{"seed", func(c *Capture) { c.Seed++ }},
		{"jobindex", func(c *Capture) { c.JobIndex++ }},
		{"spechash", func(c *Capture) { c.SpecHash = "other" }},
		{"point", func(c *Capture) { c.Point = json.RawMessage(`{"attack":"delay"}`) }},
		{"flight", func(c *Capture) { c.Flight[0].Value += 1 }},
		{"anomaly", func(c *Capture) { c.Anomalies[0].K++ }},
	}
	for _, m := range mutations {
		c := testCapture(7)
		c.Flight = append([]sim.FlightEvent(nil), c.Flight...)
		c.Anomalies = append([]sim.AnomalyDump(nil), c.Anomalies...)
		m.mutate(&c)
		if hc, _ := c.Hash(); hc == ha {
			t.Errorf("mutating %s did not change the hash", m.name)
		}
	}
}

func TestValidateCaptureBounds(t *testing.T) {
	if err := ValidateCapture(testCapture(1)); err != nil {
		t.Fatalf("valid capture rejected: %v", err)
	}
	cases := map[string]func(*Capture){
		"schema":       func(c *Capture) { c.Schema = 2 },
		"negative-job": func(c *Capture) { c.JobIndex = -1 },
		"no-kinds":     func(c *Capture) { c.Kinds = nil },
		"empty-kind":   func(c *Capture) { c.Kinds = []string{""} },
		"long-kind":    func(c *Capture) { c.Kinds = []string{strings.Repeat("k", maxKindLen+1)} },
		"many-kinds": func(c *Capture) {
			c.Kinds = make([]string, MaxCaptureKinds+1)
			for i := range c.Kinds {
				c.Kinds[i] = "x"
			}
		},
		"no-point":      func(c *Capture) { c.Point = nil },
		"bad-point":     func(c *Capture) { c.Point = json.RawMessage(`{`) },
		"big-point":     func(c *Capture) { c.Point = json.RawMessage(`"` + strings.Repeat("p", MaxCapturePoint) + `"`) },
		"long-label":    func(c *Capture) { c.Label = strings.Repeat("l", maxLabelLen+1) },
		"long-campaign": func(c *Capture) { c.Campaign = strings.Repeat("c", maxCampaignLen+1) },
		"long-attack":   func(c *Capture) { c.Attack = strings.Repeat("a", maxAttackLen+1) },
		"many-flight":   func(c *Capture) { c.Flight = make([]sim.FlightEvent, MaxCaptureFlight+1) },
		"many-anoms":    func(c *Capture) { c.Anomalies = make([]sim.AnomalyDump, MaxCaptureAnomalies+1) },
		"many-states": func(c *Capture) {
			c.Anomalies = []sim.AnomalyDump{{States: make([]sim.StepState, MaxCaptureStates+1)}}
		},
		"many-phases": func(c *Capture) { c.Phases = make([]sim.PhaseTiming, MaxCapturePhases+1) },
	}
	for name, mutate := range cases {
		c := testCapture(1)
		mutate(&c)
		if err := ValidateCapture(c); err == nil {
			t.Errorf("%s: invalid capture accepted", name)
		}
	}
}

func TestDecodeCaptureStrict(t *testing.T) {
	c := testCapture(3)
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := DecodeCapture(data)
	if err != nil {
		t.Fatalf("DecodeCapture: %v", err)
	}
	h1, _ := c.Hash()
	h2, err := got.Hash()
	if err != nil || h1 != h2 {
		t.Fatalf("decoded capture hash %s (err %v), want %s", h2, err, h1)
	}

	if _, err := DecodeCapture([]byte(`{"schema":1,"unknown_field":true}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := DecodeCapture(append(data, []byte(`{}`)...)); err == nil {
		t.Error("trailing data accepted")
	}
	if _, err := DecodeCapture([]byte(`{"schema":1}`)); err == nil {
		t.Error("capture without kinds/point accepted")
	}
}

func TestKindPriorityOrdering(t *testing.T) {
	order := []string{KindManual, KindLatencyOutlier, sim.AnomalyFalsePositive,
		sim.AnomalyFalseNegative, sim.AnomalyCollision}
	for i := 1; i < len(order); i++ {
		if KindPriority(order[i]) < KindPriority(order[i-1]) {
			t.Errorf("priority(%s)=%d < priority(%s)=%d",
				order[i], KindPriority(order[i]), order[i-1], KindPriority(order[i-1]))
		}
	}
	if KindPriority(sim.AnomalyCollision) <= KindPriority(sim.AnomalyFalseNegative) {
		t.Error("collision must outrank false_negative")
	}
	if KindPriority("unknown") != 0 {
		t.Errorf("unknown kind priority = %d, want 0", KindPriority("unknown"))
	}
}

func TestDiffTimelines(t *testing.T) {
	base := []sim.FlightEvent{
		{K: 1, Kind: sim.EventChallenge, Value: 0.5},
		{K: 5, Kind: sim.EventCRAFlagged, Value: 1.5},
		{K: 9, Kind: sim.EventRLSTakeover},
	}
	if diffs := DiffTimelines(base, base); len(diffs) != 0 {
		t.Fatalf("identical timelines diff: %+v", diffs)
	}

	changed := append([]sim.FlightEvent(nil), base...)
	changed[1].Value = 2.5
	diffs := DiffTimelines(base, changed)
	if len(diffs) != 1 || diffs[0].Index != 1 {
		t.Fatalf("value change diffs = %+v, want one at index 1", diffs)
	}
	if diffs[0].Stored == nil || diffs[0].Fresh == nil {
		t.Fatal("value change diff should carry both sides")
	}

	// A missing tail shows up as one-sided diffs.
	diffs = DiffTimelines(base, base[:2])
	if len(diffs) != 1 || diffs[0].Fresh != nil || diffs[0].Stored == nil {
		t.Fatalf("truncated fresh timeline diffs = %+v", diffs)
	}
	diffs = DiffTimelines(base[:2], base)
	if len(diffs) != 1 || diffs[0].Stored != nil || diffs[0].Fresh == nil {
		t.Fatalf("extended fresh timeline diffs = %+v", diffs)
	}

	// The diff list is bounded no matter how badly a replay diverges.
	long := make([]sim.FlightEvent, MaxTimelineDiffs*2)
	for i := range long {
		long[i] = sim.FlightEvent{K: i, Kind: sim.EventChallenge, Value: float64(i)}
	}
	if diffs := DiffTimelines(long, nil); len(diffs) != MaxTimelineDiffs {
		t.Fatalf("diff cap = %d, want %d", len(diffs), MaxTimelineDiffs)
	}
}
