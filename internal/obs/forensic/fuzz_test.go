package forensic

import (
	"encoding/json"
	"testing"
)

// FuzzDecodeCapture drives the strict wire decoder with arbitrary
// bytes. Oracles: a successful decode must satisfy ValidateCapture,
// hash deterministically, and round-trip through Marshal/Decode onto
// the same content address — the property the fleet-wide dedup rests
// on.
func FuzzDecodeCapture(f *testing.F) {
	seed := testCapture(7)
	if data, err := json.Marshal(seed); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{"schema":1,"job_index":0,"seed":1,"point":{"attack":"dos"},"kinds":["collision"]}`))
	f.Add([]byte(`{"schema":2}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"schema":1,"kinds":["x"],"point":"p","unknown":1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCapture(data)
		if err != nil {
			return
		}
		if verr := ValidateCapture(c); verr != nil {
			t.Fatalf("decoded capture fails validation: %v", verr)
		}
		h1, err := c.Hash()
		if err != nil {
			t.Fatalf("decoded capture does not hash: %v", err)
		}
		out, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("decoded capture does not re-marshal: %v", err)
		}
		c2, err := DecodeCapture(out)
		if err != nil {
			t.Fatalf("re-marshaled capture does not decode: %v", err)
		}
		h2, err := c2.Hash()
		if err != nil || h1 != h2 {
			t.Fatalf("round trip moved the content address: %s -> %s (err %v)", h1, h2, err)
		}
	})
}
