// Package forensic is the anomaly artifact store of the observability
// layer: every run whose flight recorder flagged an anomaly (collision,
// CRA false positive/negative) — or that blew a latency percentile —
// is projected onto a Capture, content-addressed by the SHA-256 of its
// canonical bytes, and kept in a budget-bounded store (JSONL segments
// on disk plus an in-memory index) that the service exposes at
// /v1/anomalies.
//
// Content addressing does the fleet-wide dedup: a job's capture is a
// pure function of (spec hash, job index, seed), so the same anomaly
// shipped by two workers — or re-shipped after a lease was re-granted —
// hashes identically and is stored once. The hash covers only the
// deterministic portion of the capture (spec hash, job identity, grid
// point, flight timeline, anomaly dumps); wall-clock phase timings and
// the capture-reason kinds ride along as metadata but never perturb the
// address.
//
// Because the scenario is deterministic, a capture is also a replayable
// claim: re-running the captured point and diffing the fresh flight
// timeline against the stored one turns the repo's determinism
// invariant into a runtime-checkable observable (DiffTimelines; POST
// /v1/anomalies/{hash}/replay).
package forensic

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"safesense/internal/sim"
)

// CaptureSchema versions the capture wire format. Decoders reject
// other values rather than guessing.
const CaptureSchema = 1

// Capture kinds beyond the sim anomaly kinds (which are reused
// verbatim: sim.AnomalyCollision, sim.AnomalyFalsePositive,
// sim.AnomalyFalseNegative).
const (
	// KindLatencyOutlier marks a job captured because its wall time
	// exceeded the engine's configured percentile. Unlike the anomaly
	// kinds it is not deterministic, so it is metadata only — never
	// part of the content hash.
	KindLatencyOutlier = "latency_outlier"
	// KindManual marks a capture requested explicitly (safesim
	// -forensic-dir on a run with no anomalies).
	KindManual = "manual"
)

// Wire-format bounds enforced by ValidateCapture/DecodeCapture so a
// hostile or buggy peer cannot make a coordinator allocate absurd
// state. The sim recorder's own caps (8 dumps of 32 steps) sit well
// inside these.
const (
	MaxCaptureKinds     = 8
	MaxCaptureFlight    = 4096
	MaxCaptureAnomalies = 16
	MaxCaptureStates    = 64
	MaxCapturePhases    = 16
	MaxCapturePoint     = 4096
	maxKindLen          = 32
	maxLabelLen         = 256
	maxCampaignLen      = 128
	maxSpecHashLen      = 64
	maxAttackLen        = 32
)

// Capture is one preserved anomalous run. Point is the campaign grid
// point as raw JSON — kept opaque here so the store has no dependency
// on the campaign package (which itself captures into this store);
// replay sites decode it back into a campaign.Point.
type Capture struct {
	Schema int `json:"schema"`
	// SpecHash identifies the campaign spec the job belongs to
	// (campaign.Spec.Hash); empty for one-off runs.
	SpecHash string `json:"spec_hash,omitempty"`
	// Campaign is the submitting store's campaign ID — display
	// metadata, deliberately outside the content hash so the same
	// (spec, job) anomaly dedups across resubmissions.
	Campaign string `json:"campaign,omitempty"`
	JobIndex int    `json:"job_index"`
	Seed     int64  `json:"seed"`
	Label    string `json:"label,omitempty"`
	Attack   string `json:"attack,omitempty"`
	// Point is the full grid point (campaign.Point JSON) — everything
	// needed to rebuild the scenario and replay the run.
	Point json.RawMessage `json:"point"`
	// Kinds lists why the job was captured (anomaly kinds plus
	// latency_outlier/manual), first occurrence first.
	Kinds []string `json:"kinds"`
	// Flight is the run's full flight-recorder timeline.
	Flight []sim.FlightEvent `json:"flight,omitempty"`
	// Anomalies are the recorder's last-N-step state dumps.
	Anomalies []sim.AnomalyDump `json:"anomalies,omitempty"`
	// Phases are the run's wall-clock phase timings — observability
	// metadata, excluded from the content hash.
	Phases []sim.PhaseTiming `json:"phases,omitempty"`
}

// hashBody is the canonical deterministic subset of a capture: the
// fields that are a pure function of (spec, job index, seed). Phase
// timings (wall clock) and Kinds (latency_outlier is timing-dependent)
// and Campaign (a per-store counter) are deliberately excluded, so the
// same anomaly always lands on the same address no matter where or how
// often it was observed.
type hashBody struct {
	SpecHash  string            `json:"spec_hash"`
	JobIndex  int               `json:"job_index"`
	Seed      int64             `json:"seed"`
	Point     json.RawMessage   `json:"point"`
	Flight    []sim.FlightEvent `json:"flight"`
	Anomalies []sim.AnomalyDump `json:"anomalies"`
}

// Hash returns the capture's content address: the hex SHA-256 of the
// canonical JSON of its deterministic fields. Point bytes round-trip
// verbatim through encoding/json (json.RawMessage), so a capture
// marshaled on a worker and decoded on the coordinator hashes
// identically.
func (c Capture) Hash() (string, error) {
	// Normalize empty slices to nil: Flight/Anomalies are omitempty on
	// the wire, so an empty slice would hash as [] locally but decode
	// as nil on the receiving node, splitting one capture across two
	// addresses.
	flight := c.Flight
	if len(flight) == 0 {
		flight = nil
	}
	anomalies := c.Anomalies
	if len(anomalies) == 0 {
		anomalies = nil
	}
	b, err := json.Marshal(hashBody{
		SpecHash:  c.SpecHash,
		JobIndex:  c.JobIndex,
		Seed:      c.Seed,
		Point:     c.Point,
		Flight:    flight,
		Anomalies: anomalies,
	})
	if err != nil {
		return "", fmt.Errorf("forensic: hashing capture: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// ValidateCapture enforces the wire bounds on a capture.
func ValidateCapture(c Capture) error {
	if c.Schema != CaptureSchema {
		return fmt.Errorf("forensic: capture schema %d, want %d", c.Schema, CaptureSchema)
	}
	if c.JobIndex < 0 {
		return fmt.Errorf("forensic: negative job index %d", c.JobIndex)
	}
	if len(c.SpecHash) > maxSpecHashLen {
		return fmt.Errorf("forensic: spec_hash longer than %d bytes", maxSpecHashLen)
	}
	if len(c.Campaign) > maxCampaignLen {
		return fmt.Errorf("forensic: campaign longer than %d bytes", maxCampaignLen)
	}
	if len(c.Label) > maxLabelLen {
		return fmt.Errorf("forensic: label longer than %d bytes", maxLabelLen)
	}
	if len(c.Attack) > maxAttackLen {
		return fmt.Errorf("forensic: attack longer than %d bytes", maxAttackLen)
	}
	if len(c.Kinds) == 0 {
		return fmt.Errorf("forensic: capture has no kinds")
	}
	if len(c.Kinds) > MaxCaptureKinds {
		return fmt.Errorf("forensic: %d kinds exceed the %d cap", len(c.Kinds), MaxCaptureKinds)
	}
	for _, k := range c.Kinds {
		if k == "" || len(k) > maxKindLen {
			return fmt.Errorf("forensic: kind %q outside (0, %d] bytes", k, maxKindLen)
		}
	}
	if len(c.Point) == 0 || len(c.Point) > MaxCapturePoint {
		return fmt.Errorf("forensic: point outside (0, %d] bytes", MaxCapturePoint)
	}
	if !json.Valid(c.Point) {
		return fmt.Errorf("forensic: point is not valid JSON")
	}
	if len(c.Flight) > MaxCaptureFlight {
		return fmt.Errorf("forensic: %d flight events exceed the %d cap", len(c.Flight), MaxCaptureFlight)
	}
	if len(c.Anomalies) > MaxCaptureAnomalies {
		return fmt.Errorf("forensic: %d anomaly dumps exceed the %d cap", len(c.Anomalies), MaxCaptureAnomalies)
	}
	for _, a := range c.Anomalies {
		if len(a.States) > MaxCaptureStates {
			return fmt.Errorf("forensic: anomaly dump carries %d states, cap is %d", len(a.States), MaxCaptureStates)
		}
	}
	if len(c.Phases) > MaxCapturePhases {
		return fmt.Errorf("forensic: %d phases exceed the %d cap", len(c.Phases), MaxCapturePhases)
	}
	return nil
}

// DecodeCapture strictly parses one capture off the wire: unknown
// fields are errors and every bound is enforced before the value is
// trusted. This is the decoder FuzzDecodeCapture drives.
func DecodeCapture(data []byte) (Capture, error) {
	var c Capture
	if err := strictUnmarshal(data, &c); err != nil {
		return Capture{}, err
	}
	if err := ValidateCapture(c); err != nil {
		return Capture{}, err
	}
	return c, nil
}

// strictUnmarshal rejects unknown fields (same contract as the dist
// wire decoders).
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("forensic: decoding capture: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("forensic: trailing data after capture object")
	}
	return nil
}

// KindPriority ranks capture kinds for budget-pressure eviction:
// collisions (the paper's headline safety failure) outlive detector
// confusion, which outlives latency outliers and manual captures.
func KindPriority(kind string) int {
	switch kind {
	case sim.AnomalyCollision:
		return 3
	case sim.AnomalyFalseNegative:
		return 2
	case sim.AnomalyFalsePositive:
		return 1
	}
	return 0
}

// PrimaryKind returns a capture's highest-priority kind — the metric
// label and eviction class ("" only for an invalid kindless capture).
func PrimaryKind(c Capture) string {
	best := ""
	bestPri := -1
	for _, k := range c.Kinds {
		if p := KindPriority(k); p > bestPri {
			best, bestPri = k, p
		}
	}
	return best
}

// capturePriority is PrimaryKind's priority.
func capturePriority(c Capture) int {
	p := 0
	for _, k := range c.Kinds {
		if kp := KindPriority(k); kp > p {
			p = kp
		}
	}
	return p
}

// MaxTimelineDiffs bounds a replay diff report; a totally divergent
// replay does not need every mismatching index to make the point.
const MaxTimelineDiffs = 32

// TimelineDiff is one divergence between a stored and a fresh flight
// timeline. A nil side means the event exists only on the other.
type TimelineDiff struct {
	Index  int              `json:"index"`
	Stored *sim.FlightEvent `json:"stored,omitempty"`
	Fresh  *sim.FlightEvent `json:"fresh,omitempty"`
}

// DiffTimelines compares a stored flight timeline against a freshly
// replayed one, returning up to MaxTimelineDiffs divergences (empty
// means byte-identical content — the determinism invariant held).
func DiffTimelines(stored, fresh []sim.FlightEvent) []TimelineDiff {
	n := len(stored)
	if len(fresh) > n {
		n = len(fresh)
	}
	var diffs []TimelineDiff
	for i := 0; i < n && len(diffs) < MaxTimelineDiffs; i++ {
		var s, f *sim.FlightEvent
		if i < len(stored) {
			s = &stored[i]
		}
		if i < len(fresh) {
			f = &fresh[i]
		}
		if s != nil && f != nil && flightEventEqual(*s, *f) {
			continue
		}
		d := TimelineDiff{Index: i}
		if s != nil {
			ev := *s
			d.Stored = &ev
		}
		if f != nil {
			ev := *f
			d.Fresh = &ev
		}
		diffs = append(diffs, d)
	}
	return diffs
}

// flightEventEqual compares two flight events for exact equality. The
// raw float compare is deliberate: replay verifies bit-for-bit
// determinism, so any tolerance would hide exactly the drift the check
// exists to catch.
//
//safesense:floatcmp-helper
func flightEventEqual(a, b sim.FlightEvent) bool {
	return a.K == b.K && a.Kind == b.Kind && a.Value == b.Value && a.Detail == b.Detail
}
