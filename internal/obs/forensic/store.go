package forensic

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"safesense/internal/sim"
)

// DefaultBudgetBytes is the store's default resident-capture budget.
// Captures are a few KiB each, so the default keeps on the order of
// 10^4 anomalies.
const DefaultBudgetBytes = 64 << 20

// segPrefix/segSuffix name the store's on-disk JSONL segments
// (seg-000001.jsonl, ...). Replay order is the lexicographic file
// order, then line order.
const (
	segPrefix = "seg-"
	segSuffix = ".jsonl"
)

// Options tunes a Store.
type Options struct {
	// Dir is the segment directory. Empty means memory-only: the index
	// works normally but nothing persists.
	Dir string
	// BudgetBytes bounds the encoded bytes of resident captures (zero
	// means DefaultBudgetBytes). When an insert pushes the store over
	// budget, the lowest-(priority, recency) captures are evicted until
	// it fits — so collisions outlive detector confusion, which
	// outlives latency outliers.
	BudgetBytes int64
	// Log receives store lifecycle records (nil discards).
	Log *slog.Logger
}

// Meta is one capture's index row, as listed by /v1/anomalies.
type Meta struct {
	Hash     string   `json:"hash"`
	SpecHash string   `json:"spec_hash,omitempty"`
	Campaign string   `json:"campaign,omitempty"`
	JobIndex int      `json:"job_index"`
	Seed     int64    `json:"seed"`
	Label    string   `json:"label,omitempty"`
	Attack   string   `json:"attack,omitempty"`
	Kinds    []string `json:"kinds"`
	Bytes    int      `json:"bytes"`
}

// entry is one resident capture.
type entry struct {
	capture  Capture
	meta     Meta
	priority int
	bytes    int64
	seq      uint64 // logical recency counter (LRU), not wall time
}

// segRecord is one JSONL segment line: a capture insert or an eviction
// tombstone.
type segRecord struct {
	Op      string   `json:"op"` // "put" | "evict"
	Hash    string   `json:"hash"`
	Capture *Capture `json:"capture,omitempty"`
}

const (
	opPut   = "put"
	opEvict = "evict"
)

// Store is a content-addressed, budget-bounded capture store. All
// methods are safe for concurrent use.
type Store struct {
	opts Options

	mu        sync.Mutex
	entries   map[string]*entry
	liveBytes int64
	deadBytes int64 // bytes of evicted puts + tombstones still on disk
	nextSeq   uint64

	seg      *os.File
	segID    int
	segBytes int64
}

// Open builds a store, replaying any existing segments in opts.Dir
// (which is created when missing). With an empty Dir the store is
// memory-only.
func Open(opts Options) (*Store, error) {
	if opts.BudgetBytes <= 0 {
		opts.BudgetBytes = DefaultBudgetBytes
	}
	if opts.Log == nil {
		opts.Log = slog.New(discardHandler{})
	}
	s := &Store{opts: opts, entries: make(map[string]*entry)}
	if opts.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("forensic: creating store dir: %w", err)
	}
	if err := s.replaySegments(); err != nil {
		return nil, err
	}
	if err := s.openSegmentLocked(); err != nil {
		return nil, err
	}
	s.publishGaugesLocked()
	return s, nil
}

// discardHandler is a no-op slog.Handler (slog.DiscardHandler arrives
// in go1.24; this keeps the floor at the module's current toolchain).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Close releases the active segment file (memory-only stores are a
// no-op). The store must not be used after Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return nil
	}
	err := s.seg.Close()
	s.seg = nil
	return err
}

// segFiles lists the store's segment files in replay order.
func (s *Store) segFiles() ([]string, error) {
	names, err := filepath.Glob(filepath.Join(s.opts.Dir, segPrefix+"*"+segSuffix))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// replaySegments rebuilds the index from the segment log. Corrupt or
// stale lines (bad JSON, bound violations, hash mismatches) are
// skipped and counted — a partially-written tail after a crash must
// not brick the store.
func (s *Store) replaySegments() error {
	files, err := s.segFiles()
	if err != nil {
		return err
	}
	corrupt := 0
	for _, name := range files {
		if id, ok := segFileID(name); ok && id > s.segID {
			s.segID = id
		}
		f, err := os.Open(name)
		if err != nil {
			return fmt.Errorf("forensic: opening segment %s: %w", name, err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 4*(MaxCapturePoint+MaxCaptureFlight*256))
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var rec segRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				corrupt++
				continue
			}
			switch rec.Op {
			case opPut:
				if rec.Capture == nil || ValidateCapture(*rec.Capture) != nil {
					corrupt++
					continue
				}
				hash, err := rec.Capture.Hash()
				if err != nil || hash != rec.Hash {
					corrupt++
					continue
				}
				s.insertLocked(hash, *rec.Capture, int64(len(line)+1))
			case opEvict:
				if e := s.entries[rec.Hash]; e != nil {
					s.liveBytes -= e.bytes
					s.deadBytes += e.bytes
					delete(s.entries, rec.Hash)
				}
			default:
				corrupt++
			}
		}
		closeErr := f.Close()
		if err := sc.Err(); err != nil {
			corrupt++
			s.opts.Log.Warn("forensic segment truncated", "file", name, "error", err.Error())
		}
		if closeErr != nil {
			return closeErr
		}
	}
	if corrupt > 0 {
		s.opts.Log.Warn("forensic replay skipped corrupt records", "records", corrupt)
	}
	s.opts.Log.Info("forensic store replayed",
		"captures", len(s.entries), "live_bytes", s.liveBytes, "segments", len(files))
	return nil
}

// segFileID parses a segment file's numeric ID.
func segFileID(name string) (int, bool) {
	base := filepath.Base(name)
	base = strings.TrimPrefix(base, segPrefix)
	base = strings.TrimSuffix(base, segSuffix)
	id := 0
	for i := 0; i < len(base); i++ {
		c := base[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		id = id*10 + int(c-'0')
	}
	return id, len(base) > 0
}

// openSegmentLocked starts a fresh active segment.
func (s *Store) openSegmentLocked() error {
	s.segID++
	name := filepath.Join(s.opts.Dir, fmt.Sprintf("%s%06d%s", segPrefix, s.segID, segSuffix))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("forensic: opening segment: %w", err)
	}
	s.seg = f
	s.segBytes = 0
	return nil
}

// insertLocked adds one capture to the in-memory index (no disk IO,
// no metrics — shared by Put and replay).
func (s *Store) insertLocked(hash string, c Capture, bytes int64) *entry {
	s.nextSeq++
	e := &entry{
		capture: c,
		meta: Meta{
			Hash:     hash,
			SpecHash: c.SpecHash,
			Campaign: c.Campaign,
			JobIndex: c.JobIndex,
			Seed:     c.Seed,
			Label:    c.Label,
			Attack:   c.Attack,
			Kinds:    c.Kinds,
			Bytes:    int(bytes),
		},
		priority: capturePriority(c),
		bytes:    bytes,
		seq:      s.nextSeq,
	}
	s.entries[hash] = e
	s.liveBytes += bytes
	return e
}

// Put stores a capture, returning its content hash and whether it was
// new (false means the hash was already resident — the dedup hit that
// makes double-shipped worker captures idempotent). The insert may
// push the store over budget, in which case the lowest-(priority,
// recency) captures — possibly this one — are evicted until it fits.
func (s *Store) Put(c Capture) (string, bool, error) {
	if err := ValidateCapture(c); err != nil {
		return "", false, err
	}
	hash, err := c.Hash()
	if err != nil {
		return "", false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.entries[hash]; e != nil {
		// Refresh recency: a re-observed anomaly is a hot one.
		s.nextSeq++
		e.seq = s.nextSeq
		metricDuplicates.With().Inc()
		return hash, false, nil
	}
	line, err := json.Marshal(segRecord{Op: opPut, Hash: hash, Capture: &c})
	if err != nil {
		return "", false, fmt.Errorf("forensic: encoding capture: %w", err)
	}
	if err := s.appendLocked(line); err != nil {
		return "", false, err
	}
	s.insertLocked(hash, c, int64(len(line)+1))
	metricCaptures.With(kindLabel(PrimaryKind(c))).Inc()
	if err := s.evictLocked(); err != nil {
		return hash, true, err
	}
	s.maybeCompactLocked()
	s.publishGaugesLocked()
	return hash, true, nil
}

// appendLocked writes one record line to the active segment (no-op
// when memory-only).
func (s *Store) appendLocked(line []byte) error {
	if s.seg == nil {
		return nil
	}
	if _, err := s.seg.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("forensic: appending segment: %w", err)
	}
	s.segBytes += int64(len(line) + 1)
	return nil
}

// evictLocked drops captures while the store is over budget, lowest
// (priority, seq) first, writing a tombstone per victim.
func (s *Store) evictLocked() error {
	for s.liveBytes > s.opts.BudgetBytes && len(s.entries) > 0 {
		var victim *entry
		for _, e := range s.entries {
			if victim == nil || e.priority < victim.priority ||
				(e.priority == victim.priority && e.seq < victim.seq) {
				victim = e
			}
		}
		line, err := json.Marshal(segRecord{Op: opEvict, Hash: victim.meta.Hash})
		if err != nil {
			return err
		}
		if err := s.appendLocked(line); err != nil {
			return err
		}
		delete(s.entries, victim.meta.Hash)
		s.liveBytes -= victim.bytes
		s.deadBytes += victim.bytes + int64(len(line)+1)
		metricEvictions.With(kindLabel(PrimaryKind(victim.capture))).Inc()
		s.opts.Log.Debug("forensic capture evicted",
			"hash", victim.meta.Hash, "kind", PrimaryKind(victim.capture), "bytes", victim.bytes)
	}
	return nil
}

// maybeCompactLocked rewrites the live set into a fresh segment once
// dead bytes (evicted puts plus tombstones) dominate, then removes the
// older segments. Compaction is best-effort: a failure leaves the old
// segments in place and replay still reconstructs the same index.
func (s *Store) maybeCompactLocked() {
	if s.seg == nil || s.deadBytes <= s.opts.BudgetBytes/2 || s.deadBytes < 1<<16 {
		return
	}
	old, err := s.segFiles()
	if err != nil {
		return
	}
	live := make([]*entry, 0, len(s.entries))
	for _, e := range s.entries {
		live = append(live, e)
	}
	// Rewrite in seq order so recency survives a replay.
	sort.Slice(live, func(i, j int) bool { return live[i].seq < live[j].seq })
	prevSeg := s.seg
	if err := s.openSegmentLocked(); err != nil {
		s.seg = prevSeg
		return
	}
	prevSeg.Close()
	ok := true
	for _, e := range live {
		line, err := json.Marshal(segRecord{Op: opPut, Hash: e.meta.Hash, Capture: &e.capture})
		if err != nil || s.appendLocked(line) != nil {
			ok = false
			break
		}
	}
	if !ok {
		// Leave every file in place: puts are idempotent by hash, so a
		// replay over old + partial new segments converges anyway.
		s.opts.Log.Warn("forensic compaction incomplete; keeping old segments")
		return
	}
	for _, name := range old {
		_ = os.Remove(name)
	}
	s.deadBytes = 0
	s.opts.Log.Info("forensic store compacted",
		"captures", len(live), "live_bytes", s.liveBytes, "segments_removed", len(old))
}

// publishGaugesLocked refreshes the resident-size gauges.
func (s *Store) publishGaugesLocked() {
	metricLiveCaptures.With().Set(float64(len(s.entries)))
	metricLiveBytes.With().Set(float64(s.liveBytes))
}

// Get returns a stored capture by content hash, bumping its recency.
// Callers must treat the capture's slices as read-only.
func (s *Store) Get(hash string) (Capture, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[hash]
	if e == nil {
		return Capture{}, false
	}
	s.nextSeq++
	e.seq = s.nextSeq
	return e.capture, true
}

// Query filters a List call. Zero values match everything; Limit <= 0
// means no page bound.
type Query struct {
	Kind     string
	Campaign string
	Attack   string
	SpecHash string
	Offset   int
	Limit    int
}

// matches reports whether an entry satisfies the query filters.
func (q Query) matches(e *entry) bool {
	if q.Campaign != "" && e.meta.Campaign != q.Campaign {
		return false
	}
	if q.Attack != "" && e.meta.Attack != q.Attack {
		return false
	}
	if q.SpecHash != "" && e.meta.SpecHash != q.SpecHash {
		return false
	}
	if q.Kind != "" {
		for _, k := range e.meta.Kinds {
			if k == q.Kind {
				return true
			}
		}
		return false
	}
	return true
}

// List returns the matching captures' metadata, most recent first,
// plus the total match count before Offset/Limit paging.
func (s *Store) List(q Query) ([]Meta, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	matched := make([]*entry, 0, len(s.entries))
	for _, e := range s.entries {
		if q.matches(e) {
			matched = append(matched, e)
		}
	}
	sort.Slice(matched, func(i, j int) bool { return matched[i].seq > matched[j].seq })
	total := len(matched)
	if q.Offset > 0 {
		if q.Offset >= len(matched) {
			matched = nil
		} else {
			matched = matched[q.Offset:]
		}
	}
	if q.Limit > 0 && len(matched) > q.Limit {
		matched = matched[:q.Limit]
	}
	out := make([]Meta, len(matched))
	for i, e := range matched {
		out[i] = e.meta
	}
	return out, total
}

// Len returns the resident capture count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// LiveBytes returns the encoded bytes of the resident captures.
func (s *Store) LiveBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.liveBytes
}

// Kinds returns the sim anomaly kinds in recorder order — a helper
// for callers enumerating the store's bounded kind vocabulary.
func Kinds() []string {
	return []string{sim.AnomalyCollision, sim.AnomalyFalsePositive, sim.AnomalyFalseNegative,
		KindLatencyOutlier, KindManual}
}
