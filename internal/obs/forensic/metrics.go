package forensic

import (
	"safesense/internal/obs"

	"safesense/internal/sim"
)

// Process-wide forensic-store metrics on the default registry, exposed
// by safesensed at /metrics. The kind label is bounded by kindLabel's
// fixed vocabulary (the metriclabels analyzer's contract); hashes,
// campaign IDs, and labels never become label values.
var (
	metricCaptures = obs.Default().Counter(
		"safesense_forensic_captures_total",
		"Anomaly captures accepted into the forensic store, by primary kind.",
		"kind")
	metricDuplicates = obs.Default().Counter(
		"safesense_forensic_duplicates_total",
		"Captures whose content hash was already stored (fleet-wide dedup hits).")
	metricEvictions = obs.Default().Counter(
		"safesense_forensic_evictions_total",
		"Captures evicted under budget pressure, by primary kind.",
		"kind")
	metricLiveCaptures = obs.Default().Gauge(
		"safesense_forensic_captures",
		"Captures currently resident in the forensic store.")
	metricLiveBytes = obs.Default().Gauge(
		"safesense_forensic_live_bytes",
		"Encoded bytes of the captures currently resident in the forensic store.")
	metricReplays = obs.Default().Counter(
		"safesense_forensic_replays_total",
		"Capture replays served, by whether the fresh timeline matched the stored one.",
		"result")
)

// kindLabel collapses a capture kind onto the fixed metric vocabulary.
func kindLabel(kind string) string {
	switch kind {
	case sim.AnomalyCollision, sim.AnomalyFalsePositive, sim.AnomalyFalseNegative,
		KindLatencyOutlier, KindManual:
		return kind
	}
	return "other"
}

// Replay-result metric label values.
const (
	replayIdentical = "identical"
	replayDiverged  = "diverged"
)

// CountReplay records a replay verdict on the forensic metrics.
func CountReplay(identical bool) {
	if identical {
		metricReplays.With(replayIdentical).Inc()
		return
	}
	metricReplays.With(replayDiverged).Inc()
}
