package forensic

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"safesense/internal/sim"
)

// putCapture stores a test capture and returns its hash, failing the
// test on error or unexpected dedup.
func putCapture(t *testing.T, s *Store, c Capture, wantStored bool) string {
	t.Helper()
	hash, stored, err := s.Put(c)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if stored != wantStored {
		t.Fatalf("Put stored=%v, want %v", stored, wantStored)
	}
	return hash
}

func TestStorePutGetDedup(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	c := testCapture(1)
	h1 := putCapture(t, s, c, true)

	// Identical content dedups even when metadata differs.
	dup := testCapture(1)
	dup.Campaign = "c777777"
	h2 := putCapture(t, s, dup, false)
	if h1 != h2 {
		t.Fatalf("dedup returned different hash: %s vs %s", h2, h1)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after dedup, want 1", s.Len())
	}

	got, ok := s.Get(h1)
	if !ok {
		t.Fatalf("Get(%s) missing", h1)
	}
	if got.Seed != c.Seed || got.Campaign != c.Campaign {
		t.Fatalf("Get returned %+v, want the first-put capture", got)
	}
	if _, ok := s.Get("no-such-hash"); ok {
		t.Fatal("Get of unknown hash succeeded")
	}

	if _, _, err := s.Put(Capture{Schema: CaptureSchema}); err == nil {
		t.Fatal("Put of invalid capture succeeded")
	}
}

func TestStoreEvictionPriority(t *testing.T) {
	// Budget sized for roughly three captures: low-priority kinds must
	// be evicted first, the collision must survive.
	probe, _ := json.Marshal(segRecord{Op: opPut, Hash: "x", Capture: func() *Capture { c := testCapture(0); return &c }()})
	budget := int64(3*len(probe) + 200)
	s, err := Open(Options{BudgetBytes: budget})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	collision := putCapture(t, s, testCapture(1, sim.AnomalyCollision), true)
	manual := putCapture(t, s, testCapture(2, KindManual), true)
	fp := putCapture(t, s, testCapture(3, sim.AnomalyFalsePositive), true)
	putCapture(t, s, testCapture(4, sim.AnomalyFalseNegative), true)
	putCapture(t, s, testCapture(5, sim.AnomalyFalseNegative), true)

	if s.LiveBytes() > budget {
		t.Fatalf("LiveBytes %d over budget %d", s.LiveBytes(), budget)
	}
	if _, ok := s.Get(collision); !ok {
		t.Error("collision capture evicted before lower-priority kinds")
	}
	if _, ok := s.Get(manual); ok {
		t.Error("manual capture survived while the store was over budget")
	}
	if _, ok := s.Get(fp); ok {
		t.Error("false_positive survived ahead of higher-priority captures")
	}
}

func TestStoreEvictionRecency(t *testing.T) {
	probe, _ := json.Marshal(segRecord{Op: opPut, Hash: "x", Capture: func() *Capture { c := testCapture(0); return &c }()})
	budget := int64(2*len(probe) + 150)
	s, err := Open(Options{BudgetBytes: budget})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	// Equal priority: the least recently touched capture is the victim.
	first := putCapture(t, s, testCapture(1), true)
	second := putCapture(t, s, testCapture(2), true)
	if _, ok := s.Get(first); !ok { // bump first's recency above second's
		t.Fatal("first capture missing before eviction")
	}
	putCapture(t, s, testCapture(3), true)

	if _, ok := s.Get(first); !ok {
		t.Error("recently-read capture was evicted")
	}
	if _, ok := s.Get(second); ok {
		t.Error("least-recently-used capture survived")
	}
}

func TestStorePersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	h1 := putCapture(t, s, testCapture(1), true)
	h2 := putCapture(t, s, testCapture(2, sim.AnomalyFalsePositive), true)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", s2.Len())
	}
	for _, h := range []string{h1, h2} {
		if _, ok := s2.Get(h); !ok {
			t.Errorf("capture %s lost across reopen", h)
		}
	}
	// A reopened store still dedups against replayed content.
	putCapture(t, s2, testCapture(1), false)
}

func TestStoreEvictTombstoneSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	probe, _ := json.Marshal(segRecord{Op: opPut, Hash: "x", Capture: func() *Capture { c := testCapture(0); return &c }()})
	budget := int64(2*len(probe) + 150)
	s, err := Open(Options{Dir: dir, BudgetBytes: budget})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	evicted := putCapture(t, s, testCapture(1, KindManual), true)
	putCapture(t, s, testCapture(2, sim.AnomalyCollision), true)
	kept := putCapture(t, s, testCapture(3, sim.AnomalyCollision), true)
	if _, ok := s.Get(evicted); ok {
		t.Fatal("manual capture should have been evicted in-process")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(Options{Dir: dir, BudgetBytes: budget})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if _, ok := s2.Get(evicted); ok {
		t.Error("evicted capture resurrected on reopen (tombstone ignored)")
	}
	if _, ok := s2.Get(kept); !ok {
		t.Error("live capture lost on reopen")
	}
}

func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	// A budget small enough that repeated put/evict churn crosses the
	// compaction thresholds (deadBytes > budget/2 and >= 64KiB).
	probe, _ := json.Marshal(segRecord{Op: opPut, Hash: "x", Capture: func() *Capture { c := testCapture(0); return &c }()})
	per := int64(len(probe) + 1)
	budget := 4 * per
	s, err := Open(Options{Dir: dir, BudgetBytes: budget})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Churn enough distinct captures that dead bytes dominate.
	n := int((1<<16)/per) + 8
	for i := 0; i < n; i++ {
		putCapture(t, s, testCapture(int64(i+1)), true)
	}
	files, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	var disk int64
	for _, f := range files {
		fi, err := fileSize(f)
		if err != nil {
			t.Fatalf("stat %s: %v", f, err)
		}
		disk += fi
	}
	// Compaction keeps disk bounded near the live set, far below the
	// total churn volume (n * per).
	if disk > 4*budget+(1<<16)+int64(len(probe)) {
		t.Fatalf("segments hold %d bytes after churn of %d captures; compaction did not run", disk, n)
	}
	live := s.Len()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(Options{Dir: dir, BudgetBytes: budget})
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	defer s2.Close()
	if s2.Len() != live {
		t.Fatalf("reopened Len = %d, want %d", s2.Len(), live)
	}
}

func TestStoreListFiltersAndPaging(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	for i := 0; i < 6; i++ {
		c := testCapture(int64(i + 1))
		if i%2 == 1 {
			c.Attack = "delay"
			c.Kinds = []string{sim.AnomalyFalsePositive}
			c.Campaign = "c000002"
		}
		putCapture(t, s, c, true)
	}

	all, total := s.List(Query{})
	if total != 6 || len(all) != 6 {
		t.Fatalf("List all = %d/%d, want 6/6", len(all), total)
	}
	// Most recent first: the last put leads.
	if all[0].Seed != 6 {
		t.Errorf("List order: first seed = %d, want 6 (most recent)", all[0].Seed)
	}

	byKind, total := s.List(Query{Kind: sim.AnomalyFalsePositive})
	if total != 3 || len(byKind) != 3 {
		t.Fatalf("kind filter = %d/%d, want 3/3", len(byKind), total)
	}
	byAttack, _ := s.List(Query{Attack: "delay"})
	if len(byAttack) != 3 {
		t.Fatalf("attack filter = %d, want 3", len(byAttack))
	}
	byCampaign, _ := s.List(Query{Campaign: "c000002"})
	if len(byCampaign) != 3 {
		t.Fatalf("campaign filter = %d, want 3", len(byCampaign))
	}
	bySpec, _ := s.List(Query{SpecHash: "spec-abc"})
	if len(bySpec) != 6 {
		t.Fatalf("spec filter = %d, want 6", len(bySpec))
	}
	none, total := s.List(Query{Campaign: "missing"})
	if len(none) != 0 || total != 0 {
		t.Fatalf("no-match query = %d/%d, want 0/0", len(none), total)
	}

	page, total := s.List(Query{Offset: 2, Limit: 2})
	if total != 6 || len(page) != 2 {
		t.Fatalf("page = %d/%d, want 2 of 6", len(page), total)
	}
	if page[0].Seed != 4 || page[1].Seed != 3 {
		t.Errorf("page seeds = %d,%d, want 4,3", page[0].Seed, page[1].Seed)
	}
	past, total := s.List(Query{Offset: 100})
	if total != 6 || len(past) != 0 {
		t.Fatalf("past-the-end page = %d/%d, want 0 of 6", len(past), total)
	}
}

func TestKindsVocabulary(t *testing.T) {
	kinds := Kinds()
	want := map[string]bool{
		sim.AnomalyCollision: true, sim.AnomalyFalsePositive: true,
		sim.AnomalyFalseNegative: true, KindLatencyOutlier: true, KindManual: true,
	}
	if len(kinds) != len(want) {
		t.Fatalf("Kinds() = %v, want the %d-kind vocabulary", kinds, len(want))
	}
	for _, k := range kinds {
		if !want[k] {
			t.Errorf("unexpected kind %q", k)
		}
	}
}

// fileSize returns a file's size on disk.
func fileSize(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
