package cra

import (
	"testing"
	"testing/quick"

	"safesense/internal/noise"
	"safesense/internal/prbs"
	"safesense/internal/radar"
)

// TestDetectorNeverFlagsQuietChannelProperty: for any challenge schedule
// and any sequence of quiet challenge readings, the detector must never
// enter UnderAttack — the structural zero-false-positive property.
func TestDetectorNeverFlagsQuietChannelProperty(t *testing.T) {
	f := func(seed int64, width uint8) bool {
		w := 1 + int(width%4)
		sched, err := prbs.NewLFSRSchedule(11, uint32(seed)+1, w, 300)
		if err != nil {
			return false
		}
		d, err := NewDetector(sched, 1e-13)
		if err != nil {
			return false
		}
		src := noise.NewSource(seed)
		for k := 0; k < 300; k++ {
			power := 1e-11 * (1 + src.Uniform(0, 3)) // healthy returns
			if sched.Challenge(k) {
				power = 1e-14 * src.Uniform(0, 5) // quiet channel
			}
			ev := d.Step(radar.Measurement{K: k, Power: power, Challenge: sched.Challenge(k)})
			if ev.State == UnderAttack {
				return false
			}
		}
		return len(d.Detections()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDetectorAlwaysFlagsHotChallengeProperty: energy at a challenge
// instant always flips the state — zero false negatives at challenge
// instants.
func TestDetectorAlwaysFlagsHotChallengeProperty(t *testing.T) {
	f := func(seed int64, hotRaw uint8) bool {
		sched, err := prbs.NewLFSRSchedule(11, uint32(seed)+1, 3, 300)
		if err != nil {
			return false
		}
		steps := sched.Steps()
		if len(steps) == 0 {
			return true
		}
		hot := steps[int(hotRaw)%len(steps)]
		d, err := NewDetector(sched, 1e-13)
		if err != nil {
			return false
		}
		for k := 0; k < 300; k++ {
			power := 1e-11
			if sched.Challenge(k) {
				power = 1e-14
				if k == hot {
					power = 1e-12 // above threshold
				}
			}
			d.Step(radar.Measurement{K: k, Power: power, Challenge: sched.Challenge(k)})
		}
		dets := d.Detections()
		return len(dets) == 1 && dets[0] == hot
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDetectorStateOnlyChangesAtChallengesProperty: arbitrary power values
// at non-challenge steps never affect the state.
func TestDetectorStateOnlyChangesAtChallengesProperty(t *testing.T) {
	f := func(powers []float64) bool {
		sched := prbs.NewFixedSchedule(1000) // no challenge in range
		d, err := NewDetector(sched, 1e-13)
		if err != nil {
			return false
		}
		for i, p := range powers {
			if p < 0 {
				p = -p
			}
			ev := d.Step(radar.Measurement{K: i, Power: p})
			if ev.State != Clear || ev.Detected || ev.ClearedNow {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
