// Package cra implements the challenge-response authentication detector of
// the paper's Algorithm 2 (lines 7–9): at each challenge instant k in T_c
// the radar transmitted nothing, so a receiver output above the quiet-
// channel threshold reveals an attacker — a jammer flooding the band or a
// spoofer whose replay hardware is still radiating. Between challenge
// instants the detector holds its state; an attack is considered over when
// a challenge instant reads quiet again.
package cra

import (
	"errors"

	"safesense/internal/prbs"
	"safesense/internal/radar"
)

// State is the detector's attack belief.
type State int

const (
	// Clear means no attack is currently believed active.
	Clear State = iota
	// UnderAttack means a challenge instant observed unexpected energy
	// and no later challenge has read quiet yet.
	UnderAttack
)

// String renders the state.
func (s State) String() string {
	if s == UnderAttack {
		return "under-attack"
	}
	return "clear"
}

// Event describes the detector's decision at one step.
type Event struct {
	K int
	// Challenged reports whether this step was a challenge instant (only
	// those steps can change the detector state).
	Challenged bool
	// State is the post-step belief.
	State State
	// Detected is true exactly at the step an attack is first flagged.
	Detected bool
	// ClearedNow is true exactly at the step an attack is declared over.
	ClearedNow bool
}

// Detector runs Algorithm 2's detection loop.
type Detector struct {
	schedule  prbs.Schedule
	threshold float64
	state     State

	detections []int
	clearings  []int
}

// NewDetector builds a detector for the given challenge schedule and quiet-
// channel power threshold (watts). Use the radar front end's ZeroThreshold.
func NewDetector(schedule prbs.Schedule, threshold float64) (*Detector, error) {
	if schedule == nil {
		return nil, errors.New("cra: nil challenge schedule")
	}
	if threshold <= 0 {
		return nil, errors.New("cra: threshold must be positive")
	}
	return &Detector{schedule: schedule, threshold: threshold}, nil
}

// State returns the current belief.
func (d *Detector) State() State { return d.state }

// Detections returns the steps at which attacks were flagged.
func (d *Detector) Detections() []int {
	out := make([]int, len(d.detections))
	copy(out, d.detections)
	return out
}

// Clearings returns the steps at which attacks were declared over.
func (d *Detector) Clearings() []int {
	out := make([]int, len(d.clearings))
	copy(out, d.clearings)
	return out
}

// Step processes the step-k measurement. Only challenge instants can flip
// the state; all other steps report the held belief.
func (d *Detector) Step(m radar.Measurement) Event {
	ev := Event{K: m.K, Challenged: d.schedule.Challenge(m.K)}
	if !ev.Challenged {
		ev.State = d.state
		return ev
	}
	quiet := m.IsZero(d.threshold)
	switch {
	case d.state == Clear && !quiet:
		d.state = UnderAttack
		d.detections = append(d.detections, m.K)
		ev.Detected = true
	case d.state == UnderAttack && quiet:
		d.state = Clear
		d.clearings = append(d.clearings, m.K)
		ev.ClearedNow = true
	}
	ev.State = d.state
	return ev
}

// Accuracy compares the detector's per-step belief against ground truth
// and returns the confusion counts. truth(k) must report whether an attack
// was physically active at step k. Because CRA only samples at challenge
// instants, a detection necessarily lags attack onset by up to the
// challenge spacing; Accuracy therefore also reports the per-attack
// detection latency (steps from onset to flag) rather than counting the
// gap as false negatives. Steps are evaluated at challenge instants only,
// where the paper claims zero false positives and zero false negatives.
type Accuracy struct {
	TruePositives, TrueNegatives int
	FalsePositives               int
	FalseNegatives               int
}

// EvaluateAtChallenges replays recorded events against ground truth,
// scoring only challenge instants.
func EvaluateAtChallenges(events []Event, truth func(k int) bool) Accuracy {
	var acc Accuracy
	for _, ev := range events {
		if !ev.Challenged {
			continue
		}
		attacked := truth(ev.K)
		flagged := ev.State == UnderAttack
		switch {
		case attacked && flagged:
			acc.TruePositives++
		case attacked && !flagged:
			acc.FalseNegatives++
		case !attacked && flagged:
			acc.FalsePositives++
		default:
			acc.TrueNegatives++
		}
	}
	return acc
}
