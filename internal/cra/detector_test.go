package cra

import (
	"testing"

	"safesense/internal/prbs"
	"safesense/internal/radar"
)

const threshold = 1e-13

func meas(k int, power float64, challenge bool) radar.Measurement {
	return radar.Measurement{K: k, Power: power, Challenge: challenge}
}

func TestNewDetectorValidation(t *testing.T) {
	if _, err := NewDetector(nil, threshold); err == nil {
		t.Fatal("nil schedule should fail")
	}
	if _, err := NewDetector(prbs.NewFixedSchedule(1), 0); err == nil {
		t.Fatal("zero threshold should fail")
	}
}

func TestDetectorFlagsJammedChallenge(t *testing.T) {
	sched := prbs.NewFixedSchedule(15, 50, 182)
	d, _ := NewDetector(sched, threshold)
	// Clean challenge at 15: quiet, stays clear.
	ev := d.Step(meas(15, 1e-14, true))
	if ev.State != Clear || ev.Detected {
		t.Fatalf("clean challenge mis-detected: %+v", ev)
	}
	// Normal step with target return power: no state change.
	ev = d.Step(meas(20, 1e-11, false))
	if ev.Challenged || ev.State != Clear {
		t.Fatalf("non-challenge step flipped state: %+v", ev)
	}
	// Attacked challenge at 182: energy present -> detect.
	ev = d.Step(meas(182, 1e-9, true))
	if !ev.Detected || ev.State != UnderAttack {
		t.Fatalf("attack not detected: %+v", ev)
	}
	if got := d.Detections(); len(got) != 1 || got[0] != 182 {
		t.Fatalf("Detections = %v", got)
	}
}

func TestDetectorHoldsStateBetweenChallenges(t *testing.T) {
	sched := prbs.NewFixedSchedule(10, 30)
	d, _ := NewDetector(sched, threshold)
	d.Step(meas(10, 1e-9, true)) // detect
	for k := 11; k < 30; k++ {
		ev := d.Step(meas(k, 1e-11, false))
		if ev.State != UnderAttack {
			t.Fatalf("state dropped at %d", k)
		}
	}
	// Quiet challenge at 30: attack over.
	ev := d.Step(meas(30, 1e-14, true))
	if !ev.ClearedNow || ev.State != Clear {
		t.Fatalf("clear not recognized: %+v", ev)
	}
	if got := d.Clearings(); len(got) != 1 || got[0] != 30 {
		t.Fatalf("Clearings = %v", got)
	}
}

func TestDetectorZeroFalsePositivesCleanRun(t *testing.T) {
	// The paper's claim: no false positives without an attack.
	sched := prbs.PaperFigureSchedule()
	d, _ := NewDetector(sched, threshold)
	var events []Event
	for k := 0; k <= 300; k++ {
		power := 1e-11 // healthy target return
		if sched.Challenge(k) {
			power = 2e-14 // quiet channel
		}
		events = append(events, d.Step(meas(k, power, sched.Challenge(k))))
	}
	acc := EvaluateAtChallenges(events, func(int) bool { return false })
	if acc.FalsePositives != 0 {
		t.Fatalf("false positives: %+v", acc)
	}
	if acc.TrueNegatives == 0 {
		t.Fatal("no challenge instants evaluated")
	}
}

func TestDetectorZeroFalseNegativesUnderAttack(t *testing.T) {
	// Attack active over [182, 300]; challenges inside it always see
	// energy. Every challenge inside the window must be scored TP.
	sched := prbs.PaperFigureSchedule()
	d, _ := NewDetector(sched, threshold)
	attacked := func(k int) bool { return k >= 182 && k <= 300 }
	var events []Event
	for k := 0; k <= 300; k++ {
		challenge := sched.Challenge(k)
		power := 1e-11
		if challenge && !attacked(k) {
			power = 2e-14
		}
		if attacked(k) {
			power = 1e-9
		}
		events = append(events, d.Step(meas(k, power, challenge)))
	}
	acc := EvaluateAtChallenges(events, attacked)
	if acc.FalseNegatives != 0 || acc.FalsePositives != 0 {
		t.Fatalf("accuracy: %+v", acc)
	}
	if acc.TruePositives == 0 {
		t.Fatal("no attacked challenges evaluated")
	}
	// Detection time = 182 (the schedule pins a challenge there).
	if got := d.Detections(); len(got) != 1 || got[0] != 182 {
		t.Fatalf("Detections = %v, want [182]", got)
	}
}

func TestDetectorReDetectsSecondAttack(t *testing.T) {
	sched := prbs.NewFixedSchedule(10, 20, 30, 40)
	d, _ := NewDetector(sched, threshold)
	d.Step(meas(10, 1e-9, true))  // attack 1
	d.Step(meas(20, 1e-14, true)) // over
	d.Step(meas(30, 1e-9, true))  // attack 2
	d.Step(meas(40, 1e-14, true)) // over
	if got := d.Detections(); len(got) != 2 || got[0] != 10 || got[1] != 30 {
		t.Fatalf("Detections = %v", got)
	}
	if got := d.Clearings(); len(got) != 2 {
		t.Fatalf("Clearings = %v", got)
	}
}

func TestStateString(t *testing.T) {
	if Clear.String() != "clear" || UnderAttack.String() != "under-attack" {
		t.Fatal("State strings wrong")
	}
}
