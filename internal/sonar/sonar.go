// Package sonar models the ultrasonic parking sensor — the third active
// sensor class the paper's attack and defense cover ("active sensors such
// as ultrasonic, radar, or lidar are under Denial of Service attack or
// delay injection based spoofing attack"). An ultrasonic ranger measures
// round-trip time of flight of an acoustic chirp; delay-injection shifts
// the echo later (phantom extra distance), and jamming floods the
// transducer. The CRA contract is identical to the radar's: at challenge
// instants the transducer stays silent, so any received acoustic energy
// reveals an attacker.
package sonar

import (
	"errors"
	"fmt"
	"math"

	"safesense/internal/noise"
	"safesense/internal/prbs"
)

// SpeedOfSound is the propagation speed in air at 20 °C, m/s.
const SpeedOfSound = 343.0

// Params describes the ultrasonic ranger.
type Params struct {
	// CarrierHz is the transducer frequency (typically 40 kHz).
	CarrierHz float64
	// MinRangeM / MaxRangeM bound the usable range (parking sensors:
	// ~0.2–4.5 m).
	MinRangeM, MaxRangeM float64
	// TimingStdSec is the 1-sigma echo-timing jitter; range noise is
	// TimingStdSec * SpeedOfSound / 2.
	TimingStdSec float64
	// EchoLevel and NoiseLevel are received acoustic levels (arbitrary
	// linear power units) for a nominal echo and a quiet channel.
	EchoLevel, NoiseLevel float64
}

// DefaultParams returns a typical automotive parking sensor.
func DefaultParams() Params {
	return Params{
		CarrierHz:    40e3,
		MinRangeM:    0.2,
		MaxRangeM:    4.5,
		TimingStdSec: 30e-6, // ~5 mm of range noise
		EchoLevel:    1.0,
		NoiseLevel:   1e-4,
	}
}

// Validate checks the parameter set.
func (p Params) Validate() error {
	switch {
	case p.CarrierHz <= 0:
		return errors.New("sonar: carrier must be positive")
	case p.MinRangeM <= 0 || p.MaxRangeM <= p.MinRangeM:
		return fmt.Errorf("sonar: invalid range bounds [%v, %v]", p.MinRangeM, p.MaxRangeM)
	case p.TimingStdSec < 0:
		return errors.New("sonar: timing jitter must be non-negative")
	case p.EchoLevel <= p.NoiseLevel:
		return errors.New("sonar: echo level must exceed the noise level")
	}
	return nil
}

// TimeOfFlight returns the round-trip delay for a target at distance d.
func TimeOfFlight(d float64) float64 { return 2 * d / SpeedOfSound }

// DistanceFromTOF inverts TimeOfFlight.
func DistanceFromTOF(tof float64) float64 { return tof * SpeedOfSound / 2 }

// RangeNoiseStd returns the 1-sigma distance noise.
func (p Params) RangeNoiseStd() float64 { return p.TimingStdSec * SpeedOfSound / 2 }

// Measurement is one ranger sample.
type Measurement struct {
	K int
	// Distance is the reported range (m); 0 with a quiet Level at
	// challenge instants or when no echo returns.
	Distance float64
	// Level is the received acoustic level the CRA detector thresholds.
	Level float64
	// Challenge marks suppressed-transmission instants.
	Challenge bool
}

// IsQuiet reports whether the channel level is consistent with no
// transmission (threshold in the same units as Level).
func (m Measurement) IsQuiet(threshold float64) bool { return m.Level <= threshold }

// FrontEnd is the CRA-modified ultrasonic front end.
type FrontEnd struct {
	Params   Params
	Schedule prbs.Schedule
	src      *noise.Source
}

// NewFrontEnd validates and builds the front end.
func NewFrontEnd(p Params, sched prbs.Schedule, src *noise.Source) (*FrontEnd, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if sched == nil {
		return nil, errors.New("sonar: nil challenge schedule")
	}
	if src == nil {
		return nil, errors.New("sonar: nil noise source")
	}
	return &FrontEnd{Params: p, Schedule: sched, src: src}, nil
}

// ZeroThreshold is the quiet-channel level boundary.
func (f *FrontEnd) ZeroThreshold() float64 { return 10 * f.Params.NoiseLevel }

// Observe produces the step-k measurement for a true obstacle at distance
// d. Challenge instants transmit nothing and read the noise floor.
func (f *FrontEnd) Observe(k int, dTrue float64) Measurement {
	if f.Schedule.Challenge(k) {
		return Measurement{K: k, Challenge: true, Level: f.noiseLevel()}
	}
	if dTrue < f.Params.MinRangeM || dTrue > f.Params.MaxRangeM {
		return Measurement{K: k, Level: f.noiseLevel()}
	}
	tof := TimeOfFlight(dTrue) + f.src.Gaussian(0, f.Params.TimingStdSec)
	// Echo level falls with spherical spreading ~1/d^2 each way, i.e.
	// ~1/d^4 in power; normalize at 1 m.
	level := f.Params.EchoLevel / math.Pow(math.Max(dTrue, 0.2), 4)
	return Measurement{K: k, Distance: DistanceFromTOF(tof), Level: level}
}

func (f *FrontEnd) noiseLevel() float64 {
	v := f.src.Gaussian(f.Params.NoiseLevel, f.Params.NoiseLevel/4)
	if v < 0 {
		v = 0
	}
	return v
}

// Attack is a channel attack on the ultrasonic ranger.
type Attack interface {
	Active(k int) bool
	Corrupt(k int, clean Measurement) Measurement
	Name() string
}

// DelayEcho replays the echo with extra delay, inflating the reported
// distance — the parking-sensor variant of the radar's delay injection
// (a car appears farther while reversing). Its electronics leak into
// challenge windows exactly like the radar spoofer's.
type DelayEcho struct {
	Start, End int
	// ExtraM is the phantom extra distance.
	ExtraM float64
	// LeakLevel is the acoustic level the spoofer radiates during a
	// challenge instant (zero means a strong 0.1).
	LeakLevel float64
}

// NewDelayEcho validates and builds the spoofer.
func NewDelayEcho(start, end int, extraM float64) (*DelayEcho, error) {
	if end < start {
		return nil, fmt.Errorf("sonar: window [%d, %d] inverted", start, end)
	}
	if extraM <= 0 {
		return nil, errors.New("sonar: extra distance must be positive")
	}
	return &DelayEcho{Start: start, End: end, ExtraM: extraM, LeakLevel: 0.1}, nil
}

// Active implements Attack.
func (a *DelayEcho) Active(k int) bool { return k >= a.Start && k <= a.End }

// Name implements Attack.
func (a *DelayEcho) Name() string { return "delay-echo" }

// Corrupt implements Attack.
func (a *DelayEcho) Corrupt(k int, clean Measurement) Measurement {
	if !a.Active(k) {
		return clean
	}
	out := clean
	if clean.Challenge {
		out.Level = clean.Level + a.LeakLevel
		out.Distance = a.ExtraM
		return out
	}
	out.Distance = clean.Distance + a.ExtraM
	return out
}

// Jam floods the transducer with continuous ultrasound (the demonstrated
// ultrasonic DoS): reported distances collapse to near-zero garbage and
// every challenge window reads hot.
type Jam struct {
	Start, End int
	// Level is the jamming acoustic level (zero means 10x the echo).
	Level float64

	src *noise.Source
}

// NewJam validates and builds the jammer.
func NewJam(start, end int, level float64, src *noise.Source) (*Jam, error) {
	if end < start {
		return nil, fmt.Errorf("sonar: window [%d, %d] inverted", start, end)
	}
	if src == nil {
		return nil, errors.New("sonar: nil noise source")
	}
	if level == 0 {
		level = 10
	}
	if level <= 0 {
		return nil, errors.New("sonar: jam level must be positive")
	}
	return &Jam{Start: start, End: end, Level: level, src: src}, nil
}

// Active implements Attack.
func (a *Jam) Active(k int) bool { return k >= a.Start && k <= a.End }

// Name implements Attack.
func (a *Jam) Name() string { return "jam" }

// Corrupt implements Attack.
func (a *Jam) Corrupt(k int, clean Measurement) Measurement {
	if !a.Active(k) {
		return clean
	}
	out := clean
	out.Level = clean.Level + a.Level
	// A saturated correlator triggers on the jammer's continuous energy:
	// the reported range collapses to an arbitrary short reading.
	out.Distance = a.src.Uniform(0, 0.5)
	return out
}
