package sonar

import (
	"math"
	"testing"
	"testing/quick"

	"safesense/internal/cra"
	"safesense/internal/estimate"
	"safesense/internal/noise"
	"safesense/internal/prbs"
	"safesense/internal/radar"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.CarrierHz = 0 },
		func(p *Params) { p.MinRangeM = 0 },
		func(p *Params) { p.MaxRangeM = 0.1 },
		func(p *Params) { p.TimingStdSec = -1 },
		func(p *Params) { p.EchoLevel = p.NoiseLevel },
	}
	for i, m := range mutations {
		p := DefaultParams()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("mutation %d should fail", i)
		}
	}
}

func TestTimeOfFlightRoundTrip(t *testing.T) {
	f := func(d float64) bool {
		if math.IsNaN(d) || math.IsInf(d, 0) || math.Abs(d) > 1e6 {
			return true
		}
		back := DistanceFromTOF(TimeOfFlight(d))
		return math.Abs(back-d) <= 1e-9*(1+math.Abs(d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// 1 m target: TOF = 2/343 ≈ 5.83 ms.
	if tof := TimeOfFlight(1); math.Abs(tof-2.0/343) > 1e-12 {
		t.Fatalf("TOF(1m) = %v", tof)
	}
}

func newFE(t *testing.T, sched prbs.Schedule, seed int64) *FrontEnd {
	t.Helper()
	fe, err := NewFrontEnd(DefaultParams(), sched, noise.NewSource(seed))
	if err != nil {
		t.Fatal(err)
	}
	return fe
}

func TestFrontEndObserve(t *testing.T) {
	fe := newFE(t, prbs.NewFixedSchedule(), 1)
	m := fe.Observe(0, 2.0)
	if math.Abs(m.Distance-2.0) > 0.05 {
		t.Fatalf("distance = %v, want ~2", m.Distance)
	}
	if m.IsQuiet(fe.ZeroThreshold()) {
		t.Fatal("echo should exceed the quiet threshold")
	}
}

func TestFrontEndChallengeQuiet(t *testing.T) {
	fe := newFE(t, prbs.NewFixedSchedule(3), 2)
	m := fe.Observe(3, 2.0)
	if !m.Challenge || m.Distance != 0 {
		t.Fatalf("challenge output: %+v", m)
	}
	if !m.IsQuiet(fe.ZeroThreshold()) {
		t.Fatal("challenge should read quiet")
	}
}

func TestFrontEndOutOfRange(t *testing.T) {
	fe := newFE(t, prbs.NewFixedSchedule(), 3)
	if m := fe.Observe(0, 10); !m.IsQuiet(fe.ZeroThreshold()) {
		t.Fatal("beyond max range: no echo expected")
	}
	if m := fe.Observe(1, 0.05); !m.IsQuiet(fe.ZeroThreshold()) {
		t.Fatal("below min range: no echo expected")
	}
}

func TestFrontEndValidation(t *testing.T) {
	src := noise.NewSource(1)
	if _, err := NewFrontEnd(DefaultParams(), nil, src); err == nil {
		t.Fatal("nil schedule should fail")
	}
	if _, err := NewFrontEnd(DefaultParams(), prbs.NewFixedSchedule(), nil); err == nil {
		t.Fatal("nil source should fail")
	}
	bad := DefaultParams()
	bad.CarrierHz = 0
	if _, err := NewFrontEnd(bad, prbs.NewFixedSchedule(), src); err == nil {
		t.Fatal("bad params should fail")
	}
}

func TestDelayEchoAttack(t *testing.T) {
	a, err := NewDelayEcho(10, 50, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	clean := Measurement{K: 20, Distance: 1.0, Level: 1.0}
	got := a.Corrupt(20, clean)
	if math.Abs(got.Distance-2.5) > 1e-12 {
		t.Fatalf("spoofed distance = %v, want 2.5", got.Distance)
	}
	// Challenge leak detectable.
	threshold := 10 * DefaultParams().NoiseLevel
	ch := Measurement{K: 30, Challenge: true, Level: DefaultParams().NoiseLevel}
	if out := a.Corrupt(30, ch); out.IsQuiet(threshold) {
		t.Fatal("spoofer leak should be detectable at challenges")
	}
	if out := a.Corrupt(5, clean); out != clean {
		t.Fatal("outside window must be identity")
	}
	if _, err := NewDelayEcho(10, 5, 1); err == nil {
		t.Fatal("inverted window should fail")
	}
	if _, err := NewDelayEcho(1, 5, 0); err == nil {
		t.Fatal("zero extra should fail")
	}
}

func TestJamAttack(t *testing.T) {
	src := noise.NewSource(4)
	a, err := NewJam(10, 50, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	clean := Measurement{K: 20, Distance: 2.0, Level: 0.06}
	got := a.Corrupt(20, clean)
	if got.Distance > 0.5 {
		t.Fatalf("jammed distance = %v, want collapsed", got.Distance)
	}
	if got.Level <= clean.Level {
		t.Fatal("jam must raise the level")
	}
	if _, err := NewJam(10, 5, 0, src); err == nil {
		t.Fatal("inverted window should fail")
	}
	if _, err := NewJam(1, 5, 0, nil); err == nil {
		t.Fatal("nil source should fail")
	}
}

func TestParkingLoopCRADetectsAndRLSRecovers(t *testing.T) {
	// A reversing-car scenario: the obstacle distance shrinks 2 cm/step
	// from 3 m; the spoofer inflates it by +1.5 m from step 60 — the
	// driver would keep reversing into the obstacle. CRA catches the
	// spoofer at the next challenge and the RLS trend supplies safe
	// distances.
	sched := prbs.NewFixedSchedule(10, 30, 62, 90, 120)
	fe := newFE(t, sched, 5)
	det, err := cra.NewDetector(sched, fe.ZeroThreshold())
	if err != nil {
		t.Fatal(err)
	}
	atk, err := NewDelayEcho(60, 149, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := estimate.NewPredictor(estimate.DefaultPredictorConfig())
	if err != nil {
		t.Fatal(err)
	}
	detectedAt := -1
	var estErr []float64
	var snap *estimate.Predictor
	for k := 0; k < 150; k++ {
		d := 3.0 - 0.02*float64(k)
		m := atk.Corrupt(k, fe.Observe(k, d))
		// The sonar Measurement satisfies the detector contract via a
		// radar-shaped adapter: reuse the CRA detector by mapping Level
		// to Power.
		ev := det.Step(adapt(m))
		if ev.Detected && detectedAt < 0 {
			detectedAt = k
			// Roll back past the spoof-poisoned samples absorbed between
			// onset and detection, as the longitudinal runner does.
			if snap != nil {
				pred = snap.Clone()
				for pred.Wall() < k-1 {
					pred.Predict()
				}
			}
		}
		if ev.Challenged && ev.State == cra.Clear {
			snap = pred.Clone()
		}
		switch {
		case ev.State == cra.UnderAttack && pred.Ready():
			est := pred.Predict()
			estErr = append(estErr, est-d)
		case m.Challenge:
			pred.SkipStep()
		default:
			if ev.State == cra.Clear {
				if _, err := pred.Observe(m.Distance); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if detectedAt != 62 {
		t.Fatalf("detected at %d, want 62 (first challenge after onset)", detectedAt)
	}
	if len(estErr) == 0 {
		t.Fatal("no estimates produced")
	}
	worst := 0.0
	for _, e := range estErr {
		if a := math.Abs(e); a > worst {
			worst = a
		}
	}
	if worst > 0.15 {
		t.Fatalf("worst estimate error %v m, want < 0.15", worst)
	}
}

// adapt maps a sonar measurement onto the radar measurement shape the CRA
// detector consumes (Power <- Level): the detector only inspects channel
// energy at challenge instants, so it is sensor-agnostic.
func adapt(m Measurement) radar.Measurement {
	return radar.Measurement{K: m.K, Power: m.Level, Challenge: m.Challenge}
}
