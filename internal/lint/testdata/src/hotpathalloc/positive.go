// Package hotpathalloc is the golden fixture for the hotpathalloc
// analyzer: annotated functions must stay free of fmt, capturing
// closures, and interface boxing.
package hotpathalloc

import "fmt"

type sink struct{ last any }

func (s *sink) put(v any) { s.last = v }

// fmtCall formats inside an annotated hot path.
//
//safesense:hotpath
func fmtCall(v float64) string {
	return fmt.Sprintf("%v", v) // want "fmt.Sprintf call allocates"
}

// boxing passes a concrete float64 to an any parameter.
//
//safesense:hotpath
func boxing(s *sink, v float64) {
	s.put(v) // want "passing concrete float64 to interface parameter boxes"
}

// capture closes over a local variable of the hot-path function.
//
//safesense:hotpath
func capture(n int) func() int {
	return func() int { return n } // want "closure captures"
}
