package hotpathalloc

import "fmt"

// unannotated is not a hot path: everything is permitted here.
func unannotated(s *sink, v float64) string {
	s.put(v)
	f := func() float64 { return v }
	return fmt.Sprintf("%v", f())
}

type counter struct{ n uint64 }

// inc is a clean hot path: concrete arguments, no fmt, no closures.
//
//safesense:hotpath
func inc(c *counter, delta uint64) {
	c.n += delta
}

// nilArg passes an untyped nil to an interface parameter — no boxing.
//
//safesense:hotpath
func nilArg(s *sink) {
	s.put(nil)
}

// interfaceThrough forwards an existing interface value — the boxing
// (if any) happened at the caller, not here.
//
//safesense:hotpath
func interfaceThrough(s *sink, v any) {
	s.put(v)
}

// freeClosure uses a literal that only touches its own locals and
// parameters — nothing is captured from the hot path.
//
//safesense:hotpath
func freeClosure() func(int) int {
	return func(x int) int { return x + 1 }
}
