package ctxflow

import (
	"context"
	"net/http"
)

// processJob carries a ctx and must thread it down, not mint new roots.
func processJob(ctx context.Context, id string) {
	_ = ctx
	jctx := context.Background() // want "context.Background() inside a context-carrying function"
	runWith(jctx, id)
}

// handle carries the request context through r.Context().
func handle(w http.ResponseWriter, r *http.Request) {
	tctx := context.TODO() // want "context.TODO() inside a context-carrying function"
	runWith(tctx, r.URL.Path)
}

// detachInClosure shows the flag reaching literals: the closure inherits
// the enclosing function's context obligation.
func detachInClosure(ctx context.Context) func() {
	return func() {
		runWith(context.Background(), "late") // want "context.Background() inside a context-carrying function"
	}
}

// dropsVariant calls the context-less form although a Context variant
// exists in the same package.
func dropsVariant(ctx context.Context) {
	Work() // want "drops the caller's context"
	_ = ctx
}

func runWith(ctx context.Context, id string) { _, _ = ctx, id }

// Work is the legacy entry point; WorkContext is its context-aware
// variant.
func Work() {}

// WorkContext does Work under a context.
func WorkContext(ctx context.Context) { _ = ctx }
