package ctxflow

import (
	"context"
	"net/http"
)

// threaded passes its context down — the approved shape.
func threaded(ctx context.Context, id string) {
	runWith(ctx, id)
	WorkContext(ctx)
}

// fromRequest derives the context from the request.
func fromRequest(w http.ResponseWriter, r *http.Request) {
	runWith(r.Context(), r.URL.Path)
}

// entryPoint has no inbound context, so creating the root here is
// exactly right.
func entryPoint(id string) {
	runWith(context.Background(), id)
	Work() // no context to drop — the variant check needs an inbound ctx
}

// deliberateDetach documents the exception: the spawned sweep outlives
// the request by design.
func deliberateDetach(ctx context.Context) {
	//safesense:allow ctxflow sweep outlives the request by design
	runWith(context.Background(), "detached")
}

// withValues derives from the inbound context; With* constructors are
// not roots.
func withValues(ctx context.Context) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	runWith(cctx, "scoped")
}
