package determinism

import (
	"math/rand"
	"sort"
	"time"
)

// clock is the approved injected seam: a package-level *reference* to
// time.Now that tests can swap for a fake.
var clock = time.Now

func viaSeam() time.Time {
	return clock()
}

func seededRNG(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func mapCollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapPureReduction(m map[string]int) int {
	// Order-insensitive accumulation over a map is fine.
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func sliceRange(xs []string) []string {
	// Ranging a slice is deterministic; only maps are flagged.
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

func allowedClock() time.Time {
	return time.Now() //safesense:allow determinism fixture exercises line suppression
}
