// Package determinism is the golden fixture for the determinism
// analyzer. Marked lines must produce a diagnostic whose message
// contains the quoted substring; unmarked lines must stay silent.
package determinism

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// Calling the clock at package init time is still a wall-clock read.
var startup = time.Now() // want "wall-clock read"

func wallClock() time.Duration {
	start := time.Now()      // want "wall-clock read"
	return time.Since(start) // want "wall-clock read"
}

func clockReference() func() time.Time {
	// Referencing (not calling) time.Now inside a body is still a leak:
	// the seam must be a package-level var.
	return time.Now // want "wall-clock read"
}

func globalRNG() float64 {
	return rand.Float64() // want "global rand.Float64"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global rand.Shuffle"
}

func mapAppendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order feeds slice"
		keys = append(keys, k)
	}
	return keys
}

func mapPrinted(m map[string]int) {
	for k, v := range m { // want "map iteration order reaches fmt output"
		fmt.Println(k, v)
	}
}

func mapWritten(m map[string]int, b *strings.Builder) {
	for k := range m { // want "map iteration order reaches writer output"
		b.WriteString(k)
	}
}

func mapSent(m map[string]int, out chan<- string) {
	for k := range m { // want "map iteration order reaches a channel send"
		out <- k
	}
}
