// Package metriclabels is the golden fixture for the metriclabels
// analyzer: constant, well-formed, bounded label keys at registration
// and bounded label values at With call sites.
package metriclabels

import (
	"fmt"
	"strconv"

	"safesense/internal/obs"
)

func register(reg *obs.Registry, name, key string, keys []string) {
	reg.Counter(name, "help.")                                      // want "metric name must be a compile-time constant"
	reg.Counter("Bad-Name", "help.")                                // want "not a well-formed identifier"
	reg.Counter("too_many_total", "help.", "a", "b", "c", "d", "e") // want "exceeds the limit"
	reg.Counter("var_key_total", "help.", key)                      // want "label key must be a compile-time constant"
	reg.Counter("per_entity_total", "help.", "request_id")          // want "implies unbounded cardinality"
	reg.Counter("spread_total", "help.", keys...)                   // want "cannot be statically checked"
}

func use(v *obs.CounterVec, status int, err error, name string) {
	v.With(strconv.Itoa(status)).Inc()        // want "strconv.Itoa"
	v.With(fmt.Sprintf("%03d", status)).Inc() // want "fmt.Sprintf"
	v.With(err.Error()).Inc()                 // want "rendering"
	v.With("job_" + name).Inc()               // want "string concatenation"
	v.With(string(rune(status))).Inc()        // want "string conversion"
}
