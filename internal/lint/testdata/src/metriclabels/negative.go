package metriclabels

import "safesense/internal/obs"

// metricRequests names the label keys as constants — the schema is
// visible at the registration site.
const (
	labelMethod = "method"
	labelRoute  = "route"
)

func registerClean(reg *obs.Registry) *obs.CounterVec {
	return reg.Counter("fixture_requests_total",
		"Requests served, by method and route.",
		labelMethod, labelRoute)
}

// statusClass maps an int onto a fixed vocabulary; passing the result
// through a plain variable is the documented bounded-value contract.
func statusClass(status int) string {
	if status >= 500 {
		return "5xx"
	}
	return "ok"
}

func useClean(v *obs.CounterVec, status int) {
	v.With("GET", "index").Inc()
	class := statusClass(status)
	v.With("GET", class).Inc()
}
