// Package floatcmp is the golden fixture for the floatcmp analyzer.
package floatcmp

func rawEq(a, b float64) bool {
	return a == b // want "raw floating-point =="
}

func rawNeq(a, b float32) bool {
	return a != b // want "raw floating-point !="
}

func complexEq(a, b complex128) bool {
	return a == b // want "raw floating-point =="
}

type meters float64

func namedFloat(a, b meters) bool {
	// Named types over floats are still floats underneath.
	return a == b // want "raw floating-point =="
}

func mixedNonZeroConst(x float64) bool {
	return x == 1.5 // want "raw floating-point =="
}
