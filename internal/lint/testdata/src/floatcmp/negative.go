package floatcmp

import "math"

func zeroGuard(det float64) bool {
	// Exact comparison against constant zero is a well-defined IEEE
	// singularity guard.
	return det == 0
}

func nanIdiom(x float64) bool {
	// Self-comparison is the portable NaN test.
	return x != x
}

func intCmp(a, b int) bool {
	// Integer equality is exact; only float/complex operands count.
	return a == b
}

// approxEq is where the epsilon logic itself lives; the marker exempts
// its body.
//
//safesense:floatcmp-helper
func approxEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

func viaHelper(a, b float64) bool {
	return approxEq(a, b, 1e-12)
}

func allowedCmp(a, b float64) bool {
	return a == b //safesense:allow floatcmp fixture exercises line suppression
}
