package goroleak

import "time"

// spinForever has no channel receive: cancellation can never reach it.
func spinForever(work func()) {
	go func() { // want "without receiving from any channel"
		for {
			work()
		}
	}()
}

// receivesButIgnores drains a channel but never leaves the loop.
func receivesButIgnores(ch chan int, work func(int)) {
	go func() { // want "never exits its loop"
		for {
			work(<-ch)
		}
	}()
}

// namedSpin spawns a named function whose body loops unprovably; the
// call graph resolves the target and the finding lands on the go
// statement.
func namedSpin() {
	go spin() // want "without receiving from any channel"
}

func spin() {
	for {
	}
}

// funcValue spawns through a function-typed variable — unresolvable.
func funcValue(f func()) {
	go f() // want "termination cannot be proved statically"
}

// external spawns a function outside the module — unresolvable.
func external() {
	go time.Sleep(time.Millisecond) // want "outside the module"
}
