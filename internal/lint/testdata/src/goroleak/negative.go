package goroleak

import (
	"context"
	"time"
)

// selectLoop is the canonical shape: select on ctx.Done, return when it
// fires.
func selectLoop(ctx context.Context, tick *time.Ticker, work func()) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				work()
			}
		}
	}()
}

// drainUntilClosed exits when the feed channel closes.
func drainUntilClosed(feed chan int, work func(int)) {
	go func() {
		for {
			it, ok := <-feed
			if !ok {
				return
			}
			work(it)
		}
	}()
}

// rangeOverChannel terminates when the channel closes — the close is
// the signal.
func rangeOverChannel(feed chan int, work func(int)) {
	go func() {
		for it := range feed {
			work(it)
		}
	}()
}

// boundedLoop runs a fixed number of iterations.
func boundedLoop(work func(int)) {
	go func() {
		for i := 0; i < 8; i++ {
			work(i)
		}
	}()
}

// breakOut leaves the loop with a plain break when the stop channel
// fires.
func breakOut(stop chan struct{}, work func()) {
	go func() {
		for {
			if _, ok := <-stop; ok {
				break
			}
			work()
		}
	}()
}

// namedWorker spawns a named function with a provable exit; the call
// graph resolves the body.
func namedWorker(feed chan int, work func(int)) {
	go drain(feed, work)
}

func drain(feed chan int, work func(int)) {
	for {
		it, ok := <-feed
		if !ok {
			return
		}
		work(it)
	}
}

// noLoops terminates with its work.
func noLoops(work func()) {
	go func() {
		work()
	}()
}

// processLifetime documents a deliberate forever-goroutine.
func processLifetime(work func()) {
	//safesense:allow goroleak metrics flusher is process-lifetime by design
	go func() {
		for {
			work()
		}
	}()
}
