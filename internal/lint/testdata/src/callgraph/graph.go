// Package callgraph is the golden fixture for call-graph construction:
// static calls, conservative interface dispatch, method values,
// closures, and the deliberate blind spot for calls through
// function-typed variables (the clock-seam idiom).
package callgraph

// Doer is dispatched through in Dispatch; both A and B implement it.
type Doer interface{ Do(int) int }

// A implements Doer with a pointer receiver.
type A struct{ n int }

func (a *A) Do(x int) int { return x + a.n }

// B implements Doer with a value receiver.
type B struct{}

func (B) Do(x int) int { return x * 2 }

// Top exercises a static call, a closure, and a call through a
// function-typed variable (dropped by design).
func Top(xs []int) int {
	total := 0
	for _, x := range xs {
		total += Helper(x)
	}
	f := func(v int) int { return Leaf(v) }
	return f(total)
}

// Helper sits between Top and Leaf in the static chain.
func Helper(x int) int { return Leaf(x) + 1 }

// Leaf is the chain terminus.
func Leaf(x int) int { return x }

// Dispatch calls through the interface: conservative resolution must
// produce edges to every loaded implementation.
func Dispatch(d Doer, x int) int { return d.Do(x) }

// MethodValue references a method as a value — a Ref edge.
func MethodValue(a *A) func(int) int { return a.Do }

// Callback passes Leaf as a value — a Ref edge via a bare identifier.
func Callback() int { return apply(Leaf, 3) }

// apply calls through its parameter: no edge (unresolvable statically).
func apply(f func(int) int, x int) int { return f(x) }

// seam mirrors `var clock = time.Now`: the reference is visible at the
// var, the call through it is not.
var seam = Leaf

// ViaSeam calls through the package-level variable — no edge.
func ViaSeam(x int) int { return seam(x) }
