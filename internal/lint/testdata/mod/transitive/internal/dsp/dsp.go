// Package dsp is the helper layer of the transitive fixture: outside
// the determinism analyzer's scoped paths and free of hot-path
// markers, so nothing here is flagged directly — only through the
// call chains arriving from internal/sim.
package dsp

import (
	"fmt"
	"time"
)

// Window reduces the samples; its scale factor hides a clock read.
func Window(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s * scale()
}

// scale is the buried nondeterminism.
func scale() float64 {
	return 1 + float64(time.Now().UnixNano()%3)*0
}

// Format renders a sample; the allocation hides one level further down.
func Format(v float64) string {
	return render(v)
}

// render is the buried allocation.
func render(v float64) string {
	return fmt.Sprintf("%.3f", v)
}
