// Package sim mirrors the repo's scenario-pipeline shape for the
// transitive-lint acceptance fixture: the functions here are clean in
// isolation — every violation lives two calls away in internal/dsp,
// outside the determinism analyzer's scoped paths.
package sim

import "transitive/internal/dsp"

// Step advances one scenario step. The wall-clock read is two calls
// below: Step → dsp.Window → dsp.scale → time.Now.
func Step(xs []float64) float64 {
	return dsp.Window(xs)
}

// Record is the per-step hot path. The allocation is two calls below:
// Record → dsp.Format → dsp.render → fmt.Sprintf.
//
//safesense:hotpath
func Record(v float64) string {
	return dsp.Format(v)
}
