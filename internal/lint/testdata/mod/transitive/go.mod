module transitive

go 1.22
