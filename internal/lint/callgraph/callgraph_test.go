package callgraph_test

import (
	"os"
	"path/filepath"
	"testing"

	"safesense/internal/lint"
	"safesense/internal/lint/callgraph"
)

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// fixtureGraph loads testdata/src/callgraph and builds its graph.
func fixtureGraph(t *testing.T) *callgraph.Graph {
	t.Helper()
	root := moduleRoot(t)
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", "callgraph")
	units, err := loader.LoadDir(dir, "fixture/callgraph", "internal/callgraph")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return callgraph.Build(loader.Fset(), lint.GraphUnits(units))
}

// nodeByDisplay finds the unique node with the given display name.
func nodeByDisplay(t *testing.T, g *callgraph.Graph, display string) *callgraph.Node {
	t.Helper()
	var found *callgraph.Node
	for _, n := range g.SortedNodes() {
		if n.Display == display {
			if found != nil {
				t.Fatalf("display %q is ambiguous (%s and %s)", display, found.ID, n.ID)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node with display %q", display)
	}
	return found
}

// calleeDisplays collects the displays of n's outgoing edges of a kind.
func calleeDisplays(n *callgraph.Node, kind callgraph.EdgeKind) []string {
	var out []string
	for _, e := range n.Out {
		if e.Kind == kind {
			out = append(out, e.Callee.Display)
		}
	}
	return out
}

func hasCallee(n *callgraph.Node, kind callgraph.EdgeKind, display string) bool {
	for _, d := range calleeDisplays(n, kind) {
		if d == display {
			return true
		}
	}
	return false
}

func TestStaticCallsAndClosures(t *testing.T) {
	g := fixtureGraph(t)
	top := nodeByDisplay(t, g, "callgraph.Top")

	if !hasCallee(top, callgraph.KindStatic, "callgraph.Helper") {
		t.Errorf("Top should have a static edge to Helper; static callees: %v",
			calleeDisplays(top, callgraph.KindStatic))
	}
	if !hasCallee(top, callgraph.KindLiteral, "callgraph.Top$1") {
		t.Errorf("Top should have a literal edge to its closure; literal callees: %v",
			calleeDisplays(top, callgraph.KindLiteral))
	}
	// The closure's body belongs to the closure's node, not Top's.
	if hasCallee(top, callgraph.KindStatic, "callgraph.Leaf") {
		t.Error("Leaf is called by Top's closure, not Top itself")
	}
	lit := nodeByDisplay(t, g, "callgraph.Top$1")
	if !hasCallee(lit, callgraph.KindStatic, "callgraph.Leaf") {
		t.Errorf("Top$1 should call Leaf; static callees: %v",
			calleeDisplays(lit, callgraph.KindStatic))
	}
}

func TestInterfaceDispatchIsConservative(t *testing.T) {
	g := fixtureGraph(t)
	dispatch := nodeByDisplay(t, g, "callgraph.Dispatch")
	for _, impl := range []string{"callgraph.(*A).Do", "callgraph.B.Do"} {
		if !hasCallee(dispatch, callgraph.KindInterface, impl) {
			t.Errorf("Dispatch should have an interface edge to %s; got %v",
				impl, calleeDisplays(dispatch, callgraph.KindInterface))
		}
	}
}

func TestMethodAndFunctionValues(t *testing.T) {
	g := fixtureGraph(t)
	mv := nodeByDisplay(t, g, "callgraph.MethodValue")
	if !hasCallee(mv, callgraph.KindRef, "callgraph.(*A).Do") {
		t.Errorf("MethodValue should have a ref edge to (*A).Do; got %v",
			calleeDisplays(mv, callgraph.KindRef))
	}
	cb := nodeByDisplay(t, g, "callgraph.Callback")
	if !hasCallee(cb, callgraph.KindRef, "callgraph.Leaf") {
		t.Errorf("Callback should have a ref edge to Leaf; got %v",
			calleeDisplays(cb, callgraph.KindRef))
	}
	if !hasCallee(cb, callgraph.KindStatic, "callgraph.apply") {
		t.Errorf("Callback should statically call apply; got %v",
			calleeDisplays(cb, callgraph.KindStatic))
	}
}

func TestCallsThroughVariablesAreDropped(t *testing.T) {
	g := fixtureGraph(t)
	// apply calls only through its parameter — no resolvable callees.
	if out := nodeByDisplay(t, g, "callgraph.apply").Out; len(out) != 0 {
		t.Errorf("apply should have no edges, got %d", len(out))
	}
	// ViaSeam calls through a package-level var — the seam blind spot.
	if out := nodeByDisplay(t, g, "callgraph.ViaSeam").Out; len(out) != 0 {
		t.Errorf("ViaSeam should have no edges (seam idiom), got %d", len(out))
	}
}

func TestReachabilityAndChains(t *testing.T) {
	g := fixtureGraph(t)
	top := nodeByDisplay(t, g, "callgraph.Top")
	helper := nodeByDisplay(t, g, "callgraph.Helper")
	leaf := nodeByDisplay(t, g, "callgraph.Leaf")

	tree := g.ReachFrom(top, nil)
	chain := callgraph.ChainTo(tree, leaf)
	if chain == nil {
		t.Fatal("Top should reach Leaf")
	}
	if len(chain) != 2 || chain[0].Callee != helper || chain[1].Callee != leaf {
		var path []string
		for _, e := range chain {
			path = append(path, e.Callee.Display)
		}
		t.Fatalf("expected Top→Helper→Leaf, got Top→%v", path)
	}

	// Blocking expansion at Helper forces the BFS around it: Leaf is
	// still reached, but through the closure.
	blocked := g.ReachFrom(top, func(n *callgraph.Node) bool { return n != helper })
	chain = callgraph.ChainTo(blocked, leaf)
	if chain == nil {
		t.Fatal("Top should still reach Leaf around Helper (via the closure)")
	}
	lit := nodeByDisplay(t, g, "callgraph.Top$1")
	if len(chain) != 2 || chain[0].Callee != lit || chain[1].Callee != leaf {
		var path []string
		for _, e := range chain {
			path = append(path, e.Callee.Display)
		}
		t.Fatalf("expected Top→Top$1→Leaf when Helper is blocked, got Top→%v", path)
	}
}
