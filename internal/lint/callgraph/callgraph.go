// Package callgraph builds a module-wide static call graph from the
// syntax trees and type information the lint loader already produces —
// go/ast and go/types only, honoring the repo's no-x/tools constraint.
//
// The graph is the substrate the transitive analyzers ride: determinism
// and hotpathalloc walk it to find violations an arbitrary number of
// calls away from the function that owns the invariant, and report the
// full chain (`sim.Step → dsp.window → time.Now`) so the finding is
// actionable without re-deriving the path by hand.
//
// # Identity across type-check universes
//
// The lint loader type-checks every package twice: once as an analysis
// unit (its own files, possibly with tests) and once through the import
// cache (base files only) when another package imports it. The two runs
// produce distinct go/types object graphs, so *types.Func pointer
// identity does not hold across packages. Nodes are therefore keyed by
// types.Func.FullName() — a stable, path-qualified string
// ("safesense/internal/dsp.Window", "(*safesense/internal/obs.Timer).Start")
// that is identical in both universes. A use in one package resolves to
// the defining node in another by name, never by pointer.
//
// # Soundness and precision
//
// The graph over-approximates where it must and under-approximates only
// where Go's dynamism makes resolution impossible without whole-program
// pointer analysis:
//
//   - Direct calls to package-level functions and concrete methods are
//     exact.
//   - Interface dispatch resolves conservatively by implements-matching:
//     an edge is added to method M of every loaded named type whose
//     method-name set covers the interface's full method-name set.
//     Matching is by method names (not signatures) because the two
//     type-check universes make types.Implements unreliable across
//     packages; the cost is coarse matching on one-method interfaces
//     with common names (Write, String).
//   - A function literal gets its own node and a Literal edge from the
//     function that creates it: a created closure is assumed callable.
//     The same applies to method values and function values used as
//     values (Ref edges) — passing sim.Step as a callback counts as
//     calling it.
//   - Calls through function-typed variables and fields are dropped.
//     This is the deliberate escape hatch the clock-seam idiom rides:
//     `var clock = time.Now` followed by `clock()` creates no edge, so
//     seamed wall-clock access never taints callers.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Unit is one type-checked analysis unit, mirroring the lint loader's
// package shape without importing it (the lint package imports this
// one).
type Unit struct {
	// RelPath is the module-relative import path ("" for the module
	// root); external test units share their base package's RelPath.
	RelPath string
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// EdgeKind classifies how a call edge was resolved.
type EdgeKind int

const (
	// KindStatic is a direct call to a package-level function or a
	// method on a concrete receiver.
	KindStatic EdgeKind = iota
	// KindInterface is a conservatively resolved dynamic dispatch: the
	// callee is one of possibly many implementations.
	KindInterface
	// KindLiteral links a function to a closure it creates.
	KindLiteral
	// KindRef links a function to a function or method it references as
	// a value (callback registration, method value).
	KindRef
)

func (k EdgeKind) String() string {
	switch k {
	case KindStatic:
		return "static"
	case KindInterface:
		return "interface"
	case KindLiteral:
		return "literal"
	case KindRef:
		return "ref"
	}
	return "unknown"
}

// Node is one function, method, or function literal in the module.
type Node struct {
	// ID is the stable key: types.Func.FullName() for declared
	// functions, the parent's ID plus "$<ordinal>" for literals.
	ID string
	// Display is the short human form used in diagnostic chains:
	// "sim.RunContext", "obs.(*Timer).Start", "sim.RunContext$1".
	Display string
	// RelPath is the module-relative path of the defining unit.
	RelPath string
	// Unit is the analysis unit the node was parsed in.
	Unit *Unit
	// Decl is the declaration (nil for literals); Lit is the literal
	// (nil for declarations). Exactly one is set.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// HotPath records whether the declaration's doc comment carries the
	// //safesense:hotpath marker (always false for literals; a literal
	// inherits the discipline through its Literal edge).
	HotPath bool

	// Out and In are the call edges, in source order of discovery.
	Out []*Edge
	In  []*Edge
}

// Body returns the node's function body (nil only for bodyless
// declarations, e.g. assembly stubs).
func (n *Node) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	if n.Decl != nil {
		return n.Decl.Body
	}
	return nil
}

// Pos returns the node's declaration position.
func (n *Node) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return n.Decl.Pos()
}

// Edge is one resolved call (or closure-creation / reference) site.
type Edge struct {
	Caller, Callee *Node
	// Pos is the call site (the position a diagnostic anchors to when
	// the chain is reported at the caller).
	Pos  token.Pos
	Kind EdgeKind
}

// Graph is the module-wide call graph.
type Graph struct {
	Fset  *token.FileSet
	Nodes map[string]*Node
	// Cache lets analyzers memoize derived facts (e.g. per-node direct
	// violations) for the graph's lifetime, which the driver scopes to
	// one lint run across all analyzers.
	Cache map[string]any

	// byFunc indexes nodes by the same FullName key as Nodes but is
	// kept separate so synthetic literal IDs never collide with it.
	byFunc map[string]*Node
}

// NodeOf resolves a types.Func (from any type-check universe) to its
// defining node, nil when the function is not declared in a loaded
// unit (stdlib, external, or bodyless).
func (g *Graph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.byFunc[fn.FullName()]
}

// SortedNodes returns every node ordered by ID — the deterministic
// iteration order analyzers must use (Nodes is a map).
func (g *Graph) SortedNodes() []*Node {
	out := make([]*Node, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ReachFrom walks the graph breadth-first from start and returns the
// parent-edge tree: for every reached node, the edge it was first
// discovered through. Expansion continues through a reached node only
// when through(node) is true (start itself is always expanded), so
// callers can stop propagation at analysis boundaries — e.g. "do not
// walk past another in-scope function; it files its own report". The
// BFS queue and neighbor order follow edge insertion order, which is
// source order, so chains are deterministic.
func (g *Graph) ReachFrom(start *Node, through func(*Node) bool) map[*Node]*Edge {
	tree := make(map[*Node]*Edge)
	queue := []*Node{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n != start && through != nil && !through(n) {
			continue
		}
		for _, e := range n.Out {
			if e.Callee == start {
				continue
			}
			if _, seen := tree[e.Callee]; seen {
				continue
			}
			tree[e.Callee] = e
			queue = append(queue, e.Callee)
		}
	}
	return tree
}

// ChainTo walks the parent-edge tree from target back to the BFS start
// and returns the edge path start→…→target (nil when target was not
// reached).
func ChainTo(tree map[*Node]*Edge, target *Node) []*Edge {
	var rev []*Edge
	for n := target; ; {
		e, ok := tree[n]
		if !ok {
			if len(rev) == 0 {
				return nil
			}
			break
		}
		rev = append(rev, e)
		n = e.Caller
		if len(rev) > len(tree)+1 {
			return nil // defensive: corrupt tree
		}
	}
	out := make([]*Edge, len(rev))
	for i, e := range rev {
		out[len(rev)-1-i] = e
	}
	return out
}

// InspectOwn walks the node's own body, skipping the bodies of nested
// function literals — those are separate nodes reached through Literal
// edges, so a fact found inside one must attach to the literal's node,
// not its parent's.
func (n *Node) InspectOwn(fn func(ast.Node) bool) {
	body := n.Body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			// The walk starts inside n's body, so any literal seen here
			// is a nested one — a separate node.
			return false
		}
		return fn(x)
	})
}
