package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Build constructs the call graph over the given units. Two passes: the
// first registers a node for every declared function, method, and
// function literal (so forward and cross-package references resolve);
// the second walks every node's own body and adds edges.
func Build(fset *token.FileSet, units []*Unit) *Graph {
	g := &Graph{
		Fset:   fset,
		Nodes:  make(map[string]*Node),
		Cache:  make(map[string]any),
		byFunc: make(map[string]*Node),
	}
	b := &builder{
		g:          g,
		byLit:      make(map[*ast.FuncLit]*Node),
		ifaceIndex: buildIfaceIndex(units),
	}
	for _, u := range units {
		b.registerUnit(u)
	}
	for _, n := range g.SortedNodes() {
		b.connectNode(n)
	}
	return g
}

// builder carries construction state.
type builder struct {
	g     *Graph
	byLit map[*ast.FuncLit]*Node
	// ifaceIndex maps a method name to every concrete method of that
	// name declared on a named type in a loaded unit, together with the
	// full method-name set of its receiver type — the data conservative
	// interface resolution matches against.
	ifaceIndex map[string][]*implMethod
}

// implMethod is one concrete method, as a dispatch candidate.
type implMethod struct {
	fn *types.Func // the method object in its defining unit's universe
	// recvMethods is the receiver type's complete method-name set
	// (pointer method set, so value methods are included).
	recvMethods map[string]bool
}

// buildIfaceIndex scans every named type declared in the units and
// indexes its (pointer) method set by method name.
func buildIfaceIndex(units []*Unit) map[string][]*implMethod {
	idx := make(map[string][]*implMethod)
	for _, u := range units {
		scope := u.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			mset := types.NewMethodSet(types.NewPointer(named))
			if mset.Len() == 0 {
				continue
			}
			names := make(map[string]bool, mset.Len())
			for i := 0; i < mset.Len(); i++ {
				names[mset.At(i).Obj().Name()] = true
			}
			for i := 0; i < mset.Len(); i++ {
				m, ok := mset.At(i).Obj().(*types.Func)
				if !ok {
					continue
				}
				idx[m.Name()] = append(idx[m.Name()], &implMethod{fn: m, recvMethods: names})
			}
		}
	}
	return idx
}

// registerUnit creates nodes for every FuncDecl (and, recursively, the
// FuncLits inside it) in the unit.
func (b *builder) registerUnit(u *Unit) {
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := u.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			id := obj.FullName()
			// Multiple init functions in one package share a FullName;
			// suffix duplicates so every body keeps its own node (they
			// are never call targets, so byFunc keeps the first).
			for i := 2; ; i++ {
				if _, taken := b.g.Nodes[id]; !taken {
					break
				}
				id = fmt.Sprintf("%s#%d", obj.FullName(), i)
			}
			n := &Node{
				ID:      id,
				Display: displayName(u, fd, obj),
				RelPath: u.RelPath,
				Unit:    u,
				Decl:    fd,
				HotPath: docHas(fd, "//safesense:hotpath"),
			}
			b.g.Nodes[n.ID] = n
			if _, taken := b.g.byFunc[obj.FullName()]; !taken {
				b.g.byFunc[obj.FullName()] = n
			}
			b.registerLiterals(u, n)
		}
		// Function literals in package-level var initializers get nodes
		// parented on a per-file synthetic "init" node so their bodies
		// are still analyzed.
		b.registerVarLiterals(u, f)
	}
}

// registerLiterals creates child nodes for the function literals nested
// directly inside parent's own body, recursing so every literal at any
// depth gets a node. Ordinals count literals in source order within the
// parent, so IDs are stable across runs.
func (b *builder) registerLiterals(u *Unit, parent *Node) {
	ord := 0
	parent.InspectOwnLits(func(lit *ast.FuncLit) {
		ord++
		child := &Node{
			ID:      fmt.Sprintf("%s$%d", parent.ID, ord),
			Display: fmt.Sprintf("%s$%d", parent.Display, ord),
			RelPath: u.RelPath,
			Unit:    u,
			Lit:     lit,
		}
		b.g.Nodes[child.ID] = child
		b.byLit[lit] = child
		b.registerLiterals(u, child)
	})
}

// registerVarLiterals handles closures assigned in package-level var
// declarations (`var f = func() {...}`).
func (b *builder) registerVarLiterals(u *Unit, f *ast.File) {
	ord := 0
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		ast.Inspect(gd, func(x ast.Node) bool {
			lit, ok := x.(*ast.FuncLit)
			if !ok {
				return true
			}
			ord++
			pos := b.g.Fset.Position(gd.Pos())
			child := &Node{
				ID:      fmt.Sprintf("%s.<var>@%s:%d$%d", u.Pkg.Path(), pos.Filename, pos.Line, ord),
				Display: fmt.Sprintf("%s.<var>$%d", u.Pkg.Name(), ord),
				RelPath: u.RelPath,
				Unit:    u,
				Lit:     lit,
			}
			b.g.Nodes[child.ID] = child
			b.byLit[lit] = child
			b.registerLiterals(u, child)
			return false
		})
	}
}

// InspectOwnLits visits the function literals nested directly inside
// the node's own body (not those inside deeper literals).
func (n *Node) InspectOwnLits(fn func(*ast.FuncLit)) {
	body := n.Body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok {
			fn(lit)
			return false
		}
		return true
	})
}

// connectNode walks one node's own body (nested literals excluded —
// they connect as their own nodes) and resolves its call and reference
// sites.
func (b *builder) connectNode(n *Node) {
	body := n.Body()
	if body == nil {
		return
	}
	u := n.Unit
	// handled marks identifiers already consumed as a call target or a
	// selector reference, so the bare-ident pass below does not
	// double-count them. ast.Inspect visits parents before children, so
	// the marks always land first.
	handled := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if child := b.byLit[x]; child != nil {
				b.edge(n, child, x.Pos(), KindLiteral)
			}
			return false
		case *ast.CallExpr:
			switch fun := ast.Unparen(x.Fun).(type) {
			case *ast.Ident:
				handled[fun] = true
			case *ast.SelectorExpr:
				handled[fun.Sel] = true
			}
			b.resolveCall(u, n, x, ast.Unparen(x.Fun))
		case *ast.SelectorExpr:
			if !handled[x.Sel] {
				handled[x.Sel] = true
				b.resolveSelRef(u, n, x)
			}
		case *ast.Ident:
			if !handled[x] {
				b.resolveIdentRef(u, n, x)
			}
		}
		return true
	})
}

// resolveCall adds edges for a call expression.
func (b *builder) resolveCall(u *Unit, n *Node, call *ast.CallExpr, fun ast.Expr) {
	switch fun := fun.(type) {
	case *ast.Ident:
		// Package-local function call. Builtins, conversions, and calls
		// through variables resolve to non-Func objects and are dropped
		// (the latter deliberately: the clock-seam idiom).
		if obj, ok := u.Info.Uses[fun].(*types.Func); ok {
			b.staticEdge(n, obj, call.Pos())
		}
	case *ast.SelectorExpr:
		if selinfo, ok := u.Info.Selections[fun]; ok {
			// Method call: concrete or interface dispatch.
			recv := selinfo.Recv()
			if types.IsInterface(recv.Underlying()) {
				b.interfaceEdges(n, recv, fun.Sel.Name, call.Pos())
				return
			}
			if m, ok := selinfo.Obj().(*types.Func); ok {
				b.staticEdge(n, m, call.Pos())
			}
			return
		}
		// Qualified call: pkg.Func.
		if obj, ok := u.Info.Uses[fun.Sel].(*types.Func); ok {
			b.staticEdge(n, obj, call.Pos())
		}
	}
}

// resolveIdentRef adds a Ref edge when a bare identifier used as a
// value names a declared package-level function. Method idents are
// skipped here: a method value always appears under a SelectorExpr,
// which resolveSelRef handles with receiver context.
func (b *builder) resolveIdentRef(u *Unit, n *Node, id *ast.Ident) {
	obj, ok := u.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		return
	}
	if callee := b.g.byFunc[obj.FullName()]; callee != nil {
		b.edge(n, callee, id.Pos(), KindRef)
	}
}

// resolveSelRef adds a Ref edge for a selector used as a value: a
// qualified function (pkg.Func) or a method value (x.M). Interface
// method values resolve conservatively like dispatch.
func (b *builder) resolveSelRef(u *Unit, n *Node, sel *ast.SelectorExpr) {
	if selinfo, ok := u.Info.Selections[sel]; ok {
		recv := selinfo.Recv()
		if types.IsInterface(recv.Underlying()) {
			b.interfaceEdges(n, recv, sel.Sel.Name, sel.Pos())
			return
		}
		if m, ok := selinfo.Obj().(*types.Func); ok {
			if callee := b.g.byFunc[m.FullName()]; callee != nil {
				b.edge(n, callee, sel.Pos(), KindRef)
			}
		}
		return
	}
	if obj, ok := u.Info.Uses[sel.Sel].(*types.Func); ok {
		if callee := b.g.byFunc[obj.FullName()]; callee != nil {
			b.edge(n, callee, sel.Pos(), KindRef)
		}
	}
}

// staticEdge resolves a concrete callee object to its node (if declared
// in a loaded unit) and records the edge.
func (b *builder) staticEdge(n *Node, fn *types.Func, pos token.Pos) {
	if callee := b.g.byFunc[fn.FullName()]; callee != nil {
		b.edge(n, callee, pos, KindStatic)
	}
}

// interfaceEdges adds one edge per conservative dispatch candidate: a
// loaded concrete method named m whose receiver's method-name set
// covers the interface's full method-name set.
func (b *builder) interfaceEdges(n *Node, recv types.Type, m string, pos token.Pos) {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	required := make([]string, 0, iface.NumMethods())
	for i := 0; i < iface.NumMethods(); i++ {
		required = append(required, iface.Method(i).Name())
	}
	for _, cand := range b.ifaceIndex[m] {
		covers := true
		for _, r := range required {
			if !cand.recvMethods[r] {
				covers = false
				break
			}
		}
		if !covers {
			continue
		}
		if callee := b.g.byFunc[cand.fn.FullName()]; callee != nil {
			b.edge(n, callee, pos, KindInterface)
		}
	}
}

// edge records caller→callee, deduplicating exact repeats at the same
// position.
func (b *builder) edge(caller, callee *Node, pos token.Pos, kind EdgeKind) {
	for _, e := range caller.Out {
		if e.Callee == callee && e.Pos == pos && e.Kind == kind {
			return
		}
	}
	e := &Edge{Caller: caller, Callee: callee, Pos: pos, Kind: kind}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// displayName renders the short chain form: "sim.RunContext",
// "obs.(*Timer).Start".
func displayName(u *Unit, fd *ast.FuncDecl, obj *types.Func) string {
	pkg := u.Pkg.Name()
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || fd.Recv == nil {
		return pkg + "." + obj.Name()
	}
	recv := types.TypeString(sig.Recv().Type(), func(*types.Package) string { return "" })
	if strings.HasPrefix(recv, "*") {
		recv = "(" + recv + ")"
	}
	return pkg + "." + recv + "." + obj.Name()
}

// docHas reports whether the declaration's doc comment carries the
// given directive line (duplicated from the lint package to avoid an
// import cycle; the marker syntax is one trimmed line).
func docHas(fd *ast.FuncDecl, marker string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}
