package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked analysis unit: a package's sources (plus
// its in-package test files when requested) or an external _test
// package.
type Package struct {
	// Path is the full import path; RelPath is module-relative ("" for
	// the module root package). External test units carry a "_test"
	// suffix on Path but share the base package's RelPath so analyzer
	// path filters treat them as part of the package.
	Path    string
	RelPath string
	Dir     string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks the module's packages using only the
// standard library: go/parser for syntax, go/types for checking, and
// go/importer's source importer for out-of-module (stdlib) imports.
// In-module imports are resolved recursively from source so the loader
// works without compiled export data.
type Loader struct {
	// Root is the module root directory (where go.mod lives).
	Root string
	// ModPath is the module path declared in go.mod.
	ModPath string
	// IncludeTests adds _test.go files to each package's unit and
	// loads external test packages as separate units.
	IncludeTests bool

	fset    *token.FileSet
	src     types.Importer
	cache   map[string]*types.Package // import cache: base sources only
	loading map[string]bool           // cycle detection
}

// NewLoader reads go.mod under root and returns a loader.
func NewLoader(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s", filepath.Join(root, "go.mod"))
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:         root,
		ModPath:      modPath,
		IncludeTests: true,
		fset:         fset,
		src:          importer.ForCompiler(fset, "source", nil),
		cache:        make(map[string]*types.Package),
		loading:      make(map[string]bool),
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer: module-local paths are
// type-checked from source (base files only, cached); everything else
// is delegated to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := l.relPath(path); ok {
		return l.importModule(path, rel)
	}
	return l.src.Import(path)
}

// relPath maps a full import path to its module-relative form.
func (l *Loader) relPath(path string) (string, bool) {
	if path == l.ModPath {
		return "", true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return rest, true
	}
	return "", false
}

func (l *Loader) importModule(path, rel string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	// Imported packages are checked from their base sources only:
	// test files never participate in the import graph.
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	files, _, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go source in %s", dir)
	}
	pkg, _, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// parseDir parses a directory's sources, split into base files and
// external-test (package foo_test) files. In-package _test.go files
// are included in base only when includeTests is set.
func (l *Loader) parseDir(dir string, includeTests bool) (base, xtest []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var basePkg string
	for _, n := range names {
		isTest := strings.HasSuffix(n, "_test.go")
		if isTest && !includeTests {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: %w", err)
		}
		name := f.Name.Name
		switch {
		case isTest && strings.HasSuffix(name, "_test"):
			xtest = append(xtest, f)
		case basePkg == "" || name == basePkg:
			basePkg = name
			base = append(base, f)
		default:
			return nil, nil, fmt.Errorf("lint: %s: found packages %s and %s in one directory", dir, basePkg, name)
		}
	}
	return base, xtest, nil
}

// check type-checks one unit. Type errors are collected and returned
// as a single error so the driver can report every problem at once.
func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var errs []string
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if len(errs) < 10 {
				errs = append(errs, err.Error())
			}
		},
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if len(errs) > 0 {
		return nil, nil, fmt.Errorf("lint: type-checking %s:\n\t%s", path, strings.Join(errs, "\n\t"))
	}
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return pkg, info, nil
}

// LoadDir loads the analysis units of one directory: the package
// (with in-package tests when IncludeTests is set) and, when present,
// the external test package. asPath is the unit's import path; rel is
// the module-relative path used for analyzer filtering.
func (l *Loader) LoadDir(dir, asPath, rel string) ([]*Package, error) {
	base, xtest, err := l.parseDir(dir, l.IncludeTests)
	if err != nil {
		return nil, err
	}
	var units []*Package
	if len(base) > 0 {
		pkg, info, err := l.check(asPath, base)
		if err != nil {
			return nil, err
		}
		units = append(units, &Package{
			Path: asPath, RelPath: rel, Dir: dir,
			Fset: l.fset, Files: base, Types: pkg, Info: info,
		})
	}
	if len(xtest) > 0 {
		pkg, info, err := l.check(asPath+"_test", xtest)
		if err != nil {
			return nil, err
		}
		units = append(units, &Package{
			Path: asPath + "_test", RelPath: rel, Dir: dir,
			Fset: l.fset, Files: xtest, Types: pkg, Info: info,
		})
	}
	return units, nil
}

// Packages loads the analysis units matching the given patterns. A
// pattern is a module-relative (or full) import path, optionally
// ending in "/..." to include the subtree; "./..." , "..." and the
// empty pattern select the whole module. Matching no package is an
// error, as is any parse or type-check failure.
func (l *Loader) Packages(patterns ...string) ([]*Package, error) {
	dirs, err := l.moduleDirs()
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"..."}
	}
	var units []*Package
	matchedAny := make([]bool, len(patterns))
	for _, rel := range dirs {
		matched := false
		for i, pat := range patterns {
			if matchPattern(pat, rel, l.ModPath) {
				matchedAny[i] = true
				matched = true
			}
		}
		if !matched {
			continue
		}
		asPath := l.ModPath
		if rel != "" {
			asPath += "/" + rel
		}
		u, err := l.LoadDir(filepath.Join(l.Root, filepath.FromSlash(rel)), asPath, rel)
		if err != nil {
			return nil, err
		}
		units = append(units, u...)
	}
	for i, pat := range patterns {
		if !matchedAny[i] {
			return nil, fmt.Errorf("lint: pattern %q matched no packages", pat)
		}
	}
	return units, nil
}

// moduleDirs walks the module tree and returns every directory (as a
// module-relative slash path) containing Go sources, skipping vendor,
// testdata, and hidden directories.
func (l *Loader) moduleDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.Root && (name == "vendor" || name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasPrefix(d.Name(), ".") {
			rel, err := filepath.Rel(l.Root, filepath.Dir(p))
			if err != nil {
				return err
			}
			if rel == "." {
				rel = ""
			}
			rel = filepath.ToSlash(rel)
			if len(dirs) == 0 || dirs[len(dirs)-1] != rel {
				dirs = append(dirs, rel)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}

// matchPattern reports whether a module-relative package path matches
// one CLI pattern.
func matchPattern(pat, rel, modPath string) bool {
	pat = strings.TrimPrefix(pat, "./")
	pat = strings.TrimPrefix(pat, modPath+"/")
	if pat == modPath {
		pat = ""
	}
	if pat == "..." || pat == "" {
		return true
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return rel == sub || strings.HasPrefix(rel, sub+"/")
	}
	return rel == pat
}
