package lint_test

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"safesense/internal/lint"
)

// transitiveFixtureRoot is the self-contained module under testdata
// whose violations are all two calls away from the functions owning
// the invariants — the acceptance fixture for the interprocedural
// engine.
func transitiveFixtureRoot(t *testing.T) string {
	t.Helper()
	return filepath.Join(moduleRoot(t), "internal", "lint", "testdata", "mod", "transitive")
}

// TestTransitiveChains drives the full pipeline over the fixture module
// and pins the two expected findings: a wall-clock read reached from
// sim.Step and an fmt allocation reached from //safesense:hotpath
// sim.Record, each reported with its complete call chain.
func TestTransitiveChains(t *testing.T) {
	report, err := lint.Run(transitiveFixtureRoot(t), nil, lint.All(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Diagnostics) != 2 {
		for _, d := range report.Diagnostics {
			t.Logf("got: %s", d)
		}
		t.Fatalf("expected exactly 2 diagnostics, got %d", len(report.Diagnostics))
	}

	byAnalyzer := make(map[string]lint.Diagnostic)
	for _, d := range report.Diagnostics {
		byAnalyzer[d.Analyzer] = d
	}

	det, ok := byAnalyzer["determinism"]
	if !ok {
		t.Fatal("missing determinism diagnostic")
	}
	wantChain := []string{"sim.Step", "dsp.Window", "dsp.scale", "time.Now wall-clock read"}
	assertChain(t, det, wantChain)
	if !strings.HasSuffix(det.File, filepath.Join("internal", "sim", "step.go")) {
		t.Errorf("determinism diagnostic should anchor in sim (the in-scope root), got %s", det.File)
	}
	if want := "sim.Step → dsp.Window → dsp.scale → time.Now wall-clock read: transitively reads the wall clock"; !strings.HasPrefix(det.Message, want) {
		t.Errorf("determinism message = %q, want prefix %q", det.Message, want)
	}

	hot, ok := byAnalyzer["hotpathalloc"]
	if !ok {
		t.Fatal("missing hotpathalloc diagnostic")
	}
	assertChain(t, hot, []string{"sim.Record", "dsp.Format", "dsp.render", "fmt.Sprintf call"})
	if !strings.Contains(hot.Message, "//safesense:hotpath path") {
		t.Errorf("hotpathalloc message should name the hot-path contract, got %q", hot.Message)
	}
}

// assertChain pins a diagnostic's structured chain and checks the same
// sequence is rendered into the message with the arrow separator.
func assertChain(t *testing.T, d lint.Diagnostic, want []string) {
	t.Helper()
	if len(d.Chain) != len(want) {
		t.Fatalf("[%s] chain = %v, want %v", d.Analyzer, d.Chain, want)
	}
	for i := range want {
		if d.Chain[i] != want[i] {
			t.Fatalf("[%s] chain = %v, want %v", d.Analyzer, d.Chain, want)
		}
	}
	if rendered := lint.RenderChain(want); !strings.Contains(d.Message, rendered) {
		t.Errorf("[%s] message %q does not render chain %q", d.Analyzer, d.Message, rendered)
	}
}

// TestTransitiveJSONShape checks the machine interface: the chain rides
// a structured "chain" array alongside the usual fields.
func TestTransitiveJSONShape(t *testing.T) {
	report, err := lint.Run(transitiveFixtureRoot(t), nil, lint.All(), false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Packages    int `json:"packages"`
		Diagnostics []struct {
			Analyzer string   `json:"analyzer"`
			File     string   `json:"file"`
			Line     int      `json:"line"`
			Col      int      `json:"col"`
			Message  string   `json:"message"`
			Chain    []string `json:"chain"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report JSON does not decode: %v", err)
	}
	if decoded.Packages == 0 {
		t.Error("packages count missing from JSON")
	}
	for _, d := range decoded.Diagnostics {
		if len(d.Chain) < 2 {
			t.Errorf("[%s] %s:%d: transitive diagnostic should carry a chain, got %v",
				d.Analyzer, d.File, d.Line, d.Chain)
		}
		if d.Line == 0 || d.Col == 0 || d.Message == "" {
			t.Errorf("diagnostic missing position/message: %+v", d)
		}
	}
}

// TestTimingJSONShape checks that -timing surfaces the load/graph/per-
// analyzer breakdown in the JSON report.
func TestTimingJSONShape(t *testing.T) {
	report, err := lint.RunOpts(transitiveFixtureRoot(t), nil, lint.All(), lint.Options{Timing: true})
	if err != nil {
		t.Fatal(err)
	}
	if report.Timing == nil {
		t.Fatal("Options.Timing did not populate Report.Timing")
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Timing *struct {
			LoadSeconds  float64            `json:"load_seconds"`
			GraphSeconds float64            `json:"graph_seconds"`
			Analyzers    map[string]float64 `json:"analyzers"`
		} `json:"timing"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Timing == nil {
		t.Fatal("timing missing from JSON report")
	}
	if decoded.Timing.LoadSeconds <= 0 {
		t.Error("load_seconds should be positive")
	}
	for _, name := range []string{"determinism", "hotpathalloc", "ctxflow", "goroleak"} {
		if _, ok := decoded.Timing.Analyzers[name]; !ok {
			t.Errorf("timing breakdown missing analyzer %q", name)
		}
	}
}
