package lint_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"safesense/internal/lint"
)

// writeModule lays out a throwaway module for driver tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestRunReportsTypeErrors(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":  "module example.com/broken\n\ngo 1.22\n",
		"main.go": "package main\n\nfunc main() { undefinedIdent() }\n",
	})
	_, err := lint.Run(root, nil, lint.All(), true)
	if err == nil {
		t.Fatal("expected a type-check error, got nil")
	}
	if !strings.Contains(err.Error(), "undefinedIdent") {
		t.Errorf("error does not name the undefined identifier: %v", err)
	}
}

func TestRunRejectsMissingGoMod(t *testing.T) {
	if _, err := lint.Run(t.TempDir(), nil, lint.All(), true); err == nil {
		t.Fatal("expected an error for a directory without go.mod")
	}
}

func TestRunRejectsUnmatchedPattern(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":  "module example.com/tiny\n\ngo 1.22\n",
		"main.go": "package main\n\nfunc main() {}\n",
	})
	_, err := lint.Run(root, []string{"internal/nope/..."}, lint.All(), true)
	if err == nil || !strings.Contains(err.Error(), "matched no packages") {
		t.Fatalf("expected a matched-no-packages error, got %v", err)
	}
}

func TestRunCleanModule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":  "module example.com/tiny\n\ngo 1.22\n",
		"main.go": "package main\n\nfunc main() {}\n",
	})
	report, err := lint.Run(root, nil, lint.All(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Fatalf("expected a clean report, got %v", report.Diagnostics)
	}
	if report.Packages != 1 {
		t.Fatalf("Packages = %d, want 1", report.Packages)
	}
}

// TestJSONShape pins the machine interface: a top-level object with
// "packages" and a "diagnostics" array that is [] (never null) when
// clean, and carries the documented fields when not.
func TestJSONShape(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/shape\n\ngo 1.22\n",
		// The determinism analyzer only covers internal/sim and friends.
		"internal/sim/clock.go": `package sim

import "time"

func stamp() time.Time { return time.Now() }
`,
		"main.go": "package main\n\nfunc main() {}\n",
	})

	report, err := lint.Run(root, nil, lint.All(), true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	var decoded struct {
		Packages    int `json:"packages"`
		Diagnostics []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
			Hint     string `json:"hint"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(decoded.Diagnostics) != 1 {
		t.Fatalf("diagnostics = %d, want 1\n%s", len(decoded.Diagnostics), buf.String())
	}
	d := decoded.Diagnostics[0]
	if d.Analyzer != "determinism" || d.Line == 0 || d.Col == 0 ||
		!strings.HasSuffix(d.File, filepath.Join("internal", "sim", "clock.go")) ||
		!strings.Contains(d.Message, "time.Now") || d.Hint == "" {
		t.Errorf("unexpected diagnostic fields: %+v", d)
	}

	// A clean report must encode diagnostics as [], not null.
	clean := &lint.Report{Packages: 3, Diagnostics: []lint.Diagnostic{}}
	buf.Reset()
	if err := clean.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"diagnostics": []`) {
		t.Errorf("clean report should encode diagnostics as []:\n%s", buf.String())
	}
}

// TestPatternFiltering checks that package patterns restrict analysis:
// the violation in internal/sim is invisible when only cmd/... is
// linted.
func TestPatternFiltering(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/filter\n\ngo 1.22\n",
		"internal/sim/clock.go": `package sim

import "time"

func stamp() time.Time { return time.Now() }
`,
		"cmd/app/main.go": "package main\n\nfunc main() {}\n",
	})

	report, err := lint.Run(root, []string{"cmd/..."}, lint.All(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Fatalf("cmd/... should be clean, got %v", report.Diagnostics)
	}

	report, err = lint.Run(root, []string{"internal/sim"}, lint.All(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Diagnostics) != 1 {
		t.Fatalf("internal/sim should have exactly one finding, got %v", report.Diagnostics)
	}
}

// TestIncludeTestsToggle checks that -tests=false really excludes
// _test.go files from analysis.
func TestIncludeTestsToggle(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/toggle\n\ngo 1.22\n",
		"internal/sim/sim.go": `package sim

func Step() int { return 1 }
`,
		"internal/sim/sim_test.go": `package sim

import (
	"testing"
	"time"
)

func TestStep(t *testing.T) {
	_ = time.Now()
	if Step() != 1 {
		t.Fatal("step")
	}
}
`,
	})

	with, err := lint.Run(root, nil, lint.All(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(with.Diagnostics) != 1 {
		t.Fatalf("with tests: diagnostics = %v, want the time.Now finding", with.Diagnostics)
	}
	without, err := lint.Run(root, nil, lint.All(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !without.Clean() {
		t.Fatalf("without tests: expected clean, got %v", without.Diagnostics)
	}
}
