package lint

import (
	"bytes"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
)

// FloatCmp forbids raw == / != between floating-point (or complex)
// operands in the numeric kernels. Rounding makes exact equality of
// computed floats meaningless — a QR solve that is correct to 1e-15
// still fails `x == 4` — and such comparisons are how numerically
// careful code rots one refactor at a time. Approved forms:
//
//   - comparison against an exact constant zero (`det == 0`): a
//     well-defined IEEE test used as a singularity / degeneracy guard;
//   - self-comparison (`x != x`): the portable NaN test;
//   - anything inside a function whose doc comment carries the
//     //safesense:floatcmp-helper marker — that is where the epsilon
//     logic itself lives;
//   - a line granted `//safesense:allow floatcmp <reason>`.
//
// Everything else must go through an epsilon helper.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "forbid raw == / != on floating-point operands outside approved epsilon helpers",
	Paths: []string{
		"internal/mat",
		"internal/dsp",
		"internal/poly",
		"internal/stats",
	},
	Run: runFloatCmp,
}

// HelperMarker exempts a function's body from floatcmp: it marks the
// approved epsilon helpers themselves.
const HelperMarker = "//safesense:floatcmp-helper"

func runFloatCmp(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || FuncDocHas(fn, HelperMarker) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
					return true
				}
				checkFloatCmp(p, bin)
				return true
			})
		}
	}
}

func checkFloatCmp(p *Pass, bin *ast.BinaryExpr) {
	xt, xok := p.Info.Types[bin.X]
	yt, yok := p.Info.Types[bin.Y]
	if !xok || !yok {
		return
	}
	if !isFloatish(xt.Type) && !isFloatish(yt.Type) {
		return
	}
	// Exact constant zero is a well-defined guard, not an epsilon bug.
	if isConstZero(xt) || isConstZero(yt) {
		return
	}
	// x != x / x == x is the NaN idiom.
	if exprString(p.Fset, bin.X) == exprString(p.Fset, bin.Y) {
		return
	}
	p.Reportf(bin.OpPos,
		"use an epsilon helper (math.Abs(a-b) <= tol), or mark the helper itself with "+HelperMarker,
		"raw floating-point %s comparison", bin.Op)
}

// isFloatish reports whether t's underlying type is floating point or
// complex (including named types over them).
func isFloatish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isConstZero reports whether the expression is a compile-time
// constant equal to exactly zero (covers literals and named zero
// constants).
func isConstZero(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	case constant.Complex:
		return constant.Sign(constant.Real(tv.Value)) == 0 && constant.Sign(constant.Imag(tv.Value)) == 0
	}
	return false
}

// exprString renders an expression for textual identity checks.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, e)
	return buf.String()
}
