package lint_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"safesense/internal/lint"
)

// fixtureCases pairs each analyzer with its golden package under
// testdata/src. The rel path is what the loader reports as the unit's
// module-relative path; it is chosen to satisfy the analyzer's Paths
// filter so the fixture is analyzed exactly like an in-scope package.
var fixtureCases = []struct {
	name     string
	analyzer *lint.Analyzer
	rel      string
}{
	{"determinism", lint.Determinism, "internal/sim"},
	{"floatcmp", lint.FloatCmp, "internal/mat"},
	{"hotpathalloc", lint.HotPathAlloc, "internal/obs"},
	{"metriclabels", lint.MetricLabels, "internal/obs"},
	{"ctxflow", lint.CtxFlow, "internal/campaign"},
	{"goroleak", lint.GoroLeak, "internal/dist"},
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// wantRe matches `// want "substr"` markers; several quoted strings on
// one line declare several expected diagnostics.
var wantRe = regexp.MustCompile(`// want ((?:"[^"]*"\s*)+)`)

type want struct {
	file    string
	line    int
	substr  string
	matched bool
}

// parseWants extracts the expected-diagnostic markers from every Go
// file in dir.
func parseWants(t *testing.T, dir string) []*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range regexp.MustCompile(`"[^"]*"`).FindAllString(m[1], -1) {
				wants = append(wants, &want{file: path, line: i + 1, substr: q[1 : len(q)-1]})
			}
		}
	}
	return wants
}

// TestGoldenFixtures checks, per analyzer, that every marked line in
// the positive fixture is flagged with the expected message and that
// the negative fixture (and every unmarked line) stays silent.
func TestGoldenFixtures(t *testing.T) {
	root := moduleRoot(t)
	for _, fc := range fixtureCases {
		t.Run(fc.name, func(t *testing.T) {
			loader, err := lint.NewLoader(root)
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Join(root, "internal", "lint", "testdata", "src", fc.name)
			units, err := loader.LoadDir(dir, "fixture/"+fc.name, fc.rel)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			diags := lint.RunAnalyzers(units, []*lint.Analyzer{fc.analyzer})
			wants := parseWants(t, dir)
			if len(wants) == 0 {
				t.Fatal("fixture declares no want markers")
			}

			for _, d := range diags {
				if w := matchWant(wants, d); w == nil {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: expected diagnostic containing %q, got none",
						w.file, w.line, w.substr)
				}
			}
		})
	}
}

// matchWant consumes the first unmatched marker covering the
// diagnostic's position and message.
func matchWant(wants []*want, d lint.Diagnostic) *want {
	for _, w := range wants {
		if !w.matched && w.file == d.File && w.line == d.Line && strings.Contains(d.Message, w.substr) {
			w.matched = true
			return w
		}
	}
	return nil
}

// TestFixturesAreOutOfScope guards the loader contract that testdata
// trees never leak into a normal module walk: the fixtures deliberately
// contain violations and must stay invisible to `safesense-lint ./...`.
func TestFixturesAreOutOfScope(t *testing.T) {
	loader, err := lint.NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Packages("internal/lint/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if strings.Contains(p.Dir, "testdata") {
			t.Errorf("module walk leaked a testdata package: %s", p.Dir)
		}
	}
}
