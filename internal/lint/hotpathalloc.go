package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc guards the functions the whole performance story rests
// on: the ~15 ns lock-free metrics path in internal/obs and the
// per-step flight recorder in internal/sim. A function whose doc
// comment carries
//
//	//safesense:hotpath
//
// promises "no hidden allocation per call", and this analyzer keeps
// the promise honest by flagging the three ways Go code quietly starts
// allocating:
//
//   - fmt calls (Sprintf and friends always allocate, and their
//     variadic ...any boxes every argument);
//   - closures that capture enclosing variables (the capture forces a
//     heap allocation for the closed-over variable);
//   - interface boxing: passing a concrete value to an interface
//     parameter (including variadic ...any), which allocates unless
//     the escape analyzer gets lucky.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid fmt calls, capturing closures, and interface boxing in //safesense:hotpath functions",
	Run:  runHotPathAlloc,
}

// HotPathMarker annotates a function as an allocation-free hot path.
const HotPathMarker = "//safesense:hotpath"

func runHotPathAlloc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !FuncDocHas(fn, HotPathMarker) {
				continue
			}
			checkHotPathBody(p, fn)
		}
	}
}

func checkHotPathBody(p *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotPathCall(p, n)
		case *ast.FuncLit:
			reportClosureCaptures(p, fn, n)
		}
		return true
	})
}

func checkHotPathCall(p *Pass, call *ast.CallExpr) {
	// fmt anywhere in a hot path is an allocation (and usually a
	// boxing cascade through ...any).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := p.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			p.Reportf(call.Pos(),
				"format outside the hot path, or append to a preallocated []byte with strconv",
				"fmt.%s call allocates on a //safesense:hotpath function", obj.Name())
			return
		}
	}
	// Interface boxing: concrete argument, interface parameter.
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.IsType() { // conversions are not calls
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return // builtin (append, len, ...) — no boxing
	}
	if call.Ellipsis != token.NoPos && call.Ellipsis.IsValid() {
		return // slice already built; the boxing happened elsewhere
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := p.Info.Types[arg]
		if !ok || at.IsNil() || types.IsInterface(at.Type.Underlying()) {
			continue
		}
		p.Reportf(arg.Pos(),
			"keep hot-path signatures concrete; convert to interfaces outside the per-step loop",
			"passing concrete %s to interface parameter boxes (allocates) on a //safesense:hotpath function", at.Type.String())
	}
}

// reportClosureCaptures flags a function literal that captures
// variables declared in the enclosing hot-path function: the capture
// heap-allocates the variable and the closure itself.
func reportClosureCaptures(p *Pass, fn *ast.FuncDecl, lit *ast.FuncLit) {
	reported := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Captured iff declared inside the enclosing function but
		// outside the literal.
		if obj.Pos() >= fn.Pos() && obj.Pos() < fn.End() && (obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()) {
			p.Reportf(lit.Pos(),
				"hoist the closure out of the hot path or pass state explicitly",
				"closure captures %q; the capture heap-allocates on a //safesense:hotpath function", obj.Name())
			reported = true
			return false
		}
		return true
	})
}
