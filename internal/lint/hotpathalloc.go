package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"safesense/internal/lint/callgraph"
)

// HotPathAlloc guards the functions the whole performance story rests
// on: the ~15 ns lock-free metrics path in internal/obs and the
// per-step flight recorder in internal/sim. A function whose doc
// comment carries
//
//	//safesense:hotpath
//
// promises "no hidden allocation per call", and this analyzer keeps
// the promise honest by flagging the three ways Go code quietly starts
// allocating:
//
//   - fmt calls (Sprintf and friends always allocate, and their
//     variadic ...any boxes every argument);
//   - closures that capture enclosing variables (the capture forces a
//     heap allocation for the closed-over variable);
//   - interface boxing: passing a concrete value to an interface
//     parameter (including variadic ...any), which allocates unless
//     the escape analyzer gets lucky.
//
// The marker is transitive: it propagates along the call graph to
// every statically reachable callee, marked or not — an fmt.Sprintf
// two helpers below a //safesense:hotpath function costs the hot path
// exactly what an inline one would. Transitive findings report the
// full call chain and anchor at the marked function's call site, where
// a //safesense:allow can suppress them; propagation does not continue
// through other marked functions (they are roots of their own) and
// cannot follow calls through function-typed variables.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid fmt calls, capturing closures, and interface boxing in (and statically reachable from) //safesense:hotpath functions",
	Run:  runHotPathAlloc,
}

// HotPathMarker annotates a function as an allocation-free hot path.
const HotPathMarker = "//safesense:hotpath"

func runHotPathAlloc(p *Pass) {
	facts := allocFacts(p.Graph)
	for _, n := range unitNodes(p) {
		if !effectiveHotPath(p.Graph, n) {
			continue
		}
		// Direct findings: the node is marked (or is a literal inside a
		// marked function) — report every allocation in its own body.
		for _, f := range facts[n] {
			p.Reportf(f.pos, f.hint, "%s", f.direct)
		}
		if !n.HotPath {
			continue
		}
		// Transitive findings: walk out of the marked root. Literals are
		// always expanded (they extend their creator); other marked
		// declarations are roots of their own walks.
		tree := p.Graph.ReachFrom(n, func(x *callgraph.Node) bool {
			return !x.HotPath
		})
		for _, hit := range sortedReached(tree) {
			if effectiveHotPath(p.Graph, hit) {
				continue // covered by a direct report (its own, or its marked base's)
			}
			fs := facts[hit]
			if len(fs) == 0 {
				continue
			}
			chain := callgraph.ChainTo(tree, hit)
			if chain == nil {
				continue
			}
			display := chainDisplay(n, chain)
			display = append(display, fs[0].desc)
			extra := ""
			if len(fs) > 1 {
				extra = " (and more in the same function)"
			}
			p.ReportChain(chain[0].Pos, fs[0].hint, display,
				"transitively %s on a //safesense:hotpath path%s", fs[0].what, extra)
		}
	}
}

// effectiveHotPath reports whether the node carries the hot-path
// discipline directly: it is a marked declaration, or a function
// literal whose lexically enclosing declaration is marked (the direct
// scan of the marked function covers its nested literals).
func effectiveHotPath(g *callgraph.Graph, n *callgraph.Node) bool {
	if n.HotPath {
		return true
	}
	if n.Lit == nil {
		return false
	}
	base, _, ok := strings.Cut(n.ID, "$")
	if !ok {
		return false
	}
	bn := g.Nodes[base]
	return bn != nil && bn.HotPath
}

// allocFact is one direct allocation found in a function body.
type allocFact struct {
	pos    token.Pos
	desc   string // chain-tail form, e.g. "fmt.Sprintf call"
	what   string // transitive sentence form, e.g. "calls fmt.Sprintf (allocates)"
	direct string // message used when the owning function itself is marked
	hint   string
}

// allocFacts scans every node's own body once per graph and memoizes
// its direct allocations, keyed by node.
func allocFacts(g *callgraph.Graph) map[*callgraph.Node][]allocFact {
	const key = "hotpathalloc.facts"
	if cached, ok := g.Cache[key]; ok {
		return cached.(map[*callgraph.Node][]allocFact)
	}
	facts := make(map[*callgraph.Node][]allocFact)
	for _, n := range g.SortedNodes() {
		var fs []allocFact
		n.InspectOwn(func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				fs = append(fs, callAllocFacts(n.Unit.Info, call)...)
			}
			return true
		})
		n.InspectOwnLits(func(lit *ast.FuncLit) {
			if f, ok := closureCaptureFact(n, lit); ok {
				fs = append(fs, f)
			}
		})
		sort.Slice(fs, func(i, j int) bool { return fs[i].pos < fs[j].pos })
		if len(fs) > 0 {
			facts[n] = fs
		}
	}
	g.Cache[key] = facts
	return facts
}

// callAllocFacts classifies one call expression: fmt calls and
// interface boxing of concrete arguments.
func callAllocFacts(info *types.Info, call *ast.CallExpr) []allocFact {
	// fmt anywhere in a hot path is an allocation (and usually a
	// boxing cascade through ...any).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			return []allocFact{{
				pos:    call.Pos(),
				desc:   "fmt." + obj.Name() + " call",
				what:   "calls fmt." + obj.Name() + " (allocates)",
				direct: "fmt." + obj.Name() + " call allocates on a //safesense:hotpath function",
				hint:   "format outside the hot path, or append to a preallocated []byte with strconv",
			}}
		}
	}
	// Interface boxing: concrete argument, interface parameter.
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() { // conversions are not calls
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil // builtin (append, len, ...) — no boxing
	}
	if call.Ellipsis != token.NoPos && call.Ellipsis.IsValid() {
		return nil // slice already built; the boxing happened elsewhere
	}
	var out []allocFact
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.IsNil() || types.IsInterface(at.Type.Underlying()) {
			continue
		}
		out = append(out, allocFact{
			pos:    arg.Pos(),
			desc:   "interface boxing of " + at.Type.String(),
			what:   "boxes concrete " + at.Type.String() + " into an interface parameter (allocates)",
			direct: "passing concrete " + at.Type.String() + " to interface parameter boxes (allocates) on a //safesense:hotpath function",
			hint:   "keep hot-path signatures concrete; convert to interfaces outside the per-step loop",
		})
	}
	return out
}

// closureCaptureFact flags a function literal directly nested in n that
// captures a variable declared in n outside the literal: the capture
// heap-allocates the variable and the closure itself. The allocation
// belongs to n — it happens where the closure value is created.
func closureCaptureFact(n *callgraph.Node, lit *ast.FuncLit) (allocFact, bool) {
	var enclPos, enclEnd token.Pos
	switch {
	case n.Decl != nil:
		enclPos, enclEnd = n.Decl.Pos(), n.Decl.End()
	case n.Lit != nil:
		enclPos, enclEnd = n.Lit.Pos(), n.Lit.End()
	default:
		return allocFact{}, false
	}
	info := n.Unit.Info
	var fact allocFact
	found := false
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		if found {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Captured iff declared inside the enclosing function but
		// outside the literal.
		if obj.Pos() >= enclPos && obj.Pos() < enclEnd && (obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()) {
			fact = allocFact{
				pos:    lit.Pos(),
				desc:   "capturing closure",
				what:   "creates a closure capturing " + quoteName(obj.Name()) + " (heap-allocates)",
				direct: "closure captures " + quoteName(obj.Name()) + "; the capture heap-allocates on a //safesense:hotpath function",
				hint:   "hoist the closure out of the hot path or pass state explicitly",
			}
			found = true
			return false
		}
		return true
	})
	return fact, found
}

// quoteName quotes a name the way %q would.
func quoteName(name string) string { return "\"" + name + "\"" }
