// Package lint is safesense's stdlib-only static-analysis framework:
// a tiny analyzer API (in the spirit of golang.org/x/tools/go/analysis,
// but built purely on go/parser, go/types, and go/importer so the repo
// keeps its no-external-dependency rule), a module-aware package
// loader, and the four domain analyzers that machine-check the
// invariants the paper reproduction depends on:
//
//   - determinism: the sim/estimator stack must be bit-for-bit
//     reproducible — no wall clocks, no global RNG, no map-iteration
//     ordered output in the scenario pipeline.
//   - floatcmp: numeric kernels compare floats through epsilon
//     helpers, never raw == / !=.
//   - hotpathalloc: functions annotated //safesense:hotpath stay free
//     of fmt calls, capturing closures, and interface boxing.
//   - metriclabels: metric families keep constant label keys and
//     bounded label-value cardinality.
//
// Diagnostics can be suppressed one line at a time with a trailing or
// preceding comment of the form
//
//	//safesense:allow <analyzer> <reason>
//
// The reason is mandatory by convention (reviewed, not enforced): an
// allow comment is a claim that a human has checked the exception.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"safesense/internal/lint/callgraph"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow comments.
	Name string
	// Doc is a one-line description of the invariant.
	Doc string
	// Paths restricts the analyzer to packages whose module-relative
	// import path equals, or is contained in, one of these prefixes
	// (e.g. "internal/dsp" also covers "internal/dsp/fft"). Empty
	// means every package.
	Paths []string
	// Run inspects one package and reports diagnostics via the pass.
	Run func(*Pass)
}

// AppliesTo reports whether the analyzer covers the package with the
// given module-relative path.
func (a *Analyzer) AppliesTo(relPath string) bool {
	if len(a.Paths) == 0 {
		return true
	}
	for _, p := range a.Paths {
		if relPath == p || strings.HasPrefix(relPath, p+"/") {
			return true
		}
	}
	return false
}

// Diagnostic is one finding: where, what, and how to fix it.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	// Hint tells the author the approved way to write the code.
	Hint string `json:"hint,omitempty"`
	// Chain, set by the transitive analyzers, is the call path from the
	// function owning the invariant to the violation, ending in the
	// violation itself (e.g. ["sim.Step", "dsp.window", "time.Now
	// wall-clock read"]). The same chain is rendered into Message with
	// " → " separators; the structured form is for machine consumers.
	Chain []string `json:"chain,omitempty"`
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
	if d.Hint != "" {
		s += " (hint: " + d.Hint + ")"
	}
	return s
}

// RenderChain joins chain elements with the arrow separator used in
// transitive diagnostics.
func RenderChain(chain []string) string { return strings.Join(chain, " → ") }

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees (including in-package test
	// files when the loader was asked for them).
	Files []*ast.File
	// Pkg and Info are the go/types results for Files.
	Pkg  *types.Package
	Info *types.Info
	// RelPath is the unit's module-relative import path.
	RelPath string
	// Graph is the module-wide call graph, shared by every pass of one
	// run; its Cache lets analyzers memoize module-level facts once.
	Graph *callgraph.Graph

	diags   *[]Diagnostic
	allowed map[string]map[int]map[string]bool // file -> line -> analyzer set
}

// Reportf records a diagnostic at pos unless an allow comment covers
// the line.
func (p *Pass) Reportf(pos token.Pos, hint, format string, args ...any) {
	p.report(pos, hint, nil, format, args...)
}

// ReportChain records a transitive diagnostic at pos: the message is
// prefixed with the rendered call chain, and the structured chain rides
// the diagnostic's Chain field.
func (p *Pass) ReportChain(pos token.Pos, hint string, chain []string, format string, args ...any) {
	p.report(pos, hint, chain, "%s: %s", RenderChain(chain), fmt.Sprintf(format, args...))
}

func (p *Pass) report(pos token.Pos, hint string, chain []string, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowedAt(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
		Hint:     hint,
		Chain:    chain,
	})
}

func (p *Pass) allowedAt(pos token.Position) bool {
	byLine := p.allowed[pos.Filename]
	if byLine == nil {
		return false
	}
	set := byLine[pos.Line]
	return set != nil && (set[p.Analyzer.Name] || set["all"])
}

// allowPrefix introduces a line-scoped suppression comment.
const allowPrefix = "//safesense:allow "

// buildAllowIndex scans every comment for allow directives. A
// directive covers its own source line and the line below it, so both
// trailing comments and own-line comments above the code work.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	idx := make(map[string]map[int]map[string]bool)
	add := func(file string, line int, name string) {
		byLine := idx[file]
		if byLine == nil {
			byLine = make(map[int]map[string]bool)
			idx[file] = byLine
		}
		set := byLine[line]
		if set == nil {
			set = make(map[string]bool)
			byLine[line] = set
		}
		set[name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				name, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				add(pos.Filename, pos.Line, name)
				add(pos.Filename, pos.Line+1, name)
			}
		}
	}
	return idx
}

// FuncDocHas reports whether the function declaration's doc comment
// carries the given //safesense:<marker> directive line.
func FuncDocHas(fn *ast.FuncDecl, marker string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

// GraphUnits converts loaded packages into call-graph units.
func GraphUnits(pkgs []*Package) []*callgraph.Unit {
	units := make([]*callgraph.Unit, len(pkgs))
	for i, p := range pkgs {
		units[i] = &callgraph.Unit{
			RelPath: p.RelPath,
			Files:   p.Files,
			Pkg:     p.Types,
			Info:    p.Info,
		}
	}
	return units
}

// RunAnalyzers executes every applicable analyzer over the loaded
// packages and returns the findings sorted by position. The call graph
// is built over exactly these packages; the driver uses
// RunAnalyzersGraph to analyze a pattern-filtered subset against a
// module-wide graph.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	} else {
		fset = token.NewFileSet()
	}
	graph := callgraph.Build(fset, GraphUnits(pkgs))
	return RunAnalyzersGraph(pkgs, graph, analyzers, nil)
}

// RunAnalyzersGraph executes every applicable analyzer over the given
// (possibly pattern-filtered) packages, sharing one prebuilt call
// graph. When timings is non-nil, each analyzer's cumulative wall time
// is accumulated into it by name.
func RunAnalyzersGraph(pkgs []*Package, graph *callgraph.Graph, analyzers []*Analyzer, timings map[string]float64) []Diagnostic {
	if timings != nil {
		// Every analyzer appears in the breakdown, even when its scoped
		// paths matched nothing this run.
		for _, a := range analyzers {
			timings[a.Name] += 0
		}
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allowed := buildAllowIndex(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			if !a.AppliesTo(pkg.RelPath) {
				continue
			}
			start := wallClock()
			a.Run(&Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				RelPath:  pkg.RelPath,
				Graph:    graph,
				diags:    &diags,
				allowed:  allowed,
			})
			if timings != nil {
				timings[a.Name] += wallClock().Sub(start).Seconds()
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// All returns the six safesense analyzers.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		FloatCmp,
		HotPathAlloc,
		MetricLabels,
		CtxFlow,
		GoroLeak,
	}
}
