package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces context discipline on the request/job paths the
// distributed arc depends on: campaign cancellation, worker lease
// renewal, and HTTP shutdown all work only if cancellation actually
// reaches the bottom of the call stack. A function that already
// carries a context.Context (or an *http.Request, whose Context()
// carries the server's) must thread it downward, not mint a fresh
// root:
//
//   - context.Background() / context.TODO() inside such a function
//     detaches everything below it from the caller's cancellation and
//     deadline — the classic "worker that outlives its job" bug. The
//     rare deliberate detach (a sweep that must outlive its HTTP
//     request) documents itself with //safesense:allow ctxflow.
//   - calling pkg.F when the same package declares pkg.FContext with a
//     leading context.Context parameter drops the caller's context on
//     the floor; the Context variant exists precisely to be used here.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "functions that receive a context must pass it on — no fresh context roots, no dropping ctx when a Context variant exists",
	Paths: []string{
		"cmd/safesensed",
		"internal/campaign",
		"internal/dist",
	},
	Run: runCtxFlow,
}

func runCtxFlow(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !carriesContext(p.Info, fn.Type) {
				continue
			}
			checkCtxFlowBody(p, fn.Body)
		}
	}
}

// carriesContext reports whether the function signature includes a
// context.Context or *http.Request parameter.
func carriesContext(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			continue
		}
		if isContextType(tv.Type) || isHTTPRequestPtr(tv.Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

// checkCtxFlowBody walks a context-carrying function body (nested
// literals included — they inherit the enclosing context) and flags
// fresh context roots and dropped-context calls.
func checkCtxFlowBody(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(p.Info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if callee.Pkg().Path() == "context" && (callee.Name() == "Background" || callee.Name() == "TODO") {
			p.Reportf(call.Pos(),
				"thread the caller's ctx (or r.Context()) down; a deliberate detach needs //safesense:allow ctxflow with a reason",
				"context.%s() inside a context-carrying function detaches callees from the caller's cancellation", callee.Name())
			return true
		}
		reportDroppedContextVariant(p, call, callee)
		return true
	})
}

// calleeFunc resolves a call's target to a *types.Func, nil for
// builtins, conversions, and calls through variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// reportDroppedContextVariant flags calling pkg.F when pkg.FContext
// (leading context.Context parameter) exists: the caller has a context
// and the API offers a way to pass it.
func reportDroppedContextVariant(p *Pass, call *ast.CallExpr, callee *types.Func) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok || callee.Name() == "" {
		return
	}
	// Methods are skipped: the variant convention (F / FContext) is a
	// package-level API pattern in this codebase.
	if sig.Recv() != nil {
		return
	}
	// Already context-aware? Nothing to flag.
	if sigTakesLeadingContext(sig) {
		return
	}
	variant, ok := callee.Pkg().Scope().Lookup(callee.Name() + "Context").(*types.Func)
	if !ok {
		return
	}
	vsig, ok := variant.Type().(*types.Signature)
	if !ok || !sigTakesLeadingContext(vsig) {
		return
	}
	p.Reportf(call.Pos(),
		"call the Context variant and pass the caller's ctx",
		"%s.%s drops the caller's context; %s.%sContext exists", callee.Pkg().Name(), callee.Name(), callee.Pkg().Name(), callee.Name())
}

// sigTakesLeadingContext reports whether the signature's first
// parameter is a context.Context.
func sigTakesLeadingContext(sig *types.Signature) bool {
	return sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
}
