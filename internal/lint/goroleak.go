package lint

import (
	"go/ast"
	"go/token"
)

// GoroLeak demands a provable termination path for every goroutine
// spawned in the long-lived layers (campaign engine, distributed
// coordinator/worker, observability hub). A goroutine that loops
// forever without a cancellation signal outlives the work it serves —
// the leaked renew-loop and the stuck progress reporter are exactly
// the failure modes the dist smoke tests exist to catch, and this
// analyzer machine-checks the structural half:
//
//   - a goroutine body without loops terminates when its work does;
//   - `for ... ; cond ; ...` and `for range x` loops are bounded by
//     their condition / the ranged container (ranging a channel
//     terminates when the channel closes — the close is the signal);
//   - a bare `for { }` loop must both receive from a channel (a select
//     case or a direct <-ch — ctx.Done(), a ticker, a close-signal
//     channel) and have an exit (return, or a break out of the loop),
//     the select-on-ctx.Done idiom;
//   - a `go` statement whose target cannot be resolved statically
//     (a call through a function-typed variable, or a function outside
//     the module) cannot be proved and is flagged.
//
// A goroutine that is intentionally process-lifetime (a metrics
// flusher behind sync.Once) registers the exception with
// //safesense:allow goroleak and a reason.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "every goroutine in the long-lived layers needs a provable termination path (ctx.Done/close signal, bounded loop, or documented exception)",
	Paths: []string{
		"internal/campaign",
		"internal/dist",
		"internal/obs",
	},
	Run: runGoroLeak,
}

func runGoroLeak(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					checkGoStmt(p, g)
				}
				return true
			})
		}
	}
}

// checkGoStmt resolves the goroutine's target body and applies the
// termination heuristics.
func checkGoStmt(p *Pass, g *ast.GoStmt) {
	fun := ast.Unparen(g.Call.Fun)
	if lit, ok := fun.(*ast.FuncLit); ok {
		reportUnprovableLoops(p, g, lit.Body)
		return
	}
	fn := calleeFunc(p.Info, g.Call)
	if fn == nil {
		p.Reportf(g.Pos(),
			"spawn a named function or literal so the termination path is visible, or document with //safesense:allow goroleak",
			"goroutine target is a function value; termination cannot be proved statically")
		return
	}
	node := p.Graph.NodeOf(fn)
	if node == nil || node.Body() == nil {
		p.Reportf(g.Pos(),
			"wrap the call in a literal that selects on ctx.Done, or document with //safesense:allow goroleak",
			"goroutine target %s is outside the module; termination cannot be proved statically", fn.FullName())
		return
	}
	reportUnprovableLoops(p, g, node.Body())
}

// reportUnprovableLoops flags the go statement when the target body
// contains a condition-less `for { }` loop with no channel receive or
// no exit. Bounded loops and range loops pass; a body with no loops
// terminates with its work.
func reportUnprovableLoops(p *Pass, g *ast.GoStmt, body *ast.BlockStmt) {
	reported := false
	ast.Inspect(body, func(n ast.Node) bool {
		if reported {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			// A literal nested inside the goroutine body runs only if
			// something calls or spawns it; its loops are judged there.
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		switch {
		case !loopReceives(loop):
			p.Reportf(g.Pos(),
				"select on ctx.Done() or a close-signal channel inside the loop",
				"goroutine loops forever without receiving from any channel; no cancellation can reach it")
			reported = true
		case !loopExits(loop):
			p.Reportf(g.Pos(),
				"return (or break) when ctx.Done()/the close signal fires",
				"goroutine receives from a channel but never exits its loop; cancellation is received and ignored")
			reported = true
		}
		return !reported
	})
}

// loopReceives reports whether the loop body contains a channel
// receive: a <-ch expression, a select receive case, or a range over a
// channel. Function literals are skipped — their control flow is not
// the loop's.
func loopReceives(loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			for _, cl := range n.Body.List {
				comm := cl.(*ast.CommClause)
				if comm.Comm == nil {
					continue // default case
				}
				if _, isSend := comm.Comm.(*ast.SendStmt); !isSend {
					found = true
				}
			}
		case *ast.RangeStmt:
			// range over a channel receives; over anything else it is a
			// bounded inner loop either way.
			found = true
		}
		return !found
	})
	return found
}

// loopExits reports whether control can leave the loop: a return
// anywhere in the body (skipping nested literals), or a break that
// targets this loop — unlabeled and not nested inside an inner
// for/range/switch/select (which would consume it). Labeled breaks are
// accepted generously (resolving labels is not worth the precision).
func loopExits(loop *ast.ForStmt) bool {
	return stmtsExit(loop.Body.List, true)
}

// stmtsExit walks statements; breakable records whether an unlabeled
// break here still targets the goroutine's outer loop.
func stmtsExit(stmts []ast.Stmt, breakable bool) bool {
	for _, s := range stmts {
		if stmtExits(s, breakable) {
			return true
		}
	}
	return false
}

func stmtExits(s ast.Stmt, breakable bool) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		if s.Tok == token.BREAK && (breakable || s.Label != nil) {
			return true
		}
	case *ast.BlockStmt:
		return stmtsExit(s.List, breakable)
	case *ast.IfStmt:
		if stmtExits(s.Body, breakable) {
			return true
		}
		if s.Else != nil {
			return stmtExits(s.Else, breakable)
		}
	case *ast.ForStmt:
		return stmtsExit(s.Body.List, false)
	case *ast.RangeStmt:
		return stmtsExit(s.Body.List, false)
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if stmtsExit(cl.(*ast.CommClause).Body, false) {
				return true
			}
		}
	case *ast.SwitchStmt:
		for _, cl := range s.Body.List {
			if stmtsExit(cl.(*ast.CaseClause).Body, false) {
				return true
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if stmtsExit(cl.(*ast.CaseClause).Body, false) {
				return true
			}
		}
	case *ast.LabeledStmt:
		return stmtExits(s.Stmt, breakable)
	}
	return false
}
