package lint

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the reproduction's core contract: for a given
// scenario seed, the sim/estimator stack is bit-for-bit deterministic.
// The paper's headline results (zero CRA false positives/negatives,
// RLS takeover exactly at the attack step) are only checkable because
// reruns are exact, so inside the scenario pipeline:
//
//   - no wall-clock reads (time.Now / time.Since): clocks must be
//     injected through a package-level seam (`var clock = time.Now`),
//     which is the one place a time.Now *reference* is permitted;
//   - no global math/rand state (rand.Float64, rand.Intn, ...): all
//     randomness flows from the scenario seed through constructed
//     generators (rand.New, noise.NewSource);
//   - no output built by ranging over a map: map iteration order is
//     deliberately randomized by the runtime, so a loop that appends
//     to a slice, prints, or writes while ranging a map produces a
//     different artifact every run unless the keys are sorted first.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall clocks, global RNG, and map-ordered output in the deterministic pipeline",
	Paths: []string{
		"internal/sim",
		"internal/estimate",
		"internal/cra",
		"internal/radar",
		"internal/campaign",
		"internal/report",
		// The distributed coordinator/worker layer must stay replayable
		// too: lease ordering and checkpoint replay may consult the
		// clock only through the injected seam, and status payloads must
		// not leak map iteration order.
		"internal/dist",
		// The stream hub sits on the sim hot path (flight-recorder sink,
		// campaign callbacks): it must never consult a wall clock or
		// iterate maps into the wire — event order is the publish order.
		"internal/obs/stream",
		// The forensic store's dedup hashes and eviction order must be
		// reproducible across nodes and restarts: recency is a logical
		// sequence counter (never wall time) and listings sort before
		// they serialize.
		"internal/obs/forensic",
	},
	Run: runDeterminism,
}

// globalRandFuncs are the math/rand (and rand/v2) package-level
// functions backed by shared global state. Constructors (New,
// NewSource, NewPCG, NewChaCha8, NewZipf) are the approved seeded
// idiom and stay legal.
var globalRandFuncs = map[string]bool{
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Int": true, "Int31": true, "Int31n": true, "Int32": true, "Int32N": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"IntN": true, "Intn": true, "N": true,
	"Uint": true, "Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true, "UintN": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func runDeterminism(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					deterministicWalk(p, d.Body)
				}
			case *ast.GenDecl:
				// Package-level var initializers are the injected-clock
				// seam: `var clock = time.Now` is allowed. Calling the
				// clock at package init time is still flagged, so only
				// call expressions are inspected here.
				ast.Inspect(d, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
							reportNondeterministic(p, sel)
						}
					}
					return true
				})
			}
		}
	}
}

// deterministicWalk flags clock and global-RNG uses (references and
// calls) plus map-ordered output inside a function body.
func deterministicWalk(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			reportNondeterministic(p, n)
		case *ast.RangeStmt:
			checkMapRangeOutput(p, body, n)
		}
		return true
	})
}

// reportNondeterministic resolves a selector and reports it when it
// names a forbidden clock or global-RNG function.
func reportNondeterministic(p *Pass, sel *ast.SelectorExpr) {
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if obj.Name() == "Now" || obj.Name() == "Since" || obj.Name() == "Until" {
			p.Reportf(sel.Pos(),
				"inject the clock through a package-level `var clock = time.Now` seam and stub it in tests",
				"time.%s wall-clock read breaks run reproducibility", obj.Name())
		}
	case "math/rand", "math/rand/v2":
		// Only package-level functions touch the shared global state;
		// methods on a constructed *rand.Rand are the approved idiom.
		fn, isFunc := obj.(*types.Func)
		if isFunc && fn.Type().(*types.Signature).Recv() == nil && globalRandFuncs[obj.Name()] {
			p.Reportf(sel.Pos(),
				"derive randomness from the scenario seed (noise.NewSource / rand.New(rand.NewSource(seed)))",
				"global rand.%s breaks run reproducibility", obj.Name())
		}
	}
}

// checkMapRangeOutput flags `for k := range m` over a map when the
// loop body feeds an order-sensitive sink (slice append, fmt output,
// Write* methods, channel send) — unless every appended slice is
// passed to a sort call elsewhere in the enclosing function (the
// collect-then-sort idiom).
func checkMapRangeOutput(p *Pass, enclosing *ast.BlockStmt, rng *ast.RangeStmt) {
	tv, ok := p.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var sinkKind string
	appended := make(map[types.Object]bool)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sinkKind != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" && p.Info.Uses[fun] != nil && p.Info.Uses[fun].Parent() == types.Universe {
					if target := appendTarget(p, n); target != nil {
						appended[target] = true
					} else {
						sinkKind = "a slice append"
					}
				}
			case *ast.SelectorExpr:
				if obj := p.Info.Uses[fun.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
					sinkKind = "fmt output"
				} else if name := fun.Sel.Name; name == "Write" || name == "WriteString" || name == "WriteByte" || name == "WriteRune" {
					sinkKind = "writer output"
				}
			}
		case *ast.SendStmt:
			sinkKind = "a channel send"
		}
		return sinkKind == ""
	})
	if sinkKind != "" {
		p.Reportf(rng.Pos(),
			"collect the keys, sort them, and iterate the sorted slice",
			"map iteration order reaches %s; output will differ between identical runs", sinkKind)
		return
	}
	for obj := range appended {
		if !sortedInBlock(p, enclosing, obj) {
			p.Reportf(rng.Pos(),
				"sort the slice after the loop (sort.Slice / slices.Sort / sort.Ints), or iterate sorted keys",
				"map iteration order feeds slice %q without a subsequent sort", obj.Name())
			return
		}
	}
}

// appendTarget resolves append(x, ...)'s slice variable, nil when the
// first argument is not a plain identifier.
func appendTarget(p *Pass, call *ast.CallExpr) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	if id, ok := call.Args[0].(*ast.Ident); ok {
		return p.Info.Uses[id]
	}
	return nil
}

// sortedInBlock reports whether obj is passed to a sort.* / slices.*
// call anywhere in the function body (no flow analysis; accepting a
// sort before the loop is a deliberate simplification).
func sortedInBlock(p *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		callee := p.Info.Uses[sel.Sel]
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if pkg := callee.Pkg().Path(); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && p.Info.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
