package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"safesense/internal/lint/callgraph"
)

// Determinism enforces the reproduction's core contract: for a given
// scenario seed, the sim/estimator stack is bit-for-bit deterministic.
// The paper's headline results (zero CRA false positives/negatives,
// RLS takeover exactly at the attack step) are only checkable because
// reruns are exact, so inside the scenario pipeline:
//
//   - no wall-clock reads (time.Now / time.Since): clocks must be
//     injected through a package-level seam (`var clock = time.Now`),
//     which is the one place a time.Now *reference* is permitted;
//   - no global math/rand state (rand.Float64, rand.Intn, ...): all
//     randomness flows from the scenario seed through constructed
//     generators (rand.New, noise.NewSource);
//   - no output built by ranging over a map: map iteration order is
//     deliberately randomized by the runtime, so a loop that appends
//     to a slice, prints, or writes while ranging a map produces a
//     different artifact every run unless the keys are sorted first.
//
// The check is transitive: beyond the direct (intraprocedural) scan of
// every in-scope package, each in-scope function walks the module-wide
// call graph and is flagged when it can reach a violation buried in a
// helper package outside the scoped paths — a time.Now() two calls deep
// in internal/dsp breaks sim determinism exactly as much as one written
// inline. Transitive diagnostics carry the full call chain
// (sim.Step → dsp.window → time.Now wall-clock read) and anchor at the
// in-scope call site, where a line-scoped //safesense:allow can
// suppress them. Propagation stops at other in-scope functions (they
// file their own reports) and cannot cross calls through
// function-typed variables — which is precisely why the injected-seam
// idiom (`var clock = time.Now`) is invisible to it by design.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall clocks, global RNG, and map-ordered output (directly or transitively) in the deterministic pipeline",
	Paths: []string{
		"internal/sim",
		"internal/estimate",
		"internal/cra",
		"internal/radar",
		"internal/campaign",
		"internal/report",
		// The distributed coordinator/worker layer must stay replayable
		// too: lease ordering and checkpoint replay may consult the
		// clock only through the injected seam, and status payloads must
		// not leak map iteration order.
		"internal/dist",
		// The stream hub sits on the sim hot path (flight-recorder sink,
		// campaign callbacks): it must never consult a wall clock or
		// iterate maps into the wire — event order is the publish order.
		"internal/obs/stream",
		// The forensic store's dedup hashes and eviction order must be
		// reproducible across nodes and restarts: recency is a logical
		// sequence counter (never wall time) and listings sort before
		// they serialize.
		"internal/obs/forensic",
		// The pprof decoder/encoder must be a pure function of its input
		// bytes (summaries are diffed across hosts and the golden-fixture
		// test byte-compares output), and the continuous profiler's store
		// orders captures by a logical sequence counter — wall time enters
		// only through the injected clock seam on the capture stamp.
		"internal/obs/profile",
	},
	Run: runDeterminism,
}

// globalRandFuncs are the math/rand (and rand/v2) package-level
// functions backed by shared global state. Constructors (New,
// NewSource, NewPCG, NewChaCha8, NewZipf) are the approved seeded
// idiom and stay legal.
var globalRandFuncs = map[string]bool{
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Int": true, "Int31": true, "Int31n": true, "Int32": true, "Int32N": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"IntN": true, "Intn": true, "N": true,
	"Uint": true, "Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true, "UintN": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func runDeterminism(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					deterministicWalk(p, d.Body)
				}
			case *ast.GenDecl:
				// Package-level var initializers are the injected-clock
				// seam: `var clock = time.Now` is allowed. Calling the
				// clock at package init time is still flagged, so only
				// call expressions are inspected here.
				ast.Inspect(d, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
							reportNondeterministic(p, sel)
						}
					}
					return true
				})
			}
		}
	}
	runDeterminismTransitive(p)
}

// runDeterminismTransitive walks the call graph from every function
// declared in this in-scope unit and reports reachable violations in
// out-of-scope module packages, with the full call chain.
func runDeterminismTransitive(p *Pass) {
	facts := determinismFacts(p.Graph)
	inScope := func(rel string) bool { return p.Analyzer.AppliesTo(rel) }
	for _, root := range unitNodes(p) {
		tree := p.Graph.ReachFrom(root, func(n *callgraph.Node) bool {
			// Expand only through out-of-scope nodes: an in-scope
			// function on the path files its own report.
			return !inScope(n.RelPath)
		})
		for _, hit := range sortedReached(tree) {
			if inScope(hit.RelPath) {
				continue // directly checked where it is declared
			}
			fs := facts[hit]
			if len(fs) == 0 {
				continue
			}
			chain := callgraph.ChainTo(tree, hit)
			if chain == nil {
				continue
			}
			display := chainDisplay(root, chain)
			display = append(display, fs[0].desc)
			extra := ""
			if len(fs) > 1 {
				extra = " (and more in the same function)"
			}
			p.ReportChain(chain[0].Pos, fs[0].hint, display,
				"transitively %s%s", fs[0].what, extra)
		}
	}
}

// detFact is one direct violation found in a function body, as seen by
// the transitive pass.
type detFact struct {
	pos  token.Pos
	desc string // chain-tail form, e.g. "time.Now wall-clock read"
	what string // sentence form, e.g. "reads the wall clock (time.Now)"
	hint string
}

// determinismFacts scans every node's own body once per graph and
// memoizes the direct violations, keyed by node.
func determinismFacts(g *callgraph.Graph) map[*callgraph.Node][]detFact {
	const key = "determinism.facts"
	if cached, ok := g.Cache[key]; ok {
		return cached.(map[*callgraph.Node][]detFact)
	}
	facts := make(map[*callgraph.Node][]detFact)
	for _, n := range g.SortedNodes() {
		info := n.Unit.Info
		var fs []detFact
		n.InspectOwn(func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.SelectorExpr:
				if f, ok := nondeterministicUse(info, x); ok {
					fs = append(fs, f)
				}
			case *ast.RangeStmt:
				if body := n.Body(); body != nil {
					if _, ok := mapRangeSink(info, body, x); ok {
						fs = append(fs, detFact{
							pos:  x.Pos(),
							desc: "map-ordered output",
							what: "emits map-iteration-ordered output",
							hint: "collect the keys, sort them, and iterate the sorted slice",
						})
					}
				}
			}
			return true
		})
		sort.Slice(fs, func(i, j int) bool { return fs[i].pos < fs[j].pos })
		if len(fs) > 0 {
			facts[n] = fs
		}
	}
	g.Cache[key] = facts
	return facts
}

// nondeterministicUse resolves a selector and classifies it as a
// forbidden clock or global-RNG use.
func nondeterministicUse(info *types.Info, sel *ast.SelectorExpr) (detFact, bool) {
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return detFact{}, false
	}
	switch obj.Pkg().Path() {
	case "time":
		if obj.Name() == "Now" || obj.Name() == "Since" || obj.Name() == "Until" {
			return detFact{
				pos:  sel.Pos(),
				desc: "time." + obj.Name() + " wall-clock read",
				what: "reads the wall clock (time." + obj.Name() + ")",
				hint: "inject the clock through a package-level `var clock = time.Now` seam and stub it in tests",
			}, true
		}
	case "math/rand", "math/rand/v2":
		// Only package-level functions touch the shared global state;
		// methods on a constructed *rand.Rand are the approved idiom.
		fn, isFunc := obj.(*types.Func)
		if isFunc && fn.Type().(*types.Signature).Recv() == nil && globalRandFuncs[obj.Name()] {
			return detFact{
				pos:  sel.Pos(),
				desc: "global rand." + obj.Name(),
				what: "draws from the global RNG (rand." + obj.Name() + ")",
				hint: "derive randomness from the scenario seed (noise.NewSource / rand.New(rand.NewSource(seed)))",
			}, true
		}
	}
	return detFact{}, false
}

// unitNodes returns the graph nodes (declarations and literals)
// declared in this pass's unit, in deterministic ID order.
func unitNodes(p *Pass) []*callgraph.Node {
	var out []*callgraph.Node
	for _, n := range p.Graph.SortedNodes() {
		if n.Unit != nil && n.Unit.Pkg == p.Pkg {
			out = append(out, n)
		}
	}
	return out
}

// sortedReached returns the BFS tree's reached nodes in deterministic
// ID order (the tree is a map).
func sortedReached(tree map[*callgraph.Node]*callgraph.Edge) []*callgraph.Node {
	out := make([]*callgraph.Node, 0, len(tree))
	for n := range tree {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// chainDisplay renders the node sequence of an edge chain, starting at
// the root.
func chainDisplay(root *callgraph.Node, chain []*callgraph.Edge) []string {
	out := make([]string, 0, len(chain)+2)
	out = append(out, root.Display)
	for _, e := range chain {
		out = append(out, e.Callee.Display)
	}
	return out
}

// reportNondeterministic resolves a selector and reports it when it
// names a forbidden clock or global-RNG function.
func reportNondeterministic(p *Pass, sel *ast.SelectorExpr) {
	f, ok := nondeterministicUse(p.Info, sel)
	if !ok {
		return
	}
	p.Reportf(sel.Pos(), f.hint, "%s breaks run reproducibility", f.desc)
}

// deterministicWalk flags clock and global-RNG uses (references and
// calls) plus map-ordered output inside a function body.
func deterministicWalk(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			reportNondeterministic(p, n)
		case *ast.RangeStmt:
			checkMapRangeOutput(p, body, n)
		}
		return true
	})
}

// checkMapRangeOutput flags `for k := range m` over a map when the
// loop body feeds an order-sensitive sink (slice append, fmt output,
// Write* methods, channel send) — unless every appended slice is
// passed to a sort call elsewhere in the enclosing function (the
// collect-then-sort idiom).
func checkMapRangeOutput(p *Pass, enclosing *ast.BlockStmt, rng *ast.RangeStmt) {
	msg, ok := mapRangeSink(p.Info, enclosing, rng)
	if !ok {
		return
	}
	hint := "collect the keys, sort them, and iterate the sorted slice"
	if strings.HasPrefix(msg, "map iteration order feeds slice") {
		hint = "sort the slice after the loop (sort.Slice / slices.Sort / sort.Ints), or iterate sorted keys"
	}
	p.Reportf(rng.Pos(), hint, "%s", msg)
}

// mapRangeSink classifies a range statement as map-ordered output. The
// returned message is the human form; ok is false when the range is not
// over a map or feeds no order-sensitive sink.
func mapRangeSink(info *types.Info, enclosing *ast.BlockStmt, rng *ast.RangeStmt) (string, bool) {
	tv, ok := info.Types[rng.X]
	if !ok {
		return "", false
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return "", false
	}
	var sinkKind string
	appended := make(map[types.Object]bool)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sinkKind != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" && info.Uses[fun] != nil && info.Uses[fun].Parent() == types.Universe {
					if target := appendTarget(info, n); target != nil {
						appended[target] = true
					} else {
						sinkKind = "a slice append"
					}
				}
			case *ast.SelectorExpr:
				if obj := info.Uses[fun.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
					sinkKind = "fmt output"
				} else if name := fun.Sel.Name; name == "Write" || name == "WriteString" || name == "WriteByte" || name == "WriteRune" {
					sinkKind = "writer output"
				}
			}
		case *ast.SendStmt:
			sinkKind = "a channel send"
		}
		return sinkKind == ""
	})
	if sinkKind != "" {
		return "map iteration order reaches " + sinkKind + "; output will differ between identical runs", true
	}
	for _, obj := range sortedObjects(appended) {
		if !sortedInBlock(info, enclosing, obj) {
			return "map iteration order feeds slice \"" + obj.Name() + "\" without a subsequent sort", true
		}
	}
	return "", false
}

// sortedObjects orders a set of objects by position so diagnostics are
// deterministic.
func sortedObjects(set map[types.Object]bool) []types.Object {
	out := make([]types.Object, 0, len(set))
	for obj := range set {
		out = append(out, obj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// appendTarget resolves append(x, ...)'s slice variable, nil when the
// first argument is not a plain identifier.
func appendTarget(info *types.Info, call *ast.CallExpr) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	if id, ok := call.Args[0].(*ast.Ident); ok {
		return info.Uses[id]
	}
	return nil
}

// sortedInBlock reports whether obj is passed to a sort.* / slices.*
// call anywhere in the function body (no flow analysis; accepting a
// sort before the loop is a deliberate simplification).
func sortedInBlock(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		callee := info.Uses[sel.Sel]
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if pkg := callee.Pkg().Path(); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
