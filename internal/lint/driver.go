package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report is the driver's result: how much was analyzed and what was
// found. Its JSON form is the machine interface CI consumes
// (safesense-lint -json).
type Report struct {
	// Packages counts the analysis units loaded (external test
	// packages count separately).
	Packages int `json:"packages"`
	// Diagnostics is sorted by file, line, column, analyzer. Empty
	// means the tree is clean (encoded as [] — never null — so
	// consumers can index unconditionally).
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// Clean reports whether no analyzer found anything.
func (r *Report) Clean() bool { return len(r.Diagnostics) == 0 }

// Run loads the module rooted at root, restricted to the given
// package patterns (none means the whole module), and applies the
// analyzers. Load or type-check failures abort with an error — a tree
// that does not compile has no lint verdict.
func Run(root string, patterns []string, analyzers []*Analyzer, includeTests bool) (*Report, error) {
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	loader.IncludeTests = includeTests
	pkgs, err := loader.Packages(patterns...)
	if err != nil {
		return nil, err
	}
	diags := RunAnalyzers(pkgs, analyzers)
	if diags == nil {
		diags = []Diagnostic{}
	}
	return &Report{Packages: len(pkgs), Diagnostics: diags}, nil
}

// WriteText renders diagnostics one per line in the conventional
// file:line:col form, with a trailing summary.
func (r *Report) WriteText(w io.Writer) {
	for _, d := range r.Diagnostics {
		fmt.Fprintln(w, d.String())
	}
	if len(r.Diagnostics) > 0 {
		fmt.Fprintf(w, "safesense-lint: %d diagnostic(s) in %d package(s)\n", len(r.Diagnostics), r.Packages)
	}
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
