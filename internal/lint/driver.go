package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"safesense/internal/lint/callgraph"
)

// wallClock is the driver's injected time source — the same seam idiom
// the determinism analyzer prescribes, so the lint tree passes its own
// analyzers when self-checked (`make lint-self`). Timing numbers are
// reporting metadata, never analysis input.
var wallClock = time.Now

// Timing is the driver's performance breakdown: where a lint run spent
// its time. All values are wall-clock seconds.
type Timing struct {
	// LoadSeconds covers parsing and type-checking the module — done
	// once, shared by every analyzer.
	LoadSeconds float64 `json:"load_seconds"`
	// GraphSeconds covers building the module-wide call graph — also
	// once per run, shared by the transitive analyzers.
	GraphSeconds float64 `json:"graph_seconds"`
	// Analyzers maps analyzer name to its cumulative run time across
	// all packages.
	Analyzers map[string]float64 `json:"analyzers"`
}

// WriteText renders the timing table, slowest analyzer first.
func (t *Timing) WriteText(w io.Writer) {
	fmt.Fprintf(w, "load:  %8.3fs (parse + type-check, once for all analyzers)\n", t.LoadSeconds)
	fmt.Fprintf(w, "graph: %8.3fs (module-wide call graph, once for all analyzers)\n", t.GraphSeconds)
	names := make([]string, 0, len(t.Analyzers))
	for name := range t.Analyzers {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		ti, tj := t.Analyzers[names[i]], t.Analyzers[names[j]]
		if ti > tj {
			return true
		}
		if tj > ti {
			return false
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		fmt.Fprintf(w, "%-14s %8.3fs\n", name+":", t.Analyzers[name])
	}
}

// Report is the driver's result: how much was analyzed and what was
// found. Its JSON form is the machine interface CI consumes
// (safesense-lint -json).
type Report struct {
	// Packages counts the analysis units that were analyzed (external
	// test packages count separately). The loader may have type-checked
	// more — the whole module is loaded once so the call graph spans
	// every package — but only pattern-matched units are reported on.
	Packages int `json:"packages"`
	// Diagnostics is sorted by file, line, column, analyzer. Empty
	// means the tree is clean (encoded as [] — never null — so
	// consumers can index unconditionally).
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Timing breaks down where the run spent its time.
	Timing *Timing `json:"timing,omitempty"`
}

// Clean reports whether no analyzer found anything.
func (r *Report) Clean() bool { return len(r.Diagnostics) == 0 }

// Options tunes a lint run beyond the defaults.
type Options struct {
	// IncludeTests adds _test.go files (and external test packages) to
	// the analysis. Defaults to true in Run.
	IncludeTests bool
	// IgnorePaths disables every analyzer's Paths filter so all
	// analyzers run over all matched packages — the self-check mode
	// (`make lint-self` runs the full set over internal/lint itself).
	IgnorePaths bool
	// Timing populates Report.Timing.
	Timing bool
}

// Run loads the module rooted at root and applies the analyzers to the
// packages matching the given patterns (none means the whole module).
// The entire module is parsed and type-checked exactly once — and the
// call graph built exactly once — regardless of how many analyzers run
// or how narrow the patterns are, because the transitive analyzers need
// whole-module visibility to follow calls out of the matched set. Load
// or type-check failures abort with an error — a tree that does not
// compile has no lint verdict.
func Run(root string, patterns []string, analyzers []*Analyzer, includeTests bool) (*Report, error) {
	return RunOpts(root, patterns, analyzers, Options{IncludeTests: includeTests})
}

// RunOpts is Run with the full option set.
func RunOpts(root string, patterns []string, analyzers []*Analyzer, opts Options) (*Report, error) {
	timing := &Timing{Analyzers: make(map[string]float64)}

	start := wallClock()
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	loader.IncludeTests = opts.IncludeTests
	all, err := loader.Packages()
	if err != nil {
		return nil, err
	}
	analyzed, err := filterPackages(all, patterns, loader.ModPath)
	if err != nil {
		return nil, err
	}
	timing.LoadSeconds = wallClock().Sub(start).Seconds()

	start = wallClock()
	graph := callgraph.Build(loader.Fset(), GraphUnits(all))
	timing.GraphSeconds = wallClock().Sub(start).Seconds()

	if opts.IgnorePaths {
		unscoped := make([]*Analyzer, len(analyzers))
		for i, a := range analyzers {
			na := *a
			na.Paths = nil
			unscoped[i] = &na
		}
		analyzers = unscoped
	}

	diags := RunAnalyzersGraph(analyzed, graph, analyzers, timing.Analyzers)
	if diags == nil {
		diags = []Diagnostic{}
	}
	report := &Report{Packages: len(analyzed), Diagnostics: diags}
	if opts.Timing {
		report.Timing = timing
	}
	return report, nil
}

// filterPackages selects the units matching the CLI patterns,
// preserving load order. Every pattern must match at least one unit.
func filterPackages(all []*Package, patterns []string, modPath string) ([]*Package, error) {
	if len(patterns) == 0 {
		return all, nil
	}
	matchedAny := make([]bool, len(patterns))
	var out []*Package
	for _, p := range all {
		matched := false
		for i, pat := range patterns {
			if matchPattern(pat, p.RelPath, modPath) {
				matchedAny[i] = true
				matched = true
			}
		}
		if matched {
			out = append(out, p)
		}
	}
	for i, pat := range patterns {
		if !matchedAny[i] {
			return nil, fmt.Errorf("lint: pattern %q matched no packages", pat)
		}
	}
	return out, nil
}

// WriteText renders diagnostics one per line in the conventional
// file:line:col form, with a trailing summary.
func (r *Report) WriteText(w io.Writer) {
	for _, d := range r.Diagnostics {
		fmt.Fprintln(w, d.String())
	}
	if len(r.Diagnostics) > 0 {
		fmt.Fprintf(w, "safesense-lint: %d diagnostic(s) in %d package(s)\n", len(r.Diagnostics), r.Packages)
	}
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
