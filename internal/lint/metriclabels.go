package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// MetricLabels keeps the internal/obs metric families safe to run
// under production traffic. Two failure modes matter:
//
//   - non-constant label *keys* at registration make the schema a
//     runtime accident (and a re-registration panic waiting to
//     happen);
//   - unbounded label *values* at With() call sites — a request ID, a
//     formatted float, an error string — grow one child per distinct
//     value and turn the registry into a memory leak.
//
// Statically proving boundedness is impossible, so the analyzer
// targets the constructors of unboundedness instead: values built by
// fmt/strconv formatting, error/Stringer rendering, time formatting,
// or string concatenation are flagged at the call site. Plain
// variables are trusted — bounding them (as routePattern does for
// HTTP routes) is the documented contract of the call site.
var MetricLabels = &Analyzer{
	Name: "metriclabels",
	Doc:  "require constant label keys and bounded label-value cardinality at obs family call sites",
	Run:  runMetricLabels,
}

// maxMetricLabels caps the label-key count per family: each extra key
// multiplies child cardinality.
const maxMetricLabels = 4

// unboundedLabelKeys are key names that advertise per-entity
// cardinality no matter how the values are produced.
var unboundedLabelKeys = map[string]bool{
	"id": true, "request_id": true, "trace_id": true, "span_id": true,
	"seed": true, "job": true, "index": true, "user": true,
	"path": true, "url": true, "error": true,
}

func runMetricLabels(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/obs") {
				return true
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			switch obj.Name() {
			case "Counter", "Gauge", "Histogram":
				if recvNamed(sig) == "Registry" {
					checkRegistration(p, call, obj.Name())
				}
			case "With":
				checkWithValues(p, call)
			}
			return true
		})
	}
}

func recvNamed(sig *types.Signature) string {
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// checkRegistration validates a Registry.Counter/Gauge/Histogram call:
// constant name, constant well-formed label keys, bounded key count.
func checkRegistration(p *Pass, call *ast.CallExpr, kind string) {
	fixed := 2 // name, help
	if kind == "Histogram" {
		fixed = 3 // name, help, buckets
	}
	if len(call.Args) > 0 {
		if s, ok := constString(p, call.Args[0]); !ok {
			p.Reportf(call.Args[0].Pos(),
				"declare the metric name as a string constant",
				"metric name must be a compile-time constant")
		} else if !wellFormedMetricIdent(s) {
			p.Reportf(call.Args[0].Pos(),
				"use snake_case: [a-z][a-z0-9_]*",
				"metric name %q is not a well-formed identifier", s)
		}
	}
	if call.Ellipsis.IsValid() {
		p.Reportf(call.Ellipsis,
			"list label keys literally at the registration site",
			"label keys passed as a slice cannot be statically checked")
		return
	}
	if len(call.Args) <= fixed {
		return
	}
	labels := call.Args[fixed:]
	if len(labels) > maxMetricLabels {
		p.Reportf(labels[maxMetricLabels].Pos(),
			"split the family or drop a dimension; each key multiplies child cardinality",
			"%d label keys exceeds the limit of %d", len(labels), maxMetricLabels)
	}
	for _, arg := range labels {
		s, ok := constString(p, arg)
		if !ok {
			p.Reportf(arg.Pos(),
				"label keys are schema: declare them as string constants",
				"label key must be a compile-time constant")
			continue
		}
		if !wellFormedMetricIdent(s) {
			p.Reportf(arg.Pos(),
				"use snake_case: [a-z][a-z0-9_]*",
				"label key %q is not a well-formed identifier", s)
		}
		if unboundedLabelKeys[s] {
			p.Reportf(arg.Pos(),
				"per-entity identity belongs in logs and traces, not metric labels",
				"label key %q implies unbounded cardinality", s)
		}
	}
}

// checkWithValues flags label values built by known constructors of
// unbounded strings.
func checkWithValues(p *Pass, call *ast.CallExpr) {
	for _, arg := range call.Args {
		if desc := unboundedValueExpr(p, arg); desc != "" {
			p.Reportf(arg.Pos(),
				"map the value onto a fixed vocabulary first (see routePattern/statusLabel in cmd/safesensed)",
				"label value built by %s risks unbounded cardinality", desc)
		}
	}
}

// unboundedValueExpr walks an expression for formatting constructors;
// it returns a description of the first offender, or "".
func unboundedValueExpr(p *Pass, e ast.Expr) string {
	desc := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			// Non-constant string concatenation manufactures new values.
			if tv, ok := p.Info.Types[n]; ok && tv.Value == nil {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					desc = "string concatenation"
				}
			}
		case *ast.CallExpr:
			desc = unboundedCall(p, n)
		}
		return desc == ""
	})
	return desc
}

func unboundedCall(p *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		// Conversions like string(code) are flagged too: they usually
		// wrap an unbounded numeric or byte source.
		if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				return "a string conversion"
			}
		}
		return ""
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil {
		return ""
	}
	if pkg := obj.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "fmt":
			return "fmt." + obj.Name()
		case "strconv":
			return "strconv." + obj.Name()
		}
	}
	// Error / Stringer / time rendering produce per-entity strings.
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			switch fn.Name() {
			case "Error", "String", "Format":
				if sig.Params().Len() == len(call.Args) {
					return fn.Name() + "() rendering"
				}
			}
		}
	}
	return ""
}

func wellFormedMetricIdent(s string) bool {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}

// constString returns the expression's compile-time string value.
func constString(p *Pass, e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
