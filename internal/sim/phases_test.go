package sim

import "testing"

// phaseByName indexes a breakdown for assertions.
func phaseByName(t *testing.T, phases []PhaseTiming, name string) PhaseTiming {
	t.Helper()
	for _, p := range phases {
		if p.Phase == name {
			return p
		}
	}
	t.Fatalf("phase %q missing from %v", name, phases)
	return PhaseTiming{}
}

func TestRunPhaseBreakdownFastPipeline(t *testing.T) {
	res, err := Run(Fig2aDoS())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 5 {
		t.Fatalf("phases = %d, want 5 (%v)", len(res.Phases), res.Phases)
	}
	steps := res.Scenario.Steps

	radar := phaseByName(t, res.Phases, PhaseRadarSynthesis)
	if radar.Calls != steps {
		t.Errorf("radar synthesis calls = %d, want %d", radar.Calls, steps)
	}
	veh := phaseByName(t, res.Phases, PhaseVehicleStep)
	if veh.Calls != steps {
		t.Errorf("vehicle step calls = %d, want %d", veh.Calls, steps)
	}
	cra := phaseByName(t, res.Phases, PhaseCRACheck)
	if cra.Calls != steps {
		t.Errorf("cra check calls = %d, want %d", cra.Calls, steps)
	}
	// The closed-form pipeline has no beat-spectrum estimator.
	if ext := phaseByName(t, res.Phases, PhaseBeatExtraction); ext.Calls != 0 {
		t.Errorf("beat extraction calls = %d, want 0 on the fast pipeline", ext.Calls)
	}
	// A defended DoS run trains and free-runs the RLS predictor, and the
	// span total must cover the separately tracked RLSTime.
	rls := phaseByName(t, res.Phases, PhaseRLSEstimation)
	if rls.Calls == 0 {
		t.Error("rls estimation never ran on a defended run")
	}
	if rls.Seconds < res.RLSTime.Seconds() {
		t.Errorf("rls phase %.9fs < RLSTime %.9fs", rls.Seconds, res.RLSTime.Seconds())
	}
	if total := TotalSeconds(res.Phases); total <= 0 {
		t.Errorf("total instrumented time = %g", total)
	}
}

func TestRunPhaseBreakdownSignalPipeline(t *testing.T) {
	s := Fig2aDoS()
	s.SignalLevel = true
	s.Steps = 40
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	ext := phaseByName(t, res.Phases, PhaseBeatExtraction)
	if ext.Calls != s.Steps {
		t.Errorf("beat extraction calls = %d, want %d", ext.Calls, s.Steps)
	}
	radar := phaseByName(t, res.Phases, PhaseRadarSynthesis)
	if radar.Calls != s.Steps {
		t.Errorf("radar synthesis calls = %d, want %d", radar.Calls, s.Steps)
	}
}

func TestRunPhaseBreakdownUndefended(t *testing.T) {
	s := Fig2aDoS()
	s.Defended = false
	s.Steps = 40
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if cra := phaseByName(t, res.Phases, PhaseCRACheck); cra.Calls != 0 {
		t.Errorf("cra calls = %d on an undefended run", cra.Calls)
	}
	if rls := phaseByName(t, res.Phases, PhaseRLSEstimation); rls.Calls != 0 {
		t.Errorf("rls calls = %d on an undefended run", rls.Calls)
	}
}
